GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test vet fmt race-test lint check fuzz-smoke fault-suite

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race-test:
	$(GO) test -race ./...

# Project-specific static analysis; see docs/static-analysis.md.
lint:
	$(GO) run ./cmd/modlint ./...

# The full local gate, mirrored by .github/workflows/ci.yml.
check: build vet fmt race-test lint

# Focused run of the fault-injection suite under the race detector;
# mirrored as a CI step so robustness regressions fail fast.
fault-suite:
	$(GO) test -race -run 'Fault|Torn|Quarantine|Retry|Sweep|Health|Destroy' . ./internal/faults ./internal/vmi ./internal/hypervisor ./internal/core

# Short smoke run of every fuzz target: catches gross parser regressions
# without the cost of a real campaign. Go allows only one -fuzz pattern
# per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParseModule$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzNormalizePair$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/pe
	$(GO) test -run='^$$' -fuzz='^FuzzParseRelocTable$$' -fuzztime=$(FUZZTIME) ./internal/pe
	$(GO) test -run='^$$' -fuzz='^FuzzParseImports$$' -fuzztime=$(FUZZTIME) ./internal/pe
	$(GO) test -run='^$$' -fuzz='^FuzzFaultSchedule$$' -fuzztime=$(FUZZTIME) ./internal/faults
