GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 5x
BENCHOUT ?= BENCH_9.json
CHAOS_SEEDS ?= 20

.PHONY: all build test vet fmt race-test lint golden-check check fuzz-smoke fault-suite chaos-smoke chaos-poison bench bench-smoke fleet-smoke cache-smoke trace-smoke profile

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race-test:
	$(GO) test -race ./...

# Project-specific static analysis; see docs/static-analysis.md.
# LINTFLAGS passes extra driver flags (CI sets -sarif for code scanning).
lint:
	$(GO) run ./cmd/modlint $(LINTFLAGS) ./...

# Golden staleness guard: regenerate each analyzer's fixture golden into a
# scratch directory (MODLINT_GOLDEN_DIR redirects the -update write) and
# fail if a committed golden differs — catches analyzer message or ordering
# drift committed without rerunning `go test -run Golden -update`.
golden-check:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	MODLINT_GOLDEN_DIR="$$dir" $(GO) test -count=1 -run Golden \
		./internal/lint/moddet ./internal/lint/modsafe ./internal/lint/modown -update || exit 1; \
	rc=0; \
	for f in internal/lint/moddet/testdata/detmod.golden \
	         internal/lint/modsafe/testdata/safemod.golden \
	         internal/lint/modown/testdata/ownmod.golden; do \
		cmp -s "$$f" "$$dir/$$(basename $$f)" || { echo "stale golden: $$f (regenerate with: $(GO) test -run Golden -update ./$$(dirname $$(dirname $$f)))"; rc=1; }; \
	done; \
	exit $$rc

# The full local gate, mirrored by .github/workflows/ci.yml.
check: build vet fmt race-test lint golden-check

# Focused run of the fault-injection suite under the race detector;
# mirrored as a CI step so robustness regressions fail fast.
fault-suite:
	$(GO) test -race -run 'Fault|Torn|Quarantine|Retry|Sweep|Health|Destroy' . ./internal/faults ./internal/vmi ./internal/hypervisor ./internal/core

# Seeded chaos soak under the race detector: $(CHAOS_SEEDS) randomized
# fault plans over a 15-VM pool, each run twice and required to converge,
# produce no false ALTERED verdicts, and replay byte-identically.
chaos-smoke:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 -timeout 20m ./internal/stress/chaos

# One seeded chaos plan under the modpoison build tag: every recycled fetch,
# scratch, and VMI shadow buffer is scribbled with 0xDB on its way back to
# the pool, so a use-after-put anywhere in the sweep surfaces as garbage
# digests or a torn-read verdict instead of silently reading stale bytes.
chaos-poison:
	CHAOS_SEEDS=1 $(GO) test -race -count=1 -timeout 10m -tags modpoison ./internal/stress/chaos

# The benchmark trajectory: the paper's Figure 7/8 runtime curves, the
# Section V-B detection scenarios, and the Fig7Sweep15 legacy-vs-pipeline
# headline pair, rendered to $(BENCHOUT) by cmd/benchjson (host ns/op,
# sim-ms/op, allocs/op, ptwalks/op, plus the baseline comparison).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7Sweep15|BenchmarkFig7RuntimeIdle|BenchmarkFig8RuntimeLoaded|BenchmarkDetect' \
		-benchtime $(BENCHTIME) -benchmem . > bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkFleetSweep' -benchtime 1x -benchmem . >> bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkCachedSweep' -benchtime 1x -benchmem . >> bench.out
	$(GO) run ./cmd/benchjson -out $(BENCHOUT) < bench.out
	@rm -f bench.out
	@echo "wrote $(BENCHOUT)"

# One-iteration bench sanity run for CI: fails on benchmark errors (a sweep
# that flags a clean pool, a broken metric), not on performance regressions.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7Sweep15' -benchtime 1x -benchmem . > bench-smoke.out
	$(GO) run ./cmd/benchjson -baseline none < bench-smoke.out
	@rm -f bench-smoke.out

# One-iteration 1000-VM fleet sweep (-short skips the 10k/100k curve): fails
# if the copy-on-write fleet path errors or flags a clean pool, not on
# performance. The full scaling curve ships with `make bench` ($(BENCHOUT)).
fleet-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFleetSweep/vms=1000$$' -benchtime 1x -benchmem -short . > fleet-smoke.out
	$(GO) run ./cmd/benchjson -baseline none < fleet-smoke.out
	@rm -f fleet-smoke.out

# The digest-cache gate: the cached-vs-uncached differential suite (cold
# byte-identity, warm equivalence, invalidation, budget/resume), the
# persistent-tier reopen test, and the same differentials again under the
# modpoison build tag, which scribbles every recycled fetch/scratch buffer
# to surface use-after-put bugs as garbage digests.
cache-smoke:
	$(GO) test -count=1 -run 'TestCached|TestTargetIdentity|TestResumeResamplesIdentity' .
	$(GO) test -count=1 ./internal/cas
	$(GO) test -count=1 -tags modpoison -run 'TestCached|TestSweep|TestSharded|TestLean' . ./internal/core

# Traced 15-VM sweep through the CLI, validated by cmd/tracecheck: the
# Chrome trace export must stay structurally loadable (Perfetto) and
# (ts, seq)-ordered. Mirrored as a CI step.
trace-smoke:
	$(GO) run ./cmd/modchecker -vms 15 -watch 1 -parallel -trace trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck trace-smoke.json
	@rm -f trace-smoke.json

# CPU/heap profile of the traced headline sweep. The pipeline stages carry
# pprof labels (stage, module cluster), so break profiles down with e.g.
#   go tool pprof -tags cpu.prof
#   go tool pprof -http=: cpu.prof
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7Sweep15/traced' -benchtime $(BENCHTIME) \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "wrote cpu.prof and mem.prof (inspect: go tool pprof -tags cpu.prof)"

# Short smoke run of every fuzz target: catches gross parser regressions
# without the cost of a real campaign. Go allows only one -fuzz pattern
# per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParseModule$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzNormalizePair$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/pe
	$(GO) test -run='^$$' -fuzz='^FuzzParseRelocTable$$' -fuzztime=$(FUZZTIME) ./internal/pe
	$(GO) test -run='^$$' -fuzz='^FuzzParseImports$$' -fuzztime=$(FUZZTIME) ./internal/pe
	$(GO) test -run='^$$' -fuzz='^FuzzFaultSchedule$$' -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz='^FuzzControlPlanePlan$$' -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz='^FuzzModdetTaint$$' -fuzztime=$(FUZZTIME) ./internal/lint/moddet
	$(GO) test -run='^$$' -fuzz='^FuzzModsafeLockorder$$' -fuzztime=$(FUZZTIME) ./internal/lint/modsafe
	$(GO) test -run='^$$' -fuzz='^FuzzModown$$' -fuzztime=$(FUZZTIME) ./internal/lint/modown
