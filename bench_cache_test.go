package modchecker_test

import (
	"fmt"
	"testing"

	"modchecker"
)

// benchCachedSweep measures the steady state of the cross-sweep digest
// cache: a warm sweep over an unchanged pool of n VMs. The first sweep
// (outside the timed region) populates the store; every timed iteration
// re-sweeps the same clean pool, so fetch work collapses to cache lookups —
// the O(changed modules) curve the cache exists for. Compare sim-ms/op and
// bytes-read/op against the cold sweep reported alongside as cold-sim-ms.
//
// Reported metrics: sim-ms/op (simulated time of one warm sweep),
// cold-sim-ms (the one cold sweep, for the steady-state ratio),
// cas-hits/op and bytes-read/op (guest bytes actually copied per warm
// sweep — near zero once the store is warm).
func benchCachedSweep(b *testing.B, n int) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{
		VMs: n, Templates: 4, Seed: 42, Cores: 8 * ((n + 999) / 1000),
	})
	if err != nil {
		b.Fatal(err)
	}
	store := modchecker.NewDigestStore(0)
	sc := cloud.NewScanner(modchecker.WithDigestCache(store))

	hv := cloud.Hypervisor()
	cold, err := sc.Sweep()
	if err != nil {
		b.Fatal(err)
	}
	if !cold.Clean() {
		b.Fatalf("cold sweep not clean: %+v", cold.Alerts)
	}

	var simMS float64
	var hits, bytesRead uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hv.Clock().Reset()
		preStats := store.Stats()
		preBytes := cloud.IntrospectionStats().BytesRead
		rep, err := sc.Sweep()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatalf("warm sweep not clean: %+v", rep.Alerts)
		}
		simMS += rep.Simulated.Seconds() * 1e3
		hits += store.Stats().Hits - preStats.Hits
		bytesRead += cloud.IntrospectionStats().BytesRead - preBytes
	}
	b.StopTimer()
	b.ReportMetric(simMS/float64(b.N), "sim-ms/op")
	b.ReportMetric(cold.Simulated.Seconds()*1e3, "cold-sim-ms")
	b.ReportMetric(float64(hits)/float64(b.N), "cas-hits/op")
	b.ReportMetric(float64(bytesRead)/float64(b.N), "bytes-read/op")
}

// BenchmarkCachedSweep is the BENCH_9 steady-state curve: warm cached
// sweeps at the paper's 15-VM pool and at fleet scale. The 1000-VM size is
// skipped in -short mode.
func BenchmarkCachedSweep(b *testing.B) {
	for _, n := range []int{15, 1000} {
		n := n
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			if testing.Short() && n > 15 {
				b.Skipf("%d VMs skipped in short mode", n)
			}
			benchCachedSweep(b, n)
		})
	}
}
