package modchecker_test

import (
	"fmt"
	"runtime"
	"testing"

	"modchecker"
)

// benchFleetSweep sweeps a representative module set across a copy-on-write
// fleet of n VMs in the fleet configuration: 4 fully booted templates with
// everything else forked from them, sharded clustering (256-VM shards), lean
// reports, identity dedup, and streaming report folding. This is the
// tentpole measurement for scaling past the paper's 15-VM testbed: host
// wall time and allocation must stay near-flat in pool size (introspection
// is O(templates), bookkeeping O(pool)), and peak heap must stay bounded.
//
// Reported metrics: sim-ms/op (simulated testbed time for the sweep) and
// heap-MB (live heap after the sweep — the resident footprint a Dom0
// operator would see, dominated by the fleet's page tables).
func benchFleetSweep(b *testing.B, n int) {
	// 8 cores per 1000 guests, the paper's consolidation ratio scaled out:
	// a 100k-VM fleet lives on hundreds of hosts, not one 8-core box, so
	// simulated slowdown reflects per-host contention, not an absurdity.
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{
		VMs: n, Templates: 4, Seed: 42, Cores: 8 * ((n + 999) / 1000),
	})
	if err != nil {
		b.Fatal(err)
	}
	checker := cloud.NewChecker(
		modchecker.WithShardSize(256),
		modchecker.WithLeanReports(),
		modchecker.WithIdentityDedup(),
	)
	modules := []string{"dummy.sys", "hal.dll", "ndis.sys"}
	hv := cloud.Hypervisor()
	var simMS float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hv.Clock().Reset()
		sweep, err := checker.NewPoolSweep()
		if err != nil {
			b.Fatal(err)
		}
		simMS += sweep.ListElapsed.Seconds() * 1e3
		flagged := 0
		sweep.CheckModulesFunc(modules, func(rep *modchecker.PoolReport) {
			simMS += rep.Elapsed.Seconds() * 1e3
			flagged += len(rep.Flagged)
		})
		if flagged != 0 {
			b.Fatalf("clean fleet flagged %d VMs", flagged)
		}
		sweep.Close()
	}
	b.StopTimer()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	b.ReportMetric(simMS/float64(b.N), "sim-ms/op")
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MB")
	runtime.KeepAlive(cloud) // heap-MB must include the resident fleet
	runtime.KeepAlive(checker)
}

// BenchmarkFleetSweep is the scaling curve behind BENCH_8: the fleet sweep
// at 1k, 10k, and 100k VMs. 1k runs everywhere (it is the CI fleet-smoke
// leg); the larger sizes are skipped in -short mode.
func BenchmarkFleetSweep(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			if testing.Short() && n > 1000 {
				b.Skipf("%d VMs skipped in short mode", n)
			}
			benchFleetSweep(b, n)
		})
	}
}
