package modchecker_test

import (
	"testing"
	"time"

	"modchecker"
)

// benchSweep15 is the PR's headline measurement: sweep every module of the
// standard catalog across the paper's 15-VM pool. The legacy configuration
// is the paper-faithful baseline — sequential, O(n²) full-pairwise
// comparison, no translation cache, and a fresh LDR-list walk per module
// (one CheckPool per module). The pipeline configuration is the optimized
// sweep — digest pre-clustering, the bounded parallel fetch/compare stages,
// per-handle software TLBs, and a per-sweep module-table snapshot.
//
// Reported metrics: host ns/op (wall time of the simulator itself),
// sim-ms/op (simulated testbed time), and ptwalks/op (external page-table
// walks per sweep, the introspection cost the TLB and the snapshot remove).
//
// The traced mode is the pipeline configuration with the deterministic
// tracer recording every stage; the pipeline/traced pair measures the
// tracing overhead the observability layer must keep under 10% host wall
// time (cmd/benchjson computes trace_overhead from it).
//
// The chaos mode is the pipeline configuration with the robustness
// machinery armed but inert: an empty fault plan wraps every memory read
// and lifecycle op, and a per-VM budget (too large to ever trip) keeps the
// budget accounting on the hot path. The pipeline/chaos pair prices the
// fault plane + budget bookkeeping (cmd/benchjson computes chaos_overhead
// from it).
func benchSweep15(b *testing.B, legacy, traced, chaos bool) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{
		VMs: 15, Seed: 42, NoTranslationCache: legacy,
	})
	if err != nil {
		b.Fatal(err)
	}
	if chaos {
		cloud.InstallFaultPlan(modchecker.NewFaultPlan(42))
	}
	var tracer *modchecker.Tracer
	if traced {
		tracer = cloud.EnableTrace(0) // before NewChecker: checkers capture it
	}
	var opts []modchecker.CheckerOption
	if legacy {
		opts = append(opts, modchecker.WithFullPairwise())
	} else {
		opts = append(opts, modchecker.WithParallel())
	}
	checker := cloud.NewChecker(opts...)
	mods, err := checker.ListModules("Dom1")
	if err != nil {
		b.Fatal(err)
	}
	modules := make([]string, len(mods))
	for i, m := range mods {
		modules[i] = m.Name
	}
	hv := cloud.Hypervisor()
	var simMS, walks float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hv.Clock().Reset()
		tracer.Reset() // nil-safe; keeps the ring flat across iterations
		before := cloud.IntrospectionStats()
		var clean int
		if legacy {
			for _, m := range modules {
				rep, err := checker.CheckPool(m)
				if err != nil {
					b.Fatal(err)
				}
				simMS += rep.Elapsed.Seconds() * 1e3
				if len(rep.Flagged) == 0 {
					clean++
				}
			}
		} else {
			sweep, err := checker.NewPoolSweep()
			if err != nil {
				b.Fatal(err)
			}
			if chaos {
				// Per-VM budget only: a sweep budget would force the fetch
				// stage sequential, and an hour of modeled time never trips,
				// so the parallel pipeline runs unchanged with the budget
				// accounting live.
				sweep.SetBudgets(0, time.Hour)
			}
			simMS += sweep.ListElapsed.Seconds() * 1e3
			for _, rep := range sweep.CheckModules(modules) {
				simMS += rep.Elapsed.Seconds() * 1e3
				if len(rep.Flagged) == 0 {
					clean++
				}
			}
		}
		if clean != len(modules) {
			b.Fatalf("clean pool flagged modules: %d/%d clean", clean, len(modules))
		}
		if traced {
			tracer.Flush()
			if tracer.Len() == 0 {
				b.Fatal("traced sweep recorded no events")
			}
		}
		after := cloud.IntrospectionStats()
		walks += float64(after.PTWalks - before.PTWalks)
	}
	b.ReportMetric(simMS/float64(b.N), "sim-ms/op")
	b.ReportMetric(walks/float64(b.N), "ptwalks/op")
}

// BenchmarkFig7Sweep15 pits the paper-faithful sweep against the optimized
// pipeline on the full 15-VM Figure-7 configuration, plus the pipeline with
// deterministic tracing on. cmd/benchjson computes the headline speedup and
// the tracing overhead from these sub-benchmarks.
func BenchmarkFig7Sweep15(b *testing.B) {
	b.Run("legacy", func(b *testing.B) { benchSweep15(b, true, false, false) })
	b.Run("pipeline", func(b *testing.B) { benchSweep15(b, false, false, false) })
	b.Run("traced", func(b *testing.B) { benchSweep15(b, false, true, false) })
	b.Run("chaos", func(b *testing.B) { benchSweep15(b, false, false, true) })
}
