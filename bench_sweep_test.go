package modchecker_test

import (
	"testing"

	"modchecker"
)

// benchSweep15 is the PR's headline measurement: sweep every module of the
// standard catalog across the paper's 15-VM pool. The legacy configuration
// is the paper-faithful baseline — sequential, O(n²) full-pairwise
// comparison, no translation cache, and a fresh LDR-list walk per module
// (one CheckPool per module). The pipeline configuration is the optimized
// sweep — digest pre-clustering, the bounded parallel fetch/compare stages,
// per-handle software TLBs, and a per-sweep module-table snapshot.
//
// Reported metrics: host ns/op (wall time of the simulator itself),
// sim-ms/op (simulated testbed time), and ptwalks/op (external page-table
// walks per sweep, the introspection cost the TLB and the snapshot remove).
func benchSweep15(b *testing.B, legacy bool) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{
		VMs: 15, Seed: 42, NoTranslationCache: legacy,
	})
	if err != nil {
		b.Fatal(err)
	}
	var opts []modchecker.CheckerOption
	if legacy {
		opts = append(opts, modchecker.WithFullPairwise())
	} else {
		opts = append(opts, modchecker.WithParallel())
	}
	checker := cloud.NewChecker(opts...)
	mods, err := checker.ListModules("Dom1")
	if err != nil {
		b.Fatal(err)
	}
	modules := make([]string, len(mods))
	for i, m := range mods {
		modules[i] = m.Name
	}
	hv := cloud.Hypervisor()
	var simMS, walks float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hv.Clock().Reset()
		before := cloud.IntrospectionStats()
		var clean int
		if legacy {
			for _, m := range modules {
				rep, err := checker.CheckPool(m)
				if err != nil {
					b.Fatal(err)
				}
				simMS += rep.Elapsed.Seconds() * 1e3
				if len(rep.Flagged) == 0 {
					clean++
				}
			}
		} else {
			sweep, err := checker.NewPoolSweep()
			if err != nil {
				b.Fatal(err)
			}
			simMS += sweep.ListElapsed.Seconds() * 1e3
			for _, rep := range sweep.CheckModules(modules) {
				simMS += rep.Elapsed.Seconds() * 1e3
				if len(rep.Flagged) == 0 {
					clean++
				}
			}
		}
		if clean != len(modules) {
			b.Fatalf("clean pool flagged modules: %d/%d clean", clean, len(modules))
		}
		after := cloud.IntrospectionStats()
		walks += float64(after.PTWalks - before.PTWalks)
	}
	b.ReportMetric(simMS/float64(b.N), "sim-ms/op")
	b.ReportMetric(walks/float64(b.N), "ptwalks/op")
}

// BenchmarkFig7Sweep15 pits the paper-faithful sweep against the optimized
// pipeline on the full 15-VM Figure-7 configuration. cmd/benchjson computes
// the headline speedup from these two sub-benchmarks.
func BenchmarkFig7Sweep15(b *testing.B) {
	b.Run("legacy", func(b *testing.B) { benchSweep15(b, true) })
	b.Run("pipeline", func(b *testing.B) { benchSweep15(b, false) })
}
