// Benchmarks regenerating the paper's evaluation, one per table/figure:
//
//	BenchmarkDetect*          — Section V-B experiments E1-E4
//	BenchmarkFig7RuntimeIdle  — Figure 7 (runtime vs #VMs, idle)
//	BenchmarkFig8RuntimeLoaded— Figure 8 (runtime vs #VMs, HeavyLoad)
//	BenchmarkFig9GuestImpact  — Figure 9 (in-guest impact of VMI access)
//	BenchmarkAblation*        — DESIGN.md ablations A1-A3
//
// Each runtime benchmark reports both host wall time (ns/op) and the
// simulated testbed time (sim-ms/op), which is the number whose *shape*
// tracks the paper's measurements.
package modchecker_test

import (
	"fmt"
	"testing"

	"modchecker"
	"modchecker/internal/amd64"
	"modchecker/internal/baseline"
	"modchecker/internal/core"
	"modchecker/internal/experiments"
	"modchecker/internal/stress"
)

// mustCloud builds a cloud or aborts the benchmark.
func mustCloud(b *testing.B, vms int, seed int64) *modchecker.Cloud {
	b.Helper()
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return cloud
}

// benchDetect benchmarks one V-B detection scenario: pool-sweeping the
// infected module across 15 VMs.
func benchDetect(b *testing.B, module string, infect func(*modchecker.Cloud) error) {
	cloud := mustCloud(b, 15, 42)
	if err := infect(cloud); err != nil {
		b.Fatal(err)
	}
	checker := cloud.NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := checker.CheckPool(module)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Flagged) != 1 {
			b.Fatalf("flagged %v, want exactly the infected VM", rep.Flagged)
		}
	}
}

func BenchmarkDetectOpcodeReplacement(b *testing.B) { // E1
	benchDetect(b, "hal.dll", func(c *modchecker.Cloud) error {
		return modchecker.InfectOpcode(c, "Dom7", "hal.dll")
	})
}

func BenchmarkDetectInlineHooking(b *testing.B) { // E2
	benchDetect(b, "tcpip.sys", func(c *modchecker.Cloud) error {
		return modchecker.InfectInlineHookLive(c, "Dom7", "tcpip.sys")
	})
}

func BenchmarkDetectStubModification(b *testing.B) { // E3
	benchDetect(b, "dummy.sys", func(c *modchecker.Cloud) error {
		return modchecker.InfectStubPatch(c, "Dom7", "dummy.sys", "DOS", "CHK")
	})
}

func BenchmarkDetectDLLHooking(b *testing.B) { // E4
	benchDetect(b, "dummy.sys", func(c *modchecker.Cloud) error {
		return modchecker.InfectDLLHook(c, "Dom7", "dummy.sys", "inject.dll", "callMessageBox")
	})
}

// benchRuntime benchmarks CheckModule("http.sys") of Dom1 against t-1
// peers, reporting simulated testbed milliseconds alongside wall time.
func benchRuntime(b *testing.B, cloud *modchecker.Cloud, t int, loaded bool) {
	names := cloud.VMNames()[:t]
	if loaded {
		for _, n := range names {
			stress.Apply(cloud.Guest(n), stress.HeavyLoad)
		}
		defer func() {
			for _, n := range names {
				stress.Idle(cloud.Guest(n))
			}
		}()
	}
	checker := cloud.NewChecker()
	hv := cloud.Hypervisor()
	var simTotal, searcher, parser, chk float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hv.Clock().Reset()
		rep, err := checker.CheckModule("http.sys", names[0], names[1:]...)
		if err != nil {
			b.Fatal(err)
		}
		simTotal += rep.Timing.Total().Seconds() * 1e3
		searcher += rep.Timing.Searcher.Seconds() * 1e3
		parser += rep.Timing.Parser.Seconds() * 1e3
		chk += rep.Timing.Checker.Seconds() * 1e3
	}
	b.ReportMetric(simTotal/float64(b.N), "sim-ms/op")
	b.ReportMetric(searcher/float64(b.N), "sim-searcher-ms/op")
	b.ReportMetric(parser/float64(b.N), "sim-parser-ms/op")
	b.ReportMetric(chk/float64(b.N), "sim-checker-ms/op")
}

// BenchmarkFig7RuntimeIdle regenerates Figure 7: one sub-benchmark per pool
// size, idle guests. sim-ms/op grows linearly and sim-searcher dominates.
func BenchmarkFig7RuntimeIdle(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	for t := 2; t <= 15; t++ {
		b.Run(fmt.Sprintf("VMs=%d", t), func(b *testing.B) {
			benchRuntime(b, cloud, t, false)
		})
	}
}

// BenchmarkFig8RuntimeLoaded regenerates Figure 8: guests under HeavyLoad;
// sim-ms/op shows the knee once loaded VMs exceed the 8 virtual cores.
func BenchmarkFig8RuntimeLoaded(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	for t := 2; t <= 15; t++ {
		b.Run(fmt.Sprintf("VMs=%d", t), func(b *testing.B) {
			benchRuntime(b, cloud, t, true)
		})
	}
}

// BenchmarkFig9GuestImpact regenerates Figure 9: a full monitored run with
// two VMI-access windows, reporting the worst per-counter perturbation.
func BenchmarkFig9GuestImpact(b *testing.B) {
	var maxZ float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(120, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxPerturbation > maxZ {
			maxZ = res.MaxPerturbation
		}
	}
	b.ReportMetric(maxZ, "max-z")
}

// BenchmarkAblationParallel (A1) compares sequential against parallel VM
// access on wall time; simulated work is equal.
func BenchmarkAblationParallel(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	for _, variant := range []struct {
		name string
		opts []modchecker.CheckerOption
	}{
		{"sequential", nil},
		{"parallel", []modchecker.CheckerOption{modchecker.WithParallel()}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			checker := cloud.NewChecker(variant.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := checker.CheckPool("http.sys"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRelocNormalize (A2) compares the paper's pairwise diff
// scan against per-VM reloc-table normalization.
func BenchmarkAblationRelocNormalize(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	for _, variant := range []struct {
		name string
		opts []modchecker.CheckerOption
	}{
		{"diff-scan", nil},
		{"reloc-table", []modchecker.CheckerOption{modchecker.WithRelocNormalizer()}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			checker := cloud.NewChecker(variant.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := checker.CheckPool("http.sys"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCopyStrategy (A3) compares page-wise copying against a
// bulk mapping, on simulated introspection time.
func BenchmarkAblationCopyStrategy(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	for _, variant := range []struct {
		name string
		opts []modchecker.CheckerOption
	}{
		{"page-wise", nil},
		{"bulk-mapped", []modchecker.CheckerOption{modchecker.WithMappedCopy()}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			checker := cloud.NewChecker(variant.opts...)
			hv := cloud.Hypervisor()
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hv.Clock().Reset()
				rep, err := checker.CheckModule("http.sys", "Dom1")
				if err != nil {
					b.Fatal(err)
				}
				sim += rep.Timing.Searcher.Seconds() * 1e3
			}
			b.ReportMetric(sim/float64(b.N), "sim-searcher-ms/op")
		})
	}
}

// BenchmarkBaselineVsModChecker compares the hash-dictionary baseline
// (verify one VM against a prebuilt dictionary) with ModChecker checking
// the same VM against 14 peers — the trade the paper's introduction
// discusses: the dictionary is cheaper per check but needs maintenance on
// every legitimate update (see the update-scenario experiment).
func BenchmarkBaselineVsModChecker(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	db := baseline.NewDatabase()
	golden := cloud.Guest("Dom1")
	for _, mod := range golden.Modules() {
		if err := db.AddTrustedImage(mod.Name, golden.DiskImage(mod.Name)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("baseline-dictionary", func(b *testing.B) {
		target, err := cloud.Target("Dom1")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Verify("http.sys", target)
			if err != nil {
				b.Fatal(err)
			}
			if !res.OK() {
				b.Fatal("clean module flagged")
			}
		}
	})
	b.Run("modchecker-cross-vm", func(b *testing.B) {
		checker := cloud.NewChecker()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := checker.CheckModule("http.sys", "Dom1")
			if err != nil {
				b.Fatal(err)
			}
			if rep.Verdict != modchecker.VerdictClean {
				b.Fatal("clean module flagged")
			}
		}
	})
}

// BenchmarkScannerSweep measures one full cloud sweep (7 modules x 15 VMs).
func BenchmarkScannerSweep(b *testing.B) {
	cloud := mustCloud(b, 15, 42)
	sc := cloud.NewScanner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sc.Sweep()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("clean cloud alerted")
		}
	}
}

// BenchmarkSearcherListModules measures the raw loaded-module-list walk.
func BenchmarkSearcherListModules(b *testing.B) {
	cloud := mustCloud(b, 2, 42)
	t, err := cloud.Target("Dom1")
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewSearcher(t.Handle, core.CopyPageWise)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ListModules(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormalizePair measures Algorithm 2 on one .text-sized buffer
// pair.
func BenchmarkNormalizePair(b *testing.B) {
	cloud := mustCloud(b, 2, 42)
	t1, _ := cloud.Target("Dom1")
	t2, _ := cloud.Target("Dom2")
	s1 := core.NewSearcher(t1.Handle, core.CopyPageWise)
	s2 := core.NewSearcher(t2.Handle, core.CopyPageWise)
	i1, buf1, _, err := s1.FetchModule("http.sys")
	if err != nil {
		b.Fatal(err)
	}
	i2, buf2, _, err := s2.FetchModule("http.sys")
	if err != nil {
		b.Fatal(err)
	}
	p1, _, err := core.ParseModule("Dom1", "http.sys", i1.Base, buf1)
	if err != nil {
		b.Fatal(err)
	}
	p2, _, err := core.ParseModule("Dom2", "http.sys", i2.Base, buf2)
	if err != nil {
		b.Fatal(err)
	}
	c1 := p1.Component(".text")
	c2 := p2.Component(".text")
	b.SetBytes(int64(len(c1.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NormalizePair(c1.Data, c2.Data, i1.Base, i2.Base)
	}
}

// BenchmarkCheckModule64 measures the 64-bit checker (ModChecker64
// extension) on a 4-VM pool.
func BenchmarkCheckModule64(b *testing.B) {
	disk, err := amd64.BuildStandardDisk64()
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]amd64.Target64, 4)
	for i := range targets {
		g, err := amd64.NewGuest64(amd64.Config64{
			Name: fmt.Sprintf("x64-%d", i), BootSeed: int64(i + 1), Disk: disk,
		})
		if err != nil {
			b.Fatal(err)
		}
		targets[i] = amd64.Target64{Name: g.Name(), Mem: g.Phys(), CR3: g.CR3()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := amd64.CheckModule64("hal.dll", targets[0], targets[1:])
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict != amd64.Clean64 {
			b.Fatal("clean 64-bit module flagged")
		}
	}
}
