package modchecker

import (
	"bytes"
	"encoding/json"
	"testing"
)

// cacheScenarios are the differential scenarios the digest cache must pass:
// the fleet suite's pools (clean, the paper's E1-E4 infections, cross-shard
// multi-cluster, fault-plan faults, parallel mode) re-run with a store
// attached.
func cacheScenarios() []struct {
	name     string
	seed     int64
	scenario func(*testing.T, *Cloud)
	opts     []CheckerOption
} {
	infect := func(f func(*Cloud) error) func(*testing.T, *Cloud) {
		return func(t *testing.T, c *Cloud) {
			t.Helper()
			if err := f(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return []struct {
		name     string
		seed     int64
		scenario func(*testing.T, *Cloud)
		opts     []CheckerOption
	}{
		{name: "clean", seed: 42},
		{name: "e1-opcode", seed: 43,
			scenario: infect(func(c *Cloud) error { return InfectOpcode(c, "Dom2", "hal.dll") })},
		{name: "e2-inline-hook", seed: 44,
			scenario: infect(func(c *Cloud) error { return InfectInlineHookLive(c, "Dom2", "ndis.sys") })},
		{name: "e3-stub-patch", seed: 45,
			scenario: infect(func(c *Cloud) error { return InfectStubPatch(c, "Dom2", "ntfs.sys", "DOS", "CHK") })},
		{name: "e4-dll-hook", seed: 46,
			scenario: infect(func(c *Cloud) error { return InfectDLLHook(c, "Dom2", "http.sys", "evil.dll", "spy") })},
		{name: "multi-cluster", seed: 47,
			scenario: infect(func(c *Cloud) error {
				if err := InfectOpcode(c, "Dom2", "hal.dll"); err != nil {
					return err
				}
				if err := InfectOpcode(c, "Dom9", "hal.dll"); err != nil {
					return err
				}
				return InfectInlineHookLive(c, "Dom13", "hal.dll")
			})},
		{name: "faulted", seed: 48,
			scenario: func(t *testing.T, c *Cloud) {
				plan := NewFaultPlan(48)
				plan.FailReads("Dom3", 10, 60)
				plan.FailForever("Dom5", 1)
				plan.FlakyReads("Dom11", 0.02)
				c.InstallFaultPlan(plan)
			}},
		{name: "parallel-infected", seed: 49,
			scenario: infect(func(c *Cloud) error { return InfectOpcode(c, "Dom4", "dummy.sys") }),
			opts:     []CheckerOption{WithParallel()}},
	}
}

// TestCachedSweepColdMatchesUncached is the cache's cost-model contract: a
// cold store changes nothing. CostCASLookup is only charged on hits, so the
// first sweep through an empty store must reproduce the uncached sweep
// byte-for-byte — verdicts, alerts, and simulated timing included — for
// every scenario, on the flat path and on the sharded lean fleet path.
func TestCachedSweepColdMatchesUncached(t *testing.T) {
	for _, sc := range cacheScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			plain := differentialSweep(t, sc.seed, sc.scenario, sc.opts...)
			cachedOpts := append(append([]CheckerOption{}, sc.opts...),
				WithDigestCache(NewDigestStore(0)))
			cached := differentialSweep(t, sc.seed, sc.scenario, cachedOpts...)
			if !bytes.Equal(plain, cached) {
				t.Errorf("cold cached sweep diverges from uncached: %s", firstDiffLine(plain, cached))
			}
		})
		t.Run(sc.name+"-fleet", func(t *testing.T) {
			fleetOpts := append(append([]CheckerOption{}, sc.opts...),
				WithShardSize(4), WithLeanReports())
			plain := differentialSweep(t, sc.seed, sc.scenario, fleetOpts...)
			cached := differentialSweep(t, sc.seed, sc.scenario,
				append(append([]CheckerOption{}, fleetOpts...), WithDigestCache(NewDigestStore(0)))...)
			if !bytes.Equal(plain, cached) {
				t.Errorf("cold cached fleet sweep diverges: %s", firstDiffLine(plain, cached))
			}
		})
	}
}

// redactTiming strips the two time-valued subtrees (simulated_ms and the
// timing breakdown) from a sweep's JSON. Warm cached sweeps legitimately
// report less simulated time than uncached sweeps; everything else must
// still agree.
func redactTiming(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "simulated_ms")
	delete(m, "timing")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCachedSweepWarmMatchesUncached: the second sweep over an unchanged
// pool runs almost entirely from the store, and must still agree with the
// uncached second sweep on everything but timing — same verdicts, same
// alerts with the same components, same health — while actually being
// cheaper on the simulated clock.
func TestCachedSweepWarmMatchesUncached(t *testing.T) {
	for _, sc := range cacheScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			secondSweep := func(opts ...CheckerOption) (*SweepReport, []byte) {
				cloud := testCloud(t, 15, sc.seed)
				if sc.scenario != nil {
					sc.scenario(t, cloud)
				}
				s := cloud.NewScanner(append(append([]CheckerOption{}, sc.opts...), opts...)...)
				if _, err := s.Sweep(); err != nil {
					t.Fatal(err)
				}
				rep, err := s.Sweep()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rep.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return rep, buf.Bytes()
			}
			plainRep, plain := secondSweep()
			store := NewDigestStore(0)
			warmRep, warm := secondSweep(WithDigestCache(store))
			if got, want := redactTiming(t, warm), redactTiming(t, plain); !bytes.Equal(got, want) {
				t.Errorf("warm cached sweep diverges beyond timing: %s", firstDiffLine(want, got))
			}
			// The faulted pool keeps the cache inert (no identities under a
			// plan), so no hits and no saving are expected there.
			if sc.name != "faulted" {
				if st := store.Stats(); st.Hits == 0 {
					t.Errorf("warm sweep never hit the store: %+v", st)
				}
			}
			if sc.name != "faulted" && warmRep.Simulated >= plainRep.Simulated {
				t.Errorf("warm sweep not cheaper: cached %v vs uncached %v",
					warmRep.Simulated, plainRep.Simulated)
			}
		})
	}
}

// TestCachedBudgetedResumeMatchesUncached: a budget-cut sweep and its resume
// both run over modules the store has never seen (the cut is the first
// sweep, the resume checks only the deferred remainder), so checkpointing
// under a cold cache must reproduce the uncached partial and resumed
// reports byte-identically — same cut point, same Remaining, same resume.
func TestCachedBudgetedResumeMatchesUncached(t *testing.T) {
	// Measure the budget on a throwaway uncached cloud so the measured run
	// cannot warm the store under test.
	measure := testCloud(t, 15, 51)
	full, err := measure.NewScanner().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	budget := BudgetPolicy{SweepBudget: full.Timing.List + (full.Simulated-full.Timing.List)/2}

	run := func(opts ...CheckerOption) []byte {
		cloud := testCloud(t, 15, 51)
		s := cloud.NewScanner(opts...)
		s.SetBudget(budget)
		var buf bytes.Buffer
		partial, err := s.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if !partial.Partial || len(partial.Remaining) == 0 {
			t.Fatalf("half-budget sweep was not partial: %+v", partial)
		}
		if err := partial.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		resumed, err := s.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if !resumed.Resumed {
			t.Fatal("follow-up sweep did not resume the checkpoint")
		}
		if err := resumed.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run()
	cached := run(WithDigestCache(NewDigestStore(0)))
	if !bytes.Equal(plain, cached) {
		t.Errorf("budgeted cached sweeps diverge from uncached: %s", firstDiffLine(plain, cached))
	}
	sharded := run(WithShardSize(4), WithDigestCache(NewDigestStore(0)))
	if !bytes.Equal(plain, sharded) {
		t.Errorf("budgeted sharded cached sweeps diverge: %s", firstDiffLine(plain, sharded))
	}
}

// TestCachedSteadyStateSkipsFetches pins the cache's point: the second sweep
// over an unchanged copy-on-write fleet recomputes nothing — every digest
// and comparison replays from the store, no new entries are written, and
// guest-memory reads collapse to the per-sweep list walks.
func TestCachedSteadyStateSkipsFetches(t *testing.T) {
	cloud, err := NewCloud(CloudConfig{VMs: 24, Templates: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	store := NewDigestStore(0)
	s := cloud.NewScanner(WithDigestCache(store))

	before := cloud.IntrospectionStats()
	cold, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	afterCold := cloud.IntrospectionStats()
	statsCold := store.Stats()
	if statsCold.Inserts == 0 {
		t.Fatal("cold sweep inserted nothing")
	}

	warm, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	afterWarm := cloud.IntrospectionStats()
	statsWarm := store.Stats()

	if !warm.Clean() {
		t.Fatalf("warm sweep not clean: %+v", warm.Alerts)
	}
	if statsWarm.Inserts != statsCold.Inserts {
		t.Errorf("warm sweep recomputed %d entries", statsWarm.Inserts-statsCold.Inserts)
	}
	if lk, h := statsWarm.Lookups-statsCold.Lookups, statsWarm.Hits-statsCold.Hits; lk == 0 || lk != h {
		t.Errorf("warm sweep lookups %d, hits %d — want all-hit", lk, h)
	}
	coldBytes := afterCold.BytesRead - before.BytesRead
	warmBytes := afterWarm.BytesRead - afterCold.BytesRead
	// The warm sweep still walks every VM's module list; the module bodies —
	// the overwhelming majority of a sweep's reads — must not be re-fetched.
	if warmBytes*4 > coldBytes {
		t.Errorf("warm sweep read %d bytes vs cold %d — fetches not skipped", warmBytes, coldBytes)
	}
	if warm.Simulated >= cold.Simulated/2 {
		t.Errorf("warm sweep simulated %v vs cold %v — no steady-state saving", warm.Simulated, cold.Simulated)
	}
}

// TestCachedSweepDetectsLiveInfection is the staleness contract: an in-place
// infection between two cached sweeps dirties the VM's copy-on-write
// overlay, its content token stops resolving, and the next sweep must
// re-fetch and flag it — a stale CLEAN served from the store would be a
// missed rootkit.
func TestCachedSweepDetectsLiveInfection(t *testing.T) {
	cloud := testCloud(t, 15, 60)
	store := NewDigestStore(0)
	s := cloud.NewScanner(WithDigestCache(store))
	first, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Clean() {
		t.Fatalf("seed sweep not clean: %+v", first.Alerts)
	}
	if err := InfectInlineHookLive(cloud, "Dom2", "ndis.sys"); err != nil {
		t.Fatal(err)
	}
	second, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range second.Alerts {
		if a.VM == "Dom2" && a.Module == "ndis.sys" && a.Verdict == VerdictAltered {
			found = true
		}
	}
	if !found {
		t.Fatalf("infection after a cached sweep not flagged; alerts: %+v", second.Alerts)
	}
}

// TestCachedSweepRevertBumpsEpoch: a snapshot revert restores the exact
// pre-sweep image — same frozen base layer, same SnapshotID — but rewrites
// memory behind every open handle's back, so the mapping epoch is bumped
// and must be part of the content token: the post-revert sweep may not
// address the pre-revert entries even though the bytes happen to match.
func TestCachedSweepRevertBumpsEpoch(t *testing.T) {
	cloud := testCloud(t, 15, 61)
	store := NewDigestStore(0)
	s := cloud.NewScanner(WithDigestCache(store))
	d := cloud.Domain("Dom2")
	if err := d.TakeSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	statsBefore := store.Stats()
	if err := d.Revert("clean"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-revert sweep not clean: %+v", rep.Alerts)
	}
	statsAfter := store.Stats()
	if statsAfter.Inserts == statsBefore.Inserts {
		t.Error("post-revert sweep wrote no new entries — epoch not folded into the token")
	}
}

// TestCachedSweepInertUnderFaultPlan: targets opened under a fault plan
// advertise no identity, so a faulted pool must never touch the store —
// neither populating it with possibly fault-corrupted reads nor serving
// hits whose per-VM fault schedules would be skipped.
func TestCachedSweepInertUnderFaultPlan(t *testing.T) {
	cloud := testCloud(t, 15, 62)
	plan := NewFaultPlan(62)
	plan.FlakyReads("Dom4", 0.05)
	cloud.InstallFaultPlan(plan)
	store := NewDigestStore(0)
	s := cloud.NewScanner(WithDigestCache(store))
	if _, err := s.Sweep(); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Lookups != 0 || st.Inserts != 0 || store.Len() != 0 {
		t.Errorf("faulted sweep touched the store: %+v", st)
	}
}

// TestCachedSweepPersistentReopen: digests written through the persistent
// tier must survive a close/reopen under the same fingerprint and make the
// next run's first sweep warm — the cross-run version of the steady state.
func TestCachedSweepPersistentReopen(t *testing.T) {
	cfg := CloudConfig{VMs: 15, Seed: 63}
	path := t.TempDir() + "/digests.cas"

	cloud1, err := NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store1, err := OpenDigestStore(path, cfg.CacheFingerprint(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := cloud1.NewScanner(WithDigestCache(store1))
	cold, err := s1.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second run: same deterministic cloud, fresh process state.
	cloud2, err := NewCloud(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := OpenDigestStore(path, cfg.CacheFingerprint(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if st := store2.Stats(); st.Loaded == 0 {
		t.Fatal("persistent tier replayed nothing")
	}
	s2 := cloud2.NewScanner(WithDigestCache(store2))
	warm, err := s2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Clean() {
		t.Fatalf("reopened-store sweep not clean: %+v", warm.Alerts)
	}
	if st := store2.Stats(); st.Hits == 0 {
		t.Errorf("reopened store served no hits: %+v", st)
	}
	if warm.Simulated >= cold.Simulated/2 {
		t.Errorf("reopened store gave no saving: warm %v vs cold %v", warm.Simulated, cold.Simulated)
	}
	// A foreign fingerprint must not serve this store's tokens.
	store3, err := OpenDigestStore(path, "some-other-cloud", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if st := store3.Stats(); st.Loaded != 0 {
		t.Errorf("foreign fingerprint replayed %d entries", st.Loaded)
	}
}

// TestTargetIdentityTracksRevert pins the stale-capture fix in
// Cloud.Target: a snapshot revert swaps the guest's backing memory object,
// so an identity closure pinned to the pre-revert object would keep
// advertising the old frozen layer's stable ID while the actual image
// diverges — and identity dedup or the digest cache would treat an infected
// VM as bit-identical to its clean template.
func TestTargetIdentityTracksRevert(t *testing.T) {
	cloud := testCloud(t, 15, 64)
	d := cloud.Domain("Dom2")
	if err := d.TakeSnapshot("pre"); err != nil {
		t.Fatal(err)
	}
	tgt, err := cloud.Target("Dom2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tgt.Identity(); !ok {
		t.Fatal("snapshotted guest has no stable identity")
	}
	epoch0 := tgt.Epoch()
	if err := d.Revert("pre"); err != nil {
		t.Fatal(err)
	}
	if tgt.Epoch() == epoch0 {
		t.Error("revert did not bump the target's mapping epoch")
	}
	if err := InfectOpcode(cloud, "Dom2", "hal.dll"); err != nil {
		t.Fatal(err)
	}
	if id, ok := tgt.Identity(); ok {
		t.Errorf("diverged guest still advertises identity %d — stale memory capture", id)
	}
}
