// Command benchjson converts `go test -bench -benchmem` output into the
// repository's benchmark-trajectory JSON (BENCH_<n>.json). It is stdlib-only
// and deliberately dumb: every benchmark line becomes one record carrying
// host ns/op, B/op, allocs/op and any custom b.ReportMetric units
// (sim-ms/op, ptwalks/op, ...), and a summary block compares the
// Fig7Sweep15 legacy/pipeline pair — the PR's headline numbers.
//
// It also compares the run against the repository's newest prior
// BENCH_<n>.json (excluding the one being written) and prints per-benchmark
// deltas for ns/op, B/op, and sim-ms/op, flagging regressions over 10% —
// the CI job summary's trend table.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... > bench.out
//	go run ./cmd/benchjson -out BENCH_3.json < bench.out
//	go run ./cmd/benchjson -out BENCH_8.json -md "$GITHUB_STEP_SUMMARY" < bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present when -benchmem was on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units, keyed by unit name
	// (e.g. "sim-ms/op", "ptwalks/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the BENCH_<n>.json document.
type Output struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Summary    map[string]string `json:"summary,omitempty"`
}

// parseLine parses one "BenchmarkName-8  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			vv := v
			b.BytesPerOp = &vv
		case "allocs/op":
			vv := v
			b.AllocsPerOp = &vv
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// summarize derives the headline comparison from the Fig7Sweep15 pair: host
// speedup, simulated speedup, and the page-table-walk reduction of the
// optimized pipeline over the paper-faithful legacy sweep.
func summarize(benches []Benchmark) map[string]string {
	var legacy, pipeline, traced, chaos *Benchmark
	for i := range benches {
		switch benches[i].Name {
		case "BenchmarkFig7Sweep15/legacy":
			legacy = &benches[i]
		case "BenchmarkFig7Sweep15/pipeline":
			pipeline = &benches[i]
		case "BenchmarkFig7Sweep15/traced":
			traced = &benches[i]
		case "BenchmarkFig7Sweep15/chaos":
			chaos = &benches[i]
		}
	}
	if legacy == nil || pipeline == nil {
		if pipeline != nil && (traced != nil || chaos != nil) {
			s := map[string]string{}
			if traced != nil {
				traceSummary(pipeline, traced, s)
			}
			if chaos != nil {
				chaosSummary(pipeline, chaos, s)
			}
			return s
		}
		return nil
	}
	s := map[string]string{
		"baseline":            "BenchmarkFig7Sweep15/legacy: sequential full-pairwise sweep, no translation cache, one LDR walk per module per VM",
		"optimized":           "BenchmarkFig7Sweep15/pipeline: digest pre-clustering, bounded parallel stages, per-handle TLB, per-sweep module-table snapshot",
		"legacy_ns_per_op":    fmt.Sprintf("%.0f", legacy.NsPerOp),
		"pipeline_ns_per_op":  fmt.Sprintf("%.0f", pipeline.NsPerOp),
		"host_speedup":        fmt.Sprintf("%.2fx", legacy.NsPerOp/pipeline.NsPerOp),
		"legacy_ptwalks_op":   fmt.Sprintf("%.0f", legacy.Metrics["ptwalks/op"]),
		"pipeline_ptwalks_op": fmt.Sprintf("%.0f", pipeline.Metrics["ptwalks/op"]),
	}
	if lw, pw := legacy.Metrics["ptwalks/op"], pipeline.Metrics["ptwalks/op"]; lw > 0 {
		s["ptwalks_reduction"] = fmt.Sprintf("%.1f%%", 100*(lw-pw)/lw)
	}
	if lm, pm := legacy.Metrics["sim-ms/op"], pipeline.Metrics["sim-ms/op"]; pm > 0 {
		s["sim_speedup"] = fmt.Sprintf("%.2fx", lm/pm)
	}
	if traced != nil {
		traceSummary(pipeline, traced, s)
	}
	if chaos != nil {
		chaosSummary(pipeline, chaos, s)
	}
	return s
}

// traceSummary adds the observability-overhead comparison: how much host
// wall time the deterministic tracer costs relative to the same pipelined
// sweep with tracing off. The acceptance budget is < 10%.
func traceSummary(pipeline, traced *Benchmark, s map[string]string) map[string]string {
	s["traced_ns_per_op"] = fmt.Sprintf("%.0f", traced.NsPerOp)
	if pipeline.NsPerOp > 0 {
		s["trace_overhead"] = fmt.Sprintf("%.1f%%", 100*(traced.NsPerOp-pipeline.NsPerOp)/pipeline.NsPerOp)
	}
	return s
}

// chaosSummary adds the robustness-overhead comparison: the host wall-time
// cost of the armed-but-inert fault plane and budget accounting relative to
// the bare pipeline sweep.
func chaosSummary(pipeline, chaos *Benchmark, s map[string]string) map[string]string {
	s["chaos_ns_per_op"] = fmt.Sprintf("%.0f", chaos.NsPerOp)
	if pipeline.NsPerOp > 0 {
		s["chaos_overhead"] = fmt.Sprintf("%.1f%%", 100*(chaos.NsPerOp-pipeline.NsPerOp)/pipeline.NsPerOp)
	}
	return s
}

// regressionThreshold is the relative growth in a cost metric above which a
// delta row is flagged. All compared metrics are costs: higher is worse.
const regressionThreshold = 10.0

// deltaRow is one benchmark metric compared against the baseline run.
type deltaRow struct {
	Bench     string
	Metric    string
	Old, New  float64
	Pct       float64
	Regressed bool
}

// findBaseline returns the BENCH_<n>.json in dir with the highest n,
// excluding the file the current run is being written to, or "" when there
// is no prior record to compare against.
func findBaseline(dir, exclude string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best, bestName := -1, ""
	for _, e := range entries {
		name := e.Name()
		if name == exclude {
			continue
		}
		numeric, ok := strings.CutPrefix(name, "BENCH_")
		if !ok {
			continue
		}
		numeric, ok = strings.CutSuffix(numeric, ".json")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(numeric)
		if err != nil {
			continue
		}
		if n > best {
			best, bestName = n, name
		}
	}
	if bestName == "" {
		return ""
	}
	return filepath.Join(dir, bestName)
}

// sameFile reports whether two paths name the same file, tolerating
// spelling differences ("./BENCH_9.json" vs "BENCH_9.json", symlinks). A
// stat failure falls back to lexical comparison — the guard must also catch
// an output file that does not exist yet.
func sameFile(a, b string) bool {
	if filepath.Clean(a) == filepath.Clean(b) {
		return true
	}
	ia, err := os.Stat(a)
	if err != nil {
		return false
	}
	ib, err := os.Stat(b)
	if err != nil {
		return false
	}
	return os.SameFile(ia, ib)
}

// compareRuns lines the current run up against the baseline, benchmark by
// benchmark, over the three tracked cost metrics. Benchmarks present on only
// one side are skipped — a new benchmark has no trend yet.
func compareRuns(baseline, current *Output) []deltaRow {
	prior := make(map[string]*Benchmark, len(baseline.Benchmarks))
	for i := range baseline.Benchmarks {
		prior[baseline.Benchmarks[i].Name] = &baseline.Benchmarks[i]
	}
	metricOf := func(b *Benchmark, metric string) (float64, bool) {
		switch metric {
		case "ns/op":
			return b.NsPerOp, b.NsPerOp > 0
		case "B/op":
			if b.BytesPerOp == nil {
				return 0, false
			}
			return *b.BytesPerOp, true
		default:
			v, ok := b.Metrics[metric]
			return v, ok
		}
	}
	var rows []deltaRow
	for i := range current.Benchmarks {
		cur := &current.Benchmarks[i]
		old, ok := prior[cur.Name]
		if !ok {
			continue
		}
		for _, metric := range []string{"ns/op", "B/op", "sim-ms/op"} {
			ov, ook := metricOf(old, metric)
			nv, nok := metricOf(cur, metric)
			if !ook || !nok || ov == 0 {
				continue
			}
			pct := 100 * (nv - ov) / ov
			rows = append(rows, deltaRow{
				Bench: cur.Name, Metric: metric, Old: ov, New: nv,
				Pct: pct, Regressed: pct > regressionThreshold,
			})
		}
	}
	return rows
}

func fmtMetric(v float64) string {
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// writeDeltas renders the delta rows as a GitHub-flavored markdown table.
func writeDeltas(w io.Writer, baselinePath string, rows []deltaRow) {
	fmt.Fprintf(w, "### Benchmark deltas vs %s\n\n", filepath.Base(baselinePath))
	if len(rows) == 0 {
		fmt.Fprintln(w, "No overlapping benchmarks to compare.")
		return
	}
	fmt.Fprintln(w, "| benchmark | metric | baseline | current | delta |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|")
	regressions := 0
	for _, r := range rows {
		flag := ""
		if r.Regressed {
			flag = " ⚠️"
			regressions++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %+.1f%%%s |\n",
			strings.TrimPrefix(r.Bench, "Benchmark"), r.Metric,
			fmtMetric(r.Old), fmtMetric(r.New), r.Pct, flag)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n**%d metric(s) regressed more than %.0f%%.**\n", regressions, regressionThreshold)
	} else {
		fmt.Fprintf(w, "\nNo regressions above %.0f%%.\n", regressionThreshold)
	}
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "auto",
		"prior BENCH_<n>.json to diff against: a path, 'auto' (newest in the output directory), or 'none'")
	md := flag.String("md", "", "append the delta table to this markdown file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	doc := Output{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = cpu
			continue
		}
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading input:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc.Summary = summarize(doc.Benchmarks)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	basePath := *baseline
	if basePath == "auto" {
		dir := "."
		if *out != "" {
			dir = filepath.Dir(*out)
		}
		basePath = findBaseline(dir, filepath.Base(*out))
	} else if basePath == "none" {
		basePath = ""
	}
	if basePath == "" {
		return
	}
	// A run diffed against itself would always report "no regressions";
	// auto mode excludes the output file, but an explicit -baseline can
	// still name it.
	if *out != "" && sameFile(basePath, *out) {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s is the file being written; refusing to compare a run against itself\n", basePath)
		os.Exit(1)
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading baseline:", err)
		os.Exit(1)
	}
	var prior Output
	if err := json.Unmarshal(raw, &prior); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: parsing baseline:", err)
		os.Exit(1)
	}
	rows := compareRuns(&prior, &doc)
	writeDeltas(os.Stderr, basePath, rows)
	if *md != "" {
		f, err := os.OpenFile(*md, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: opening markdown output:", err)
			os.Exit(1)
		}
		writeDeltas(f, basePath, rows)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: closing markdown output:", err)
			os.Exit(1)
		}
	}
}
