package main

import (
	"os"
	"path/filepath"
	"testing"
)

func touch(t *testing.T, dir, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFindBaselineExcludesOutput(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "BENCH_8.json")
	touch(t, dir, "BENCH_9.json")

	// Writing BENCH_9.json: the newest *other* record is the baseline. The
	// historical bug compared the fresh run against the file it had just
	// written — every delta 0.0%, every regression invisible.
	got := findBaseline(dir, "BENCH_9.json")
	if want := filepath.Join(dir, "BENCH_8.json"); got != want {
		t.Errorf("findBaseline = %q, want %q", got, want)
	}

	// A first run has nothing to compare against.
	if got := findBaseline(t.TempDir(), "BENCH_1.json"); got != "" {
		t.Errorf("empty dir: findBaseline = %q, want \"\"", got)
	}
}

func TestFindBaselineOrdersNumerically(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "BENCH_2.json")
	touch(t, dir, "BENCH_10.json")
	touch(t, dir, "BENCH_9.json")

	// Lexically "BENCH_9.json" > "BENCH_10.json"; numerically 10 wins.
	got := findBaseline(dir, "BENCH_11.json")
	if want := filepath.Join(dir, "BENCH_10.json"); got != want {
		t.Errorf("findBaseline = %q, want %q", got, want)
	}
}

func TestFindBaselineSkipsNonMatchingNames(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "BENCH_notes.json")
	touch(t, dir, "BENCH_3.txt")
	touch(t, dir, "bench_4.json")
	touch(t, dir, "BENCH_3.json")

	got := findBaseline(dir, "")
	if want := filepath.Join(dir, "BENCH_3.json"); got != want {
		t.Errorf("findBaseline = %q, want %q", got, want)
	}
}

func TestSameFileCatchesSpellings(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "BENCH_9.json")
	p := filepath.Join(dir, "BENCH_9.json")

	cases := []struct {
		a, b string
		want bool
	}{
		{p, p, true},
		{p, filepath.Join(dir, ".", "BENCH_9.json"), true},
		{p, filepath.Join(dir, "BENCH_8.json"), false},
		// Both nonexistent but lexically equal: still the same target.
		{filepath.Join(dir, "new.json"), filepath.Join(dir, "x", "..", "new.json"), true},
	}
	for _, c := range cases {
		if got := sameFile(c.a, c.b); got != c.want {
			t.Errorf("sameFile(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkFig7Sweep15/pipeline-8   12   94821 ns/op   3.21 sim-ms/op   104 ptwalks/op   5120 B/op   41 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkFig7Sweep15/pipeline" || b.Iterations != 12 {
		t.Errorf("name/iters = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 94821 || b.Metrics["sim-ms/op"] != 3.21 || b.Metrics["ptwalks/op"] != 104 {
		t.Errorf("metrics = %v (ns %v)", b.Metrics, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 5120 || b.AllocsPerOp == nil || *b.AllocsPerOp != 41 {
		t.Errorf("benchmem fields = %v/%v", b.BytesPerOp, b.AllocsPerOp)
	}
	if _, ok := parseLine("ok  \tmodchecker\t13.468s"); ok {
		t.Error("non-benchmark line parsed")
	}
}
