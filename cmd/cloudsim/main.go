// Command cloudsim builds and inspects the simulated testbed itself: the
// hypervisor, the guest pool, their memory layouts, snapshots and the
// monitor — the substrate the ModChecker experiments run on.
//
//	cloudsim -vms 4                       # boot and describe the cloud
//	cloudsim -vms 4 -monitor Dom2 -steps 50   # stream a perfmon trace (CSV)
//	cloudsim -vms 4 -revert-demo          # infect, snapshot-revert, verify
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"modchecker"
	"modchecker/internal/monitor"
)

func main() {
	vms := flag.Int("vms", 4, "number of cloned guest VMs")
	seed := flag.Int64("seed", 42, "deterministic cloud seed")
	mon := flag.String("monitor", "", "stream a resource-monitor CSV trace for this VM")
	sink := flag.String("sink", "", "also stream monitor records to this TCP collector address (start one with -collect)")
	collect := flag.Bool("collect", false, "run a record collector on 127.0.0.1:0, print its address, and dump per-VM traces on stdin EOF")
	steps := flag.Int("steps", 50, "monitor steps (100ms simulated each)")
	revertDemo := flag.Bool("revert-demo", false, "demonstrate snapshot-based remediation")
	flag.Parse()

	if *collect {
		runCollector()
		return
	}

	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: *vms, Seed: *seed})
	if err != nil {
		die("building cloud: %v", err)
	}

	if *mon != "" {
		g := cloud.Guest(*mon)
		if g == nil {
			die("no VM %q", *mon)
		}
		var trace *monitor.Trace
		if *sink != "" {
			// Ship each reading off-box as it is sampled, like the
			// paper's in-guest tool.
			conn, err := monitor.Dial(*sink)
			if err != nil {
				die("dialing sink: %v", err)
			}
			defer conn.Close()
			trace, err = monitor.NewRecorder(g).RunStream(*steps, 100, nil, nil, conn)
			if err != nil {
				die("streaming trace: %v", err)
			}
		} else {
			trace = monitor.NewRecorder(g).Run(*steps, 100, nil)
		}
		if err := trace.WriteCSV(os.Stdout); err != nil {
			die("writing trace: %v", err)
		}
		return
	}

	if *revertDemo {
		runRevertDemo(cloud)
		return
	}

	hv := cloud.Hypervisor()
	fmt.Printf("hypervisor: %d virtual cores, %d domains\n", hv.Cores(), len(hv.Domains()))
	checker := cloud.NewChecker()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "VM\tMODULE\tBASE\tSIZE")
	for _, name := range cloud.VMNames() {
		mods, err := checker.ListModules(name)
		if err != nil {
			die("listing %s: %v", name, err)
		}
		for _, m := range mods {
			fmt.Fprintf(w, "%s\t%s\t%#x\t%#x\n", name, m.Name, m.Base, m.SizeOfImage)
		}
	}
	w.Flush()
	fmt.Println("\nnote: identical modules sit at different bases on every VM —")
	fmt.Println("the relocation variance ModChecker's Integrity-Checker normalizes away.")
}

// runRevertDemo shows the remediation loop the paper's Section III-B
// recommends: snapshot clean state, detect an infection, revert, verify.
func runRevertDemo(cloud *modchecker.Cloud) {
	const victim = "Dom2"
	dom := cloud.Domain(victim)
	if err := dom.TakeSnapshot("clean"); err != nil {
		die("snapshot: %v", err)
	}
	fmt.Printf("snapshot 'clean' taken on %s\n", victim)

	if err := modchecker.InfectPreset(cloud, victim, "opcode-patch"); err != nil {
		die("infect: %v", err)
	}
	fmt.Printf("%s infected with opcode-patch (hal.dll)\n", victim)

	checker := cloud.NewChecker()
	rep, err := checker.CheckPool("hal.dll")
	if err != nil {
		die("check: %v", err)
	}
	fmt.Printf("pool sweep flags: %v\n", rep.Flagged)

	if err := dom.Revert("clean"); err != nil {
		die("revert: %v", err)
	}
	fmt.Printf("%s reverted to snapshot 'clean'\n", victim)

	rep, err = checker.CheckPool("hal.dll")
	if err != nil {
		die("recheck: %v", err)
	}
	if len(rep.Flagged) == 0 {
		fmt.Println("post-revert sweep: all VMs consistent — infection flushed")
	} else {
		fmt.Printf("post-revert sweep still flags %v\n", rep.Flagged)
		os.Exit(1)
	}
}

// runCollector hosts the remote-storage end of the monitor: it prints its
// listen address, then on stdin EOF dumps everything received as CSV.
func runCollector() {
	col, err := monitor.NewCollector("127.0.0.1:0")
	if err != nil {
		die("collector: %v", err)
	}
	defer col.Close()
	fmt.Println(col.Addr())
	// Wait for the operator (or pipeline) to close stdin.
	buf := make([]byte, 4096)
	for {
		if _, err := os.Stdin.Read(buf); err != nil {
			break
		}
	}
	for _, vm := range col.VMs() {
		fmt.Printf("# trace for %s\n", vm)
		if err := col.Trace(vm).WriteCSV(os.Stdout); err != nil {
			die("dumping %s: %v", vm, err)
		}
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cloudsim: "+format+"\n", args...)
	os.Exit(2)
}
