// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated cloud:
//
//	experiments -run detect   # Section V-B experiments E1-E4
//	experiments -run fig7     # runtime vs #VMs, idle
//	experiments -run fig8     # runtime vs #VMs, heavily loaded
//	experiments -run fig9     # in-guest impact of VMI access
//	experiments -run ablations
//	experiments -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"modchecker/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "which experiment to run: detect|fig7|fig8|fig9|ablations|all")
	vms := flag.Int("vms", 15, "pool size (paper: 15)")
	seed := flag.Int64("seed", 42, "cloud seed")
	csv := flag.Bool("csv", false, "emit the fig9 trace as CSV instead of a summary")
	flag.Parse()

	ok := true
	for _, r := range strings.Split(*run, ",") {
		switch r {
		case "detect":
			ok = runDetect(*vms, *seed) && ok
		case "fig7":
			ok = runFig(7, *vms, *seed) && ok
		case "fig8":
			ok = runFig(8, *vms, *seed) && ok
		case "fig9":
			ok = runFig9(*seed, *csv) && ok
		case "ablations":
			ok = runAblations(*vms, *seed) && ok
		case "update":
			ok = runUpdate(*vms, *seed) && ok
		case "cluster":
			ok = runCluster(*vms, *seed) && ok
		case "all":
			ok = runDetect(*vms, *seed) && ok
			ok = runFig(7, *vms, *seed) && ok
			ok = runFig(8, *vms, *seed) && ok
			ok = runFig9(*seed, false) && ok
			ok = runAblations(*vms, *seed) && ok
			ok = runUpdate(*vms, *seed) && ok
			ok = runCluster(*vms, *seed) && ok
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", r)
			os.Exit(2)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func runDetect(vms int, seed int64) bool {
	fmt.Printf("== Section V-B: integrity checking (pool of %d VMs, 1 infected) ==\n", vms)
	results, err := experiments.RunDetections(vms, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		return false
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tEXPERIMENT\tMODULE\tFLAGGED\tMISMATCHED COMPONENTS\tDETECTED\tAS IN PAPER")
	ok := true
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%s\t%v\t%v\n",
			r.ID, r.Name, r.Module, r.Flagged,
			strings.Join(r.MismatchedComponents, ", "), r.Detected, r.AsInPaper)
		ok = ok && r.Detected && r.AsInPaper
	}
	w.Flush()
	fmt.Println()
	return ok
}

func runFig(fig, vms int, seed int64) bool {
	var rows []experiments.RuntimeRow
	var err error
	if fig == 7 {
		fmt.Printf("== Figure 7: ModChecker runtime vs #VMs (idle, http.sys) ==\n")
		rows, err = experiments.Fig7(vms, seed)
	} else {
		fmt.Printf("== Figure 8: ModChecker runtime vs #VMs (HeavyLoad, http.sys, %d cores) ==\n", 8)
		rows, err = experiments.Fig8(vms, seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig%d: %v\n", fig, err)
		return false
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "VMs\tModule-Searcher\tModule-Parser\tIntegrity-Checker\tTotal\tSlowdown\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fx\t\n",
			r.VMs, ms(r.Searcher), ms(r.Parser), ms(r.Checker), ms(r.Total), r.Slowdown)
	}
	w.Flush()
	fmt.Println()
	return true
}

func ms(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }

func runFig9(seed int64, csv bool) bool {
	res, err := experiments.Fig9(120, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig9:", err)
		return false
	}
	if csv {
		if err := res.Trace.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fig9 csv:", err)
			return false
		}
		return true
	}
	fmt.Println("== Figure 9: in-guest CPU/memory impact during VMI access ==")
	fmt.Println("perturbation of each counter inside the access window, in baseline std-devs:")
	for _, p := range res.SortedPerturbations() {
		fmt.Println("  ", p)
	}
	verdict := "no significant perturbation (matches the paper)"
	if res.MaxPerturbation > 3 {
		verdict = "PERTURBATION DETECTED (does not match the paper)"
	}
	fmt.Printf("max z=%.2f -> %s\n\n", res.MaxPerturbation, verdict)
	return res.MaxPerturbation <= 3
}

func runUpdate(vms int, seed int64) bool {
	fmt.Println("== Update scenario: ModChecker vs hash-dictionary baseline ==")
	res, err := experiments.UpdateScenario(vms, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "update:", err)
		return false
	}
	fmt.Printf("legitimate fleet-wide ndis.sys update across %d VMs:\n", res.VMs)
	fmt.Printf("  ModChecker false alarms:      %d\n", res.ModCheckerFalseAlarms)
	fmt.Printf("  hash-dictionary false alarms: %d (dictionary stale until %d refresh(es))\n",
		res.BaselineFalseAlarms, res.DictionaryRefreshes)
	fmt.Printf("genuine hal.dll infection on one VM:\n")
	fmt.Printf("  ModChecker detected: %v\n", res.ModCheckerDetected)
	fmt.Printf("  baseline detected:   %v\n\n", res.BaselineDetected)
	return res.ModCheckerFalseAlarms == 0 && res.ModCheckerDetected && res.BaselineDetected
}

func runCluster(vms int, seed int64) bool {
	fmt.Println("== Rolling-update scenario: majority vote vs version clustering ==")
	res, err := experiments.ClusterScenario(vms, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		return false
	}
	fmt.Printf("ndis.sys updated on %d of %d VMs (rolling update in flight):\n", res.Updated, res.VMs)
	fmt.Printf("  plain majority sweep disturbs:  %d/%d VMs (split pool has no majority)\n",
		res.PlainDisturbed, res.VMs)
	fmt.Printf("  cluster sweep sees:             %v (self-consistent version groups), %d flagged, %d suspicious\n",
		res.Clusters, res.ClusterFlagged, res.ClusterSuspicious)
	fmt.Printf("  infection on one updated VM:    singled out as suspicious = %v\n\n", res.InfectionSingled)
	return res.ClusterFlagged == 0 && res.ClusterSuspicious == 0 && res.InfectionSingled
}

func runAblations(vms int, seed int64) bool {
	fmt.Println("== Ablations (DESIGN.md A1-A3) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ABLATION\tVARIANT\tVMs\tSIMULATED\tWALL\tVERDICTS AGREE")
	ok := true
	for _, f := range []func(int, int64) ([]experiments.AblationRow, error){
		experiments.AblationParallel, experiments.AblationNormalizer, experiments.AblationCopy,
	} {
		rows, err := f(vms, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			return false
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%v\t%v\t%v\n",
				r.Ablation, r.Variant, r.VMs, r.Simulated.Round(10e3), r.Wall.Round(10e3), r.VerdictsAgree)
			ok = ok && r.VerdictsAgree
		}
	}
	w.Flush()
	fmt.Println()
	return ok
}
