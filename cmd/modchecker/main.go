// Command modchecker runs the integrity checker against a simulated cloud,
// the way the paper's prototype runs in Dom0 against a pool of Windows XP
// guests:
//
//	modchecker -vms 15 -module hal.dll -target Dom1      # one VM vs peers
//	modchecker -vms 15 -module hal.dll -pool             # sweep all VMs
//	modchecker -infect Dom3:opcode-patch -module hal.dll -pool -json
//	modchecker -watch 5                                  # 5 scanner sweeps
//	modchecker -watch 2 -parallel -trace t.json -metrics # sweep + observability
//	modchecker -list Dom1                                # loaded modules
//	modchecker -presets                                  # infection presets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"modchecker"
	"modchecker/internal/report"
)

func main() {
	vms := flag.Int("vms", 15, "number of cloned guest VMs (paper: 15)")
	seed := flag.Int64("seed", 42, "deterministic cloud seed")
	module := flag.String("module", "hal.dll", "kernel module to check")
	target := flag.String("target", "", "check this VM against all peers")
	pool := flag.Bool("pool", false, "sweep the module across every VM")
	watch := flag.Int("watch", 0, "run N scanner sweeps over every module and report alerts")
	sweepBudget := flag.Duration("sweep-budget", 0, "simulated-time budget per sweep; exhausted sweeps checkpoint and resume (0 = unlimited)")
	vmBudget := flag.Duration("vm-budget", 0, "simulated-time budget per VM per sweep (0 = unlimited)")
	infect := flag.String("infect", "", "comma-separated VM:preset infections to apply first")
	list := flag.String("list", "", "list the loaded modules of this VM (via introspection) and exit")
	presets := flag.Bool("presets", false, "list infection presets and exit")
	parallel := flag.Bool("parallel", false, "access VM memory in parallel")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	verbose := flag.Bool("v", false, "print per-peer comparison details")
	cachePath := flag.String("cache", "", "persistent digest-cache file; sweeps reuse digests across runs of the same cloud config")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (open in Perfetto or chrome://tracing)")
	metricsOut := flag.Bool("metrics", false, "dump the metrics registry (counters, histograms) after the run")
	flag.Parse()

	if *presets {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "PRESET\tMODULE\tDESCRIPTION")
		for _, p := range modchecker.InfectionPresets() {
			fmt.Fprintf(w, "%s\t%s\t%s\n", p.Name, p.Module, p.Description)
		}
		w.Flush()
		return
	}

	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: *vms, Seed: *seed})
	if err != nil {
		die("building cloud: %v", err)
	}
	if !*jsonOut {
		fmt.Printf("cloud up: %d identical WinXP-SP2 guests (%s..%s)\n",
			*vms, cloud.VMNames()[0], cloud.VMNames()[*vms-1])
	}

	for _, spec := range splitNonEmpty(*infect) {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			die("bad -infect spec %q (want VM:preset)", spec)
		}
		if err := modchecker.InfectPreset(cloud, parts[0], parts[1]); err != nil {
			die("infect: %v", err)
		}
		if !*jsonOut {
			fmt.Printf("infected %s with %s\n", parts[0], parts[1])
		}
	}

	// Tracing must be enabled before checkers and scanners are created —
	// they capture the tracer at construction.
	if *traceOut != "" {
		cloud.EnableTrace(0)
	}

	var opts []modchecker.CheckerOption
	if *parallel {
		opts = append(opts, modchecker.WithParallel())
	}
	var cache *modchecker.DigestStore
	if *cachePath != "" {
		// The fingerprint ties the file to this cloud shape: reopening it
		// under different -vms/-seed discards the stored digests instead of
		// serving another cloud's.
		cfg := modchecker.CloudConfig{VMs: *vms, Seed: *seed}
		cache, err = modchecker.OpenDigestStore(*cachePath, cfg.CacheFingerprint(), 0)
		if err != nil {
			die("opening digest cache: %v", err)
		}
		st := cache.Stats()
		if !*jsonOut && st.Loaded > 0 {
			fmt.Printf("digest cache: %d entries loaded from %s\n", st.Loaded, *cachePath)
		}
		opts = append(opts, modchecker.WithDigestCache(cache))
	}
	checker := cloud.NewChecker(opts...)

	exitCode := 0
	switch {
	case *list != "":
		mods, err := checker.ListModules(*list)
		if err != nil {
			die("list: %v", err)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "MODULE\tBASE\tSIZE\tENTRY\tPATH")
		for _, m := range mods {
			fmt.Fprintf(w, "%s\t%#x\t%#x\t%#x\t%s\n", m.Name, m.Base, m.SizeOfImage, m.EntryPoint, m.FullName)
		}
		w.Flush()
	case *watch > 0:
		if runWatch(cloud, *watch, opts, watchConfig{
			json: *jsonOut, sweepBudget: *sweepBudget, vmBudget: *vmBudget,
		}) {
			exitCode = 1
		}
	case *pool:
		rep, err := checker.CheckPool(*module)
		if err != nil {
			die("pool check: %v", err)
		}
		if *jsonOut {
			if err := report.WritePoolJSON(os.Stdout, rep); err != nil {
				die("render: %v", err)
			}
		} else {
			fmt.Printf("\npool sweep of %s across %d VMs:\n", *module, *vms)
			if err := report.WritePoolText(os.Stdout, rep, *verbose); err != nil {
				die("render: %v", err)
			}
		}
		if len(rep.Flagged) > 0 || len(rep.Inconclusive) > 0 {
			exitCode = 1
		}
	case *target != "":
		rep, err := checker.CheckModule(*module, *target)
		if err != nil {
			die("check: %v", err)
		}
		if *jsonOut {
			if err := report.WriteModuleJSON(os.Stdout, rep); err != nil {
				die("render: %v", err)
			}
		} else if err := report.WriteModuleText(os.Stdout, rep, *verbose); err != nil {
			die("render: %v", err)
		}
		if rep.Verdict != modchecker.VerdictClean {
			exitCode = 1
		}
	default:
		die("nothing to do: pass -target VM, -pool, -watch N, -list VM or -presets")
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			die("trace: %v", err)
		}
		if err := cloud.Tracer().WriteChromeJSON(f); err != nil {
			die("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			die("trace: %v", err)
		}
		if !*jsonOut {
			fmt.Printf("wrote trace to %s (%d events)\n", *traceOut, cloud.Tracer().Len())
		}
	}
	if *metricsOut {
		snap := cloud.Metrics().Snapshot()
		if *jsonOut {
			if err := snap.WriteJSON(os.Stdout); err != nil {
				die("metrics: %v", err)
			}
		} else {
			fmt.Println("\nmetrics:")
			if err := snap.WriteText(os.Stdout); err != nil {
				die("metrics: %v", err)
			}
		}
	}
	if cache != nil {
		// main exits via os.Exit, so the cache is closed explicitly: a
		// deferred Close would never run.
		if err := cache.Close(); err != nil {
			die("closing digest cache: %v", err)
		}
		if !*jsonOut {
			st := cache.Stats()
			fmt.Printf("digest cache: %d lookups, %d hits, %d inserts → %s\n",
				st.Lookups, st.Hits, st.Inserts, *cachePath)
		}
	}
	os.Exit(exitCode)
}

// watchConfig carries the sweep-loop options of -watch.
type watchConfig struct {
	json        bool
	sweepBudget time.Duration
	vmBudget    time.Duration
}

// runWatch performs n scanner sweeps, printing each report as it appears —
// the continuous light-weight consistency check of the paper's conclusion.
// A budget-cut sweep checkpoints and the next iteration resumes it. It
// reports whether any sweep alerted.
func runWatch(cloud *modchecker.Cloud, n int, opts []modchecker.CheckerOption, cfg watchConfig) bool {
	sc := cloud.NewScanner(opts...)
	sc.SetBudget(modchecker.BudgetPolicy{SweepBudget: cfg.sweepBudget, VMBudget: cfg.vmBudget})
	alerted := false
	for i := 0; i < n; i++ {
		rep, err := sc.Sweep()
		if err != nil {
			die("sweep %d: %v", i+1, err)
		}
		if len(rep.Alerts) > 0 {
			alerted = true
		}
		if cfg.json {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				die("render: %v", err)
			}
		} else if err := rep.WriteText(os.Stdout); err != nil {
			die("render: %v", err)
		}
	}
	return alerted
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "modchecker: "+format+"\n", args...)
	os.Exit(2)
}
