// Command modlint runs the project's static-analysis suite (internal/lint)
// over the module: rules the Go compiler cannot enforce but the simulation
// depends on — simulated-clock discipline, mutex conventions, guest-memory
// aliasing, error prefixes, goroutine hygiene. See docs/static-analysis.md.
//
// Usage:
//
//	modlint [-list] [packages]
//
// Accepts "./..." (the whole module, the default) or individual package
// directories. Prints one "file:line: [rule] message" line per finding and
// exits 1 when anything is found, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"modchecker/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: modlint [-list] [./... | package dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	pkgs, err := load(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "modlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// load resolves package patterns. "./..." (or no arguments) loads the whole
// module; any other argument is a package directory, with a trailing
// "/..." loading it recursively.
func load(root string, patterns []string) ([]*lint.Package, error) {
	fset := token.NewFileSet()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	add := func(ps []*lint.Package) {
		for _, p := range ps {
			if !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ps, err := lint.LoadModule(fset, root)
			if err != nil {
				return nil, err
			}
			add(ps)
		case strings.HasSuffix(pat, "/..."):
			dir, err := resolveDir(root, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			ps, err := lint.LoadModule(fset, dir)
			if err != nil {
				return nil, err
			}
			// LoadModule computed RelDir against dir; recompute against root.
			for _, p := range ps {
				rel, err := filepath.Rel(root, p.Dir)
				if err != nil {
					return nil, err
				}
				if rel == "." {
					rel = ""
				}
				p.RelDir = filepath.ToSlash(rel)
			}
			add(ps)
		default:
			dir, err := resolveDir(root, pat)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return nil, err
			}
			if rel == "." {
				rel = ""
			}
			p, err := lint.LoadPackage(fset, dir, rel)
			if err != nil {
				return nil, err
			}
			if p == nil {
				return nil, fmt.Errorf("no Go files in %s", dir)
			}
			add([]*lint.Package{p})
		}
	}
	return pkgs, nil
}

func resolveDir(root, pat string) (string, error) {
	dir := pat
	if !filepath.IsAbs(dir) {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = filepath.Join(wd, pat)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		return "", fmt.Errorf("not a package directory: %s", pat)
	}
	if rel, err := filepath.Rel(root, dir); err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside the module", pat)
	}
	return dir, nil
}
