// Command modlint runs the project's static-analysis suite (internal/lint)
// over the module: rules the Go compiler cannot enforce but the simulation
// depends on — simulated-clock discipline, mutex conventions, guest-memory
// aliasing, error prefixes, goroutine hygiene, and the whole-program
// audits: moddet (determinism), modsafe (soundness), and modown
// (ownership). See docs/static-analysis.md.
//
// Usage:
//
//	modlint [-list] [-json] [-sarif file] [-run rule,...] [packages]
//
// Accepts "./..." (the whole module, the default) or individual package
// directories. Prints one "file:line: [rule] message" line per finding —
// or, with -json, a machine-readable array of
// {file, line, col, analyzer, message, severity} objects (the shape the CI
// problem matcher and artifact consumers read) — and exits 1 when anything
// is found, 2 on usage or load errors. -sarif additionally writes a SARIF
// 2.1.0 log to the given file (regardless of findings), the format GitHub
// code scanning ingests.
//
// -run restricts the run to an exact comma-separated list of rule names
// (as printed by -list): only analyzers owning a named rule execute, and
// only findings under the named rules are reported. A name that matches
// no rule is a usage error — a typo must not silently pass CI.
//
// The moddet/modsafe/modown whole-program passes need to see every package
// at once, so they run only when the whole module is loaded (the "./..."
// default); explicit package-directory runs get the per-package rules
// alone. Whole-program analysis degrades gracefully on type-check
// failures: affected packages drop out of the interprocedural passes, the
// substrate errors go to stderr, and a run with errors but no findings
// exits 2 rather than reporting a clean bill it cannot back.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/moddet"
	"modchecker/internal/lint/modown"
	"modchecker/internal/lint/modsafe"
)

// moduleAnalyzers constructs the whole-program analyzer set for a module
// path ("" is fine for rule listing).
func moduleAnalyzers(modulePath string) []lint.ModuleAnalyzer {
	return []lint.ModuleAnalyzer{
		moddet.New(modulePath),
		modsafe.New(modulePath),
		modown.New(modulePath),
	}
}

// knownRules is a non-running ModuleAnalyzer whose only job is to keep the
// unselected rules resolvable under -run: //modlint:ignore directives
// naming a deselected rule must stay valid, not become findings.
type knownRules struct{ names []string }

func (k knownRules) Name() string    { return "known-rules" }
func (k knownRules) Doc() string     { return "rule names registered for suppression resolution only" }
func (k knownRules) Rules() []string { return k.names }
func (k knownRules) CheckModule([]*lint.Package, lint.SuppressionSet) []lint.Finding {
	return nil
}

func main() {
	list := flag.Bool("list", false, "list the rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this `file`")
	runFilter := flag.String("run", "", "run only these exact `rule,...` names (see -list); an unknown name is an error")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: modlint [-list] [-json] [-sarif file] [-run rule,...] [./... | package dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		for _, m := range moduleAnalyzers("") {
			for _, r := range m.Rules() {
				fmt.Printf("%-18s %s\n", r, m.Name()+": "+m.Doc())
			}
		}
		return
	}

	selected, err := parseRunFilter(*runFilter, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	pkgs, wholeModule, err := load(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	var modAnalyzers []lint.ModuleAnalyzer
	if wholeModule {
		modAnalyzers = moduleAnalyzers(moddet.ReadModulePath(root))
	}

	if selected != nil {
		analyzers, modAnalyzers = applyRunFilter(selected, analyzers, modAnalyzers)
	}

	findings, errs := lint.RunAllErrs(pkgs, analyzers, modAnalyzers)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "modlint: substrate:", e)
	}
	if selected != nil {
		kept := findings[:0]
		for _, f := range findings {
			if selected[f.Rule] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	relativize(root, findings)
	if *sarifOut != "" {
		if err := writeSARIFFile(*sarifOut, findings); err != nil {
			fmt.Fprintln(os.Stderr, "modlint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "modlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "modlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if len(errs) > 0 {
		// No findings, but parts of the module never got analyzed: that is
		// not a clean bill.
		os.Exit(2)
	}
}

// parseRunFilter validates a -run spec against the full rule universe
// (per-package analyzer names plus every whole-program rule) and returns
// the selected set, or nil when no filter was given. An unknown or empty
// name is an error: a typo in CI must fail loudly, not run nothing.
func parseRunFilter(spec string, analyzers []lint.Analyzer) (map[string]bool, error) {
	if spec == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	for _, m := range moduleAnalyzers("") {
		for _, r := range m.Rules() {
			known[r] = true
		}
	}
	selected := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-run: empty rule name in %q", spec)
		}
		if !known[name] {
			all := make([]string, 0, len(known))
			for r := range known {
				all = append(all, r)
			}
			sort.Strings(all)
			return nil, fmt.Errorf("-run: unknown rule %q (known rules: %s)", name, strings.Join(all, ", "))
		}
		selected[name] = true
	}
	return selected, nil
}

// applyRunFilter keeps the per-package analyzers named by the filter and
// the whole-program analyzers owning at least one selected rule. The
// deselected rule names ride along in a knownRules stub so existing
// //modlint:ignore directives naming them still resolve.
func applyRunFilter(selected map[string]bool, analyzers []lint.Analyzer, modAnalyzers []lint.ModuleAnalyzer) ([]lint.Analyzer, []lint.ModuleAnalyzer) {
	var keptA []lint.Analyzer
	var rest []string
	for _, a := range analyzers {
		if selected[a.Name()] {
			keptA = append(keptA, a)
		} else {
			rest = append(rest, a.Name())
		}
	}
	var keptM []lint.ModuleAnalyzer
	for _, m := range modAnalyzers {
		keep := false
		for _, r := range m.Rules() {
			if selected[r] {
				keep = true
				break
			}
		}
		if keep {
			keptM = append(keptM, m)
		} else {
			rest = append(rest, m.Rules()...)
		}
	}
	// Rules the stub must also cover even when no module analyzers run
	// (package-dir invocations): the whole-program rule names.
	seen := make(map[string]bool, len(rest))
	for _, r := range rest {
		seen[r] = true
	}
	for _, m := range moduleAnalyzers("") {
		for _, r := range m.Rules() {
			covered := seen[r]
			for _, k := range keptM {
				for _, kr := range k.Rules() {
					if kr == r {
						covered = true
					}
				}
			}
			if !covered {
				seen[r] = true
				rest = append(rest, r)
			}
		}
	}
	sort.Strings(rest)
	return keptA, append(keptM, knownRules{names: rest})
}

// relativize rewrites finding paths to be module-root-relative, the form CI
// problem matchers and diff annotations want.
func relativize(root string, findings []lint.Finding) {
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// jsonFinding is the -json output shape; field order is the contract.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Severity string `json:"severity"`
}

// writeJSON renders findings as an indented JSON array ("[]" when clean).
func writeJSON(w *os.File, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Rule,
			Message:  f.Msg,
			Severity: "error",
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// load resolves package patterns. "./..." (or no arguments) loads the whole
// module; any other argument is a package directory, with a trailing
// "/..." loading it recursively. The second result reports whether the
// whole module was loaded (the precondition for the moddet passes).
func load(root string, patterns []string) ([]*lint.Package, bool, error) {
	fset := token.NewFileSet()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wholeModule := false
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	add := func(ps []*lint.Package) {
		for _, p := range ps {
			if !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ps, err := lint.LoadModule(fset, root)
			if err != nil {
				return nil, false, err
			}
			wholeModule = true
			add(ps)
		case strings.HasSuffix(pat, "/..."):
			dir, err := resolveDir(root, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, false, err
			}
			ps, err := lint.LoadModule(fset, dir)
			if err != nil {
				return nil, false, err
			}
			// LoadModule computed RelDir against dir; recompute against root.
			for _, p := range ps {
				rel, err := filepath.Rel(root, p.Dir)
				if err != nil {
					return nil, false, err
				}
				if rel == "." {
					rel = ""
				}
				p.RelDir = filepath.ToSlash(rel)
			}
			add(ps)
		default:
			dir, err := resolveDir(root, pat)
			if err != nil {
				return nil, false, err
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return nil, false, err
			}
			if rel == "." {
				rel = ""
			}
			p, err := lint.LoadPackage(fset, dir, rel)
			if err != nil {
				return nil, false, err
			}
			if p == nil {
				return nil, false, fmt.Errorf("no Go files in %s", dir)
			}
			add([]*lint.Package{p})
		}
	}
	return pkgs, wholeModule, nil
}

func resolveDir(root, pat string) (string, error) {
	dir := pat
	if !filepath.IsAbs(dir) {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = filepath.Join(wd, pat)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		return "", fmt.Errorf("not a package directory: %s", pat)
	}
	if rel, err := filepath.Rel(root, dir); err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside the module", pat)
	}
	return dir, nil
}
