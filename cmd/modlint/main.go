// Command modlint runs the project's static-analysis suite (internal/lint)
// over the module: rules the Go compiler cannot enforce but the simulation
// depends on — simulated-clock discipline, mutex conventions, guest-memory
// aliasing, error prefixes, goroutine hygiene, the moddet whole-program
// determinism audit (internal/lint/moddet), and the modsafe whole-program
// soundness audit (internal/lint/modsafe). See docs/static-analysis.md.
//
// Usage:
//
//	modlint [-list] [-json] [-sarif file] [packages]
//
// Accepts "./..." (the whole module, the default) or individual package
// directories. Prints one "file:line: [rule] message" line per finding —
// or, with -json, a machine-readable array of
// {file, line, col, analyzer, message, severity} objects (the shape the CI
// problem matcher and artifact consumers read) — and exits 1 when anything
// is found, 2 on usage or load errors. -sarif additionally writes a SARIF
// 2.1.0 log to the given file (regardless of findings), the format GitHub
// code scanning ingests.
//
// The moddet/modsafe whole-program passes need to see every package at
// once, so they run only when the whole module is loaded (the "./..."
// default); explicit package-directory runs get the per-package rules alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/moddet"
	"modchecker/internal/lint/modsafe"
)

func main() {
	list := flag.Bool("list", false, "list the rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this `file`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: modlint [-list] [-json] [-sarif file] [./... | package dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		md := moddet.New("")
		for _, r := range md.Rules() {
			fmt.Printf("%-18s %s\n", r, "moddet: "+md.Doc())
		}
		ms := modsafe.New("")
		for _, r := range ms.Rules() {
			fmt.Printf("%-18s %s\n", r, "modsafe: "+ms.Doc())
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	pkgs, wholeModule, err := load(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "modlint:", err)
		os.Exit(2)
	}

	var modAnalyzers []lint.ModuleAnalyzer
	if wholeModule {
		modulePath := moddet.ReadModulePath(root)
		modAnalyzers = append(modAnalyzers,
			moddet.New(modulePath),
			modsafe.New(modulePath),
		)
	}

	findings := lint.RunAll(pkgs, analyzers, modAnalyzers)
	relativize(root, findings)
	if *sarifOut != "" {
		if err := writeSARIFFile(*sarifOut, findings); err != nil {
			fmt.Fprintln(os.Stderr, "modlint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "modlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "modlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relativize rewrites finding paths to be module-root-relative, the form CI
// problem matchers and diff annotations want.
func relativize(root string, findings []lint.Finding) {
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// jsonFinding is the -json output shape; field order is the contract.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Severity string `json:"severity"`
}

// writeJSON renders findings as an indented JSON array ("[]" when clean).
func writeJSON(w *os.File, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Rule,
			Message:  f.Msg,
			Severity: "error",
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// load resolves package patterns. "./..." (or no arguments) loads the whole
// module; any other argument is a package directory, with a trailing
// "/..." loading it recursively. The second result reports whether the
// whole module was loaded (the precondition for the moddet passes).
func load(root string, patterns []string) ([]*lint.Package, bool, error) {
	fset := token.NewFileSet()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wholeModule := false
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	add := func(ps []*lint.Package) {
		for _, p := range ps {
			if !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ps, err := lint.LoadModule(fset, root)
			if err != nil {
				return nil, false, err
			}
			wholeModule = true
			add(ps)
		case strings.HasSuffix(pat, "/..."):
			dir, err := resolveDir(root, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, false, err
			}
			ps, err := lint.LoadModule(fset, dir)
			if err != nil {
				return nil, false, err
			}
			// LoadModule computed RelDir against dir; recompute against root.
			for _, p := range ps {
				rel, err := filepath.Rel(root, p.Dir)
				if err != nil {
					return nil, false, err
				}
				if rel == "." {
					rel = ""
				}
				p.RelDir = filepath.ToSlash(rel)
			}
			add(ps)
		default:
			dir, err := resolveDir(root, pat)
			if err != nil {
				return nil, false, err
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return nil, false, err
			}
			if rel == "." {
				rel = ""
			}
			p, err := lint.LoadPackage(fset, dir, rel)
			if err != nil {
				return nil, false, err
			}
			if p == nil {
				return nil, false, fmt.Errorf("no Go files in %s", dir)
			}
			add([]*lint.Package{p})
		}
	}
	return pkgs, wholeModule, nil
}

func resolveDir(root, pat string) (string, error) {
	dir := pat
	if !filepath.IsAbs(dir) {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = filepath.Join(wd, pat)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		return "", fmt.Errorf("not a package directory: %s", pat)
	}
	if rel, err := filepath.Rel(root, dir); err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside the module", pat)
	}
	return dir, nil
}
