package main

import (
	"encoding/json"
	"io"
	"os"
	"sort"

	"modchecker/internal/lint"
)

// SARIF 2.1.0 output — the static-analysis interchange format GitHub code
// scanning ingests. The structs below model the minimal subset modlint
// needs: one run, one driver, a rule entry per rule that produced at least
// one finding, and one result per finding with a single physical location.
// Field order matters only to humans diffing the file, but the output is
// deterministic anyway: findings arrive sorted from lint.RunAll and the
// rule table is sorted by ID.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string           `json:"id"`
	ShortDescription sarifMultiformat `json:"shortDescription"`
}

type sarifMultiformat struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string           `json:"ruleId"`
	RuleIndex int              `json:"ruleIndex"`
	Level     string           `json:"level"`
	Message   sarifMultiformat `json:"message"`
	Locations []sarifLocation  `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIFFile renders the findings to path as a SARIF log. An empty
// finding set still writes a valid log with zero results, so CI can upload
// unconditionally.
func writeSARIFFile(path string, findings []lint.Finding) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeSARIF(f, findings); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSARIF builds and encodes the log.
func writeSARIF(w io.Writer, findings []lint.Finding) error {
	ruleIndex := make(map[string]int)
	rules := []sarifRule{}
	ids := make(map[string]bool)
	for _, f := range findings {
		ids[f.Rule] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMultiformat{Text: "modlint rule " + id},
		})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: ruleIndex[f.Rule],
			Level:     "error",
			Message:   sarifMultiformat{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       f.Pos.Filename,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "modlint",
				InformationURI: "https://github.com/modchecker/modchecker/blob/main/docs/static-analysis.md",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
