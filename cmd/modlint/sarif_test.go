package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"modchecker/internal/lint"
)

// TestWriteSARIF pins the shape GitHub code scanning ingests: one run, the
// rule table sorted by ID with results indexing into it, and repo-relative
// paths anchored at %SRCROOT%.
func TestWriteSARIF(t *testing.T) {
	findings := []lint.Finding{
		{Pos: token.Position{Filename: "internal/core/sweep.go", Line: 12, Column: 3}, Rule: "releasetrack", Msg: "leak"},
		{Pos: token.Position{Filename: "scanner.go", Line: 7, Column: 1}, Rule: "lockorder", Msg: "cycle"},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log = version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "modlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "lockorder" || run.Tool.Driver.Rules[1].ID != "releasetrack" {
		t.Errorf("rule table not sorted by ID: %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "releasetrack" || first.RuleIndex != 1 {
		t.Errorf("result 0 = rule %q index %d, want releasetrack index 1", first.RuleID, first.RuleIndex)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/sweep.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact = %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v", loc.Region)
	}
}

// TestWriteSARIFEmpty pins that a clean run still produces a valid log with
// empty (not null) rule and result arrays, so CI can upload unconditionally.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "null") {
		t.Errorf("empty log contains null arrays:\n%s", out)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("empty log runs = %+v", log.Runs)
	}
}
