// Command tracecheck validates a Chrome trace-event JSON file produced by
// the modchecker tracer (modchecker -trace, or Tracer.WriteChromeJSON). It
// is the CI smoke gate for the observability layer: a structurally broken
// export would load in Perfetto as an empty or garbled timeline long after
// the producing code change merged.
//
// Checks:
//   - the document parses and traceEvents is non-empty beyond metadata
//   - every event has a name and a known phase (X, i, C, M)
//   - complete spans (X) carry a non-negative duration
//   - instants (i) carry the thread scope ("s":"t") the tracer emits
//   - timestamps are non-negative and sequence numbers are unique
//   - non-metadata events are ordered by (ts, seq) — the determinism
//     ordering WriteChromeJSON guarantees
//
// Usage:
//
//	tracecheck trace.json     # or: tracecheck < trace.json
//
// Exits 0 with a one-line summary when the trace is valid, 1 with the
// violations otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type event struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s"`
	Seq   *uint64           `json:"seq"`
	Args  map[string]string `json:"args"`
}

type document struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

func main() {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r, name = f, os.Args[1]
	}

	var doc document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		fail("%s: malformed trace JSON: %v", name, err)
	}

	var problems []string
	bad := func(i int, e *event, format string, args ...any) {
		problems = append(problems,
			fmt.Sprintf("event %d (%q): %s", i, e.Name, fmt.Sprintf(format, args...)))
	}

	seqs := make(map[uint64]int)
	counts := map[string]int{}
	var lastTS float64
	var lastSeq uint64
	haveLast := false
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		counts[e.Ph]++
		if e.Name == "" {
			bad(i, e, "missing name")
		}
		switch e.Ph {
		case "M":
			// Metadata rows carry no timeline payload; nothing more to check.
			continue
		case "X":
			if e.Dur == nil {
				bad(i, e, "complete span without dur")
			} else if *e.Dur < 0 {
				bad(i, e, "negative dur %v", *e.Dur)
			}
		case "i":
			if e.Scope != "t" {
				bad(i, e, `instant without thread scope ("s":"t")`)
			}
		case "C":
		default:
			bad(i, e, "unknown phase %q", e.Ph)
		}
		if e.TS < 0 {
			bad(i, e, "negative ts %v", e.TS)
		}
		if e.Seq == nil {
			bad(i, e, "missing seq")
			continue
		}
		if prev, dup := seqs[*e.Seq]; dup {
			bad(i, e, "duplicate seq %d (first at event %d)", *e.Seq, prev)
		}
		seqs[*e.Seq] = i
		if haveLast && (e.TS < lastTS || (e.TS == lastTS && *e.Seq < lastSeq)) {
			bad(i, e, "out of (ts, seq) order after ts=%v seq=%d", lastTS, lastSeq)
		}
		lastTS, lastSeq, haveLast = e.TS, *e.Seq, true
	}

	timeline := len(doc.TraceEvents) - counts["M"]
	if timeline <= 0 {
		problems = append(problems, "no timeline events beyond metadata")
	}
	if counts["M"] == 0 {
		problems = append(problems, "no metadata rows (process/thread names missing)")
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %s\n", name, p)
		}
		fail("%s: %d violation(s) in %d events", name, len(problems), len(doc.TraceEvents))
	}
	fmt.Printf("tracecheck: %s ok: %d events (%d spans, %d instants, %d counters, %d metadata)\n",
		name, len(doc.TraceEvents), counts["X"], counts["i"], counts["C"], counts["M"])
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
