// Cloud ops: the operational workflow the paper's conclusion sketches —
// ModChecker as a continuously sweeping, light-weight consistency check in
// a cloud, with snapshot-based remediation, and a legitimate fleet-wide
// driver update that (unlike a hash dictionary) raises no false alarms.
//
//	go run ./examples/cloud-ops
package main

import (
	"fmt"
	"log"

	"modchecker"
	"modchecker/internal/guest"
)

func main() {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: 6, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	// Take clean snapshots of the whole pool before going operational.
	for _, name := range cloud.VMNames() {
		if err := cloud.Domain(name).TakeSnapshot("clean"); err != nil {
			log.Fatal(err)
		}
	}
	scanner := cloud.NewScanner(modchecker.WithParallel())

	sweep := func(label string) *modchecker.SweepReport {
		rep, err := scanner.Sweep()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[sweep %d] %s: %d modules x %d VMs, %v simulated",
			rep.Sweep, label, rep.ModulesChecked, rep.VMs, rep.Simulated.Round(1e6))
		if rep.Clean() {
			fmt.Println(" — clean")
		} else {
			fmt.Println()
			for _, a := range rep.Alerts {
				fmt.Printf("    ALERT %s on %s: %s (%v)\n", a.Module, a.VM, a.Verdict, a.Components)
			}
		}
		return rep
	}

	sweep("baseline state")

	// A rootkit lands on Dom4.
	if err := modchecker.InfectPreset(cloud, "Dom4", "rustock.b"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- Dom4 compromised by rustock.b (DLL hook into ntfs.sys) --")
	rep := sweep("post-compromise")

	// Remediate: revert every alerted VM to its clean snapshot.
	for _, a := range rep.Alerts {
		if err := cloud.Domain(a.VM).Revert("clean"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reverted %s to snapshot 'clean'\n", a.VM)
	}
	sweep("post-remediation")

	// A legitimate fleet-wide driver update: every VM gets ndis.sys v2.
	updated, err := guest.BuildImage(guest.ModuleSpec{
		Name: "ndis-v2", TextSize: 128 << 10, DataSize: 32 << 10, RdataSize: 8 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := modchecker.UpdateModule(cloud, "ndis.sys", updated); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- ndis.sys updated fleet-wide (legitimate) --")
	rep = sweep("post-update")
	if rep.Clean() {
		fmt.Println("no false alarms: cross-VM comparison needs no hash-database refresh")
	}
}
