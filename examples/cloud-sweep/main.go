// Cloud sweep: reproduce the shapes of the paper's Figures 7 and 8 — the
// runtime of ModChecker and its components as the VM pool grows, idle
// versus heavily loaded — on a single booted cloud.
//
//	go run ./examples/cloud-sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"modchecker/internal/experiments"
)

func main() {
	const vms = 15

	fmt.Println("Figure 7 shape: idle VMs — linear growth, Module-Searcher dominant")
	idle, err := experiments.Fig7(vms, 7)
	if err != nil {
		log.Fatal(err)
	}
	printRows(idle)

	fmt.Println("\nFigure 8 shape: HeavyLoad VMs on 8 cores — knee once loaded VMs exceed cores")
	loaded, err := experiments.Fig8(vms, 7)
	if err != nil {
		log.Fatal(err)
	}
	printRows(loaded)
}

func printRows(rows []experiments.RuntimeRow) {
	fmt.Println("  VMs  searcher   parser    checker    total     slowdown  trend")
	var prev float64
	for _, r := range rows {
		total := r.Total.Seconds() * 1e3
		bar := strings.Repeat("#", int(total/3)+1)
		fmt.Printf("  %3d  %7.2fms %7.2fms %7.2fms %8.2fms  %5.2fx   %s\n",
			r.VMs, r.Searcher.Seconds()*1e3, r.Parser.Seconds()*1e3,
			r.Checker.Seconds()*1e3, total, r.Slowdown, bar)
		prev = total
	}
	_ = prev
}
