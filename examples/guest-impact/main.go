// Guest impact: reproduce Figure 9 — an idle guest's internal resource
// counters are recorded continuously while ModChecker reads the guest's
// memory from the privileged domain during two marked windows. Because
// introspection is out-of-band, the counters show no perturbation.
//
//	go run ./examples/guest-impact
package main

import (
	"fmt"
	"log"
	"os"

	"modchecker/internal/experiments"
)

func main() {
	res, err := experiments.Fig9(120, 9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-counter perturbation inside the VMI-access windows (z-scores):")
	for _, p := range res.SortedPerturbations() {
		fmt.Println("  ", p)
	}
	fmt.Printf("max z = %.2f (values under ~3 mean statistically indistinguishable from baseline)\n\n",
		res.MaxPerturbation)

	// Stream the raw trace the way the paper's in-guest tool ships its
	// readings to external storage.
	fmt.Println("trace (CSV, as sent to the external sink):")
	if err := res.Trace.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
