// Quickstart: boot a small simulated cloud, check one kernel module's
// integrity across the pool, and print the verdict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"modchecker"
)

func main() {
	// A cloud of 4 identical Windows XP guests cloned from one golden
	// image — the environment the paper targets.
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	checker := cloud.NewChecker()

	// Every VM loaded the same hal.dll, but at a different base address;
	// list what introspection sees on the first VM.
	mods, err := checker.ListModules("Dom1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("modules loaded in Dom1 (recovered via introspection):")
	for _, m := range mods {
		fmt.Printf("  %-14s base=%#x size=%#x\n", m.Name, m.Base, m.SizeOfImage)
	}

	// Check hal.dll on Dom1 against the other three VMs. ModChecker
	// hashes each PE header and section separately, normalizing relocated
	// absolute addresses back to RVAs first, then applies a majority vote.
	report, err := checker.CheckModule("hal.dll", "Dom1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhal.dll on Dom1: %s (%d/%d peers agree)\n",
		report.Verdict, report.Successes, report.Comparisons)
	fmt.Printf("component timing: searcher=%v parser=%v checker=%v\n",
		report.Timing.Searcher, report.Timing.Parser, report.Timing.Checker)
}
