// Rootkit detection: replay all four of the paper's Section V-B infection
// experiments against a pool of 8 VMs and show exactly which PE components
// ModChecker flags for each technique.
//
//	go run ./examples/rootkit-detection
package main

import (
	"fmt"
	"log"
	"strings"

	"modchecker"
)

// scenario pairs an infection with the module it targets.
type scenario struct {
	title  string
	module string
	infect func(c *modchecker.Cloud, vm string) error
}

func main() {
	scenarios := []scenario{
		{
			title:  "E1: single opcode replacement (DEC ECX -> SUB ECX,1 in hal.dll)",
			module: "hal.dll",
			infect: func(c *modchecker.Cloud, vm string) error {
				return modchecker.InfectOpcode(c, vm, "hal.dll")
			},
		},
		{
			title:  "E2: inline hooking of the live tcpip.sys (TCPIRPHOOK-style)",
			module: "tcpip.sys",
			infect: func(c *modchecker.Cloud, vm string) error {
				return modchecker.InfectInlineHookLive(c, vm, "tcpip.sys")
			},
		},
		{
			title:  `E3: trivial stub modification ("DOS" -> "CHK" in dummy.sys)`,
			module: "dummy.sys",
			infect: func(c *modchecker.Cloud, vm string) error {
				return modchecker.InfectStubPatch(c, vm, "dummy.sys", "DOS", "CHK")
			},
		},
		{
			title:  "E4: PE header modification via DLL hooking (inject.dll into dummy.sys)",
			module: "dummy.sys",
			infect: func(c *modchecker.Cloud, vm string) error {
				return modchecker.InfectDLLHook(c, vm, "dummy.sys", "inject.dll", "callMessageBox")
			},
		},
	}

	for i, s := range scenarios {
		// Fresh cloud per experiment, one infected VM.
		cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: 8, Seed: int64(100 + i)})
		if err != nil {
			log.Fatal(err)
		}
		const victim = "Dom5"
		if err := s.infect(cloud, victim); err != nil {
			log.Fatalf("%s: infect: %v", s.title, err)
		}

		pool, err := cloud.NewChecker().CheckPool(s.module)
		if err != nil {
			log.Fatalf("%s: check: %v", s.title, err)
		}
		fmt.Println(s.title)
		fmt.Printf("  flagged VMs: %v\n", pool.Flagged)
		if rep := pool.Report(victim); rep != nil {
			fmt.Printf("  %s verdict: %s (%d/%d peers agree)\n",
				victim, rep.Verdict, rep.Successes, rep.Comparisons)
			fmt.Printf("  mismatched components: %s\n",
				strings.Join(rep.MismatchedComponents(), ", "))
		}
		fmt.Println()
	}
}
