// ModChecker64: the 64-bit future-work extension — the same cross-VM
// integrity check against simulated Windows-x64 guests with PE32+ modules,
// 4-level page tables and DIR64 relocations.
//
//	go run ./examples/win64
package main

import (
	"fmt"
	"log"

	"modchecker/internal/amd64"
)

func main() {
	disk, err := amd64.BuildStandardDisk64()
	if err != nil {
		log.Fatal(err)
	}
	const n = 4
	guests := make([]*amd64.Guest64, n)
	targets := make([]amd64.Target64, n)
	for i := 0; i < n; i++ {
		g, err := amd64.NewGuest64(amd64.Config64{
			Name:     fmt.Sprintf("Win7x64-%d", i+1),
			BootSeed: int64(i+1) * 7919,
			Disk:     disk,
		})
		if err != nil {
			log.Fatal(err)
		}
		guests[i] = g
		targets[i] = amd64.Target64{Name: g.Name(), Mem: g.Phys(), CR3: g.CR3()}
	}

	fmt.Println("64-bit pool up; hal.dll load bases (DIR64-relocated):")
	for _, g := range guests {
		fmt.Printf("  %s: %#x\n", g.Name(), g.Module("hal.dll").Base)
	}

	rep, err := amd64.CheckModule64("hal.dll", targets[0], targets[1:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhal.dll on %s: %s (%d/%d peers agree)\n",
		targets[0].Name, rep.Verdict, rep.Successes, rep.Comparisons)

	// A 64-bit inline patch on one VM.
	victim := guests[2]
	mod := victim.Module("tcpip.sys")
	if err := victim.AddressSpace().Write(mod.Base+0x1200, []byte{0xCC, 0xCC}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatched 2 bytes of tcpip.sys .text on %s\n", victim.Name())
	rep, err = amd64.CheckModule64("tcpip.sys", targets[2],
		[]amd64.Target64{targets[0], targets[1], targets[3]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tcpip.sys on %s: %s, mismatched: %v\n", victim.Name(), rep.Verdict, rep.Mismatched)
}
