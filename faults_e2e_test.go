package modchecker

import (
	"fmt"
	"strings"
	"testing"
)

// TestSweepIsolatesUnloadableModule is the regression for the old behavior
// where one failing CheckPool aborted the whole sweep: a module no VM can
// produce lands in SweepReport.Errors, every other module is still checked,
// and no VM takes a health strike for it.
func TestSweepIsolatesUnloadableModule(t *testing.T) {
	cloud := testCloud(t, 4, 101)
	for _, g := range cloud.Guests() {
		if err := g.UnloadModule("dummy.sys"); err != nil {
			t.Fatal(err)
		}
	}
	sc := cloud.NewScanner()
	sc.SetModules([]string{"dummy.sys", "hal.dll", "ndis.sys"})
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatalf("sweep aborted on unloadable module: %v", err)
	}
	if rep.ModulesChecked != 2 {
		t.Errorf("ModulesChecked = %d, want 2 (hal.dll, ndis.sys)", rep.ModulesChecked)
	}
	if len(rep.Errors) != 1 || rep.Errors[0].Module != "dummy.sys" {
		t.Fatalf("Errors = %+v, want one entry for dummy.sys", rep.Errors)
	}
	if len(rep.Alerts) != 0 {
		t.Errorf("alerts = %+v, want none (module-level failure, not VM-level)", rep.Alerts)
	}
	for vm, st := range rep.Health {
		if st != HealthHealthy {
			t.Errorf("%s = %v after a module-level failure, want healthy", vm, st)
		}
	}
}

// TestSweepReportsMissingModuleOnOneVM: a module absent from one VM produces
// a VerdictError alert for that VM, with the reason surfaced, while the
// remaining VMs vote normally.
func TestSweepReportsMissingModuleOnOneVM(t *testing.T) {
	cloud := testCloud(t, 4, 103)
	if err := cloud.Guest("Dom2").UnloadModule("dummy.sys"); err != nil {
		t.Fatal(err)
	}
	sc := cloud.NewScanner()
	sc.SetModules([]string{"dummy.sys"})
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly one", rep.Alerts)
	}
	a := rep.Alerts[0]
	if a.VM != "Dom2" || a.Verdict != VerdictError {
		t.Errorf("alert = %+v", a)
	}
	if !strings.Contains(a.Reason, "not loaded") {
		t.Errorf("reason %q does not explain the missing module", a.Reason)
	}
}

// TestSweepSurvivesDestroyedDomain: destroying a domain between sweeps
// quarantines it immediately (nothing left to check) and the sweep proceeds
// over the survivors.
func TestSweepSurvivesDestroyedDomain(t *testing.T) {
	cloud := testCloud(t, 4, 107)
	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	if err := cloud.Hypervisor().DestroyDomain("Dom3"); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VMs != 3 {
		t.Errorf("VMs = %d, want 3 eligible", rep.VMs)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "Dom3" {
		t.Errorf("Quarantined = %v, want [Dom3]", rep.Quarantined)
	}
	if len(rep.Alerts) != 0 {
		t.Errorf("alerts = %+v", rep.Alerts)
	}
}

// TestFaultPlanLifecycleEvents: a scheduled destroy fires mid-sweep through
// the plan's hypervisor hook; the pool isolates the dead VM (permanent
// fault) and the next sweep quarantines it. A scheduled pause simply leaves
// the domain descheduled — its memory stays readable, as on real Xen.
func TestFaultPlanLifecycleEvents(t *testing.T) {
	cloud := testCloud(t, 4, 109)
	plan := NewFaultPlan(11)
	plan.DestroyAt("Dom2", 5)
	plan.PauseAt("Dom4", 3)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Domain("Dom2") != nil {
		t.Fatal("scheduled destroy did not reach the hypervisor")
	}
	var dom2 *Alert
	for i := range rep.Alerts {
		if rep.Alerts[i].VM == "Dom2" {
			dom2 = &rep.Alerts[i]
		}
	}
	if dom2 == nil || dom2.Verdict != VerdictError {
		t.Fatalf("destroyed VM alert = %+v", dom2)
	}
	if !strings.Contains(dom2.Reason, "permanent") {
		t.Errorf("reason %q not classified permanent", dom2.Reason)
	}
	if d := cloud.Domain("Dom4"); d == nil || !d.Paused() {
		t.Error("scheduled pause did not reach the scheduler")
	}
	// Healthy VMs still produced a verdict.
	if rep.ModulesChecked != 1 {
		t.Errorf("ModulesChecked = %d", rep.ModulesChecked)
	}

	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Quarantined) != 1 || rep2.Quarantined[0] != "Dom2" {
		t.Errorf("sweep 2 Quarantined = %v, want [Dom2]", rep2.Quarantined)
	}
	if rep2.VMs != 3 {
		t.Errorf("sweep 2 VMs = %d, want 3", rep2.VMs)
	}
}

// TestScannerQuarantineAndReadmission walks the full health machine on a
// transiently failing VM: suspect after one failing sweep, quarantined after
// the second, a failed probe stays quarantined, and a succeeding probe
// readmits.
func TestScannerQuarantineAndReadmission(t *testing.T) {
	cloud := testCloud(t, 4, 113)
	plan := NewFaultPlan(13)
	// Dom4 fails its first 3 reads. With one module per sweep and no
	// retries, each failing sweep consumes one read; the probe in sweep 4
	// lands past the window and succeeds.
	plan.FailReads("Dom4", 0, 3)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 2, ReadmitAfter: 1})

	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Health["Dom4"] != HealthSuspect {
		t.Errorf("after sweep 1: %v, want suspect", rep1.Health["Dom4"])
	}
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Health["Dom4"] != HealthQuarantined {
		t.Errorf("after sweep 2: %v, want quarantined", rep2.Health["Dom4"])
	}
	// Sweep 3 probes (1 sweep elapsed >= ReadmitAfter); read index 2 is
	// still inside the window, so the probe fails and Dom4 stays put.
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Health["Dom4"] != HealthQuarantined || len(rep3.Readmitted) != 0 {
		t.Errorf("after failed probe: %v readmitted=%v", rep3.Health["Dom4"], rep3.Readmitted)
	}
	// Sweep 4 probes again; the window is exhausted and Dom4 comes back.
	rep4, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Health["Dom4"] != HealthHealthy {
		t.Errorf("after succeeding probe: %v, want healthy", rep4.Health["Dom4"])
	}
	if len(rep4.Readmitted) != 1 || rep4.Readmitted[0] != "Dom4" {
		t.Errorf("Readmitted = %v, want [Dom4]", rep4.Readmitted)
	}
	if !rep4.Clean() {
		t.Errorf("sweep 4 not clean: %+v / %+v", rep4.Alerts, rep4.Errors)
	}
}

// sweepFingerprint serializes the determinism-relevant content of a sweep.
func sweepFingerprint(rep *SweepReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep=%d mods=%d vms=%d\n", rep.Sweep, rep.ModulesChecked, rep.VMs)
	for _, a := range rep.Alerts {
		fmt.Fprintf(&b, "alert %s %s %v %v %s\n", a.Module, a.VM, a.Verdict, a.Components, a.Reason)
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(&b, "err %s %v\n", e.Module, e.Err)
	}
	fmt.Fprintf(&b, "q=%v r=%v s=%v\n", rep.Quarantined, rep.Readmitted, rep.Skipped)
	return b.String()
}

// runFaultScenario executes the acceptance scenario on a fresh cloud: 15
// VMs, transient faults on three of them (one recovered within the sweep by
// retries, one flaky, one spanning sweeps), one VM failing permanently.
func runFaultScenario(t *testing.T, seed int64) []string {
	t.Helper()
	cloud := testCloud(t, 15, 42)
	plan := NewFaultPlan(seed)
	// Dom3: a 2-read outage the 3-attempt retry budget crosses within one
	// fetch — recovers to a conclusive verdict in sweep 1.
	plan.FailReads("Dom3", 0, 2)
	// Dom5: seeded flakiness.
	plan.FlakyReads("Dom5", 0.02)
	// Dom7: an outage wide enough to span sweeps (3 failing reads per
	// sweep), recovered by a later readmission probe.
	plan.FailReads("Dom7", 0, 8)
	// Dom9: gone for good.
	plan.FailForever("Dom9", 0)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner(WithRetry(DefaultRetryPolicy()))
	sc.SetModules([]string{"hal.dll"})
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 2, ReadmitAfter: 1})

	faulty := map[string]bool{"Dom3": true, "Dom5": true, "Dom7": true, "Dom9": true}
	var prints []string
	for sweep := 1; sweep <= 4; sweep++ {
		rep, err := sc.Sweep()
		if err != nil {
			t.Fatalf("sweep %d: %v", sweep, err)
		}
		for _, a := range rep.Alerts {
			if !faulty[a.VM] {
				t.Errorf("sweep %d: healthy VM %s alerted: %+v", sweep, a.VM, a)
			}
			if a.Verdict == VerdictAltered {
				t.Errorf("sweep %d: fault misread as infection on %s", sweep, a.VM)
			}
		}
		if sweep == 1 {
			for _, a := range rep.Alerts {
				if a.VM == "Dom3" {
					t.Errorf("sweep 1: Dom3 alerted despite retry recovery: %+v", a)
				}
			}
		}
		prints = append(prints, sweepFingerprint(rep))
	}
	// The permanently failing VM must be quarantined by the end.
	if sc.Health("Dom9") != HealthQuarantined {
		t.Errorf("Dom9 = %v after 4 sweeps, want quarantined", sc.Health("Dom9"))
	}
	// The sweep-spanning transient VM must have made it back.
	if sc.Health("Dom7") != HealthHealthy {
		t.Errorf("Dom7 = %v after 4 sweeps, want healthy (readmitted)", sc.Health("Dom7"))
	}
	return prints
}

// TestFaultScenarioEndToEnd is the PR's acceptance scenario, and
// TestFaultScenarioDeterministic pins that two runs from the same seed
// produce byte-identical findings.
func TestFaultScenarioEndToEnd(t *testing.T) {
	a := runFaultScenario(t, 1234)
	b := runFaultScenario(t, 1234)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sweep %d diverges across identically seeded runs:\n--- run 1\n%s--- run 2\n%s",
				i+1, a[i], b[i])
		}
	}
}

// TestCheckPoolThroughFaultPlan pins the root API path: a cloud-level pool
// check over an installed plan classifies the failing VM and leaves the
// healthy majority conclusive.
func TestCheckPoolThroughFaultPlan(t *testing.T) {
	cloud := testCloud(t, 5, 127)
	plan := NewFaultPlan(17)
	plan.FailForever("Dom2", 0)
	cloud.InstallFaultPlan(plan)
	rep, err := cloud.NewChecker().CheckPool("hal.dll")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errored) != 1 || rep.Errored[0] != "Dom2" {
		t.Fatalf("Errored = %v", rep.Errored)
	}
	r := rep.Report("Dom2")
	if r.Verdict != VerdictError || r.ErrClass != FaultPermanent {
		t.Errorf("Dom2: verdict=%v class=%v", r.Verdict, r.ErrClass)
	}
	if r.Err == nil {
		t.Error("Dom2 report carries no error")
	}
	if rep.Healthy != 4 || len(rep.Flagged) != 0 {
		t.Errorf("healthy=%d flagged=%v", rep.Healthy, rep.Flagged)
	}
}
