package modchecker

import (
	"bytes"
	"strings"
	"testing"
)

// differentialSweep builds a fresh deterministic 15-VM cloud, applies the
// scenario, runs one full scanner sweep with the given checker options, and
// returns the sweep report's JSON rendering.
func differentialSweep(t *testing.T, seed int64, scenario func(*testing.T, *Cloud), opts ...CheckerOption) []byte {
	t.Helper()
	cloud := testCloud(t, 15, seed)
	if scenario != nil {
		scenario(t, cloud)
	}
	sc := cloud.NewScanner(opts...)
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func firstDiffLine(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + string(rune('0'+i%10)) + ": " + al[i] + " != " + bl[i]
		}
	}
	return "length mismatch"
}

// TestShardedSweepMatchesFlat is the fleet engine's contract: for every
// shard size, over clean, infected (paper experiments E1-E4), multi-cluster,
// and faulted pools, in sequential and parallel mode, the sharded sweep's
// report is byte-for-byte the flat clustered path's report. Sharding may
// only bound memory, never change results.
func TestShardedSweepMatchesFlat(t *testing.T) {
	infect := func(f func(*Cloud) error) func(*testing.T, *Cloud) {
		return func(t *testing.T, c *Cloud) {
			t.Helper()
			if err := f(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	scenarios := []struct {
		name     string
		seed     int64
		scenario func(*testing.T, *Cloud)
		opts     []CheckerOption
	}{
		{name: "clean", seed: 42},
		{name: "e1-opcode", seed: 43,
			scenario: infect(func(c *Cloud) error { return InfectOpcode(c, "Dom2", "hal.dll") })},
		{name: "e2-inline-hook", seed: 44,
			scenario: infect(func(c *Cloud) error { return InfectInlineHookLive(c, "Dom2", "ndis.sys") })},
		{name: "e3-stub-patch", seed: 45,
			scenario: infect(func(c *Cloud) error { return InfectStubPatch(c, "Dom2", "ntfs.sys", "DOS", "CHK") })},
		{name: "e4-dll-hook", seed: 46,
			scenario: infect(func(c *Cloud) error { return InfectDLLHook(c, "Dom2", "http.sys", "evil.dll", "spy") })},
		// Two VMs in different shards (at shard size 4) carrying the same
		// patch must land in the same cross-shard cluster; a third carries a
		// different patch — three clusters total.
		{name: "multi-cluster", seed: 47,
			scenario: infect(func(c *Cloud) error {
				if err := InfectOpcode(c, "Dom2", "hal.dll"); err != nil {
					return err
				}
				if err := InfectOpcode(c, "Dom9", "hal.dll"); err != nil {
					return err
				}
				return InfectInlineHookLive(c, "Dom13", "hal.dll")
			})},
		// Fault-plan faults are keyed to each VM's read schedule, which the
		// sharded engine must preserve exactly: same reads, same faults,
		// same VerdictError reports.
		{name: "faulted", seed: 48,
			scenario: func(t *testing.T, c *Cloud) {
				plan := NewFaultPlan(48)
				plan.FailReads("Dom3", 10, 60)
				plan.FailForever("Dom5", 1)
				plan.FlakyReads("Dom11", 0.02)
				c.InstallFaultPlan(plan)
			}},
		{name: "parallel-infected", seed: 49,
			scenario: infect(func(c *Cloud) error { return InfectOpcode(c, "Dom4", "dummy.sys") }),
			opts:     []CheckerOption{WithParallel()}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			flat := differentialSweep(t, sc.seed, sc.scenario, sc.opts...)
			for _, shard := range []int{1, 4, 15} {
				opts := append(append([]CheckerOption{}, sc.opts...), WithShardSize(shard))
				got := differentialSweep(t, sc.seed, sc.scenario, opts...)
				if !bytes.Equal(flat, got) {
					t.Errorf("shard size %d diverges from flat: %s", shard, firstDiffLine(flat, got))
				}
			}
		})
	}
}

// TestShardedBudgetedSweepMatchesFlat: PR 7's checkpoint/resume must keep
// working with sharding on. A sweep budget that cuts the first sweep mid-way
// defers the same modules, and the resumed sweep finishes the same
// remainder, byte-identically to the flat path.
func TestShardedBudgetedSweepMatchesFlat(t *testing.T) {
	run := func(opts ...CheckerOption) []byte {
		cloud := testCloud(t, 15, 51)
		sc := cloud.NewScanner(opts...)
		first, err := sc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		work := first.Simulated - first.Timing.List
		sc.SetBudget(BudgetPolicy{SweepBudget: first.Timing.List + work/2})
		var buf bytes.Buffer
		partial, err := sc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if !partial.Partial || len(partial.Remaining) == 0 {
			t.Fatalf("half-budget sweep was not partial: %+v", partial)
		}
		if err := partial.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		resumed, err := sc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if !resumed.Resumed {
			t.Fatal("follow-up sweep did not resume the checkpoint")
		}
		if err := resumed.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	flat := run()
	sharded := run(WithShardSize(4))
	if !bytes.Equal(flat, sharded) {
		t.Errorf("budgeted sharded sweeps diverge from flat: %s", firstDiffLine(flat, sharded))
	}
}

// TestLeanSweepMatchesFlat: lean reports drop per-pair detail inside
// PoolReports, but everything the scanner folds into the SweepReport —
// alerts with their components and reasons, verdict counts, health, module
// errors, simulated timing — must come out byte-identical to the flat path.
func TestLeanSweepMatchesFlat(t *testing.T) {
	scenario := func(t *testing.T, c *Cloud) {
		t.Helper()
		if err := InfectOpcode(c, "Dom2", "hal.dll"); err != nil {
			t.Fatal(err)
		}
		if err := InfectDLLHook(c, "Dom6", "http.sys", "evil.dll", "spy"); err != nil {
			t.Fatal(err)
		}
		plan := NewFaultPlan(50)
		plan.FailForever("Dom9", 1)
		c.InstallFaultPlan(plan)
	}
	flat := differentialSweep(t, 50, scenario)
	lean := differentialSweep(t, 50, scenario, WithShardSize(4), WithLeanReports())
	if !bytes.Equal(flat, lean) {
		t.Errorf("lean sweep diverges from flat: %s", firstDiffLine(flat, lean))
	}
}
