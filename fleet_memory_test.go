package modchecker

import (
	"runtime"
	"testing"
)

// fleetSweepMemory runs one pool sweep over a copy-on-write fleet and
// returns (allocated, retained) bytes: total allocation churn during the
// sweep, and heap still live after it with the sweep's results — the slice
// of every PoolReport on the baseline path, nothing but fold state on the
// streaming path.
func fleetSweepMemory(t *testing.T, vms int, streaming bool) (allocated, retained uint64) {
	t.Helper()
	cloud, err := NewCloud(CloudConfig{VMs: vms, Templates: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var opts []CheckerOption
	if streaming {
		opts = []CheckerOption{WithShardSize(16), WithLeanReports(), WithIdentityDedup()}
	}
	checker := cloud.NewChecker(opts...)
	session, err := checker.NewPoolSweep()
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	modules := []string{"dummy.sys", "hal.dll", "ndis.sys"}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var held []*PoolReport
	alerts := 0
	if streaming {
		session.CheckModulesFunc(modules, func(pool *PoolReport) {
			for _, r := range pool.VMReports {
				if r.Verdict != VerdictClean {
					alerts++
				}
			}
		})
	} else {
		held = session.CheckModules(modules)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	allocated = after.TotalAlloc - before.TotalAlloc
	retained = after.HeapAlloc - before.HeapAlloc
	if after.HeapAlloc < before.HeapAlloc {
		retained = 0
	}
	if !streaming && len(held) != len(modules) {
		t.Fatalf("baseline sweep returned %d reports", len(held))
	}
	if streaming && alerts != 0 {
		t.Fatalf("clean fleet raised %d alerts", alerts)
	}
	runtime.KeepAlive(held)
	return allocated, retained
}

// TestStreamingSweepBoundsMemory: the point of the fleet engine is that
// sweep memory stops scaling with pool size. The held-in-memory flat path
// allocates O(pool²) (every VM's report carries O(pool) pair results); the
// streaming path — sharded, lean, deduplicated, reports folded and dropped —
// must allocate far less at the same size and grow sublinearly from a 64-VM
// to a 256-VM pool. Margins are generous (3-4x) so the test pins the
// asymptotic claim, not allocator noise.
func TestStreamingSweepBoundsMemory(t *testing.T) {
	allocBase64, _ := fleetSweepMemory(t, 64, false)
	allocBase256, retBase256 := fleetSweepMemory(t, 256, false)
	allocStream64, _ := fleetSweepMemory(t, 64, true)
	allocStream256, retStream256 := fleetSweepMemory(t, 256, true)
	t.Logf("baseline  64: alloc %d", allocBase64)
	t.Logf("baseline 256: alloc %d retained %d", allocBase256, retBase256)
	t.Logf("streaming 64: alloc %d", allocStream64)
	t.Logf("streaming256: alloc %d retained %d", allocStream256, retStream256)

	if allocStream256 >= allocBase256/3 {
		t.Errorf("streaming 256-VM sweep allocated %d bytes, want < baseline/3 (%d)",
			allocStream256, allocBase256/3)
	}
	// Quadrupling the pool must cost the streaming path far less than the
	// 4x of linear growth (dedup makes introspection O(templates)); the
	// baseline visibly superlinear.
	if allocStream256 >= 3*allocStream64 {
		t.Errorf("streaming sweep grew %d -> %d bytes (>= 3x) from 64 to 256 VMs",
			allocStream64, allocStream256)
	}
	if allocBase256 < 4*allocBase64 {
		t.Errorf("baseline sweep grew only %d -> %d bytes from 64 to 256 VMs; expected at least linear",
			allocBase64, allocBase256)
	}
	if retStream256 >= retBase256/3 {
		t.Errorf("streaming sweep retained %d bytes, want < a third of baseline's %d",
			retStream256, retBase256)
	}
}
