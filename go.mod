module modchecker

go 1.22
