package modchecker

import (
	"fmt"

	"modchecker/internal/rootkit"
)

// InfectionPreset describes one built-in infection scenario.
type InfectionPreset struct {
	Name        string
	Description string
	Module      string
}

// InfectionPresets lists the built-in scenarios, modeled on the paper's
// evaluation (Section V-B) and the rootkits it cites.
func InfectionPresets() []InfectionPreset {
	ps := rootkit.Presets()
	out := make([]InfectionPreset, len(ps))
	for i, p := range ps {
		out[i] = InfectionPreset{Name: p.Name, Description: p.Description, Module: p.Module}
	}
	return out
}

// InfectPreset applies a named infection preset to one VM of the cloud.
// This models the attacker side of the paper's experiments; run a Checker
// afterwards to observe the detection.
func InfectPreset(c *Cloud, vm, preset string) error {
	g := c.Guest(vm)
	if g == nil {
		return fmt.Errorf("modchecker: no VM %q", vm)
	}
	p, err := rootkit.PresetByName(preset)
	if err != nil {
		return err
	}
	if err := p.Apply(g); err != nil {
		return fmt.Errorf("modchecker: applying %s to %s: %w", preset, vm, err)
	}
	return nil
}

// InfectDLLHook applies the paper's E4 infection to an arbitrary module on
// one VM: an extra import (dll exporting fn) is attached to the on-disk
// image, the code is patched to call through the new IAT slot, and the
// module is reloaded.
func InfectDLLHook(c *Cloud, vm, module, dll, fn string) error {
	g := c.Guest(vm)
	if g == nil {
		return fmt.Errorf("modchecker: no VM %q", vm)
	}
	return rootkit.InfectDiskAndReload(g, module, func(img []byte) ([]byte, error) {
		out, _, err := rootkit.DLLHook(img, dll, fn)
		return out, err
	})
}

// InfectOpcode applies the E1 single-opcode replacement to a module on one
// VM (the module must carry the DEC ECX marker; hal.dll and dummy.sys do).
func InfectOpcode(c *Cloud, vm, module string) error {
	g := c.Guest(vm)
	if g == nil {
		return fmt.Errorf("modchecker: no VM %q", vm)
	}
	return rootkit.InfectDiskAndReload(g, module, func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	})
}

// InfectInlineHookLive installs an inline hook in the named VM's loaded
// copy of module (E2, live variant).
func InfectInlineHookLive(c *Cloud, vm, module string) error {
	g := c.Guest(vm)
	if g == nil {
		return fmt.Errorf("modchecker: no VM %q", vm)
	}
	_, err := rootkit.InlineHookLive(g, module)
	return err
}

// InfectStubPatch applies the E3 DOS-stub text edit to a module on one VM.
func InfectStubPatch(c *Cloud, vm, module, from, to string) error {
	g := c.Guest(vm)
	if g == nil {
		return fmt.Errorf("modchecker: no VM %q", vm)
	}
	return rootkit.InfectDiskAndReload(g, module, func(img []byte) ([]byte, error) {
		out, _, err := rootkit.StubPatch(img, from, to)
		return out, err
	})
}
