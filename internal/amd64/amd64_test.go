package amd64

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"modchecker/internal/mm"
	"modchecker/internal/pe"
)

// --- PE32+ ---

func TestPE64RoundTrip(t *testing.T) {
	raw, err := BuildImage64(StandardCatalog64()[1]) // hal.dll
	if err != nil {
		t.Fatal(err)
	}
	img, err := Parse64(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("PE32+ round trip not byte-identical")
	}
	if img.Optional.Magic != OptionalMagic64 || img.File.Machine != MachineAMD64 {
		t.Error("not a PE32+ AMD64 image")
	}
	if img.Optional.ImageBase != 0x180010000 {
		t.Errorf("image base %#x", img.Optional.ImageBase)
	}
}

func TestPE64RejectsPE32(t *testing.T) {
	// A 32-bit image must be rejected by the 64-bit parser.
	b := pe.NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x200), pe.ScnCntCode|pe.ScnMemExecute|pe.ScnMemRead)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := img.Bytes()
	if _, err := Parse64(raw); err == nil {
		t.Error("PE32 image accepted by Parse64")
	}
}

func TestPE64RelocSitesDir64(t *testing.T) {
	raw, _ := BuildImage64(StandardCatalog64()[1])
	img, _ := Parse64(raw)
	sites, err := img.RelocSites()
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) == 0 {
		t.Fatal("no DIR64 sites")
	}
	// Every site holds base+RVA pointing into the image.
	mem, err := img.Layout()
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	for _, s := range sites {
		v := le.Uint64(mem[s:])
		if v < img.Optional.ImageBase || v >= img.Optional.ImageBase+uint64(img.Optional.SizeOfImage) {
			t.Errorf("site %#x holds %#x outside image", s, v)
		}
	}
}

func TestPE64LayoutAtRelocates(t *testing.T) {
	raw, _ := BuildImage64(StandardCatalog64()[1])
	img, _ := Parse64(raw)
	const base = uint64(0xFFFFF88001234000)
	mem, err := img.LayoutAt(base)
	if err != nil {
		t.Fatal(err)
	}
	sites, _ := img.RelocSites()
	le := binary.LittleEndian
	for _, s := range sites {
		v := le.Uint64(mem[s:])
		rva := v - base
		if rva >= uint64(img.Optional.SizeOfImage) {
			t.Fatalf("site %#x: %#x does not decode to an RVA under base %#x", s, v, base)
		}
	}
}

// TestPE64RVAInvariant is the 64-bit core invariant: two loads normalize
// to identical bytes.
func TestPE64RVAInvariant(t *testing.T) {
	raw, _ := BuildImage64(StandardCatalog64()[1])
	img, _ := Parse64(raw)
	sites, _ := img.RelocSites()
	f := func(a, b uint16) bool {
		b1 := uint64(0xFFFFF88001000000) + uint64(a)*0x1000
		b2 := uint64(0xFFFFF88001000000) + uint64(b)*0x1000
		m1, err1 := img.LayoutAt(b1)
		m2, err2 := img.LayoutAt(b2)
		if err1 != nil || err2 != nil {
			return false
		}
		le := binary.LittleEndian
		for _, s := range sites {
			le.PutUint64(m1[s:], le.Uint64(m1[s:])-b1)
			le.PutUint64(m2[s:], le.Uint64(m2[s:])-b2)
		}
		return bytes.Equal(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- codegen64 ---

func TestGenerate64Deterministic(t *testing.T) {
	a := Generate64(1, 8192, 0x180000000, 0x3000, 0x1000)
	b := Generate64(1, 8192, 0x180000000, 0x3000, 0x1000)
	if !bytes.Equal(a.Code, b.Code) {
		t.Error("same seed differs")
	}
	if len(a.Functions) == 0 || len(a.RelocOffsets) == 0 {
		t.Error("no functions or reloc sites")
	}
}

func TestGenerate64SparseRelocations(t *testing.T) {
	// x64 relocation density must be much lower than x86's (RIP-relative
	// dominates): expect < 1 site per 64 bytes.
	p := Generate64(2, 65536, 0x180000000, 0x3000, 0x4000)
	if len(p.RelocOffsets) > len(p.Code)/64 {
		t.Errorf("%d sites in %d bytes: too dense for x64", len(p.RelocOffsets), len(p.Code))
	}
	le := binary.LittleEndian
	for _, off := range p.RelocOffsets {
		// Each site is the imm64 of a 48 B8 mov.
		if p.Code[off-2] != 0x48 || p.Code[off-1] != 0xB8 {
			t.Fatalf("site %#x not preceded by MOV RAX, imm64", off)
		}
		v := le.Uint64(p.Code[off:])
		if v < 0x180000000 {
			t.Fatalf("site %#x holds %#x below image base", off, v)
		}
	}
}

// --- 4-level paging ---

func TestPaging64MapTranslate(t *testing.T) {
	phys := mm.NewPhysMemory(16<<20, 1)
	as, err := NewAddressSpace64(phys)
	if err != nil {
		t.Fatal(err)
	}
	pfn, _ := phys.AllocFrame()
	const va = 0xFFFFF88001234000
	if err := as.Map(va, pfn, true); err != nil {
		t.Fatal(err)
	}
	pa, err := as.Translate(va + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pfn<<mm.PageShift|0x123 {
		t.Errorf("pa = %#x", pa)
	}
}

func TestPaging64RejectsNonCanonical(t *testing.T) {
	phys := mm.NewPhysMemory(16<<20, 1)
	as, _ := NewAddressSpace64(phys)
	if err := as.Map(0x0000800000000000, 3, true); err == nil {
		t.Error("non-canonical address mapped")
	}
	if _, err := WalkPageTables64(phys, as.CR3(), 0x0000900000000000); err == nil {
		t.Error("non-canonical address translated")
	}
}

func TestPaging64UnmappedLevels(t *testing.T) {
	phys := mm.NewPhysMemory(16<<20, 1)
	as, _ := NewAddressSpace64(phys)
	// Nothing mapped: fails at PML4 level.
	if _, err := as.Translate(0xFFFFF88001234000); err == nil {
		t.Error("empty space translated")
	}
	pfn, _ := phys.AllocFrame()
	as.Map(0xFFFFF88001234000, pfn, true)
	// Same PT, absent PTE.
	if _, err := as.Translate(0xFFFFF88001235000); err == nil {
		t.Error("absent PTE translated")
	}
	// Different PML4 entry entirely.
	if _, err := as.Translate(0x0000700000000000); err == nil {
		t.Error("far VA translated")
	}
}

func TestPaging64ReadWriteCrossPage(t *testing.T) {
	phys := mm.NewPhysMemory(16<<20, 1)
	as, _ := NewAddressSpace64(phys)
	const va = 0xFFFFF88001230000
	if err := as.AllocAndMap(va, 3*mm.PageSize, true); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*mm.PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := as.Write(va+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := ReadVirtual64(phys, as.CR3(), va+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page 64-bit IO mismatch")
	}
}

func TestPaging64ExternalWalkMatches(t *testing.T) {
	phys := mm.NewPhysMemory(16<<20, 3)
	as, _ := NewAddressSpace64(phys)
	const va = 0xFFFFF8A000000000
	as.AllocAndMap(va, 8*mm.PageSize, true)
	for off := uint64(0); off < 8*mm.PageSize; off += 1021 {
		want, err := as.Translate(va + off)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WalkPageTables64(phys, as.CR3(), va+off)
		if err != nil || got != want {
			t.Fatalf("external walk %#x != %#x at +%#x (%v)", got, want, off, err)
		}
	}
}

// --- guest64 + checker64 end to end ---

func pool64(t testing.TB, n int) ([]*Guest64, []Target64) {
	t.Helper()
	disk, err := BuildStandardDisk64()
	if err != nil {
		t.Fatal(err)
	}
	guests := make([]*Guest64, n)
	targets := make([]Target64, n)
	for i := 0; i < n; i++ {
		g, err := NewGuest64(Config64{
			Name:     "Win7x64-" + string(rune('1'+i)),
			BootSeed: int64(i+1) * 104729,
			Disk:     disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		guests[i] = g
		targets[i] = Target64{Name: g.Name(), Mem: g.Phys(), CR3: g.CR3()}
	}
	return guests, targets
}

func TestGuest64Boot(t *testing.T) {
	guests, _ := pool64(t, 1)
	mods := guests[0].Modules()
	if len(mods) != 4 {
		t.Fatalf("%d modules", len(mods))
	}
	for _, m := range mods {
		if m.Base < driverArea64VA || m.Base >= driverArea64End {
			t.Errorf("%s at %#x outside driver area", m.Name, m.Base)
		}
	}
}

func TestGuest64BasesDiffer(t *testing.T) {
	guests, _ := pool64(t, 2)
	if guests[0].Module("hal.dll").Base == guests[1].Module("hal.dll").Base {
		t.Error("clones share a base")
	}
}

func TestListModules64MatchesGroundTruth(t *testing.T) {
	guests, targets := pool64(t, 1)
	mods, err := ListModules64(targets[0])
	if err != nil {
		t.Fatal(err)
	}
	truth := guests[0].Modules()
	if len(mods) != len(truth) {
		t.Fatalf("introspection sees %d, guest has %d", len(mods), len(truth))
	}
	byName := map[string]ModuleInfo64{}
	for _, m := range mods {
		byName[m.Name] = m
	}
	for _, w := range truth {
		g, ok := byName[w.Name]
		if !ok || g.Base != w.Base || g.SizeOfImage != w.SizeOfImage {
			t.Errorf("%s: got %+v, want base %#x size %#x", w.Name, g, w.Base, w.SizeOfImage)
		}
	}
}

func TestGuest64LoadedImageMatchesLayout(t *testing.T) {
	guests, _ := pool64(t, 1)
	g := guests[0]
	mod := g.Module("hal.dll")
	img, _ := Parse64(g.DiskImage("hal.dll"))
	want, err := img.LayoutAt(mod.Base)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("in-memory 64-bit module differs from relocated layout")
	}
}

func TestCheckModule64Clean(t *testing.T) {
	_, targets := pool64(t, 4)
	rep, err := CheckModule64("hal.dll", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Clean64 {
		t.Fatalf("verdict %v; mismatched %v", rep.Verdict, rep.Mismatched)
	}
	if rep.Successes != 3 || rep.Comparisons != 3 {
		t.Errorf("%d/%d", rep.Successes, rep.Comparisons)
	}
}

func TestCheckModule64AllCatalog(t *testing.T) {
	_, targets := pool64(t, 3)
	for _, spec := range StandardCatalog64() {
		rep, err := CheckModule64(spec.Name, targets[0], targets[1:])
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if rep.Verdict != Clean64 {
			t.Errorf("%s: %v (%v)", spec.Name, rep.Verdict, rep.Mismatched)
		}
	}
}

func TestCheckModule64DetectsPatch(t *testing.T) {
	guests, targets := pool64(t, 4)
	// Patch 4 code bytes in the live module on VM 2 (a 64-bit inline
	// patch).
	g := guests[1]
	mod := g.Module("tcpip.sys")
	if err := g.AddressSpace().Write(mod.Base+0x1100, []byte{0xCC, 0xCC, 0xCC, 0xCC}); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckModule64("tcpip.sys", targets[1], []Target64{targets[0], targets[2], targets[3]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Altered64 {
		t.Fatalf("verdict %v", rep.Verdict)
	}
	if len(rep.Mismatched) != 1 || rep.Mismatched[0] != ".text" {
		t.Errorf("mismatched = %v", rep.Mismatched)
	}
	// Other VMs still judge their copies clean.
	rep, err = CheckModule64("tcpip.sys", targets[0], []Target64{targets[1], targets[2], targets[3]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Clean64 || rep.Successes != 2 {
		t.Errorf("clean VM: %v %d/%d", rep.Verdict, rep.Successes, rep.Comparisons)
	}
}

func TestCheckModule64HeaderTamper(t *testing.T) {
	guests, targets := pool64(t, 3)
	g := guests[0]
	mod := g.Module("hal.dll")
	// Flip a byte in the OPTIONAL header (in-memory).
	hdr := make([]byte, 0x40)
	g.AddressSpace().Read(mod.Base, hdr)
	lfanew := uint64(binary.LittleEndian.Uint32(hdr[0x3C:]))
	if err := g.AddressSpace().Write(mod.Base+lfanew+4+pe.FileHeaderSize+46, []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckModule64("hal.dll", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Altered64 {
		t.Fatalf("verdict %v", rep.Verdict)
	}
	if len(rep.Mismatched) != 1 || rep.Mismatched[0] != "IMAGE_OPTIONAL_HEADER64" {
		t.Errorf("mismatched = %v", rep.Mismatched)
	}
}

func TestCheckModule64Missing(t *testing.T) {
	_, targets := pool64(t, 2)
	if _, err := CheckModule64("ghost.sys", targets[0], targets[1:]); err == nil {
		t.Error("missing module check succeeded")
	}
}

// --- NormalizePair64 ---

func TestNormalizePair64Identity(t *testing.T) {
	const b1, b2 = 0xFFFFF88001234000, 0xFFFFF88004562000
	le := binary.LittleEndian
	d1 := make([]byte, 256)
	d2 := make([]byte, 256)
	for i := range d1 {
		d1[i] = byte(i)
		d2[i] = byte(i)
	}
	for _, off := range []int{8, 64, 248} {
		le.PutUint64(d1[off:], b1+0x5000)
		le.PutUint64(d2[off:], b2+0x5000)
	}
	n1, n2, sites := NormalizePair64(d1, d2, b1, b2)
	if !bytes.Equal(n1, n2) {
		t.Fatal("not normalized")
	}
	if len(sites) != 3 {
		t.Errorf("sites = %v", sites)
	}
}

func TestNormalizePair64PreservesTamper(t *testing.T) {
	const b1, b2 = 0xFFFFF88001234000, 0xFFFFF88004562000
	d1 := make([]byte, 128)
	d2 := make([]byte, 128)
	d1[77] = 0xCC // tampered byte
	n1, n2, _ := NormalizePair64(d1, d2, b1, b2)
	if bytes.Equal(n1, n2) {
		t.Error("tamper normalized away")
	}
}

func TestNormalizePair64Ldr64Offsets(t *testing.T) {
	// Sanity on the x64 LDR entry codec.
	e := LdrEntry64{
		InLoadOrderLinks: ListEntry64{Flink: 0xFFFFF8A000000100, Blink: 0xFFFFF80001A45680},
		DllBase:          0xFFFFF88001234000,
		EntryPoint:       0xFFFFF88001235010,
		SizeOfImage:      0x24000,
		BaseDllName:      UnicodeString64{Length: 14, MaximumLength: 14, Buffer: 0xFFFFF8A000000200},
	}
	back, err := DecodeLdrEntry64(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.DllBase != e.DllBase || back.BaseDllName.Buffer != e.BaseDllName.Buffer ||
		back.InLoadOrderLinks != e.InLoadOrderLinks || back.SizeOfImage != e.SizeOfImage {
		t.Errorf("round trip: %+v", back)
	}
	b := e.Encode()
	if got := binary.LittleEndian.Uint64(b[0x30:]); got != e.DllBase {
		t.Errorf("DllBase not at 0x30")
	}
	if got := binary.LittleEndian.Uint64(b[0x58+8:]); got != e.BaseDllName.Buffer {
		t.Errorf("BaseDllName.Buffer not at 0x60")
	}
}

func TestGuest64Unload(t *testing.T) {
	guests, targets := pool64(t, 1)
	g := guests[0]
	if err := g.UnloadModule("hal.dll"); err != nil {
		t.Fatal(err)
	}
	if g.Module("hal.dll") != nil {
		t.Error("module still tracked")
	}
	mods, err := ListModules64(targets[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		if m.Name == "hal.dll" {
			t.Error("unloaded module still in list")
		}
	}
	if len(mods) != 3 {
		t.Errorf("%d modules after unload", len(mods))
	}
	if err := g.UnloadModule("hal.dll"); err == nil {
		t.Error("double unload succeeded")
	}
}

func TestGuest64ReplaceDiskCOW(t *testing.T) {
	disk, _ := BuildStandardDisk64()
	g1, err := NewGuest64(Config64{Name: "a", BootSeed: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGuest64(Config64{Name: "b", BootSeed: 2, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	patched := append([]byte(nil), g1.DiskImage("hal.dll")...)
	patched[len(patched)-1] ^= 0xFF
	if err := g1.ReplaceDiskImage("hal.dll", patched); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(g2.DiskImage("hal.dll"), patched) {
		t.Error("disk replacement leaked to sibling")
	}
	if err := g1.ReplaceDiskImage("ghost.sys", patched); err == nil {
		t.Error("replacing unknown file succeeded")
	}
}

func TestParse64Malformed(t *testing.T) {
	raw, _ := BuildImage64(StandardCatalog64()[1])
	cases := map[string]func([]byte){
		"bad DOS magic":   func(b []byte) { b[0] = 'X' },
		"bad NT sig":      func(b []byte) { b[binary.LittleEndian.Uint32(b[0x3C:])] = 'X' },
		"huge lfanew":     func(b []byte) { b[0x3C], b[0x3D], b[0x3E], b[0x3F] = 0xFF, 0xFF, 0xFF, 0x7F },
		"wrong opt magic": func(b []byte) { lf := binary.LittleEndian.Uint32(b[0x3C:]); b[lf+4+20] = 0x0B; b[lf+4+21] = 0x01 },
	}
	for name, corrupt := range cases {
		b := append([]byte(nil), raw...)
		corrupt(b)
		if _, err := Parse64(b); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
	if _, err := Parse64(nil); err == nil {
		t.Error("nil parsed")
	}
}

func TestCheckModule64PeerWithoutModule(t *testing.T) {
	guests, targets := pool64(t, 4)
	if err := guests[2].UnloadModule("hal.dll"); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckModule64("hal.dll", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	// Peer without the module is excluded from the vote.
	if rep.Comparisons != 2 || rep.Verdict != Clean64 {
		t.Errorf("%d comparisons, %v", rep.Comparisons, rep.Verdict)
	}
}

func TestVerdict64Strings(t *testing.T) {
	if Clean64.String() != "CLEAN" || Altered64.String() != "ALTERED" || Inconclusive64.String() != "INCONCLUSIVE" {
		t.Error("verdict strings")
	}
}
