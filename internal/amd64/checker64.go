package amd64

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"modchecker/internal/nt"
	"modchecker/internal/pe"
)

// ModChecker64: the 64-bit integrity checker. The pipeline matches the
// 32-bit core — search PsLoadedModuleList, copy the module, extract PE32+
// components, normalize relocated addresses, hash, majority-vote — with
// 8-byte address fields and the x64 structure layouts.

// Target64 identifies one 64-bit VM to the checker.
type Target64 struct {
	Name string
	Mem  interface {
		ReadPhys(pa uint32, b []byte) error
	}
	CR3 uint32
}

// readVA reads guest virtual memory via an external 4-level walk.
func (t Target64) readVA(va uint64, b []byte) error {
	return ReadVirtual64(t.Mem, t.CR3, va, b)
}

// ModuleInfo64 is one loaded-module-list entry recovered via introspection.
type ModuleInfo64 struct {
	Name        string
	Base        uint64
	SizeOfImage uint32
	LdrEntryVA  uint64
}

// maxList64 bounds list traversal against corruption.
const maxList64 = 4096

// ListModules64 walks the 64-bit PsLoadedModuleList from outside the
// guest.
func ListModules64(t Target64) ([]ModuleInfo64, error) {
	head := make([]byte, 16)
	if err := t.readVA(PsLoadedModuleList64VA, head); err != nil {
		return nil, fmt.Errorf("amd64: reading list head on %s: %w", t.Name, err)
	}
	le := binary.LittleEndian
	var out []ModuleInfo64
	cur := le.Uint64(head[0:])
	for n := 0; cur != PsLoadedModuleList64VA; n++ {
		if n >= maxList64 {
			return nil, fmt.Errorf("amd64: module list on %s exceeds %d entries", t.Name, maxList64)
		}
		raw := make([]byte, Ldr64Size)
		if err := t.readVA(cur, raw); err != nil {
			return nil, err
		}
		entry, err := DecodeLdrEntry64(raw)
		if err != nil {
			return nil, err
		}
		nameBuf := make([]byte, entry.BaseDllName.Length)
		if err := t.readVA(entry.BaseDllName.Buffer, nameBuf); err != nil {
			return nil, err
		}
		name, err := nt.DecodeUTF16(nameBuf)
		if err != nil {
			return nil, err
		}
		out = append(out, ModuleInfo64{
			Name:        name,
			Base:        entry.DllBase,
			SizeOfImage: entry.SizeOfImage,
			LdrEntryVA:  cur,
		})
		cur = entry.InLoadOrderLinks.Flink
	}
	return out, nil
}

// FetchModule64 finds and copies the named module.
func FetchModule64(t Target64, module string) (*ModuleInfo64, []byte, error) {
	mods, err := ListModules64(t)
	if err != nil {
		return nil, nil, err
	}
	for i := range mods {
		if strings.EqualFold(mods[i].Name, module) {
			buf := make([]byte, mods[i].SizeOfImage)
			if err := t.readVA(mods[i].Base, buf); err != nil {
				return nil, nil, err
			}
			return &mods[i], buf, nil
		}
	}
	return nil, nil, fmt.Errorf("amd64: module %s not loaded on %s", module, t.Name)
}

// Component64 is one integrity-checked unit of a 64-bit module.
type Component64 struct {
	Name      string
	Data      []byte
	Normalize bool
}

// ParseModule64 extracts the checkable components from an in-memory PE32+
// module (the 64-bit Algorithm 1).
func ParseModule64(buf []byte) ([]Component64, error) {
	le := binary.LittleEndian
	if len(buf) < pe.DOSHeaderSize || le.Uint16(buf[0:]) != pe.DOSMagic {
		return nil, fmt.Errorf("amd64: bad DOS header")
	}
	lfanew := le.Uint32(buf[0x3C:])
	end := uint64(lfanew) + 4 + pe.FileHeaderSize + OptionalHeader64Size
	if end > uint64(len(buf)) {
		return nil, fmt.Errorf("amd64: e_lfanew out of range")
	}
	if le.Uint32(buf[lfanew:]) != pe.NTSignature {
		return nil, fmt.Errorf("amd64: bad NT signature")
	}
	var out []Component64
	out = append(out, Component64{Name: "IMAGE_DOS_HEADER", Data: buf[:lfanew]})
	fileOff := lfanew + 4
	out = append(out, Component64{Name: "IMAGE_NT_HEADER", Data: buf[lfanew : fileOff+pe.FileHeaderSize]})
	numSections := le.Uint16(buf[fileOff+2:])
	optOff := fileOff + pe.FileHeaderSize
	out = append(out, Component64{Name: "IMAGE_OPTIONAL_HEADER64", Data: buf[optOff : optOff+OptionalHeader64Size]})
	secOff := optOff + OptionalHeader64Size
	type sec struct {
		name      string
		va, vsize uint32
		chars     uint32
	}
	var secs []sec
	for i := 0; i < int(numSections); i++ {
		off := secOff + uint32(i)*pe.SectionHeaderSize
		if uint64(off)+pe.SectionHeaderSize > uint64(len(buf)) {
			return nil, fmt.Errorf("amd64: section table out of range")
		}
		hdr := buf[off : off+pe.SectionHeaderSize]
		var name [8]byte
		copy(name[:], hdr[:8])
		sh := pe.SectionHeader{Name: name}
		out = append(out, Component64{Name: "IMAGE_SECTION_HEADER[" + sh.NameString() + "]", Data: hdr})
		secs = append(secs, sec{
			name:  sh.NameString(),
			vsize: le.Uint32(hdr[8:]),
			va:    le.Uint32(hdr[12:]),
			chars: le.Uint32(hdr[36:]),
		})
	}
	for _, s := range secs {
		if s.chars&pe.ScnMemWrite != 0 {
			continue
		}
		if uint64(s.va)+uint64(s.vsize) > uint64(len(buf)) {
			return nil, fmt.Errorf("amd64: section %s outside module", s.name)
		}
		out = append(out, Component64{Name: s.name, Data: buf[s.va : s.va+s.vsize], Normalize: true})
	}
	return out, nil
}

// NormalizePair64 is the 64-bit Algorithm 2: locate 8-byte absolute
// addresses by byte difference against the peer copy and rewrite both
// sides to RVA form. The offset heuristic is identical to the 32-bit
// variant — page-aligned bases share their low bytes, so the first
// differing byte of two relocated addresses falls at the same index as the
// first differing byte of the bases — just over 8-byte fields.
func NormalizePair64(data1, data2 []byte, base1, base2 uint64) (n1, n2 []byte, sites []uint32) {
	n1 = append([]byte(nil), data1...)
	n2 = append([]byte(nil), data2...)
	le := binary.LittleEndian
	var b1, b2 [8]byte
	le.PutUint64(b1[:], base1)
	le.PutUint64(b2[:], base2)
	offset := -1
	for i := 0; i < 8; i++ {
		if b1[i] != b2[i] {
			offset = i
			break
		}
	}
	if offset < 0 {
		return n1, n2, nil
	}
	limit := len(n1)
	if len(n2) < limit {
		limit = len(n2)
	}
	for j := 0; j < limit; {
		if n1[j] == n2[j] {
			j++
			continue
		}
		start := j - offset
		if start >= 0 && start+8 <= limit {
			a1 := le.Uint64(n1[start:])
			a2 := le.Uint64(n2[start:])
			rva1 := a1 - base1
			rva2 := a2 - base2
			if rva1 == rva2 {
				le.PutUint64(n1[start:], rva1)
				le.PutUint64(n2[start:], rva2)
				sites = append(sites, uint32(start))
				j = start + 8
				continue
			}
		}
		j++
	}
	return n1, n2, sites
}

// Verdict64 mirrors the 32-bit verdicts.
type Verdict64 int

const (
	Clean64 Verdict64 = iota
	Altered64
	Inconclusive64
)

func (v Verdict64) String() string {
	switch v {
	case Clean64:
		return "CLEAN"
	case Altered64:
		return "ALTERED"
	default:
		return "INCONCLUSIVE"
	}
}

// Report64 is the outcome of checking one module on one 64-bit VM.
type Report64 struct {
	Module      string
	TargetVM    string
	Base        uint64
	Successes   int
	Comparisons int
	Verdict     Verdict64
	Mismatched  []string
}

// CheckModule64 verifies module on target against peers with the majority
// vote.
func CheckModule64(module string, target Target64, peers []Target64) (*Report64, error) {
	tInfo, tBuf, err := FetchModule64(target, module)
	if err != nil {
		return nil, err
	}
	tComps, err := ParseModule64(tBuf)
	if err != nil {
		return nil, err
	}
	rep := &Report64{Module: module, TargetVM: target.Name, Base: tInfo.Base}
	mismatchSet := map[string]bool{}
	for _, p := range peers {
		pInfo, pBuf, err := FetchModule64(p, module)
		if err != nil {
			continue // peer without the module is excluded from the vote
		}
		pComps, err := ParseModule64(pBuf)
		if err != nil {
			continue
		}
		byName := map[string]*Component64{}
		for i := range pComps {
			byName[pComps[i].Name] = &pComps[i]
		}
		match := true
		for i := range tComps {
			tc := &tComps[i]
			pc, ok := byName[tc.Name]
			if !ok {
				match = false
				mismatchSet[tc.Name] = true
				continue
			}
			da, db := tc.Data, pc.Data
			if tc.Normalize && pc.Normalize {
				da, db, _ = NormalizePair64(da, db, tInfo.Base, pInfo.Base)
			}
			if len(tc.Data) != len(pc.Data) || md5.Sum(da) != md5.Sum(db) {
				match = false
				mismatchSet[tc.Name] = true
			}
		}
		rep.Comparisons++
		if match {
			rep.Successes++
		}
	}
	for name := range mismatchSet {
		rep.Mismatched = append(rep.Mismatched, name)
	}
	sort.Strings(rep.Mismatched)
	failures := rep.Comparisons - rep.Successes
	switch {
	case rep.Comparisons == 0:
		rep.Verdict = Inconclusive64
	case 2*rep.Successes > rep.Comparisons:
		rep.Verdict = Clean64
	case 2*failures > rep.Comparisons:
		rep.Verdict = Altered64
	default:
		rep.Verdict = Inconclusive64
	}
	return rep, nil
}
