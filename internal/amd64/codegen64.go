package amd64

import (
	"encoding/binary"
	"math/rand"
)

// Program64 is a generated x86-64 code section: bytes plus the offsets of
// every 8-byte absolute-address operand (DIR64 relocation sites).
type Program64 struct {
	Code         []byte
	RelocOffsets []uint32
	Functions    []uint32
}

// Generate64 emits deterministic x86-64 driver code. Two address-bearing
// idioms mirror real x64 drivers:
//
//   - MOV RAX, imm64 (48 B8 + 8 bytes) — an absolute address requiring a
//     DIR64 fixup; x64 code has far fewer of these than x86 but pointer
//     materialization still uses them;
//   - MOV RAX, [RIP+disp32] (48 8B 05 + 4 bytes) — RIP-relative, position
//     independent and relocation-free, the dominant x64 addressing mode.
//
// The mix (~1 absolute per 4 RIP-relative) reproduces the much sparser
// relocation density of 64-bit modules, which is exactly what makes the
// 64-bit Algorithm 2 variant cheaper per byte than its 32-bit counterpart.
func Generate64(seed int64, size uint32, imageBase uint64, dataRVA, dataSize uint32) *Program64 {
	rng := rand.New(rand.NewSource(seed))
	p := &Program64{Code: make([]byte, 0, size)}
	le := binary.LittleEndian

	emit := func(b ...byte) { p.Code = append(p.Code, b...) }
	dataTarget := func() uint32 {
		return dataRVA + uint32(rng.Intn(int(dataSize/8)))*8
	}

	const maxFn = 128
	for uint32(len(p.Code))+maxFn+16 <= size {
		p.Functions = append(p.Functions, uint32(len(p.Code)))
		emit(0x55)             // push rbp
		emit(0x48, 0x8B, 0xEC) // mov rbp, rsp
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0: // mov rax, imm64 (absolute address -> DIR64 site)
				emit(0x48, 0xB8)
				p.RelocOffsets = append(p.RelocOffsets, uint32(len(p.Code)))
				var b [8]byte
				le.PutUint64(b[:], imageBase+uint64(dataTarget()))
				emit(b[:]...)
			case 1, 2: // mov rax, [rip+disp32] (no relocation)
				emit(0x48, 0x8B, 0x05)
				var b [4]byte
				le.PutUint32(b[:], uint32(rng.Intn(1<<12)))
				emit(b[:]...)
			case 3: // lea rcx, [rip+disp32]
				emit(0x48, 0x8D, 0x0D)
				var b [4]byte
				le.PutUint32(b[:], uint32(rng.Intn(1<<12)))
				emit(b[:]...)
			case 4: // mov eax, imm32
				emit(0xB8)
				var b [4]byte
				le.PutUint32(b[:], uint32(rng.Intn(1<<16)))
				emit(b[:]...)
			case 5: // xor rax, rax
				emit(0x48, 0x31, 0xC0)
			case 6: // call rel32
				emit(0xE8)
				var b [4]byte
				le.PutUint32(b[:], uint32(rng.Intn(1<<10)))
				emit(b[:]...)
			case 7: // dec ecx (the E1 marker opcode family)
				emit(0xFF, 0xC9)
			case 8: // test rax, rax ; jz +2
				emit(0x48, 0x85, 0xC0, 0x74, 0x02, 0x90, 0x90)
			case 9: // nop
				emit(0x90)
			}
		}
		emit(0x5D) // pop rbp
		emit(0xC3) // ret
		// Inter-function cave.
		cave := 8 + rng.Intn(16)
		p.Code = append(p.Code, make([]byte, cave)...)
	}
	if tail := int(size) - len(p.Code); tail > 0 {
		p.Code = append(p.Code, make([]byte, tail)...)
	}
	return p
}

// GenerateData64 produces a data blob whose leading slots are 8-byte
// pointers into the blob itself (DIR64 sites).
func GenerateData64(seed int64, size uint32, imageBase uint64, selfRVA uint32, slots int) *Program64 {
	rng := rand.New(rand.NewSource(seed ^ 0xDA7A))
	blob := make([]byte, size)
	p := &Program64{Code: blob}
	le := binary.LittleEndian
	for i := 0; i < slots; i++ {
		off := uint32(i * 8)
		target := imageBase + uint64(selfRVA) + uint64(slots*8+rng.Intn(int(size)-slots*8))
		le.PutUint64(blob[off:], target)
		p.RelocOffsets = append(p.RelocOffsets, off)
	}
	for i := slots * 8; i < int(size); i++ {
		blob[i] = byte(rng.Intn(256))
	}
	return p
}
