package amd64

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"modchecker/internal/mm"
	"modchecker/internal/nt"
	"modchecker/internal/pe"
)

// 64-bit guest virtual layout (Windows-7-x64-like). Constants are OS-build
// properties shared by all clones, so one VMI profile serves the pool.
const (
	// PsLoadedModuleList64VA is the guest VA of the loaded-module list
	// head in the 64-bit kernel.
	PsLoadedModuleList64VA = 0xFFFFF80001A45680

	kernelGlobals64VA = 0xFFFFF80001A45000
	pool64VA          = 0xFFFFF8A000000000
	driverArea64VA    = 0xFFFFF88001000000
	driverArea64End   = 0xFFFFF8800A000000
)

// x64 LDR_DATA_TABLE_ENTRY field offsets.
const (
	Ldr64Size           = 0x70
	off64InLoadOrder    = 0x00
	off64DllBase        = 0x30
	off64EntryPoint     = 0x38
	off64SizeOfImage    = 0x40
	off64FullDllName    = 0x48
	off64BaseDllName    = 0x58
	off64Flags          = 0x68
	unicodeString64Size = 0x10
)

// ListEntry64 is the 64-bit LIST_ENTRY.
type ListEntry64 struct {
	Flink uint64
	Blink uint64
}

// LdrEntry64 is the x64 LDR_DATA_TABLE_ENTRY subset ModChecker64 reads.
type LdrEntry64 struct {
	InLoadOrderLinks ListEntry64
	DllBase          uint64
	EntryPoint       uint64
	SizeOfImage      uint32
	FullDllName      UnicodeString64
	BaseDllName      UnicodeString64
}

// UnicodeString64 is the 64-bit UNICODE_STRING (8-byte Buffer pointer,
// 4 bytes of alignment padding after the lengths).
type UnicodeString64 struct {
	Length        uint16
	MaximumLength uint16
	Buffer        uint64
}

func encodeUS64(s UnicodeString64) []byte {
	b := make([]byte, unicodeString64Size)
	le := binary.LittleEndian
	le.PutUint16(b[0:], s.Length)
	le.PutUint16(b[2:], s.MaximumLength)
	le.PutUint64(b[8:], s.Buffer)
	return b
}

func decodeUS64(b []byte) UnicodeString64 {
	le := binary.LittleEndian
	return UnicodeString64{
		Length:        le.Uint16(b[0:]),
		MaximumLength: le.Uint16(b[2:]),
		Buffer:        le.Uint64(b[8:]),
	}
}

// Encode serializes the entry to Ldr64Size bytes.
func (e *LdrEntry64) Encode() []byte {
	b := make([]byte, Ldr64Size)
	le := binary.LittleEndian
	le.PutUint64(b[off64InLoadOrder:], e.InLoadOrderLinks.Flink)
	le.PutUint64(b[off64InLoadOrder+8:], e.InLoadOrderLinks.Blink)
	le.PutUint64(b[off64DllBase:], e.DllBase)
	le.PutUint64(b[off64EntryPoint:], e.EntryPoint)
	le.PutUint32(b[off64SizeOfImage:], e.SizeOfImage)
	copy(b[off64FullDllName:], encodeUS64(e.FullDllName))
	copy(b[off64BaseDllName:], encodeUS64(e.BaseDllName))
	le.PutUint32(b[off64Flags:], 0x09004000)
	return b
}

// DecodeLdrEntry64 parses an x64 loader entry.
func DecodeLdrEntry64(b []byte) (*LdrEntry64, error) {
	if len(b) < Ldr64Size {
		return nil, fmt.Errorf("amd64: LDR entry needs %#x bytes, have %#x", Ldr64Size, len(b))
	}
	le := binary.LittleEndian
	return &LdrEntry64{
		InLoadOrderLinks: ListEntry64{Flink: le.Uint64(b[off64InLoadOrder:]), Blink: le.Uint64(b[off64InLoadOrder+8:])},
		DllBase:          le.Uint64(b[off64DllBase:]),
		EntryPoint:       le.Uint64(b[off64EntryPoint:]),
		SizeOfImage:      le.Uint32(b[off64SizeOfImage:]),
		FullDllName:      decodeUS64(b[off64FullDllName:]),
		BaseDllName:      decodeUS64(b[off64BaseDllName:]),
	}, nil
}

// Module64 is the guest-side record of one loaded 64-bit module.
type Module64 struct {
	Name        string
	Base        uint64
	SizeOfImage uint32
	LdrEntryVA  uint64
}

// Guest64 is a simulated 64-bit Windows guest: physical memory, 4-level
// page tables, and a 64-bit PsLoadedModuleList maintained by its module
// loader.
type Guest64 struct {
	name string
	phys *mm.PhysMemory
	as   *AddressSpace64
	disk map[string][]byte
	rng  *rand.Rand

	nextModuleVA uint64
	poolNext     uint64
	poolMapped   uint64
	modules      map[string]*Module64
}

// Config64 configures a 64-bit guest.
type Config64 struct {
	Name     string
	MemBytes uint64
	BootSeed int64
	Disk     map[string][]byte // PE32+ images
}

// NewGuest64 boots a 64-bit guest and loads every disk module.
func NewGuest64(cfg Config64) (*Guest64, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 << 20
	}
	if cfg.Disk == nil {
		return nil, fmt.Errorf("amd64: guest %q has no disk", cfg.Name)
	}
	phys := mm.NewPhysMemory(cfg.MemBytes, cfg.BootSeed)
	as, err := NewAddressSpace64(phys)
	if err != nil {
		return nil, err
	}
	g := &Guest64{
		name:       cfg.Name,
		phys:       phys,
		as:         as,
		disk:       cfg.Disk,
		rng:        rand.New(rand.NewSource(cfg.BootSeed)),
		poolNext:   pool64VA,
		poolMapped: pool64VA,
		modules:    make(map[string]*Module64),
	}
	if err := as.AllocAndMap(kernelGlobals64VA, mm.PageSize, true); err != nil {
		return nil, err
	}
	head := make([]byte, 16)
	binary.LittleEndian.PutUint64(head[0:], PsLoadedModuleList64VA)
	binary.LittleEndian.PutUint64(head[8:], PsLoadedModuleList64VA)
	if err := as.Write(PsLoadedModuleList64VA, head); err != nil {
		return nil, err
	}
	g.nextModuleVA = driverArea64VA + uint64(g.rng.Intn(512))*mm.PageSize

	names := make([]string, 0, len(cfg.Disk))
	for n := range cfg.Disk {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := g.LoadModule(n); err != nil {
			return nil, fmt.Errorf("amd64: boot-loading %s: %w", n, err)
		}
	}
	return g, nil
}

// Name returns the VM name.
func (g *Guest64) Name() string { return g.name }

// Phys exposes guest-physical memory for introspection.
func (g *Guest64) Phys() *mm.PhysMemory { return g.phys }

// CR3 returns the PML4 physical address.
func (g *Guest64) CR3() uint32 { return g.as.CR3() }

// AddressSpace exposes the kernel address space (guest-side code only).
func (g *Guest64) AddressSpace() *AddressSpace64 { return g.as }

// Module returns the named module's record, or nil.
func (g *Guest64) Module(name string) *Module64 { return g.modules[name] }

// Modules lists loaded modules sorted by name.
func (g *Guest64) Modules() []*Module64 {
	out := make([]*Module64, 0, len(g.modules))
	for _, m := range g.modules {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DiskImage returns a copy of a disk file's bytes, or nil. Copying keeps
// callers from mutating the golden disk shared by cloned guests.
func (g *Guest64) DiskImage(name string) []byte {
	img, ok := g.disk[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), img...)
}

// ReplaceDiskImage swaps a disk file (copy-on-write over the shared golden
// disk).
func (g *Guest64) ReplaceDiskImage(name string, img []byte) error {
	if _, ok := g.disk[name]; !ok {
		return fmt.Errorf("amd64: no file %s", name)
	}
	nd := make(map[string][]byte, len(g.disk))
	for k, v := range g.disk {
		nd[k] = v
	}
	nd[name] = img
	g.disk = nd
	return nil
}

// poolAlloc reserves pool bytes, mapping pages on demand.
func (g *Guest64) poolAlloc(size uint32, alignTo uint64) (uint64, error) {
	va := (g.poolNext + alignTo - 1) &^ (alignTo - 1)
	end := va + uint64(size)
	for g.poolMapped < end {
		if err := g.as.AllocAndMap(g.poolMapped, mm.PageSize, true); err != nil {
			return 0, err
		}
		g.poolMapped += mm.PageSize
	}
	g.poolNext = end
	return va, nil
}

// LoadModule maps a PE32+ image, applies DIR64 relocations for the chosen
// base, and links an x64 LDR entry into PsLoadedModuleList.
func (g *Guest64) LoadModule(name string) (*Module64, error) {
	if _, dup := g.modules[name]; dup {
		return nil, fmt.Errorf("amd64: %s already loaded", name)
	}
	raw, ok := g.disk[name]
	if !ok {
		return nil, fmt.Errorf("amd64: no file %s", name)
	}
	img, err := Parse64(raw)
	if err != nil {
		return nil, err
	}
	base := g.nextModuleVA
	pages := uint64(img.Optional.SizeOfImage+mm.PageSize-1) / mm.PageSize
	g.nextModuleVA = base + pages*mm.PageSize + uint64(g.rng.Intn(64))*mm.PageSize
	if g.nextModuleVA > driverArea64End {
		return nil, fmt.Errorf("amd64: driver area exhausted")
	}
	mem, err := img.LayoutAt(base)
	if err != nil {
		return nil, err
	}
	if err := g.as.AllocAndMap(base, img.Optional.SizeOfImage, true); err != nil {
		return nil, err
	}
	if err := g.as.Write(base, mem); err != nil {
		return nil, err
	}

	mod := &Module64{Name: name, Base: base, SizeOfImage: img.Optional.SizeOfImage}
	nameBuf := nt.EncodeUTF16(name)
	fullBuf := nt.EncodeUTF16(`\SystemRoot\system32\drivers\` + name)
	nameVA, err := g.poolAlloc(uint32(len(nameBuf)), 2)
	if err != nil {
		return nil, err
	}
	if err := g.as.Write(nameVA, nameBuf); err != nil {
		return nil, err
	}
	fullVA, err := g.poolAlloc(uint32(len(fullBuf)), 2)
	if err != nil {
		return nil, err
	}
	if err := g.as.Write(fullVA, fullBuf); err != nil {
		return nil, err
	}
	entryVA, err := g.poolAlloc(Ldr64Size, 16)
	if err != nil {
		return nil, err
	}

	// InsertTailList through guest memory.
	headBuf := make([]byte, 16)
	if err := g.as.Read(PsLoadedModuleList64VA, headBuf); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	tail := le.Uint64(headBuf[8:])
	entry := LdrEntry64{
		InLoadOrderLinks: ListEntry64{Flink: PsLoadedModuleList64VA, Blink: tail},
		DllBase:          base,
		EntryPoint:       base + uint64(img.Optional.AddressOfEntryPoint),
		SizeOfImage:      img.Optional.SizeOfImage,
		FullDllName:      UnicodeString64{Length: uint16(len(fullBuf)), MaximumLength: uint16(len(fullBuf)), Buffer: fullVA},
		BaseDllName:      UnicodeString64{Length: uint16(len(nameBuf)), MaximumLength: uint16(len(nameBuf)), Buffer: nameVA},
	}
	if err := g.as.Write(entryVA, entry.Encode()); err != nil {
		return nil, err
	}
	// tail.Flink = entry
	var fb [8]byte
	le.PutUint64(fb[:], entryVA)
	if err := g.as.Write(tail, fb[:]); err != nil {
		return nil, err
	}
	// head.Blink = entry
	if err := g.as.Write(PsLoadedModuleList64VA+8, fb[:]); err != nil {
		return nil, err
	}
	mod.LdrEntryVA = entryVA
	g.modules[name] = mod
	return mod, nil
}

// UnloadModule unlinks and unmaps a module (no frame reclamation; 64-bit
// guests in these experiments never re-load).
func (g *Guest64) UnloadModule(name string) error {
	mod, ok := g.modules[name]
	if !ok {
		return fmt.Errorf("amd64: %s not loaded", name)
	}
	b := make([]byte, 16)
	if err := g.as.Read(mod.LdrEntryVA, b); err != nil {
		return err
	}
	le := binary.LittleEndian
	flink, blink := le.Uint64(b[0:]), le.Uint64(b[8:])
	var tmp [8]byte
	le.PutUint64(tmp[:], flink)
	if err := g.as.Write(blink, tmp[:]); err != nil { // blink.Flink = flink
		return err
	}
	le.PutUint64(tmp[:], blink)
	if err := g.as.Write(flink+8, tmp[:]); err != nil { // flink.Blink = blink
		return err
	}
	delete(g.modules, name)
	return nil
}

// ModuleSpec64 describes one synthetic 64-bit kernel module.
type ModuleSpec64 struct {
	Name          string
	TextSize      uint32
	DataSize      uint32
	PreferredBase uint64
}

// StandardCatalog64 mirrors a small Windows-x64 driver set.
func StandardCatalog64() []ModuleSpec64 {
	return []ModuleSpec64{
		{Name: "ntoskrnl.exe", TextSize: 256 << 10, DataSize: 64 << 10, PreferredBase: 0x140000000},
		{Name: "hal.dll", TextSize: 64 << 10, DataSize: 16 << 10, PreferredBase: 0x180010000},
		{Name: "http.sys", TextSize: 128 << 10, DataSize: 32 << 10, PreferredBase: 0x180010000},
		{Name: "tcpip.sys", TextSize: 160 << 10, DataSize: 48 << 10, PreferredBase: 0x180010000},
	}
}

// BuildImage64 synthesizes a PE32+ module deterministically from its spec.
func BuildImage64(spec ModuleSpec64) ([]byte, error) {
	h := fnv.New64a()
	h.Write([]byte("amd64:" + spec.Name))
	seed := int64(h.Sum64())

	const textRVA = pe.DefaultSectionAlignment
	dataRVA := textRVA + align(spec.TextSize, pe.DefaultSectionAlignment)
	code := Generate64(seed, spec.TextSize, spec.PreferredBase, dataRVA, spec.DataSize)
	data := GenerateData64(seed, spec.DataSize, spec.PreferredBase, dataRVA, int(spec.DataSize/256))

	var sites []uint32
	for _, off := range code.RelocOffsets {
		sites = append(sites, textRVA+off)
	}
	for _, off := range data.RelocOffsets {
		sites = append(sites, dataRVA+off)
	}
	b := NewBuilder64(spec.PreferredBase)
	b.AddSection(".text", code.Code, pe.ScnCntCode|pe.ScnMemExecute|pe.ScnMemRead)
	b.AddSection(".data", data.Code, pe.ScnCntInitializedData|pe.ScnMemRead|pe.ScnMemWrite)
	b.SetRelocSites(sites)
	b.SetEntryPoint(textRVA + code.Functions[0])
	img, err := b.Build()
	if err != nil {
		return nil, err
	}
	return img.Bytes()
}

// BuildStandardDisk64 builds the golden 64-bit disk.
func BuildStandardDisk64() (map[string][]byte, error) {
	disk := make(map[string][]byte)
	for _, spec := range StandardCatalog64() {
		img, err := BuildImage64(spec)
		if err != nil {
			return nil, err
		}
		disk[spec.Name] = img
	}
	return disk, nil
}
