package amd64

import (
	"encoding/binary"
	"fmt"

	"modchecker/internal/mm"
)

// x86-64 4-level paging over the shared guest-physical substrate. Entries
// are 8 bytes; virtual addresses are 48-bit canonical (bits 47..63 sign
// extended). Each table holds 512 entries covering 9 bits of VA.
const (
	pteP        = 1 << 0 // present
	pteW        = 1 << 1 // writable
	entries64   = 512
	frameMask64 = 0x000FFFFFFFFFF000
)

// AddressSpace64 is one 64-bit virtual address space rooted at a PML4
// inside guest-physical memory.
type AddressSpace64 struct {
	mem *mm.PhysMemory
	cr3 uint32 // physical address of the PML4
}

// NewAddressSpace64 allocates a PML4 and returns the empty address space.
func NewAddressSpace64(mem *mm.PhysMemory) (*AddressSpace64, error) {
	pfn, err := mem.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("amd64: allocating PML4: %w", err)
	}
	return &AddressSpace64{mem: mem, cr3: pfn << mm.PageShift}, nil
}

// CR3 returns the PML4's physical address.
func (as *AddressSpace64) CR3() uint32 { return as.cr3 }

// Phys returns the backing physical memory.
func (as *AddressSpace64) Phys() *mm.PhysMemory { return as.mem }

// canonical reports whether va is a canonical 48-bit address.
func canonical(va uint64) bool {
	top := va >> 47
	return top == 0 || top == 0x1FFFF
}

func readEntry64(mem mm.PhysReader, pa uint32) (uint64, error) {
	var b [8]byte
	if err := mem.ReadPhys(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (as *AddressSpace64) writeEntry64(pa uint32, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.mem.WritePhys(pa, b[:])
}

// levelIndex extracts the 9-bit table index for level (3 = PML4 .. 0 = PT).
func levelIndex(va uint64, level uint) uint32 {
	return uint32(va>>(12+9*level)) & (entries64 - 1)
}

// Map installs va -> pfn, allocating intermediate tables as needed. va
// must be page-aligned and canonical.
func (as *AddressSpace64) Map(va uint64, pfn uint32, writable bool) error {
	if va&(mm.PageSize-1) != 0 {
		return fmt.Errorf("amd64: map of unaligned address %#x", va)
	}
	if !canonical(va) {
		return fmt.Errorf("amd64: non-canonical address %#x", va)
	}
	tablePA := as.cr3
	for level := uint(3); level >= 1; level-- {
		entryPA := tablePA + levelIndex(va, level)*8
		entry, err := readEntry64(as.mem, entryPA)
		if err != nil {
			return err
		}
		if entry&pteP == 0 {
			newPFN, err := as.mem.AllocFrame()
			if err != nil {
				return fmt.Errorf("amd64: allocating level-%d table: %w", level, err)
			}
			entry = uint64(newPFN)<<mm.PageShift | pteP | pteW
			if err := as.writeEntry64(entryPA, entry); err != nil {
				return err
			}
		}
		tablePA = uint32(entry & frameMask64)
	}
	flags := uint64(pteP)
	if writable {
		flags |= pteW
	}
	return as.writeEntry64(tablePA+levelIndex(va, 0)*8, uint64(pfn)<<mm.PageShift|flags)
}

// AllocAndMap allocates and maps size bytes at the page-aligned va.
func (as *AddressSpace64) AllocAndMap(va uint64, size uint32, writable bool) error {
	pages := (size + mm.PageSize - 1) / mm.PageSize
	for i := uint32(0); i < pages; i++ {
		pfn, err := as.mem.AllocFrame()
		if err != nil {
			return err
		}
		if err := as.Map(va+uint64(i)*mm.PageSize, pfn, writable); err != nil {
			return err
		}
	}
	return nil
}

// Translate walks this address space's tables for va.
func (as *AddressSpace64) Translate(va uint64) (uint32, error) {
	return WalkPageTables64(as.mem, as.cr3, va)
}

// WalkPageTables64 translates a 64-bit guest VA by walking the 4-level
// tables through raw physical reads — the introspection-side walk, exactly
// as the VMI layer performs it from outside the guest.
func WalkPageTables64(mem mm.PhysReader, cr3 uint32, va uint64) (uint32, error) {
	if !canonical(va) {
		return 0, fmt.Errorf("amd64: non-canonical address %#x", va)
	}
	tablePA := cr3
	for level := uint(3); level >= 1; level-- {
		entry, err := readEntry64(mem, tablePA+levelIndex(va, level)*8)
		if err != nil {
			return 0, err
		}
		if entry&pteP == 0 {
			return 0, fmt.Errorf("%w: va %#x (level %d)", mm.ErrUnmapped, va, level)
		}
		tablePA = uint32(entry & frameMask64)
	}
	pte, err := readEntry64(mem, tablePA+levelIndex(va, 0)*8)
	if err != nil {
		return 0, err
	}
	if pte&pteP == 0 {
		return 0, fmt.Errorf("%w: va %#x (PTE)", mm.ErrUnmapped, va)
	}
	return uint32(pte&frameMask64) | uint32(va&(mm.PageSize-1)), nil
}

// Read copies guest virtual memory page by page.
func (as *AddressSpace64) Read(va uint64, b []byte) error {
	return ReadVirtual64(as.mem, as.cr3, va, b)
}

// Write copies b into guest virtual memory.
func (as *AddressSpace64) Write(va uint64, b []byte) error {
	for len(b) > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return err
		}
		off := uint32(va & (mm.PageSize - 1))
		n := mm.PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if err := as.mem.WritePhys(pa, b[:n]); err != nil {
			return err
		}
		b = b[n:]
		va += uint64(n)
	}
	return nil
}

// ReadVirtual64 is the external (introspection-side) virtual read: each
// page is translated via WalkPageTables64 and read physically.
func ReadVirtual64(mem mm.PhysReader, cr3 uint32, va uint64, b []byte) error {
	for len(b) > 0 {
		pa, err := WalkPageTables64(mem, cr3, va)
		if err != nil {
			return err
		}
		off := uint32(va & (mm.PageSize - 1))
		n := mm.PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if err := mem.ReadPhys(pa, b[:n]); err != nil {
			return err
		}
		b = b[n:]
		va += uint64(n)
	}
	return nil
}
