// Package amd64 is ModChecker64: the 64-bit vertical slice of the
// reproduction, covering the portability the paper claims ("The ModChecker
// design is portable to any VMM...") and the obvious future-work target —
// modern 64-bit Windows guests.
//
// It mirrors the 32-bit stack end to end at PE32+/x86-64 fidelity:
//
//   - pe64.go     — PE32+ images (IMAGE_OPTIONAL_HEADER64, 64-bit
//     ImageBase, DIR64 relocations)
//   - codegen64.go — x86-64 code with MOV RAX,imm64 absolute addresses
//     and RIP-relative (relocation-free) accesses
//   - paging64.go — 4-level x86-64 page tables (PML4 → PDPT → PD → PT)
//     over the shared guest-physical substrate
//   - guest64.go  — a 64-bit guest with the x64 LDR_DATA_TABLE_ENTRY
//     layout in PsLoadedModuleList
//   - checker64.go — ModChecker64: searcher, parser and Integrity-Checker
//     with the 8-byte-address variant of Algorithm 2
package amd64

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"modchecker/internal/pe"
)

// PE32+ constants that differ from PE32.
const (
	// OptionalMagic64 is IMAGE_NT_OPTIONAL_HDR64_MAGIC.
	OptionalMagic64 = 0x020B
	// MachineAMD64 is IMAGE_FILE_MACHINE_AMD64.
	MachineAMD64 = 0x8664
	// OptionalHeader64Size is sizeof(IMAGE_OPTIONAL_HEADER64) with 16
	// data directories.
	OptionalHeader64Size = 240
)

// OptionalHeader64 is IMAGE_OPTIONAL_HEADER64: like the 32-bit header but
// with a 64-bit ImageBase and stack/heap sizes, and no BaseOfData.
type OptionalHeader64 struct {
	Magic                       uint16
	MajorLinkerVersion          uint8
	MinorLinkerVersion          uint8
	SizeOfCode                  uint32
	SizeOfInitializedData       uint32
	SizeOfUninitializedData     uint32
	AddressOfEntryPoint         uint32
	BaseOfCode                  uint32
	ImageBase                   uint64
	SectionAlignment            uint32
	FileAlignment               uint32
	MajorOperatingSystemVersion uint16
	MinorOperatingSystemVersion uint16
	MajorImageVersion           uint16
	MinorImageVersion           uint16
	MajorSubsystemVersion       uint16
	MinorSubsystemVersion       uint16
	Win32VersionValue           uint32
	SizeOfImage                 uint32
	SizeOfHeaders               uint32
	CheckSum                    uint32
	Subsystem                   uint16
	DllCharacteristics          uint16
	SizeOfStackReserve          uint64
	SizeOfStackCommit           uint64
	SizeOfHeapReserve           uint64
	SizeOfHeapCommit            uint64
	LoaderFlags                 uint32
	NumberOfRvaAndSizes         uint32
	DataDirectory               [pe.NumDataDirectories]pe.DataDirectory
}

// Image64 is a complete PE32+ image.
type Image64 struct {
	DOS      pe.DOSHeader
	DOSStub  []byte
	File     pe.FileHeader
	Optional OptionalHeader64
	Sections []pe.Section
}

// Section returns the named section, or nil.
func (img *Image64) Section(name string) *pe.Section {
	for i := range img.Sections {
		if img.Sections[i].Header.NameString() == name {
			return &img.Sections[i]
		}
	}
	return nil
}

// Builder64 assembles PE32+ driver images (the x64 analogue of
// pe.Builder).
type Builder64 struct {
	imageBase  uint64
	entryPoint uint32
	dosStub    []byte
	sections   []section64
	relocSites []uint32
}

type section64 struct {
	name  string
	data  []byte
	chars uint32
}

// NewBuilder64 returns a builder for a native x64 image.
func NewBuilder64(imageBase uint64) *Builder64 {
	return &Builder64{
		imageBase: imageBase,
		dosStub:   defaultStub(),
	}
}

func defaultStub() []byte {
	stub := append([]byte{
		0x0E, 0x1F, 0xBA, 0x0E, 0x00, 0xB4, 0x09, 0xCD, 0x21,
		0xB8, 0x01, 0x4C, 0xCD, 0x21,
	}, []byte(pe.DefaultDOSStub)...)
	for (pe.DOSHeaderSize+len(stub))%8 != 0 {
		stub = append(stub, 0)
	}
	return stub
}

// AddSection appends a section; layout follows pe.Builder conventions
// (4 KiB section alignment, 512-byte file alignment).
func (b *Builder64) AddSection(name string, data []byte, chars uint32) uint32 {
	rva := b.nextRVA()
	b.sections = append(b.sections, section64{name, data, chars})
	return rva
}

// SetRelocSites records DIR64 fixup sites (RVAs of 8-byte absolute
// addresses).
func (b *Builder64) SetRelocSites(sites []uint32) { b.relocSites = sites }

// SetEntryPoint sets the entry RVA.
func (b *Builder64) SetEntryPoint(rva uint32) { b.entryPoint = rva }

func (b *Builder64) nextRVA() uint32 {
	rva := uint32(pe.DefaultSectionAlignment)
	for _, s := range b.sections {
		rva += align(uint32(len(s.data)), pe.DefaultSectionAlignment)
	}
	return rva
}

func align(v, a uint32) uint32 { return (v + a - 1) / a * a }

// Build assembles the image.
func (b *Builder64) Build() (*Image64, error) {
	secs := append([]section64(nil), b.sections...)
	var relocDir pe.DataDirectory
	if len(b.relocSites) > 0 {
		table := pe.BuildRelocTableTyped(b.relocSites, pe.RelBasedDir64)
		rva := uint32(pe.DefaultSectionAlignment)
		for _, s := range secs {
			rva += align(uint32(len(s.data)), pe.DefaultSectionAlignment)
		}
		secs = append(secs, section64{".reloc", table,
			pe.ScnCntInitializedData | pe.ScnMemRead | pe.ScnMemDiscardable})
		relocDir = pe.DataDirectory{VirtualAddress: rva, Size: uint32(len(table))}
	}
	img := &Image64{
		DOS: pe.DOSHeader{
			EMagic:  pe.DOSMagic,
			ECblp:   0x90,
			ECp:     3,
			ELfanew: uint32(pe.DOSHeaderSize + len(b.dosStub)),
		},
		DOSStub: append([]byte(nil), b.dosStub...),
		File: pe.FileHeader{
			Machine:              MachineAMD64,
			NumberOfSections:     uint16(len(secs)),
			TimeDateStamp:        0x5F000000,
			SizeOfOptionalHeader: OptionalHeader64Size,
			Characteristics:      pe.FileExecutableImage | pe.FileLocalSymsStripped | pe.FileLineNumsStripped,
		},
		Optional: OptionalHeader64{
			Magic:                       OptionalMagic64,
			MajorLinkerVersion:          14,
			ImageBase:                   b.imageBase,
			SectionAlignment:            pe.DefaultSectionAlignment,
			FileAlignment:               pe.DefaultFileAlignment,
			MajorOperatingSystemVersion: 6, // Windows 7 era
			MinorOperatingSystemVersion: 1,
			MajorSubsystemVersion:       6,
			MinorSubsystemVersion:       1,
			Subsystem:                   pe.SubsystemNative,
			NumberOfRvaAndSizes:         pe.NumDataDirectories,
			AddressOfEntryPoint:         b.entryPoint,
		},
	}
	img.Optional.DataDirectory[pe.DirBaseReloc] = relocDir

	headerBytes := uint32(pe.DOSHeaderSize+len(b.dosStub)) + 4 + pe.FileHeaderSize +
		OptionalHeader64Size + uint32(len(secs))*pe.SectionHeaderSize
	img.Optional.SizeOfHeaders = align(headerBytes, pe.DefaultFileAlignment)

	rva := uint32(pe.DefaultSectionAlignment)
	fileOff := img.Optional.SizeOfHeaders
	for _, s := range secs {
		raw := align(uint32(len(s.data)), pe.DefaultFileAlignment)
		data := make([]byte, raw)
		copy(data, s.data)
		var h pe.SectionHeader
		h.SetName(s.name)
		h.VirtualSize = uint32(len(s.data))
		h.VirtualAddress = rva
		h.SizeOfRawData = raw
		h.PointerToRawData = fileOff
		h.Characteristics = s.chars
		img.Sections = append(img.Sections, pe.Section{Header: h, Data: data})
		if s.chars&(pe.ScnCntCode|pe.ScnMemExecute) != 0 && img.Optional.BaseOfCode == 0 {
			img.Optional.BaseOfCode = rva
		}
		rva += align(uint32(len(s.data)), pe.DefaultSectionAlignment)
		fileOff += raw
	}
	img.Optional.SizeOfImage = rva
	if img.Optional.AddressOfEntryPoint == 0 {
		img.Optional.AddressOfEntryPoint = img.Optional.BaseOfCode
	}
	return img, nil
}

// Bytes serializes the image to its on-disk representation.
func (img *Image64) Bytes() ([]byte, error) {
	total := img.Optional.SizeOfHeaders
	for i := range img.Sections {
		end := img.Sections[i].Header.PointerToRawData + img.Sections[i].Header.SizeOfRawData
		if end > total {
			total = end
		}
	}
	out := make([]byte, total)
	var buf bytes.Buffer
	le := binary.LittleEndian
	if err := binary.Write(&buf, le, &img.DOS); err != nil {
		return nil, err
	}
	buf.Write(img.DOSStub)
	if err := binary.Write(&buf, le, uint32(pe.NTSignature)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, le, &img.File); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, le, &img.Optional); err != nil {
		return nil, err
	}
	for i := range img.Sections {
		if err := binary.Write(&buf, le, &img.Sections[i].Header); err != nil {
			return nil, err
		}
	}
	if uint32(buf.Len()) > img.Optional.SizeOfHeaders {
		return nil, fmt.Errorf("amd64: headers exceed SizeOfHeaders")
	}
	copy(out, buf.Bytes())
	for i := range img.Sections {
		h := &img.Sections[i].Header
		copy(out[h.PointerToRawData:h.PointerToRawData+h.SizeOfRawData], img.Sections[i].Data)
	}
	return out, nil
}

// Parse64 decodes a PE32+ image.
func Parse64(raw []byte) (*Image64, error) {
	if len(raw) < pe.DOSHeaderSize {
		return nil, fmt.Errorf("amd64: image too small")
	}
	le := binary.LittleEndian
	img := new(Image64)
	if err := binary.Read(bytes.NewReader(raw[:pe.DOSHeaderSize]), le, &img.DOS); err != nil {
		return nil, err
	}
	if img.DOS.EMagic != pe.DOSMagic {
		return nil, fmt.Errorf("amd64: bad DOS magic %#04x", img.DOS.EMagic)
	}
	lfanew := img.DOS.ELfanew
	if uint64(lfanew)+4+pe.FileHeaderSize+OptionalHeader64Size > uint64(len(raw)) {
		return nil, fmt.Errorf("amd64: e_lfanew %#x out of range", lfanew)
	}
	img.DOSStub = append([]byte(nil), raw[pe.DOSHeaderSize:lfanew]...)
	if le.Uint32(raw[lfanew:]) != pe.NTSignature {
		return nil, fmt.Errorf("amd64: bad NT signature")
	}
	off := lfanew + 4
	if err := binary.Read(bytes.NewReader(raw[off:off+pe.FileHeaderSize]), le, &img.File); err != nil {
		return nil, err
	}
	if img.File.Machine != MachineAMD64 {
		return nil, fmt.Errorf("amd64: machine %#04x is not AMD64", img.File.Machine)
	}
	if img.File.SizeOfOptionalHeader != OptionalHeader64Size {
		return nil, fmt.Errorf("amd64: optional header size %d", img.File.SizeOfOptionalHeader)
	}
	off += pe.FileHeaderSize
	if err := binary.Read(bytes.NewReader(raw[off:off+OptionalHeader64Size]), le, &img.Optional); err != nil {
		return nil, err
	}
	if img.Optional.Magic != OptionalMagic64 {
		return nil, fmt.Errorf("amd64: optional magic %#04x is not PE32+", img.Optional.Magic)
	}
	off += OptionalHeader64Size
	n := int(img.File.NumberOfSections)
	if uint64(off)+uint64(n)*pe.SectionHeaderSize > uint64(len(raw)) {
		return nil, fmt.Errorf("amd64: section table exceeds image")
	}
	img.Sections = make([]pe.Section, n)
	for i := 0; i < n; i++ {
		if err := binary.Read(bytes.NewReader(raw[off:off+pe.SectionHeaderSize]), le, &img.Sections[i].Header); err != nil {
			return nil, err
		}
		off += pe.SectionHeaderSize
	}
	for i := 0; i < n; i++ {
		h := &img.Sections[i].Header
		end := uint64(h.PointerToRawData) + uint64(h.SizeOfRawData)
		if end > uint64(len(raw)) {
			return nil, fmt.Errorf("amd64: section %q raw data out of range", h.NameString())
		}
		img.Sections[i].Data = append([]byte(nil), raw[h.PointerToRawData:end]...)
	}
	return img, nil
}

// RelocSites returns the image's DIR64 fixup RVAs.
func (img *Image64) RelocSites() ([]uint32, error) {
	dir := img.Optional.DataDirectory[pe.DirBaseReloc]
	if dir.VirtualAddress == 0 || dir.Size == 0 {
		return nil, nil
	}
	for i := range img.Sections {
		h := &img.Sections[i].Header
		if dir.VirtualAddress >= h.VirtualAddress && dir.VirtualAddress < h.VirtualAddress+h.SizeOfRawData {
			start := dir.VirtualAddress - h.VirtualAddress
			return pe.ParseRelocTable(img.Sections[i].Data[start : start+dir.Size])
		}
	}
	return nil, fmt.Errorf("amd64: reloc directory outside sections")
}

// Layout maps the image by RVA (headers + sections), unrelocated.
func (img *Image64) Layout() ([]byte, error) {
	mem := make([]byte, img.Optional.SizeOfImage)
	raw, err := img.Bytes()
	if err != nil {
		return nil, err
	}
	hdr := img.Optional.SizeOfHeaders
	if uint32(len(raw)) < hdr {
		hdr = uint32(len(raw))
	}
	copy(mem, raw[:hdr])
	for i := range img.Sections {
		h := &img.Sections[i].Header
		n := h.SizeOfRawData
		if h.VirtualSize != 0 && h.VirtualSize < n {
			n = h.VirtualSize
		}
		if uint64(h.VirtualAddress)+uint64(n) > uint64(len(mem)) {
			return nil, fmt.Errorf("amd64: section %q exceeds SizeOfImage", h.NameString())
		}
		copy(mem[h.VirtualAddress:], img.Sections[i].Data[:n])
	}
	return mem, nil
}

// LayoutAt maps and relocates the image for a load at base: every DIR64
// site's 8-byte value is adjusted by the load delta.
func (img *Image64) LayoutAt(base uint64) ([]byte, error) {
	mem, err := img.Layout()
	if err != nil {
		return nil, err
	}
	if base != img.Optional.ImageBase {
		sites, err := img.RelocSites()
		if err != nil {
			return nil, err
		}
		delta := base - img.Optional.ImageBase
		le := binary.LittleEndian
		for _, rva := range sites {
			if int(rva)+8 > len(mem) {
				return nil, fmt.Errorf("amd64: reloc site %#x out of range", rva)
			}
			le.PutUint64(mem[rva:], le.Uint64(mem[rva:])+delta)
		}
	}
	return mem, nil
}
