// Package baseline implements the state-of-the-art approach the paper
// positions ModChecker against (Section I/II): a dictionary of
// cryptographic hashes of trusted kernel modules, as used by digitally
// signed driver schemes on Windows and Linux.
//
// The Database is built from trusted on-disk images. Verifying a loaded
// module fetches it via introspection, reverses relocations using the
// module's own .reloc table, hashes each component, and compares against
// the dictionary. Detection power on known modules equals ModChecker's —
// but every legitimate module update invalidates the dictionary and
// produces false positives until an administrator refreshes it, which is
// the maintenance burden (paper: "it is cumbersome to maintain the
// dictionary for kernel updates, third party drivers, and valid customized
// modules"). The update-scenario experiment (experiments.UpdateScenario)
// quantifies exactly this difference.
package baseline

import (
	"crypto/md5"
	"fmt"
	"sort"

	"modchecker/internal/core"
	"modchecker/internal/pe"
)

// ComponentHash is one dictionary entry: a component name and its MD5 over
// relocation-normalized bytes.
type ComponentHash struct {
	Component string
	Digest    [md5.Size]byte
}

// Database is the dictionary of trusted hashes, keyed by module file name.
type Database struct {
	modules map[string][]ComponentHash
}

// NewDatabase creates an empty dictionary.
func NewDatabase() *Database {
	return &Database{modules: make(map[string][]ComponentHash)}
}

// AddTrustedImage registers an on-disk image as the trusted reference for
// name. The image is laid out as the loader would map it at its preferred
// base, components are extracted with the same parser ModChecker uses, and
// relocatable sections are normalized to RVA form so that the stored hashes
// are load-address independent.
func (db *Database) AddTrustedImage(name string, image []byte) error {
	img, err := pe.Parse(image)
	if err != nil {
		return fmt.Errorf("baseline: trusted image %s: %w", name, err)
	}
	mem, err := img.Layout()
	if err != nil {
		return fmt.Errorf("baseline: laying out %s: %w", name, err)
	}
	hashes, err := componentHashes(name, img.Optional.ImageBase, mem, img.Optional.ImageBase)
	if err != nil {
		return err
	}
	db.modules[foldName(name)] = hashes
	return nil
}

// Modules returns the registered module names, sorted.
func (db *Database) Modules() []string {
	out := make([]string, 0, len(db.modules))
	for n := range db.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a dictionary entry (e.g. for a retired driver).
func (db *Database) Remove(name string) {
	delete(db.modules, foldName(name))
}

// componentHashes parses a module image laid out in memory and hashes every
// component after reloc-table RVA normalization. loadBase is the address
// the copy is (notionally) loaded at; layoutBase is the base embedded in
// its absolute addresses (equal for trusted file layouts).
func componentHashes(name string, loadBase uint32, mem []byte, layoutBase uint32) ([]ComponentHash, error) {
	parsed, _, err := core.ParseModule("baseline", name, loadBase, mem)
	if err != nil {
		return nil, err
	}
	sites, err := core.NormalizeWithRelocs(parsed.Raw)
	if err != nil {
		return nil, fmt.Errorf("baseline: reloc table of %s: %w", name, err)
	}
	out := make([]ComponentHash, 0, len(parsed.Components))
	for i := range parsed.Components {
		c := &parsed.Components[i]
		data := c.Data
		if c.Normalize {
			data = core.ApplyRelocNormalization(c, sites, layoutBase)
		}
		out = append(out, ComponentHash{Component: c.Name, Digest: md5.Sum(data)})
	}
	return out, nil
}

// Result is the outcome of verifying one loaded module against the
// dictionary.
type Result struct {
	ModuleName string
	VMName     string
	// Known is false when the module has no dictionary entry at all (a
	// third-party or updated driver) — the case the paper highlights.
	Known bool
	// MismatchedComponents lists components whose hashes disagree with
	// the dictionary.
	MismatchedComponents []string
}

// OK reports whether the module verified cleanly.
func (r *Result) OK() bool { return r.Known && len(r.MismatchedComponents) == 0 }

// Verify fetches the named module from the target VM via introspection and
// checks it against the dictionary.
func (db *Database) Verify(module string, target core.Target) (*Result, error) {
	res := &Result{ModuleName: module, VMName: target.Name}
	trusted, ok := db.modules[foldName(module)]
	if !ok {
		return res, nil // unknown module: Known=false
	}
	res.Known = true

	s := core.NewSearcher(target.Handle, core.CopyPageWise)
	info, buf, _, err := s.FetchModule(module)
	if err != nil {
		return nil, err
	}
	// componentHashes copies every byte it keeps, so the pooled module
	// copy goes back as soon as the digests exist.
	got, err := componentHashes(module, info.Base, buf, info.Base)
	core.ReleaseModuleCopy(buf)
	if err != nil {
		return nil, err
	}
	want := make(map[string][md5.Size]byte, len(trusted))
	for _, h := range trusted {
		want[h.Component] = h.Digest
	}
	seen := make(map[string]bool, len(got))
	for _, h := range got {
		seen[h.Component] = true
		if w, ok := want[h.Component]; !ok || w != h.Digest {
			res.MismatchedComponents = append(res.MismatchedComponents, h.Component)
		}
	}
	for name := range want {
		if !seen[name] {
			res.MismatchedComponents = append(res.MismatchedComponents, name)
		}
	}
	sort.Strings(res.MismatchedComponents)
	return res, nil
}

func foldName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
