package baseline

import (
	"testing"

	"modchecker/internal/core"
	"modchecker/internal/guest"
	"modchecker/internal/rootkit"
	"modchecker/internal/vmi"
)

func testSetup(t testing.TB) (*guest.Guest, core.Target, *Database) {
	t.Helper()
	disk, err := guest.BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	g, err := guest.New(guest.Config{Name: "vm1", MemBytes: 64 << 20, BootSeed: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	target := core.Target{
		Name:   "vm1",
		Handle: vmi.Open("vm1", g.Phys(), g.CR3(), vmi.XPSP2Profile(guest.PsLoadedModuleListVA)),
	}
	db := NewDatabase()
	for name, img := range disk {
		if err := db.AddTrustedImage(name, img); err != nil {
			t.Fatalf("AddTrustedImage(%s): %v", name, err)
		}
	}
	return g, target, db
}

func TestVerifyCleanModules(t *testing.T) {
	_, target, db := testSetup(t)
	for _, name := range db.Modules() {
		res, err := db.Verify(name, target)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.OK() {
			t.Errorf("%s: known=%v mismatched=%v", name, res.Known, res.MismatchedComponents)
		}
	}
}

func TestVerifyDetectsOpcodePatch(t *testing.T) {
	g, target, db := testSetup(t)
	if err := rootkit.InfectDiskAndReload(g, "hal.dll", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Verify("hal.dll", target)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("infected hal.dll verified clean")
	}
	if len(res.MismatchedComponents) != 1 || res.MismatchedComponents[0] != ".text" {
		t.Errorf("mismatched = %v", res.MismatchedComponents)
	}
}

func TestVerifyDetectsLiveHook(t *testing.T) {
	g, target, db := testSetup(t)
	if _, err := rootkit.InlineHookLive(g, "tcpip.sys"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Verify("tcpip.sys", target)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("hooked tcpip.sys verified clean")
	}
}

func TestVerifyUnknownModule(t *testing.T) {
	_, target, db := testSetup(t)
	db.Remove("dummy.sys")
	res, err := db.Verify("dummy.sys", target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Known {
		t.Error("removed module still known")
	}
	if res.OK() {
		t.Error("unknown module verified OK")
	}
}

// TestVerifyFalsePositiveOnLegitimateUpdate is the paper's core argument:
// a *legitimate* module update (every VM gets the new version) makes the
// dictionary stale and the baseline flags the clean module, while
// ModChecker's cross-VM comparison stays clean. See
// experiments.UpdateScenario for the full side-by-side.
func TestVerifyFalsePositiveOnLegitimateUpdate(t *testing.T) {
	g, target, db := testSetup(t)
	// Vendor ships an updated driver: same name, new build.
	updated, err := guest.BuildImage(guest.ModuleSpec{
		Name: "ndis-v2", TextSize: 128 << 10, DataSize: 32 << 10, RdataSize: 8 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ReplaceDiskImage("ndis.sys", updated); err != nil {
		t.Fatal(err)
	}
	if err := g.UnloadModule("ndis.sys"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.LoadModule("ndis.sys"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Verify("ndis.sys", target)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("stale dictionary accepted the updated module — expected a false positive")
	}
	// Refreshing the dictionary clears the false positive.
	if err := db.AddTrustedImage("ndis.sys", updated); err != nil {
		t.Fatal(err)
	}
	res, err = db.Verify("ndis.sys", target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("refreshed dictionary still flags: %v", res.MismatchedComponents)
	}
}

func TestVerifyLoadAddressIndependence(t *testing.T) {
	// The same trusted image verified on two guests with different load
	// bases must pass on both (the reason hashes are stored in RVA form).
	disk, _ := guest.BuildStandardDisk()
	db := NewDatabase()
	for name, img := range disk {
		if err := db.AddTrustedImage(name, img); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(1); seed <= 3; seed++ {
		g, err := guest.New(guest.Config{Name: "vm", MemBytes: 64 << 20, BootSeed: seed, Disk: disk})
		if err != nil {
			t.Fatal(err)
		}
		target := core.Target{
			Name:   "vm",
			Handle: vmi.Open("vm", g.Phys(), g.CR3(), vmi.XPSP2Profile(guest.PsLoadedModuleListVA)),
		}
		res, err := db.Verify("hal.dll", target)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Errorf("seed %d (base %#x): %v", seed, g.Module("hal.dll").Base, res.MismatchedComponents)
		}
	}
}

func TestAddTrustedImageRejectsGarbage(t *testing.T) {
	db := NewDatabase()
	if err := db.AddTrustedImage("x.sys", []byte("junk")); err == nil {
		t.Error("garbage image accepted")
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	_, target, db := testSetup(t)
	res, err := db.Verify("HAL.DLL", target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Error("case-insensitive lookup failed")
	}
}
