// Package cas is the content-addressed digest store behind the sweep
// pipeline's cross-sweep cache. Entries are keyed by *content identity*,
// not by VM: a Token names one frozen guest-memory image (an mm.SnapshotID
// plus the domain's mapping epoch), and token equality means the entire
// guest-physical image is bit-identical to when the entry was written — so
// every read-only derivation of it (module fetch, parse, normalization,
// digest, mismatch scan) would reproduce exactly. That is what makes a hit
// sound: the store never guesses, it only replays conclusions whose inputs
// provably have not changed.
//
// Two record kinds are cached:
//
//   - Digest entries, keyed (module, refToken, ownToken): the digest-cluster
//     key one VM's copy of a module produced against the sweep reference
//     whose image is refToken, plus the copy's component names. The
//     reference's own entry uses ownToken == refToken and Key == "" (the
//     reference fronts cluster 0 and has no digest against itself).
//
//   - Mismatch entries, keyed (module, refToken, keyA, keyB): the component
//     mismatch list of the one true comparison between two cluster
//     representatives. Digest keys are content hashes relative to the
//     reference image, so the pair's outcome is a pure function of the key
//     pair — any member of a cluster compares identically.
//
// Invalidation is structural rather than explicit: a guest write dirties
// the copy-on-write overlay and the VM stops advertising a SnapshotID, a
// snapshot revert or fault-plan lifecycle event bumps the mapping epoch —
// either way the VM's token changes and its old entries simply stop being
// addressable. Stale entries age out of the bounded in-memory tier FIFO.
//
// The store has an optional persistent tier (see persist.go): a crash-safe
// append-only log replayed into the in-memory index on open.
//
// Concurrency: the store is mutex-safe, but the sweep pipeline only ever
// consults it from the sweep's driving goroutine, in pool order — lookups
// and inserts must stay deterministic because eviction order (and therefore
// later hit/miss patterns, and therefore simulated time) feeds the
// byte-identical-replay invariant.
package cas

import (
	"sync"
)

// DefaultMaxEntries bounds the in-memory tier when Options leave it zero.
// A digest entry is a few dozen bytes plus component names; a million
// entries keep the store well under typical fleet-sweep working sets.
const DefaultMaxEntries = 1 << 20

// Token names one frozen guest-memory image: the mm.SnapshotID of the
// copy-on-write base layer the VM is an unmodified fork of, plus the
// domain's mapping epoch. OK is false when the VM has no stable identity
// (dirtied frames, no frozen base, destroyed domain, fault plan installed)
// — such tokens never hit and are never stored.
type Token struct {
	ID    uint64
	Epoch uint64
	OK    bool
}

// Entry is one VM's cached digest outcome for one module against one
// reference image: the digest-cluster key (empty for the reference itself)
// and the parsed copy's component names in module order.
type Entry struct {
	Key   string
	Names []string
}

// Stats is a point-in-time counter snapshot of store traffic.
type Stats struct {
	// Lookups counts LookupDigest + LookupMismatch calls with valid tokens;
	// Hits counts the ones that found an entry.
	Lookups uint64
	Hits    uint64
	// Inserts counts entries actually added (re-inserting an identical
	// entry is a no-op and counts nothing).
	Inserts uint64
	// Evicted counts entries dropped by the FIFO bound.
	Evicted uint64
	// Loaded is how many entries the persistent tier replayed at open;
	// Persistent reports whether a disk tier is attached.
	Loaded     int
	Persistent bool
}

// record kinds, shared with the persistent tier's log format.
const (
	kindDigest   = byte(1)
	kindMismatch = byte(2)
)

// storeKey addresses one entry in the unified FIFO order.
type storeKey struct {
	kind byte
	key  string
}

// Store is the two-tier content-addressed store.
type Store struct {
	mu         sync.Mutex
	digests    map[string]Entry
	mismatches map[string][]string
	order      []storeKey // insertion order across both maps, for FIFO eviction
	max        int
	stats      Stats
	log        *logFile // nil: in-memory only
}

// NewStore creates an in-memory store. maxEntries bounds the total entry
// count across both record kinds; zero or negative selects
// DefaultMaxEntries.
func NewStore(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Store{
		digests:    make(map[string]Entry),
		mismatches: make(map[string][]string),
		max:        maxEntries,
	}
}

// digestKey flattens the (module, ref, own) address. Tokens are fixed-width
// binary so modules whose names embed separators cannot collide.
func digestKey(module string, ref, own Token) string {
	b := make([]byte, 0, len(module)+1+32)
	b = append(b, module...)
	b = append(b, 0)
	b = appendToken(b, ref)
	b = appendToken(b, own)
	return string(b)
}

// mismatchKey flattens the (module, ref, keyA, keyB) address. Digest keys
// are fixed-size MD5 strings (or empty for the reference cluster), so
// length-prefixing is unnecessary; a 0 separator keeps the parts apart.
func mismatchKey(module string, ref Token, ka, kb string) string {
	b := make([]byte, 0, len(module)+len(ka)+len(kb)+3+16)
	b = append(b, module...)
	b = append(b, 0)
	b = appendToken(b, ref)
	b = append(b, ka...)
	b = append(b, 0)
	b = append(b, kb...)
	return string(b)
}

func appendToken(b []byte, t Token) []byte {
	for s := 56; s >= 0; s -= 8 {
		b = append(b, byte(t.ID>>s))
	}
	for s := 56; s >= 0; s -= 8 {
		b = append(b, byte(t.Epoch>>s))
	}
	return b
}

// LookupDigest returns the cached digest entry for one VM's copy of module
// against the reference image ref, where own is the VM's current token.
// Invalid tokens never hit.
func (s *Store) LookupDigest(module string, ref, own Token) (Entry, bool) {
	if !ref.OK || !own.OK {
		return Entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	e, ok := s.digests[digestKey(module, ref, own)]
	if ok {
		s.stats.Hits++
	}
	return e, ok
}

// InsertDigest stores one VM's digest outcome. Entries under invalid tokens
// are dropped (nothing could ever address them), and re-inserting an
// identical entry is a no-op — the persistent log does not grow.
func (s *Store) InsertDigest(module string, ref, own Token, e Entry) {
	if !ref.OK || !own.OK {
		return
	}
	key := digestKey(module, ref, own)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.digests[key]; ok && old.Key == e.Key && equalStrings(old.Names, e.Names) {
		return
	}
	e.Names = append([]string(nil), e.Names...)
	s.insertLocked(storeKey{kindDigest, key}, func() { s.digests[key] = e })
	if s.log != nil {
		s.log.appendDigest(module, ref, own, e)
	}
}

// LookupMismatch returns the cached mismatch list of the representative
// comparison between the clusters keyed ka and kb under the reference image
// ref. ok distinguishes a cached empty list (the clusters matched) from no
// entry at all.
func (s *Store) LookupMismatch(module string, ref Token, ka, kb string) ([]string, bool) {
	if !ref.OK {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	mm, ok := s.mismatches[mismatchKey(module, ref, ka, kb)]
	if ok {
		s.stats.Hits++
	}
	return mm, ok
}

// InsertMismatch stores one representative comparison's outcome. An empty
// list is a meaningful entry (the clusters matched) and is stored too.
func (s *Store) InsertMismatch(module string, ref Token, ka, kb string, mm []string) {
	if !ref.OK {
		return
	}
	key := mismatchKey(module, ref, ka, kb)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.mismatches[key]; ok && equalStrings(old, mm) {
		return
	}
	stored := make([]string, len(mm))
	copy(stored, mm)
	s.insertLocked(storeKey{kindMismatch, key}, func() { s.mismatches[key] = stored })
	if s.log != nil {
		s.log.appendMismatch(module, ref, ka, kb, stored)
	}
}

// insertLocked applies one insert and enforces the FIFO bound. put must
// write exactly the key being inserted. Overwrites of a live key keep its
// original queue position — the bound is on distinct entries.
func (s *Store) insertLocked(k storeKey, put func()) {
	fresh := true
	switch k.kind {
	case kindDigest:
		_, ok := s.digests[k.key]
		fresh = !ok
	case kindMismatch:
		_, ok := s.mismatches[k.key]
		fresh = !ok
	}
	put()
	s.stats.Inserts++
	if !fresh {
		return
	}
	s.order = append(s.order, k)
	for len(s.order) > s.max {
		old := s.order[0]
		s.order = s.order[1:]
		switch old.kind {
		case kindDigest:
			delete(s.digests, old.key)
		case kindMismatch:
			delete(s.mismatches, old.key)
		}
		s.stats.Evicted++
	}
}

// Len returns the total live entry count across both record kinds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.digests) + len(s.mismatches)
}

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush forces the persistent tier's buffered appends to disk. A no-op for
// in-memory stores.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.flush()
}

// Close flushes and closes the persistent tier. The in-memory index stays
// usable (as a memory-only store) after Close. Safe to call twice.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.close()
	s.log = nil
	return err
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
