package cas

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func tok(id, epoch uint64) Token { return Token{ID: id, Epoch: epoch, OK: true} }

func TestDigestRoundTrip(t *testing.T) {
	s := NewStore(0)
	ref, own := tok(1, 0), tok(2, 0)
	if _, ok := s.LookupDigest("hal.dll", ref, own); ok {
		t.Fatal("hit on empty store")
	}
	s.InsertDigest("hal.dll", ref, own, Entry{Key: "k1", Names: []string{".text", ".data"}})
	e, ok := s.LookupDigest("hal.dll", ref, own)
	if !ok || e.Key != "k1" || len(e.Names) != 2 || e.Names[0] != ".text" {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	// Same tokens, different module: distinct entry.
	if _, ok := s.LookupDigest("ndis.sys", ref, own); ok {
		t.Fatal("module name not part of the key")
	}
	// A different epoch is a different token.
	if _, ok := s.LookupDigest("hal.dll", ref, tok(2, 1)); ok {
		t.Fatal("epoch bump did not invalidate")
	}
	if _, ok := s.LookupDigest("hal.dll", tok(9, 0), own); ok {
		t.Fatal("reference token not part of the key")
	}
}

func TestInvalidTokensNeverHitOrStore(t *testing.T) {
	s := NewStore(0)
	bad := Token{ID: 7}
	s.InsertDigest("hal.dll", bad, tok(1, 0), Entry{Key: "k"})
	s.InsertDigest("hal.dll", tok(1, 0), bad, Entry{Key: "k"})
	s.InsertMismatch("hal.dll", bad, "a", "b", nil)
	if s.Len() != 0 {
		t.Fatalf("stored %d entries under invalid tokens", s.Len())
	}
	if _, ok := s.LookupDigest("hal.dll", bad, bad); ok {
		t.Fatal("invalid token hit")
	}
	if st := s.Stats(); st.Lookups != 0 {
		t.Fatalf("invalid-token lookups were counted: %+v", st)
	}
}

func TestMismatchEmptyListIsAnEntry(t *testing.T) {
	s := NewStore(0)
	ref := tok(3, 1)
	if _, ok := s.LookupMismatch("hal.dll", ref, "", "kA"); ok {
		t.Fatal("hit on empty store")
	}
	s.InsertMismatch("hal.dll", ref, "", "kA", nil)
	mm, ok := s.LookupMismatch("hal.dll", ref, "", "kA")
	if !ok || len(mm) != 0 {
		t.Fatalf("cached match lookup = %v, %v", mm, ok)
	}
	s.InsertMismatch("hal.dll", ref, "kA", "kB", []string{".text"})
	mm, ok = s.LookupMismatch("hal.dll", ref, "kA", "kB")
	if !ok || len(mm) != 1 || mm[0] != ".text" {
		t.Fatalf("cached mismatch lookup = %v, %v", mm, ok)
	}
}

func TestFIFOEviction(t *testing.T) {
	s := NewStore(2)
	ref := tok(1, 0)
	s.InsertDigest("m1", ref, tok(10, 0), Entry{Key: "a"})
	s.InsertDigest("m2", ref, tok(11, 0), Entry{Key: "b"})
	// Overwriting a live entry must not grow the queue or evict.
	s.InsertDigest("m1", ref, tok(10, 0), Entry{Key: "a2"})
	if s.Len() != 2 {
		t.Fatalf("len = %d before eviction", s.Len())
	}
	s.InsertMismatch("m3", ref, "x", "y", nil)
	if s.Len() != 2 {
		t.Fatalf("len = %d after eviction", s.Len())
	}
	// m1 was inserted first: it is the evictee.
	if _, ok := s.LookupDigest("m1", ref, tok(10, 0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if e, ok := s.LookupDigest("m2", ref, tok(11, 0)); !ok || e.Key != "b" {
		t.Fatal("newer entry evicted")
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("evicted = %d", st.Evicted)
	}
}

func TestInsertCopiesCallerSlices(t *testing.T) {
	s := NewStore(0)
	ref := tok(1, 0)
	names := []string{".text"}
	s.InsertDigest("m", ref, ref, Entry{Key: "k", Names: names})
	names[0] = "mutated"
	if e, _ := s.LookupDigest("m", ref, ref); e.Names[0] != ".text" {
		t.Fatal("stored entry aliases the caller's slice")
	}
	mm := []string{".data"}
	s.InsertMismatch("m", ref, "a", "b", mm)
	mm[0] = "mutated"
	if got, _ := s.LookupMismatch("m", ref, "a", "b"); got[0] != ".data" {
		t.Fatal("stored mismatch list aliases the caller's slice")
	}
}

func TestPersistReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "digests.cas")
	s, err := Open(path, "fp-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := tok(5, 2)
	s.InsertDigest("hal.dll", ref, ref, Entry{Key: "", Names: []string{".text"}})
	s.InsertDigest("hal.dll", ref, tok(6, 2), Entry{Key: "kX", Names: []string{".text"}})
	s.InsertMismatch("hal.dll", ref, "", "kX", []string{".text"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, "fp-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); !st.Persistent || st.Loaded != 3 {
		t.Fatalf("reopen stats = %+v", st)
	}
	if e, ok := r.LookupDigest("hal.dll", ref, tok(6, 2)); !ok || e.Key != "kX" {
		t.Fatalf("digest did not survive reopen: %+v, %v", e, ok)
	}
	if mm, ok := r.LookupMismatch("hal.dll", ref, "", "kX"); !ok || len(mm) != 1 || mm[0] != ".text" {
		t.Fatalf("mismatch did not survive reopen: %v, %v", mm, ok)
	}
}

func TestPersistFingerprintMismatchResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "digests.cas")
	s, err := Open(path, "cloud-A", 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := tok(1, 0)
	s.InsertDigest("hal.dll", ref, ref, Entry{Key: "k"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same file, different content universe: tokens must not carry over.
	r, err := Open(path, "cloud-B", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Loaded != 0 {
		t.Fatalf("foreign store replayed %d entries", st.Loaded)
	}
	if _, ok := r.LookupDigest("hal.dll", ref, ref); ok {
		t.Fatal("foreign-fingerprint entry served")
	}
	r.InsertDigest("ndis.sys", ref, ref, Entry{Key: "k2"})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// The reset file reopens under the new fingerprint with only new data.
	r2, err := Open(path, "cloud-B", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if st := r2.Stats(); st.Loaded != 1 {
		t.Fatalf("reset store replayed %d entries", st.Loaded)
	}
}

func TestPersistTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "digests.cas")
	s, err := Open(path, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := tok(1, 0)
	s.InsertDigest("hal.dll", ref, ref, Entry{Key: "k1"})
	s.InsertDigest("ndis.sys", ref, ref, Entry{Key: "k2"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the final record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := int64(len(raw))
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Loaded != 1 {
		t.Fatalf("torn log replayed %d entries", st.Loaded)
	}
	if _, ok := r.LookupDigest("hal.dll", ref, ref); !ok {
		t.Fatal("whole record lost with the torn tail")
	}
	if _, ok := r.LookupDigest("ndis.sys", ref, ref); ok {
		t.Fatal("torn record served")
	}
	// New appends land at the truncated end and survive the next reopen.
	r.InsertDigest("ntfs.sys", ref, ref, Entry{Key: "k3"})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if st := r2.Stats(); st.Loaded != 2 {
		t.Fatalf("post-repair reopen replayed %d entries", st.Loaded)
	}
	if _, ok := r2.LookupDigest("ntfs.sys", ref, ref); !ok {
		t.Fatal("append after repair lost")
	}
	_ = whole
}

func TestPersistCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "digests.cas")
	s, err := Open(path, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := tok(1, 0)
	s.InsertDigest("hal.dll", ref, ref, Entry{Key: "k1"})
	s.InsertDigest("ndis.sys", ref, ref, Entry{Key: "k2"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the second record: its CRC no longer
	// matches, so replay must stop before it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	header := len(logMagic) + 4 + len("fp")
	rec1 := 5 + int(binary.BigEndian.Uint32(raw[header+1:])) + 4
	raw[header+rec1+5+4] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Loaded != 1 {
		t.Fatalf("corrupt log replayed %d entries", st.Loaded)
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x.cas"), "fp", 0); err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}
