package cas

// The persistent tier: a single-file, stdlib-only, append-only log.
//
// Layout:
//
//	header:  magic "MODCAS\x01" | u32 len | fingerprint bytes
//	record:  u8 kind | u32 payloadLen | payload | u32 crc32(payload)
//
// Digest payload:   str module | token ref | token own | str key |
//	                 u32 n | n × str name
// Mismatch payload: str module | token ref | str keyA | str keyB |
//	                 u32 n | n × str component
//
// where str is u32 len | bytes and token is u64 id | u64 epoch (big
// endian). Every record is independently CRC-checked, so a crash mid-append
// leaves at most one torn record at the tail; Open truncates the file back
// to the last whole record and the index rebuild proceeds from what
// survived. Appends always land at the verified end.
//
// Tokens embed mm.ContentID base-layer identities — fingerprints of the
// frozen frame contents — so the same cloud built twice (same seed and
// shape) mints the same tokens and a reopened log serves hits immediately.
// Two *different* clouds could still collide on a fingerprint's epoch
// component, since mapping epochs restart at zero per process. The
// fingerprint in the header guards against that: callers derive it from
// whatever determines their cloud's content (seed, VM count, template
// count, disk set), and opening a file written under a different
// fingerprint discards its contents instead of serving another universe's
// digests.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var logMagic = []byte("MODCAS\x01")

// maxLogString bounds any one length-prefixed string in the log, so a
// corrupted length field cannot make the reader attempt a giant allocation.
const maxLogString = 1 << 20

// maxLogPayload bounds one record's payload.
const maxLogPayload = 16 << 20

// logFile is the open persistent tier.
type logFile struct {
	f   *os.File
	err error // first append failure; surfaced by flush/close
}

// Open opens (or creates) the persistent store at path and replays its log
// into a fresh in-memory index. fingerprint must identify the content
// universe the tokens come from; a file carrying a different fingerprint is
// reset to empty rather than replayed. maxEntries bounds the in-memory tier
// exactly as in NewStore.
func Open(path, fingerprint string, maxEntries int) (*Store, error) {
	s := NewStore(maxEntries)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cas: opening store: %w", err)
	}
	end, loaded, err := replay(f, fingerprint, s)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any torn tail and position every future append at the verified
	// end.
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("cas: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("cas: seeking to log end: %w", err)
	}
	s.log = &logFile{f: f}
	// Replay routed records through the normal insert path; reset the
	// counter so Inserts means sweep-driven inserts, not Loaded again.
	s.stats.Inserts = 0
	s.stats.Loaded = loaded
	s.stats.Persistent = true
	return s, nil
}

// replay validates the header (writing a fresh one on an empty or
// mismatched file) and replays every whole record into the store, returning
// the offset of the last whole record's end and how many entries loaded.
func replay(f *os.File, fingerprint string, s *Store) (end int64, loaded int, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("cas: stat store: %w", err)
	}
	header := encodeHeader(fingerprint)
	if info.Size() > 0 {
		have := make([]byte, len(header))
		if _, rerr := io.ReadFull(f, have); rerr == nil && string(have) == string(header) {
			// Header matches: replay records from here.
			return replayRecords(f, int64(len(header)), s)
		}
		// Short, corrupt, or foreign-fingerprint header: this file's tokens
		// (if any) come from a different content universe. Start over.
		if err := f.Truncate(0); err != nil {
			return 0, 0, fmt.Errorf("cas: resetting foreign store: %w", err)
		}
	}
	if _, err := f.WriteAt(header, 0); err != nil {
		return 0, 0, fmt.Errorf("cas: writing store header: %w", err)
	}
	return int64(len(header)), 0, nil
}

// replayRecords reads whole records starting at offset start, inserting
// each into the store, and stops (without error) at the first torn or
// corrupt record — everything after it is discarded by the caller's
// truncate.
func replayRecords(f *os.File, start int64, s *Store) (end int64, loaded int, err error) {
	end = start
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("cas: seeking past header: %w", err)
	}
	r := &countingReader{r: f}
	var head [5]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			return end, loaded, nil // clean EOF or torn length prefix
		}
		kind := head[0]
		n := binary.BigEndian.Uint32(head[1:])
		if n > maxLogPayload {
			return end, loaded, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return end, loaded, nil
		}
		var sum [4]byte
		if _, err := io.ReadFull(r, sum[:]); err != nil {
			return end, loaded, nil
		}
		if binary.BigEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(payload) {
			return end, loaded, nil
		}
		if applyRecord(s, kind, payload) {
			loaded++
		}
		end = start + r.n
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// applyRecord decodes one verified payload into the store. Unknown kinds
// and malformed payloads are skipped — they fail no one, they just do not
// load. Replayed inserts go through the normal insert path, so the FIFO
// bound applies and later records win (the log is append-only; a re-written
// entry's newest version is replayed last).
func applyRecord(s *Store, kind byte, payload []byte) bool {
	d := &decoder{buf: payload}
	switch kind {
	case kindDigest:
		module := d.str()
		ref := d.token()
		own := d.token()
		key := d.str()
		names := d.strs()
		if d.bad {
			return false
		}
		s.InsertDigest(module, ref, own, Entry{Key: key, Names: names})
		return true
	case kindMismatch:
		module := d.str()
		ref := d.token()
		ka := d.str()
		kb := d.str()
		mm := d.strs()
		if d.bad {
			return false
		}
		s.InsertMismatch(module, ref, ka, kb, mm)
		return true
	}
	return false
}

func encodeHeader(fingerprint string) []byte {
	b := append([]byte(nil), logMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(fingerprint)))
	return append(b, fingerprint...)
}

// encoder builds one record payload.
type encoder struct{ buf []byte }

func (e *encoder) str(s string) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) token(t Token) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, t.ID)
	e.buf = binary.BigEndian.AppendUint64(e.buf, t.Epoch)
}

func (e *encoder) strs(ss []string) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// decoder parses one record payload; bad latches on any malformed field.
type decoder struct {
	buf []byte
	bad bool
}

func (d *decoder) str() string {
	if d.bad || len(d.buf) < 4 {
		d.bad = true
		return ""
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if n > maxLogString || uint32(len(d.buf)) < n {
		d.bad = true
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) token() Token {
	if d.bad || len(d.buf) < 16 {
		d.bad = true
		return Token{}
	}
	t := Token{
		ID:    binary.BigEndian.Uint64(d.buf),
		Epoch: binary.BigEndian.Uint64(d.buf[8:]),
		OK:    true,
	}
	d.buf = d.buf[16:]
	return t
}

func (d *decoder) strs() []string {
	if d.bad || len(d.buf) < 4 {
		d.bad = true
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if n > maxLogString {
		d.bad = true
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.str())
	}
	if d.bad {
		return nil
	}
	return out
}

// appendDigest writes one digest record. Called with the store lock held.
func (l *logFile) appendDigest(module string, ref, own Token, e Entry) {
	var enc encoder
	enc.str(module)
	enc.token(ref)
	enc.token(own)
	enc.str(e.Key)
	enc.strs(e.Names)
	l.appendRecord(kindDigest, enc.buf)
}

// appendMismatch writes one mismatch record. Called with the store lock
// held.
func (l *logFile) appendMismatch(module string, ref Token, ka, kb string, mm []string) {
	var enc encoder
	enc.str(module)
	enc.token(ref)
	enc.str(ka)
	enc.str(kb)
	enc.strs(mm)
	l.appendRecord(kindMismatch, enc.buf)
}

// appendRecord frames and appends one record in a single write, so a crash
// can tear at most the final record — which replay then drops.
func (l *logFile) appendRecord(kind byte, payload []byte) {
	if l.err != nil {
		return
	}
	rec := make([]byte, 0, 9+len(payload))
	rec = append(rec, kind)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(rec); err != nil {
		l.err = fmt.Errorf("cas: appending record: %w", err)
	}
}

func (l *logFile) flush() error {
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("cas: syncing store: %w", err)
	}
	return nil
}

func (l *logFile) close() error {
	err := l.err
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("cas: closing store: %w", cerr)
	}
	return err
}
