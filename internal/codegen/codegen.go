// Package codegen synthesizes deterministic 32-bit x86 machine code for the
// kernel modules used throughout the reproduction.
//
// The paper's experiments operate on real driver code taken from a Windows
// XP installation. This package substitutes a generator that emits genuine
// x86 instruction encodings (a decodable subset), with three properties the
// experiments depend on:
//
//   - Absolute-address operands. Instructions such as MOV EAX,[moffs32] and
//     CALL [abs32] embed 32-bit absolute virtual addresses. The generator
//     records their offsets so the PE builder can emit a .reloc table, and
//     the module loader rewrites them per load base — producing exactly the
//     cross-VM byte differences that ModChecker's Algorithm 2 reverses.
//   - Opcode caves. Runs of 0x00 bytes between functions, which the inline
//     hooking experiment (Section V-B.2) uses to place its payload.
//   - Determinism. The same seed yields identical bytes, modeling VMs
//     cloned from a single golden installation.
//
// A small length-disassembler (Decode) understands every encoding the
// generator emits; the inline hooker uses it to relocate the victim's first
// instructions into its trampoline, as real rootkits do.
package codegen

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Program is a generated code section: the raw bytes plus the offsets of
// every 32-bit absolute-address operand within them.
type Program struct {
	Code         []byte
	RelocOffsets []uint32 // offsets into Code of abs32 operands
	Functions    []uint32 // offsets of function entry points
	Caves        []Cave   // zero-byte caves between functions
}

// Cave is a run of 0x00 padding bytes usable as an injection site.
type Cave struct {
	Offset uint32
	Size   uint32
}

// Generator produces deterministic code sections.
type Generator struct {
	rng *rand.Rand
}

// New returns a Generator seeded deterministically; equal seeds produce
// byte-identical programs.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// GenerateParams controls code generation.
type GenerateParams struct {
	Size     uint32 // total section size in bytes (zero-padded tail)
	CodeVA   uint32 // absolute VA at which the section will be mapped (preferred base + section RVA)
	DataVA   uint32 // absolute VA of the data region address operands point into
	DataSize uint32 // size of the data region
	MinCave  uint32 // minimum cave size between functions (bytes of 0x00)
	MaxCave  uint32 // maximum cave size between functions
	MarkerAt bool   // emit the paper's DEC ECX marker as the first body instruction of function 0
}

// Generate emits functions until the section is full. Each function has a
// standard prologue/epilogue and a body mixing arithmetic, control flow and
// address-bearing memory operations.
func (g *Generator) Generate(p GenerateParams) (*Program, error) {
	if p.Size < 64 {
		return nil, fmt.Errorf("codegen: section size %d too small", p.Size)
	}
	if p.MaxCave < p.MinCave {
		p.MaxCave = p.MinCave
	}
	prog := &Program{Code: make([]byte, 0, p.Size)}
	e := &emitter{prog: prog, rng: g.rng, p: p}

	first := true
	for {
		// Reserve room for the largest possible function plus a cave so we
		// never overrun the requested size.
		if uint32(len(prog.Code))+maxFunctionSize+p.MaxCave > p.Size {
			break
		}
		e.function(first && p.MarkerAt)
		first = false
		cave := p.MinCave
		if p.MaxCave > p.MinCave {
			cave += uint32(e.rng.Intn(int(p.MaxCave - p.MinCave + 1)))
		}
		if cave > 0 {
			prog.Caves = append(prog.Caves, Cave{Offset: uint32(len(prog.Code)), Size: cave})
			prog.Code = append(prog.Code, make([]byte, cave)...)
		}
	}
	if len(prog.Functions) == 0 {
		return nil, fmt.Errorf("codegen: size %d fits no functions", p.Size)
	}
	// Zero-pad the tail to the requested size; record it as a cave too.
	if tail := p.Size - uint32(len(prog.Code)); tail > 0 {
		prog.Caves = append(prog.Caves, Cave{Offset: uint32(len(prog.Code)), Size: tail})
		prog.Code = append(prog.Code, make([]byte, tail)...)
	}
	return prog, nil
}

// maxFunctionSize bounds the bytes one generated function may occupy.
const maxFunctionSize = 96

type emitter struct {
	prog *Program
	rng  *rand.Rand
	p    GenerateParams
}

func (e *emitter) emit(b ...byte) { e.prog.Code = append(e.prog.Code, b...) }

// emitAbs32 appends a little-endian absolute address operand and records it
// as a relocation site.
func (e *emitter) emitAbs32(addr uint32) {
	e.prog.RelocOffsets = append(e.prog.RelocOffsets, uint32(len(e.prog.Code)))
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], addr)
	e.emit(b[:]...)
}

// dataAddr picks a 4-byte-aligned address inside the module's data region.
func (e *emitter) dataAddr() uint32 {
	if e.p.DataSize < 4 {
		return e.p.DataVA
	}
	return e.p.DataVA + uint32(e.rng.Intn(int(e.p.DataSize/4)))*4
}

// function emits one function: prologue, 4-12 body instructions, epilogue.
func (e *emitter) function(marker bool) {
	e.prog.Functions = append(e.prog.Functions, uint32(len(e.prog.Code)))
	e.emit(0x55)       // push ebp
	e.emit(0x8B, 0xEC) // mov ebp, esp
	if marker {
		// The paper's E1 target: a counter-register decrement the
		// infection rewrites as SUB ECX,1.
		e.emit(0xB9, 0x10, 0x00, 0x00, 0x00) // mov ecx, 16
		e.emit(0x49)                         // dec ecx
	}
	n := 4 + e.rng.Intn(9)
	for i := 0; i < n; i++ {
		e.bodyInstruction()
	}
	e.emit(0x5D) // pop ebp
	e.emit(0xC3) // ret
}

// bodyInstruction emits one randomly selected instruction. Roughly a third
// of the choices carry absolute addresses, giving realistic relocation
// density (drivers average an address every few dozen bytes).
func (e *emitter) bodyInstruction() {
	switch e.rng.Intn(12) {
	case 0: // mov eax, [moffs32]
		e.emit(0xA1)
		e.emitAbs32(e.dataAddr())
	case 1: // mov [moffs32], eax
		e.emit(0xA3)
		e.emitAbs32(e.dataAddr())
	case 2: // call dword ptr [abs32]  (IAT-style indirect call)
		e.emit(0xFF, 0x15)
		e.emitAbs32(e.dataAddr())
	case 3: // push imm32 (address of a string/structure)
		e.emit(0x68)
		e.emitAbs32(e.dataAddr())
	case 4: // mov esi, imm32 (address constant)
		e.emit(0xBE)
		e.emitAbs32(e.dataAddr())
	case 5: // mov eax, imm32 (plain constant, not relocated)
		e.emit(0xB8)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(e.rng.Intn(1<<16)))
		e.emit(b[:]...)
	case 6: // add eax, imm32
		e.emit(0x05)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(e.rng.Intn(1<<12)))
		e.emit(b[:]...)
	case 7: // xor eax, eax
		e.emit(0x31, 0xC0)
	case 8: // inc eax
		e.emit(0x40)
	case 9: // cmp eax, imm8 ; jz +2 ; nop ; nop
		e.emit(0x83, 0xF8, byte(e.rng.Intn(128)))
		e.emit(0x74, 0x02)
		e.emit(0x90, 0x90)
	case 10: // dec ecx
		e.emit(0x49)
	case 11: // nop
		e.emit(0x90)
	}
}

// GenerateData produces a deterministic initialized-data blob: pointer
// tables in front (relocatable, recorded in RelocOffsets relative to the
// blob) followed by pseudo-random bytes and embedded NUL-terminated strings.
func (g *Generator) GenerateData(size, dataVA uint32, pointerSlots int) (*Program, error) {
	if uint32(pointerSlots*4) > size {
		return nil, fmt.Errorf("codegen: %d pointer slots exceed data size %d", pointerSlots, size)
	}
	blob := make([]byte, size)
	prog := &Program{Code: blob}
	for i := 0; i < pointerSlots; i++ {
		off := uint32(i * 4)
		target := dataVA + uint32(pointerSlots*4) + uint32(g.rng.Intn(int(size)-pointerSlots*4))
		binary.LittleEndian.PutUint32(blob[off:], target)
		prog.RelocOffsets = append(prog.RelocOffsets, off)
	}
	for i := pointerSlots * 4; i < int(size); i++ {
		blob[i] = byte(g.rng.Intn(256))
	}
	// Sprinkle a few recognizable strings, as real .data sections carry.
	words := []string{"\\Device\\Harmless", "IoCreateDevice", "KeBugCheckEx", "HalInitSystem"}
	for _, w := range words {
		if pointerSlots*4+len(w)+1 >= int(size) {
			break
		}
		off := pointerSlots*4 + g.rng.Intn(int(size)-pointerSlots*4-len(w)-1)
		copy(blob[off:], w)
		blob[off+len(w)] = 0
	}
	return prog, nil
}
