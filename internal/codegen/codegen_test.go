package codegen

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func genParams(size uint32, marker bool) GenerateParams {
	return GenerateParams{
		Size:     size,
		CodeVA:   0x11000,
		DataVA:   0x12000,
		DataSize: 0x1000,
		MinCave:  8,
		MaxCave:  24,
		MarkerAt: marker,
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := New(7).Generate(genParams(4096, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(7).Generate(genParams(4096, true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Code, b.Code) {
		t.Error("same seed produced different code")
	}
	if len(a.RelocOffsets) != len(b.RelocOffsets) {
		t.Error("same seed produced different reloc sets")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := New(1).Generate(genParams(4096, false))
	b, _ := New(2).Generate(genParams(4096, false))
	if bytes.Equal(a.Code, b.Code) {
		t.Error("different seeds produced identical code")
	}
}

func TestGenerateExactSize(t *testing.T) {
	for _, size := range []uint32{256, 1000, 4096, 65536} {
		p, err := New(3).Generate(genParams(size, false))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if uint32(len(p.Code)) != size {
			t.Errorf("size %d: got %d bytes", size, len(p.Code))
		}
	}
}

func TestGenerateTooSmall(t *testing.T) {
	if _, err := New(1).Generate(genParams(32, false)); err == nil {
		t.Error("32-byte section accepted")
	}
}

func TestGenerateHasFunctionsAndCaves(t *testing.T) {
	p, _ := New(5).Generate(genParams(8192, false))
	if len(p.Functions) < 10 {
		t.Errorf("only %d functions in 8 KiB", len(p.Functions))
	}
	if len(p.Caves) < 5 {
		t.Errorf("only %d caves", len(p.Caves))
	}
	for _, c := range p.Caves {
		for i := c.Offset; i < c.Offset+c.Size; i++ {
			if p.Code[i] != 0 {
				t.Fatalf("cave byte at %#x is %#02x", i, p.Code[i])
			}
		}
	}
}

func TestGenerateRelocDensity(t *testing.T) {
	p, _ := New(5).Generate(genParams(16384, false))
	// Roughly 5/12 of body instructions carry addresses; expect a healthy
	// density (at least one per 200 bytes).
	if len(p.RelocOffsets) < len(p.Code)/200 {
		t.Errorf("only %d reloc sites in %d bytes", len(p.RelocOffsets), len(p.Code))
	}
}

func TestRelocOffsetsHoldDataVAs(t *testing.T) {
	pr := genParams(4096, false)
	p, _ := New(9).Generate(pr)
	for _, off := range p.RelocOffsets {
		addr := binary.LittleEndian.Uint32(p.Code[off:])
		if addr < pr.DataVA || addr >= pr.DataVA+pr.DataSize {
			t.Errorf("operand at %#x = %#x outside data region [%#x,%#x)",
				off, addr, pr.DataVA, pr.DataVA+pr.DataSize)
		}
	}
}

func TestRelocOffsetsIncreasingAndDisjoint(t *testing.T) {
	p, _ := New(11).Generate(genParams(8192, false))
	for i := 1; i < len(p.RelocOffsets); i++ {
		if p.RelocOffsets[i] < p.RelocOffsets[i-1]+4 {
			t.Fatalf("reloc sites %#x and %#x overlap", p.RelocOffsets[i-1], p.RelocOffsets[i])
		}
	}
}

func TestMarkerEmitted(t *testing.T) {
	p, _ := New(13).Generate(genParams(4096, true))
	marker := []byte{0xB9, 0x10, 0x00, 0x00, 0x00, 0x49}
	if !bytes.Contains(p.Code, marker) {
		t.Error("marker MOV ECX,16; DEC ECX not found")
	}
	// The marker sits right after function 0's prologue.
	f0 := p.Functions[0]
	if !bytes.Equal(p.Code[f0+3:f0+9], marker) {
		t.Errorf("marker not at function 0 prologue: % x", p.Code[f0:f0+9])
	}
}

func TestNoMarkerWithoutFlag(t *testing.T) {
	p, _ := New(13).Generate(genParams(4096, false))
	f0 := p.Functions[0]
	marker := []byte{0xB9, 0x10, 0x00, 0x00, 0x00, 0x49}
	if bytes.Equal(p.Code[f0+3:f0+9], marker) {
		t.Error("marker present without MarkerAt")
	}
}

// TestFunctionsFullyDecodable walks every generated function with the
// disassembler from prologue to RET, verifying the generator only emits
// decodable encodings and that reloc offsets coincide with the decoded
// instructions' absolute operands.
func TestFunctionsFullyDecodable(t *testing.T) {
	p, _ := New(17).Generate(genParams(8192, true))
	relocSet := map[uint32]bool{}
	for _, off := range p.RelocOffsets {
		relocSet[off] = true
	}
	decodedAbs := map[uint32]bool{}
	for _, fn := range p.Functions {
		off := fn
		steps := 0
		for {
			in, err := Decode(p.Code, off)
			if err != nil {
				t.Fatalf("function at %#x: decode at %#x: %v", fn, off, err)
			}
			if in.AbsOperandOffset >= 0 {
				decodedAbs[off+uint32(in.AbsOperandOffset)] = true
			}
			off += uint32(in.Len)
			if in.Mnemonic == "ret" {
				break
			}
			if steps++; steps > 100 {
				t.Fatalf("function at %#x did not terminate", fn)
			}
		}
	}
	for off := range relocSet {
		if !decodedAbs[off] {
			t.Errorf("reloc offset %#x not matched by any decoded abs operand", off)
		}
	}
	for off := range decodedAbs {
		if !relocSet[off] {
			t.Errorf("decoded abs operand at %#x not in reloc set", off)
		}
	}
}

func TestGenerateData(t *testing.T) {
	g := New(19)
	p, err := g.GenerateData(2048, 0x12000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2048 {
		t.Fatalf("data size %d", len(p.Code))
	}
	if len(p.RelocOffsets) != 16 {
		t.Fatalf("%d pointer slots", len(p.RelocOffsets))
	}
	for i, off := range p.RelocOffsets {
		if off != uint32(i*4) {
			t.Errorf("slot %d at %#x", i, off)
		}
		ptr := binary.LittleEndian.Uint32(p.Code[off:])
		if ptr < 0x12000+16*4 || ptr >= 0x12000+2048 {
			t.Errorf("pointer %d = %#x outside data region", i, ptr)
		}
	}
}

func TestGenerateDataTooManySlots(t *testing.T) {
	if _, err := New(1).GenerateData(64, 0x12000, 32); err == nil {
		t.Error("32 slots in 64 bytes accepted")
	}
}

func TestGenerateDataDeterminism(t *testing.T) {
	a, _ := New(23).GenerateData(1024, 0x12000, 8)
	b, _ := New(23).GenerateData(1024, 0x12000, 8)
	if !bytes.Equal(a.Code, b.Code) {
		t.Error("same seed produced different data")
	}
}

// TestGenerateQuick property-tests size handling across random sizes.
func TestGenerateQuick(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		size := uint32(sz)
		if size < 200 {
			size += 200
		}
		p, err := New(seed).Generate(genParams(size, false))
		if err != nil {
			return false
		}
		if uint32(len(p.Code)) != size {
			return false
		}
		for _, off := range p.RelocOffsets {
			if int(off)+4 > len(p.Code) {
				return false
			}
		}
		return len(p.Functions) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
