package codegen

import "fmt"

// Inst is one decoded instruction.
type Inst struct {
	Offset   uint32
	Len      int
	Mnemonic string
	// AbsOperandOffset is the offset (within the instruction) of a 32-bit
	// absolute-address operand, or -1 if the instruction carries none.
	AbsOperandOffset int
}

// Decode length-decodes the instruction at code[off:]. It understands the
// full encoding subset emitted by Generator plus the hook sequences written
// by the infection toolkit (JMP rel32, CALL rel32, INT3). Unknown opcodes
// return an error rather than a guess.
func Decode(code []byte, off uint32) (Inst, error) {
	if int(off) >= len(code) {
		return Inst{}, fmt.Errorf("codegen: decode offset %#x out of range", off)
	}
	b := code[off:]
	in := Inst{Offset: off, AbsOperandOffset: -1}
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("codegen: truncated instruction %#02x at %#x", b[0], off)
		}
		return nil
	}
	switch b[0] {
	case 0x55:
		in.Len, in.Mnemonic = 1, "push ebp"
	case 0x5D:
		in.Len, in.Mnemonic = 1, "pop ebp"
	case 0xC3:
		in.Len, in.Mnemonic = 1, "ret"
	case 0x90:
		in.Len, in.Mnemonic = 1, "nop"
	case 0x40:
		in.Len, in.Mnemonic = 1, "inc eax"
	case 0x49:
		in.Len, in.Mnemonic = 1, "dec ecx"
	case 0xCC:
		in.Len, in.Mnemonic = 1, "int3"
	case 0x00:
		// 00 00 = add [eax], al — the paper treats 0x00 runs as opcode
		// caves; decode them as two-byte add so scans can traverse them.
		if err := need(2); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 2, "add [eax], al"
	case 0x31:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 2, "xor r/m, r"
	case 0x8B:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 2, "mov r, r/m"
	case 0xA1:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic, in.AbsOperandOffset = 5, "mov eax, [moffs32]", 1
	case 0xA3:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic, in.AbsOperandOffset = 5, "mov [moffs32], eax", 1
	case 0x68:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic, in.AbsOperandOffset = 5, "push imm32", 1
	case 0xBE:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic, in.AbsOperandOffset = 5, "mov esi, imm32", 1
	case 0xB8:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 5, "mov eax, imm32"
	case 0xB9:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 5, "mov ecx, imm32"
	case 0x05:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 5, "add eax, imm32"
	case 0xE8:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 5, "call rel32"
	case 0xE9:
		if err := need(5); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 5, "jmp rel32"
	case 0x74:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic = 2, "jz rel8"
	case 0x83:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		switch b[1] {
		case 0xE9:
			in.Mnemonic = "sub ecx, imm8"
		case 0xF8:
			in.Mnemonic = "cmp eax, imm8"
		default:
			return Inst{}, fmt.Errorf("codegen: unknown 83 /r modrm %#02x at %#x", b[1], off)
		}
		in.Len = 3
	case 0xFF:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		if b[1] != 0x15 {
			return Inst{}, fmt.Errorf("codegen: unknown FF modrm %#02x at %#x", b[1], off)
		}
		if err := need(6); err != nil {
			return Inst{}, err
		}
		in.Len, in.Mnemonic, in.AbsOperandOffset = 6, "call [abs32]", 2
	default:
		return Inst{}, fmt.Errorf("codegen: unknown opcode %#02x at %#x", b[0], off)
	}
	return in, nil
}

// DecodeN decodes n consecutive instructions starting at off and returns
// them. The inline hooker uses this to determine how many victim bytes it
// must displace to fit a 5-byte JMP.
func DecodeN(code []byte, off uint32, n int) ([]Inst, error) {
	out := make([]Inst, 0, n)
	for i := 0; i < n; i++ {
		in, err := Decode(code, off)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		off += uint32(in.Len)
	}
	return out, nil
}

// InstructionsSpanning decodes instructions from off until at least want
// bytes are covered, returning the decoded instructions and the total byte
// count. This is the classic hook-prologue computation: displace whole
// instructions covering >= 5 bytes.
func InstructionsSpanning(code []byte, off uint32, want int) ([]Inst, int, error) {
	var out []Inst
	total := 0
	for total < want {
		in, err := Decode(code, off+uint32(total))
		if err != nil {
			return nil, 0, err
		}
		out = append(out, in)
		total += in.Len
	}
	return out, total, nil
}
