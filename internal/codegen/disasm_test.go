package codegen

import (
	"strings"
	"testing"
)

// decodeCase pairs an encoding with its expected length/mnemonic/operand.
type decodeCase struct {
	bytes    []byte
	mnemonic string
	length   int
	absOff   int
}

var decodeCases = []decodeCase{
	{[]byte{0x55}, "push ebp", 1, -1},
	{[]byte{0x5D}, "pop ebp", 1, -1},
	{[]byte{0xC3}, "ret", 1, -1},
	{[]byte{0x90}, "nop", 1, -1},
	{[]byte{0x40}, "inc eax", 1, -1},
	{[]byte{0x49}, "dec ecx", 1, -1},
	{[]byte{0xCC}, "int3", 1, -1},
	{[]byte{0x00, 0x00}, "add [eax], al", 2, -1},
	{[]byte{0x31, 0xC0}, "xor r/m, r", 2, -1},
	{[]byte{0x8B, 0xEC}, "mov r, r/m", 2, -1},
	{[]byte{0xA1, 1, 2, 3, 4}, "mov eax, [moffs32]", 5, 1},
	{[]byte{0xA3, 1, 2, 3, 4}, "mov [moffs32], eax", 5, 1},
	{[]byte{0x68, 1, 2, 3, 4}, "push imm32", 5, 1},
	{[]byte{0xBE, 1, 2, 3, 4}, "mov esi, imm32", 5, 1},
	{[]byte{0xB8, 1, 2, 3, 4}, "mov eax, imm32", 5, -1},
	{[]byte{0xB9, 1, 2, 3, 4}, "mov ecx, imm32", 5, -1},
	{[]byte{0x05, 1, 2, 3, 4}, "add eax, imm32", 5, -1},
	{[]byte{0xE8, 1, 2, 3, 4}, "call rel32", 5, -1},
	{[]byte{0xE9, 1, 2, 3, 4}, "jmp rel32", 5, -1},
	{[]byte{0x74, 0x02}, "jz rel8", 2, -1},
	{[]byte{0x83, 0xE9, 0x01}, "sub ecx, imm8", 3, -1},
	{[]byte{0x83, 0xF8, 0x10}, "cmp eax, imm8", 3, -1},
	{[]byte{0xFF, 0x15, 1, 2, 3, 4}, "call [abs32]", 6, 2},
}

func TestDecodeTable(t *testing.T) {
	for _, c := range decodeCases {
		in, err := Decode(c.bytes, 0)
		if err != nil {
			t.Errorf("% x: %v", c.bytes, err)
			continue
		}
		if in.Mnemonic != c.mnemonic || in.Len != c.length || in.AbsOperandOffset != c.absOff {
			t.Errorf("% x: got (%q, %d, %d), want (%q, %d, %d)",
				c.bytes, in.Mnemonic, in.Len, in.AbsOperandOffset, c.mnemonic, c.length, c.absOff)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, c := range decodeCases {
		if c.length == 1 {
			continue
		}
		if _, err := Decode(c.bytes[:c.length-1], 0); err == nil {
			t.Errorf("% x truncated to %d bytes decoded successfully", c.bytes, c.length-1)
		}
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	for _, b := range []byte{0x0F, 0x66, 0xF4, 0xEA} {
		if _, err := Decode([]byte{b, 0, 0, 0, 0, 0}, 0); err == nil {
			t.Errorf("opcode %#02x decoded", b)
		}
	}
}

func TestDecodeUnknownModRM(t *testing.T) {
	if _, err := Decode([]byte{0x83, 0xC0, 0x01}, 0); err == nil {
		t.Error("83 /0 decoded (only /5 sub and /7 cmp supported)")
	}
	if _, err := Decode([]byte{0xFF, 0xD0, 0, 0, 0, 0}, 0); err == nil {
		t.Error("FF /2 reg decoded")
	}
}

func TestDecodeOffsetOutOfRange(t *testing.T) {
	if _, err := Decode([]byte{0x90}, 5); err == nil {
		t.Error("out-of-range offset decoded")
	}
}

func TestDecodeOffsetField(t *testing.T) {
	code := []byte{0x90, 0x55, 0xC3}
	in, err := Decode(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Offset != 1 || in.Mnemonic != "push ebp" {
		t.Errorf("got %+v", in)
	}
}

func TestDecodeN(t *testing.T) {
	code := []byte{0x55, 0x8B, 0xEC, 0xB9, 1, 0, 0, 0, 0x49, 0x5D, 0xC3}
	ins, err := DecodeN(code, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"push ebp", "mov r, r/m", "mov ecx, imm32", "dec ecx", "pop ebp"}
	for i, w := range want {
		if ins[i].Mnemonic != w {
			t.Errorf("inst %d = %q, want %q", i, ins[i].Mnemonic, w)
		}
	}
}

func TestDecodeNError(t *testing.T) {
	code := []byte{0x55, 0x0F}
	if _, err := DecodeN(code, 0, 2); err == nil {
		t.Error("DecodeN across unknown opcode succeeded")
	}
}

func TestInstructionsSpanning(t *testing.T) {
	// push ebp (1) + mov ebp,esp (2) + mov ecx,imm32 (5): spanning 5 bytes
	// requires all three (total 8).
	code := []byte{0x55, 0x8B, 0xEC, 0xB9, 1, 0, 0, 0, 0xC3}
	ins, total, err := InstructionsSpanning(code, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 || total != 8 {
		t.Errorf("got %d instructions spanning %d bytes, want 3 spanning 8", len(ins), total)
	}
}

func TestInstructionsSpanningExact(t *testing.T) {
	code := []byte{0xB9, 1, 0, 0, 0, 0xC3} // 5-byte instruction covers exactly
	ins, total, err := InstructionsSpanning(code, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || total != 5 {
		t.Errorf("got %d/%d", len(ins), total)
	}
}

func TestInstructionsSpanningError(t *testing.T) {
	code := []byte{0x55, 0x0F, 0, 0, 0, 0}
	if _, _, err := InstructionsSpanning(code, 0, 5); err == nil {
		t.Error("spanning across unknown opcode succeeded")
	}
}

func TestErrorMessagesNameOffset(t *testing.T) {
	_, err := Decode([]byte{0x90, 0x0F, 0, 0, 0, 0, 0}, 1)
	if err == nil || !strings.Contains(err.Error(), "0x1") {
		t.Errorf("error does not mention offset: %v", err)
	}
}
