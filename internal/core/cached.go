package core

// This file holds the cache-accelerated pool-sweep path: the fleet engine's
// fetch→digest→compare structure, with a content-addressed digest store
// (internal/cas) consulted before every fetch. A VM whose content token
// (copy-on-write base-layer SnapshotID + mapping epoch) still matches a
// stored entry provably carries bit-identical guest memory, so its digest
// cluster key and component names are replayed from the store for the cost
// of one index probe (CostCASLookup) instead of a fetch+parse+digest; the
// same goes for the representative comparison between two clusters whose key
// pair has been compared before. A steady-state sweep over an unchanged pool
// therefore performs zero guest-memory fetches, and an infected VM costs two
// (its own copy plus materializing the reference to digest against) —
// O(changed modules), not O(pool).
//
// Cost model: CostCASLookup is charged only on hits. A cold sweep (no hits)
// charges exactly what the uncached path charges, in the same per-VM order,
// so its report — simulated time included — is byte-identical to the
// uncached sweep's (the differential tests pin this). Warm sweeps charge
// less simulated time; their reports agree with the uncached path on
// everything but timing.
//
// Determinism: the store is only ever consulted from the sweep's driving
// goroutine, in pool order. Parallel stages (fetch, digest, compare) never
// touch it — insert order feeds FIFO eviction, eviction feeds later
// hit/miss patterns, and those feed simulated time, which must replay
// byte-identically for a fixed seed.

import (
	"fmt"
	"time"

	"modchecker/internal/cas"
)

// sourceToken samples one target's content token. Targets without a stable
// identity (dirtied frames, destroyed domain, installed fault plan) yield an
// invalid token, which never hits and is never stored — a faulted or
// mutated read can therefore never populate the cache.
func sourceToken(t Target) cas.Token {
	if t.Identity == nil {
		return cas.Token{}
	}
	id, ok := t.Identity()
	if !ok {
		return cas.Token{}
	}
	tok := cas.Token{ID: id, OK: true}
	if t.Epoch != nil {
		tok.Epoch = t.Epoch()
	}
	return tok
}

// componentNames extracts a fetched copy's component names in module order.
func componentNames(f *fetched) []string {
	comps := f.parsed.Components
	names := make([]string, len(comps))
	for k := range comps {
		names[k] = comps[k].Name
	}
	return names
}

// cached reports whether the session routes module checks through the
// digest-store path. Full pairwise mode compares raw buffers pair by pair —
// there is no digest clustering to cache — so it stays uncached.
func (ps *PoolSweep) cached() bool {
	return ps.c.cfg.DigestCache != nil && !ps.c.cfg.FullPairwise
}

// checkModuleCached checks one module through the digest store. The store
// path assumes a hit VM's guest memory is still exactly what its token
// names; if the pool is mutated in the middle of a sweep that assumption can
// break (a materializing fetch fails where the token said it could not), and
// the check falls back to a full uncached pass for the module.
func (ps *PoolSweep) checkModuleCached(module string) *PoolReport {
	if rep, ok := ps.tryCheckModuleCached(module); ok {
		return rep
	}
	return ps.checkModuleUncached(module)
}

// checkModuleUncached is the pre-cache routing: the sharded fleet engine
// when any of its modes are on, the flat snapshot path otherwise.
func (ps *PoolSweep) checkModuleUncached(module string) *PoolReport {
	if ps.fleetMode() {
		return ps.checkModuleFleet(module)
	}
	fetches, elapsed := ps.fetchFromSnapshot(module)
	return ps.assembleFromFetches(module, fetches, elapsed)
}

// tryCheckModuleCached runs one module check with the digest store. It
// reports ok=false (and a nil report) only when a fetch the store's tokens
// guaranteed would succeed failed anyway — guest memory changed mid-sweep —
// in which case the caller redoes the module uncached.
func (ps *PoolSweep) tryCheckModuleCached(module string) (*PoolReport, bool) {
	c := ps.c
	store := c.cfg.DigestCache
	n := len(ps.vms)

	rep := &PoolReport{ModuleName: module}
	errs := make([]error, n)
	bases := make([]uint32, n)
	clusterOf := make([]int, n) // -1: fetch failed
	fetchCosts := make([]time.Duration, n)
	fetches := make([]*fetched, n)
	keys := make([]string, n)    // digest cluster key; "" only for the reference cluster
	names := make([][]string, n) // component names per healthy leader
	hit := make([]bool, n)       // digest entry replayed from the store
	toks := make([]cas.Token, n)
	var checkerWork time.Duration // lookup + digest + compare work
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	// Buffers retained past their bookkeeping (cluster representatives, the
	// reference) are released here; releaseFetched is a no-op for buffers
	// already recycled during shard processing.
	defer func() {
		for _, f := range fetches {
			c.releaseFetched(f)
		}
	}()

	for i := range ps.vms {
		if ps.leader[i] == i {
			toks[i] = sourceToken(ps.vms[i])
		}
	}

	// Classification, in pool order: resolve the sweep reference (the first
	// leader that is — or provably would be — fetchable, mirroring the flat
	// path's "first healthy fetch"), replay digest entries for token-valid
	// VMs, and queue the rest as misses.
	ref := -1
	var refTok cas.Token
	var missIdx []int
	for i := 0; i < n; i++ {
		if ps.leader[i] != i {
			continue // identity dup: inherits the leader's outcome below
		}
		if ps.perVMBudget > 0 && ps.spent[i] >= ps.perVMBudget {
			errs[i] = fmt.Errorf("%s on %s: %w", module, ps.vms[i].Name, ErrVMBudget)
			continue
		}
		info, err := ps.lookup(i, module)
		if err != nil {
			errs[i] = err
			continue
		}
		if toks[i].OK {
			var e cas.Entry
			var ok bool
			if ref < 0 {
				// Only the VM's own reference entry can resolve an unfetched
				// reference: it proves fetch+parse succeed on this image.
				e, ok = store.LookupDigest(module, toks[i], toks[i])
			} else {
				e, ok = store.LookupDigest(module, refTok, toks[i])
			}
			if ok {
				lc := c.charge(CostCASLookup)
				fetchCosts[i] = lc
				checkerWork += lc
				hit[i] = true
				bases[i] = info.Base
				names[i] = e.Names
				if ref < 0 {
					// keys[i] stays "": the reference fronts cluster 0.
					ref, refTok = i, toks[i]
					clusterOf[i] = 0
				} else {
					keys[i] = e.Key
				}
				continue
			}
		}
		if ref < 0 {
			f := ps.fetchVM(i, module)
			fetchCosts[i] = f.timing.Total()
			rep.Timing.addInto(f.timing)
			if f.err != nil {
				errs[i] = f.err
				continue
			}
			fetches[i] = f
			bases[i] = f.info.Base
			names[i] = componentNames(f)
			ref, refTok = i, toks[i]
			clusterOf[i] = 0
			continue
		}
		missIdx = append(missIdx, i)
	}

	// Misses digest against the reference, so its bytes must exist. A hit
	// reference is only materialized when something actually missed — the
	// all-hit steady state fetches nothing.
	if len(missIdx) > 0 && fetches[ref] == nil {
		f := ps.fetchVM(ref, module)
		fetchCosts[ref] += f.timing.Total()
		rep.Timing.addInto(f.timing)
		if f.err != nil {
			return nil, false
		}
		fetches[ref] = f
	}

	// Fetch and digest the misses, shard by shard like the fleet engine, so
	// resident module copies stay O(ShardSize + clusters): only the first
	// fetched copy of each digest key keeps its buffer, as the materialized
	// representative for the compare stage.
	var digestIdx []int // VM index per digest task, pool order
	var digestCosts []time.Duration
	keyFetched := make(map[string]int) // digest key -> first VM retaining bytes
	shard := c.cfg.ShardSize
	if shard <= 0 || shard > len(missIdx) {
		shard = len(missIdx)
	}
	for lo := 0; lo < len(missIdx); lo += shard {
		batch := missIdx[lo:min(lo+shard, len(missIdx))]
		fetchOne := func(k int) {
			fetches[batch[k]] = ps.fetchVM(batch[k], module)
		}
		if c.cfg.Parallel {
			runBounded("fetch", len(batch), c.workers(), fetchOne)
		} else {
			for k := range batch {
				fetchOne(k)
			}
		}

		// Bookkeeping in pool order.
		var toDigest []int
		for _, i := range batch {
			f := fetches[i]
			fetchCosts[i] = f.timing.Total()
			rep.Timing.addInto(f.timing)
			if f.err != nil {
				errs[i] = f.err
				c.releaseFetched(f)
				fetches[i] = nil
				continue
			}
			bases[i] = f.info.Base
			names[i] = componentNames(f)
			toDigest = append(toDigest, i)
		}

		dkeys := make([]string, len(toDigest))
		dcosts := make([]time.Duration, len(toDigest))
		digestOne := func(k int) {
			key, cost := c.digestAgainst(fetches[ref], fetches[toDigest[k]])
			dkeys[k] = key
			dcosts[k] = c.charge(cost)
		}
		if c.cfg.Parallel {
			runBounded("digest", len(toDigest), c.workers(), digestOne)
		} else {
			for k := range toDigest {
				digestOne(k)
			}
		}
		for k, i := range toDigest {
			keys[i] = dkeys[k]
			digestIdx = append(digestIdx, i)
			digestCosts = append(digestCosts, dcosts[k])
			checkerWork += dcosts[k]
			if _, ok := keyFetched[keys[i]]; ok {
				c.releaseFetched(fetches[i])
				fetches[i] = nil
			} else {
				keyFetched[keys[i]] = i
			}
		}
	}

	// Cluster assignment over every healthy leader, hits and misses
	// interleaved in pool order, so cluster numbering matches the uncached
	// path's encounter order. An empty key on a non-reference VM means its
	// token equals the reference's (a bit-identical clone): cluster 0.
	var reps []int // first member per cluster, pool order; reps[0] is the reference
	if ref >= 0 {
		reps = append(reps, ref)
	}
	byKey := make(map[string]int)
	for i := 0; i < n; i++ {
		if ps.leader[i] != i || i == ref || errs[i] != nil || ref < 0 {
			continue
		}
		if keys[i] == "" {
			clusterOf[i] = 0
			continue
		}
		cid, ok := byKey[keys[i]]
		if !ok {
			cid = len(reps)
			byKey[keys[i]] = cid
			reps = append(reps, i)
		}
		clusterOf[i] = cid
	}
	keyOf := func(cid int) string { return keys[reps[cid]] }

	// One true comparison per cluster pair — replayed from the store when
	// the key pair's outcome is cached (an empty cached list is a cached
	// match), computed otherwise.
	var cpairs []clusterPair
	for a := 0; a < len(reps); a++ {
		for b := a + 1; b < len(reps); b++ {
			cpairs = append(cpairs, clusterPair{a, b})
		}
	}
	repMMs := make([][]string, len(cpairs))
	repCosts := make([]time.Duration, len(cpairs))
	var toCompare []int
	for k, p := range cpairs {
		if refTok.OK {
			if mm, ok := store.LookupMismatch(module, refTok, keyOf(p.a), keyOf(p.b)); ok {
				repMMs[k] = mm
				lc := c.charge(CostCASLookup)
				repCosts[k] = lc
				checkerWork += lc
				continue
			}
		}
		toCompare = append(toCompare, k)
	}
	if len(toCompare) > 0 {
		// Resolve bytes for every cluster a real comparison touches: the
		// retained first fetch when one exists, otherwise materialize the
		// cluster's first member (an all-hit cluster in a warm sweep).
		needed := make(map[int]bool, 2*len(toCompare))
		for _, k := range toCompare {
			needed[cpairs[k].a] = true
			needed[cpairs[k].b] = true
		}
		repBytes := make([]*fetched, len(reps))
		for cid := range reps {
			if !needed[cid] {
				continue
			}
			if i, ok := keyFetched[keyOf(cid)]; ok && keyOf(cid) != "" {
				repBytes[cid] = fetches[i]
				continue
			}
			m := reps[cid]
			if fetches[m] == nil {
				f := ps.fetchVM(m, module)
				fetchCosts[m] += f.timing.Total()
				rep.Timing.addInto(f.timing)
				if f.err != nil {
					return nil, false
				}
				fetches[m] = f
			}
			repBytes[cid] = fetches[m]
		}
		compareOne := func(k int) {
			p := cpairs[toCompare[k]]
			mm, cost := c.compare(repBytes[p.a], repBytes[p.b])
			repMMs[toCompare[k]] = mm
			repCosts[toCompare[k]] = c.charge(cost)
		}
		if c.cfg.Parallel {
			runBounded("compare", len(toCompare), c.workers(), compareOne)
		} else {
			for k := range toCompare {
				compareOne(k)
			}
		}
		for _, k := range toCompare {
			checkerWork += repCosts[k]
		}
	}

	// Identity dups inherit their leader's outcome.
	for i := 0; i < n; i++ {
		if l := ps.leader[i]; l != i {
			errs[i] = errs[l]
			bases[i] = bases[l]
			clusterOf[i] = clusterOf[l]
			names[i] = names[l]
		}
	}

	// Store what this sweep learned — on the driving goroutine, in pool
	// order, so FIFO eviction order replays deterministically. Entries are
	// only written under valid tokens: a VM that was fetched through a fault
	// plan, or whose memory has diverged from any frozen layer, has none.
	if refTok.OK {
		for i := 0; i < n; i++ {
			if ps.leader[i] != i || hit[i] || errs[i] != nil || !toks[i].OK || clusterOf[i] < 0 {
				continue
			}
			store.InsertDigest(module, refTok, toks[i], cas.Entry{Key: keys[i], Names: names[i]})
		}
		for _, k := range toCompare {
			p := cpairs[k]
			store.InsertMismatch(module, refTok, keyOf(p.a), keyOf(p.b), repMMs[k])
		}
	}

	// Stage rendering and report derivation, exactly as the fleet engine.
	rep.Stages.Fetch = c.traceStage("fetch", module,
		func(k int) string { return "fetch " + ps.vms[k].Name }, fetchCosts)
	rep.Stages.Digest = c.traceStage("digest", module,
		func(k int) string { return "digest " + ps.vms[digestIdx[k]].Name }, digestCosts)
	rep.Stages.Compare = c.traceStage("compare", module, func(k int) string {
		p := cpairs[k]
		return "compare " + ps.vms[reps[p.a]].Name + " vs " + ps.vms[reps[p.b]].Name
	}, repCosts)
	rep.Elapsed = rep.Stages.Fetch + rep.Stages.Digest + rep.Stages.Compare
	rep.Timing.Checker += checkerWork

	repNames := make([][]string, len(reps))
	for cid, m := range reps {
		repNames[cid] = names[m]
	}
	repMM := make(map[clusterPair][]string, len(cpairs))
	for k, p := range cpairs {
		repMM[p] = repMMs[k]
	}
	if c.cfg.LeanReports {
		ps.deriveLean(rep, module, clusterOf, errs, bases, repMM, repNames)
	} else {
		c.derivePool(rep, module, ps.vms, poolView{
			err:        func(i int) error { return errs[i] },
			base:       func(i int) uint32 { return bases[i] },
			components: func(i int) []string { return names[i] },
		}, fleetMismatches(clusterOf, repMM))
	}
	return rep, true
}
