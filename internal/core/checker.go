package core

import (
	"crypto/md5"
	"fmt"
	"sort"
	"strings"
	"time"

	"modchecker/internal/cas"
	"modchecker/internal/faults"
	"modchecker/internal/trace"
	"modchecker/internal/vmi"
)

// Normalizer selects how Integrity-Checker reverses relocation before
// hashing.
type Normalizer int

const (
	// NormalizeDiffScan is the paper's Algorithm 2: pairwise byte
	// comparison locates absolute addresses.
	NormalizeDiffScan Normalizer = iota
	// NormalizeRelocTable recovers fixup sites from the module's own
	// .reloc table (ablation A2).
	NormalizeRelocTable
)

// Verdict is the integrity conclusion for one module on one VM.
type Verdict int

const (
	// VerdictClean: the module matched a majority of its peers
	// (n > (t-1)/2, paper Section III-B discussion).
	VerdictClean Verdict = iota
	// VerdictAltered: a majority of peers disagree with this copy.
	VerdictAltered
	// VerdictInconclusive: no majority either way (e.g. a widely spread
	// infection, or fewer healthy peers than the quorum policy demands);
	// the paper's guidance is to escalate to deeper analysis.
	VerdictInconclusive
	// VerdictError: the VM could not be checked at all — its own fetch
	// failed (unreadable memory, domain destroyed mid-check). Distinct from
	// VerdictInconclusive: the copy was compared and split the vote there,
	// here there was nothing to compare.
	VerdictError
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "CLEAN"
	case VerdictAltered:
		return "ALTERED"
	case VerdictInconclusive:
		return "INCONCLUSIVE"
	case VerdictError:
		return "ERROR"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Nominal CPU costs of Integrity-Checker work, per KiB processed. MD5 on
// the paper's hardware runs at a few hundred MB/s; the scan is a simple
// byte compare.
const (
	hashCostPerKB = 800 * time.Nanosecond
	scanCostPerKB = 500 * time.Nanosecond
)

// CostCASLookup is the nominal cost of consulting the content-addressed
// digest store for one cached conclusion: a Dom0-side index probe, orders
// of magnitude below the page-wise module copy it replaces. It is charged
// only on hits — a cold cached sweep does exactly the uncached sweep's work
// and nothing else, which is what lets the differential tests demand full
// byte-identity (simulated time included) between a cold cached sweep and
// an uncached one.
const CostCASLookup = 1 * time.Microsecond

// Target identifies one VM to the checker: its name and an open
// introspection handle.
type Target struct {
	Name   string
	Handle *vmi.Handle
	// Identity, when set, returns a content-identity token for the VM's
	// entire guest-physical memory. Two targets reporting the same token are
	// bit-identical (copy-on-write clones that have not diverged from their
	// shared golden image), so a fleet sweep running with
	// Config.DedupIdentical introspects one member of each identity group
	// and shares the outcome — the Dom0-side frame-table consultation that
	// makes 100k-VM sweeps tractable. ok=false means no token is available
	// (the VM has private memory, or identity tracking is off); such VMs are
	// always introspected individually. The facade leaves Identity nil when
	// a fault plan is installed: injected per-VM read faults must be
	// observed by real reads, never skipped by dedup.
	Identity func() (uint64, bool)
	// Epoch, when set, returns the VM's mapping epoch — bumped by snapshot
	// reverts and fault-plan lifecycle events. The digest cache folds it
	// into the VM's content token, so conclusions cached before such an
	// event stop being addressable after it even if the memory image's
	// SnapshotID were to read the same.
	Epoch func() uint64
}

// QuorumPolicy sets how many healthy peer comparisons a verdict needs.
// With fewer comparisons than MinPeers the verdict degrades to
// VerdictInconclusive rather than trusting a too-small majority — a pool
// where most peers errored must not flag (or clear) a VM on one opinion.
type QuorumPolicy struct {
	// MinPeers is the minimum number of successful peer comparisons for a
	// conclusive verdict (values below 1 behave as 1).
	MinPeers int
}

// Config configures a Checker.
type Config struct {
	// Strategy selects Module-Searcher's copy mode.
	Strategy CopyStrategy
	// Normalizer selects the RVA-adjustment method.
	Normalizer Normalizer
	// Parallel fetches peer VMs' modules concurrently and runs the pool
	// comparison stage on a bounded worker pool (the enhancement the
	// paper's Section V-C.1 suggests); the paper's measured configuration
	// is sequential.
	Parallel bool
	// Workers bounds the goroutines of the parallel fetch and compare
	// stages; zero means DefaultWorkers (the paper's 8-thread host).
	Workers int
	// FullPairwise forces CheckPool onto the legacy O(n²) comparison path
	// (every pair normalized and hashed independently) instead of digest
	// pre-clustering. The results are identical — the differential tests
	// pin that — so this exists for benchmarking the two paths and as a
	// paper-faithful reference.
	FullPairwise bool
	// Retry governs how fetches respond to transient introspection faults.
	// The zero value means one attempt, no verification.
	Retry RetryPolicy
	// Quorum governs how many healthy comparisons a verdict requires.
	Quorum QuorumPolicy
	// ShardSize, when positive, partitions a pool sweep's fetch+digest work
	// into shards of at most this many VMs, bounding how many module copies
	// are resident at once to O(ShardSize + clusters) instead of O(pool).
	// Digest equality implies a pairwise match, so per-shard clusters
	// compose into pool-wide clusters without re-comparison, and the
	// resulting reports are byte-identical to the flat clustered path (the
	// differential tests pin this).
	ShardSize int
	// LeanReports drops per-VM reports for clean VMs from PoolReports:
	// verdicts are derived from cluster sizes in O(clusters² + pool) and
	// only non-clean VMs (flagged, inconclusive, errored) get a full
	// ModuleReport — without Pairs or MismatchedVMs lists, which are O(pool)
	// each. Simulated costs, alerts, and verdicts are unchanged; only the
	// host-side report size shrinks. Required for streaming sweeps over
	// very large pools.
	LeanReports bool
	// DedupIdentical lets pool sweeps consult Target.Identity and
	// introspect only one VM of each content-identity group, sharing its
	// list walk, fetch, digest, and verdict with the group. Deduped VMs are
	// charged nothing — this intentionally changes the simulated cost model
	// (it is the optimization, not a refactoring), so it is never enabled
	// on the paper-faithful paths or under fault injection.
	DedupIdentical bool
	// DigestCache, when set, routes pool-sweep module checks through the
	// content-addressed digest store: a VM whose content token matches a
	// stored conclusion skips its fetch entirely and is charged only
	// CostCASLookup; misses do the full fetch+digest and populate the store.
	// Verdicts are provably unchanged (tokens only hit when the guest image
	// is bit-identical to when the entry was written — the differential
	// tests pin cached ≡ uncached reports), and a cold store changes
	// nothing at all, simulated time included. Ignored by the per-call
	// CheckModule/CheckPool paths and under FullPairwise (there are no
	// digest keys to cache there).
	DigestCache *cas.Store
	// Charge, if set, is invoked with the nominal duration of each unit of
	// work and returns the effective (contention-stretched) duration. The
	// cloud facade wires this to the hypervisor clock.
	Charge func(time.Duration) time.Duration
	// Tracer, if set, records every pipeline stage on the simulated
	// timeline (see internal/trace). The cloud facade wires this to the
	// cloud-wide tracer when tracing is enabled; nil disables recording at
	// the cost of one pointer check per stage.
	Tracer *trace.Tracer
}

// Checker is ModChecker's Integrity-Checker plus the driver that runs the
// full Searcher -> Parser -> Checker pipeline across a VM pool.
type Checker struct {
	cfg Config
}

// NewChecker creates a Checker.
func NewChecker(cfg Config) *Checker {
	return &Checker{cfg: cfg}
}

// charge accounts nominal work and returns the stretched duration.
//
//modsafe:charges forwards cost to Config.Charge
func (c *Checker) charge(d time.Duration) time.Duration {
	if c.cfg.Charge == nil {
		return d
	}
	return c.cfg.Charge(d)
}

// PhaseTiming records the effective time each ModChecker component spent,
// the per-component breakdown Figures 7 and 8 plot. In parallel mode the
// values are aggregate work, not wall time.
type PhaseTiming struct {
	Searcher time.Duration
	Parser   time.Duration
	Checker  time.Duration
}

// Total returns the summed component time.
func (t PhaseTiming) Total() time.Duration { return t.Searcher + t.Parser + t.Checker }

// Add accumulates another breakdown into this one.
func (t *PhaseTiming) Add(o PhaseTiming) {
	t.Searcher += o.Searcher
	t.Parser += o.Parser
	t.Checker += o.Checker
}

func (t *PhaseTiming) addInto(o PhaseTiming) { t.Add(o) }

// PairResult is the outcome of comparing the target's module against one
// peer VM's copy.
type PairResult struct {
	PeerVM string
	// Match is true when every component hash agreed.
	Match bool
	// MismatchedComponents lists the component names whose hashes
	// disagreed.
	MismatchedComponents []string
	// Err records a peer that could not be checked (module missing,
	// unreadable memory); such peers do not count as comparisons.
	Err error
	// ErrClass classifies Err (transient faults may clear on the next
	// sweep; permanent ones will not). ClassNone when Err is nil.
	ErrClass faults.Class
}

// ComponentTally aggregates per-component agreement across all peers, the
// form the paper's detection experiments report ("hash mismatches were
// detected in IMAGE_NT_HEADER, IMAGE_OPTIONAL_HEADER, ...").
type ComponentTally struct {
	Name          string
	Matches       int
	Mismatches    int
	MismatchedVMs []string
}

// ModuleReport is the result of checking one module on one target VM
// against a pool of peers.
type ModuleReport struct {
	ModuleName string
	TargetVM   string
	Base       uint32

	Pairs      []PairResult
	Components []ComponentTally

	// Successes counts peers whose copy fully matched; Comparisons counts
	// peers actually compared. Verdict applies the paper's majority rule
	// under the configured quorum.
	Successes   int
	Comparisons int
	Verdict     Verdict

	// Err is set (with its classification in ErrClass) when the verdict is
	// VerdictError: the target's own fetch failed and nothing was compared.
	Err      error
	ErrClass faults.Class

	// Timing is total work per component (the sum over all VMs touched).
	Timing PhaseTiming
	// Elapsed is the simulated wall-clock of the check: equal to
	// Timing.Total() for the paper's sequential driver, but under the
	// parallel driver concurrent fetches overlap and only the slowest
	// VM's fetch contributes (ablation A1 measures exactly this gap).
	Elapsed time.Duration
}

// Reason explains a non-clean verdict in one line, for report text/JSON and
// scanner alerts: why this VM is errored, inconclusive, or altered.
func (r *ModuleReport) Reason() string {
	switch r.Verdict {
	case VerdictError:
		if r.Err != nil {
			return fmt.Sprintf("%s fault: %v", strings.ToLower(r.ErrClass.String()), r.Err)
		}
		return "check failed"
	case VerdictInconclusive:
		if r.Comparisons == 0 {
			return "no healthy peers to compare against"
		}
		if 2*r.Successes > r.Comparisons {
			// A matching majority that was still inconclusive means the
			// quorum policy rejected the sample size.
			return fmt.Sprintf("below quorum: only %d peer(s) compared", r.Comparisons)
		}
		return fmt.Sprintf("no majority: %d of %d peer comparisons matched", r.Successes, r.Comparisons)
	case VerdictAltered:
		return fmt.Sprintf("%d of %d peers dispute this copy", r.Comparisons-r.Successes, r.Comparisons)
	default:
		return ""
	}
}

// MismatchedComponents returns the names of components that mismatched
// against at least one peer, sorted.
func (r *ModuleReport) MismatchedComponents() []string {
	var out []string
	for _, t := range r.Components {
		if t.Mismatches > 0 {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// fetched is one VM's copy of the module after search + parse, with
// per-phase effective costs.
type fetched struct {
	target Target
	info   *ModuleInfo
	parsed *ParsedModule
	timing PhaseTiming
	// relocSites holds the module's own fixup sites when the reloc-table
	// normalizer is active; normalized caches per-component normalized
	// hashes.
	relocSites []uint32
	normHashes map[string][md5.Size]byte
	// buf is the raw module copy backing parsed.Raw and every component's
	// Data. Page-wise copies draw it from the fetch-buffer pool; once a
	// report no longer needs the bytes, releaseFetched recycles it.
	buf []byte
	err error
}

// releaseFetched recycles a fetch's module buffer once nothing derived from
// the report aliases it (reports hold only fresh strings and scalars).
// Mapped copies are not pooled: their buffers come from the handle's
// MapRange, not the fetch pool.
//
//modown:pool module-fetch put
func (c *Checker) releaseFetched(f *fetched) {
	if f == nil || f.buf == nil {
		return
	}
	if c.cfg.Strategy != CopyMapped {
		putFetchBuf(f.buf)
	}
	f.buf = nil
	f.parsed = nil
}

// fetchAndParse runs Module-Searcher and Module-Parser for one VM. The
// returned fetch owns a pooled module buffer until releaseFetched runs.
//
//modown:pool module-fetch get
func (c *Checker) fetchAndParse(t Target, module string) *fetched {
	f := &fetched{target: t}
	info, buf, searchCost, err := NewSearcher(t.Handle, c.cfg.Strategy).WithRetry(c.cfg.Retry).FetchModule(module)
	f.timing.Searcher = c.charge(searchCost)
	if err != nil {
		f.err = err
		return f
	}
	c.parseFetched(f, t, module, info, buf)
	return f
}

// parseFetched runs Module-Parser (and, under the reloc normalizer, the
// per-VM normalization hashing) on an already-copied module image, filling
// in the fetch. Shared by the per-call fetch path and the sweep session,
// which copies the module itself from its module-table snapshot. Ownership
// of buf moves into the fetch record; releaseFetched recycles it.
//
//modown:transfer fetch-buf
func (c *Checker) parseFetched(f *fetched, t Target, module string, info *ModuleInfo, buf []byte) {
	f.info = info
	f.buf = buf
	parsed, parseCost, err := ParseModule(t.Name, module, info.Base, buf)
	f.timing.Parser = c.charge(parseCost)
	if err != nil {
		f.err = err
		return
	}
	f.parsed = parsed
	if c.cfg.Normalizer == NormalizeRelocTable {
		sites, err := NormalizeWithRelocs(parsed.Raw)
		if err != nil {
			f.err = fmt.Errorf("core: reloc table of %s on %s: %w", module, t.Name, err)
			return
		}
		f.relocSites = sites
		f.normHashes = make(map[string][md5.Size]byte, len(parsed.Components))
		var cost time.Duration
		for i := range parsed.Components {
			comp := &parsed.Components[i]
			data := comp.Data
			if comp.Normalize {
				data = ApplyRelocNormalization(comp, sites, info.Base)
				cost += perKB(len(data), scanCostPerKB)
			}
			f.normHashes[comp.Name] = md5.Sum(data)
			cost += perKB(len(data), hashCostPerKB)
		}
		f.timing.Checker = c.charge(cost)
	}
}

func perKB(n int, c time.Duration) time.Duration {
	return time.Duration(n/1024+1) * c
}

// CheckModule verifies one module on the target VM by comparing it against
// every peer and applying the majority vote. Peers that fail to produce the
// module are reported in Pairs but excluded from the vote denominator.
//
//modsafe:charged
func (c *Checker) CheckModule(module string, target Target, peers []Target) (*ModuleReport, error) {
	tf := c.fetchAndParse(target, module)
	if err := tf.err; err != nil {
		// A parse failure happens after the copy buffer is attached; the
		// buffer must still go back to the pool.
		c.releaseFetched(tf)
		return nil, err
	}
	rep := &ModuleReport{
		ModuleName: module,
		TargetVM:   target.Name,
		Base:       tf.info.Base,
	}
	rep.Timing.addInto(tf.timing)

	rep.Elapsed = tf.timing.Searcher + tf.timing.Parser + tf.timing.Checker

	peerFetches, fetchElapsed := c.fetchStage(module, peers)
	rep.Elapsed += fetchElapsed

	tallies := make(map[string]*ComponentTally)
	order := make([]string, 0, len(tf.parsed.Components))
	for _, comp := range tf.parsed.Components {
		tallies[comp.Name] = &ComponentTally{Name: comp.Name}
		order = append(order, comp.Name)
	}

	for _, pf := range peerFetches {
		rep.Timing.addInto(pf.timing)
		if pf.err != nil {
			rep.Pairs = append(rep.Pairs, PairResult{
				PeerVM: pf.target.Name, Err: pf.err, ErrClass: faults.Classify(pf.err),
			})
			continue
		}
		mismatched, cost := c.compare(tf, pf)
		charged := c.charge(cost)
		rep.Timing.Checker += charged
		rep.Elapsed += charged // target-vs-peer comparisons run serially on Dom0
		pr := PairResult{
			PeerVM:               pf.target.Name,
			Match:                len(mismatched) == 0,
			MismatchedComponents: mismatched,
		}
		rep.Pairs = append(rep.Pairs, pr)
		rep.Comparisons++
		if pr.Match {
			rep.Successes++
		}
		seen := make(map[string]bool, len(mismatched))
		for _, name := range mismatched {
			seen[name] = true
			t, ok := tallies[name]
			if !ok { // component present on peer but absent on target
				t = &ComponentTally{Name: name}
				tallies[name] = t
				order = append(order, name)
			}
			t.Mismatches++
			t.MismatchedVMs = append(t.MismatchedVMs, pf.target.Name)
		}
		for _, name := range order {
			if !seen[name] {
				tallies[name].Matches++
			}
		}
	}

	for _, name := range order {
		rep.Components = append(rep.Components, *tallies[name])
	}
	rep.Verdict = c.verdict(rep.Successes, rep.Comparisons)
	c.releaseFetched(tf)
	for _, pf := range peerFetches {
		c.releaseFetched(pf)
	}
	return rep, nil
}

// verdict applies the majority vote under the configured quorum: with fewer
// comparisons than MinPeers the result degrades to VerdictInconclusive.
func (c *Checker) verdict(successes, comparisons int) Verdict {
	min := c.cfg.Quorum.MinPeers
	if min < 1 {
		min = 1
	}
	if comparisons < min {
		return VerdictInconclusive
	}
	return vote(successes, comparisons)
}

// vote applies the paper's majority rule: clean when successes n satisfy
// n > (t-1)/2 where t-1 is the number of comparisons; altered when
// failures hold a strict majority; inconclusive otherwise (including the
// degenerate zero-comparison case).
func vote(successes, comparisons int) Verdict {
	if comparisons == 0 {
		return VerdictInconclusive
	}
	failures := comparisons - successes
	switch {
	case 2*successes > comparisons:
		return VerdictClean
	case 2*failures > comparisons:
		return VerdictAltered
	default:
		return VerdictInconclusive
	}
}

// compare hashes every component of the two copies and returns the names
// that disagree plus the nominal CPU cost of the comparison.
func (c *Checker) compare(a, b *fetched) (mismatched []string, cost time.Duration) {
	names := make(map[string]bool)
	for _, comp := range a.parsed.Components {
		names[comp.Name] = true
	}
	for _, comp := range b.parsed.Components {
		names[comp.Name] = true
	}
	for _, compA := range a.parsed.Components {
		delete(names, compA.Name)
		compB := b.parsed.Component(compA.Name)
		if compB == nil {
			mismatched = append(mismatched, compA.Name)
			continue
		}
		eq, d := c.compareComponent(a, b, &compA, compB)
		cost += d
		if !eq {
			mismatched = append(mismatched, compA.Name)
		}
	}
	// Components only the peer has.
	for name := range names {
		mismatched = append(mismatched, name)
	}
	sort.Strings(mismatched)
	return mismatched, cost
}

// compareComponent hashes one component pair under the configured
// normalizer.
func (c *Checker) compareComponent(a, b *fetched, compA, compB *Component) (bool, time.Duration) {
	if c.cfg.Normalizer == NormalizeRelocTable {
		// Hashes were precomputed per VM at parse time; comparing is free.
		return a.normHashes[compA.Name] == b.normHashes[compB.Name], 0
	}
	var cost time.Duration
	dataA, dataB := compA.Data, compB.Data
	if compA.Normalize && compB.Normalize {
		cost += perKB(len(dataA)+len(dataB), scanCostPerKB)
		// Normalize on pooled scratch buffers: a pool sweep runs O(t²)
		// comparisons over multi-hundred-KiB sections, and per-pair copies
		// would dominate the allocator.
		sa := getScratch(len(dataA))
		sb := getScratch(len(dataB))
		copy(*sa, dataA)
		copy(*sb, dataB)
		normalizePairInPlace(*sa, *sb, a.info.Base, b.info.Base)
		dataA, dataB = *sa, *sb
		defer putScratch(sa)
		defer putScratch(sb)
	}
	cost += perKB(len(dataA)+len(dataB), hashCostPerKB)
	ha := md5.Sum(dataA)
	hb := md5.Sum(dataB)
	return len(compA.Data) == len(compB.Data) && ha == hb, cost
}
