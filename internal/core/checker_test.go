package core

import (
	"sync"
	"testing"
	"time"

	"modchecker/internal/rootkit"
)

func TestVote(t *testing.T) {
	cases := []struct {
		successes, comparisons int
		want                   Verdict
	}{
		{0, 0, VerdictInconclusive},
		{3, 3, VerdictClean},
		{2, 3, VerdictClean},
		{1, 3, VerdictAltered},
		{0, 3, VerdictAltered},
		{1, 2, VerdictInconclusive}, // exact tie
		{7, 14, VerdictInconclusive},
		{8, 14, VerdictClean},
		{6, 14, VerdictAltered},
		{1, 1, VerdictClean},
		{0, 1, VerdictAltered},
	}
	for _, c := range cases {
		if got := vote(c.successes, c.comparisons); got != c.want {
			t.Errorf("vote(%d,%d) = %v, want %v", c.successes, c.comparisons, got, c.want)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictClean.String() != "CLEAN" || VerdictAltered.String() != "ALTERED" ||
		VerdictInconclusive.String() != "INCONCLUSIVE" {
		t.Error("verdict strings wrong")
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict empty")
	}
}

func TestCheckModuleCleanPool(t *testing.T) {
	_, targets := testPool(t, 5)
	c := NewChecker(Config{})
	rep, err := c.CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictClean {
		t.Fatalf("verdict %v; mismatched %v", rep.Verdict, rep.MismatchedComponents())
	}
	if rep.Successes != 4 || rep.Comparisons != 4 {
		t.Errorf("successes/comparisons = %d/%d", rep.Successes, rep.Comparisons)
	}
	for _, tally := range rep.Components {
		if tally.Mismatches != 0 || tally.Matches != 4 {
			t.Errorf("component %s: %d/%d", tally.Name, tally.Matches, tally.Mismatches)
		}
	}
	if rep.Timing.Searcher <= 0 || rep.Timing.Parser <= 0 || rep.Timing.Checker <= 0 {
		t.Errorf("timing not populated: %+v", rep.Timing)
	}
}

func TestCheckModuleInfectedTarget(t *testing.T) {
	guests, targets := testPool(t, 5)
	if err := rootkit.InfectDiskAndReload(guests[0], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(Config{})
	rep, err := c.CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictAltered {
		t.Fatalf("verdict %v", rep.Verdict)
	}
	if rep.Successes != 0 {
		t.Errorf("successes = %d", rep.Successes)
	}
	mm := rep.MismatchedComponents()
	if len(mm) != 1 || mm[0] != ".text" {
		t.Errorf("mismatched = %v", mm)
	}
	for _, p := range rep.Pairs {
		if p.Match || p.Err != nil {
			t.Errorf("pair %s: match=%v err=%v", p.PeerVM, p.Match, p.Err)
		}
	}
}

func TestCheckModuleInfectedPeer(t *testing.T) {
	// Target clean, one peer infected: verdict stays clean (majority),
	// with exactly one failing pair.
	guests, targets := testPool(t, 5)
	if err := rootkit.InfectDiskAndReload(guests[2], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(Config{})
	rep, err := c.CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictClean {
		t.Fatalf("verdict %v", rep.Verdict)
	}
	if rep.Successes != 3 || rep.Comparisons != 4 {
		t.Errorf("successes/comparisons = %d/%d", rep.Successes, rep.Comparisons)
	}
	var tally *ComponentTally
	for i := range rep.Components {
		if rep.Components[i].Name == ".text" {
			tally = &rep.Components[i]
		}
	}
	if tally == nil || tally.Mismatches != 1 || len(tally.MismatchedVMs) != 1 || tally.MismatchedVMs[0] != targets[2].Name {
		t.Errorf("tally = %+v", tally)
	}
}

func TestCheckModuleMissingOnTarget(t *testing.T) {
	_, targets := testPool(t, 3)
	c := NewChecker(Config{})
	if _, err := c.CheckModule("ghost.sys", targets[0], targets[1:]); err == nil {
		t.Error("check of missing module succeeded")
	}
}

func TestCheckModuleMissingOnPeer(t *testing.T) {
	guests, targets := testPool(t, 4)
	if err := guests[2].UnloadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(Config{})
	rep, err := c.CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	// The failed peer is excluded from the vote, not counted against.
	if rep.Comparisons != 2 || rep.Verdict != VerdictClean {
		t.Errorf("comparisons=%d verdict=%v", rep.Comparisons, rep.Verdict)
	}
	var errPair *PairResult
	for i := range rep.Pairs {
		if rep.Pairs[i].PeerVM == targets[2].Name {
			errPair = &rep.Pairs[i]
		}
	}
	if errPair == nil || errPair.Err == nil {
		t.Error("unloaded peer not reported as errored pair")
	}
}

func TestCheckModuleNoPeers(t *testing.T) {
	_, targets := testPool(t, 1)
	c := NewChecker(Config{})
	rep, err := c.CheckModule("alpha.sys", targets[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictInconclusive {
		t.Errorf("verdict with zero peers = %v", rep.Verdict)
	}
}

func TestCheckModuleParallelEquivalent(t *testing.T) {
	guests, targets := testPool(t, 6)
	if err := rootkit.InfectDiskAndReload(guests[0], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	seq, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewChecker(Config{Parallel: true}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if seq.Verdict != par.Verdict || seq.Successes != par.Successes {
		t.Errorf("parallel diverges: %v/%d vs %v/%d", seq.Verdict, seq.Successes, par.Verdict, par.Successes)
	}
}

func TestCheckModuleRelocNormalizer(t *testing.T) {
	guests, targets := testPool(t, 5)
	if err := rootkit.InfectDiskAndReload(guests[0], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{Normalizer: NormalizeRelocTable}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictAltered {
		t.Errorf("reloc-table normalizer verdict = %v", rep.Verdict)
	}
	mm := rep.MismatchedComponents()
	if len(mm) != 1 || mm[0] != ".text" {
		t.Errorf("mismatched = %v", mm)
	}
	// And a clean module stays clean.
	rep2, err := NewChecker(Config{Normalizer: NormalizeRelocTable}).CheckModule("beta.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verdict != VerdictClean {
		t.Errorf("clean module verdict = %v: %v", rep2.Verdict, rep2.MismatchedComponents())
	}
}

func TestCheckModuleMappedStrategy(t *testing.T) {
	_, targets := testPool(t, 3)
	rep, err := NewChecker(Config{Strategy: CopyMapped}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictClean {
		t.Errorf("verdict = %v", rep.Verdict)
	}
}

func TestChargeHookInvoked(t *testing.T) {
	_, targets := testPool(t, 3)
	var mu sync.Mutex
	var charged time.Duration
	c := NewChecker(Config{Charge: func(d time.Duration) time.Duration {
		mu.Lock()
		charged += d
		mu.Unlock()
		return 2 * d // pretend 2x contention
	}})
	rep, err := c.CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if charged <= 0 {
		t.Error("charge hook never invoked")
	}
	// Reported timings are the stretched values.
	if rep.Timing.Total() != 2*charged {
		t.Errorf("timing %v != 2 * charged %v", rep.Timing.Total(), charged)
	}
}

// TestElapsedModel pins the simulated-wall-clock semantics: sequential
// elapsed equals total work; parallel elapsed overlaps peer fetches and is
// strictly smaller (with >= 2 peers).
func TestElapsedModel(t *testing.T) {
	_, targets := testPool(t, 5)
	seq, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if seq.Elapsed != seq.Timing.Total() {
		t.Errorf("sequential elapsed %v != total %v", seq.Elapsed, seq.Timing.Total())
	}
	par, err := NewChecker(Config{Parallel: true}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if par.Elapsed >= seq.Elapsed {
		t.Errorf("parallel elapsed %v not below sequential %v", par.Elapsed, seq.Elapsed)
	}
	if par.Elapsed <= 0 {
		t.Error("parallel elapsed not populated")
	}
}

func TestPoolElapsedModel(t *testing.T) {
	_, targets := testPool(t, 5)
	seq, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewChecker(Config{Parallel: true}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if par.Elapsed >= seq.Elapsed {
		t.Errorf("parallel pool elapsed %v not below sequential %v", par.Elapsed, seq.Elapsed)
	}
}

func TestTimingSearcherDominates(t *testing.T) {
	_, targets := testPool(t, 4)
	rep, err := NewChecker(Config{}).CheckModule("beta.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timing.Searcher <= rep.Timing.Parser+rep.Timing.Checker {
		t.Errorf("searcher %v does not dominate parser %v + checker %v (Fig. 7 property)",
			rep.Timing.Searcher, rep.Timing.Parser, rep.Timing.Checker)
	}
}

// TestHeaderTamperDetected exercises a live header patch: corrupting one
// byte of the in-memory OPTIONAL header must flag exactly that component.
func TestHeaderTamperDetected(t *testing.T) {
	guests, targets := testPool(t, 4)
	mod := guests[0].Module("alpha.sys")
	// OPTIONAL header: e_lfanew + 4 + FileHeaderSize; patch MinorImageVersion.
	raw := make([]byte, 0x40)
	guests[0].AddressSpace().Read(mod.Base, raw)
	lfanew := uint32(raw[0x3C]) | uint32(raw[0x3D])<<8
	off := lfanew + 4 + 20 + 46 // MinorImageVersion
	if err := rootkit.PatchLiveBytes(guests[0], "alpha.sys", off, []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	mm := rep.MismatchedComponents()
	if len(mm) != 1 || mm[0] != "IMAGE_OPTIONAL_HEADER" {
		t.Errorf("mismatched = %v, want [IMAGE_OPTIONAL_HEADER]", mm)
	}
}

// TestRelocNormalizerBlindToRelocTamper documents the A2 trade-off: an
// attacker who patches code AND extends the module's own .reloc table to
// cover the patch can evade the reloc-table normalizer for address-sized
// edits, but not the paper's diff scan (which requires the same RVA on
// both sides). Here we verify the diff scan flags a 4-byte patch that the
// attacker disguised as a "relocation".
func TestRelocNormalizerBlindToRelocTamper(t *testing.T) {
	guests, targets := testPool(t, 3)
	mod := guests[0].Module("alpha.sys")
	// Overwrite 4 code bytes with (base + bogus RVA): looks like a
	// plausible address, but peers hold different bytes there.
	patch := []byte{0x00, 0x30, 0x00, 0x00}
	addr := mod.Base + 0x3000
	patch[0] = byte(addr)
	patch[1] = byte(addr >> 8)
	patch[2] = byte(addr >> 16)
	patch[3] = byte(addr >> 24)
	if err := rootkit.PatchLiveBytes(guests[0], "alpha.sys", 0x1100, patch); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], targets[1:])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictAltered {
		t.Errorf("diff scan missed a disguised-address patch: %v", rep.Verdict)
	}
}

// TestCheckModulePeerOrderInvariant: the verdict and per-component tallies
// must not depend on peer ordering.
func TestCheckModulePeerOrderInvariant(t *testing.T) {
	guests, targets := testPool(t, 5)
	if err := rootkit.InfectDiskAndReload(guests[3], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	perms := [][]Target{
		{targets[1], targets[2], targets[3], targets[4]},
		{targets[4], targets[3], targets[2], targets[1]},
		{targets[3], targets[1], targets[4], targets[2]},
	}
	var first *ModuleReport
	for i, peers := range perms {
		rep, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], peers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rep
			continue
		}
		if rep.Verdict != first.Verdict || rep.Successes != first.Successes {
			t.Errorf("perm %d: %v/%d vs %v/%d", i, rep.Verdict, rep.Successes, first.Verdict, first.Successes)
		}
	}
}

// TestCheckSelfComparison: comparing a VM against itself always matches
// (identical bases short-circuit the normalization).
func TestCheckSelfComparison(t *testing.T) {
	_, targets := testPool(t, 1)
	rep, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], []Target{targets[0]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Successes != 1 || rep.Verdict != VerdictClean {
		t.Errorf("self comparison: %v %d/%d", rep.Verdict, rep.Successes, rep.Comparisons)
	}
}
