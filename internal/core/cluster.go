package core

import (
	"fmt"
	"sort"
)

// The paper assumes every VM in the pool runs the same module version; a
// rolling fleet update breaks that assumption mid-flight, and the plain
// majority vote would flag half the cloud. ClusterPool generalizes the
// comparison: copies are grouped into equivalence clusters (full component
// agreement after RVA normalization), so operators can tell "two
// self-consistent versions" (a rolling update) from "one VM disagrees with
// everyone" (an infection) at a glance.

// Cluster is one group of VMs whose module copies are mutually identical.
type Cluster struct {
	VMs []string
	// Representative is the VM whose copy stands for the cluster.
	Representative string
}

// Size returns the number of VMs in the cluster.
func (c *Cluster) Size() int { return len(c.VMs) }

// ClusterReport is the outcome of a version-aware pool sweep.
type ClusterReport struct {
	ModuleName string
	// Clusters sorted by size, largest first.
	Clusters []Cluster
	// MajorityCluster indexes the cluster holding a strict majority of
	// the pool, or -1 if none.
	MajorityCluster int
	// Flagged lists VMs outside the majority cluster (when one exists):
	// the paper's verdict generalized.
	Flagged []string
	// Suspicious lists singleton clusters: whether or not a majority
	// exists, a copy that matches *no other VM* is the prime infection
	// suspect — in a rolling update the legitimate versions each hold
	// several VMs.
	Suspicious []string
	// Errors records VMs that could not be checked.
	Errors map[string]error
}

// ClusterPool fetches the module from every VM and groups identical copies.
//
//modsafe:charged
func (c *Checker) ClusterPool(module string, vms []Target) (*ClusterReport, error) {
	if len(vms) < 2 {
		return nil, fmt.Errorf("core: cluster check of %s needs at least 2 VMs", module)
	}
	// Fetch fan-out is bounded by the checker's worker cap, like CheckPool's.
	fetches, _ := c.fetchStage(module, vms)

	rep := &ClusterReport{ModuleName: module, MajorityCluster: -1, Errors: map[string]error{}}
	// Greedy clustering against each cluster's representative fetch.
	var reps []*fetched
	var clusters []Cluster
	for i, f := range fetches {
		if f.err != nil {
			rep.Errors[vms[i].Name] = f.err
			continue
		}
		placed := false
		for ci, rf := range reps {
			mm, cost := c.compare(rf, f)
			c.charge(cost)
			if len(mm) == 0 {
				clusters[ci].VMs = append(clusters[ci].VMs, vms[i].Name)
				placed = true
				break
			}
		}
		if !placed {
			reps = append(reps, f)
			clusters = append(clusters, Cluster{
				VMs:            []string{vms[i].Name},
				Representative: vms[i].Name,
			})
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool { return len(clusters[i].VMs) > len(clusters[j].VMs) })
	rep.Clusters = clusters

	checked := 0
	for _, cl := range clusters {
		checked += cl.Size()
	}
	if len(clusters) > 0 && 2*clusters[0].Size() > checked {
		rep.MajorityCluster = 0
		for ci := 1; ci < len(clusters); ci++ {
			rep.Flagged = append(rep.Flagged, clusters[ci].VMs...)
		}
		sort.Strings(rep.Flagged)
	}
	// Singletons are suspicious regardless of majority: even when a
	// legitimate minority version exists, a copy agreeing with nobody
	// warrants the paper's "deeper analysis" escalation first.
	for ci, cl := range clusters {
		if cl.Size() == 1 && ci != rep.MajorityCluster {
			rep.Suspicious = append(rep.Suspicious, cl.VMs[0])
		}
	}
	sort.Strings(rep.Suspicious)
	// The report aliases nothing from the fetches (names, errors, and
	// scalars only), so the module buffers go back to the pool here instead
	// of leaking one SizeOfImage-sized buffer per VM per sweep.
	for _, f := range fetches {
		c.releaseFetched(f)
	}
	return rep, nil
}
