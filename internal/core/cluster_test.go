package core

import (
	"runtime/debug"
	"sync/atomic"
	"testing"

	"modchecker/internal/faults"
	"modchecker/internal/guest"
	"modchecker/internal/pe"
	"modchecker/internal/rootkit"
)

// updateModuleOn swaps alpha.sys on a guest for the "v2" build and
// reloads, modeling one VM of a rolling update.
func updateModuleOn(t testing.TB, g *guest.Guest) {
	t.Helper()
	v2, err := guest.BuildImage(guest.ModuleSpec{
		Name: "alpha-v2", TextSize: 20 << 10, DataSize: 4 << 10, RdataSize: 2 << 10,
		PreferredBase: 0x10000, Marker: true,
		Imports: []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{"ZwClose"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ReplaceDiskImage("alpha.sys", v2); err != nil {
		t.Fatal(err)
	}
	if err := g.UnloadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.LoadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
}

func infectOn(t testing.TB, g *guest.Guest) {
	t.Helper()
	if err := rootkit.InfectDiskAndReload(g, "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPoolClean(t *testing.T) {
	_, targets := testPool(t, 5)
	rep, err := NewChecker(Config{}).ClusterPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 1 || rep.Clusters[0].Size() != 5 {
		t.Fatalf("clusters = %+v", rep.Clusters)
	}
	if rep.MajorityCluster != 0 || len(rep.Flagged) != 0 || len(rep.Suspicious) != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestClusterPoolSingleInfection(t *testing.T) {
	guests, targets := testPool(t, 5)
	infectOn(t, guests[2])
	rep, err := NewChecker(Config{}).ClusterPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 2 {
		t.Fatalf("clusters = %+v", rep.Clusters)
	}
	if rep.Clusters[0].Size() != 4 || rep.Clusters[1].Size() != 1 {
		t.Errorf("cluster sizes %d/%d", rep.Clusters[0].Size(), rep.Clusters[1].Size())
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != targets[2].Name {
		t.Errorf("flagged = %v", rep.Flagged)
	}
}

// TestClusterPoolRollingUpdate is the scenario the plain majority vote
// cannot express: half the fleet runs v2, half still v1 — two large
// self-consistent clusters, nothing flagged, nothing suspicious.
func TestClusterPoolRollingUpdate(t *testing.T) {
	guests, targets := testPool(t, 6)
	for i := 0; i < 3; i++ {
		updateModuleOn(t, guests[i])
	}
	rep, err := NewChecker(Config{}).ClusterPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 2 || rep.Clusters[0].Size() != 3 || rep.Clusters[1].Size() != 3 {
		t.Fatalf("clusters = %+v", rep.Clusters)
	}
	if rep.MajorityCluster != -1 {
		t.Errorf("majority cluster = %d, want none", rep.MajorityCluster)
	}
	if len(rep.Flagged) != 0 || len(rep.Suspicious) != 0 {
		t.Errorf("flagged=%v suspicious=%v for a legitimate rolling update", rep.Flagged, rep.Suspicious)
	}
	// Contrast: the plain pool sweep sees a hopeless split.
	plain, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Flagged)+len(plain.Inconclusive) == 0 {
		t.Error("plain sweep unexpectedly clean on a split pool")
	}
}

// TestClusterPoolUpdatePlusInfection: mid-rolling-update, one VM is also
// infected — three clusters, with the singleton marked suspicious.
func TestClusterPoolUpdatePlusInfection(t *testing.T) {
	guests, targets := testPool(t, 7)
	for i := 0; i < 3; i++ {
		updateModuleOn(t, guests[i])
	}
	infectOn(t, guests[5])
	rep, err := NewChecker(Config{}).ClusterPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 3 {
		t.Fatalf("clusters = %+v", rep.Clusters)
	}
	if len(rep.Suspicious) != 1 || rep.Suspicious[0] != targets[5].Name {
		t.Errorf("suspicious = %v", rep.Suspicious)
	}
}

func TestClusterPoolWithFaultyVM(t *testing.T) {
	guests, targets := testPool(t, 4)
	p := faults.NewPlan(1)
	p.FailForever(guests[2].Name(), 5)
	targets[2] = planTarget(guests[2], p)
	rep, err := NewChecker(Config{}).ClusterPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Errors[targets[2].Name]; !ok {
		t.Errorf("faulty VM not in Errors: %+v", rep.Errors)
	}
	if len(rep.Clusters) != 1 || rep.Clusters[0].Size() != 3 {
		t.Errorf("clusters = %+v", rep.Clusters)
	}
}

func TestClusterPoolTooSmall(t *testing.T) {
	_, targets := testPool(t, 1)
	if _, err := NewChecker(Config{}).ClusterPool("alpha.sys", targets); err == nil {
		t.Error("pool of 1 accepted")
	}
}

func TestClusterPoolParallel(t *testing.T) {
	guests, targets := testPool(t, 5)
	infectOn(t, guests[1])
	rep, err := NewChecker(Config{Parallel: true}).ClusterPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != targets[1].Name {
		t.Errorf("flagged = %v", rep.Flagged)
	}
}

// TestClusterPoolRecyclesFetchBuffers pins the fix for a sweep-scale pool
// leak: ClusterPool used to drop its fetch records on the floor after
// clustering, allocating a fresh SizeOfImage-sized buffer per VM per
// sweep. With GC disabled so the pool cannot be flushed between runs, a
// second identical sweep must be served entirely from the buffers the
// first sweep recycled — zero fetchBufPool misses.
func TestClusterPoolRecyclesFetchBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops a quarter of all Puts by design; the zero-miss invariant only holds in plain builds")
	}
	_, targets := testPool(t, 5)
	checker := NewChecker(Config{})

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var misses atomic.Int64
	oldNew := fetchBufPool.New
	fetchBufPool.New = func() any { misses.Add(1); return new([]byte) }
	defer func() { fetchBufPool.New = oldNew }()

	if _, err := checker.ClusterPool("alpha.sys", targets); err != nil {
		t.Fatal(err)
	}
	warm := misses.Load()
	if _, err := checker.ClusterPool("alpha.sys", targets); err != nil {
		t.Fatal(err)
	}
	if got := misses.Load() - warm; got != 0 {
		t.Errorf("second ClusterPool sweep allocated %d fresh fetch buffers; all %d from the first sweep should have been recycled", got, warm)
	}
}
