package core

import (
	"testing"

	"modchecker/internal/guest"
	"modchecker/internal/pe"
	"modchecker/internal/vmi"
)

// testDisk builds a compact golden disk shared by core tests: one marker
// module and one plain module, both with relocations and imports.
func testDisk(t testing.TB) map[string][]byte {
	t.Helper()
	disk := map[string][]byte{}
	for _, spec := range []guest.ModuleSpec{
		{Name: "alpha.sys", TextSize: 16 << 10, DataSize: 4 << 10, RdataSize: 2 << 10,
			PreferredBase: 0x10000, Marker: true,
			Imports: []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{"ZwClose"}}}},
		{Name: "beta.sys", TextSize: 24 << 10, DataSize: 8 << 10, RdataSize: 2 << 10,
			PreferredBase: 0x10000,
			Imports:       []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{"IoCreateDevice"}}}},
	} {
		img, err := guest.BuildImage(spec)
		if err != nil {
			t.Fatal(err)
		}
		disk[spec.Name] = img
	}
	return disk
}

// pool boots n identical guests and opens a VMI target on each.
func testPool(t testing.TB, n int) ([]*guest.Guest, []Target) {
	t.Helper()
	disk := testDisk(t)
	profile := vmi.XPSP2Profile(guest.PsLoadedModuleListVA)
	guests := make([]*guest.Guest, n)
	targets := make([]Target, n)
	for i := 0; i < n; i++ {
		g, err := guest.New(guest.Config{
			Name:     "vm" + string(rune('1'+i)),
			MemBytes: 16 << 20,
			BootSeed: int64(i+1) * 7919,
			Disk:     disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		guests[i] = g
		targets[i] = Target{
			Name:   g.Name(),
			Handle: vmi.Open(g.Name(), g.Phys(), g.CR3(), profile),
		}
	}
	return guests, targets
}
