package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"modchecker/internal/guest"
	"modchecker/internal/mm"
	"modchecker/internal/nt"
	"modchecker/internal/vmi"
)

// faultyReader wraps a PhysReader and fails every read after the first n.
type faultyReader struct {
	inner mm.PhysReader
	n     int
	count int
}

var errInjected = errors.New("injected memory fault")

func (f *faultyReader) ReadPhys(pa uint32, b []byte) error {
	f.count++
	if f.count > f.n {
		return fmt.Errorf("%w at %#x", errInjected, pa)
	}
	return f.inner.ReadPhys(pa, b)
}

// faultyTarget opens a target whose physical reads start failing after n
// successful reads — modeling a VM that is being destroyed or migrated
// mid-check.
func faultyTarget(t testing.TB, g *guest.Guest, n int) Target {
	t.Helper()
	h := vmi.Open(g.Name(), &faultyReader{inner: g.Phys(), n: n}, g.CR3(),
		vmi.XPSP2Profile(guest.PsLoadedModuleListVA))
	return Target{Name: g.Name(), Handle: h}
}

func TestSearcherFailsCleanlyOnMemoryFault(t *testing.T) {
	guests, _ := testPool(t, 1)
	// First measure how many physical reads a healthy fetch needs.
	counter := &faultyReader{inner: guests[0].Phys(), n: 1 << 30}
	h := vmi.Open("count", counter, guests[0].CR3(), vmi.XPSP2Profile(guest.PsLoadedModuleListVA))
	if _, _, _, err := NewSearcher(h, CopyPageWise).FetchModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	total := counter.count
	// Inject faults at several points strictly before completion: at the
	// very start, during the list walk, and mid-copy.
	for _, n := range []int{0, 1, 5, total / 2, total - 1} {
		ft := faultyTarget(t, guests[0], n)
		s := NewSearcher(ft.Handle, CopyPageWise)
		if _, _, _, err := s.FetchModule("alpha.sys"); err == nil {
			t.Errorf("fetch with faults after %d/%d reads succeeded", n, total)
		} else if !errors.Is(err, errInjected) {
			t.Errorf("fault not propagated: %v", err)
		}
	}
}

func TestCheckModuleTargetFaultIsError(t *testing.T) {
	guests, targets := testPool(t, 3)
	ft := faultyTarget(t, guests[0], 10)
	if _, err := NewChecker(Config{}).CheckModule("alpha.sys", ft, targets[1:]); err == nil {
		t.Error("check with faulting target succeeded")
	}
}

func TestCheckModulePeerFaultExcluded(t *testing.T) {
	guests, targets := testPool(t, 4)
	// Peer 2's memory faults mid-copy; the vote proceeds over the rest.
	peers := []Target{targets[1], faultyTarget(t, guests[2], 20), targets[3]}
	rep, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparisons != 2 || rep.Verdict != VerdictClean {
		t.Errorf("comparisons=%d verdict=%v", rep.Comparisons, rep.Verdict)
	}
	var faulted bool
	for _, p := range rep.Pairs {
		if p.Err != nil && errors.Is(p.Err, errInjected) {
			faulted = true
		}
	}
	if !faulted {
		t.Error("fault not recorded in pair results")
	}
}

func TestCheckPoolWithFaultyVM(t *testing.T) {
	guests, targets := testPool(t, 4)
	targets[1] = faultyTarget(t, guests[1], 20)
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Inconclusive {
		if n == targets[1].Name {
			found = true
		}
	}
	if !found {
		t.Errorf("faulty VM not inconclusive: %+v", rep.Inconclusive)
	}
	if len(rep.Flagged) != 0 {
		t.Errorf("healthy VMs flagged: %v", rep.Flagged)
	}
}

// TestSearcherRejectsHostileSizeOfImage: an attacker who rewrites the LDR
// entry's SizeOfImage to an absurd value must cause a clean failure, not a
// multi-gigabyte allocation.
func TestSearcherRejectsHostileSizeOfImage(t *testing.T) {
	guests, targets := testPool(t, 1)
	g := guests[0]
	mod := g.Module("alpha.sys")
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 0x7FFFFFFF)
	if err := g.AddressSpace().Write(mod.LdrEntryVA+nt.OffSizeOfImage, huge[:]); err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	_, _, _, err := s.FetchModule("alpha.sys")
	if err == nil {
		t.Fatal("hostile SizeOfImage accepted")
	}
	if !strings.Contains(err.Error(), "SizeOfImage") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSearcherRejectsZeroSizeOfImage(t *testing.T) {
	guests, targets := testPool(t, 1)
	g := guests[0]
	mod := g.Module("alpha.sys")
	if err := g.AddressSpace().Write(mod.LdrEntryVA+nt.OffSizeOfImage, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	if _, _, _, err := s.FetchModule("alpha.sys"); err == nil {
		t.Error("zero SizeOfImage accepted")
	}
}

// TestCheckPoolHostileLdrEntryFlagsVM: tampering the LDR metadata itself
// (shrinking SizeOfImage so part of the module escapes hashing) must still
// surface as a mismatch, because peers report the true size and the parsed
// component sets/length differ.
func TestCheckPoolHostileLdrShrink(t *testing.T) {
	guests, targets := testPool(t, 4)
	g := guests[0]
	mod := g.Module("alpha.sys")
	// Shrink by one page: section data near the end is cut off.
	var shrunk [4]byte
	binary.LittleEndian.PutUint32(shrunk[:], mod.SizeOfImage-mm.PageSize)
	if err := g.AddressSpace().Write(mod.LdrEntryVA+nt.OffSizeOfImage, shrunk[:]); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, f := range rep.Flagged {
		if f == targets[0].Name {
			flagged = true
		}
	}
	inconclusive := false
	for _, f := range rep.Inconclusive {
		if f == targets[0].Name {
			inconclusive = true
		}
	}
	if !flagged && !inconclusive {
		t.Errorf("LDR-shrunk VM escaped detection: flagged=%v inconclusive=%v",
			rep.Flagged, rep.Inconclusive)
	}
}
