package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"modchecker/internal/faults"
	"modchecker/internal/guest"
	"modchecker/internal/mm"
	"modchecker/internal/nt"
	"modchecker/internal/vmi"
)

// planTarget opens a VMI target whose physical reads pass through the fault
// plan's schedule for that VM. The plan's reader is goroutine-safe, so these
// targets are valid under the parallel driver.
func planTarget(g *guest.Guest, p *faults.Plan) Target {
	h := vmi.Open(g.Name(), p.Reader(g.Name(), g.Phys()), g.CR3(),
		vmi.XPSP2Profile(guest.PsLoadedModuleListVA))
	return Target{Name: g.Name(), Handle: h}
}

func TestSearcherFailsCleanlyOnMemoryFault(t *testing.T) {
	guests, _ := testPool(t, 1)
	vm := guests[0].Name()
	// First measure how many physical reads a healthy fetch needs.
	probe := faults.NewPlan(1)
	pt := planTarget(guests[0], probe)
	if _, _, _, err := NewSearcher(pt.Handle, CopyPageWise).FetchModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	total := probe.Reads(vm)
	// Inject permanent faults at several points strictly before completion:
	// at the very start, during the list walk, and mid-copy.
	for _, n := range []uint64{0, 1, 5, total / 2, total - 1} {
		p := faults.NewPlan(1)
		p.FailForever(vm, n)
		ft := planTarget(guests[0], p)
		if _, _, _, err := NewSearcher(ft.Handle, CopyPageWise).FetchModule("alpha.sys"); err == nil {
			t.Errorf("fetch with faults after %d/%d reads succeeded", n, total)
		} else if !errors.Is(err, faults.ErrInjectedPermanent) {
			t.Errorf("fault not propagated: %v", err)
		}
	}
}

func TestSearcherRetriesTransientFault(t *testing.T) {
	guests, _ := testPool(t, 1)
	vm := guests[0].Name()

	// Without a retry policy the transient window is fatal.
	p := faults.NewPlan(1)
	p.FailReads(vm, 0, 2)
	ft := planTarget(guests[0], p)
	if _, _, _, err := NewSearcher(ft.Handle, CopyPageWise).FetchModule("alpha.sys"); !errors.Is(err, faults.ErrInjectedTransient) {
		t.Fatalf("no-retry fetch: %v, want transient injected fault", err)
	}

	// With retries the window is crossed: each failing attempt consumes one
	// read, so a 2-read window falls inside a 3-attempt budget. The backoff
	// rides home in the returned nominal cost — simulated time, not a sleep.
	probe := faults.NewPlan(1)
	st := planTarget(guests[0], probe)
	_, _, healthyCost, err := NewSearcher(st.Handle, CopyPageWise).FetchModule("alpha.sys")
	if err != nil {
		t.Fatal(err)
	}
	p2 := faults.NewPlan(1)
	p2.FailReads(vm, 0, 2)
	rt := planTarget(guests[0], p2)
	policy := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	_, buf, cost, err := NewSearcher(rt.Handle, CopyPageWise).WithRetry(policy).FetchModule("alpha.sys")
	if err != nil {
		t.Fatalf("retried fetch failed: %v", err)
	}
	if len(buf) == 0 {
		t.Fatal("retried fetch returned no bytes")
	}
	// Two failed attempts -> backoff of 1ms then 2ms on top of the work.
	if cost < healthyCost+3*time.Millisecond {
		t.Errorf("cost %v does not include backoff (healthy fetch costs %v)", cost, healthyCost)
	}
}

func TestSearcherDoesNotRetryPermanentFault(t *testing.T) {
	guests, _ := testPool(t, 1)
	vm := guests[0].Name()
	p := faults.NewPlan(1)
	p.FailForever(vm, 0)
	ft := planTarget(guests[0], p)
	policy := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}
	if _, _, _, err := NewSearcher(ft.Handle, CopyPageWise).WithRetry(policy).FetchModule("alpha.sys"); !errors.Is(err, faults.ErrInjectedPermanent) {
		t.Fatalf("err = %v, want permanent injected fault", err)
	}
	// A permanent fault must burn exactly one attempt: one read consumed.
	if got := p.Reads(vm); got != 1 {
		t.Errorf("plan observed %d reads, want 1 (no retries on permanent faults)", got)
	}
}

// TestSearcherVerifyDetectsTornRead: without verified reads a torn copy is
// silently wrong; with them the fetch fails transiently instead of returning
// corrupt bytes.
func TestSearcherVerifyDetectsTornRead(t *testing.T) {
	guests, _ := testPool(t, 1)
	g := guests[0]
	vm := g.Name()
	mod := g.Module("alpha.sys")
	want := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, want); err != nil {
		t.Fatal(err)
	}

	p := faults.NewPlan(2)
	p.TornWindow(vm, 0, 1<<40)
	ft := planTarget(g, p)
	_, buf, _, err := NewSearcher(ft.Handle, CopyPageWise).FetchModule("alpha.sys")
	if err != nil {
		t.Fatalf("unverified fetch of torn module errored: %v", err)
	}
	if bytes.Equal(buf, want) {
		t.Fatal("torn window had no effect; test is vacuous")
	}

	p2 := faults.NewPlan(2)
	p2.TornWindow(vm, 0, 1<<40)
	vt := planTarget(g, p2)
	s := NewSearcher(vt.Handle, CopyPageWise).WithRetry(RetryPolicy{MaxAttempts: 1, VerifyReads: true})
	if _, _, _, err := s.FetchModule("alpha.sys"); !errors.Is(err, vmi.ErrTornRead) {
		t.Fatalf("verified fetch: %v, want ErrTornRead", err)
	} else if !faults.IsTransient(err) {
		t.Error("torn read not classified transient")
	}
}

func TestCheckModuleTargetFaultIsError(t *testing.T) {
	guests, targets := testPool(t, 3)
	p := faults.NewPlan(1)
	p.FailForever(guests[0].Name(), 10)
	ft := planTarget(guests[0], p)
	if _, err := NewChecker(Config{}).CheckModule("alpha.sys", ft, targets[1:]); err == nil {
		t.Error("check with faulting target succeeded")
	}
}

func TestCheckModulePeerFaultExcluded(t *testing.T) {
	guests, targets := testPool(t, 4)
	// Peer 2's memory faults mid-copy; the vote proceeds over the rest.
	p := faults.NewPlan(1)
	p.FailForever(guests[2].Name(), 20)
	peers := []Target{targets[1], planTarget(guests[2], p), targets[3]}
	rep, err := NewChecker(Config{}).CheckModule("alpha.sys", targets[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparisons != 2 || rep.Verdict != VerdictClean {
		t.Errorf("comparisons=%d verdict=%v", rep.Comparisons, rep.Verdict)
	}
	var faulted bool
	for _, pr := range rep.Pairs {
		if pr.Err != nil && errors.Is(pr.Err, faults.ErrInjectedPermanent) {
			faulted = true
			if pr.ErrClass != faults.ClassPermanent {
				t.Errorf("pair error class = %v, want permanent", pr.ErrClass)
			}
		}
	}
	if !faulted {
		t.Error("fault not recorded in pair results")
	}
}

func TestCheckPoolWithFaultyVM(t *testing.T) {
	guests, targets := testPool(t, 4)
	p := faults.NewPlan(1)
	p.FailForever(guests[1].Name(), 20)
	targets[1] = planTarget(guests[1], p)
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Errored {
		if n == targets[1].Name {
			found = true
		}
	}
	if !found {
		t.Errorf("faulty VM not errored: %+v", rep.Errored)
	}
	r := rep.Report(targets[1].Name)
	if r.Verdict != VerdictError || r.Err == nil || r.ErrClass != faults.ClassPermanent {
		t.Errorf("faulty VM report: verdict=%v err=%v class=%v", r.Verdict, r.Err, r.ErrClass)
	}
	if len(rep.Flagged) != 0 {
		t.Errorf("healthy VMs flagged: %v", rep.Flagged)
	}
	if rep.Healthy != 3 {
		t.Errorf("Healthy = %d, want 3", rep.Healthy)
	}
}

// TestCheckPoolTornVMErrsInsteadOfFlagging: a VM whose reads tear forever
// must not masquerade as an infection. Without verified reads its corrupt
// copy splits from the pool; with verify + retry the pipeline reports it as
// a transient error and the healthy majority stays clean.
func TestCheckPoolTornVMErrsInsteadOfFlagging(t *testing.T) {
	guests, _ := testPool(t, 4)
	torn := guests[1].Name()

	mkTargets := func(p *faults.Plan) []Target {
		out := make([]Target, len(guests))
		for i, g := range guests {
			out[i] = planTarget(g, p)
		}
		return out
	}

	p := faults.NewPlan(9)
	p.TornWindow(torn, 0, 1<<40)
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", mkTargets(p))
	if err != nil {
		t.Fatal(err)
	}
	if r := rep.Report(torn); r.Verdict == VerdictClean {
		t.Error("torn VM reported clean without verification")
	}
	for _, f := range rep.Flagged {
		if f != torn {
			t.Errorf("healthy VM %s flagged because of a torn peer", f)
		}
	}

	p2 := faults.NewPlan(9)
	p2.TornWindow(torn, 0, 1<<40)
	rep2, err := NewChecker(Config{
		Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, VerifyReads: true},
	}).CheckPool("alpha.sys", mkTargets(p2))
	if err != nil {
		t.Fatal(err)
	}
	r := rep2.Report(torn)
	if r.Verdict != VerdictError || r.ErrClass != faults.ClassTransient {
		t.Errorf("torn VM with verify: verdict=%v class=%v, want transient error", r.Verdict, r.ErrClass)
	}
	if len(rep2.Flagged) != 0 {
		t.Errorf("flagged = %v, want none", rep2.Flagged)
	}
	for _, vm := range []string{guests[0].Name(), guests[2].Name(), guests[3].Name()} {
		if rep2.Report(vm).Verdict != VerdictClean {
			t.Errorf("%s: %v, want clean", vm, rep2.Report(vm).Verdict)
		}
	}
}

// TestCheckPoolQuorumDegradation: when peer failures shrink the healthy pool
// below MinPeers, verdicts degrade to Inconclusive rather than trusting a
// one-peer majority.
func TestCheckPoolQuorumDegradation(t *testing.T) {
	guests, targets := testPool(t, 4)
	p := faults.NewPlan(1)
	p.FailForever(guests[2].Name(), 0)
	p.FailForever(guests[3].Name(), 0)
	targets[2] = planTarget(guests[2], p)
	targets[3] = planTarget(guests[3], p)

	// Default quorum: the two survivors vouch for each other.
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report(targets[0].Name).Verdict != VerdictClean {
		t.Errorf("default quorum: %v, want clean", rep.Report(targets[0].Name).Verdict)
	}

	// MinPeers 2: one surviving peer is not enough for a conclusive verdict.
	p2 := faults.NewPlan(1)
	p2.FailForever(guests[2].Name(), 0)
	p2.FailForever(guests[3].Name(), 0)
	targets[2] = planTarget(guests[2], p2)
	targets[3] = planTarget(guests[3], p2)
	rep2, err := NewChecker(Config{Quorum: QuorumPolicy{MinPeers: 2}}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range []string{targets[0].Name, targets[1].Name} {
		if rep2.Report(vm).Verdict != VerdictInconclusive {
			t.Errorf("%s under MinPeers=2: %v, want inconclusive", vm, rep2.Report(vm).Verdict)
		}
	}
	if len(rep2.Errored) != 2 {
		t.Errorf("errored = %v, want the two failed VMs", rep2.Errored)
	}
}

// TestPoolRobustnessProperty is the randomized safety net: across seeded
// fault schedules and pool sizes, a pool sweep with the default retry policy
// never flags a healthy VM and never panics. Fault schedules are themselves
// seeded, so a failure here is replayable from the log line alone.
func TestPoolRobustnessProperty(t *testing.T) {
	for _, size := range []int{3, 5} {
		guests, _ := testPool(t, size)
		for seed := int64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewSource(seed * 1000003))
			p := faults.NewPlan(seed)
			faulty := map[string]bool{}
			nf := 1 + rng.Intn(size/2)
			for i := 0; i < nf; i++ {
				g := guests[rng.Intn(size)]
				faulty[g.Name()] = true
				switch rng.Intn(4) {
				case 0:
					p.FailForever(g.Name(), uint64(rng.Intn(50)))
				case 1:
					p.FailReads(g.Name(), uint64(rng.Intn(20)), uint64(20+rng.Intn(500)))
				case 2:
					p.FlakyReads(g.Name(), 0.05+0.3*rng.Float64())
				case 3:
					p.TornWindow(g.Name(), 0, uint64(1+rng.Intn(2000)))
				}
			}
			targets := make([]Target, size)
			for i, g := range guests {
				targets[i] = planTarget(g, p)
			}
			rep, err := NewChecker(Config{
				Retry:    DefaultRetryPolicy(),
				Parallel: seed%2 == 0,
			}).CheckPool("alpha.sys", targets)
			if err != nil {
				t.Fatalf("size %d seed %d: %v", size, seed, err)
			}
			for _, f := range rep.Flagged {
				if !faulty[f] {
					t.Errorf("size %d seed %d: healthy VM %s flagged", size, seed, f)
				}
			}
		}
	}
}

// TestSearcherRejectsHostileSizeOfImage: an attacker who rewrites the LDR
// entry's SizeOfImage to an absurd value must cause a clean failure, not a
// multi-gigabyte allocation.
func TestSearcherRejectsHostileSizeOfImage(t *testing.T) {
	guests, targets := testPool(t, 1)
	g := guests[0]
	mod := g.Module("alpha.sys")
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 0x7FFFFFFF)
	if err := g.AddressSpace().Write(mod.LdrEntryVA+nt.OffSizeOfImage, huge[:]); err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	_, _, _, err := s.FetchModule("alpha.sys")
	if err == nil {
		t.Fatal("hostile SizeOfImage accepted")
	}
	if !strings.Contains(err.Error(), "SizeOfImage") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSearcherRejectsZeroSizeOfImage(t *testing.T) {
	guests, targets := testPool(t, 1)
	g := guests[0]
	mod := g.Module("alpha.sys")
	if err := g.AddressSpace().Write(mod.LdrEntryVA+nt.OffSizeOfImage, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	if _, _, _, err := s.FetchModule("alpha.sys"); err == nil {
		t.Error("zero SizeOfImage accepted")
	}
}

// TestCheckPoolHostileLdrEntryFlagsVM: tampering the LDR metadata itself
// (shrinking SizeOfImage so part of the module escapes hashing) must still
// surface, because peers report the true size and the parsed component
// sets/length differ.
func TestCheckPoolHostileLdrShrink(t *testing.T) {
	guests, targets := testPool(t, 4)
	g := guests[0]
	mod := g.Module("alpha.sys")
	// Shrink by one page: section data near the end is cut off.
	var shrunk [4]byte
	binary.LittleEndian.PutUint32(shrunk[:], mod.SizeOfImage-mm.PageSize)
	if err := g.AddressSpace().Write(mod.LdrEntryVA+nt.OffSizeOfImage, shrunk[:]); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	detected := false
	for _, lists := range [][]string{rep.Flagged, rep.Inconclusive, rep.Errored} {
		for _, f := range lists {
			if f == targets[0].Name {
				detected = true
			}
		}
	}
	if !detected {
		t.Errorf("LDR-shrunk VM escaped detection: flagged=%v inconclusive=%v errored=%v",
			rep.Flagged, rep.Inconclusive, rep.Errored)
	}
}
