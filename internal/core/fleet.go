package core

// This file holds the sharded fleet engine: the pool-sweep path that scales
// past the paper's 15-VM testbed to fleets of 100k clones. Three ideas
// compose, each independently switchable through Config:
//
//   - Sharding (Config.ShardSize): the fetch+digest work of one module is
//     driven in shards of at most ShardSize VMs, so only O(ShardSize +
//     clusters) module copies are ever resident instead of O(pool). Digest
//     equality against the pool-wide reference implies a pairwise match, so
//     per-shard clusters compose into pool-wide clusters without any
//     cross-shard re-comparison, and because every VM digests against the
//     same global reference in pool order, the concatenated shard results
//     are exactly the flat clustered path's results — reports and traces
//     come out byte-identical (the differential tests pin this).
//
//   - Lean reports (Config.LeanReports): verdicts fall out of cluster
//     sizes in O(clusters² + pool); only non-clean VMs materialize a
//     ModuleReport. Simulated costs and verdicts are unchanged.
//
//   - Identity dedup (Config.DedupIdentical): copy-on-write clones that
//     still share their template's frozen image (Target.Identity) are
//     introspected once per identity group — the Dom0 frame-table
//     consultation that makes the sweep's cost O(templates), not O(pool).

import (
	"sort"
	"time"

	"modchecker/internal/faults"
)

// clusterPair identifies one unordered pair of digest clusters (a < b).
type clusterPair struct{ a, b int }

// checkModuleFleet checks one module across the session's pool with the
// sharded engine. It reproduces the flat clustered path's observable
// behavior exactly (same charges in the same per-VM order, same stage
// traces, same reports) while bounding resident module copies to
// O(ShardSize + clusters).
func (ps *PoolSweep) checkModuleFleet(module string) *PoolReport {
	c := ps.c
	n := len(ps.vms)
	shard := c.cfg.ShardSize
	if shard <= 0 || shard > n {
		shard = n
	}

	rep := &PoolReport{ModuleName: module}
	errs := make([]error, n)
	bases := make([]uint32, n)
	clusterOf := make([]int, n) // -1: fetch failed
	fetchCosts := make([]time.Duration, n)
	var digestIdx []int // VM index per digest task, pool order
	var digestCosts []time.Duration
	var checkerWork time.Duration
	var ref *fetched    // pool-wide reference: first healthy fetch
	var reps []*fetched // cluster representatives; reps[0] == ref
	var repVM []int     // representative's VM index per cluster
	byKey := make(map[string]int)
	for i := range clusterOf {
		clusterOf[i] = -1
	}

	shardFetches := make([]*fetched, shard)
	for lo := 0; lo < n; lo += shard {
		hi := lo + shard
		if hi > n {
			hi = n
		}
		width := hi - lo
		fetchOne := func(k int) {
			if i := lo + k; ps.leader[i] == i {
				shardFetches[k] = ps.fetchVM(i, module)
			} else {
				shardFetches[k] = nil // identity dup: shares the leader's outcome
			}
		}
		if c.cfg.Parallel {
			runBounded("fetch", width, c.workers(), fetchOne)
		} else {
			for k := 0; k < width; k++ {
				fetchOne(k)
			}
		}

		// Bookkeeping in pool order: costs, errors, reference selection.
		var toDigest []int
		for i := lo; i < hi; i++ {
			if ps.leader[i] != i {
				continue // resolved from the leader after clustering
			}
			f := shardFetches[i-lo]
			fetchCosts[i] = f.timing.Total()
			rep.Timing.addInto(f.timing)
			if f.err != nil {
				errs[i] = f.err
				c.releaseFetched(f)
				continue
			}
			bases[i] = f.info.Base
			if ref == nil {
				ref = f
				reps = append(reps, f)
				repVM = append(repVM, i)
				clusterOf[i] = 0
				continue
			}
			toDigest = append(toDigest, i)
		}

		// Digest this shard's healthy non-reference fetches against the
		// global reference, then fold them into the pool-wide clusters.
		// Only new clusters keep their buffer (as representative).
		keys := make([]string, len(toDigest))
		dcosts := make([]time.Duration, len(toDigest))
		digestOne := func(k int) {
			key, cost := c.digestAgainst(ref, shardFetches[toDigest[k]-lo])
			keys[k] = key
			dcosts[k] = c.charge(cost)
		}
		if c.cfg.Parallel {
			runBounded("digest", len(toDigest), c.workers(), digestOne)
		} else {
			for k := range toDigest {
				digestOne(k)
			}
		}
		for k, i := range toDigest {
			f := shardFetches[i-lo]
			digestIdx = append(digestIdx, i)
			digestCosts = append(digestCosts, dcosts[k])
			checkerWork += dcosts[k]
			cid, ok := byKey[keys[k]]
			if !ok {
				cid = len(reps)
				byKey[keys[k]] = cid
				reps = append(reps, f)
				repVM = append(repVM, i)
			} else {
				c.releaseFetched(f)
			}
			clusterOf[i] = cid
		}

		// Identity dups inherit their leader's outcome. Leaders always have
		// a lower index, so they are clustered by the time their shard ends.
		for i := lo; i < hi; i++ {
			if l := ps.leader[i]; l != i {
				errs[i] = errs[l]
				bases[i] = bases[l]
				clusterOf[i] = clusterOf[l]
			}
		}
	}

	// One true pairwise comparison per cluster pair, exactly as the flat
	// clustered stage runs after its digest pass.
	var cpairs []clusterPair
	for a := 0; a < len(reps); a++ {
		for b := a + 1; b < len(reps); b++ {
			cpairs = append(cpairs, clusterPair{a, b})
		}
	}
	repMMs := make([][]string, len(cpairs))
	repCosts := make([]time.Duration, len(cpairs))
	repOne := func(k int) {
		p := cpairs[k]
		mm, cost := c.compare(reps[p.a], reps[p.b])
		repMMs[k] = mm
		repCosts[k] = c.charge(cost)
	}
	if c.cfg.Parallel {
		runBounded("compare", len(cpairs), c.workers(), repOne)
	} else {
		for k := range cpairs {
			repOne(k)
		}
	}
	repMM := make(map[clusterPair][]string, len(cpairs))
	for k, p := range cpairs {
		repMM[p] = repMMs[k]
		checkerWork += repCosts[k]
	}

	// Render the three stages exactly as the flat path would: one fetch,
	// one digest, one compare stage per module with globally accumulated
	// task costs. Shard boundaries are invisible to the trace and to the
	// elapsed-time model.
	rep.Stages.Fetch = c.traceStage("fetch", module,
		func(k int) string { return "fetch " + ps.vms[k].Name }, fetchCosts)
	rep.Stages.Digest = c.traceStage("digest", module,
		func(k int) string { return "digest " + ps.vms[digestIdx[k]].Name }, digestCosts)
	rep.Stages.Compare = c.traceStage("compare", module, func(k int) string {
		p := cpairs[k]
		return "compare " + ps.vms[repVM[p.a]].Name + " vs " + ps.vms[repVM[p.b]].Name
	}, repCosts)
	rep.Elapsed = rep.Stages.Fetch + rep.Stages.Digest + rep.Stages.Compare
	rep.Timing.Checker += checkerWork

	// Cluster component-name lists must outlive the representative buffers.
	// Digest equality folds (name, length, hash) per component in order, so
	// every cluster member shares its representative's component names.
	repNames := make([][]string, len(reps))
	for cid, f := range reps {
		repNames[cid] = componentNames(f)
	}

	if c.cfg.LeanReports {
		ps.deriveLean(rep, module, clusterOf, errs, bases, repMM, repNames)
	} else {
		c.derivePool(rep, module, ps.vms, poolView{
			err:        func(i int) error { return errs[i] },
			base:       func(i int) uint32 { return bases[i] },
			components: func(i int) []string { return repNames[clusterOf[i]] },
		}, fleetMismatches(clusterOf, repMM))
	}
	for _, f := range reps {
		c.releaseFetched(f)
	}
	return rep
}

// fleetMismatches expands cluster membership into the per-pair mismatch map
// the shared report derivation consumes — the same expansion the flat
// clustered stage performs. Absent entries read back as a match.
func fleetMismatches(clusterOf []int, repMM map[clusterPair][]string) map[pairKey][]string {
	mismatches := make(map[pairKey][]string)
	var healthy []int
	for i, cid := range clusterOf {
		if cid >= 0 {
			healthy = append(healthy, i)
		}
	}
	for x := 0; x < len(healthy); x++ {
		for y := x + 1; y < len(healthy); y++ {
			i, j := healthy[x], healthy[y]
			ca, cb := clusterOf[i], clusterOf[j]
			if ca == cb {
				continue
			}
			if ca > cb {
				ca, cb = cb, ca
			}
			if mm := repMM[clusterPair{ca, cb}]; len(mm) > 0 {
				mismatches[pairKey{i, j}] = mm
			}
		}
	}
	return mismatches
}

// deriveLean fills a PoolReport from cluster structure alone: a VM's
// successes are its cluster's size minus itself plus every cluster whose
// representative comparison came back clean, so verdicts cost O(clusters²)
// once plus O(pool) to apply. Clean VMs get no ModuleReport at all, and the
// reports lean mode does build omit the O(pool)-sized Pairs and
// MismatchedVMs lists — alerts, verdicts, and counts are unchanged.
func (ps *PoolSweep) deriveLean(rep *PoolReport, module string, clusterOf []int, errs []error, bases []uint32, repMM map[clusterPair][]string, repNames [][]string) {
	c := ps.c
	nClusters := len(repNames)
	sizes := make([]int, nClusters)
	healthy := 0
	for _, cid := range clusterOf {
		if cid >= 0 {
			sizes[cid]++
			healthy++
		}
	}
	rep.Healthy = healthy

	mmOf := func(a, b int) []string {
		if a > b {
			a, b = b, a
		}
		return repMM[clusterPair{a, b}]
	}
	succ := make([]int, nClusters)
	verdicts := make([]Verdict, nClusters)
	for cid := range succ {
		s := sizes[cid] - 1
		for d := 0; d < nClusters; d++ {
			if d != cid && len(mmOf(cid, d)) == 0 {
				s += sizes[d]
			}
		}
		succ[cid] = s
		verdicts[cid] = c.verdict(s, healthy-1)
	}

	for i := range ps.vms {
		name := ps.vms[i].Name
		if err := errs[i]; err != nil {
			r := &ModuleReport{ModuleName: module, TargetVM: name,
				Verdict: VerdictError, Err: err, ErrClass: faults.Classify(err)}
			r.Pairs = append(r.Pairs, PairResult{PeerVM: name, Err: err, ErrClass: r.ErrClass})
			rep.VMReports = append(rep.VMReports, r)
			rep.Errored = append(rep.Errored, name)
			continue
		}
		cid := clusterOf[i]
		v := verdicts[cid]
		if v == VerdictClean {
			continue
		}
		r := &ModuleReport{
			ModuleName:  module,
			TargetVM:    name,
			Base:        bases[i],
			Successes:   succ[cid],
			Comparisons: healthy - 1,
			Verdict:     v,
		}
		// Component tallies against every other cluster, weighted by
		// cluster size.
		order := append([]string(nil), repNames[cid]...)
		tallies := make(map[string]*ComponentTally, len(order))
		for _, cn := range order {
			tallies[cn] = &ComponentTally{Name: cn, Matches: sizes[cid] - 1}
		}
		for d := 0; d < nClusters; d++ {
			if d == cid {
				continue
			}
			mm := mmOf(cid, d)
			if len(mm) == 0 {
				for _, cn := range order {
					tallies[cn].Matches += sizes[d]
				}
				continue
			}
			seen := make(map[string]bool, len(mm))
			for _, cn := range mm {
				seen[cn] = true
				t, ok := tallies[cn]
				if !ok {
					t = &ComponentTally{Name: cn}
					tallies[cn] = t
					order = append(order, cn)
				}
				t.Mismatches += sizes[d]
			}
			for _, cn := range order {
				if !seen[cn] {
					tallies[cn].Matches += sizes[d]
				}
			}
		}
		for _, cn := range order {
			r.Components = append(r.Components, *tallies[cn])
		}
		rep.VMReports = append(rep.VMReports, r)
		switch v {
		case VerdictAltered:
			rep.Flagged = append(rep.Flagged, name)
		case VerdictInconclusive:
			rep.Inconclusive = append(rep.Inconclusive, name)
		}
	}
	sort.Strings(rep.Flagged)
	sort.Strings(rep.Inconclusive)
	sort.Strings(rep.Errored)
}
