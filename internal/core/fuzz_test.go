package core

import (
	"testing"
)

// FuzzParseModule hardens Module-Parser against arbitrary guest memory: a
// compromised guest controls every byte the searcher copies out, so the
// parser must never panic.
func FuzzParseModule(f *testing.F) {
	_, targets := testPool(f, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	_, buf, _, err := s.FetchModule("alpha.sys")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf[:4096], uint32(0xF8CC2000))
	f.Add([]byte{}, uint32(0))
	f.Add([]byte("MZ"), uint32(1))
	f.Fuzz(func(t *testing.T, data []byte, base uint32) {
		m, _, err := ParseModule("fuzz", "x.sys", base, data)
		if err != nil {
			return
		}
		// A successfully parsed module must have internally consistent
		// components.
		for _, c := range m.Components {
			if len(c.Data) == 0 && c.Kind != KindSectionData {
				t.Fatalf("empty header component %s", c.Name)
			}
		}
	})
}

// FuzzNormalizePair checks the Algorithm 2 implementation never panics and
// never produces out-of-bounds rewrites for arbitrary input pairs.
func FuzzNormalizePair(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 2, 9, 9, 5, 6, 7, 8}, uint32(0xF8CC2000), uint32(0xF8D0C000))
	f.Add([]byte{}, []byte{}, uint32(0), uint32(0))
	f.Add([]byte{1}, []byte{2}, uint32(1), uint32(2))
	f.Fuzz(func(t *testing.T, d1, d2 []byte, b1, b2 uint32) {
		n1, n2, sites := NormalizePair(d1, d2, b1, b2)
		if len(n1) != len(d1) || len(n2) != len(d2) {
			t.Fatal("lengths changed")
		}
		limit := len(n1)
		if len(n2) < limit {
			limit = len(n2)
		}
		for _, s := range sites {
			if int(s)+4 > limit {
				t.Fatalf("site %#x beyond comparable range %#x", s, limit)
			}
		}
	})
}
