package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"modchecker/internal/pe"
)

// ComponentKind classifies the pieces Module-Parser extracts from an
// in-memory module (paper Algorithm 1).
type ComponentKind int

const (
	KindDOSHeader ComponentKind = iota
	KindNTHeader
	KindOptionalHeader
	KindSectionHeader
	KindSectionData
)

// String returns the IMAGE_* style name the paper uses for the kind.
func (k ComponentKind) String() string {
	switch k {
	case KindDOSHeader:
		return "IMAGE_DOS_HEADER"
	case KindNTHeader:
		return "IMAGE_NT_HEADER"
	case KindOptionalHeader:
		return "IMAGE_OPTIONAL_HEADER"
	case KindSectionHeader:
		return "IMAGE_SECTION_HEADER"
	case KindSectionData:
		return "SECTION_DATA"
	default:
		return fmt.Sprintf("ComponentKind(%d)", int(k))
	}
}

// Component is one integrity-checked unit: a header or a section's data.
type Component struct {
	Kind ComponentKind
	// Name identifies the component, e.g. "IMAGE_DOS_HEADER",
	// "IMAGE_SECTION_HEADER[.text]" or ".text".
	Name string
	Data []byte
	// Normalize marks section data that may embed relocated absolute
	// addresses and therefore needs RVA adjustment before hashing
	// (executable and other read-only contents).
	Normalize bool
	// VirtualAddress/VirtualSize are set for section data.
	VirtualAddress uint32
	VirtualSize    uint32
}

// ParsedModule is the output of Module-Parser for one VM's copy of a
// module.
type ParsedModule struct {
	VMName     string
	ModuleName string
	Base       uint32 // load base on this VM
	Components []Component
	Raw        []byte // the full in-memory module image
}

// Component returns the named component, or nil.
func (m *ParsedModule) Component(name string) *Component {
	for i := range m.Components {
		if m.Components[i].Name == name {
			return &m.Components[i]
		}
	}
	return nil
}

// parseCostPerKB is the nominal CPU cost of parsing a module, charged per
// KiB processed. Module-Parser is cheap relative to Module-Searcher, as
// Figure 7 shows.
const parseCostPerKB = 500 * time.Nanosecond

// ParseModule implements the paper's Algorithm 1 over the in-memory module
// layout: verify the DOS magic, chase e_lfanew to the NT headers, read the
// FILE and OPTIONAL headers, then the section headers, and slice out each
// section's data at its VirtualAddress. It returns the extracted components
// and the nominal parse cost.
//
// Unlike pe.Parse (which decodes on-disk files by PointerToRawData), this
// parser indexes by RVA, because Module-Searcher hands it the *loaded*
// image.
func ParseModule(vmName, moduleName string, base uint32, buf []byte) (*ParsedModule, time.Duration, error) {
	cost := time.Duration(len(buf)/1024+1) * parseCostPerKB
	le := binary.LittleEndian
	fail := func(format string, args ...any) (*ParsedModule, time.Duration, error) {
		return nil, cost, fmt.Errorf("core: parsing %s from %s: %s", moduleName, vmName, fmt.Sprintf(format, args...))
	}
	if len(buf) < pe.DOSHeaderSize {
		return fail("module of %d bytes has no DOS header", len(buf))
	}
	if le.Uint16(buf[0:]) != pe.DOSMagic {
		return fail("bad DOS magic %#04x", le.Uint16(buf[0:]))
	}
	lfanew := le.Uint32(buf[0x3C:])
	ntEnd := uint64(lfanew) + 4 + pe.FileHeaderSize + pe.OptionalHeader32Size
	if lfanew < pe.DOSHeaderSize || ntEnd > uint64(len(buf)) {
		return fail("e_lfanew %#x out of range", lfanew)
	}
	if le.Uint32(buf[lfanew:]) != pe.NTSignature {
		return fail("bad NT signature %#08x", le.Uint32(buf[lfanew:]))
	}

	m := &ParsedModule{VMName: vmName, ModuleName: moduleName, Base: base, Raw: buf}

	// IMAGE_DOS_HEADER component: header plus stub, i.e. everything before
	// the NT headers. Experiment E3 (stub text patch) must surface here.
	m.add(Component{Kind: KindDOSHeader, Name: "IMAGE_DOS_HEADER", Data: buf[:lfanew]})

	// IMAGE_NT_HEADER: signature + IMAGE_FILE_HEADER.
	fileOff := lfanew + 4
	m.add(Component{Kind: KindNTHeader, Name: "IMAGE_NT_HEADER", Data: buf[lfanew : fileOff+pe.FileHeaderSize]})

	numSections := le.Uint16(buf[fileOff+2:])
	sizeOfOptional := le.Uint16(buf[fileOff+16:])
	if sizeOfOptional != pe.OptionalHeader32Size {
		return fail("SizeOfOptionalHeader %d, want %d", sizeOfOptional, pe.OptionalHeader32Size)
	}
	optOff := fileOff + pe.FileHeaderSize
	m.add(Component{Kind: KindOptionalHeader, Name: "IMAGE_OPTIONAL_HEADER", Data: buf[optOff : optOff+pe.OptionalHeader32Size]})

	secOff := optOff + pe.OptionalHeader32Size
	if uint64(secOff)+uint64(numSections)*pe.SectionHeaderSize > uint64(len(buf)) {
		return fail("section table for %d sections exceeds module size", numSections)
	}
	type secInfo struct {
		name      string
		va, vsize uint32
		chars     uint32
	}
	secs := make([]secInfo, 0, numSections)
	for i := 0; i < int(numSections); i++ {
		off := secOff + uint32(i)*pe.SectionHeaderSize
		hdr := buf[off : off+pe.SectionHeaderSize]
		var name [8]byte
		copy(name[:], hdr[:8])
		sh := pe.SectionHeader{Name: name}
		sname := sh.NameString()
		m.add(Component{
			Kind: KindSectionHeader,
			Name: fmt.Sprintf("IMAGE_SECTION_HEADER[%s]", sname),
			Data: hdr,
		})
		secs = append(secs, secInfo{
			name:  sname,
			vsize: le.Uint32(hdr[8:]),
			va:    le.Uint32(hdr[12:]),
			chars: le.Uint32(hdr[36:]),
		})
	}
	for _, s := range secs {
		if s.chars&pe.ScnMemWrite != 0 {
			// Writable sections (.data, .bss) legitimately diverge at
			// runtime; the paper checks headers and read-only executable
			// contents only.
			continue
		}
		end := uint64(s.va) + uint64(s.vsize)
		if s.va == 0 || end > uint64(len(buf)) {
			return fail("section %s data [%#x,%#x) outside module", s.name, s.va, end)
		}
		m.add(Component{
			Kind:           KindSectionData,
			Name:           s.name,
			Data:           buf[s.va:end],
			Normalize:      true,
			VirtualAddress: s.va,
			VirtualSize:    s.vsize,
		})
	}
	return m, cost, nil
}

func (m *ParsedModule) add(c Component) { m.Components = append(m.Components, c) }
