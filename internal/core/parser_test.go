package core

import (
	"strings"
	"testing"

	"modchecker/internal/pe"
)

// fetchParsed copies and parses alpha.sys from the first VM of a fresh
// pool.
func fetchParsed(t testing.TB) *ParsedModule {
	t.Helper()
	_, targets := testPool(t, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	info, buf, _, err := s.FetchModule("alpha.sys")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := ParseModule(targets[0].Name, "alpha.sys", info.Base, buf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseComponents(t *testing.T) {
	m := fetchParsed(t)
	want := []string{
		"IMAGE_DOS_HEADER", "IMAGE_NT_HEADER", "IMAGE_OPTIONAL_HEADER",
		"IMAGE_SECTION_HEADER[.text]", "IMAGE_SECTION_HEADER[.data]",
		"IMAGE_SECTION_HEADER[.rdata]", "IMAGE_SECTION_HEADER[INIT]",
		"IMAGE_SECTION_HEADER[.reloc]",
		".text", ".rdata", "INIT", ".reloc",
	}
	have := map[string]bool{}
	for _, c := range m.Components {
		have[c.Name] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("missing component %q (have %v)", w, names(m))
		}
	}
}

func names(m *ParsedModule) []string {
	var out []string
	for _, c := range m.Components {
		out = append(out, c.Name)
	}
	return out
}

func TestParseExcludesWritableSections(t *testing.T) {
	m := fetchParsed(t)
	if m.Component(".data") != nil {
		t.Error(".data (writable) included as checkable content")
	}
	// Its header is still checked.
	if m.Component("IMAGE_SECTION_HEADER[.data]") == nil {
		t.Error(".data header missing")
	}
}

func TestParseComponentSizes(t *testing.T) {
	m := fetchParsed(t)
	dos := m.Component("IMAGE_DOS_HEADER")
	if len(dos.Data) < pe.DOSHeaderSize {
		t.Errorf("DOS component %d bytes", len(dos.Data))
	}
	if !strings.Contains(string(dos.Data), "This program cannot be run in DOS mode") {
		t.Error("DOS component does not include the stub")
	}
	nt := m.Component("IMAGE_NT_HEADER")
	if len(nt.Data) != 4+pe.FileHeaderSize {
		t.Errorf("NT component %d bytes, want %d", len(nt.Data), 4+pe.FileHeaderSize)
	}
	opt := m.Component("IMAGE_OPTIONAL_HEADER")
	if len(opt.Data) != pe.OptionalHeader32Size {
		t.Errorf("OPTIONAL component %d bytes", len(opt.Data))
	}
	sh := m.Component("IMAGE_SECTION_HEADER[.text]")
	if len(sh.Data) != pe.SectionHeaderSize {
		t.Errorf("section header component %d bytes", len(sh.Data))
	}
}

func TestParseNormalizeFlags(t *testing.T) {
	m := fetchParsed(t)
	for _, c := range m.Components {
		wantNorm := c.Kind == KindSectionData
		if c.Normalize != wantNorm {
			t.Errorf("%s: Normalize = %v", c.Name, c.Normalize)
		}
	}
}

func TestParseSectionDataLocation(t *testing.T) {
	m := fetchParsed(t)
	text := m.Component(".text")
	if text.VirtualAddress != 0x1000 {
		t.Errorf(".text VA = %#x", text.VirtualAddress)
	}
	if uint32(len(text.Data)) != text.VirtualSize {
		t.Errorf(".text data %d bytes, VirtualSize %d", len(text.Data), text.VirtualSize)
	}
	// Data must alias the raw buffer at the right place.
	if &text.Data[0] != &m.Raw[text.VirtualAddress] {
		t.Error(".text component does not alias the module buffer")
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	m := fetchParsed(t)
	raw := append([]byte(nil), m.Raw...)
	raw[0] = 'X'
	if _, _, err := ParseModule("vm", "alpha.sys", m.Base, raw); err == nil {
		t.Error("bad DOS magic parsed")
	}
}

func TestParseRejectsBadNTSig(t *testing.T) {
	m := fetchParsed(t)
	raw := append([]byte(nil), m.Raw...)
	lfanew := uint32(raw[0x3C]) | uint32(raw[0x3D])<<8
	raw[lfanew] = 'X'
	if _, _, err := ParseModule("vm", "alpha.sys", m.Base, raw); err == nil {
		t.Error("bad NT signature parsed")
	}
}

func TestParseRejectsTiny(t *testing.T) {
	if _, _, err := ParseModule("vm", "x", 0, make([]byte, 16)); err == nil {
		t.Error("16-byte module parsed")
	}
}

func TestParseRejectsHugeLfanew(t *testing.T) {
	m := fetchParsed(t)
	raw := append([]byte(nil), m.Raw...)
	raw[0x3C], raw[0x3D], raw[0x3E], raw[0x3F] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := ParseModule("vm", "alpha.sys", m.Base, raw); err == nil {
		t.Error("huge e_lfanew parsed")
	}
}

func TestParseRejectsSectionOutsideModule(t *testing.T) {
	m := fetchParsed(t)
	raw := append([]byte(nil), m.Raw...)
	// Corrupt .text's VirtualSize in the in-memory section table.
	lfanew := uint32(raw[0x3C]) | uint32(raw[0x3D])<<8
	secOff := lfanew + 4 + pe.FileHeaderSize + pe.OptionalHeader32Size
	raw[secOff+8] = 0xFF
	raw[secOff+9] = 0xFF
	raw[secOff+10] = 0xFF
	if _, _, err := ParseModule("vm", "alpha.sys", m.Base, raw); err == nil {
		t.Error("section data beyond module parsed")
	}
}

func TestParseCostScalesWithSize(t *testing.T) {
	m := fetchParsed(t)
	_, cSmall, err := ParseModule("vm", "alpha.sys", m.Base, m.Raw)
	if err != nil {
		t.Fatal(err)
	}
	big := append(append([]byte(nil), m.Raw...), make([]byte, 1<<20)...)
	// Keep structure valid: growth beyond SizeOfImage is ignored by the
	// parser structurally, it only affects the cost input.
	_, cBig, err := ParseModule("vm", "alpha.sys", m.Base, big)
	if err != nil {
		t.Fatal(err)
	}
	if cBig <= cSmall {
		t.Errorf("cost did not scale: %v vs %v", cSmall, cBig)
	}
}

func TestComponentKindString(t *testing.T) {
	for k, want := range map[ComponentKind]string{
		KindDOSHeader:      "IMAGE_DOS_HEADER",
		KindNTHeader:       "IMAGE_NT_HEADER",
		KindOptionalHeader: "IMAGE_OPTIONAL_HEADER",
		KindSectionHeader:  "IMAGE_SECTION_HEADER",
		KindSectionData:    "SECTION_DATA",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if !strings.Contains(ComponentKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}
