package core

import (
	"context"
	"crypto/md5"
	"encoding/binary"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modchecker/internal/trace"
)

// This file holds the concurrency machinery of the pool sweep's hot path:
// a bounded worker pool for the fetch and compare stages, a deterministic
// critical-path model for simulated wall-clock under parallelism, and the
// digest pass that replaces O(n²) pairwise comparison with O(n) clustering.
//
// Determinism invariant: nothing here lets host scheduling influence a
// result. Workers record into per-index slots, simulated elapsed time is
// derived from the cost slice by list scheduling (never from goroutine
// timing), and the hypervisor clock's stretch factor depends only on domain
// pause states, so the sum of charges is independent of interleaving.

// DefaultWorkers bounds the parallel fetch and compare stages when
// Config.Workers is zero. Eight matches the paper's testbed host — a
// quad-core i7 with HyperThreading — and its 8-thread parallel enhancement.
const DefaultWorkers = 8

// workers returns the effective worker bound.
func (c *Checker) workers() int {
	if c.cfg.Workers > 0 {
		return c.cfg.Workers
	}
	return DefaultWorkers
}

// runBounded executes task(i) for every i in [0, n) on at most w concurrent
// goroutines, each labeled with the pipeline stage for pprof attribution
// (`go test -cpuprofile` samples carry a stage= label). Tasks must record
// results by index; the shared cursor only balances load, so completion
// order never affects the outcome.
func runBounded(stage string, n, w int, task func(int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	labels := pprof.Labels("stage", stage)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					task(i)
				}
			})
		}()
	}
	wg.Wait()
}

// schedule models running tasks with the given costs on w workers: tasks
// are list-scheduled in index order onto the earliest-free worker (ties to
// the lowest-numbered one). It returns each task's worker lane and start
// offset plus the makespan. The model depends only on the cost slice and w —
// never on host scheduling — which is what keeps parallel sweeps (and their
// trace exports) byte-identical across runs from one seed.
func schedule(costs []time.Duration, w int) (lanes []int, starts []time.Duration, makespan time.Duration) {
	if len(costs) == 0 {
		return nil, nil, 0
	}
	if w < 1 {
		w = 1
	}
	if w > len(costs) {
		w = len(costs)
	}
	lanes = make([]int, len(costs))
	starts = make([]time.Duration, len(costs))
	loads := make([]time.Duration, w)
	for k, c := range costs {
		min := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		lanes[k] = min
		starts[k] = loads[min]
		loads[min] += c
	}
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return lanes, starts, makespan
}

// criticalPath returns just the makespan of the deterministic list schedule.
func criticalPath(costs []time.Duration, w int) time.Duration {
	_, _, makespan := schedule(costs, w)
	return makespan
}

// stageWorkers is the worker count the elapsed-time model uses: the bounded
// pool in parallel mode, one lane sequentially.
func (c *Checker) stageWorkers() int {
	if c.cfg.Parallel {
		return c.workers()
	}
	return 1
}

// traceStage computes one pipeline stage's simulated elapsed time from its
// per-task costs and — when tracing is enabled — renders the stage on the
// simulated timeline: a stage envelope on the coordinator lane (tid 0) plus
// one span per task on the worker lane the deterministic list schedule
// assigns it, then advances the timeline cursor by the stage's elapsed.
// Timestamps come from the schedule model, never from host execution, so
// the trace is byte-identical across runs from one seed. Must only be
// called from a stage's driving goroutine (the emission discipline
// internal/trace documents).
//
// Task names are supplied lazily through nameFn: the hot path runs with
// tracing off, and building a per-task label slice per stage per module is
// pure allocator churn there.
func (c *Checker) traceStage(stage, module string, nameFn func(int) string, costs []time.Duration) time.Duration {
	lanes, starts, elapsed := schedule(costs, c.stageWorkers())
	tr := c.cfg.Tracer
	if tr == nil || len(costs) == 0 {
		return elapsed
	}
	base := tr.Cursor()
	args := []trace.Arg{{Key: "tasks", Val: strconv.Itoa(len(costs))}}
	if module != "" {
		args = append(args, trace.Arg{Key: "module", Val: module})
	}
	tr.Complete("stage:"+stage, "pipeline", trace.PIDPipeline, 0, base, elapsed, args...)
	for k := range costs {
		tr.Complete(nameFn(k), stage, trace.PIDPipeline, lanes[k]+1, base+starts[k], costs[k])
	}
	tr.Advance(elapsed)
	return elapsed
}

// fetchStage runs Searcher+Parser for every target — on the bounded worker
// pool in parallel mode — and returns the fetches plus the stage's simulated
// elapsed time (sum of work when sequential, deterministic makespan across
// the workers when parallel). Every returned fetch owns a pooled module
// buffer until releaseFetched runs.
//
//modown:pool module-fetch get
func (c *Checker) fetchStage(module string, vms []Target) ([]*fetched, time.Duration) {
	fetches := make([]*fetched, len(vms))
	fetchOne := func(i int) {
		fetches[i] = c.fetchAndParse(vms[i], module)
	}
	if c.cfg.Parallel {
		runBounded("fetch", len(vms), c.workers(), fetchOne)
	} else {
		for i := range vms {
			fetchOne(i)
		}
	}
	costs := make([]time.Duration, len(fetches))
	for i, f := range fetches {
		costs[i] = f.timing.Total()
	}
	return fetches, c.traceStage("fetch", module,
		func(k int) string { return "fetch " + fetches[k].target.Name }, costs)
}

// pairKey identifies one unordered healthy pair (i < j) of a pool sweep.
type pairKey struct{ i, j int }

// comparePairwise is the legacy comparison stage: Algorithm 2 plus hashing
// on every healthy pair independently. Returns the mismatch lists keyed by
// pair, the total checker work, and the stage's elapsed-time breakdown.
//
//moddet:sink comparison results must not depend on host state or ordering
func (c *Checker) comparePairwise(module string, fetches []*fetched) (map[pairKey][]string, time.Duration, StageTiming) {
	var pairs []pairKey
	for i := range fetches {
		if fetches[i].err != nil {
			continue
		}
		for j := i + 1; j < len(fetches); j++ {
			if fetches[j].err == nil {
				pairs = append(pairs, pairKey{i, j})
			}
		}
	}
	mms := make([][]string, len(pairs))
	costs := make([]time.Duration, len(pairs))
	compareOne := func(k int) {
		p := pairs[k]
		mm, cost := c.compare(fetches[p.i], fetches[p.j])
		mms[k] = mm
		costs[k] = c.charge(cost)
	}
	if c.cfg.Parallel {
		runBounded("compare", len(pairs), c.workers(), compareOne)
	} else {
		for k := range pairs {
			compareOne(k)
		}
	}
	mismatches := make(map[pairKey][]string, len(pairs))
	var work time.Duration
	for k, p := range pairs {
		mismatches[p] = mms[k]
		work += costs[k]
	}
	var st StageTiming
	st.Compare = c.traceStage("compare", module, func(k int) string {
		p := pairs[k]
		return "compare " + fetches[p.i].target.Name + " vs " + fetches[p.j].target.Name
	}, costs)
	return mismatches, work, st
}

// compareClustered is the digest pre-clustering comparison stage. Instead of
// normalizing and hashing all O(n²) pairs, it picks the first healthy fetch
// as the reference, normalizes every other copy against it once (O(n)),
// digests both normalized sides per component, and groups identical digests
// into equivalence clusters. Digest equality implies the pairwise comparison
// would match (both copies reduce to the same normalized form against the
// same reference), so same-cluster pairs need no comparison at all; pairs
// from different clusters take their mismatch list from a single true
// pairwise comparison between the two cluster representatives. A digest
// split between copies that actually match pairwise (possible when the
// reference lacks a component, or bases collide) is harmless: the
// representative comparison returns an empty mismatch list, which the report
// derivation already treats as a match.
//
//moddet:sink digest clustering must not depend on host state or ordering
func (c *Checker) compareClustered(module string, fetches []*fetched) (map[pairKey][]string, time.Duration, StageTiming) {
	var st StageTiming
	var healthy []int
	for i := range fetches {
		if fetches[i].err == nil {
			healthy = append(healthy, i)
		}
	}
	mismatches := make(map[pairKey][]string)
	if len(healthy) < 2 {
		return mismatches, 0, st
	}
	ref := healthy[0]
	others := healthy[1:]

	// Digest pass: O(n) normalizations against the reference copy.
	keys := make([]string, len(others))
	costs := make([]time.Duration, len(others))
	digestOne := func(k int) {
		key, cost := c.digestAgainst(fetches[ref], fetches[others[k]])
		keys[k] = key
		costs[k] = c.charge(cost)
	}
	if c.cfg.Parallel {
		runBounded("digest", len(others), c.workers(), digestOne)
	} else {
		for k := range others {
			digestOne(k)
		}
	}
	var work time.Duration
	for _, d := range costs {
		work += d
	}
	st.Digest = c.traceStage("digest", module,
		func(k int) string { return "digest " + fetches[others[k]].target.Name }, costs)

	// Cluster by digest. The reference copy is cluster 0 (its digest against
	// itself is degenerate, so it simply fronts its own cluster); the
	// representative comparisons below reconcile it with everyone else.
	clusterOf := make(map[int]int, len(healthy))
	clusterOf[ref] = 0
	reps := []int{ref}
	byKey := make(map[string]int)
	for k, idx := range others {
		cid, ok := byKey[keys[k]]
		if !ok {
			cid = len(reps)
			byKey[keys[k]] = cid
			reps = append(reps, idx)
		}
		clusterOf[idx] = cid
	}

	// True pairwise comparison between cluster representatives only — one
	// comparison per cluster pair, however many members each side has.
	type cpair struct{ a, b int }
	var cpairs []cpair
	for a := 0; a < len(reps); a++ {
		for b := a + 1; b < len(reps); b++ {
			cpairs = append(cpairs, cpair{a, b})
		}
	}
	repMMs := make([][]string, len(cpairs))
	repCosts := make([]time.Duration, len(cpairs))
	repOne := func(k int) {
		p := cpairs[k]
		mm, cost := c.compare(fetches[reps[p.a]], fetches[reps[p.b]])
		repMMs[k] = mm
		repCosts[k] = c.charge(cost)
	}
	if c.cfg.Parallel {
		runBounded("compare", len(cpairs), c.workers(), repOne)
	} else {
		for k := range cpairs {
			repOne(k)
		}
	}
	repMM := make(map[cpair][]string, len(cpairs))
	for k, p := range cpairs {
		repMM[p] = repMMs[k]
		work += repCosts[k]
	}
	st.Compare = c.traceStage("compare", module, func(k int) string {
		p := cpairs[k]
		return "compare " + fetches[reps[p.a]].target.Name + " vs " + fetches[reps[p.b]].target.Name
	}, repCosts)

	// Derive every pair's mismatch list from cluster membership: absent map
	// entries (same cluster, or clusters whose representatives turned out
	// identical) read back as nil — a match — in the report derivation.
	for x := 0; x < len(healthy); x++ {
		for y := x + 1; y < len(healthy); y++ {
			i, j := healthy[x], healthy[y]
			ca, cb := clusterOf[i], clusterOf[j]
			if ca == cb {
				continue
			}
			if ca > cb {
				ca, cb = cb, ca
			}
			if mm := repMM[cpair{ca, cb}]; len(mm) > 0 {
				mismatches[pairKey{i, j}] = mm
			}
		}
	}
	return mismatches, work, st
}

// digestAgainst computes one copy's cluster key: every component normalized
// against the reference fetch and digested, folding in both normalized
// sides. Including the reference's normalized side is what makes digest
// equality imply a pairwise match: two copies share a key only if they
// rewrote the reference identically, which rules out a tampered byte that
// happens to coincide with a legitimate copy's normalized form.
//
//moddet:sink digest keys must be a pure function of guest memory
func (c *Checker) digestAgainst(ref, f *fetched) (string, time.Duration) {
	h := md5.New()
	var cost time.Duration
	var lenBuf [8]byte
	writePart := func(name string, n int, sum [md5.Size]byte) {
		h.Write([]byte(name))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(n))
		h.Write(lenBuf[:])
		h.Write(sum[:])
	}
	for i := range f.parsed.Components {
		comp := &f.parsed.Components[i]
		if c.cfg.Normalizer == NormalizeRelocTable {
			// Per-VM normalized hashes were precomputed (and charged) at
			// parse time; the digest just folds them together.
			writePart(comp.Name, len(comp.Data), f.normHashes[comp.Name])
			continue
		}
		refComp := ref.parsed.Component(comp.Name)
		if comp.Normalize && refComp != nil {
			data, refData := comp.Data, refComp.Data
			cost += perKB(len(data)+len(refData), scanCostPerKB)
			sa := getScratch(len(data))
			sb := getScratch(len(refData))
			copy(*sa, data)
			copy(*sb, refData)
			normalizePairInPlace(*sa, *sb, f.info.Base, ref.info.Base)
			cost += perKB(len(*sa)+len(*sb), hashCostPerKB)
			writePart(comp.Name, len(*sa), md5.Sum(*sa))
			writePart("", len(*sb), md5.Sum(*sb))
			putScratch(sa)
			putScratch(sb)
			continue
		}
		// Non-relocated components (and components the reference lacks)
		// cluster on their raw hash: equal raw bytes match pairwise under
		// any base pair, since the diff scan sees no differing bytes.
		cost += perKB(len(comp.Data), hashCostPerKB)
		writePart(comp.Name, len(comp.Data), md5.Sum(comp.Data))
	}
	return string(h.Sum(nil)), cost
}
