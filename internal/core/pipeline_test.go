package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"modchecker/internal/guest"
	"modchecker/internal/rootkit"
	"modchecker/internal/vmi"
)

func TestCriticalPath(t *testing.T) {
	d := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		costs []time.Duration
		w     int
		want  time.Duration
	}{
		{nil, 4, 0},
		{[]time.Duration{d(5)}, 8, d(5)},
		{[]time.Duration{d(3), d(1), d(1), d(1)}, 2, d(3)},
		{[]time.Duration{d(3), d(1), d(1), d(1)}, 1, d(6)},
		{[]time.Duration{d(3), d(1), d(1), d(1)}, 4, d(3)},
		{[]time.Duration{d(2), d(2), d(2), d(2)}, 2, d(4)},
		// w larger than the task count clamps to the task count.
		{[]time.Duration{d(1), d(2)}, 100, d(2)},
		// w < 1 behaves as 1.
		{[]time.Duration{d(1), d(2)}, 0, d(3)},
	}
	for i, c := range cases {
		if got := criticalPath(c.costs, c.w); got != c.want {
			t.Errorf("case %d: criticalPath(%v, %d) = %v, want %v", i, c.costs, c.w, got, c.want)
		}
	}
}

func TestRunBoundedExecutesEveryIndexOnce(t *testing.T) {
	const n = 257
	counts := make([]int32, n)
	var mu sync.Mutex
	runBounded("test", n, 8, func(i int) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
	// Degenerate bounds: sequential path and w > n.
	ran := 0
	runBounded("test", 3, 1, func(int) { ran++ })
	runBounded("test", 3, 64, func(int) {})
	if ran != 3 {
		t.Errorf("sequential runBounded ran %d tasks", ran)
	}
}

// poolSig fingerprints every field of a PoolReport that the clustered and
// full-pairwise comparison stages must agree on (everything except timing).
func poolSig(rep *PoolReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module=%s healthy=%d flagged=%v inconclusive=%v errored=%v\n",
		rep.ModuleName, rep.Healthy, rep.Flagged, rep.Inconclusive, rep.Errored)
	for _, r := range rep.VMReports {
		fmt.Fprintf(&b, "vm=%s verdict=%v base=%#x succ=%d comp=%d errclass=%v err=%v\n",
			r.TargetVM, r.Verdict, r.Base, r.Successes, r.Comparisons, r.ErrClass, r.Err != nil)
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "  pair peer=%s match=%v mm=%v errclass=%v err=%v\n",
				p.PeerVM, p.Match, p.MismatchedComponents, p.ErrClass, p.Err != nil)
		}
		for _, c := range r.Components {
			fmt.Fprintf(&b, "  comp %s matches=%d mismatches=%d vms=%v\n",
				c.Name, c.Matches, c.Mismatches, c.MismatchedVMs)
		}
	}
	return b.String()
}

// TestClusteredMatchesPairwise is the core-level differential test: the
// digest pre-clustering stage must produce a report identical (verdicts,
// flags, pairs, per-component tallies) to the legacy full-pairwise stage,
// on a clean pool, on a pool with a tampered member, and on a pool with a
// missing module and an unreadable VM.
func TestClusteredMatchesPairwise(t *testing.T) {
	scenarios := []struct {
		name    string
		prepare func(t *testing.T, guests []*guestPool)
	}{
		{"clean", func(t *testing.T, _ []*guestPool) {}},
		{"tampered", func(t *testing.T, pools []*guestPool) {
			for _, p := range pools {
				if _, err := rootkit.InlineHookLive(p.guests[2], "alpha.sys"); err != nil {
					t.Fatal(err)
				}
			}
		}},
		{"degraded", func(t *testing.T, pools []*guestPool) {
			for _, p := range pools {
				// vm4 lacks the module entirely; vm5's copy is also tampered
				// so two distinct non-reference clusters exist.
				if err := p.guests[3].UnloadModule("alpha.sys"); err != nil {
					t.Fatal(err)
				}
				if _, err := rootkit.InlineHookLive(p.guests[4], "alpha.sys"); err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, sc := range scenarios {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/parallel=%v", sc.name, parallel), func(t *testing.T) {
				// Two identically seeded pools, one per comparison path, so
				// neither run perturbs the other's handle state.
				a := newGuestPool(t, 6)
				b := newGuestPool(t, 6)
				sc.prepare(t, []*guestPool{a, b})

				clustered, err := NewChecker(Config{Parallel: parallel}).CheckPool("alpha.sys", a.targets)
				if err != nil {
					t.Fatal(err)
				}
				pairwise, err := NewChecker(Config{Parallel: parallel, FullPairwise: true}).CheckPool("alpha.sys", b.targets)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := poolSig(clustered), poolSig(pairwise); got != want {
					t.Errorf("clustered report diverges from full pairwise:\n--- clustered\n%s--- pairwise\n%s", got, want)
				}
			})
		}
	}
}

// guestPool bundles testPool's outputs for scenario preparation.
type guestPool struct {
	guests  []*guest.Guest
	targets []Target
}

func newGuestPool(t *testing.T, n int) *guestPool {
	guests, targets := testPool(t, n)
	return &guestPool{guests: guests, targets: targets}
}

// TestParallelClusteredRace exercises the pooled scratch buffers and the
// bounded worker pool under the race detector: several parallel pool checks
// (clustered and full-pairwise) share the package-global scratchPool
// concurrently.
func TestParallelClusteredRace(t *testing.T) {
	var pools []*guestPool
	for i := 0; i < 3; i++ {
		pools = append(pools, newGuestPool(t, 5))
	}
	var wg sync.WaitGroup
	for i, p := range pools {
		wg.Add(1)
		go func(i int, p *guestPool) {
			defer wg.Done()
			cfg := Config{Parallel: true, FullPairwise: i%2 == 1}
			for _, module := range []string{"alpha.sys", "beta.sys"} {
				rep, err := NewChecker(cfg).CheckPool(module, p.targets)
				if err != nil {
					t.Error(err)
					return
				}
				if len(rep.Flagged) != 0 || rep.Healthy != len(p.targets) {
					t.Errorf("pool %d %s: flagged=%v healthy=%d", i, module, rep.Flagged, rep.Healthy)
				}
			}
		}(i, p)
	}
	wg.Wait()
}

// TestPoolSweepMatchesCheckPool pins that the session path (snapshot the
// module table once, copy per module) produces reports identical to the
// per-module CheckPool path.
func TestPoolSweepMatchesCheckPool(t *testing.T) {
	_, targets := testPool(t, 4)
	c := NewChecker(Config{})
	ps, err := c.NewPoolSweep(targets)
	if err != nil {
		t.Fatal(err)
	}
	mods, err := ps.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 {
		t.Fatalf("session discovered %v", mods)
	}
	for i, rep := range ps.CheckModules(mods) {
		direct, err := c.CheckPool(mods[i], targets)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := poolSig(rep), poolSig(direct); got != want {
			t.Errorf("%s: sweep session report diverges from CheckPool:\n--- session\n%s--- direct\n%s",
				mods[i], got, want)
		}
	}
}

// TestPoolSweepAmortizesListWalks verifies the session's point: checking M
// modules through one PoolSweep costs fewer introspection reads than M
// standalone CheckPools, because the LDR list is walked once per VM instead
// of once per module per VM.
func TestPoolSweepAmortizesListWalks(t *testing.T) {
	readPages := func(targets []Target) uint64 {
		var n uint64
		for _, tg := range targets {
			n += tg.Handle.Stats().PagesRead
		}
		return n
	}
	_, direct := testPool(t, 4)
	c := NewChecker(Config{})
	for _, m := range []string{"alpha.sys", "beta.sys"} {
		if _, err := c.CheckPool(m, direct); err != nil {
			t.Fatal(err)
		}
	}
	directPages := readPages(direct)

	_, session := testPool(t, 4)
	ps, err := NewChecker(Config{}).NewPoolSweep(session)
	if err != nil {
		t.Fatal(err)
	}
	ps.CheckModules([]string{"alpha.sys", "beta.sys"})
	sessionPages := readPages(session)

	if sessionPages >= directPages {
		t.Errorf("sweep session read %d pages, standalone pools read %d — no amortization",
			sessionPages, directPages)
	}
}

// TestStatsCostExactMixedStrategy pins satellite (a): the stats-delta cost
// attribution must equal the sum of per-primitive nominal charges even when
// one window mixes page-wise reads (the LDR walk) with a bulk mapping (the
// CopyMapped module copy) and TLB hits.
func TestStatsCostExactMixedStrategy(t *testing.T) {
	guests, _ := testPool(t, 1)
	g := guests[0]
	var mu sync.Mutex
	var charged time.Duration
	h := vmi.Open(g.Name(), g.Phys(), g.CR3(), vmi.XPSP2Profile(guest.PsLoadedModuleListVA),
		vmi.WithCharge(func(d time.Duration) {
			mu.Lock()
			charged += d
			mu.Unlock()
		}))
	s := NewSearcher(h, CopyMapped)
	_, _, cost, err := s.FetchModule("beta.sys")
	if err != nil {
		t.Fatal(err)
	}
	if cost != charged {
		t.Errorf("FetchModule cost %v != sum of nominal charges %v (inexact attribution)", cost, charged)
	}
	st := h.Stats()
	if st.MapSetups == 0 || st.PagesMapped == 0 {
		t.Fatalf("mapped copy did not run: %+v", st)
	}
	if st.PagesRead <= st.PagesMapped {
		t.Fatalf("window has no page-wise reads to mix: %+v", st)
	}
	if st.TLBHits == 0 {
		t.Errorf("expected TLB hits during the list walk + copy window: %+v", st)
	}
}
