//go:build !modpoison

package core

// poisonBuf is a no-op in normal builds. Build with -tags modpoison to make
// every pool recycle scribble the returned bytes; see poison_on.go.
func poisonBuf([]byte) {}
