//go:build modpoison

package core

// The modpoison build tag turns every buffer recycle into a scribble:
// putFetchBuf and putScratch overwrite the bytes being returned with 0xDB
// before the pool takes them back, so any use-after-put — a report aliasing
// a recycled module copy, a digest computed over a buffer another goroutine
// already reclaimed, a double-put handing one buffer to two fetches — shows
// up as garbage hashes and failing differential tests instead of rare,
// order-dependent flakiness. The cache-smoke CI leg runs the differential
// suite under this tag.
func poisonBuf(b []byte) {
	for i := range b {
		b[i] = 0xDB
	}
}
