package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"modchecker/internal/faults"
)

// PoolReport is the result of sweeping one module across an entire VM pool:
// every VM is checked against all others, and VMs whose copy a majority of
// peers dispute are flagged. This is the operational mode the paper's
// conclusion sketches — a light-weight consistency check whose flags
// trigger deeper analysis or a snapshot revert.
type PoolReport struct {
	ModuleName string
	VMReports  []*ModuleReport

	// Flagged lists VMs with VerdictAltered; Inconclusive lists VMs with
	// no majority either way; Errored lists VMs whose own fetch failed
	// (VerdictError) — they contributed nothing to any vote.
	Flagged      []string
	Inconclusive []string
	Errored      []string

	// Healthy counts VMs whose fetch succeeded: the denominator that
	// actually voted. A report where Healthy is far below len(VMReports)
	// describes a degraded pool, not a clean one.
	Healthy int

	// Timing is total work; Elapsed is simulated wall-clock (fetches
	// overlap under the parallel driver, comparisons are always serial).
	Timing  PhaseTiming
	Elapsed time.Duration
}

// Report returns the per-VM report for the named VM, or nil.
func (p *PoolReport) Report(vm string) *ModuleReport {
	for _, r := range p.VMReports {
		if r.TargetVM == vm {
			return r
		}
	}
	return nil
}

// CheckPool fetches the module once from every VM and cross-compares all
// pairs, producing a per-VM majority verdict. Unlike calling CheckModule
// per target (which refetches peers each time), the pool sweep reuses each
// fetch, so introspection cost stays linear in pool size while comparison
// cost is quadratic — the comparison being far cheaper per byte, as
// Figure 7's component breakdown shows.
func (c *Checker) CheckPool(module string, vms []Target) (*PoolReport, error) {
	if len(vms) < 2 {
		return nil, fmt.Errorf("core: pool check of %s needs at least 2 VMs, have %d", module, len(vms))
	}
	fetches := make([]*fetched, len(vms))
	rep := &PoolReport{ModuleName: module}
	if c.cfg.Parallel {
		var wg sync.WaitGroup
		for i, t := range vms {
			wg.Add(1)
			go func(i int, t Target) {
				defer wg.Done()
				fetches[i] = c.fetchAndParse(t, module)
			}(i, t)
		}
		wg.Wait()
		var slowest time.Duration
		for _, f := range fetches {
			if d := f.timing.Total(); d > slowest {
				slowest = d
			}
		}
		rep.Elapsed = slowest
	} else {
		for i, t := range vms {
			fetches[i] = c.fetchAndParse(t, module)
			rep.Elapsed += fetches[i].timing.Total()
		}
	}
	for _, f := range fetches {
		rep.Timing.addInto(f.timing)
	}

	type pairKey struct{ i, j int }
	// Compare each unordered pair once; reuse for both directions.
	mismatches := make(map[pairKey][]string)
	for i := range fetches {
		if fetches[i].err != nil {
			continue
		}
		for j := i + 1; j < len(fetches); j++ {
			if fetches[j].err != nil {
				continue
			}
			mm, cost := c.compare(fetches[i], fetches[j])
			charged := c.charge(cost)
			rep.Timing.Checker += charged
			rep.Elapsed += charged
			mismatches[pairKey{i, j}] = mm
		}
	}

	for i, f := range fetches {
		r := &ModuleReport{ModuleName: module, TargetVM: vms[i].Name}
		if f.err != nil {
			r.Verdict = VerdictError
			r.Err = f.err
			r.ErrClass = faults.Classify(f.err)
			r.Pairs = append(r.Pairs, PairResult{
				PeerVM: vms[i].Name, Err: f.err, ErrClass: r.ErrClass,
			})
			rep.VMReports = append(rep.VMReports, r)
			rep.Errored = append(rep.Errored, vms[i].Name)
			continue
		}
		rep.Healthy++
		r.Base = f.info.Base
		tallies := make(map[string]*ComponentTally)
		var order []string
		for _, comp := range f.parsed.Components {
			tallies[comp.Name] = &ComponentTally{Name: comp.Name}
			order = append(order, comp.Name)
		}
		for j, pf := range fetches {
			if j == i {
				continue
			}
			if pf.err != nil {
				r.Pairs = append(r.Pairs, PairResult{
					PeerVM: vms[j].Name, Err: pf.err, ErrClass: faults.Classify(pf.err),
				})
				continue
			}
			key := pairKey{i, j}
			if j < i {
				key = pairKey{j, i}
			}
			mm := mismatches[key]
			pr := PairResult{PeerVM: vms[j].Name, Match: len(mm) == 0, MismatchedComponents: mm}
			r.Pairs = append(r.Pairs, pr)
			r.Comparisons++
			if pr.Match {
				r.Successes++
			}
			seen := make(map[string]bool, len(mm))
			for _, name := range mm {
				seen[name] = true
				t, ok := tallies[name]
				if !ok {
					t = &ComponentTally{Name: name}
					tallies[name] = t
					order = append(order, name)
				}
				t.Mismatches++
				t.MismatchedVMs = append(t.MismatchedVMs, vms[j].Name)
			}
			for _, name := range order {
				if !seen[name] {
					tallies[name].Matches++
				}
			}
		}
		for _, name := range order {
			r.Components = append(r.Components, *tallies[name])
		}
		r.Verdict = c.verdict(r.Successes, r.Comparisons)
		rep.VMReports = append(rep.VMReports, r)
		switch r.Verdict {
		case VerdictAltered:
			rep.Flagged = append(rep.Flagged, vms[i].Name)
		case VerdictInconclusive:
			rep.Inconclusive = append(rep.Inconclusive, vms[i].Name)
		}
	}
	sort.Strings(rep.Flagged)
	sort.Strings(rep.Inconclusive)
	sort.Strings(rep.Errored)
	return rep, nil
}
