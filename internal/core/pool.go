package core

import (
	"fmt"
	"sort"
	"time"

	"modchecker/internal/faults"
)

// PoolReport is the result of sweeping one module across an entire VM pool:
// every VM is checked against all others, and VMs whose copy a majority of
// peers dispute are flagged. This is the operational mode the paper's
// conclusion sketches — a light-weight consistency check whose flags
// trigger deeper analysis or a snapshot revert.
type PoolReport struct {
	ModuleName string
	VMReports  []*ModuleReport

	// Flagged lists VMs with VerdictAltered; Inconclusive lists VMs with
	// no majority either way; Errored lists VMs whose own fetch failed
	// (VerdictError) — they contributed nothing to any vote.
	Flagged      []string
	Inconclusive []string
	Errored      []string

	// Healthy counts VMs whose fetch succeeded: the denominator that
	// actually voted. A report where Healthy is far below len(VMReports)
	// describes a degraded pool, not a clean one.
	Healthy int

	// BudgetSkipped marks a module that was never checked because the
	// sweep's time budget was exhausted first: no fetches ran, no verdicts
	// exist, and the module belongs in the sweep's resumable remainder.
	BudgetSkipped bool

	// Timing is total work; Elapsed is simulated wall-clock. Under the
	// parallel driver both the fetch stage and the comparison stage run on
	// a bounded worker pool, and Elapsed models each stage's critical path
	// across the workers; sequentially it is simply the sum of all work.
	Timing  PhaseTiming
	Elapsed time.Duration
	// Stages splits Elapsed by pipeline stage — where the simulated time of
	// this module's check went.
	Stages StageTiming
}

// StageTiming is the per-stage simulated elapsed breakdown of a pool check
// or a whole sweep: how long the fetch, digest, and representative-compare
// stages each took on the modeled worker schedule.
type StageTiming struct {
	Fetch   time.Duration
	Digest  time.Duration
	Compare time.Duration
}

// Total returns the summed stage time.
func (s StageTiming) Total() time.Duration { return s.Fetch + s.Digest + s.Compare }

func (s *StageTiming) addInto(o StageTiming) {
	s.Fetch += o.Fetch
	s.Digest += o.Digest
	s.Compare += o.Compare
}

// Report returns the per-VM report for the named VM, or nil.
func (p *PoolReport) Report(vm string) *ModuleReport {
	for _, r := range p.VMReports {
		if r.TargetVM == vm {
			return r
		}
	}
	return nil
}

// CheckPool fetches the module once from every VM and derives a per-VM
// majority verdict from cross-comparison. Unlike calling CheckModule per
// target (which refetches peers each time), the pool sweep reuses each
// fetch, so introspection cost stays linear in pool size; the comparison
// stage is digest pre-clustering by default (O(n) normalizations against a
// reference plus one true comparison per cluster pair) with the legacy
// O(n²) full-pairwise path selectable via Config.FullPairwise.
//
//modsafe:charged
func (c *Checker) CheckPool(module string, vms []Target) (*PoolReport, error) {
	if len(vms) < 2 {
		return nil, fmt.Errorf("core: pool check of %s needs at least 2 VMs, have %d", module, len(vms))
	}
	rep := &PoolReport{ModuleName: module}
	fetches, fetchElapsed := c.fetchStage(module, vms)
	rep.Elapsed = fetchElapsed
	rep.Stages.Fetch = fetchElapsed
	for _, f := range fetches {
		rep.Timing.addInto(f.timing)
	}
	c.assemblePool(rep, module, vms, fetches)
	for _, f := range fetches {
		c.releaseFetched(f)
	}
	return rep, nil
}

// assemblePool runs the comparison stage over the fetches and derives every
// PairResult, ComponentTally and verdict of the report. Both comparison
// paths feed the same mismatch map — an absent entry means the pair matched
// — so the derivation below is identical for the clustered and the
// full-pairwise stage.
func (c *Checker) assemblePool(rep *PoolReport, module string, vms []Target, fetches []*fetched) {
	var mismatches map[pairKey][]string
	var work time.Duration
	var st StageTiming
	if c.cfg.FullPairwise {
		mismatches, work, st = c.comparePairwise(module, fetches)
	} else {
		mismatches, work, st = c.compareClustered(module, fetches)
	}
	rep.Timing.Checker += work
	rep.Stages.Digest += st.Digest
	rep.Stages.Compare += st.Compare
	rep.Elapsed += st.Digest + st.Compare

	c.derivePool(rep, module, vms, poolView{
		err:  func(i int) error { return fetches[i].err },
		base: func(i int) uint32 { return fetches[i].info.Base },
		components: func(i int) []string {
			comps := fetches[i].parsed.Components
			names := make([]string, len(comps))
			for k := range comps {
				names[k] = comps[k].Name
			}
			return names
		},
	}, mismatches)
}

// poolView abstracts the per-VM facts the report derivation reads, so the
// flat path (which still holds every fetch) and the sharded fleet path
// (which has dropped member buffers and kept only cluster representatives)
// derive reports through the same code. base and components are consulted
// only for VMs whose err is nil.
type poolView struct {
	err        func(i int) error
	base       func(i int) uint32
	components func(i int) []string
}

// derivePool fills a PoolReport's VMReports, tallies, verdicts and
// flag/error lists from the mismatch map — an absent pair entry means the
// pair matched.
func (c *Checker) derivePool(rep *PoolReport, module string, vms []Target, v poolView, mismatches map[pairKey][]string) {
	for i := range vms {
		r := &ModuleReport{ModuleName: module, TargetVM: vms[i].Name}
		if err := v.err(i); err != nil {
			r.Verdict = VerdictError
			r.Err = err
			r.ErrClass = faults.Classify(err)
			r.Pairs = append(r.Pairs, PairResult{
				PeerVM: vms[i].Name, Err: err, ErrClass: r.ErrClass,
			})
			rep.VMReports = append(rep.VMReports, r)
			rep.Errored = append(rep.Errored, vms[i].Name)
			continue
		}
		rep.Healthy++
		r.Base = v.base(i)
		tallies := make(map[string]*ComponentTally)
		var order []string
		for _, name := range v.components(i) {
			tallies[name] = &ComponentTally{Name: name}
			order = append(order, name)
		}
		for j := range vms {
			if j == i {
				continue
			}
			if perr := v.err(j); perr != nil {
				r.Pairs = append(r.Pairs, PairResult{
					PeerVM: vms[j].Name, Err: perr, ErrClass: faults.Classify(perr),
				})
				continue
			}
			key := pairKey{i, j}
			if j < i {
				key = pairKey{j, i}
			}
			mm := mismatches[key]
			pr := PairResult{PeerVM: vms[j].Name, Match: len(mm) == 0, MismatchedComponents: mm}
			r.Pairs = append(r.Pairs, pr)
			r.Comparisons++
			if pr.Match {
				r.Successes++
			}
			seen := make(map[string]bool, len(mm))
			for _, name := range mm {
				seen[name] = true
				t, ok := tallies[name]
				if !ok {
					t = &ComponentTally{Name: name}
					tallies[name] = t
					order = append(order, name)
				}
				t.Mismatches++
				t.MismatchedVMs = append(t.MismatchedVMs, vms[j].Name)
			}
			for _, name := range order {
				if !seen[name] {
					tallies[name].Matches++
				}
			}
		}
		for _, name := range order {
			r.Components = append(r.Components, *tallies[name])
		}
		r.Verdict = c.verdict(r.Successes, r.Comparisons)
		rep.VMReports = append(rep.VMReports, r)
		switch r.Verdict {
		case VerdictAltered:
			rep.Flagged = append(rep.Flagged, vms[i].Name)
		case VerdictInconclusive:
			rep.Inconclusive = append(rep.Inconclusive, vms[i].Name)
		}
	}
	sort.Strings(rep.Flagged)
	sort.Strings(rep.Inconclusive)
	sort.Strings(rep.Errored)
}
