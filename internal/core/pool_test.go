package core

import (
	"errors"
	"testing"

	"modchecker/internal/rootkit"
)

func TestCheckPoolClean(t *testing.T) {
	_, targets := testPool(t, 5)
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 0 || len(rep.Inconclusive) != 0 {
		t.Errorf("flagged=%v inconclusive=%v", rep.Flagged, rep.Inconclusive)
	}
	if len(rep.VMReports) != 5 {
		t.Fatalf("%d VM reports", len(rep.VMReports))
	}
	for _, r := range rep.VMReports {
		if r.Verdict != VerdictClean || r.Successes != 4 {
			t.Errorf("%s: %v %d/%d", r.TargetVM, r.Verdict, r.Successes, r.Comparisons)
		}
	}
}

func TestCheckPoolSingleInfection(t *testing.T) {
	guests, targets := testPool(t, 5)
	if err := rootkit.InfectDiskAndReload(guests[3], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != targets[3].Name {
		t.Errorf("flagged = %v", rep.Flagged)
	}
	// Clean VMs lose exactly one pair (the infected peer).
	for _, r := range rep.VMReports {
		if r.TargetVM == targets[3].Name {
			continue
		}
		if r.Successes != 3 || r.Verdict != VerdictClean {
			t.Errorf("%s: %d successes, %v", r.TargetVM, r.Successes, r.Verdict)
		}
	}
}

// TestCheckPoolMajorityInfected reproduces the paper's Section III-B
// discussion: when a worm has spread to most VMs, the *clean* copies are
// the minority and get flagged — ModChecker still detects the discrepancy,
// which is what triggers deeper analysis.
func TestCheckPoolMajorityInfected(t *testing.T) {
	guests, targets := testPool(t, 5)
	for i := 0; i < 3; i++ {
		if err := rootkit.InfectDiskAndReload(guests[i], "alpha.sys", func(img []byte) ([]byte, error) {
			out, _, err := rootkit.OpcodeReplace(img)
			return out, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	// The two clean VMs (indexes 3,4) are the minority: flagged.
	if len(rep.Flagged) != 2 {
		t.Fatalf("flagged = %v", rep.Flagged)
	}
	// Discrepancy is visible regardless of which side is flagged: no VM
	// reaches full agreement.
	for _, r := range rep.VMReports {
		if r.Successes == r.Comparisons {
			t.Errorf("%s fully agrees despite split pool", r.TargetVM)
		}
	}
}

// TestCheckPoolSplitBrain: a 50/50 split (2 infected of 4) leaves every VM
// agreeing with only 1 of its 3 peers — everyone is in the minority, so
// everyone is flagged. The discrepancy is maximally visible; operators see
// an obviously inconsistent pool and escalate, per the paper's guidance.
func TestCheckPoolSplitBrain(t *testing.T) {
	guests, targets := testPool(t, 4)
	for i := 0; i < 2; i++ {
		if err := rootkit.InfectDiskAndReload(guests[i], "alpha.sys", func(img []byte) ([]byte, error) {
			out, _, err := rootkit.OpcodeReplace(img)
			return out, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 4 {
		t.Errorf("flagged = %v, want all 4 (no one has a majority of agreement)", rep.Flagged)
	}
}

// TestCheckPoolExactTieInconclusive: with 5 VMs and 2 infected, each clean
// VM agrees with exactly 2 of 4 peers — a tie, so the clean VMs are
// inconclusive while the infected ones (1 of 4 agreeing) are flagged.
func TestCheckPoolExactTieInconclusive(t *testing.T) {
	guests, targets := testPool(t, 5)
	for i := 0; i < 2; i++ {
		if err := rootkit.InfectDiskAndReload(guests[i], "alpha.sys", func(img []byte) ([]byte, error) {
			out, _, err := rootkit.OpcodeReplace(img)
			return out, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 2 {
		t.Errorf("flagged = %v, want the 2 infected VMs", rep.Flagged)
	}
	if len(rep.Inconclusive) != 3 {
		t.Errorf("inconclusive = %v, want the 3 clean VMs (tied votes)", rep.Inconclusive)
	}
}

func TestCheckPoolTooSmall(t *testing.T) {
	_, targets := testPool(t, 1)
	if _, err := NewChecker(Config{}).CheckPool("alpha.sys", targets); err == nil {
		t.Error("pool of 1 accepted")
	}
}

func TestCheckPoolModuleMissingOnOneVM(t *testing.T) {
	guests, targets := testPool(t, 4)
	if err := guests[1].UnloadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	// The VM without the module errors out (its own fetch failed, there was
	// nothing to compare); the rest vote normally.
	found := false
	for _, n := range rep.Errored {
		if n == targets[1].Name {
			found = true
		}
	}
	if !found {
		t.Errorf("VM without module not errored: %v", rep.Errored)
	}
	if r := rep.Report(targets[1].Name); r.Verdict != VerdictError || !errors.Is(r.Err, ErrModuleNotFound) {
		t.Errorf("missing-module report: verdict=%v err=%v", r.Verdict, r.Err)
	}
	for _, r := range rep.VMReports {
		if r.TargetVM == targets[1].Name {
			continue
		}
		if r.Verdict != VerdictClean || r.Comparisons != 2 {
			t.Errorf("%s: %v with %d comparisons", r.TargetVM, r.Verdict, r.Comparisons)
		}
	}
}

func TestCheckPoolParallelEquivalent(t *testing.T) {
	guests, targets := testPool(t, 6)
	if err := rootkit.InfectDiskAndReload(guests[4], "alpha.sys", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	seq, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewChecker(Config{Parallel: true}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Flagged) != len(par.Flagged) || seq.Flagged[0] != par.Flagged[0] {
		t.Errorf("parallel pool diverges: %v vs %v", seq.Flagged, par.Flagged)
	}
}

func TestPoolReportLookup(t *testing.T) {
	_, targets := testPool(t, 3)
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report(targets[1].Name) == nil {
		t.Error("Report lookup failed")
	}
	if rep.Report("nope") != nil {
		t.Error("Report found bogus VM")
	}
}

func TestCheckPoolTimingAggregates(t *testing.T) {
	_, targets := testPool(t, 4)
	rep, err := NewChecker(Config{}).CheckPool("alpha.sys", targets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timing.Searcher <= 0 || rep.Timing.Checker <= 0 {
		t.Errorf("timing = %+v", rep.Timing)
	}
}

// TestCheckPoolAllFetchesFail: sweeping a module no VM has loaded must not
// flag anyone — with zero successful fetches there are no comparisons, so
// every VM lands in Errored with VerdictError, and the report's timing still
// reflects the (wasted) introspection work rather than panicking or going
// negative.
func TestCheckPoolAllFetchesFail(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			_, targets := testPool(t, 4)
			rep, err := NewChecker(Config{Parallel: parallel}).CheckPool("ghost.sys", targets)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Flagged) != 0 {
				t.Errorf("flagged = %v, want none (nothing to compare)", rep.Flagged)
			}
			if len(rep.Errored) != len(targets) {
				t.Errorf("errored = %v, want all %d VMs", rep.Errored, len(targets))
			}
			if rep.Healthy != 0 {
				t.Errorf("Healthy = %d, want 0", rep.Healthy)
			}
			if len(rep.VMReports) != len(targets) {
				t.Fatalf("%d VM reports, want %d", len(rep.VMReports), len(targets))
			}
			for _, r := range rep.VMReports {
				if r.Verdict != VerdictError || r.Err == nil {
					t.Errorf("%s: verdict %v (err %v), want Error", r.TargetVM, r.Verdict, r.Err)
				}
				if r.Comparisons != 0 || r.Successes != 0 {
					t.Errorf("%s: %d/%d comparisons despite failed fetch", r.TargetVM, r.Successes, r.Comparisons)
				}
				if len(r.Pairs) != 1 || r.Pairs[0].Err == nil {
					t.Errorf("%s: pairs = %+v, want a single error entry", r.TargetVM, r.Pairs)
				}
			}
			// The failed walks still cost searcher time; no comparisons ran.
			if rep.Timing.Searcher <= 0 {
				t.Errorf("Timing.Searcher = %v, want > 0 (the walk itself is charged)", rep.Timing.Searcher)
			}
			if rep.Timing.Checker != 0 {
				t.Errorf("Timing.Checker = %v, want 0 (no pairs compared)", rep.Timing.Checker)
			}
			if rep.Elapsed <= 0 || rep.Elapsed < rep.Timing.Searcher && !parallel {
				t.Errorf("Elapsed = %v vs Timing %+v", rep.Elapsed, rep.Timing)
			}
		})
	}
}
