//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, whose sync.Pool deliberately drops a quarter of all Puts.
const raceEnabled = true
