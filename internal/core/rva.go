package core

import (
	"encoding/binary"
	"sync"

	"modchecker/internal/pe"
)

// scratchPool recycles normalization buffers. A 15-VM pool sweep compares
// 105 pairs of ~quarter-megabyte sections; without reuse that is tens of
// megabytes of short-lived allocations per module.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// getScratch returns a pooled buffer of length n.
//
//modown:pool scratch get
func getScratch(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratch returns a buffer to the pool.
//
//modown:pool scratch put
func putScratch(p *[]byte) {
	poisonBuf((*p)[:cap(*p)])
	scratchPool.Put(p)
}

// NormalizePair implements the paper's Algorithm 2: given the same section's
// data copied from two VMs and the two modules' load bases, locate embedded
// absolute addresses by byte difference and rewrite them as RVAs in both
// copies, making untampered sections byte-identical (Figure 4 C/D).
//
// The address-location heuristic is the paper's: compare the two base
// addresses byte by byte (in memory order); the index of the first
// differing byte is the "offset". When the section scan hits a differing
// byte at j, the 4-byte little-endian address field is assumed to start
// `offset` bytes earlier. Because module bases are page aligned (equal low
// bytes) and both loaders add the same RVA, the first differing byte of two
// relocated addresses falls at exactly the same index as the first
// differing byte of the bases, so the heuristic is exact for genuine
// relocation sites. A differing 4-byte window whose two values do NOT
// decode to the same RVA is left untouched — that is a real content
// difference and must surface in the hashes.
//
// Note on fidelity: the paper's pseudocode advances the scan with
// "j <- j - offset + 1 - 4" (line 22), which would move backwards and never
// terminate; the evidently intended advance — past the 4-byte field just
// processed — is what this implementation (and any working one) does. See
// TestAlgorithm2PaperLine22Quirk.
//
// The returned slices are fresh copies; inputs are never mutated. sites
// holds the section-relative offsets of every rewritten address field.
func NormalizePair(data1, data2 []byte, base1, base2 uint32) (n1, n2 []byte, sites []uint32) {
	n1 = append([]byte(nil), data1...)
	n2 = append([]byte(nil), data2...)
	sites = normalizePairInPlace(n1, n2, base1, base2)
	return n1, n2, sites
}

// normalizePairInPlace is Algorithm 2 operating directly on the two
// buffers (which it mutates). NormalizePair wraps it with copies; the
// checker's hot path runs it on pooled scratch buffers instead.
func normalizePairInPlace(n1, n2 []byte, base1, base2 uint32) (sites []uint32) {
	// Algorithm 2 lines 1-9: find the first differing byte of the bases.
	le := binary.LittleEndian
	var b1, b2 [4]byte
	le.PutUint32(b1[:], base1)
	le.PutUint32(b2[:], base2)
	offset := -1
	for i := 0; i < 4; i++ {
		if b1[i] != b2[i] {
			offset = i
			break
		}
	}
	if offset < 0 {
		// Identical bases: relocated addresses are identical too; any byte
		// difference is a genuine modification. Nothing to rewrite.
		return nil
	}

	limit := len(n1)
	if len(n2) < limit {
		limit = len(n2)
	}
	for j := 0; j < limit; {
		if n1[j] == n2[j] {
			j++
			continue
		}
		start := j - offset
		if start >= 0 && start+4 <= limit {
			a1 := le.Uint32(n1[start:])
			a2 := le.Uint32(n2[start:])
			rva1 := a1 - base1
			rva2 := a2 - base2
			if rva1 == rva2 {
				le.PutUint32(n1[start:], rva1)
				le.PutUint32(n2[start:], rva2)
				sites = append(sites, uint32(start))
				j = start + 4
				continue
			}
		}
		// Not a consistent relocation: a genuine content difference.
		// Leave the byte and keep scanning.
		j++
	}
	return sites
}

// NormalizeWithRelocs is the ablation alternative (A2) to the diff scan: it
// recovers relocation sites from the module's own in-memory .reloc table
// (data directory 5) and rewrites each 32-bit field back to an RVA by
// subtracting the load base. Unlike NormalizePair it needs no second VM and
// normalizes each copy once, but it trusts metadata inside the (possibly
// hostile) module — the robustness trade-off DESIGN.md discusses.
//
// It returns the section-RVA-sorted fixup sites; apply them to a component
// with ApplyRelocNormalization.
func NormalizeWithRelocs(raw []byte) ([]uint32, error) {
	le := binary.LittleEndian
	lfanew := le.Uint32(raw[0x3C:])
	optOff := lfanew + 4 + pe.FileHeaderSize
	// DataDirectory starts 96 bytes into the optional header.
	dirOff := optOff + 96 + pe.DirBaseReloc*8
	relocRVA := le.Uint32(raw[dirOff:])
	relocSize := le.Uint32(raw[dirOff+4:])
	if relocRVA == 0 || relocSize == 0 {
		return nil, nil
	}
	if uint64(relocRVA)+uint64(relocSize) > uint64(len(raw)) {
		return nil, pe.ErrFormat
	}
	return pe.ParseRelocTable(raw[relocRVA : relocRVA+relocSize])
}

// ApplyRelocNormalization returns a copy of the component's data with every
// relocation site inside it rewritten from absolute address to RVA. sites
// are image-relative RVAs (as returned by NormalizeWithRelocs); base is the
// module's load base on this VM.
func ApplyRelocNormalization(c *Component, sites []uint32, base uint32) []byte {
	out := append([]byte(nil), c.Data...)
	le := binary.LittleEndian
	lo := c.VirtualAddress
	hi := c.VirtualAddress + uint32(len(out))
	for _, rva := range sites {
		if rva < lo || rva+4 > hi {
			continue
		}
		off := rva - lo
		le.PutUint32(out[off:], le.Uint32(out[off:])-base)
	}
	return out
}
