package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"modchecker/internal/pe"
)

// buildPair lays one synthetic section out at two bases: identical RVAs,
// relocated absolute addresses, optional tampering applied to copy 1.
func buildPair(seed int64, size int, nAddrs int, base1, base2 uint32) (d1, d2 []byte, sites []uint32) {
	rng := rand.New(rand.NewSource(seed))
	content := make([]byte, size)
	rng.Read(content)
	// Plant non-overlapping 4-byte address fields.
	used := map[int]bool{}
	for len(sites) < nAddrs {
		off := rng.Intn(size - 4)
		ok := true
		for d := -3; d <= 3; d++ {
			if used[off+d] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for d := 0; d < 4; d++ {
			used[off+d] = true
		}
		sites = append(sites, uint32(off))
	}
	d1 = append([]byte(nil), content...)
	d2 = append([]byte(nil), content...)
	le := binary.LittleEndian
	for _, off := range sites {
		rva := uint32(rng.Intn(1 << 20))
		le.PutUint32(d1[off:], base1+rva)
		le.PutUint32(d2[off:], base2+rva)
	}
	return d1, d2, sites
}

func TestNormalizePairRecoversIdentity(t *testing.T) {
	const base1, base2 = 0xF8CC2000, 0xF8D0C000 // the paper's Figure 4 bases
	d1, d2, sites := buildPair(1, 4096, 40, base1, base2)
	n1, n2, found := NormalizePair(d1, d2, base1, base2)
	if !bytes.Equal(n1, n2) {
		t.Fatal("normalized copies differ for untampered section")
	}
	if len(found) != len(sites) {
		t.Errorf("recovered %d sites, planted %d", len(found), len(sites))
	}
	// Every rewritten field must now hold the RVA.
	le := binary.LittleEndian
	for _, off := range found {
		v := le.Uint32(n1[off:])
		if v >= 0x00100000 {
			t.Errorf("site %#x holds %#x, not an RVA", off, v)
		}
	}
}

func TestNormalizePairDoesNotMutateInputs(t *testing.T) {
	d1, d2, _ := buildPair(2, 1024, 10, 0xF8CC2000, 0xF8D0C000)
	c1 := append([]byte(nil), d1...)
	c2 := append([]byte(nil), d2...)
	NormalizePair(d1, d2, 0xF8CC2000, 0xF8D0C000)
	if !bytes.Equal(d1, c1) || !bytes.Equal(d2, c2) {
		t.Error("inputs mutated")
	}
}

func TestNormalizePairIdenticalBases(t *testing.T) {
	d1, d2, _ := buildPair(3, 1024, 10, 0xF8CC2000, 0xF8CC2000)
	n1, n2, sites := NormalizePair(d1, d2, 0xF8CC2000, 0xF8CC2000)
	if sites != nil {
		t.Errorf("sites rewritten with identical bases: %v", sites)
	}
	if !bytes.Equal(n1, d1) || !bytes.Equal(n2, d2) {
		t.Error("data changed with identical bases")
	}
}

func TestNormalizePairPreservesTampering(t *testing.T) {
	const base1, base2 = 0xF8CC2000, 0xF8D0C000
	d1, d2, _ := buildPair(4, 4096, 30, base1, base2)
	// Tamper a non-address byte in copy 1 (the E1 scenario).
	off := 100
	for {
		// Find a spot where the copies agree (not an address field).
		if d1[off] == d2[off] && d1[off+1] == d2[off+1] && d1[off+2] == d2[off+2] {
			break
		}
		off++
	}
	d1[off] ^= 0x5A
	n1, n2, _ := NormalizePair(d1, d2, base1, base2)
	if bytes.Equal(n1, n2) {
		t.Fatal("tampering normalized away — detection would fail")
	}
	diffs := 0
	for i := range n1 {
		if n1[i] != n2[i] {
			diffs++
		}
	}
	if diffs > 8 {
		t.Errorf("tampering of 1 byte produced %d residual diffs", diffs)
	}
}

// TestNormalizePairOffsetBases exercises the paper's offset logic: bases
// whose first differing byte is at each possible index.
func TestNormalizePairOffsetBases(t *testing.T) {
	cases := []struct {
		name         string
		base1, base2 uint32
	}{
		{"differ at byte0", 0xF8CC2001, 0xF8CC2002}, // unaligned; contrived
		{"differ at byte1", 0xF8CC2000, 0xF8CC9000},
		{"differ at byte2", 0xF8CC2000, 0xF8D02000},
		{"differ at byte3", 0xF8CC2000, 0xF9CC2000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d1, d2, _ := buildPair(5, 2048, 20, c.base1, c.base2)
			n1, n2, _ := NormalizePair(d1, d2, c.base1, c.base2)
			if !bytes.Equal(n1, n2) {
				t.Error("normalization failed")
			}
		})
	}
}

func TestNormalizePairAddressAtSectionEdges(t *testing.T) {
	const base1, base2 = 0xF8CC2000, 0xF8D0C000
	le := binary.LittleEndian
	d1 := make([]byte, 64)
	d2 := make([]byte, 64)
	// Address at offset 0 and at the very end.
	le.PutUint32(d1[0:], base1+0x500)
	le.PutUint32(d2[0:], base2+0x500)
	le.PutUint32(d1[60:], base1+0x600)
	le.PutUint32(d2[60:], base2+0x600)
	n1, n2, sites := NormalizePair(d1, d2, base1, base2)
	if !bytes.Equal(n1, n2) {
		t.Error("edge addresses not normalized")
	}
	if len(sites) != 2 || sites[0] != 0 || sites[1] != 60 {
		t.Errorf("sites = %v", sites)
	}
}

func TestNormalizePairDifferentLengths(t *testing.T) {
	const base1, base2 = 0xF8CC2000, 0xF8D0C000
	d1, d2, _ := buildPair(6, 1024, 10, base1, base2)
	short := d2[:512]
	// Must not panic; comparison proceeds over the common prefix.
	n1, n2, _ := NormalizePair(d1, short, base1, base2)
	if len(n1) != 1024 || len(n2) != 512 {
		t.Errorf("lengths changed: %d, %d", len(n1), len(n2))
	}
}

// TestAlgorithm2PaperLine22Quirk documents the paper's pseudocode defect:
// line 22 advances the scan index as j <- j - offset + 1 - 4, i.e.
// *backwards* past the address just processed, which would loop forever.
// The working advance is j <- (j - offset) + 4 (0-based), which this
// implementation uses. This test pins the corrected behavior: scanning
// terminates and consecutive addresses are each processed exactly once.
func TestAlgorithm2PaperLine22Quirk(t *testing.T) {
	const base1, base2 = 0xF8CC2000, 0xF8D0C000
	le := binary.LittleEndian
	// Two adjacent address fields, back to back: the buggy advance would
	// re-scan the first field's bytes.
	d1 := make([]byte, 16)
	d2 := make([]byte, 16)
	le.PutUint32(d1[0:], base1+0x100)
	le.PutUint32(d2[0:], base2+0x100)
	le.PutUint32(d1[4:], base1+0x200)
	le.PutUint32(d2[4:], base2+0x200)
	n1, n2, sites := NormalizePair(d1, d2, base1, base2)
	if !bytes.Equal(n1, n2) {
		t.Error("adjacent addresses not normalized")
	}
	if len(sites) != 2 || sites[0] != 0 || sites[1] != 4 {
		t.Errorf("sites = %v, want [0 4]", sites)
	}
}

// TestNormalizePairQuick property-tests the full invariant over random
// sections and page-aligned bases: normalize(untampered pair) is equal;
// flipping any non-address byte keeps them unequal.
func TestNormalizePairQuick(t *testing.T) {
	f := func(seed int64, a, b uint16) bool {
		base1 := 0xF8000000 + uint32(a)*0x1000
		base2 := 0xF8000000 + uint32(b)*0x1000
		d1, d2, _ := buildPair(seed, 1024, 12, base1, base2)
		n1, n2, _ := NormalizePair(d1, d2, base1, base2)
		return bytes.Equal(n1, n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeAgainstRealLoader cross-validates the diff scan against the
// actual guest loader: both VMs' .text sections, fetched via introspection,
// normalize to equality.
func TestNormalizeAgainstRealLoader(t *testing.T) {
	_, targets := testPool(t, 2)
	var parsed [2]*ParsedModule
	var bases [2]uint32
	for i := 0; i < 2; i++ {
		s := NewSearcher(targets[i].Handle, CopyPageWise)
		info, buf, _, err := s.FetchModule("alpha.sys")
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := ParseModule(targets[i].Name, "alpha.sys", info.Base, buf)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = m
		bases[i] = info.Base
	}
	t1 := parsed[0].Component(".text")
	t2 := parsed[1].Component(".text")
	if bytes.Equal(t1.Data, t2.Data) {
		t.Fatal("raw .text identical across bases — relocation not happening?")
	}
	n1, n2, sites := NormalizePair(t1.Data, t2.Data, bases[0], bases[1])
	if !bytes.Equal(n1, n2) {
		t.Fatal("real loader output did not normalize to equality")
	}
	if len(sites) == 0 {
		t.Error("no sites recovered")
	}
}

// TestDiffScanMatchesRelocTable cross-validates the two normalizers: the
// sites the diff scan recovers must be exactly the .reloc-table sites that
// fall within .text (for two VMs with different bases).
func TestDiffScanMatchesRelocTable(t *testing.T) {
	guests, targets := testPool(t, 2)
	var parsed [2]*ParsedModule
	var bases [2]uint32
	for i := 0; i < 2; i++ {
		s := NewSearcher(targets[i].Handle, CopyPageWise)
		info, buf, _, err := s.FetchModule("alpha.sys")
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := ParseModule(targets[i].Name, "alpha.sys", info.Base, buf)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = m
		bases[i] = info.Base
	}
	t1 := parsed[0].Component(".text")
	t2 := parsed[1].Component(".text")
	_, _, scanSites := NormalizePair(t1.Data, t2.Data, bases[0], bases[1])

	img, err := pe.Parse(guests[0].DiskImage("alpha.sys"))
	if err != nil {
		t.Fatal(err)
	}
	all, err := img.RelocSites()
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for _, rva := range all {
		if rva >= t1.VirtualAddress && rva+4 <= t1.VirtualAddress+uint32(len(t1.Data)) {
			want = append(want, rva-t1.VirtualAddress)
		}
	}
	if len(scanSites) != len(want) {
		t.Fatalf("diff scan found %d sites, reloc table has %d in .text", len(scanSites), len(want))
	}
	for i := range want {
		if scanSites[i] != want[i] {
			t.Fatalf("site %d: scan %#x, table %#x", i, scanSites[i], want[i])
		}
	}
}

func TestNormalizeWithRelocsEquivalent(t *testing.T) {
	_, targets := testPool(t, 2)
	var comps [2][]byte
	for i := 0; i < 2; i++ {
		s := NewSearcher(targets[i].Handle, CopyPageWise)
		info, buf, _, err := s.FetchModule("alpha.sys")
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := ParseModule(targets[i].Name, "alpha.sys", info.Base, buf)
		if err != nil {
			t.Fatal(err)
		}
		sites, err := NormalizeWithRelocs(m.Raw)
		if err != nil {
			t.Fatal(err)
		}
		comps[i] = ApplyRelocNormalization(m.Component(".text"), sites, info.Base)
	}
	if !bytes.Equal(comps[0], comps[1]) {
		t.Error("reloc-table normalization did not converge across VMs")
	}
}

func TestNormalizeWithRelocsNoDirectory(t *testing.T) {
	// An image with no .reloc yields no sites and no error.
	b := pe.NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x200), pe.ScnCntCode|pe.ScnMemExecute|pe.ScnMemRead)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := img.Layout()
	if err != nil {
		t.Fatal(err)
	}
	sites, err := NormalizeWithRelocs(mem)
	if err != nil || sites != nil {
		t.Errorf("got %v, %v", sites, err)
	}
}
