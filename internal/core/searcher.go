// Package core implements ModChecker itself: the Module-Searcher,
// Module-Parser and Integrity-Checker of the paper's Figure 1, plus the
// sequential and parallel drivers that compare a kernel module across a
// pool of VMs and vote on its integrity.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"modchecker/internal/faults"
	"modchecker/internal/nt"
	"modchecker/internal/vmi"
)

// fetchBufPool recycles whole-module copy buffers. The fetch stage of a
// sweep allocates one SizeOfImage-sized buffer per VM per module — for the
// paper's 15-VM pool that is ~45 MiB of short-lived allocations per sweep,
// and it dwarfs everything else the pipeline allocates. Buffers are drawn
// here by the page-wise copy and returned by Checker.releaseFetched once
// the report derivation no longer needs the bytes.
var fetchBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getFetchBuf returns a pooled buffer of length n (contents undefined; the
// copy overwrites every byte before anyone reads it).
//
//modown:pool fetch-buf get
func getFetchBuf(n int) []byte {
	p := fetchBufPool.Get().(*[]byte)
	b := *p
	if cap(b) < n {
		b = make([]byte, n)
	}
	return b[:n]
}

// putFetchBuf returns a buffer to the pool. The slice header is re-boxed on
// every put; that 24-byte allocation is the price of handing out plain
// []byte values, and it is noise next to the module-sized buffer it saves.
//
//modown:pool fetch-buf put
func putFetchBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	poisonBuf(b[:cap(b)])
	p := new([]byte)
	*p = b[:0]
	fetchBufPool.Put(p)
}

// ReleaseModuleCopy recycles a page-wise module copy obtained from
// FetchModule or CopyModule once nothing aliases its bytes. Callers
// outside the checker (the baseline verifier, the experiment drivers) use
// it in place of Checker.releaseFetched; passing a CopyMapped view is safe
// only because putFetchBuf re-boxes, but such views should simply not be
// recycled — they are not pool-owned.
//
//modown:pool fetch-buf put
func ReleaseModuleCopy(b []byte) {
	putFetchBuf(b)
}

// ErrModuleNotFound is returned when the named module is not in the guest's
// loaded-module list.
var ErrModuleNotFound = errors.New("core: module not loaded")

// maxListEntries bounds PsLoadedModuleList traversal so that a corrupted
// (or maliciously looped) list cannot hang the checker.
const maxListEntries = 4096

// MaxModuleSize bounds how much the searcher will copy for one module. A
// compromised guest controls the SizeOfImage field of its LDR entries; an
// absurd value must fail the check, not exhaust Dom0's memory. 64 MiB is
// several times the largest real kernel module.
const MaxModuleSize = 64 << 20

// RetryPolicy bounds how the Module-Searcher responds to transient
// introspection faults (flaky reads, pages briefly not present, torn reads).
// Backoff between attempts is nominal simulated time: it is folded into the
// fetch's returned cost and charged to the hypervisor clock by the caller —
// never slept on the host, so a faulty pool cannot stall the test suite.
type RetryPolicy struct {
	// MaxAttempts is the total number of fetch attempts (minimum 1; zero
	// means no retry).
	MaxAttempts int
	// BaseBackoff is the nominal pause before the first retry; it doubles
	// each attempt up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling backoff (0 = uncapped).
	MaxBackoff time.Duration
	// VerifyReads re-reads each module copy until two consecutive passes
	// agree, detecting pages the guest rewrote mid-copy. A torn copy that
	// never stabilizes fails transiently and re-enters the retry loop.
	VerifyReads bool
}

// verifyPasses bounds the read-verify loop of one fetch attempt; a range
// still churning after this many passes fails the attempt (transiently).
const verifyPasses = 4

// DefaultRetryPolicy returns the retry configuration used by the cloud
// facade: a few attempts with millisecond-scale simulated backoff, verified
// reads on.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		VerifyReads: true,
	}
}

// CopyStrategy selects how Module-Searcher copies a module out of guest
// memory.
type CopyStrategy int

const (
	// CopyPageWise reads the module page by page with a translation per
	// page — the paper's implementation, and the reason Module-Searcher
	// dominates ModChecker's runtime (Section V-C.1).
	CopyPageWise CopyStrategy = iota
	// CopyMapped establishes one bulk mapping then copies — the
	// optimization evaluated by ablation A3.
	CopyMapped
)

// ModuleInfo describes one entry of the guest's loaded-module list as
// recovered purely through introspection.
type ModuleInfo struct {
	Name        string
	FullName    string
	Base        uint32 // DllBase
	SizeOfImage uint32
	EntryPoint  uint32
	LdrEntryVA  uint32
}

// Searcher is ModChecker's Module-Searcher: the only component that touches
// guest memory (paper Section III-B1). It walks PsLoadedModuleList, finds
// the module under check and copies the whole in-memory module into a local
// buffer.
type Searcher struct {
	h        *vmi.Handle
	strategy CopyStrategy
	retry    RetryPolicy
}

// NewSearcher creates a Searcher over an introspection handle.
func NewSearcher(h *vmi.Handle, strategy CopyStrategy) *Searcher {
	return &Searcher{h: h, strategy: strategy}
}

// WithRetry sets the searcher's retry policy and returns the searcher.
func (s *Searcher) WithRetry(p RetryPolicy) *Searcher {
	s.retry = p
	return s
}

// ListModules walks the guest's PsLoadedModuleList and returns every
// module, in load order. It performs the same pointer chase the paper
// describes: resolve the PsLoadedModuleList symbol, follow FLINK through
// each LDR_DATA_TABLE_ENTRY until the walk returns to the list head.
func (s *Searcher) ListModules() ([]ModuleInfo, error) {
	headVA, err := s.h.SymbolVA("PsLoadedModuleList")
	if err != nil {
		return nil, err
	}
	head, err := s.h.ReadListEntry(headVA)
	if err != nil {
		return nil, fmt.Errorf("core: reading PsLoadedModuleList head: %w", err)
	}
	var out []ModuleInfo
	cur := head.Flink
	for n := 0; cur != headVA; n++ {
		if n >= maxListEntries {
			return nil, fmt.Errorf("core: PsLoadedModuleList on %s exceeds %d entries (corrupt or looped list)",
				s.h.VMName(), maxListEntries)
		}
		entry, err := s.h.ReadLdrEntry(cur)
		if err != nil {
			return nil, fmt.Errorf("core: reading LDR entry at %#x: %w", cur, err)
		}
		name, err := s.readUnicode(entry.BaseDllName)
		if err != nil {
			return nil, fmt.Errorf("core: reading BaseDllName of entry %#x: %w", cur, err)
		}
		full, err := s.readUnicode(entry.FullDllName)
		if err != nil {
			return nil, fmt.Errorf("core: reading FullDllName of entry %#x: %w", cur, err)
		}
		out = append(out, ModuleInfo{
			Name:        name,
			FullName:    full,
			Base:        entry.DllBase,
			SizeOfImage: entry.SizeOfImage,
			EntryPoint:  entry.EntryPoint,
			LdrEntryVA:  cur,
		})
		cur = entry.InLoadOrderLinks.Flink
	}
	return out, nil
}

func (s *Searcher) readUnicode(us nt.UnicodeString) (string, error) {
	if us.Length == 0 || us.Buffer == 0 {
		return "", nil
	}
	buf := make([]byte, us.Length)
	if err := s.h.ReadVA(us.Buffer, buf); err != nil {
		return "", err
	}
	return nt.DecodeUTF16(buf)
}

// FindModule locates the named module in the loaded-module list
// (case-insensitively, as Windows compares module names).
func (s *Searcher) FindModule(name string) (*ModuleInfo, error) {
	mods, err := s.ListModules()
	if err != nil {
		return nil, err
	}
	for i := range mods {
		if strings.EqualFold(mods[i].Name, name) {
			return &mods[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %s on %s", ErrModuleNotFound, name, s.h.VMName())
}

// CopyModule copies the whole in-memory module (SizeOfImage bytes starting
// at DllBase) into a local buffer, using the configured strategy. Page-wise
// copies come from the fetch-buffer pool and must be recycled through
// putFetchBuf (releaseFetched does); CopyMapped results are zero-copy
// views of hypervisor-owned memory and must not be mutated or pooled.
//
//modown:pool fetch-buf get
//modown:borrowed CopyMapped returns a zero-copy view, not a pooled buffer
func (s *Searcher) CopyModule(info *ModuleInfo) ([]byte, error) {
	if info.SizeOfImage == 0 || info.SizeOfImage > MaxModuleSize {
		return nil, fmt.Errorf("core: %s on %s claims SizeOfImage %#x (corrupt or hostile LDR entry)",
			info.Name, s.h.VMName(), info.SizeOfImage)
	}
	switch s.strategy {
	case CopyMapped:
		if s.retry.VerifyReads {
			return s.copyMappedVerified(info)
		}
		return s.h.MapRange(info.Base, info.SizeOfImage)
	default:
		buf := getFetchBuf(int(info.SizeOfImage))
		if s.retry.VerifyReads {
			if _, err := s.h.ReadVAConsistent(info.Base, buf, verifyPasses); err != nil {
				putFetchBuf(buf)
				return nil, fmt.Errorf("core: copying %s from %s: %w", info.Name, s.h.VMName(), err)
			}
			return buf, nil
		}
		if err := s.h.ReadVA(info.Base, buf); err != nil {
			putFetchBuf(buf)
			return nil, fmt.Errorf("core: copying %s from %s: %w", info.Name, s.h.VMName(), err)
		}
		return buf, nil
	}
}

// copyMappedVerified is the bulk-mapping analogue of ReadVAConsistent: map
// the region repeatedly until two consecutive mappings agree.
//
//modown:borrowed forwards MapRange views
func (s *Searcher) copyMappedVerified(info *ModuleInfo) ([]byte, error) {
	prev, err := s.h.MapRange(info.Base, info.SizeOfImage)
	if err != nil {
		return nil, fmt.Errorf("core: copying %s from %s: %w", info.Name, s.h.VMName(), err)
	}
	for pass := 2; pass <= verifyPasses; pass++ {
		cur, err := s.h.MapRange(info.Base, info.SizeOfImage)
		if err != nil {
			return nil, fmt.Errorf("core: copying %s from %s: %w", info.Name, s.h.VMName(), err)
		}
		if bytes.Equal(prev, cur) {
			return cur, nil
		}
		prev = cur
	}
	return nil, fmt.Errorf("core: copying %s from %s after %d passes: %w",
		info.Name, s.h.VMName(), verifyPasses, vmi.ErrTornRead)
}

// FetchModule finds and copies the named module, returning the info, the
// module bytes, and the nominal introspection cost incurred. Under a retry
// policy, attempts that fail with a *transient* fault are retried with
// exponentially growing backoff; the backoff is nominal simulated time,
// folded into the returned cost (the caller charges it to the hypervisor
// clock). Permanent faults and exhausted budgets return the last error.
//
//modown:pool fetch-buf get
//modown:borrowed CopyMapped fetches forward zero-copy views
func (s *Searcher) FetchModule(name string) (*ModuleInfo, []byte, time.Duration, error) {
	attempts := s.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var total time.Duration
	backoff := s.retry.BaseBackoff
	for attempt := 1; ; attempt++ {
		info, buf, cost, err := s.fetchOnce(name)
		total += cost
		if err == nil {
			return info, buf, total, nil
		}
		if attempt >= attempts || faults.Classify(err) != faults.ClassTransient {
			return nil, nil, total, err
		}
		total += backoff
		backoff *= 2
		if s.retry.MaxBackoff > 0 && backoff > s.retry.MaxBackoff {
			backoff = s.retry.MaxBackoff
		}
	}
}

// fetchOnce is one find-and-copy attempt.
//
//modown:pool fetch-buf get
//modown:borrowed CopyMapped fetches forward zero-copy views
func (s *Searcher) fetchOnce(name string) (*ModuleInfo, []byte, time.Duration, error) {
	before := s.h.Stats()
	info, err := s.FindModule(name)
	if err != nil {
		return nil, nil, statsCost(s.h.Stats(), before), err
	}
	buf, err := s.CopyModule(info)
	cost := statsCost(s.h.Stats(), before)
	if err != nil {
		return nil, nil, cost, err
	}
	return info, buf, cost, nil
}

// statsCost converts a handle-stats delta into the nominal (uncontended)
// introspection time it represents. The attribution is exact even when
// page-wise and mapped reads mix within one window: the handle counts
// mapped pages separately (Stats.PagesMapped is the subset of PagesRead
// copied under a bulk mapping) and TLB-served translations separately from
// genuine page-table walks.
func statsCost(after, before vmi.Stats) time.Duration {
	walks := time.Duration(after.PTWalks-before.PTWalks) * vmi.CostPTWalk
	hits := time.Duration(after.TLBHits-before.TLBHits) * vmi.CostTLBHit
	maps := time.Duration(after.MapSetups-before.MapSetups) * vmi.CostMapSetup
	mapped := after.PagesMapped - before.PagesMapped
	paged := after.PagesRead - before.PagesRead - mapped
	return walks + hits + maps +
		time.Duration(paged)*vmi.CostPageRead +
		time.Duration(mapped)*vmi.CostMappedPage
}

// retryCosted runs one introspection operation under the searcher's retry
// policy, measuring each attempt's cost from the handle's stats delta and
// folding nominal backoff into the returned total — the same accounting
// FetchModule performs for its combined find+copy attempts.
func (s *Searcher) retryCosted(op func() error) (time.Duration, error) {
	attempts := s.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var total time.Duration
	backoff := s.retry.BaseBackoff
	for attempt := 1; ; attempt++ {
		before := s.h.Stats()
		err := op()
		total += statsCost(s.h.Stats(), before)
		if err == nil {
			return total, nil
		}
		if attempt >= attempts || faults.Classify(err) != faults.ClassTransient {
			return total, err
		}
		total += backoff
		backoff *= 2
		if s.retry.MaxBackoff > 0 && backoff > s.retry.MaxBackoff {
			backoff = s.retry.MaxBackoff
		}
	}
}

// ListModulesCosted walks the loaded-module list under the retry policy,
// returning the entries plus the nominal introspection cost (including any
// simulated backoff). The sweep session uses it to snapshot each VM's
// module table once per sweep instead of re-walking the LDR list per module.
func (s *Searcher) ListModulesCosted() ([]ModuleInfo, time.Duration, error) {
	var mods []ModuleInfo
	cost, err := s.retryCosted(func() error {
		var e error
		mods, e = s.ListModules()
		return e
	})
	return mods, cost, err
}

// CopyModuleCosted copies one already-located module under the retry
// policy, returning the bytes plus the nominal introspection cost. Paired
// with ListModulesCosted it splits FetchModule into its two halves so the
// listing half can be amortized across a sweep.
//
//modown:pool fetch-buf get
//modown:borrowed CopyMapped fetches forward zero-copy views
func (s *Searcher) CopyModuleCosted(info *ModuleInfo) ([]byte, time.Duration, error) {
	var buf []byte
	cost, err := s.retryCosted(func() error {
		var e error
		buf, e = s.CopyModule(info)
		return e
	})
	return buf, cost, err
}
