package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"modchecker/internal/guest"
	"modchecker/internal/nt"
	"modchecker/internal/vmi"
)

func TestListModulesMatchesGroundTruth(t *testing.T) {
	guests, targets := testPool(t, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	mods, err := s.ListModules()
	if err != nil {
		t.Fatal(err)
	}
	truth := guests[0].Modules()
	if len(mods) != len(truth) {
		t.Fatalf("introspection sees %d modules, guest has %d", len(mods), len(truth))
	}
	byName := map[string]ModuleInfo{}
	for _, m := range mods {
		byName[m.Name] = m
	}
	for _, want := range truth {
		got, ok := byName[want.Name]
		if !ok {
			t.Errorf("module %s not found via introspection", want.Name)
			continue
		}
		if got.Base != want.Base || got.SizeOfImage != want.SizeOfImage {
			t.Errorf("%s: introspected base/size %#x/%#x, guest truth %#x/%#x",
				want.Name, got.Base, got.SizeOfImage, want.Base, want.SizeOfImage)
		}
		if got.LdrEntryVA != want.LdrEntryVA {
			t.Errorf("%s: LDR entry VA %#x, want %#x", want.Name, got.LdrEntryVA, want.LdrEntryVA)
		}
	}
}

func TestListModulesFullName(t *testing.T) {
	_, targets := testPool(t, 1)
	mods, err := NewSearcher(targets[0].Handle, CopyPageWise).ListModules()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		want := `\SystemRoot\System32\drivers\` + m.Name
		if m.FullName != want {
			t.Errorf("FullName = %q, want %q", m.FullName, want)
		}
	}
}

func TestFindModuleCaseInsensitive(t *testing.T) {
	_, targets := testPool(t, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	info, err := s.FindModule("ALPHA.SYS")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "alpha.sys" {
		t.Errorf("found %q", info.Name)
	}
}

func TestFindModuleMissing(t *testing.T) {
	_, targets := testPool(t, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	if _, err := s.FindModule("ghost.sys"); !errors.Is(err, ErrModuleNotFound) {
		t.Errorf("err = %v, want ErrModuleNotFound", err)
	}
}

func TestCopyModuleMatchesGuestMemory(t *testing.T) {
	guests, targets := testPool(t, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	info, err := s.FindModule("alpha.sys")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.CopyModule(info)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, info.SizeOfImage)
	guests[0].AddressSpace().Read(info.Base, want)
	if !bytes.Equal(buf, want) {
		t.Error("copied module differs from guest memory")
	}
}

func TestCopyModuleMappedStrategy(t *testing.T) {
	_, targets := testPool(t, 1)
	pw := NewSearcher(targets[0].Handle, CopyPageWise)
	mp := NewSearcher(targets[0].Handle, CopyMapped)
	info, _ := pw.FindModule("alpha.sys")
	a, err := pw.CopyModule(info)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mp.CopyModule(info)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("strategies disagree on content")
	}
}

func TestFetchModuleCost(t *testing.T) {
	_, targets := testPool(t, 1)
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	_, buf, cost, err := s.FetchModule("beta.sys")
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("empty module")
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
	// The copy alone touches SizeOfImage/PageSize pages; cost must exceed
	// that many page reads.
	minCost := time.Duration(len(buf)/4096) * vmi.CostPageRead
	if cost < minCost {
		t.Errorf("cost %v below floor %v", cost, minCost)
	}
}

// TestSearcherDetectsLoopedList verifies the corrupt-list guard: a malware
// that makes the list circular (skipping the head) must not hang the
// searcher.
func TestSearcherDetectsLoopedList(t *testing.T) {
	guests, targets := testPool(t, 1)
	g := guests[0]
	mods := g.Modules()
	// Point the last module's FLINK back at the first module, bypassing
	// the list head sentinel.
	first, last := mods[0], mods[len(mods)-1]
	le := nt.EncodeListEntry(nt.ListEntry{Flink: first.LdrEntryVA, Blink: 0})
	if err := g.AddressSpace().Write(last.LdrEntryVA, le[:4]); err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(targets[0].Handle, CopyPageWise)
	if _, err := s.ListModules(); err == nil {
		t.Error("looped list traversed without error")
	}
}

// TestSearcherUnlinkedModuleInvisible demonstrates the classic DKOM attack
// surface: a module unlinked from PsLoadedModuleList is invisible to the
// searcher (a limitation ModChecker shares with the paper's prototype).
func TestSearcherUnlinkedModuleInvisible(t *testing.T) {
	guests, targets := testPool(t, 1)
	g := guests[0]
	mod := g.Module("alpha.sys")
	// DKOM-style unlink performed by the "attacker" inside the guest.
	raw := make([]byte, nt.LdrDataTableEntrySize)
	g.AddressSpace().Read(mod.LdrEntryVA, raw)
	e, _ := nt.DecodeLdrDataTableEntry(raw)
	g.AddressSpace().Write(e.InLoadOrderLinks.Blink, nt.EncodeListEntry(nt.ListEntry{
		Flink: e.InLoadOrderLinks.Flink,
		Blink: mustBlinkOf(t, g, e.InLoadOrderLinks.Blink),
	}))
	g.AddressSpace().Write(e.InLoadOrderLinks.Flink+4, encodeU32(e.InLoadOrderLinks.Blink))

	s := NewSearcher(targets[0].Handle, CopyPageWise)
	if _, err := s.FindModule("alpha.sys"); !errors.Is(err, ErrModuleNotFound) {
		t.Errorf("unlinked module still visible: %v", err)
	}
}

func mustBlinkOf(t *testing.T, g *guest.Guest, va uint32) uint32 {
	t.Helper()
	b := make([]byte, nt.ListEntrySize)
	if err := g.AddressSpace().Read(va, b); err != nil {
		t.Fatal(err)
	}
	le, _ := nt.DecodeListEntry(b)
	return le.Blink
}

func encodeU32(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}
