package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"modchecker/internal/faults"
)

// ErrSweepClosed is returned by lookups against a PoolSweep whose session
// has been closed.
var ErrSweepClosed = errors.New("core: pool sweep session closed")

// ErrVMBudget marks a fetch skipped because its VM exhausted the per-VM
// time budget of the sweep. Classified transient: the VM is healthy, the
// sweep just declined to spend more simulated time on it, so the next
// sweep retries it from scratch. Callers distinguish it from real faults
// with errors.Is.
var ErrVMBudget = faults.Transient("core: per-VM sweep budget exhausted")

// PoolSweep is a sweep-scoped session over a fixed VM pool. Opening the
// session walks each VM's loaded-module list exactly once (with the
// checker's retry policy) and keeps the resulting module-table snapshot plus
// the open introspection handles for the whole sweep, so checking M modules
// across N VMs costs N list walks instead of M×N — and the handles' software
// TLBs stay warm across modules. The Scanner drives one PoolSweep per sweep;
// a module loaded into a guest mid-sweep is picked up by the next sweep's
// fresh snapshot.
type PoolSweep struct {
	c   *Checker
	vms []Target
	// tables[i] is VM i's module-table snapshot; listErr[i] is set when the
	// walk failed (the VM then errors for every module of the sweep, exactly
	// as a per-module walk failure would).
	tables  [][]ModuleInfo
	listErr []error
	// ListElapsed is the simulated elapsed time of taking the snapshot
	// (sum of per-VM costs sequentially, deterministic makespan in parallel
	// mode). It is charged to the clock once, at session open.
	ListElapsed time.Duration
	// ListTiming is the total Searcher work of the snapshot.
	ListTiming time.Duration
	// closed marks the session released; lookups then fail with
	// ErrSweepClosed.
	closed bool

	// leader[i] is the index of the first VM of VM i's content-identity
	// group — i itself when the VM is unique, identity tracking is off, or
	// Config.DedupIdentical is unset. Identity tokens are sampled once at
	// session open: VMs sharing a token are bit-identical for the whole
	// sweep (sweeps only read), so non-leaders share their leader's list
	// walk, fetches, digests and verdicts without touching guest memory.
	leader []int

	// Budget state (see SetBudgets). All durations are *modeled* elapsed
	// time, never live clock reads: the driver's budget decisions must not
	// depend on what concurrent workers have charged so far, or identical
	// seeds would stop at different modules run to run.
	sweepBudget time.Duration
	perVMBudget time.Duration
	used        time.Duration   // modeled elapsed this sweep; driver goroutine only
	spent       []time.Duration // spent[i]: VM i's modeled fetch spend this sweep
}

// SetBudgets arms the session's simulated-time budgets (zero disables
// either). sweep caps the whole session's modeled elapsed time — once the
// list walk plus completed modules reach it, further CheckModule calls
// return budget-skipped reports instead of doing work. perVM caps one VM's
// modeled fetch spend within the sweep — a VM past its budget is skipped
// (ErrVMBudget) for the remaining modules while its peers continue.
//
// Arming a sweep budget disables the one-module-deep prefetch in parallel
// mode: the deadline has to be enforced at module boundaries by the
// driving goroutine with the full elapsed model in hand, which a
// concurrent producer would turn into a race. Stage-level fan-out across
// VMs is unaffected.
func (ps *PoolSweep) SetBudgets(sweep, perVM time.Duration) {
	ps.sweepBudget, ps.perVMBudget = sweep, perVM
	ps.used = ps.ListElapsed
	ps.spent = make([]time.Duration, len(ps.vms))
}

// NewPoolSweep opens a sweep session: one retried LDR-list walk per VM.
// The caller owns the session and must Close it once the sweep is done.
//
//modsafe:acquires sweep-session
//modsafe:charged
func (c *Checker) NewPoolSweep(vms []Target) (*PoolSweep, error) {
	if len(vms) < 2 {
		return nil, fmt.Errorf("core: pool sweep needs at least 2 VMs, have %d", len(vms))
	}
	ps := &PoolSweep{
		c:       c,
		vms:     vms,
		tables:  make([][]ModuleInfo, len(vms)),
		listErr: make([]error, len(vms)),
		leader:  identityLeaders(c.cfg, vms),
	}
	costs := make([]time.Duration, len(vms))
	listOne := func(i int) {
		if ps.leader[i] != i {
			return // shares the leader's snapshot below
		}
		s := NewSearcher(vms[i].Handle, c.cfg.Strategy).WithRetry(c.cfg.Retry)
		mods, cost, err := s.ListModulesCosted()
		costs[i] = c.charge(cost)
		ps.tables[i] = mods
		ps.listErr[i] = err
	}
	if c.cfg.Parallel {
		runBounded("list", len(vms), c.workers(), listOne)
	} else {
		for i := range vms {
			listOne(i)
		}
	}
	for i, l := range ps.leader {
		if l != i {
			ps.tables[i] = ps.tables[l]
			ps.listErr[i] = ps.listErr[l]
		}
	}
	for _, d := range costs {
		ps.ListTiming += d
	}
	ps.ListElapsed = c.traceStage("list", "",
		func(k int) string { return "list " + vms[k].Name }, costs)
	return ps, nil
}

// identityLeaders samples each target's content-identity token and maps
// every VM to the first member of its identity group. With dedup off (or no
// tokens available) every VM leads itself.
func identityLeaders(cfg Config, vms []Target) []int {
	leader := make([]int, len(vms))
	for i := range leader {
		leader[i] = i
	}
	if !cfg.DedupIdentical {
		return leader
	}
	firstByID := make(map[uint64]int, len(vms))
	for i := range vms {
		if vms[i].Identity == nil {
			continue
		}
		id, ok := vms[i].Identity()
		if !ok {
			continue
		}
		if j, seen := firstByID[id]; seen {
			leader[i] = j
		} else {
			firstByID[id] = i
		}
	}
	return leader
}

// VMs returns the session's targets.
func (ps *PoolSweep) VMs() []Target { return ps.vms }

// Close releases the sweep session: the module-table snapshot is dropped and
// every target handle's translation cache is invalidated, so a later sweep
// starts from fresh guest state rather than mappings that may have gone
// stale between sweeps. Close is idempotent; lookups against a closed
// session fail with ErrSweepClosed.
//
//modsafe:releases sweep-session
func (ps *PoolSweep) Close() {
	if ps.closed {
		return
	}
	ps.closed = true
	ps.tables = nil
	for i := range ps.vms {
		if h := ps.vms[i].Handle; h != nil {
			h.InvalidateTranslations()
		}
	}
}

// Modules returns the first readable VM's module names in load order — the
// discovery rule the Scanner uses — or an error when no VM's list walk
// succeeded.
func (ps *PoolSweep) Modules() ([]string, error) {
	if ps.closed {
		return nil, ErrSweepClosed
	}
	var lastErr error
	for i := range ps.vms {
		if ps.listErr[i] != nil {
			lastErr = ps.listErr[i]
			continue
		}
		names := make([]string, 0, len(ps.tables[i]))
		for _, m := range ps.tables[i] {
			names = append(names, m.Name)
		}
		return names, nil
	}
	return nil, fmt.Errorf("core: module discovery failed on all %d VMs: %w", len(ps.vms), lastErr)
}

// lookup finds the named module in VM i's snapshot (case-insensitively, as
// Windows compares module names).
func (ps *PoolSweep) lookup(i int, module string) (*ModuleInfo, error) {
	if ps.closed {
		return nil, ErrSweepClosed
	}
	if ps.listErr[i] != nil {
		return nil, ps.listErr[i]
	}
	for k := range ps.tables[i] {
		if strings.EqualFold(ps.tables[i][k].Name, module) {
			return &ps.tables[i][k], nil
		}
	}
	return nil, fmt.Errorf("%w: %s on %s", ErrModuleNotFound, module, ps.vms[i].Name)
}

// fetchVM copies and parses one module on one VM using the session's
// module-table snapshot. spent[i] is only ever touched by VM i's fetch
// slot, and stage boundaries (runBounded joins, sequential driving under a
// sweep budget) order those touches, so the accounting is race-free.
func (ps *PoolSweep) fetchVM(i int, module string) *fetched {
	c := ps.c
	t := ps.vms[i]
	f := &fetched{target: t}
	if ps.perVMBudget > 0 && ps.spent[i] >= ps.perVMBudget {
		f.err = fmt.Errorf("%s on %s: %w", module, t.Name, ErrVMBudget)
		return f
	}
	info, err := ps.lookup(i, module)
	if err != nil {
		f.err = err
		return f
	}
	s := NewSearcher(t.Handle, c.cfg.Strategy).WithRetry(c.cfg.Retry)
	buf, cost, err := s.CopyModuleCosted(info)
	f.timing.Searcher = c.charge(cost)
	if err != nil {
		f.err = err
	} else {
		infoCopy := *info
		c.parseFetched(f, t, module, &infoCopy, buf)
	}
	if ps.perVMBudget > 0 {
		ps.spent[i] += f.timing.Total()
	}
	return f
}

// fetchFromSnapshot copies and parses one module on every VM using the
// session's module-table snapshot — no LDR re-walk — and returns the fetches
// plus the stage's simulated elapsed time.
func (ps *PoolSweep) fetchFromSnapshot(module string) ([]*fetched, time.Duration) {
	c := ps.c
	fetches := make([]*fetched, len(ps.vms))
	fetchOne := func(i int) {
		fetches[i] = ps.fetchVM(i, module)
	}
	if c.cfg.Parallel {
		runBounded("fetch", len(ps.vms), c.workers(), fetchOne)
	} else {
		for i := range ps.vms {
			fetchOne(i)
		}
	}
	// No trace emission here: in pipelined mode this runs on the prefetch
	// producer goroutine, and the tracer's emission discipline allows only
	// the coordinator to emit. assembleFromFetches renders the stage.
	costs := make([]time.Duration, len(fetches))
	for i, f := range fetches {
		costs[i] = f.timing.Total()
	}
	return fetches, criticalPath(costs, c.stageWorkers())
}

// assembleFromFetches builds a module's PoolReport from its fetch stage.
// It runs on the sweep's coordinator goroutine, which makes it the safe
// point to render the (possibly prefetched) fetch stage onto the trace
// timeline before the comparison stages add theirs.
func (ps *PoolSweep) assembleFromFetches(module string, fetches []*fetched, fetchElapsed time.Duration) *PoolReport {
	rep := &PoolReport{ModuleName: module, Elapsed: fetchElapsed}
	costs := make([]time.Duration, len(fetches))
	for i, f := range fetches {
		rep.Timing.addInto(f.timing)
		costs[i] = f.timing.Total()
	}
	rep.Stages.Fetch = ps.c.traceStage("fetch", module,
		func(k int) string { return "fetch " + fetches[k].target.Name }, costs)
	ps.c.assemblePool(rep, module, ps.vms, fetches)
	for _, f := range fetches {
		ps.c.releaseFetched(f)
	}
	return rep
}

// fleetMode reports whether the session routes module checks through the
// sharded fleet engine (any of ShardSize, LeanReports, DedupIdentical set).
func (ps *PoolSweep) fleetMode() bool {
	cfg := &ps.c.cfg
	return cfg.ShardSize > 0 || cfg.LeanReports || cfg.DedupIdentical
}

// CheckModule checks one module across the session's pool using the module
// table snapshot. Under an exhausted sweep budget it does no work and
// returns a report with BudgetSkipped set.
//
//modsafe:charged
func (ps *PoolSweep) CheckModule(module string) *PoolReport {
	if ps.sweepBudget > 0 && ps.used >= ps.sweepBudget {
		return &PoolReport{ModuleName: module, BudgetSkipped: true}
	}
	var rep *PoolReport
	if ps.cached() {
		rep = ps.checkModuleCached(module)
	} else if ps.fleetMode() {
		rep = ps.checkModuleFleet(module)
	} else {
		fetches, elapsed := ps.fetchFromSnapshot(module)
		rep = ps.assembleFromFetches(module, fetches, elapsed)
	}
	if ps.sweepBudget > 0 {
		ps.used += rep.Elapsed
	}
	return rep
}

// CheckModulesFunc checks the given modules in order, delivering each
// module's report to fn as soon as it is assembled — always in input order,
// always on the calling goroutine. This is the streaming form of
// CheckModules: the caller folds each report into its own aggregate and
// drops it, so a sweep never holds more than one module's reports at once
// (with Config.LeanReports, not even one module's clean VM reports). In
// parallel mode the session pipelines the sweep: module k+1's fetch stage
// runs concurrently with module k's comparison stage (a single prefetch
// stage deep, so the per-VM read order each fault plan sees is still the
// module order).
//
//moddet:sink sweep reports must be identical for sequential and parallel runs
//modsafe:charged
func (ps *PoolSweep) CheckModulesFunc(modules []string, fn func(*PoolReport)) {
	// A sweep budget forces sequential module driving (stage fan-out across
	// VMs is untouched): the deadline check in CheckModule must see the full
	// modeled spend before starting the next module, which the one-deep
	// prefetch producer would decide concurrently and nondeterministically.
	// The fleet engine drives its own shard schedule, so it is sequential at
	// the module level too, and the digest-store path must consult the store
	// from one goroutine in module order to keep eviction deterministic.
	if !ps.c.cfg.Parallel || ps.sweepBudget > 0 || ps.fleetMode() || ps.cached() {
		for _, m := range modules {
			fn(ps.CheckModule(m))
		}
		return
	}
	type stage struct {
		fetches []*fetched
		elapsed time.Duration
	}
	// Capacity 1 lets the producer run exactly one module ahead of the
	// comparison stage.
	stages := make(chan stage, 1)
	go func() {
		for _, m := range modules {
			fetches, elapsed := ps.fetchFromSnapshot(m)
			stages <- stage{fetches, elapsed}
		}
		close(stages)
	}()
	for k := range modules {
		st := <-stages
		fn(ps.assembleFromFetches(modules[k], st.fetches, st.elapsed))
	}
}

// CheckModules checks the given modules in order and returns every report.
// Prefer CheckModulesFunc for large pools: this form holds all reports in
// memory at once.
//
//moddet:sink sweep reports must be identical for sequential and parallel runs
//modsafe:charged
func (ps *PoolSweep) CheckModules(modules []string) []*PoolReport {
	reports := make([]*PoolReport, 0, len(modules))
	ps.CheckModulesFunc(modules, func(rep *PoolReport) { reports = append(reports, rep) })
	return reports
}
