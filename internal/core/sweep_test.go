package core

import (
	"errors"
	"testing"
)

// TestPoolSweepClose pins the session lifecycle: Close drops the module-table
// snapshot, is idempotent, and every later lookup fails with ErrSweepClosed
// instead of answering from a stale snapshot.
func TestPoolSweepClose(t *testing.T) {
	_, targets := testPool(t, 4)
	c := NewChecker(Config{})
	ps, err := c.NewPoolSweep(targets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Modules(); err != nil {
		t.Fatal(err)
	}
	ps.Close()
	ps.Close() // a second Close must be a no-op, not a double release

	if _, err := ps.Modules(); !errors.Is(err, ErrSweepClosed) {
		t.Errorf("Modules after Close: err = %v, want ErrSweepClosed", err)
	}
	rep := ps.CheckModule("alpha.sys")
	if rep.Healthy != 0 {
		t.Errorf("CheckModule after Close reported %d healthy VMs, want 0", rep.Healthy)
	}
	for _, r := range rep.VMReports {
		if !errors.Is(r.Err, ErrSweepClosed) {
			t.Errorf("%s: err = %v, want ErrSweepClosed", r.TargetVM, r.Err)
		}
	}
}

// TestPoolSweepCloseFlushesTLBs pins that Close invalidates each handle's
// translation cache: the next session on the same handles starts from a cold
// TLB rather than trusting mappings cached before the release point.
func TestPoolSweepCloseFlushesTLBs(t *testing.T) {
	_, targets := testPool(t, 4)
	c := NewChecker(Config{})
	ps, err := c.NewPoolSweep(targets)
	if err != nil {
		t.Fatal(err)
	}
	ps.CheckModule("alpha.sys")
	walksBefore := targets[0].Handle.Stats().PTWalks
	ps.Close()

	ps2, err := c.NewPoolSweep(targets)
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	ps2.CheckModule("alpha.sys")
	if walks := targets[0].Handle.Stats().PTWalks; walks <= walksBefore {
		t.Errorf("second sweep after Close added no page-table walks (%d -> %d); translation cache was not flushed", walksBefore, walks)
	}
}
