package experiments

import (
	"fmt"
	"time"

	"modchecker"
)

// AblationRow is one measurement of a design-choice comparison.
type AblationRow struct {
	Ablation string // which ablation (A1..A3)
	Variant  string // which design point
	VMs      int
	// Simulated is the simulated wall-clock of the run (introspection +
	// compute, contention-stretched; concurrent fetches overlap under the
	// parallel driver). Wall is host wall-clock of the harness itself.
	Simulated time.Duration
	Wall      time.Duration
	// VerdictsAgree reports whether the variant produced the same flagged
	// set as the paper's baseline configuration.
	VerdictsAgree bool
}

// AblationParallel (A1) compares the paper's sequential VM access against
// the parallel driver its Section V-C.1 proposes. Simulated cost (total
// work) is essentially equal; wall-clock drops with parallelism.
func AblationParallel(vms int, seed int64) ([]AblationRow, error) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := modchecker.InfectPreset(cloud, "Dom2", "opcode-patch"); err != nil {
		return nil, err
	}
	base, err := runVariant(cloud, "sequential", vms)
	if err != nil {
		return nil, err
	}
	par, err := runVariant(cloud, "parallel", vms, modchecker.WithParallel())
	if err != nil {
		return nil, err
	}
	par.agree = base.flagged == par.flagged
	base.agree = true
	return []AblationRow{base.row("A1-parallel-access"), par.row("A1-parallel-access")}, nil
}

// AblationNormalizer (A2) compares the paper's Algorithm 2 diff scan
// against normalization via the module's own .reloc table.
func AblationNormalizer(vms int, seed int64) ([]AblationRow, error) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := modchecker.InfectPreset(cloud, "Dom2", "opcode-patch"); err != nil {
		return nil, err
	}
	base, err := runVariant(cloud, "diff-scan (Alg. 2)", vms)
	if err != nil {
		return nil, err
	}
	rel, err := runVariant(cloud, "reloc-table", vms, modchecker.WithRelocNormalizer())
	if err != nil {
		return nil, err
	}
	rel.agree = base.flagged == rel.flagged
	base.agree = true
	return []AblationRow{base.row("A2-normalizer"), rel.row("A2-normalizer")}, nil
}

// AblationCopy (A3) compares page-wise module copying (the paper's
// Module-Searcher) against a bulk mapping.
func AblationCopy(vms int, seed int64) ([]AblationRow, error) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		return nil, err
	}
	base, err := runVariant(cloud, "page-wise", vms)
	if err != nil {
		return nil, err
	}
	mapped, err := runVariant(cloud, "bulk-mapped", vms, modchecker.WithMappedCopy())
	if err != nil {
		return nil, err
	}
	mapped.agree = base.flagged == mapped.flagged
	base.agree = true
	return []AblationRow{base.row("A3-copy-strategy"), mapped.row("A3-copy-strategy")}, nil
}

type variantResult struct {
	variant   string
	vms       int
	simulated time.Duration
	wall      time.Duration
	flagged   string
	agree     bool
}

func (v variantResult) row(ablation string) AblationRow {
	return AblationRow{
		Ablation:      ablation,
		Variant:       v.variant,
		VMs:           v.vms,
		Simulated:     v.simulated,
		Wall:          v.wall,
		VerdictsAgree: v.agree,
	}
}

func runVariant(cloud *modchecker.Cloud, name string, vms int, opts ...modchecker.CheckerOption) (*variantResult, error) {
	checker := cloud.NewChecker(opts...)
	//modlint:ignore clockdiscipline Wall deliberately measures the harness's own host cost, not simulated time
	start := time.Now()
	pool, err := checker.CheckPool("http.sys")
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation variant %s: %w", name, err)
	}
	// Also sweep the infected module so verdict agreement is meaningful.
	pool2, err := checker.CheckPool("hal.dll")
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation variant %s: %w", name, err)
	}
	wall := time.Since(start) //modlint:ignore clockdiscipline host cost of the harness itself
	return &variantResult{
		variant:   name,
		vms:       vms,
		simulated: pool.Elapsed + pool2.Elapsed,
		wall:      wall,
		flagged:   fmt.Sprintf("%v|%v", pool.Flagged, pool2.Flagged),
		agree:     true,
	}, nil
}
