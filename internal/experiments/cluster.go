package experiments

import (
	"modchecker"
	"modchecker/internal/guest"
)

// ClusterScenarioResult contrasts the paper's majority vote with the
// version-aware cluster sweep on a rolling fleet update — the situation
// that violates the paper's same-version assumption.
type ClusterScenarioResult struct {
	VMs     int
	Updated int // VMs already running the new driver

	// Plain majority sweep on the split pool: how many VMs it disturbs
	// (flagged + inconclusive). A rolling update makes this large.
	PlainDisturbed int

	// Cluster sweep on the same pool.
	Clusters          []int // cluster sizes, largest first
	ClusterFlagged    int
	ClusterSuspicious int

	// After additionally infecting one updated VM: the infected copy
	// must surface as a suspicious singleton.
	InfectionSingled bool
}

// ClusterScenario runs the rolling-update comparison on a fresh cloud.
// The pool size is rounded up to even so the half-done update yields the
// interesting no-majority state (with an odd pool one version group always
// holds a strict majority and the other is flagged as the minority).
func ClusterScenario(vms int, seed int64) (*ClusterScenarioResult, error) {
	if vms%2 == 1 {
		vms++
	}
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		return nil, err
	}
	updated, err := guest.BuildImage(guest.ModuleSpec{
		Name: "ndis-v2", TextSize: 128 << 10, DataSize: 32 << 10, RdataSize: 8 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		return nil, err
	}
	half := vms / 2
	for _, name := range cloud.VMNames()[:half] {
		g := cloud.Guest(name)
		if err := g.ReplaceDiskImage("ndis.sys", updated); err != nil {
			return nil, err
		}
		if err := g.UnloadModule("ndis.sys"); err != nil {
			return nil, err
		}
		if _, err := g.LoadModule("ndis.sys"); err != nil {
			return nil, err
		}
	}
	res := &ClusterScenarioResult{VMs: vms, Updated: half}
	checker := cloud.NewChecker()

	plain, err := checker.CheckPool("ndis.sys")
	if err != nil {
		return nil, err
	}
	res.PlainDisturbed = len(plain.Flagged) + len(plain.Inconclusive)

	clustered, err := checker.ClusterPool("ndis.sys")
	if err != nil {
		return nil, err
	}
	for _, c := range clustered.Clusters {
		res.Clusters = append(res.Clusters, c.Size())
	}
	res.ClusterFlagged = len(clustered.Flagged)
	res.ClusterSuspicious = len(clustered.Suspicious)

	// Infect one of the updated VMs and re-cluster.
	victim := cloud.VMNames()[0]
	if err := modchecker.InfectInlineHookLive(cloud, victim, "ndis.sys"); err != nil {
		return nil, err
	}
	clustered, err = checker.ClusterPool("ndis.sys")
	if err != nil {
		return nil, err
	}
	for _, s := range clustered.Suspicious {
		if s == victim {
			res.InfectionSingled = true
		}
	}
	return res, nil
}
