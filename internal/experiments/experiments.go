// Package experiments regenerates every evaluation result in the paper:
// the four detection experiments of Section V-B, the runtime figures 7
// and 8, the guest-impact figure 9, and the ablations DESIGN.md defines.
// The cmd/experiments binary and the repository's benchmarks are thin
// wrappers over these harnesses.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"modchecker"
	"modchecker/internal/core"
	"modchecker/internal/monitor"
	"modchecker/internal/stress"
)

// DetectionResult records one Section V-B experiment: which VM was
// infected, what ModChecker flagged, and whether the observed component
// mismatches match the paper's.
type DetectionResult struct {
	ID         string // E1..E4
	Name       string
	Preset     string
	Module     string
	InfectedVM string

	Flagged              []string // VMs the pool sweep flagged
	MismatchedComponents []string // on the infected VM
	// WantComponents is the paper's reported outcome; for E4 a component
	// name prefixed with "*" means "every component with that prefix".
	WantComponents []string
	Detected       bool // infected VM flagged, and no false positives
	AsInPaper      bool // mismatched components match the paper's report
}

// detectionSpec ties a preset to the paper's expected observation.
type detectionSpec struct {
	id, name, preset, module string
	want                     []string
	wantAllSectionHeaders    bool
	wantExtra                bool // tolerate additional data components (INIT/.reloc)
}

var detectionSpecs = []detectionSpec{
	{
		id: "E1", name: "single opcode replacement (hal.dll DEC ECX -> SUB ECX,1)",
		preset: "opcode-patch", module: "hal.dll",
		want: []string{".text"},
	},
	{
		id: "E2", name: "inline hooking (jmp to opcode cave, TCPIRPHOOK-style)",
		preset: "tcpirphook", module: "tcpip.sys",
		want: []string{".text"},
	},
	{
		id: "E3", name: `stub modification ("DOS" -> "CHK" in dummy.sys)`,
		preset: "stub-patch", module: "dummy.sys",
		want: []string{"IMAGE_DOS_HEADER"},
	},
	{
		id: "E4", name: "PE header modification via DLL hooking (inject.dll into dummy.sys)",
		preset: "", module: "dummy.sys", // applied directly, not via preset list
		want:                  []string{"IMAGE_NT_HEADER", "IMAGE_OPTIONAL_HEADER", ".text"},
		wantAllSectionHeaders: true,
		wantExtra:             true,
	},
}

// RunDetections executes all four detection experiments, each on a fresh
// cloud of vms VMs with a single infected VM, and reports what ModChecker
// observed.
func RunDetections(vms int, seed int64) ([]DetectionResult, error) {
	var out []DetectionResult
	for i, spec := range detectionSpecs {
		cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		infected := "Dom2"
		preset := spec.preset
		if spec.id == "E4" {
			preset = "rustock.b" // same mechanism; retarget below to dummy.sys
		}
		if spec.id == "E4" {
			// The paper's E4 targets the dummy driver specifically.
			err = infectDummyDLLHook(cloud, infected)
		} else {
			err = modchecker.InfectPreset(cloud, infected, preset)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments %s: %w", spec.id, err)
		}
		pool, err := cloud.NewChecker().CheckPool(spec.module)
		if err != nil {
			return nil, fmt.Errorf("experiments %s: %w", spec.id, err)
		}
		rep := pool.Report(infected)
		res := DetectionResult{
			ID:             spec.id,
			Name:           spec.name,
			Preset:         preset,
			Module:         spec.module,
			InfectedVM:     infected,
			Flagged:        pool.Flagged,
			WantComponents: spec.want,
		}
		if rep != nil {
			res.MismatchedComponents = rep.MismatchedComponents()
		}
		res.Detected = len(pool.Flagged) == 1 && pool.Flagged[0] == infected
		res.AsInPaper = res.Detected && componentsMatch(res.MismatchedComponents, spec)
		out = append(out, res)
	}
	return out, nil
}

// infectDummyDLLHook applies the E4 DLL hook to dummy.sys on the given VM.
func infectDummyDLLHook(cloud *modchecker.Cloud, vm string) error {
	return modchecker.InfectDLLHook(cloud, vm, "dummy.sys", "inject.dll", "callMessageBox")
}

// componentsMatch checks the observed mismatch set against the paper's
// expectation.
func componentsMatch(got []string, spec detectionSpec) bool {
	gotSet := make(map[string]bool, len(got))
	for _, g := range got {
		gotSet[g] = true
	}
	for _, w := range spec.want {
		if !gotSet[w] {
			return false
		}
	}
	if spec.wantAllSectionHeaders {
		// Every IMAGE_SECTION_HEADER[...] present in got must include all
		// sections; verify at least one exists and none is missing by
		// checking that no section header component is absent from got
		// while others are present. The caller's report lists only
		// mismatched components, so require >= 4 section headers (the
		// catalog's .text/.data/.rdata/INIT/.reloc).
		n := 0
		for g := range gotSet {
			if len(g) > len("IMAGE_SECTION_HEADER") && g[:len("IMAGE_SECTION_HEADER")] == "IMAGE_SECTION_HEADER" {
				n++
			}
		}
		if n < 4 {
			return false
		}
	}
	if !spec.wantExtra {
		// No unexpected component may appear.
		want := make(map[string]bool, len(spec.want))
		for _, w := range spec.want {
			want[w] = true
		}
		for _, g := range got {
			if !want[g] {
				return false
			}
		}
	}
	return true
}

// RuntimeRow is one sweep point of Figures 7/8: total and per-component
// ModChecker runtime when comparing a module across t VMs.
type RuntimeRow struct {
	VMs      int
	Searcher time.Duration
	Parser   time.Duration
	Checker  time.Duration
	Total    time.Duration
	Slowdown float64 // contention factor at this point (1.0 when idle)
}

// runtimeSweep measures CheckModule("http.sys") of Dom1 against Dom2..Domt
// for t = 2..maxVMs on one cloud, with loads configured by setup.
func runtimeSweep(cloud *modchecker.Cloud, maxVMs int, loaded bool) ([]RuntimeRow, error) {
	checker := cloud.NewChecker()
	hv := cloud.Hypervisor()
	names := cloud.VMNames()
	var rows []RuntimeRow
	for t := 2; t <= maxVMs; t++ {
		involved := names[:t]
		if loaded {
			for _, n := range involved {
				stress.Apply(cloud.Guest(n), stress.HeavyLoad)
			}
		}
		hv.Clock().Reset()
		rep, err := checker.CheckModule("http.sys", involved[0], involved[1:]...)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RuntimeRow{
			VMs:      t,
			Searcher: rep.Timing.Searcher,
			Parser:   rep.Timing.Parser,
			Checker:  rep.Timing.Checker,
			Total:    rep.Timing.Total(),
			Slowdown: hv.Slowdown(),
		})
		if loaded {
			for _, n := range involved {
				stress.Idle(cloud.Guest(n))
			}
		}
	}
	return rows, nil
}

// Fig7 reproduces Figure 7: runtime versus pool size with all VMs idle.
// The expected shape is linear growth dominated by Module-Searcher.
func Fig7(maxVMs int, seed int64) ([]RuntimeRow, error) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: maxVMs, Seed: seed})
	if err != nil {
		return nil, err
	}
	return runtimeSweep(cloud, maxVMs, false)
}

// Fig8 reproduces Figure 8: runtime versus pool size with the involved VMs
// running HeavyLoad. The expected shape follows Figure 7 until the loaded
// vCPUs exceed the virtual cores, then grows super-linearly.
func Fig8(maxVMs int, seed int64) ([]RuntimeRow, error) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: maxVMs, Seed: seed})
	if err != nil {
		return nil, err
	}
	return runtimeSweep(cloud, maxVMs, true)
}

// Fig9Result is the guest-impact experiment: a monitor trace with
// VMI-access windows marked and the per-counter perturbation (z-score of
// each window mean against baseline variation).
type Fig9Result struct {
	Trace           *monitor.Trace
	Perturbations   map[string]float64
	MaxPerturbation float64
}

// fig9Fields are the counters Figure 9 plots.
var fig9Fields = map[string]monitor.Field{
	"cpu_idle":    monitor.CPUIdle,
	"cpu_user":    monitor.CPUUser,
	"cpu_priv":    monitor.CPUPriv,
	"free_phys":   monitor.FreePhys,
	"free_virt":   monitor.FreeVirt,
	"page_faults": monitor.Faults,
	"disk_queue":  monitor.DiskQueue,
	"net_sent":    monitor.NetSent,
}

// Fig9 reproduces Figure 9: an idle VM's internal counters are sampled
// continuously while ModChecker reads its memory during two marked windows;
// the counters must show no significant perturbation, because introspection
// is entirely out-of-band.
func Fig9(steps int, seed int64) (*Fig9Result, error) {
	if steps < 40 {
		steps = 120
	}
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	h, err := cloud.OpenVMI("Dom1")
	if err != nil {
		return nil, err
	}
	searcher := core.NewSearcher(h, core.CopyPageWise)

	w1lo, w1hi := steps/4, steps/4+steps/8
	w2lo, w2hi := 2*steps/3, 2*steps/3+steps/8
	inWindow := func(i int) bool { return (i >= w1lo && i < w1hi) || (i >= w2lo && i < w2hi) }

	rec := monitor.NewRecorder(cloud.Guest("Dom1"))
	trace := rec.RunWith(steps, 100,
		func(i int) string {
			if inWindow(i) {
				return "vmi-access"
			}
			return "baseline"
		},
		func(i int) {
			if inWindow(i) {
				// ModChecker's memory access: locate and copy http.sys.
				_, buf, _, err := searcher.FetchModule("http.sys")
				if err != nil {
					panic(fmt.Sprintf("fig9: fetch: %v", err))
				}
				core.ReleaseModuleCopy(buf)
			}
		})

	res := &Fig9Result{Trace: trace, Perturbations: make(map[string]float64)}
	for name, f := range fig9Fields {
		z := trace.Perturbation(f, "baseline", "vmi-access")
		res.Perturbations[name] = z
		if z > res.MaxPerturbation {
			res.MaxPerturbation = z
		}
	}
	return res, nil
}

// SortedPerturbations returns the Fig9 perturbations as sorted "name=z"
// pairs for stable printing.
func (r *Fig9Result) SortedPerturbations() []string {
	names := make([]string, 0, len(r.Perturbations))
	for n := range r.Perturbations {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%.2f", n, r.Perturbations[n])
	}
	return out
}
