package experiments

import "testing"

// TestDetections verifies all four Section V-B experiments detect the
// infected VM with the component signature the paper reports.
func TestDetections(t *testing.T) {
	results, err := RunDetections(5, 7)
	if err != nil {
		t.Fatalf("RunDetections: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("%s (%s): not detected; flagged=%v mismatched=%v",
				r.ID, r.Name, r.Flagged, r.MismatchedComponents)
			continue
		}
		if !r.AsInPaper {
			t.Errorf("%s (%s): components %v do not match paper's %v",
				r.ID, r.Name, r.MismatchedComponents, r.WantComponents)
		}
	}
}

// TestFig7Shape verifies runtime grows monotonically and roughly linearly
// with pool size, with Module-Searcher dominating.
func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(8, 11)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for i, r := range rows {
		if r.Searcher <= r.Parser || r.Searcher <= r.Checker {
			t.Errorf("t=%d: Searcher (%v) does not dominate Parser (%v) / Checker (%v)",
				r.VMs, r.Searcher, r.Parser, r.Checker)
		}
		if r.Slowdown != 1 {
			t.Errorf("t=%d: idle sweep has slowdown %.2f, want 1", r.VMs, r.Slowdown)
		}
		if i > 0 && r.Total <= rows[i-1].Total {
			t.Errorf("t=%d: total %v not greater than t=%d's %v",
				r.VMs, r.Total, rows[i-1].VMs, rows[i-1].Total)
		}
	}
	// Linearity: per-VM increments should be within 3x of each other.
	first := rows[1].Total - rows[0].Total
	last := rows[len(rows)-1].Total - rows[len(rows)-2].Total
	if last > 3*first || first > 3*last {
		t.Errorf("idle sweep not linear: first increment %v, last %v", first, last)
	}
}

// TestFig8Knee verifies the non-linear growth once loaded VMs exceed the
// virtual cores (8): increments beyond the knee must exceed pre-knee
// increments.
func TestFig8Knee(t *testing.T) {
	rows, err := Fig8(15, 13)
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	byVMs := map[int]RuntimeRow{}
	for _, r := range rows {
		byVMs[r.VMs] = r
	}
	pre := byVMs[6].Total - byVMs[5].Total    // below core count: linear zone
	post := byVMs[15].Total - byVMs[14].Total // far past the knee
	if post <= 2*pre {
		t.Errorf("no knee: pre-knee increment %v, post-knee increment %v", pre, post)
	}
	if byVMs[15].Slowdown <= 1.2 {
		t.Errorf("slowdown at t=15 is %.2f, expected contention", byVMs[15].Slowdown)
	}
	if byVMs[5].Slowdown != 1 {
		t.Errorf("slowdown at t=5 is %.2f, want 1 (5 loaded VMs + Dom0 fit in 8 cores)", byVMs[5].Slowdown)
	}
}

// TestFig9NoPerturbation verifies VMI access leaves guest counters
// statistically unchanged.
func TestFig9NoPerturbation(t *testing.T) {
	res, err := Fig9(120, 17)
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if res.MaxPerturbation > 3 {
		t.Errorf("max perturbation z=%.2f > 3: %v", res.MaxPerturbation, res.SortedPerturbations())
	}
	if len(res.Trace.Records) != 120 {
		t.Errorf("trace has %d records, want 120", len(res.Trace.Records))
	}
}

// TestAblations verifies every variant agrees with the baseline verdicts
// and that the expected performance relations hold.
func TestAblations(t *testing.T) {
	par, err := AblationParallel(6, 19)
	if err != nil {
		t.Fatalf("AblationParallel: %v", err)
	}
	for _, r := range par {
		if !r.VerdictsAgree {
			t.Errorf("A1 %s: verdicts diverge from baseline", r.Variant)
		}
	}
	norm, err := AblationNormalizer(6, 23)
	if err != nil {
		t.Fatalf("AblationNormalizer: %v", err)
	}
	for _, r := range norm {
		if !r.VerdictsAgree {
			t.Errorf("A2 %s: verdicts diverge from baseline", r.Variant)
		}
	}
	cp, err := AblationCopy(6, 29)
	if err != nil {
		t.Fatalf("AblationCopy: %v", err)
	}
	for _, r := range cp {
		if !r.VerdictsAgree {
			t.Errorf("A3 %s: verdicts diverge from baseline", r.Variant)
		}
	}
	if cp[1].Simulated >= cp[0].Simulated {
		t.Errorf("A3: bulk-mapped (%v) not cheaper than page-wise (%v)", cp[1].Simulated, cp[0].Simulated)
	}
}
