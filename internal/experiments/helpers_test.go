package experiments

import (
	"testing"

	"modchecker"
	"modchecker/internal/baseline"
)

func TestComponentsMatchExact(t *testing.T) {
	spec := detectionSpec{want: []string{".text"}}
	if !componentsMatch([]string{".text"}, spec) {
		t.Error("exact match rejected")
	}
	if componentsMatch([]string{".text", "INIT"}, spec) {
		t.Error("extra component accepted without wantExtra")
	}
	if componentsMatch([]string{"IMAGE_DOS_HEADER"}, spec) {
		t.Error("wrong component accepted")
	}
	if componentsMatch(nil, spec) {
		t.Error("empty set accepted")
	}
}

func TestComponentsMatchWantExtra(t *testing.T) {
	spec := detectionSpec{want: []string{".text"}, wantExtra: true}
	if !componentsMatch([]string{".text", "INIT", ".reloc"}, spec) {
		t.Error("extras rejected despite wantExtra")
	}
}

func TestComponentsMatchAllSectionHeaders(t *testing.T) {
	spec := detectionSpec{
		want:                  []string{".text"},
		wantAllSectionHeaders: true,
		wantExtra:             true,
	}
	few := []string{".text", "IMAGE_SECTION_HEADER[.text]"}
	if componentsMatch(few, spec) {
		t.Error("one section header satisfied 'all section headers'")
	}
	many := []string{
		".text",
		"IMAGE_SECTION_HEADER[.text]", "IMAGE_SECTION_HEADER[.data]",
		"IMAGE_SECTION_HEADER[.rdata]", "IMAGE_SECTION_HEADER[INIT]",
		"IMAGE_SECTION_HEADER[.reloc]",
	}
	if !componentsMatch(many, spec) {
		t.Error("full section-header set rejected")
	}
}

func TestVerifyCloudAgainstDictionary(t *testing.T) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: 3, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	db := baseline.NewDatabase()
	golden := cloud.Guest("Dom1")
	for _, mod := range golden.Modules() {
		if err := db.AddTrustedImage(mod.Name, golden.DiskImage(mod.Name)); err != nil {
			t.Fatal(err)
		}
	}
	failing, err := VerifyCloudAgainstDictionary(cloud, db, "hal.dll")
	if err != nil {
		t.Fatal(err)
	}
	if len(failing) != 0 {
		t.Errorf("clean cloud fails dictionary: %v", failing)
	}
	if err := modchecker.InfectOpcode(cloud, "Dom2", "hal.dll"); err != nil {
		t.Fatal(err)
	}
	failing, err = VerifyCloudAgainstDictionary(cloud, db, "hal.dll")
	if err != nil {
		t.Fatal(err)
	}
	if len(failing) != 1 || failing[0] != "Dom2" {
		t.Errorf("failing = %v", failing)
	}
}

func TestFig9SortedPerturbations(t *testing.T) {
	res, err := Fig9(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.SortedPerturbations()
	if len(ps) != len(fig9Fields) {
		t.Fatalf("%d entries", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Error("not sorted")
		}
	}
}

func TestFig9MinimumSteps(t *testing.T) {
	// Degenerate step counts are clamped to a workable trace length.
	res, err := Fig9(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Records) < 40 {
		t.Errorf("trace has %d records", len(res.Trace.Records))
	}
}
