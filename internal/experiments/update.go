package experiments

import (
	"fmt"

	"modchecker"
	"modchecker/internal/baseline"
	"modchecker/internal/guest"
)

// UpdateScenarioResult contrasts ModChecker with the hash-dictionary
// baseline across the two events that matter operationally: a legitimate
// fleet-wide driver update (should raise nothing) and a real infection
// (must be caught). This quantifies the paper's motivating claim that
// maintaining a dictionary "quickly becomes cumbersome and time consuming"
// while cross-VM comparison needs no maintenance at all.
type UpdateScenarioResult struct {
	VMs int

	// After the legitimate update of ndis.sys on every VM:
	ModCheckerFalseAlarms int // VMs ModChecker flags (want 0)
	BaselineFalseAlarms   int // VMs the stale dictionary flags (expect all)

	// After additionally infecting one VM's hal.dll:
	ModCheckerDetected bool
	BaselineDetected   bool

	// DictionaryRefreshes is the administrator work the baseline needed
	// to return to a useful state (one re-registration per updated
	// module).
	DictionaryRefreshes int
}

// UpdateScenario runs the comparison on a fresh cloud of vms VMs.
func UpdateScenario(vms int, seed int64) (*UpdateScenarioResult, error) {
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		return nil, err
	}
	// Build the dictionary from the golden (pre-update) images.
	db := baseline.NewDatabase()
	golden := cloud.Guest("Dom1")
	for _, mod := range golden.Modules() {
		if err := db.AddTrustedImage(mod.Name, golden.DiskImage(mod.Name)); err != nil {
			return nil, err
		}
	}

	// Vendor ships ndis.sys v2; it lands on every VM.
	updated, err := guest.BuildImage(guest.ModuleSpec{
		Name: "ndis-v2", TextSize: 128 << 10, DataSize: 32 << 10, RdataSize: 8 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		return nil, err
	}
	if err := modchecker.UpdateModule(cloud, "ndis.sys", updated); err != nil {
		return nil, err
	}

	res := &UpdateScenarioResult{VMs: vms}

	pool, err := cloud.NewChecker().CheckPool("ndis.sys")
	if err != nil {
		return nil, err
	}
	res.ModCheckerFalseAlarms = len(pool.Flagged) + len(pool.Inconclusive)

	for _, name := range cloud.VMNames() {
		target, err := cloud.Target(name)
		if err != nil {
			return nil, err
		}
		v, err := db.Verify("ndis.sys", target)
		if err != nil {
			return nil, err
		}
		if !v.OK() {
			res.BaselineFalseAlarms++
		}
	}
	res.DictionaryRefreshes = 1 // the admin must re-register ndis.sys

	// Now a genuine infection on one VM.
	if err := modchecker.InfectOpcode(cloud, "Dom2", "hal.dll"); err != nil {
		return nil, err
	}
	pool, err = cloud.NewChecker().CheckPool("hal.dll")
	if err != nil {
		return nil, err
	}
	res.ModCheckerDetected = len(pool.Flagged) == 1 && pool.Flagged[0] == "Dom2"

	target, err := cloud.Target("Dom2")
	if err != nil {
		return nil, err
	}
	v, err := db.Verify("hal.dll", target)
	if err != nil {
		return nil, err
	}
	res.BaselineDetected = !v.OK()
	return res, nil
}

// VerifyCloudAgainstDictionary is a helper for harnesses: verifies one
// module on every VM against a dictionary and returns the failing VM names.
func VerifyCloudAgainstDictionary(cloud *modchecker.Cloud, db *baseline.Database, module string) ([]string, error) {
	var failing []string
	for _, name := range cloud.VMNames() {
		t, err := cloud.Target(name)
		if err != nil {
			return nil, err
		}
		var v *baseline.Result
		if v, err = db.Verify(module, t); err != nil {
			return nil, fmt.Errorf("experiments: verify %s on %s: %w", module, name, err)
		}
		if !v.OK() {
			failing = append(failing, name)
		}
	}
	return failing, nil
}
