package experiments

import "testing"

// TestUpdateScenario verifies the paper's motivating comparison: after a
// legitimate fleet-wide driver update, the hash-dictionary baseline false-
// alarms on every VM while ModChecker stays quiet; a genuine infection is
// caught by both.
func TestUpdateScenario(t *testing.T) {
	res, err := UpdateScenario(6, 37)
	if err != nil {
		t.Fatalf("UpdateScenario: %v", err)
	}
	if res.ModCheckerFalseAlarms != 0 {
		t.Errorf("ModChecker raised %d false alarms on a legitimate update", res.ModCheckerFalseAlarms)
	}
	if res.BaselineFalseAlarms != 6 {
		t.Errorf("baseline false alarms = %d, want 6 (every VM)", res.BaselineFalseAlarms)
	}
	if !res.ModCheckerDetected {
		t.Error("ModChecker missed the real infection")
	}
	if !res.BaselineDetected {
		t.Error("baseline missed the real infection")
	}
	if res.DictionaryRefreshes != 1 {
		t.Errorf("refreshes = %d", res.DictionaryRefreshes)
	}
}

// TestClusterScenario verifies the rolling-update comparison: the plain
// majority vote disturbs the whole split pool, the cluster sweep reports
// two clean version groups, and an infection still surfaces as a
// suspicious singleton.
func TestClusterScenario(t *testing.T) {
	res, err := ClusterScenario(6, 41)
	if err != nil {
		t.Fatalf("ClusterScenario: %v", err)
	}
	if res.PlainDisturbed != 6 {
		t.Errorf("plain sweep disturbed %d VMs, want all 6", res.PlainDisturbed)
	}
	if len(res.Clusters) != 2 || res.Clusters[0] != 3 || res.Clusters[1] != 3 {
		t.Errorf("clusters = %v", res.Clusters)
	}
	if res.ClusterFlagged != 0 || res.ClusterSuspicious != 0 {
		t.Errorf("cluster sweep flagged=%d suspicious=%d on a legitimate update",
			res.ClusterFlagged, res.ClusterSuspicious)
	}
	if !res.InfectionSingled {
		t.Error("infected VM not singled out after re-cluster")
	}
}
