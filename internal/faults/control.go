package faults

import (
	"fmt"
	"math/rand"
	"time"
)

// Op identifies one control-plane (domain-lifecycle) operation the plan can
// schedule faults against. The management API is the least reliable layer
// of a real cloud — snapshots time out, clones fail, pause requests get
// lost — so the control plane gets the same treatment as the read plane:
// deterministic schedules indexed by a per-(VM, op) invocation counter.
type Op int

const (
	// OpCreate covers CreateDomain.
	OpCreate Op = iota
	// OpClone covers per-clone admission in CloneDomains.
	OpClone
	// OpSnapshot covers TakeSnapshot.
	OpSnapshot
	// OpRevert covers Revert.
	OpRevert
	// OpDestroy covers DestroyDomain.
	OpDestroy
	// OpPause covers Domain.Pause.
	OpPause
	// OpUnpause covers Domain.Unpause.
	OpUnpause

	numOps
)

// String renders the operation.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpClone:
		return "clone"
	case OpSnapshot:
		return "snapshot"
	case OpRevert:
		return "revert"
	case OpDestroy:
		return "destroy"
	case OpPause:
		return "pause"
	case OpUnpause:
		return "unpause"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Control-plane fault sentinels. Injection sites wrap these with positional
// context, so errors.Is and Classify both work through the wrapping.
var (
	// ErrControlFault is a transient management-API failure (request lost,
	// toolstack busy); retrying the operation later may succeed.
	ErrControlFault = Transient("faults: injected control-plane fault")
	// ErrControlPermanent is a management-API failure that will not clear
	// (operation rejected for good).
	ErrControlPermanent = Permanent("faults: injected permanent control-plane fault")
	// ErrControlHang models an operation that consumed its whole management
	// timeout before failing; the decision carries the hang latency, which
	// the hypervisor charges to the simulated clock.
	ErrControlHang = Transient("faults: control-plane operation timed out")
)

// DefaultHangLatency is the simulated management-API timeout a hung
// operation burns before it fails. Large against per-module check times on
// purpose: a hung snapshot should visibly eat into a sweep budget.
const DefaultHangLatency = 50 * time.Millisecond

// ControlDecision is the plan's ruling for one control-plane operation.
type ControlDecision struct {
	// Err is non-nil when the operation must fail; it wraps one of the
	// control sentinels, so Classify distinguishes transient from permanent.
	Err error
	// Latency is the simulated time the operation consumes before
	// completing or failing (slow-op schedules, the hang timeout). It is
	// charged whether or not the operation succeeds.
	Latency time.Duration
}

// opSchedule is the fault schedule of one (VM, op) pair, indexed by how
// many times that operation has been attempted on that VM.
type opSchedule struct {
	count         uint64
	fail          []window
	hang          []window
	permanentFrom uint64
	hasPermanent  bool
	flakyRate     float64
	slow          time.Duration
}

// controlSeedSalt decorrelates the control-plane PRNG from the read-plane
// PRNG of the same VM: flaky-op draws must never perturb the flaky-read
// stream (or depend on how many reads happened first).
const controlSeedSalt = 0x6f70732d63746c // "ops-ctl"

// vmControl is one VM's control-plane state: per-op schedules plus a PRNG
// independent from the read plane's.
type vmControl struct {
	rng *rand.Rand
	ops [numOps]*opSchedule
}

func (v *vmControl) op(o Op) *opSchedule {
	if o < 0 || o >= numOps {
		o = 0
	}
	if v.ops[o] == nil {
		v.ops[o] = &opSchedule{}
	}
	return v.ops[o]
}

// control returns (creating on demand) the named VM's control-plane state.
// Caller holds mu.
func (p *Plan) control(name string) *vmControl {
	v, ok := p.ctl[name]
	if !ok {
		v = &vmControl{rng: rand.New(rand.NewSource(p.seed ^ int64(fnv1a(name)) ^ controlSeedSalt))}
		p.ctl[name] = v
	}
	return v
}

// FailOps schedules transient failures of op on vm for invocation indices
// [from, to).
func (p *Plan) FailOps(vm string, op Op, from, to uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.control(vm).op(op)
	s.fail = append(s.fail, window{from, to})
}

// FailOpsForever schedules permanent failure of op on vm from invocation
// index from on: the management API rejects the operation for good.
func (p *Plan) FailOpsForever(vm string, op Op, from uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.control(vm).op(op)
	if !s.hasPermanent || from < s.permanentFrom {
		s.permanentFrom, s.hasPermanent = from, true
	}
}

// HangOps schedules hangs of op on vm for invocation indices [from, to):
// the operation burns the hang latency (charged to the sim clock) and then
// fails with ErrControlHang.
func (p *Plan) HangOps(vm string, op Op, from, to uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.control(vm).op(op)
	s.hang = append(s.hang, window{from, to})
}

// FlakyOps makes each invocation of op on vm fail transiently with
// probability rate, drawn from the VM's seeded control-plane PRNG.
func (p *Plan) FlakyOps(vm string, op Op, rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.control(vm).op(op).flakyRate = rate
}

// SlowOps charges latency of simulated time to every invocation of op on
// vm — a degraded-but-working management API.
func (p *Plan) SlowOps(vm string, op Op, latency time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.control(vm).op(op).slow = latency
}

// SetHangLatency overrides the simulated timeout charged by hung
// operations (DefaultHangLatency when unset).
func (p *Plan) SetHangLatency(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hangLatency = d
}

// OnControl installs an observability hook invoked (outside the plan's
// lock) whenever the plan rules on a control-plane operation with a
// non-clean outcome: the VM, the operation, the invocation index, and the
// outcome kind ("fail", "hang", "flaky", "permanent", "slow").
func (p *Plan) OnControl(f func(vm string, op Op, idx uint64, kind string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onControl = f
}

// ControlOps returns how many invocations of op the plan has ruled on for
// vm.
func (p *Plan) ControlOps(vm string, op Op) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.control(vm).op(op).count
}

// ControlOp advances the (vm, op) invocation counter and evaluates the
// schedule: the gate the hypervisor consults before executing a lifecycle
// operation. Safe for concurrent use; the ruling depends only on the
// pair's own counter and the VM's control-plane PRNG, never on goroutine
// interleaving.
func (p *Plan) ControlOp(vm string, op Op) ControlDecision {
	p.mu.Lock()
	v := p.control(vm)
	s := v.op(op)
	idx := s.count
	s.count++
	d := ControlDecision{Latency: s.slow}
	kind := ""
	switch {
	case s.hasPermanent && idx >= s.permanentFrom:
		d.Err, kind = ErrControlPermanent, "permanent"
	case inWindows(s.fail, idx):
		d.Err, kind = ErrControlFault, "fail"
	case inWindows(s.hang, idx):
		d.Err, kind = ErrControlHang, "hang"
		d.Latency += p.hangLatency
	case s.flakyRate > 0 && v.rng.Float64() < s.flakyRate:
		d.Err, kind = ErrControlFault, "flaky"
	case s.slow > 0:
		kind = "slow"
	}
	hook := p.onControl
	p.mu.Unlock()
	if hook != nil && kind != "" {
		hook(vm, op, idx, kind)
	}
	if d.Err != nil {
		d.Err = fmt.Errorf("faults %s: %s op %d: %w", vm, op, idx, d.Err)
	}
	return d
}

// Quiesce clears every scheduled fault — read windows, flakiness, torn
// ranges, page-not-present entries, permanent failures, unfired lifecycle
// events, and all control-plane schedules — while keeping the per-VM read
// and op counters. It models the outage ending: after Quiesce the plan
// stays installed (counters keep advancing, hooks keep observing) but
// injects nothing, so health-machine convergence can be asserted against a
// clean fault plane.
func (p *Plan) Quiesce() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, v := range p.vms {
		v.flakyRate = 0
		v.failWindows, v.tearWindows, v.notPresent = nil, nil, nil
		v.hasPermanent = false
		v.events = nil
	}
	for _, v := range p.ctl {
		for _, s := range v.ops {
			if s == nil {
				continue
			}
			s.fail, s.hang = nil, nil
			s.flakyRate, s.slow = 0, 0
			s.hasPermanent = false
		}
	}
}
