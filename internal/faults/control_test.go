package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestControlOpCleanByDefault(t *testing.T) {
	p := NewPlan(1)
	for op := Op(0); op < numOps; op++ {
		d := p.ControlOp("vm", op)
		if d.Err != nil || d.Latency != 0 {
			t.Errorf("%s: clean plan ruled %v/%v", op, d.Err, d.Latency)
		}
	}
	if n := p.ControlOps("vm", OpPause); n != 1 {
		t.Errorf("ControlOps(pause) = %d, want 1", n)
	}
}

func TestControlFailWindowPerOp(t *testing.T) {
	p := NewPlan(1)
	p.FailOps("vm", OpSnapshot, 1, 3)
	for i := 0; i < 5; i++ {
		d := p.ControlOp("vm", OpSnapshot)
		inWindow := i >= 1 && i < 3
		if inWindow && !errors.Is(d.Err, ErrControlFault) {
			t.Errorf("snapshot %d: err = %v, want control fault", i, d.Err)
		}
		if !inWindow && d.Err != nil {
			t.Errorf("snapshot %d: unexpected err %v", i, d.Err)
		}
	}
	// Schedules are per-op: reverts on the same VM are untouched.
	if d := p.ControlOp("vm", OpRevert); d.Err != nil {
		t.Errorf("revert caught snapshot schedule: %v", d.Err)
	}
}

func TestControlFailForeverIsPermanent(t *testing.T) {
	p := NewPlan(1)
	p.FailOpsForever("vm", OpPause, 2)
	for i := 0; i < 6; i++ {
		d := p.ControlOp("vm", OpPause)
		if i < 2 && d.Err != nil {
			t.Errorf("pause %d failed early: %v", i, d.Err)
		}
		if i >= 2 {
			if !errors.Is(d.Err, ErrControlPermanent) {
				t.Errorf("pause %d: err = %v, want permanent", i, d.Err)
			}
			if Classify(d.Err) != ClassPermanent {
				t.Errorf("pause %d: class = %v", i, Classify(d.Err))
			}
		}
	}
}

func TestControlHangChargesTimeoutAndFails(t *testing.T) {
	p := NewPlan(1)
	p.HangOps("vm", OpRevert, 0, 1)
	d := p.ControlOp("vm", OpRevert)
	if !errors.Is(d.Err, ErrControlHang) {
		t.Errorf("hung revert err = %v", d.Err)
	}
	if Classify(d.Err) != ClassTransient {
		t.Errorf("hang class = %v, want transient", Classify(d.Err))
	}
	if d.Latency != DefaultHangLatency {
		t.Errorf("hang latency = %v, want %v", d.Latency, DefaultHangLatency)
	}
	if d := p.ControlOp("vm", OpRevert); d.Err != nil || d.Latency != 0 {
		t.Errorf("revert past hang window: %v/%v", d.Err, d.Latency)
	}

	p2 := NewPlan(1)
	p2.SetHangLatency(7 * time.Millisecond)
	p2.SlowOps("vm", OpRevert, 2*time.Millisecond)
	p2.HangOps("vm", OpRevert, 0, 1)
	if d := p2.ControlOp("vm", OpRevert); d.Latency != 9*time.Millisecond {
		t.Errorf("slow+hang latency = %v, want 9ms", d.Latency)
	}
}

func TestControlSlowOpsChargeLatencyWithoutFailing(t *testing.T) {
	p := NewPlan(1)
	p.SlowOps("vm", OpDestroy, 3*time.Millisecond)
	d := p.ControlOp("vm", OpDestroy)
	if d.Err != nil {
		t.Errorf("slow destroy failed: %v", d.Err)
	}
	if d.Latency != 3*time.Millisecond {
		t.Errorf("slow destroy latency = %v", d.Latency)
	}
}

func TestControlFlakyDeterministicAndIndependent(t *testing.T) {
	run := func() []bool {
		p := NewPlan(42)
		p.FlakyOps("vm", OpPause, 0.4)
		out := make([]bool, 100)
		for i := range out {
			out[i] = p.ControlOp("vm", OpPause).Err != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flaky op outcome diverges at invocation %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("flaky rate 0.4 produced %d/%d failures", fails, len(a))
	}

	// The control-plane PRNG is decorrelated from the read-plane PRNG:
	// interleaving reads between ops must not change op outcomes.
	p := NewPlan(42)
	p.FlakyOps("vm", OpPause, 0.4)
	r := p.Reader("vm", patternReader{})
	buf := make([]byte, 4)
	for i := range a {
		if got := p.ControlOp("vm", OpPause).Err != nil; got != a[i] {
			t.Fatalf("op %d outcome changed because reads interleaved", i)
		}
		_ = r.ReadPhys(0, buf)
	}
}

func TestControlOnControlHookObservesOutcomes(t *testing.T) {
	p := NewPlan(1)
	var mu sync.Mutex
	var got []string
	p.OnControl(func(vm string, op Op, idx uint64, kind string) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, fmt.Sprintf("%s:%s:%d:%s", vm, op, idx, kind))
	})
	p.FailOps("vm", OpSnapshot, 0, 1)
	p.HangOps("vm", OpSnapshot, 1, 2)
	p.SlowOps("vm", OpUnpause, time.Millisecond)
	p.ControlOp("vm", OpSnapshot)
	p.ControlOp("vm", OpSnapshot)
	p.ControlOp("vm", OpSnapshot) // clean: no hook
	p.ControlOp("vm", OpUnpause)
	want := []string{"vm:snapshot:0:fail", "vm:snapshot:1:hang", "vm:unpause:0:slow"}
	if len(got) != len(want) {
		t.Fatalf("hook calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hook call %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestQuiesceClearsAllSchedules(t *testing.T) {
	p := NewPlan(9)
	p.FailForever("vm", 0)
	p.FlakyReads("vm", 1.0)
	p.TornWindow("vm", 0, 1000)
	p.PageNotPresent("vm", 0, 0, 1000)
	p.DestroyAt("vm", 0)
	p.FailOpsForever("vm", OpPause, 0)
	p.FlakyOps("vm", OpSnapshot, 1.0)
	p.SlowOps("vm", OpRevert, time.Second)
	p.HangOps("vm", OpDestroy, 0, 1000)

	fired := 0
	p.OnEvent(func(string, Event) { fired++ })
	p.Quiesce()

	r := p.Reader("vm", patternReader{})
	b := make([]byte, 512)
	for i := 0; i < 20; i++ {
		if err := r.ReadPhys(0, b); err != nil {
			t.Fatalf("read %d after Quiesce: %v", i, err)
		}
	}
	if fired != 0 {
		t.Errorf("%d unfired events survived Quiesce", fired)
	}
	for _, op := range []Op{OpPause, OpSnapshot, OpRevert, OpDestroy} {
		if d := p.ControlOp("vm", op); d.Err != nil || d.Latency != 0 {
			t.Errorf("%s after Quiesce: %v/%v", op, d.Err, d.Latency)
		}
	}
	// Counters survive: read index continues from where it was.
	if p.Reads("vm") != 20 {
		t.Errorf("Reads after Quiesce = %d, want 20", p.Reads("vm"))
	}
}

// TestControlOpGoroutineSafe exercises concurrent rulings under -race.
func TestControlOpGoroutineSafe(t *testing.T) {
	p := NewPlan(3)
	p.FlakyOps("shared", OpPause, 0.3)
	p.OnControl(func(string, Op, uint64, string) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		vm := "shared"
		if g%3 == 0 {
			vm = "other"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = p.ControlOp(vm, Op(i%int(numOps)))
			}
		}()
	}
	wg.Wait()
}
