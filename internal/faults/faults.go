// Package faults is the simulation's deterministic fault plane: a seeded,
// schedulable injector that makes guest-physical reads fail the way they
// fail in a real cloud — transiently (a page briefly not present, a domain
// being migrated), permanently (a domain destroyed mid-check), or silently
// (a guest mutating a page between two introspection reads, the torn-read
// case).
//
// Everything is deterministic for a fixed Plan seed and schedule: fault
// decisions depend only on each VM's own read counter and a per-VM PRNG
// derived from the plan seed, never on host time or goroutine interleaving.
// That makes fault scenarios replayable and usable from property tests and
// fuzz targets, and it is why the package is the standing harness for all
// resilience tests in this repository.
//
// The package also owns the fault *taxonomy* the rest of the pipeline
// consumes: any error can be classified as Transient (worth retrying with
// backoff) or Permanent (give up, record, quarantine). Other layers mint
// classified errors with Transient()/Permanent() — e.g. vmi.ErrTornRead and
// hypervisor.ErrDomainGone — so classification survives arbitrary
// fmt.Errorf("%w") wrapping.
package faults

import "errors"

// Class is the retry-relevant classification of a failure.
type Class int

const (
	// ClassNone is the classification of a nil error.
	ClassNone Class = iota
	// ClassTransient failures are expected to clear on their own (page
	// temporarily not present, domain being migrated, torn read); callers
	// should retry with bounded backoff charged to the simulated clock.
	ClassTransient
	// ClassPermanent failures will not clear within a sweep (domain
	// destroyed, module not loaded, hostile metadata); callers should
	// record them and move on. Unclassified errors default to permanent:
	// retrying an unknown failure mode is how checkers hang.
	ClassPermanent
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "NONE"
	case ClassTransient:
		return "TRANSIENT"
	case ClassPermanent:
		return "PERMANENT"
	default:
		return "UNKNOWN"
	}
}

// Classifier is implemented by errors that carry an explicit fault class.
type Classifier interface {
	FaultClass() Class
}

// classedError is a sentinel error with an attached class. It is comparable
// by errors.Is when wrapped with %w.
type classedError struct {
	msg   string
	class Class
}

func (e *classedError) Error() string     { return e.msg }
func (e *classedError) FaultClass() Class { return e.class }

// Transient creates an error classified ClassTransient.
func Transient(msg string) error { return &classedError{msg: msg, class: ClassTransient} }

// Permanent creates an error classified ClassPermanent.
func Permanent(msg string) error { return &classedError{msg: msg, class: ClassPermanent} }

// Injected fault sentinels. Injection sites wrap these with positional
// context, so errors.Is(err, ErrInjectedTransient) and Classify both work.
var (
	ErrInjectedTransient = Transient("faults: injected transient read fault")
	ErrInjectedPermanent = Permanent("faults: injected permanent read fault")
	// ErrPageNotPresent models a guest page that is temporarily not
	// available to the privileged domain (being paged, shared, or
	// migrated); by nature transient.
	ErrPageNotPresent = Transient("faults: page temporarily not present")
)

// Classify returns the fault class of err: the class carried by the nearest
// Classifier in its unwrap chain, ClassPermanent for unclassified non-nil
// errors, and ClassNone for nil.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var c Classifier
	if errors.As(err, &c) {
		return c.FaultClass()
	}
	return ClassPermanent
}

// IsTransient reports whether err is classified transient.
func IsTransient(err error) bool { return Classify(err) == ClassTransient }
