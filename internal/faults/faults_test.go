package faults

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"modchecker/internal/mm"
)

// patternReader is a deterministic fake physical memory: byte i of a read
// at pa is (pa+i)*31+7, so torn mutations are detectable.
type patternReader struct{}

func (patternReader) ReadPhys(pa uint32, b []byte) error {
	for i := range b {
		b[i] = byte((pa + uint32(i)) * 31)
	}
	return nil
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{ErrInjectedTransient, ClassTransient},
		{ErrInjectedPermanent, ClassPermanent},
		{ErrPageNotPresent, ClassTransient},
		{fmt.Errorf("wrapped: %w", ErrInjectedTransient), ClassTransient},
		{fmt.Errorf("deep: %w", fmt.Errorf("wrap: %w", ErrInjectedPermanent)), ClassPermanent},
		{errors.New("unclassified"), ClassPermanent},
		{Transient("custom transient"), ClassTransient},
		{Permanent("custom permanent"), ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if !IsTransient(fmt.Errorf("x: %w", ErrPageNotPresent)) {
		t.Error("IsTransient lost through wrapping")
	}
}

func TestFailReadsWindow(t *testing.T) {
	p := NewPlan(1)
	p.FailReads("vm", 2, 4)
	r := p.Reader("vm", patternReader{})
	b := make([]byte, 8)
	for i := 0; i < 6; i++ {
		err := r.ReadPhys(0x1000, b)
		inWindow := i >= 2 && i < 4
		if inWindow && !errors.Is(err, ErrInjectedTransient) {
			t.Errorf("read %d: err = %v, want transient", i, err)
		}
		if !inWindow && err != nil {
			t.Errorf("read %d: unexpected err %v", i, err)
		}
	}
	if p.Reads("vm") != 6 {
		t.Errorf("Reads = %d", p.Reads("vm"))
	}
}

func TestFailForever(t *testing.T) {
	p := NewPlan(1)
	p.FailForever("vm", 3)
	r := p.Reader("vm", patternReader{})
	b := make([]byte, 4)
	for i := 0; i < 10; i++ {
		err := r.ReadPhys(0, b)
		if i < 3 && err != nil {
			t.Errorf("read %d failed early: %v", i, err)
		}
		if i >= 3 && !errors.Is(err, ErrInjectedPermanent) {
			t.Errorf("read %d: err = %v, want permanent", i, err)
		}
	}
}

func TestTornWindowMutatesOnlyBulkReads(t *testing.T) {
	p := NewPlan(1)
	p.TornWindow("vm", 0, 100)
	r := p.Reader("vm", patternReader{})

	clean := make([]byte, 512)
	if err := (patternReader{}).ReadPhys(0x2000, clean); err != nil {
		t.Fatal(err)
	}

	// Small reads (structure fetches) pass through untouched.
	small := make([]byte, 16)
	if err := r.ReadPhys(0x2000, small); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, clean[:16]) {
		t.Error("small read was torn")
	}

	// Bulk reads inside the window are corrupted, and two consecutive
	// bulk reads of the same range never agree.
	a := make([]byte, 512)
	b := make([]byte, 512)
	if err := r.ReadPhys(0x2000, a); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadPhys(0x2000, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, clean) {
		t.Error("bulk read inside torn window not corrupted")
	}
	if bytes.Equal(a, b) {
		t.Error("two torn reads agree; verify pass could not detect this")
	}

	// Past the window the data is clean again.
	p2 := NewPlan(1)
	p2.TornWindow("vm", 0, 2)
	r2 := p2.Reader("vm", patternReader{})
	for i := 0; i < 3; i++ {
		if err := r2.ReadPhys(0x2000, a); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a, clean) {
		t.Error("read past torn window still corrupted")
	}
}

func TestPageNotPresent(t *testing.T) {
	p := NewPlan(1)
	p.PageNotPresent("vm", 3, 0, 10) // pfn 3 = [0x3000, 0x4000)
	r := p.Reader("vm", patternReader{})
	b := make([]byte, 64)
	if err := r.ReadPhys(0x2000, b); err != nil {
		t.Errorf("read of present page failed: %v", err)
	}
	if err := r.ReadPhys(0x3000, b); !errors.Is(err, ErrPageNotPresent) {
		t.Errorf("read of absent page: %v", err)
	}
	// A read crossing into the absent page also fails.
	if err := r.ReadPhys(0x2FF0, b); !errors.Is(err, ErrPageNotPresent) {
		t.Errorf("straddling read: %v", err)
	}
}

func TestFlakyReadsDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewPlan(99)
		p.FlakyReads("vm", 0.3)
		r := p.Reader("vm", patternReader{})
		b := make([]byte, 4)
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.ReadPhys(0, b) != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flaky outcome diverges at read %d across identical plans", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("flaky rate 0.3 produced %d/%d failures", fails, len(a))
	}
}

func TestFlakyStreamsIndependentPerVM(t *testing.T) {
	p := NewPlan(7)
	p.FlakyReads("a", 0.5)
	p.FlakyReads("b", 0.5)
	ra, rb := p.Reader("a", patternReader{}), p.Reader("b", patternReader{})
	buf := make([]byte, 4)
	same := true
	for i := 0; i < 64; i++ {
		if (ra.ReadPhys(0, buf) != nil) != (rb.ReadPhys(0, buf) != nil) {
			same = false
		}
	}
	if same {
		t.Error("two VMs share one flakiness stream")
	}
}

func TestLifecycleEventsFireOnce(t *testing.T) {
	p := NewPlan(1)
	var mu sync.Mutex
	var got []string
	p.OnEvent(func(vm string, ev Event) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, fmt.Sprintf("%s:%s", vm, ev))
	})
	p.PauseAt("vm", 2)
	p.ResumeAt("vm", 4)
	p.DestroyAt("vm", 6)
	r := p.Reader("vm", patternReader{})
	b := make([]byte, 4)
	for i := 0; i < 10; i++ {
		if err := r.ReadPhys(0, b); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"vm:PAUSE", "vm:RESUME", "vm:DESTROY"}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestReaderGoroutineSafe drives many goroutines through readers of the
// same plan (two sharing a VM, one separate) under -race: the injector is
// the fault harness for the parallel driver and must be data-race free.
func TestReaderGoroutineSafe(t *testing.T) {
	p := NewPlan(5)
	p.FlakyReads("shared", 0.2)
	p.FailReads("shared", 100, 150)
	p.TornWindow("other", 0, 1000)
	p.PauseAt("shared", 50)
	p.OnEvent(func(string, Event) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		vm := "shared"
		if g%3 == 0 {
			vm = "other"
		}
		r := p.Reader(vm, patternReader{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := make([]byte, 512)
			for i := 0; i < 200; i++ {
				_ = r.ReadPhys(uint32(i)<<4, b)
			}
		}()
	}
	wg.Wait()
	if p.Reads("shared")+p.Reads("other") != 8*200 {
		t.Errorf("reads lost: %d + %d", p.Reads("shared"), p.Reads("other"))
	}
}

// TestPlanIsPhysReader pins the integration contract: a plan reader is a
// drop-in mm.PhysReader.
func TestPlanIsPhysReader(t *testing.T) {
	var _ mm.PhysReader = NewPlan(1).Reader("vm", patternReader{})
}
