package faults

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// buildPlanFromOps interprets data as a stream of schedule operations over a
// two-VM pool and applies them to p. The encoding is deliberately loose —
// any byte slice is a valid schedule — so the fuzzer explores arbitrary
// stackings of windows, rates, and lifecycle events.
func buildPlanFromOps(p *Plan, data []byte) {
	vms := [2]string{"vmA", "vmB"}
	for len(data) >= 6 {
		op, vm := data[0]%6, vms[data[1]%2]
		a := uint64(binary.LittleEndian.Uint16(data[2:4]))
		b := a + uint64(data[4])
		switch op {
		case 0:
			p.FailReads(vm, a, b)
		case 1:
			p.FailForever(vm, a)
		case 2:
			p.FlakyReads(vm, float64(data[5]%100)/100)
		case 3:
			p.TornWindow(vm, a, b)
		case 4:
			p.PageNotPresent(vm, uint32(data[5]%8), a, b)
		case 5:
			switch data[5] % 3 {
			case 0:
				p.PauseAt(vm, a)
			case 1:
				p.ResumeAt(vm, a)
			default:
				p.DestroyAt(vm, a)
			}
		}
		data = data[6:]
	}
}

// FuzzFaultSchedule checks the fault plane's core guarantees over arbitrary
// schedules: no schedule panics, and two identically-seeded plans built
// from the same schedule make byte-identical decisions read for read.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 2, 0, 3, 0})
	f.Add(int64(42), []byte{1, 1, 10, 0, 0, 0, 2, 0, 0, 0, 0, 50})
	f.Add(int64(-7), []byte{3, 0, 0, 0, 255, 0, 5, 1, 4, 0, 0, 2})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		p1, p2 := NewPlan(seed), NewPlan(seed)
		buildPlanFromOps(p1, ops)
		buildPlanFromOps(p2, ops)
		var events1, events2 []string
		p1.OnEvent(func(vm string, ev Event) { events1 = append(events1, vm+ev.String()) })
		p2.OnEvent(func(vm string, ev Event) { events2 = append(events2, vm+ev.String()) })
		for _, vm := range []string{"vmA", "vmB"} {
			r1 := p1.Reader(vm, patternReader{})
			r2 := p2.Reader(vm, patternReader{})
			b1 := make([]byte, 512)
			b2 := make([]byte, 512)
			for i := 0; i < 64; i++ {
				pa := uint32(i%8) << 12
				err1 := r1.ReadPhys(pa, b1)
				err2 := r2.ReadPhys(pa, b2)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s read %d: plans diverge: %v vs %v", vm, i, err1, err2)
				}
				if Classify(err1) != Classify(err2) {
					t.Fatalf("%s read %d: classes diverge", vm, i)
				}
				if err1 == nil && !bytes.Equal(b1, b2) {
					t.Fatalf("%s read %d: torn bytes diverge", vm, i)
				}
			}
		}
		if len(events1) != len(events2) {
			t.Fatalf("event streams diverge: %v vs %v", events1, events2)
		}
		for i := range events1 {
			if events1[i] != events2[i] {
				t.Fatalf("event %d diverges: %s vs %s", i, events1[i], events2[i])
			}
		}
	})
}

// buildControlFromOps interprets data as a stream of control-plane schedule
// operations over a two-VM pool. Same looseness as buildPlanFromOps: every
// byte slice is a valid schedule.
func buildControlFromOps(p *Plan, data []byte) {
	vms := [2]string{"vmA", "vmB"}
	for len(data) >= 6 {
		kind, vm := data[0]%6, vms[data[1]%2]
		op := Op(data[1] % byte(numOps))
		a := uint64(binary.LittleEndian.Uint16(data[2:4]))
		b := a + uint64(data[4])
		switch kind {
		case 0:
			p.FailOps(vm, op, a, b)
		case 1:
			p.FailOpsForever(vm, op, a)
		case 2:
			p.FlakyOps(vm, op, float64(data[5]%100)/100)
		case 3:
			p.HangOps(vm, op, a, b)
		case 4:
			p.SlowOps(vm, op, time.Duration(data[5])*time.Microsecond)
		case 5:
			p.SetHangLatency(time.Duration(data[5]) * time.Millisecond)
		}
		data = data[6:]
	}
}

// FuzzControlPlanePlan checks the control plane's guarantees over arbitrary
// schedules: no schedule panics, and two identically-seeded plans built
// from the same schedule rule identically op for op — same error identity,
// same class, same charged latency — regardless of interleaved reads.
func FuzzControlPlanePlan(f *testing.F) {
	f.Add(int64(1), []byte{0, 5, 0, 0, 3, 0})
	f.Add(int64(42), []byte{2, 1, 0, 0, 0, 60, 3, 0, 1, 0, 2, 9})
	f.Add(int64(-7), []byte{1, 4, 2, 0, 0, 0, 4, 3, 0, 0, 0, 200, 5, 0, 0, 0, 0, 11})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		p1, p2 := NewPlan(seed), NewPlan(seed)
		buildControlFromOps(p1, ops)
		buildControlFromOps(p2, ops)
		// Interleave reads into p1 only: the control plane must be
		// insensitive to read-plane activity.
		r1 := p1.Reader("vmA", patternReader{})
		buf := make([]byte, 16)
		for _, vm := range []string{"vmA", "vmB"} {
			for i := 0; i < 32; i++ {
				op := Op(i % int(numOps))
				_ = r1.ReadPhys(uint32(i)<<4, buf)
				d1 := p1.ControlOp(vm, op)
				d2 := p2.ControlOp(vm, op)
				if (d1.Err == nil) != (d2.Err == nil) {
					t.Fatalf("%s %s op %d: plans diverge: %v vs %v", vm, op, i, d1.Err, d2.Err)
				}
				if Classify(d1.Err) != Classify(d2.Err) {
					t.Fatalf("%s %s op %d: classes diverge", vm, op, i)
				}
				if d1.Latency != d2.Latency {
					t.Fatalf("%s %s op %d: latency diverges: %v vs %v", vm, op, i, d1.Latency, d2.Latency)
				}
				if d1.Latency < 0 {
					t.Fatalf("%s %s op %d: negative latency %v", vm, op, i, d1.Latency)
				}
			}
		}
		p1.Quiesce()
		for i := 0; i < 8; i++ {
			if d := p1.ControlOp("vmA", Op(i%int(numOps))); d.Err != nil || d.Latency != 0 {
				t.Fatalf("quiesced plan still ruling: %v/%v", d.Err, d.Latency)
			}
		}
	})
}
