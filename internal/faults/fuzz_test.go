package faults

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// buildPlanFromOps interprets data as a stream of schedule operations over a
// two-VM pool and applies them to p. The encoding is deliberately loose —
// any byte slice is a valid schedule — so the fuzzer explores arbitrary
// stackings of windows, rates, and lifecycle events.
func buildPlanFromOps(p *Plan, data []byte) {
	vms := [2]string{"vmA", "vmB"}
	for len(data) >= 6 {
		op, vm := data[0]%6, vms[data[1]%2]
		a := uint64(binary.LittleEndian.Uint16(data[2:4]))
		b := a + uint64(data[4])
		switch op {
		case 0:
			p.FailReads(vm, a, b)
		case 1:
			p.FailForever(vm, a)
		case 2:
			p.FlakyReads(vm, float64(data[5]%100)/100)
		case 3:
			p.TornWindow(vm, a, b)
		case 4:
			p.PageNotPresent(vm, uint32(data[5]%8), a, b)
		case 5:
			switch data[5] % 3 {
			case 0:
				p.PauseAt(vm, a)
			case 1:
				p.ResumeAt(vm, a)
			default:
				p.DestroyAt(vm, a)
			}
		}
		data = data[6:]
	}
}

// FuzzFaultSchedule checks the fault plane's core guarantees over arbitrary
// schedules: no schedule panics, and two identically-seeded plans built
// from the same schedule make byte-identical decisions read for read.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 2, 0, 3, 0})
	f.Add(int64(42), []byte{1, 1, 10, 0, 0, 0, 2, 0, 0, 0, 0, 50})
	f.Add(int64(-7), []byte{3, 0, 0, 0, 255, 0, 5, 1, 4, 0, 0, 2})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		p1, p2 := NewPlan(seed), NewPlan(seed)
		buildPlanFromOps(p1, ops)
		buildPlanFromOps(p2, ops)
		var events1, events2 []string
		p1.OnEvent(func(vm string, ev Event) { events1 = append(events1, vm+ev.String()) })
		p2.OnEvent(func(vm string, ev Event) { events2 = append(events2, vm+ev.String()) })
		for _, vm := range []string{"vmA", "vmB"} {
			r1 := p1.Reader(vm, patternReader{})
			r2 := p2.Reader(vm, patternReader{})
			b1 := make([]byte, 512)
			b2 := make([]byte, 512)
			for i := 0; i < 64; i++ {
				pa := uint32(i%8) << 12
				err1 := r1.ReadPhys(pa, b1)
				err2 := r2.ReadPhys(pa, b2)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s read %d: plans diverge: %v vs %v", vm, i, err1, err2)
				}
				if Classify(err1) != Classify(err2) {
					t.Fatalf("%s read %d: classes diverge", vm, i)
				}
				if err1 == nil && !bytes.Equal(b1, b2) {
					t.Fatalf("%s read %d: torn bytes diverge", vm, i)
				}
			}
		}
		if len(events1) != len(events2) {
			t.Fatalf("event streams diverge: %v vs %v", events1, events2)
		}
		for i := range events1 {
			if events1[i] != events2[i] {
				t.Fatalf("event %d diverges: %s vs %s", i, events1[i], events2[i])
			}
		}
	})
}
