package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"modchecker/internal/mm"
)

// Event is a domain-lifecycle action the plan fires at a scheduled point of
// a VM's read stream. The plan itself only *announces* events; whoever
// installed the OnEvent hook (the cloud facade) performs the actual
// pause/resume/destroy against the hypervisor.
type Event int

const (
	// EventPause deschedules the domain (it stops adding load; its memory
	// stays readable, as on real Xen).
	EventPause Event = iota
	// EventResume reschedules a paused domain.
	EventResume
	// EventDestroy tears the domain down mid-check; subsequent reads
	// through a hypervisor-guarded reader fail permanently.
	EventDestroy
)

// String renders the event.
func (e Event) String() string {
	switch e {
	case EventPause:
		return "PAUSE"
	case EventResume:
		return "RESUME"
	case EventDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// tearThreshold is the minimum read size the torn-read mutator touches.
// Small reads are structure and page-table fetches; corrupting those models
// a *hostile* guest (pointer chases into garbage), not the benign
// page-churn case tearing exists for. Bulk page copies — the reads the
// Module-Searcher spends its time on — are all larger.
const tearThreshold = 256

// window is a half-open interval of a VM's read counter.
type window struct{ from, to uint64 }

func (w window) contains(i uint64) bool { return i >= w.from && i < w.to }

// pageWindow scopes a window to one guest-physical page.
type pageWindow struct {
	pfn uint32
	w   window
}

// eventAt schedules a one-shot lifecycle event at a read index.
type eventAt struct {
	at    uint64
	ev    Event
	fired bool
}

// vmPlan is one VM's schedule plus its deterministic per-VM state.
type vmPlan struct {
	rng           *rand.Rand // derived from plan seed + VM name; never host-seeded
	reads         uint64     // monotonically increasing read counter
	flakyRate     float64
	failWindows   []window
	tearWindows   []window
	notPresent    []pageWindow
	permanentFrom uint64
	hasPermanent  bool
	events        []eventAt
}

// Plan is a deterministic fault-injection plan for a pool of VMs: explicit
// per-VM schedules (read-index windows, one-shot lifecycle events) plus a
// seeded PRNG for rate-based flakiness. A Plan is safe for concurrent use
// by the parallel driver; decisions for one VM depend only on that VM's own
// read counter, so cross-VM goroutine interleaving cannot change outcomes.
type Plan struct {
	seed int64

	mu          sync.Mutex
	vms         map[string]*vmPlan
	ctl         map[string]*vmControl
	hangLatency time.Duration
	onEvent     func(vm string, ev Event)
	onInject    func(vm string, idx uint64, kind string)
	onControl   func(vm string, op Op, idx uint64, kind string)
}

// NewPlan creates an empty plan. All rate-based decisions derive from seed;
// two plans with equal seeds and equal schedules behave identically.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:        seed,
		vms:         make(map[string]*vmPlan),
		ctl:         make(map[string]*vmControl),
		hangLatency: DefaultHangLatency,
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// OnEvent installs the lifecycle hook invoked (outside the plan's lock)
// whenever a scheduled event fires. The cloud facade points this at the
// hypervisor's pause/unpause/destroy operations.
func (p *Plan) OnEvent(f func(vm string, ev Event)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onEvent = f
}

// OnInject installs an observability hook invoked (outside the plan's lock)
// whenever the plan injects a fault into a read: the VM, the read index it
// fired on, and the fault kind ("transient", "permanent", "page_not_present",
// "flaky", "torn"). The cloud facade points this at the tracer's fault
// track.
func (p *Plan) OnInject(f func(vm string, idx uint64, kind string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onInject = f
}

// fnv1a is the stable name hash that derives per-VM PRNG seeds from the
// plan seed, so each VM's fault streams are independent and reproducible
// regardless of pool composition.
func fnv1a(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// vm returns (creating on demand) the named VM's schedule. Caller holds mu.
func (p *Plan) vm(name string) *vmPlan {
	v, ok := p.vms[name]
	if !ok {
		v = &vmPlan{rng: rand.New(rand.NewSource(p.seed ^ int64(fnv1a(name))))}
		p.vms[name] = v
	}
	return v
}

// FailReads schedules transient read failures for vm on read indices
// [from, to) — a brief outage (narrow window) or a sweep-long one (wide
// window) that clears once the counter passes to.
func (p *Plan) FailReads(vm string, from, to uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.vm(vm)
	v.failWindows = append(v.failWindows, window{from, to})
}

// FailForever schedules a permanent failure: every read of vm from index
// `from` on fails with ErrInjectedPermanent — the VM is gone for good.
func (p *Plan) FailForever(vm string, from uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.vm(vm)
	if !v.hasPermanent || from < v.permanentFrom {
		v.permanentFrom, v.hasPermanent = from, true
	}
}

// FlakyReads makes each read of vm fail transiently with probability rate,
// drawn from the VM's seeded PRNG (deterministic per plan seed).
func (p *Plan) FlakyReads(vm string, rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.vm(vm).flakyRate = rate
}

// TornWindow schedules silent corruption: bulk reads of vm on indices
// [from, to) return bytes mutated by a per-read mask — the model of a guest
// rewriting a page *between* two Searcher reads. Two reads of the same data
// inside the window never agree, which is exactly what a read-verify pass
// detects.
func (p *Plan) TornWindow(vm string, from, to uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.vm(vm)
	v.tearWindows = append(v.tearWindows, window{from, to})
}

// PageNotPresent marks one guest-physical page of vm temporarily not
// present on read indices [from, to): reads touching that page fail with
// ErrPageNotPresent (transient).
func (p *Plan) PageNotPresent(vm string, pfn uint32, from, to uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.vm(vm)
	v.notPresent = append(v.notPresent, pageWindow{pfn: pfn, w: window{from, to}})
}

// PauseAt schedules a one-shot EventPause when vm's read counter reaches at.
func (p *Plan) PauseAt(vm string, at uint64) { p.scheduleEvent(vm, at, EventPause) }

// ResumeAt schedules a one-shot EventResume when vm's read counter reaches at.
func (p *Plan) ResumeAt(vm string, at uint64) { p.scheduleEvent(vm, at, EventResume) }

// DestroyAt schedules a one-shot EventDestroy when vm's read counter
// reaches at.
func (p *Plan) DestroyAt(vm string, at uint64) { p.scheduleEvent(vm, at, EventDestroy) }

func (p *Plan) scheduleEvent(vm string, at uint64, ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.vm(vm).events = append(p.vm(vm).events, eventAt{at: at, ev: ev})
}

// Reads returns how many reads the plan has observed for vm.
func (p *Plan) Reads(vm string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vm(vm).reads
}

// decision is the outcome of consulting the plan for one read.
type decision struct {
	idx    uint64
	err    error
	tear   bool
	kind   string // fault kind for the OnInject hook; "" when clean
	events []Event
}

// next advances vm's read counter and evaluates the schedule for this read.
func (p *Plan) next(vm string, pa uint32, n int) (decision, func(string, Event), func(string, uint64, string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.vm(vm)
	d := decision{idx: v.reads}
	v.reads++
	for i := range v.events {
		e := &v.events[i]
		if !e.fired && d.idx >= e.at {
			e.fired = true
			d.events = append(d.events, e.ev)
		}
	}
	switch {
	case v.hasPermanent && d.idx >= v.permanentFrom:
		d.err, d.kind = ErrInjectedPermanent, "permanent"
	case inWindows(v.failWindows, d.idx):
		d.err, d.kind = ErrInjectedTransient, "transient"
	case notPresentAt(v.notPresent, d.idx, pa, n):
		d.err, d.kind = ErrPageNotPresent, "page_not_present"
	case v.flakyRate > 0 && v.rng.Float64() < v.flakyRate:
		d.err, d.kind = ErrInjectedTransient, "flaky"
	case n >= tearThreshold && inWindows(v.tearWindows, d.idx):
		d.tear, d.kind = true, "torn"
	}
	return d, p.onEvent, p.onInject
}

func inWindows(ws []window, i uint64) bool {
	for _, w := range ws {
		if w.contains(i) {
			return true
		}
	}
	return false
}

func notPresentAt(ps []pageWindow, i uint64, pa uint32, n int) bool {
	first := pa >> mm.PageShift
	last := (pa + uint32(n) - 1) >> mm.PageShift
	for _, pw := range ps {
		if pw.w.contains(i) && pw.pfn >= first && pw.pfn <= last {
			return true
		}
	}
	return false
}

// tearMutate XORs b with the 8 little-endian bytes of idx+1, repeated. Any
// two distinct read indices produce distinct corruptions of the same data,
// so consecutive reads inside a torn window can never agree — the property
// the Searcher's read-verify pass relies on.
func tearMutate(b []byte, idx uint64) {
	seq := idx + 1 // never the all-zero mask
	for i := range b {
		b[i] ^= byte(seq >> ((uint(i) % 8) * 8))
	}
}

// Reader wraps a VM's physical memory with this plan's schedule for that
// VM. All readers obtained for the same VM share one read counter, so
// windows span handle re-opens (e.g. consecutive scanner sweeps). The
// returned reader is safe for concurrent use.
func (p *Plan) Reader(vm string, inner mm.PhysReader) mm.PhysReader {
	return &reader{plan: p, vm: vm, inner: inner}
}

type reader struct {
	plan  *Plan
	vm    string
	inner mm.PhysReader
}

// ReadPhys implements mm.PhysReader: consult the plan, fire due lifecycle
// events, then either fail, pass through, or pass through with torn bytes.
func (r *reader) ReadPhys(pa uint32, b []byte) error {
	d, hook, inject := r.plan.next(r.vm, pa, len(b))
	// Events fire outside the plan lock: the hook reaches into the
	// hypervisor, which must be free to take its own locks.
	if hook != nil {
		for _, ev := range d.events {
			hook(r.vm, ev)
		}
	}
	if inject != nil && d.kind != "" {
		inject(r.vm, d.idx, d.kind)
	}
	if d.err != nil {
		return fmt.Errorf("faults %s: read %d at %#x: %w", r.vm, d.idx, pa, d.err)
	}
	if err := r.inner.ReadPhys(pa, b); err != nil {
		return err
	}
	if d.tear {
		tearMutate(b, d.idx)
	}
	return nil
}
