package guest

import (
	"fmt"
	"hash/fnv"

	"modchecker/internal/codegen"
	"modchecker/internal/pe"
)

// ModuleSpec describes one synthetic kernel module. The standard catalog
// mirrors the Windows XP SP2 modules the paper exercises (hal.dll,
// http.sys, the "Hello World" dummy.sys, and a supporting cast), each built
// deterministically from its name so every cloned VM's disk carries
// byte-identical files.
type ModuleSpec struct {
	Name          string
	TextSize      uint32 // raw .text bytes
	DataSize      uint32 // raw .data bytes
	RdataSize     uint32 // raw .rdata bytes
	PreferredBase uint32 // ImageBase the linker chose
	Imports       []pe.Import
	Marker        bool // plant the paper's DEC ECX marker (E1 target)
	DLL           bool
}

// kernelImports are the functions a typical driver binds from the kernel.
var kernelImports = []pe.Import{
	{DLL: "ntoskrnl.exe", Functions: []string{
		"IoCreateDevice", "IoDeleteDevice", "ExAllocatePoolWithTag",
		"ExFreePoolWithTag", "KeInitializeSpinLock", "ObReferenceObjectByHandle",
		"RtlInitUnicodeString", "ZwClose",
	}},
	{DLL: "hal.dll", Functions: []string{
		"KfAcquireSpinLock", "KfReleaseSpinLock", "READ_PORT_UCHAR", "WRITE_PORT_UCHAR",
	}},
}

// StandardCatalog returns the module set installed on the golden image.
// Sizes approximate the real XP binaries scaled down for test speed while
// remaining large enough to span many pages (the property that makes
// Module-Searcher's page-wise copying dominate runtime, Figure 7).
func StandardCatalog() []ModuleSpec {
	halImports := []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{
		"KeBugCheckEx", "ExAllocatePoolWithTag", "KeQueryPerformanceCounter",
	}}}
	return []ModuleSpec{
		{Name: "ntoskrnl.exe", TextSize: 320 << 10, DataSize: 64 << 10, RdataSize: 32 << 10, PreferredBase: 0x00400000, Imports: halImports},
		{Name: "hal.dll", TextSize: 96 << 10, DataSize: 16 << 10, RdataSize: 8 << 10, PreferredBase: 0x00010000, Imports: halImports, Marker: true, DLL: true},
		{Name: "http.sys", TextSize: 160 << 10, DataSize: 32 << 10, RdataSize: 16 << 10, PreferredBase: 0x00010000, Imports: kernelImports},
		{Name: "tcpip.sys", TextSize: 192 << 10, DataSize: 48 << 10, RdataSize: 16 << 10, PreferredBase: 0x00010000, Imports: kernelImports},
		{Name: "ntfs.sys", TextSize: 256 << 10, DataSize: 64 << 10, RdataSize: 24 << 10, PreferredBase: 0x00010000, Imports: kernelImports},
		{Name: "ndis.sys", TextSize: 128 << 10, DataSize: 32 << 10, RdataSize: 8 << 10, PreferredBase: 0x00010000, Imports: kernelImports},
		{Name: "dummy.sys", TextSize: 4 << 10, DataSize: 1 << 10, RdataSize: 1 << 10, PreferredBase: 0x00010000, Imports: kernelImports, Marker: true},
	}
}

// BuildImage synthesizes the on-disk PE image for spec. The build is a pure
// function of the spec (seeded by the module name), so repeated builds are
// byte-identical — the property that lets cloned VMs share one golden disk.
func BuildImage(spec ModuleSpec) ([]byte, error) {
	h := fnv.New64a()
	h.Write([]byte(spec.Name))
	gen := codegen.New(int64(h.Sum64()))

	const textRVA = pe.DefaultSectionAlignment
	dataRVA := textRVA + alignUp(spec.TextSize, pe.DefaultSectionAlignment)
	rdataRVA := dataRVA + alignUp(spec.DataSize, pe.DefaultSectionAlignment)

	code, err := gen.Generate(codegen.GenerateParams{
		Size:     spec.TextSize,
		CodeVA:   spec.PreferredBase + textRVA,
		DataVA:   spec.PreferredBase + dataRVA,
		DataSize: spec.DataSize,
		MinCave:  8,
		MaxCave:  24,
		MarkerAt: spec.Marker,
	})
	if err != nil {
		return nil, fmt.Errorf("guest: building %s code: %w", spec.Name, err)
	}
	data, err := gen.GenerateData(spec.DataSize, spec.PreferredBase+dataRVA, int(spec.DataSize/128))
	if err != nil {
		return nil, fmt.Errorf("guest: building %s data: %w", spec.Name, err)
	}
	rdata, err := gen.GenerateData(spec.RdataSize, spec.PreferredBase+rdataRVA, int(spec.RdataSize/256))
	if err != nil {
		return nil, fmt.Errorf("guest: building %s rdata: %w", spec.Name, err)
	}

	var sites []uint32
	for _, off := range code.RelocOffsets {
		sites = append(sites, textRVA+off)
	}
	for _, off := range data.RelocOffsets {
		sites = append(sites, dataRVA+off)
	}
	for _, off := range rdata.RelocOffsets {
		sites = append(sites, rdataRVA+off)
	}

	b := pe.NewBuilder(spec.PreferredBase)
	if spec.DLL {
		b.SetDLL()
	}
	b.AddSection(".text", code.Code, pe.ScnCntCode|pe.ScnMemExecute|pe.ScnMemRead|pe.ScnMemNotPaged)
	b.AddSection(".data", data.Code, pe.ScnCntInitializedData|pe.ScnMemRead|pe.ScnMemWrite|pe.ScnMemNotPaged)
	b.AddSection(".rdata", rdata.Code, pe.ScnCntInitializedData|pe.ScnMemRead)
	b.SetImports(spec.Imports)
	b.SetRelocSites(sites)
	b.SetEntryPoint(textRVA + code.Functions[0])
	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("guest: building %s: %w", spec.Name, err)
	}
	return img.Bytes()
}

// BuildStandardDisk builds the golden disk: every module in the standard
// catalog, keyed by file name.
func BuildStandardDisk() (map[string][]byte, error) {
	disk := make(map[string][]byte)
	for _, spec := range StandardCatalog() {
		img, err := BuildImage(spec)
		if err != nil {
			return nil, err
		}
		disk[spec.Name] = img
	}
	return disk, nil
}

func alignUp(v, a uint32) uint32 { return (v + a - 1) / a * a }
