package guest

import (
	"bytes"
	"testing"

	"modchecker/internal/pe"
)

func TestStandardCatalogContents(t *testing.T) {
	specs := StandardCatalog()
	want := map[string]bool{
		"ntoskrnl.exe": true, "hal.dll": true, "http.sys": true,
		"tcpip.sys": true, "ntfs.sys": true, "ndis.sys": true, "dummy.sys": true,
	}
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		if !want[s.Name] {
			t.Errorf("unexpected module %s", s.Name)
		}
	}
}

func TestBuildImageDeterministic(t *testing.T) {
	spec := StandardCatalog()[1] // hal.dll
	a, err := BuildImage(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildImage(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two builds of the same spec differ")
	}
}

func TestBuildImagesDifferAcrossModules(t *testing.T) {
	disk, err := BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(disk["hal.dll"], disk["ndis.sys"]) {
		t.Error("different modules built identical images")
	}
}

func TestBuiltImagesParseAndValidate(t *testing.T) {
	disk, err := BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	for name, raw := range disk {
		img, err := pe.Parse(raw)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, sec := range []string{".text", ".data", ".rdata", "INIT", ".reloc"} {
			if img.Section(sec) == nil {
				t.Errorf("%s: missing %s", name, sec)
			}
		}
		sites, err := img.RelocSites()
		if err != nil {
			t.Errorf("%s: reloc: %v", name, err)
		}
		if len(sites) == 0 {
			t.Errorf("%s: no relocation sites", name)
		}
		imports, err := img.ParseImports()
		if err != nil {
			t.Errorf("%s: imports: %v", name, err)
		}
		if len(imports) == 0 {
			t.Errorf("%s: no imports", name)
		}
		if img.Optional.AddressOfEntryPoint == 0 {
			t.Errorf("%s: zero entry point", name)
		}
	}
}

func TestMarkerModules(t *testing.T) {
	disk, _ := BuildStandardDisk()
	marker := []byte{0xB9, 0x10, 0x00, 0x00, 0x00, 0x49}
	for _, tc := range []struct {
		name string
		want bool
	}{
		{"hal.dll", true},
		{"dummy.sys", true},
		{"http.sys", false},
	} {
		img, _ := pe.Parse(disk[tc.name])
		has := bytes.Contains(img.Section(".text").Data, marker)
		if has != tc.want {
			t.Errorf("%s: marker present=%v, want %v", tc.name, has, tc.want)
		}
	}
}

func TestBuildImageSizes(t *testing.T) {
	for _, spec := range StandardCatalog() {
		raw, err := BuildImage(spec)
		if err != nil {
			t.Fatal(err)
		}
		img, _ := pe.Parse(raw)
		text := img.Section(".text")
		if text.Header.VirtualSize != spec.TextSize {
			t.Errorf("%s .text vs = %#x, want %#x", spec.Name, text.Header.VirtualSize, spec.TextSize)
		}
		if img.Optional.ImageBase != spec.PreferredBase {
			t.Errorf("%s base = %#x", spec.Name, img.Optional.ImageBase)
		}
	}
}

func TestDLLFlagOnlyOnDLLs(t *testing.T) {
	disk, _ := BuildStandardDisk()
	hal, _ := pe.Parse(disk["hal.dll"])
	if hal.File.Characteristics&pe.FileDLL == 0 {
		t.Error("hal.dll not marked DLL")
	}
	httpImg, _ := pe.Parse(disk["http.sys"])
	if httpImg.File.Characteristics&pe.FileDLL != 0 {
		t.Error("http.sys marked DLL")
	}
}
