package guest

import "modchecker/internal/mm"

// Fork creates a copy-on-write clone of the guest, modeling a VM
// instantiated by snapshotting a running golden template rather than by
// booting from disk. The clone shares every physical frame with the
// template (mm.PhysMemory.Fork freezes the image into a common base layer)
// and pays only for frames it subsequently dirties, so a fleet of clean
// clones costs O(templates × image) memory instead of O(N × image).
//
// The clone inherits the template's page tables, loaded-module layout, pool
// cursor, and disk (shared until first mutation, like cloned domains
// already share the golden disk); its own seed drives any future load
// decisions and resource noise. Until the clone's memory diverges, its
// Phys().SnapshotID matches the template's — the content-identity token
// fleet sweeps use to avoid introspecting bit-identical clones twice.
func (g *Guest) Fork(name string, seed int64) *Guest {
	g.mu.Lock()
	defer g.mu.Unlock()
	phys := g.phys.Fork()
	as := mm.AttachAddressSpace(phys, g.as.CR3())
	c := &Guest{
		name:         name,
		seed:         seed,
		phys:         phys,
		as:           as,
		nextModuleVA: g.nextModuleVA,
		disk:         g.disk,
		modules:      make(map[string]*LoadedModule, len(g.modules)),
	}
	// LoadedModule records are immutable once linked, so sharing the
	// pointers is safe; the map itself must be private because load/unload
	// mutate it in place.
	for k, v := range g.modules {
		c.modules[k] = v
	}
	c.pool = &poolAllocator{as: as, next: g.pool.next, mappedEnd: g.pool.mappedEnd, limit: g.pool.limit}
	c.res.init(seed)
	return c
}
