// Package guest simulates a 32-bit Windows XP guest VM at the fidelity
// ModChecker requires: real guest-physical memory with x86 page tables, a
// kernel module loader that maps PE32 images and applies base relocations,
// and an authentic PsLoadedModuleList — a doubly linked list of
// LDR_DATA_TABLE_ENTRY structures laid out byte-for-byte in guest memory
// (paper Figure 2) that introspection tools traverse from outside.
//
// Guests are deterministic: two guests created from the same disk with the
// same boot seed are bit-identical, modeling VM clones instantiated from a
// single golden installation (paper Section V-A); different boot seeds give
// each VM its own module load addresses and physical frame layout, which is
// what forces the Integrity-Checker's RVA normalization.
package guest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"modchecker/internal/mm"
	"modchecker/internal/nt"
)

// Well-known guest virtual addresses (32-bit XP-like layout). These are
// properties of the OS build, so they are identical across cloned VMs —
// which is why a single VMI symbol profile works for the whole pool.
const (
	// PsLoadedModuleListVA is the guest VA of the PsLoadedModuleList
	// global: the LIST_ENTRY heading the loaded-module list.
	PsLoadedModuleListVA = 0x8055A420

	// kernelGlobalsVA is the page holding exported kernel globals
	// (contains PsLoadedModuleListVA).
	kernelGlobalsVA = 0x8055A000

	// poolBaseVA is the start of the simulated nonpaged pool, where
	// loader metadata (LDR entries, name buffers) is allocated.
	poolBaseVA = 0x81000000
	poolEndVA  = 0x85000000

	// driverAreaVA is the base of the region where kernel modules are
	// mapped (XP maps boot drivers around 0xF8xxxxxx, matching the base
	// addresses in the paper's Figure 4).
	driverAreaVA  = 0xF8000000
	driverAreaEnd = 0xFFC00000
)

// Config controls guest creation.
type Config struct {
	Name     string
	MemBytes uint64 // guest-physical memory size; default 64 MiB
	// BootSeed drives every nondeterministic boot decision: physical
	// frame allocation order, module base jitter, resource noise.
	// Distinct VMs get distinct seeds.
	BootSeed int64
	// Disk maps module file names to their on-disk PE images. Cloned VMs
	// share one disk (same underlying map is safe: it is never mutated
	// by the guest; infections that "patch the file on disk" operate on
	// a copy).
	Disk map[string][]byte
}

// Guest is one simulated virtual machine.
type Guest struct {
	name string
	seed int64 // boot seed; drives the lazily created rng
	phys *mm.PhysMemory
	as   *mm.AddressSpace

	// loadObs, when set, is invoked with the new CPU demand after every
	// SetLoad (outside the resource lock). The hypervisor installs it
	// before the guest is shared to keep its contention accounting O(1).
	loadObs func(float64)

	res resourceState // independently synchronized

	mu   sync.Mutex
	rng  *rand.Rand // lazily created from seed; forks never pay for one
	pool *poolAllocator
	// nextModuleVA is the bump pointer for module load addresses.
	nextModuleVA uint32
	modules      map[string]*LoadedModule // lowercase name -> record
	disk         map[string][]byte        // swapped whole on mutation (copy-on-write)
}

// LoadedModule records where a module was mapped and where its loader
// bookkeeping lives. This is guest-side ground truth used by tests and the
// infection toolkit; ModChecker itself never sees it — it recovers the same
// facts by walking guest memory.
type LoadedModule struct {
	Name        string
	Base        uint32 // DllBase: guest VA of the first byte of the image
	SizeOfImage uint32
	EntryPoint  uint32
	LdrEntryVA  uint32 // guest VA of the LDR_DATA_TABLE_ENTRY
}

// New boots a guest: initializes physical memory, the kernel address space,
// the pool, the PsLoadedModuleList head, and loads every module on the disk
// in deterministic (sorted) order, as an OS with a fixed boot-start driver
// set would.
func New(cfg Config) (*Guest, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 << 20
	}
	if cfg.Disk == nil {
		return nil, fmt.Errorf("guest %q: no disk", cfg.Name)
	}
	phys := mm.NewPhysMemory(cfg.MemBytes, cfg.BootSeed)
	as, err := mm.NewAddressSpace(phys)
	if err != nil {
		return nil, fmt.Errorf("guest %q: %w", cfg.Name, err)
	}
	g := &Guest{
		name:    cfg.Name,
		seed:    cfg.BootSeed,
		phys:    phys,
		as:      as,
		disk:    cfg.Disk,
		modules: make(map[string]*LoadedModule),
	}
	g.pool = newPoolAllocator(as, poolBaseVA, poolEndVA)
	g.res.init(cfg.BootSeed)

	// Map the kernel-globals page and initialize the empty module list
	// (head points at itself).
	if _, err := as.AllocAndMap(kernelGlobalsVA, mm.PageSize, mm.PteWritable); err != nil {
		return nil, fmt.Errorf("guest %q: mapping kernel globals: %w", cfg.Name, err)
	}
	head := nt.ListEntry{Flink: PsLoadedModuleListVA, Blink: PsLoadedModuleListVA}
	if err := as.Write(PsLoadedModuleListVA, nt.EncodeListEntry(head)); err != nil {
		return nil, err
	}

	// Boot-time module base: start of the driver area plus a per-VM
	// jitter, so clones load the same modules at different addresses
	// (real XP bases drift with boot-time pool state and device
	// enumeration order).
	g.nextModuleVA = driverAreaVA + uint32(g.bootRNG().Intn(256))*mm.PageSize

	names := make([]string, 0, len(cfg.Disk))
	for name := range cfg.Disk {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := g.LoadModule(name); err != nil {
			return nil, fmt.Errorf("guest %q: boot-loading %s: %w", cfg.Name, name, err)
		}
	}
	return g, nil
}

// Name returns the VM name (e.g. "Dom3").
func (g *Guest) Name() string { return g.name }

// Phys exposes guest-physical memory; the hypervisor hands this (read-only)
// to the VMI layer.
func (g *Guest) Phys() *mm.PhysMemory { return g.phys }

// CR3 returns the kernel address space's page-directory physical address,
// as the hypervisor would report the vCPU's CR3 to an introspection client.
func (g *Guest) CR3() uint32 { return g.as.CR3() }

// AddressSpace exposes the kernel address space for guest-side code (the
// infection toolkit patching live memory, tests checking ground truth).
func (g *Guest) AddressSpace() *mm.AddressSpace { return g.as }

// Modules returns the guest-side records of loaded modules, sorted by name.
func (g *Guest) Modules() []*LoadedModule {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*LoadedModule, 0, len(g.modules))
	for _, m := range g.modules {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Module returns the record for the named module (case-insensitive on the
// ASCII range, as Windows module names are), or nil.
func (g *Guest) Module(name string) *LoadedModule {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.modules[foldName(name)]
}

// DiskImage returns a copy of the on-disk image bytes for a module file,
// or nil. The copy matters: the underlying bytes may belong to the golden
// disk shared by every cloned VM, and handing out an alias would let one
// guest's mutation silently infect its siblings.
func (g *Guest) DiskImage(name string) []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	img, ok := g.disk[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), img...)
}

// ReplaceDiskImage swaps the on-disk image for name. Used by infections
// that patch the file and rely on a reboot/reload to bring the modified
// code into memory (paper Section V-B.1). The guest's disk map is copied
// on first mutation so sibling clones sharing the golden disk are
// unaffected.
func (g *Guest) ReplaceDiskImage(name string, img []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.disk[name]; !ok {
		return fmt.Errorf("guest %q: no file %s on disk", g.name, name)
	}
	// Copy-on-write: clones share the golden disk map.
	nd := make(map[string][]byte, len(g.disk))
	for k, v := range g.disk {
		nd[k] = v
	}
	nd[name] = img
	g.disk = nd
	return nil
}

// foldName lower-cases ASCII letters, mirroring the case-insensitive
// comparison Windows applies to module names.
func foldName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// bootRNG returns the guest's seeded boot/loader RNG, creating it on first
// use. Laziness matters at fleet scale: a rand.Rand costs ~5 KiB, and a
// forked clone that never loads another module never needs one. Callers
// must hold g.mu (or be inside New, before the guest is shared).
func (g *Guest) bootRNG() *rand.Rand {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.seed))
	}
	return g.rng
}

// allocModuleBase reserves a page-aligned load address for a module of the
// given image size, with a random inter-module gap.
func (g *Guest) allocModuleBase(size uint32) (uint32, error) {
	base := g.nextModuleVA
	if uint64(base)+uint64(size) > driverAreaEnd {
		return 0, fmt.Errorf("guest %q: driver area exhausted", g.name)
	}
	pages := (size + mm.PageSize - 1) / mm.PageSize
	gap := uint32(g.bootRNG().Intn(64)) * mm.PageSize
	g.nextModuleVA = base + pages*mm.PageSize + gap
	return base, nil
}
