package guest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"modchecker/internal/mm"
	"modchecker/internal/nt"
	"modchecker/internal/pe"
)

// smallDisk builds a compact module set for fast tests.
func smallDisk(t testing.TB) map[string][]byte {
	t.Helper()
	disk := map[string][]byte{}
	for _, spec := range []ModuleSpec{
		{Name: "alpha.sys", TextSize: 8 << 10, DataSize: 2 << 10, RdataSize: 1 << 10, PreferredBase: 0x10000, Marker: true},
		{Name: "beta.sys", TextSize: 12 << 10, DataSize: 4 << 10, RdataSize: 1 << 10, PreferredBase: 0x10000,
			Imports: []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{"ZwClose"}}}},
	} {
		img, err := BuildImage(spec)
		if err != nil {
			t.Fatalf("BuildImage(%s): %v", spec.Name, err)
		}
		disk[spec.Name] = img
	}
	return disk
}

func newGuest(t testing.TB, name string, seed int64) *Guest {
	t.Helper()
	g, err := New(Config{Name: name, MemBytes: 16 << 20, BootSeed: seed, Disk: smallDisk(t)})
	if err != nil {
		t.Fatalf("guest.New: %v", err)
	}
	return g
}

func TestBootLoadsAllModules(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	mods := g.Modules()
	if len(mods) != 2 {
		t.Fatalf("%d modules loaded, want 2", len(mods))
	}
	if mods[0].Name != "alpha.sys" || mods[1].Name != "beta.sys" {
		t.Errorf("modules = %v", mods)
	}
}

func TestBootRequiresDisk(t *testing.T) {
	if _, err := New(Config{Name: "x", BootSeed: 1}); err == nil {
		t.Error("boot without disk succeeded")
	}
}

func TestModuleLookupCaseInsensitive(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	if g.Module("ALPHA.SYS") == nil {
		t.Error("upper-case lookup failed")
	}
	if g.Module("nosuch.sys") != nil {
		t.Error("bogus module found")
	}
}

func TestModuleBasesInDriverArea(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	for _, m := range g.Modules() {
		if m.Base < driverAreaVA || m.Base >= driverAreaEnd {
			t.Errorf("%s at %#x outside driver area", m.Name, m.Base)
		}
		if m.Base&(mm.PageSize-1) != 0 {
			t.Errorf("%s base %#x not page aligned", m.Name, m.Base)
		}
	}
}

func TestCloneBasesDiffer(t *testing.T) {
	g1 := newGuest(t, "vm1", 1)
	g2 := newGuest(t, "vm2", 2)
	if g1.Module("alpha.sys").Base == g2.Module("alpha.sys").Base {
		t.Error("different boot seeds produced identical bases")
	}
}

func TestSameSeedIdenticalBoot(t *testing.T) {
	g1 := newGuest(t, "vm", 7)
	g2 := newGuest(t, "vm", 7)
	m1, m2 := g1.Module("alpha.sys"), g2.Module("alpha.sys")
	if m1.Base != m2.Base || m1.LdrEntryVA != m2.LdrEntryVA {
		t.Error("same seed booted differently")
	}
}

// TestPsLoadedModuleListStructure walks the raw in-memory list the way an
// introspection tool would and cross-checks it against guest-side truth.
func TestPsLoadedModuleListStructure(t *testing.T) {
	g := newGuest(t, "vm1", 3)
	as := g.AddressSpace()

	readList := func(va uint32) nt.ListEntry {
		b := make([]byte, nt.ListEntrySize)
		if err := as.Read(va, b); err != nil {
			t.Fatalf("read LIST_ENTRY at %#x: %v", va, err)
		}
		le, _ := nt.DecodeListEntry(b)
		return le
	}

	head := readList(PsLoadedModuleListVA)
	var names []string
	var entries []uint32
	for cur := head.Flink; cur != PsLoadedModuleListVA; {
		raw := make([]byte, nt.LdrDataTableEntrySize)
		if err := as.Read(cur, raw); err != nil {
			t.Fatal(err)
		}
		e, err := nt.DecodeLdrDataTableEntry(raw)
		if err != nil {
			t.Fatal(err)
		}
		nameBuf := make([]byte, e.BaseDllName.Length)
		if err := as.Read(e.BaseDllName.Buffer, nameBuf); err != nil {
			t.Fatal(err)
		}
		name, _ := nt.DecodeUTF16(nameBuf)
		names = append(names, name)
		entries = append(entries, cur)
		cur = e.InLoadOrderLinks.Flink
	}
	if len(names) != 2 || names[0] != "alpha.sys" || names[1] != "beta.sys" {
		t.Errorf("forward walk names = %v", names)
	}

	// Backward walk must visit the same entries in reverse.
	var back []uint32
	for cur := head.Blink; cur != PsLoadedModuleListVA; {
		back = append(back, cur)
		le := readList(cur)
		cur = le.Blink
	}
	if len(back) != 2 || back[0] != entries[1] || back[1] != entries[0] {
		t.Errorf("backward walk = %#v, want reverse of %#v", back, entries)
	}
}

// TestLoadedImageMatchesRelocatedLayout verifies the loader applied base
// relocations exactly as pe.LayoutAt computes them.
func TestLoadedImageMatchesRelocatedLayout(t *testing.T) {
	g := newGuest(t, "vm1", 5)
	mod := g.Module("alpha.sys")
	img, err := pe.Parse(g.DiskImage("alpha.sys"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := img.LayoutAt(mod.Base)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("in-memory module differs from relocated layout")
	}
}

// TestLoadedImageContainsAbsoluteAddresses spot-checks that a reloc site in
// the mapped image holds base-adjusted values (not the preferred-base
// values from the file).
func TestLoadedImageContainsAbsoluteAddresses(t *testing.T) {
	g := newGuest(t, "vm1", 5)
	mod := g.Module("alpha.sys")
	img, _ := pe.Parse(g.DiskImage("alpha.sys"))
	sites, err := img.RelocSites()
	if err != nil || len(sites) == 0 {
		t.Fatalf("no reloc sites: %v", err)
	}
	var b [4]byte
	if err := g.AddressSpace().Read(mod.Base+sites[0], b[:]); err != nil {
		t.Fatal(err)
	}
	addr := binary.LittleEndian.Uint32(b[:])
	delta := mod.Base - img.Optional.ImageBase
	if addr < img.Optional.ImageBase+delta || addr >= img.Optional.ImageBase+delta+img.Optional.SizeOfImage {
		t.Errorf("relocated operand %#x not within loaded image [%#x,%#x)",
			addr, mod.Base, mod.Base+mod.SizeOfImage)
	}
}

func TestLoadDuplicateRejected(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	if _, err := g.LoadModule("alpha.sys"); err == nil {
		t.Error("duplicate load succeeded")
	}
}

func TestLoadMissingFile(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	if _, err := g.LoadModule("ghost.sys"); err == nil {
		t.Error("loading nonexistent file succeeded")
	}
}

func TestUnloadRemovesFromList(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	if err := g.UnloadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	if g.Module("alpha.sys") != nil {
		t.Error("module still tracked after unload")
	}
	// The in-memory list must now contain only beta.sys.
	as := g.AddressSpace()
	b := make([]byte, nt.ListEntrySize)
	as.Read(PsLoadedModuleListVA, b)
	head, _ := nt.DecodeListEntry(b)
	count := 0
	for cur := head.Flink; cur != PsLoadedModuleListVA; count++ {
		raw := make([]byte, nt.LdrDataTableEntrySize)
		as.Read(cur, raw)
		e, _ := nt.DecodeLdrDataTableEntry(raw)
		cur = e.InLoadOrderLinks.Flink
	}
	if count != 1 {
		t.Errorf("list has %d entries after unload, want 1", count)
	}
	// And the image pages must be unmapped.
	mod := newGuest(t, "vm1", 1).Module("alpha.sys") // same seed: same base
	if err := as.Read(mod.Base, make([]byte, 4)); err == nil {
		t.Error("unloaded module memory still mapped")
	}
}

func TestUnloadUnknown(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	if err := g.UnloadModule("ghost.sys"); err == nil {
		t.Error("unloading unknown module succeeded")
	}
}

func TestReloadGetsFreshBase(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	old := g.Module("alpha.sys").Base
	if err := g.UnloadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	mod, err := g.LoadModule("alpha.sys")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Base == old {
		t.Error("reload reused the old base (bump allocator should advance)")
	}
}

func TestReplaceDiskImageCopyOnWrite(t *testing.T) {
	disk := smallDisk(t)
	g1, err := New(Config{Name: "a", MemBytes: 16 << 20, BootSeed: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(Config{Name: "b", MemBytes: 16 << 20, BootSeed: 2, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	infected := append([]byte(nil), g1.DiskImage("alpha.sys")...)
	infected[len(infected)-1] ^= 0xFF
	if err := g1.ReplaceDiskImage("alpha.sys", infected); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(g2.DiskImage("alpha.sys"), infected) {
		t.Error("replacing g1's disk image leaked into g2 (no copy-on-write)")
	}
	if !bytes.Equal(g1.DiskImage("alpha.sys"), infected) {
		t.Error("g1's disk image not replaced")
	}
}

func TestReplaceDiskImageUnknownFile(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	if err := g.ReplaceDiskImage("ghost.sys", []byte{1}); err == nil {
		t.Error("replacing unknown file succeeded")
	}
}

func TestSnapshotRestore(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	mod := g.Module("alpha.sys")
	snap := g.Snapshot()

	// Corrupt the module in memory, then restore.
	if err := g.AddressSpace().Write(mod.Base+0x1000, []byte{0xCC, 0xCC, 0xCC, 0xCC}); err != nil {
		t.Fatal(err)
	}
	g.Restore(snap)

	img, _ := pe.Parse(g.DiskImage("alpha.sys"))
	want, _ := img.LayoutAt(mod.Base)
	got := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("restore did not revert memory")
	}
}

func TestSnapshotRestoreTwice(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	mod := g.Module("alpha.sys")
	snap := g.Snapshot()
	for i := 0; i < 2; i++ {
		g.AddressSpace().Write(mod.Base+0x1000, []byte{0xCC})
		g.Restore(snap)
	}
	var b [1]byte
	g.AddressSpace().Read(mod.Base+0x1000, b[:])
	if b[0] == 0xCC {
		t.Error("second restore ineffective")
	}
}

func TestSnapshotRestoresModuleSet(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	snap := g.Snapshot()
	if err := g.UnloadModule("alpha.sys"); err != nil {
		t.Fatal(err)
	}
	g.Restore(snap)
	if g.Module("alpha.sys") == nil {
		t.Error("restore did not bring back the module record")
	}
	// After restore the guest must still be able to load/unload.
	if err := g.UnloadModule("alpha.sys"); err != nil {
		t.Errorf("unload after restore: %v", err)
	}
}

func TestResourceSampleIdle(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	g.Tick(100)
	s := g.Sample()
	if s.CPUIdlePct < 90 {
		t.Errorf("idle guest CPU idle = %.1f%%", s.CPUIdlePct)
	}
	if s.FreePhysMemPct < 80 {
		t.Errorf("idle guest free mem = %.1f%%", s.FreePhysMemPct)
	}
}

func TestResourceSampleLoaded(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	g.SetLoad(0.95, 0.8, 0.7, 0.5)
	g.Tick(100)
	s := g.Sample()
	if s.CPUIdlePct > 20 {
		t.Errorf("loaded guest CPU idle = %.1f%%", s.CPUIdlePct)
	}
	if s.PageFaultsPerS < 100 {
		t.Errorf("loaded guest faults = %.1f/s", s.PageFaultsPerS)
	}
	if g.Load() < 0.9 {
		t.Errorf("Load() = %.2f", g.Load())
	}
}

func TestSetLoadClamped(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	g.SetLoad(7, -3, 0.5, 2)
	if g.Load() != 1 {
		t.Errorf("Load = %v, want clamp to 1", g.Load())
	}
}

func TestUptimeAdvances(t *testing.T) {
	g := newGuest(t, "vm1", 1)
	g.Tick(100)
	g.Tick(150)
	if s := g.Sample(); s.TimeMS != 250 {
		t.Errorf("uptime = %d, want 250", s.TimeMS)
	}
}
