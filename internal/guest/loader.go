package guest

import (
	"fmt"

	"modchecker/internal/mm"
	"modchecker/internal/nt"
	"modchecker/internal/pe"
)

// LoadModule maps the named disk image into kernel memory the way the
// Windows module loader does:
//
//  1. parse the PE image and pick a load base,
//  2. map SizeOfImage bytes and copy headers + sections to their RVAs,
//  3. apply base relocations for the delta between the chosen base and the
//     preferred ImageBase (this is the step that plants absolute virtual
//     addresses in the code, making in-memory hashes differ across VMs),
//  4. allocate an LDR_DATA_TABLE_ENTRY and name buffers in pool, and
//  5. link the entry into PsLoadedModuleList via in-memory list surgery.
func (g *Guest) LoadModule(filename string) (*LoadedModule, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := foldName(filename)
	if _, dup := g.modules[key]; dup {
		return nil, fmt.Errorf("guest %q: module %s already loaded", g.name, filename)
	}
	raw, ok := g.disk[filename]
	if !ok {
		return nil, fmt.Errorf("guest %q: no file %s on disk", g.name, filename)
	}
	img, err := pe.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("guest %q: parsing %s: %w", g.name, filename, err)
	}

	base, err := g.allocModuleBase(img.Optional.SizeOfImage)
	if err != nil {
		return nil, err
	}
	mem, err := img.LayoutAt(base)
	if err != nil {
		return nil, fmt.Errorf("guest %q: laying out %s: %w", g.name, filename, err)
	}
	if _, err := g.as.AllocAndMap(base, img.Optional.SizeOfImage, mm.PteWritable); err != nil {
		return nil, fmt.Errorf("guest %q: mapping %s: %w", g.name, filename, err)
	}
	if err := g.as.Write(base, mem); err != nil {
		return nil, fmt.Errorf("guest %q: copying %s: %w", g.name, filename, err)
	}

	mod := &LoadedModule{
		Name:        filename,
		Base:        base,
		SizeOfImage: img.Optional.SizeOfImage,
		EntryPoint:  base + img.Optional.AddressOfEntryPoint,
	}
	if err := g.linkLoaderEntry(mod); err != nil {
		return nil, err
	}
	g.modules[key] = mod
	g.res.noteModuleEvent()
	return mod, nil
}

// linkLoaderEntry creates the LDR_DATA_TABLE_ENTRY in pool and inserts it
// at the tail of PsLoadedModuleList (InsertTailList semantics, so the list
// preserves load order — hence "InLoadOrderLinks").
func (g *Guest) linkLoaderEntry(mod *LoadedModule) error {
	baseName := mod.Name
	fullName := `\SystemRoot\System32\drivers\` + mod.Name

	baseBuf := nt.EncodeUTF16(baseName)
	fullBuf := nt.EncodeUTF16(fullName)
	baseBufVA, err := g.pool.alloc(uint32(len(baseBuf)), 2)
	if err != nil {
		return err
	}
	if err := g.as.Write(baseBufVA, baseBuf); err != nil {
		return err
	}
	fullBufVA, err := g.pool.alloc(uint32(len(fullBuf)), 2)
	if err != nil {
		return err
	}
	if err := g.as.Write(fullBufVA, fullBuf); err != nil {
		return err
	}
	entryVA, err := g.pool.alloc(nt.LdrDataTableEntrySize, 8)
	if err != nil {
		return err
	}

	// Read the current head to find the tail.
	head, err := g.readListEntry(PsLoadedModuleListVA)
	if err != nil {
		return err
	}
	entry := nt.LdrDataTableEntry{
		InLoadOrderLinks: nt.ListEntry{Flink: PsLoadedModuleListVA, Blink: head.Blink},
		DllBase:          mod.Base,
		EntryPoint:       mod.EntryPoint,
		SizeOfImage:      mod.SizeOfImage,
		FullDllName: nt.UnicodeString{
			Length:        uint16(len(fullBuf)),
			MaximumLength: uint16(len(fullBuf)),
			Buffer:        fullBufVA,
		},
		BaseDllName: nt.UnicodeString{
			Length:        uint16(len(baseBuf)),
			MaximumLength: uint16(len(baseBuf)),
			Buffer:        baseBufVA,
		},
		Flags:     0x09004000, // LDRP_ENTRY_PROCESSED | image-dll bits, as XP sets
		LoadCount: 1,
	}
	if err := g.as.Write(entryVA, entry.Encode()); err != nil {
		return err
	}
	// tail.Flink = entry
	if err := g.writeListFlink(head.Blink, entryVA); err != nil {
		return err
	}
	// head.Blink = entry
	if err := g.writeListBlink(PsLoadedModuleListVA, entryVA); err != nil {
		return err
	}
	mod.LdrEntryVA = entryVA
	return nil
}

// UnloadModule removes the module from PsLoadedModuleList and unmaps it.
func (g *Guest) UnloadModule(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := foldName(name)
	mod, ok := g.modules[key]
	if !ok {
		return fmt.Errorf("guest %q: module %s not loaded", g.name, name)
	}
	links, err := g.readListEntry(mod.LdrEntryVA + nt.OffInLoadOrderLinks)
	if err != nil {
		return err
	}
	// RemoveEntryList: Blink.Flink = Flink; Flink.Blink = Blink.
	if err := g.writeListFlink(links.Blink, links.Flink); err != nil {
		return err
	}
	if err := g.writeListBlink(links.Flink, links.Blink); err != nil {
		return err
	}
	if err := g.as.UnmapAndFree(mod.Base, mod.SizeOfImage); err != nil {
		return err
	}
	delete(g.modules, key)
	g.res.noteModuleEvent()
	return nil
}

func (g *Guest) readListEntry(va uint32) (nt.ListEntry, error) {
	b := make([]byte, nt.ListEntrySize)
	if err := g.as.Read(va, b); err != nil {
		return nt.ListEntry{}, err
	}
	return nt.DecodeListEntry(b)
}

func (g *Guest) writeListFlink(entryVA, flink uint32) error {
	le, err := g.readListEntry(entryVA)
	if err != nil {
		return err
	}
	le.Flink = flink
	return g.as.Write(entryVA, nt.EncodeListEntry(le))
}

func (g *Guest) writeListBlink(entryVA, blink uint32) error {
	le, err := g.readListEntry(entryVA)
	if err != nil {
		return err
	}
	le.Blink = blink
	return g.as.Write(entryVA, nt.EncodeListEntry(le))
}
