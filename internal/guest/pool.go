package guest

import (
	"fmt"

	"modchecker/internal/mm"
)

// poolAllocator is a simple bump allocator over a kernel virtual range,
// standing in for the nonpaged pool. It maps backing pages on demand and
// never frees (loader metadata is tiny and lives for the guest's lifetime,
// matching how PsLoadedModuleList entries behave in practice).
type poolAllocator struct {
	as        *mm.AddressSpace
	next      uint32
	mappedEnd uint32
	limit     uint32
}

func newPoolAllocator(as *mm.AddressSpace, base, limit uint32) *poolAllocator {
	return &poolAllocator{as: as, next: base, mappedEnd: base, limit: limit}
}

// alloc reserves size bytes aligned to align (a power of two) and returns
// the guest VA.
func (p *poolAllocator) alloc(size, align uint32) (uint32, error) {
	if align == 0 {
		align = 8
	}
	va := (p.next + align - 1) &^ (align - 1)
	end := va + size
	if end > p.limit {
		return 0, fmt.Errorf("guest: pool exhausted (%#x > %#x)", end, p.limit)
	}
	for p.mappedEnd < end {
		if _, err := p.as.AllocAndMap(p.mappedEnd, mm.PageSize, mm.PteWritable); err != nil {
			return 0, fmt.Errorf("guest: mapping pool page %#x: %w", p.mappedEnd, err)
		}
		p.mappedEnd += mm.PageSize
	}
	p.next = end
	return va, nil
}
