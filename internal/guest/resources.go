package guest

import (
	"math/rand"
	"sync"
)

// ResourceSample is one reading of the guest-internal performance counters,
// mirroring the fields the paper's in-guest recording tool collects
// (Section V-C.2): CPU state, memory state, disk state and network state.
type ResourceSample struct {
	TimeMS uint64 // guest uptime at sampling, milliseconds

	CPUIdlePct       float64
	CPUUserPct       float64
	CPUPrivilegedPct float64

	FreePhysMemPct float64
	FreeVirtMemPct float64
	PageFaultsPerS float64

	DiskQueueLen   float64
	DiskReadsPerS  float64
	DiskWritesPerS float64

	NetPacketsSentPerS float64
	NetPacketsRecvPerS float64
}

// resourceState models the guest's internal resource accounting. It only
// ever changes in response to in-guest activity (workload ticks, module
// loads); out-of-band VMI reads of guest-physical memory do not touch it —
// which is precisely the property Figure 9 demonstrates.
type resourceState struct {
	mu   sync.Mutex
	seed int64
	rng  *rand.Rand // lazily created from seed on first Sample (~5 KiB each)

	uptimeMS uint64
	cpuLoad  float64 // demanded CPU fraction [0,1]
	memLoad  float64 // fraction of memory the workload claims
	diskLoad float64 // disk demand fraction [0,1]
	netLoad  float64

	faultBurst float64 // transient page-fault pressure (decays per tick)
}

func (r *resourceState) init(seed int64) {
	r.seed = seed
	r.cpuLoad, r.memLoad, r.diskLoad, r.netLoad = 0.01, 0.05, 0.01, 0.01
}

// SetLoad sets the workload demand levels (clamped to [0,1]). The stress
// package drives this; idle guests keep the small defaults.
func (g *Guest) SetLoad(cpu, mem, disk, net float64) {
	r := &g.res
	r.mu.Lock()
	r.cpuLoad = clamp01(cpu)
	r.memLoad = clamp01(mem)
	r.diskLoad = clamp01(disk)
	r.netLoad = clamp01(net)
	load := r.cpuLoad
	r.mu.Unlock()
	// Notify outside the resource lock: the observer takes hypervisor
	// locks of its own and must never nest inside r.mu.
	if g.loadObs != nil {
		g.loadObs(load)
	}
}

// SetLoadObserver registers a callback invoked with the new CPU demand
// after every SetLoad. It must be installed before the guest is visible to
// other goroutines (the hypervisor does so at domain creation); the field
// is not otherwise synchronized.
func (g *Guest) SetLoadObserver(fn func(float64)) { g.loadObs = fn }

// Load returns the guest's current demanded CPU fraction; the hypervisor
// scheduler uses it to compute contention.
func (g *Guest) Load() float64 {
	r := &g.res
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cpuLoad
}

// Tick advances guest-internal time by dtMS milliseconds of activity.
func (g *Guest) Tick(dtMS uint64) {
	r := &g.res
	r.mu.Lock()
	defer r.mu.Unlock()
	r.uptimeMS += dtMS
	r.faultBurst *= 0.5
}

// noteModuleEvent records the transient disk/fault activity of a module
// load or unload.
func (r *resourceState) noteModuleEvent() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faultBurst += 50
}

// Sample reads the current counters. Values carry small seeded noise so
// idle traces look like real perfmon output rather than flat lines.
func (g *Guest) Sample() ResourceSample {
	r := &g.res
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.seed ^ 0x5EED))
	}
	n := func(scale float64) float64 { return (r.rng.Float64() - 0.5) * 2 * scale }

	busy := clamp01(r.cpuLoad + n(0.01))
	user := busy * 0.8
	priv := busy * 0.2
	s := ResourceSample{
		TimeMS:           r.uptimeMS,
		CPUIdlePct:       100 * (1 - busy),
		CPUUserPct:       100 * user,
		CPUPrivilegedPct: 100 * priv,

		FreePhysMemPct: 100 * clamp01(1-r.memLoad+n(0.005)),
		FreeVirtMemPct: 100 * clamp01(1-r.memLoad*0.6+n(0.005)),
		PageFaultsPerS: r.memLoad*2000 + r.faultBurst + 5 + n(2),

		DiskQueueLen:   r.diskLoad*4 + n(0.05),
		DiskReadsPerS:  r.diskLoad*400 + 1 + n(0.5),
		DiskWritesPerS: r.diskLoad*300 + 1 + n(0.5),

		NetPacketsSentPerS: r.netLoad*5000 + 2 + n(1),
		NetPacketsRecvPerS: r.netLoad*5000 + 2 + n(1),
	}
	if s.PageFaultsPerS < 0 {
		s.PageFaultsPerS = 0
	}
	if s.DiskQueueLen < 0 {
		s.DiskQueueLen = 0
	}
	return s
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
