package guest

import "modchecker/internal/mm"

// Snapshot is a point-in-time capture of a guest: the full physical memory
// image plus the loader bookkeeping needed to resume. The paper's
// discussion (Section III-B) notes that clouds keep clean snapshots and
// revert infected VMs to flush infections; the hypervisor package exposes
// that workflow on top of this type.
//
// The boot RNG stream is not part of the capture: module bases assigned
// *after* a restore may differ from those the original guest would have
// chosen, but all state existing at snapshot time is restored exactly.
type Snapshot struct {
	phys         *mm.PhysMemory
	cr3          uint32
	modules      map[string]*LoadedModule
	nextModuleVA uint32
	poolNext     uint32
	poolMapped   uint32
	disk         map[string][]byte
}

// Snapshot captures the guest's current memory and loader state.
func (g *Guest) Snapshot() *Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	mods := make(map[string]*LoadedModule, len(g.modules))
	for k, v := range g.modules {
		c := *v
		mods[k] = &c
	}
	return &Snapshot{
		phys:         g.phys.Clone(),
		cr3:          g.as.CR3(),
		modules:      mods,
		nextModuleVA: g.nextModuleVA,
		poolNext:     g.pool.next,
		poolMapped:   g.pool.mappedEnd,
		disk:         g.disk,
	}
}

// Restore rewinds the guest to the snapshot. The snapshot itself is not
// consumed; it can be restored any number of times.
func (g *Guest) Restore(s *Snapshot) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.phys = s.phys.Clone()
	g.as = mm.AttachAddressSpace(g.phys, s.cr3)
	g.pool = &poolAllocator{as: g.as, next: s.poolNext, mappedEnd: s.poolMapped, limit: poolEndVA}
	g.nextModuleVA = s.nextModuleVA
	g.disk = s.disk
	g.modules = make(map[string]*LoadedModule, len(s.modules))
	for k, v := range s.modules {
		c := *v
		g.modules[k] = &c
	}
}
