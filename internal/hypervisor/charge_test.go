package hypervisor

import (
	"sync"
	"testing"
	"time"

	"modchecker/internal/metrics"
)

// TestChargeDom0ConcurrentDeterministic pins the property the parallel
// pipeline's workers rely on when they call ChargeDom0 concurrently: with
// demand at or below the core count (slowdown exactly 1) the clock total and
// the charge counters are commutative sums, independent of goroutine
// interleaving. Run under -race this is also the data-race check for the
// charge path.
func TestChargeDom0ConcurrentDeterministic(t *testing.T) {
	hv, _ := newHV(t, 4) // 4 idle domains on 8 cores: slowdown 1

	const (
		goroutines = 8
		perG       = 1000
		work       = time.Microsecond
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if got := hv.ChargeDom0(work); got != work {
					t.Errorf("ChargeDom0(%v) = %v, want unstretched at slowdown 1", work, got)
					return
				}
			}
		}()
	}
	wg.Wait()

	want := time.Duration(goroutines*perG) * work
	if got := hv.Clock().Now(); got != want {
		t.Errorf("clock = %v after concurrent charges, want exactly %v", got, want)
	}

	var reg metrics.Registry
	hv.Bind(&reg)
	snap := reg.Snapshot()
	got := map[string]uint64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	if got["hv/charges"] != goroutines*perG {
		t.Errorf("hv/charges = %d, want %d", got["hv/charges"], goroutines*perG)
	}
	if got["hv/nominal_ns"] != uint64(want) {
		t.Errorf("hv/nominal_ns = %d, want %d", got["hv/nominal_ns"], uint64(want))
	}
	if got["hv/stretched_ns"] != uint64(want) {
		t.Errorf("hv/stretched_ns = %d, want %d (slowdown 1)", got["hv/stretched_ns"], uint64(want))
	}
	if got["hv/clock_ns"] != uint64(want) {
		t.Errorf("hv/clock_ns = %d, want %d", got["hv/clock_ns"], uint64(want))
	}
}

// TestChargeDom0Stretched: past the cores the credit scheduler stretches
// nominal work, and the nominal/stretched counters diverge accordingly.
func TestChargeDom0Stretched(t *testing.T) {
	hv, doms := newHV(t, 12)
	for _, d := range doms {
		d.Guest().SetLoad(1.0, 0, 0, 0)
	}
	if hv.Slowdown() <= 1 {
		t.Fatalf("slowdown = %v with 12 busy vCPUs on 8 cores", hv.Slowdown())
	}
	stretched := hv.ChargeDom0(time.Millisecond)
	if stretched <= time.Millisecond {
		t.Errorf("stretched = %v, want > 1ms under contention", stretched)
	}
	var reg metrics.Registry
	hv.Bind(&reg)
	snap := reg.Snapshot()
	vals := map[string]uint64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["hv/nominal_ns"] != uint64(time.Millisecond) {
		t.Errorf("hv/nominal_ns = %d", vals["hv/nominal_ns"])
	}
	if vals["hv/stretched_ns"] != uint64(stretched) {
		t.Errorf("hv/stretched_ns = %d, want %d", vals["hv/stretched_ns"], uint64(stretched))
	}
}
