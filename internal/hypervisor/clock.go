package hypervisor

import (
	"sync"
	"time"
)

// Clock is the hypervisor's simulated time source. Introspection work is
// charged to it (via Hypervisor.ChargeDom0) after contention stretching,
// so experiment harnesses can report runtimes with the *shape* of the
// paper's wall-clock measurements without depending on the host machine.
type Clock struct {
	mu  sync.Mutex
	now time.Duration // guarded by mu
}

// Now returns the current simulated time since boot.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves simulated time forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Reset rewinds the clock to zero; experiment harnesses call this between
// sweep points.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}
