package hypervisor

import (
	"fmt"
	"testing"
)

func TestCloneFleetNamesAndSharing(t *testing.T) {
	hv := New(8)
	doms, err := hv.CloneFleet("Dom", 12, 3, testDisk(t), 16<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(doms) != 12 {
		t.Fatalf("%d domains", len(doms))
	}
	for i, d := range doms {
		if want := fmt.Sprintf("Dom%d", i+1); d.Name != want {
			t.Errorf("domain %d named %q, want %q", i, d.Name, want)
		}
	}

	// Every domain — template or fork — advertises a snapshot identity
	// (forking freezes the template's image too), and a fork shares its
	// round-robin template's identity: Dom4 forks Dom1, Dom5 Dom2, ...
	ids := make([]uint64, len(doms))
	for i, d := range doms {
		id, ok := d.Guest().Phys().SnapshotID()
		if !ok {
			t.Fatalf("%s has no snapshot identity", d.Name)
		}
		ids[i] = id
	}
	for i := 3; i < 12; i++ {
		tmpl := (i - 3) % 3
		if ids[i] != ids[tmpl] {
			t.Errorf("%s id %d != template %s id %d", doms[i].Name, ids[i], doms[tmpl].Name, ids[tmpl])
		}
	}
	if ids[0] == ids[1] || ids[1] == ids[2] || ids[0] == ids[2] {
		t.Errorf("templates share an identity: %v", ids[:3])
	}

	// Each template's base layer is shared by itself plus its three forks.
	if refs := doms[0].Guest().Phys().BaseRefs(); refs != 4 {
		t.Errorf("template base refs = %d, want 4", refs)
	}
	fork := doms[3].Guest().Phys()
	if fork.PrivateFrames() != 0 {
		t.Errorf("fresh fork has %d private frames", fork.PrivateFrames())
	}
	if fork.SharedFrames() == 0 {
		t.Error("fresh fork shares no frames")
	}

	// A write diverges only the writer: its identity disappears while its
	// template and siblings keep theirs.
	if err := fork.WritePhys(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := fork.SnapshotID(); ok {
		t.Error("dirtied fork still advertises a snapshot identity")
	}
	if id, ok := doms[0].Guest().Phys().SnapshotID(); !ok || id != ids[0] {
		t.Error("template identity disturbed by fork's write")
	}
	if id, ok := doms[6].Guest().Phys().SnapshotID(); !ok || id != ids[6] {
		t.Error("sibling fork identity disturbed by fork's write")
	}
}

func TestCloneFleetFallsBackToFullBoots(t *testing.T) {
	for _, templates := range []int{0, 5, 9} {
		hv := New(8)
		doms, err := hv.CloneFleet("Dom", 5, templates, testDisk(t), 16<<20, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(doms) != 5 {
			t.Fatalf("templates=%d: %d domains", templates, len(doms))
		}
		for _, d := range doms {
			if _, ok := d.Guest().Phys().SnapshotID(); ok {
				t.Errorf("templates=%d: fully booted %s advertises a snapshot identity", templates, d.Name)
			}
		}
	}
}

func TestFleetDemandAccounting(t *testing.T) {
	hv := New(4)
	doms, err := hv.CloneFleet("Dom", 12, 2, testDisk(t), 16<<20, 9)
	if err != nil {
		t.Fatal(err)
	}
	idle := hv.Slowdown()
	if idle < 1 {
		t.Fatalf("idle slowdown %v < 1", idle)
	}
	for _, d := range doms {
		d.Guest().SetLoad(1, 0, 0, 0)
	}
	loaded := hv.Slowdown()
	if loaded <= idle {
		t.Fatalf("loading 12 guests on 4 cores did not raise slowdown: idle %v, loaded %v", idle, loaded)
	}
	// Destroying domains must retire their demand share.
	for _, d := range doms[4:] {
		if err := hv.DestroyDomain(d.Name); err != nil {
			t.Fatal(err)
		}
	}
	if after := hv.Slowdown(); after >= loaded {
		t.Fatalf("destroying 8 of 12 loaded guests did not lower slowdown: %v -> %v", loaded, after)
	}
}
