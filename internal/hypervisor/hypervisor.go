// Package hypervisor simulates the Xen host of the paper's testbed: a
// privileged Dom0 plus a pool of DomU guests cloned from one golden disk,
// running on a fixed number of virtual cores.
//
// Two aspects matter to the reproduction:
//
//   - Domain lifecycle. CloneDomains instantiates N identical guests the
//     way the paper clones 15 Windows XP VMs from a single installation;
//     snapshots capture and revert guest memory, the remediation path the
//     paper recommends after a detection.
//   - Contention. The credit-scheduler model (Slowdown) converts the
//     demand of loaded vCPUs into a slowdown factor for Dom0's
//     introspection work, reproducing Figure 8's non-linear knee once
//     loaded VMs outnumber physical cores.
package hypervisor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modchecker/internal/faults"
	"modchecker/internal/guest"
	"modchecker/internal/metrics"
	"modchecker/internal/mm"
	"modchecker/internal/trace"
)

// ErrDomainGone is returned by a guarded physical reader once its domain has
// been destroyed. Destruction is irreversible, so the error is classified
// permanent: the checking pipeline drops the VM rather than retrying it.
var ErrDomainGone = faults.Permanent("hypervisor: domain destroyed")

// DefaultCores matches the paper's testbed: a quad-core i7 with
// HyperThreading, i.e. 8 hardware threads.
const DefaultCores = 8

// Hypervisor hosts a set of domains on a fixed pool of virtual cores.
type Hypervisor struct {
	cores int
	clock Clock

	// Charge accounting: how many ChargeDom0 calls ran and how much
	// nominal vs contention-stretched work they represented. Commutative
	// atomic sums, so totals are interleaving-independent — the property the
	// parallel pipeline's workers rely on when they charge concurrently.
	charges     metrics.Counter
	nominalNs   metrics.Counter
	stretchedNs metrics.Counter

	// tracer receives lifecycle events (pause/unpause/destroy/snapshot).
	// Lifecycle calls can land from fault-plan hooks inside pipeline
	// workers, so events always go through Defer — never Emit.
	tracer atomic.Pointer[trace.Tracer]

	// gate, when installed, is consulted before every control-plane
	// operation; it can charge latency and fail the operation. Stored
	// atomically because lifecycle calls land from pipeline workers.
	gate atomic.Pointer[controlGate]

	// demand is the summed CPU demand of all running (unpaused,
	// undestroyed) vCPUs in micro-load units (see demandScale), maintained
	// incrementally at every lifecycle and load transition so Slowdown —
	// on the hot path of every charge — is O(1) in the fleet size instead
	// of a walk over 100k domains.
	demand atomic.Int64

	mu      sync.Mutex
	domains map[string]*Domain // guarded by mu
	nextID  int                // guarded by mu
}

// demandScale converts between a fractional CPU load and the integer
// micro-load units of the hypervisor's demand counter.
const demandScale = 1e6

// demandMicro quantizes one domain's CPU demand to micro-load units.
func demandMicro(load float64, vcpus int) int64 {
	return int64(math.Round(load * float64(vcpus) * demandScale))
}

// controlGate rules on one control-plane operation before it executes.
type controlGate func(vm string, op faults.Op) faults.ControlDecision

// SetControlGate installs the control-plane fault gate (nil uninstalls it).
// The cloud facade points this at an installed fault plan's ControlOp.
func (h *Hypervisor) SetControlGate(g func(vm string, op faults.Op) faults.ControlDecision) {
	if g == nil {
		h.gate.Store(nil)
		return
	}
	fn := controlGate(g)
	h.gate.Store(&fn)
}

// control consults the gate for one lifecycle operation. Injected latency
// (slow ops, hang timeouts) is charged to the simulated clock whether or
// not the operation goes on to fail. Called before any hypervisor or
// domain lock is taken (charging reads the demand counter, which lifecycle
// transitions update under those locks).
func (h *Hypervisor) control(vm string, op faults.Op) error {
	gp := h.gate.Load()
	if gp == nil {
		return nil
	}
	dec := (*gp)(vm, op)
	if dec.Latency > 0 {
		h.ChargeDom0(dec.Latency)
	}
	if dec.Err != nil {
		h.traceLifecycle(fmt.Sprintf("%s fault", op), vm)
		return fmt.Errorf("hypervisor %s: %s: %w", vm, op, dec.Err)
	}
	return nil
}

// Domain is one virtual machine slot: the guest plus hypervisor-side
// metadata (ID, snapshots, vCPU count).
type Domain struct {
	ID    int
	Name  string
	VCPUs int

	hv    *Hypervisor
	guest *guest.Guest

	// mmEpoch is bumped whenever the guest's physical memory may have
	// changed underneath an introspection handle (snapshot revert, fault
	// lifecycle events). VMI handles compare it against the epoch their
	// translation cache was filled under and flush on mismatch.
	mmEpoch atomic.Uint64

	// controlFails counts consecutive failed control-plane operations on
	// this domain; any success resets it. The scanner's per-domain circuit
	// breaker reads it to quarantine domains whose management API is gone
	// even though their memory still reads fine.
	controlFails atomic.Int64

	mu        sync.Mutex
	snapshots map[string]*guest.Snapshot // guarded by mu
	paused    bool                       // guarded by mu
	destroyed bool                       // guarded by mu
	// demandPart is this domain's current contribution to the hypervisor's
	// demand counter (zero while paused or destroyed). guarded by mu
	demandPart int64
}

// onLoadChange is the guest's load observer: it folds the domain's new CPU
// demand into the hypervisor's O(1) contention counter. Invoked by SetLoad
// outside the guest's resource lock. Paused and destroyed domains
// contribute nothing; an unpause re-reads the guest's load.
func (d *Domain) onLoadChange(load float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.paused || d.destroyed {
		return
	}
	part := demandMicro(load, d.VCPUs)
	d.hv.demand.Add(part - d.demandPart)
	d.demandPart = part
}

// noteControl records one control-plane outcome for the breaker counter.
func (d *Domain) noteControl(err error) {
	if err != nil {
		d.controlFails.Add(1)
	} else {
		d.controlFails.Store(0)
	}
}

// ControlFailures returns how many control-plane operations in a row have
// failed on this domain.
func (d *Domain) ControlFailures() int { return int(d.controlFails.Load()) }

// ResetControlFailures clears the consecutive-failure counter; the scanner
// calls it when a readmission probe closes the breaker.
func (d *Domain) ResetControlFailures() { d.controlFails.Store(0) }

// New creates a hypervisor with the given number of virtual cores
// (DefaultCores if zero).
func New(cores int) *Hypervisor {
	if cores <= 0 {
		cores = DefaultCores
	}
	return &Hypervisor{
		cores:   cores,
		domains: make(map[string]*Domain),
	}
}

// Cores returns the number of virtual cores.
func (h *Hypervisor) Cores() int { return h.cores }

// Clock returns the hypervisor's simulated clock.
func (h *Hypervisor) Clock() *Clock { return &h.clock }

// Bind publishes the hypervisor's charge accounting through the registry
// under the hv/ prefix, plus the simulated clock itself (in nanoseconds).
func (h *Hypervisor) Bind(r *metrics.Registry) {
	r.RegisterFunc("hv/charges", h.charges.Load)
	r.RegisterFunc("hv/nominal_ns", h.nominalNs.Load)
	r.RegisterFunc("hv/stretched_ns", h.stretchedNs.Load)
	r.RegisterFunc("hv/clock_ns", func() uint64 { return uint64(h.clock.Now()) })
}

// SetTracer installs the tracer that receives domain lifecycle events (nil
// uninstalls it). Install before starting checks; the pointer is read on
// every lifecycle call.
func (h *Hypervisor) SetTracer(tr *trace.Tracer) { h.tracer.Store(tr) }

// traceLifecycle defers one lifecycle event onto the cloud-events track.
// Deferred (not emitted) because lifecycle calls fire from fault-plan hooks
// inside racing pipeline workers; the tracer sequences them at the next
// deterministic flush point.
func (h *Hypervisor) traceLifecycle(event, vm string) {
	h.tracer.Load().Defer(event, "lifecycle", trace.Arg{Key: "vm", Val: vm})
}

// CreateDomain boots a new guest domain. The domain name must be unique.
func (h *Hypervisor) CreateDomain(cfg guest.Config) (*Domain, error) {
	if err := h.control(cfg.Name, faults.OpCreate); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.domains[cfg.Name]; dup {
		return nil, fmt.Errorf("hypervisor: domain %q exists", cfg.Name)
	}
	g, err := guest.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("hypervisor: booting %q: %w", cfg.Name, err)
	}
	return h.adoptLocked(cfg.Name, g), nil
}

// adoptLocked wraps a freshly built guest in a Domain, folds its demand
// into the contention counter, and publishes it. Caller holds h.mu.
func (h *Hypervisor) adoptLocked(name string, g *guest.Guest) *Domain {
	d := &Domain{
		ID:        h.nextID,
		Name:      name,
		VCPUs:     1,
		hv:        h,
		guest:     g,
		snapshots: make(map[string]*guest.Snapshot),
	}
	d.demandPart = demandMicro(g.Load(), d.VCPUs)
	h.demand.Add(d.demandPart)
	g.SetLoadObserver(d.onLoadChange)
	h.nextID++
	h.domains[name] = d
	return d
}

// ForkDomain instantiates a copy-on-write clone of an existing domain's
// guest (guest.Fork), modeling a VM created by snapshotting a running
// golden template instead of booting from disk. The clone shares all of
// the template's physical frames until either side writes, so its up-front
// cost is O(1) frames — the mechanism that makes 100k-domain fleets
// affordable. The control-plane gate rules on it as a clone operation.
func (h *Hypervisor) ForkDomain(src, name string, seed int64) (*Domain, error) {
	if err := h.control(name, faults.OpClone); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.domains[src]
	if !ok {
		return nil, fmt.Errorf("hypervisor: no domain %q to fork", src)
	}
	if _, dup := h.domains[name]; dup {
		return nil, fmt.Errorf("hypervisor: domain %q exists", name)
	}
	return h.adoptLocked(name, s.guest.Fork(name, seed)), nil
}

// CloneDomains instantiates n guests named <prefix>1..<prefix>n from one
// golden disk, each with a distinct boot seed — modeling the paper's 15
// DomU clones of a single Windows XP installation. The guests run the same
// OS (same disk, same kernel globals) but acquire their own module load
// addresses and physical layouts, exactly the situation ModChecker's RVA
// normalization exists for.
func (h *Hypervisor) CloneDomains(prefix string, n int, disk map[string][]byte, memBytes uint64, baseSeed int64) ([]*Domain, error) {
	out := make([]*Domain, 0, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if err := h.control(name, faults.OpClone); err != nil {
			return nil, err
		}
		d, err := h.CreateDomain(guest.Config{
			Name:     name,
			MemBytes: memBytes,
			BootSeed: baseSeed + int64(i)*0x9E3779B9,
			Disk:     disk,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// CloneFleet instantiates n guests named <prefix>1..<prefix>n from one
// golden disk, booting only the first `templates` of them classically
// (distinct boot seeds, like CloneDomains) and creating the rest as
// copy-on-write forks of those templates, round-robin. Templates preserve
// the cross-VM layout diversity that exercises RVA normalization; forks
// share their template's frozen memory image until first write, so the
// fleet's memory and boot cost are O(templates), not O(n). templates <= 0
// (or >= n) degenerates to CloneDomains.
func (h *Hypervisor) CloneFleet(prefix string, n, templates int, disk map[string][]byte, memBytes uint64, baseSeed int64) ([]*Domain, error) {
	if templates <= 0 || templates >= n {
		return h.CloneDomains(prefix, n, disk, memBytes, baseSeed)
	}
	out := make([]*Domain, 0, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		seed := baseSeed + int64(i)*0x9E3779B9
		var (
			d   *Domain
			err error
		)
		if i <= templates {
			if err = h.control(name, faults.OpClone); err != nil {
				return nil, err
			}
			d, err = h.CreateDomain(guest.Config{
				Name:     name,
				MemBytes: memBytes,
				BootSeed: seed,
				Disk:     disk,
			})
		} else {
			src := out[(i-templates-1)%templates]
			d, err = h.ForkDomain(src.Name, name, seed)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Domain returns the named domain, or nil.
func (h *Hypervisor) Domain(name string) *Domain {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.domains[name]
}

// Domains returns all domains sorted by ID.
func (h *Hypervisor) Domains() []*Domain {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Domain, 0, len(h.domains))
	for _, d := range h.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DestroyDomain removes a domain. Any Domain handles still held (e.g. by an
// in-flight check) see Destroyed() flip and their guarded physical readers
// start failing with ErrDomainGone — destruction mid-check is an error the
// pipeline must absorb, not a crash.
func (h *Hypervisor) DestroyDomain(name string) error {
	if err := h.control(name, faults.OpDestroy); err != nil {
		if d := h.Domain(name); d != nil {
			d.noteControl(err)
		}
		return err
	}
	h.mu.Lock()
	d, ok := h.domains[name]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("hypervisor: no domain %q", name)
	}
	delete(h.domains, name)
	h.mu.Unlock()
	d.mu.Lock()
	d.destroyed = true
	h.demand.Add(-d.demandPart)
	d.demandPart = 0
	d.mu.Unlock()
	h.traceLifecycle("domain destroy", name)
	return nil
}

// Slowdown returns the factor by which contention stretches Dom0 work
// right now. With runnable vCPU demand (including one vCPU of Dom0 work)
// at or below the core count the factor is 1; past that, the credit
// scheduler time-slices and Dom0 receives cores/demand of a core, with an
// additional quadratic overcommit penalty for context-switch and cache
// pressure — the source of Figure 8's super-linear growth.
//
// The demand sum is maintained incrementally (see Hypervisor.demand), so
// this is one atomic load regardless of fleet size — it sits on the path
// of every single charge.
func (h *Hypervisor) Slowdown() float64 {
	demand := 1.0 + float64(h.demand.Load())/demandScale // 1.0: the Dom0 vCPU doing the introspection work
	if demand <= float64(h.cores) {
		return 1
	}
	over := demand / float64(h.cores)
	return over * (1 + 0.35*(over-1)*(over-1))
}

// ChargeDom0 accounts simulated Dom0 CPU time: the nominal work duration is
// stretched by the current contention factor, added to the clock, and
// returned.
//
//modsafe:charges advances the simulated Dom0 clock
func (h *Hypervisor) ChargeDom0(work time.Duration) time.Duration {
	stretched := time.Duration(float64(work) * h.Slowdown())
	h.clock.Advance(stretched)
	h.charges.Inc()
	if work > 0 {
		h.nominalNs.Add(uint64(work))
	}
	if stretched > 0 {
		h.stretchedNs.Add(uint64(stretched))
	}
	return stretched
}

// Guest exposes the domain's guest for in-guest operations (infection,
// monitoring, ground-truth checks).
func (d *Domain) Guest() *guest.Guest { return d.guest }

// Pause marks the domain descheduled; paused domains add no load. It fails
// on a destroyed domain or when the installed control-plane fault gate
// rejects the request; a failed pause leaves the schedule state unchanged.
//
//modsafe:acquires domain-pause
func (d *Domain) Pause() error {
	if err := d.hv.control(d.Name, faults.OpPause); err != nil {
		d.noteControl(err)
		return err
	}
	d.mu.Lock()
	if d.destroyed {
		d.mu.Unlock()
		err := fmt.Errorf("hypervisor %s: pause: %w", d.Name, ErrDomainGone)
		d.noteControl(err)
		return err
	}
	d.paused = true
	d.hv.demand.Add(-d.demandPart)
	d.demandPart = 0
	d.mu.Unlock()
	d.noteControl(nil)
	d.hv.traceLifecycle("domain pause", d.Name)
	return nil
}

// Unpause reschedules the domain. Fallible for the same reasons as Pause.
//
//modsafe:releases domain-pause
func (d *Domain) Unpause() error {
	if err := d.hv.control(d.Name, faults.OpUnpause); err != nil {
		d.noteControl(err)
		return err
	}
	// Re-read the guest's demand outside d.mu: Load takes the guest's
	// resource lock, which must never nest inside the domain lock.
	load := d.guest.Load()
	d.mu.Lock()
	if d.destroyed {
		d.mu.Unlock()
		err := fmt.Errorf("hypervisor %s: unpause: %w", d.Name, ErrDomainGone)
		d.noteControl(err)
		return err
	}
	if d.paused {
		d.paused = false
		d.demandPart = demandMicro(load, d.VCPUs)
		d.hv.demand.Add(d.demandPart)
	}
	d.mu.Unlock()
	d.noteControl(nil)
	d.hv.traceLifecycle("domain unpause", d.Name)
	return nil
}

// Paused reports whether the domain is descheduled.
func (d *Domain) Paused() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.paused
}

// Destroyed reports whether the domain has been torn down.
func (d *Domain) Destroyed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.destroyed
}

// PhysReader exposes the domain's physical memory guarded by its lifecycle:
// once the domain is destroyed every read fails with ErrDomainGone. The
// check is per read, so a destruction landing in the middle of a module copy
// fails the copy's next page — the torn-down-mid-check case the pipeline's
// error isolation exists for.
func (d *Domain) PhysReader() mm.PhysReader {
	return guardedReader{d: d}
}

type guardedReader struct{ d *Domain }

// ReadPhys reads guest physical memory, failing once the domain is gone.
//
//modsafe:spends guarded physical read
func (r guardedReader) ReadPhys(pa uint32, b []byte) error {
	if r.d.Destroyed() {
		return fmt.Errorf("hypervisor %s: %w", r.d.Name, ErrDomainGone)
	}
	return r.d.guest.Phys().ReadPhys(pa, b)
}

// TakeSnapshot captures the guest state under the given tag, overwriting
// any previous snapshot with the same tag. It fails on a destroyed domain
// or when the control-plane fault gate rejects or times out the request —
// snapshots are the flakiest operation of real management APIs.
func (d *Domain) TakeSnapshot(tag string) error {
	if err := d.hv.control(d.Name, faults.OpSnapshot); err != nil {
		d.noteControl(err)
		return err
	}
	if d.Destroyed() {
		err := fmt.Errorf("hypervisor %s: snapshot: %w", d.Name, ErrDomainGone)
		d.noteControl(err)
		return err
	}
	s := d.guest.Snapshot()
	d.mu.Lock()
	d.snapshots[tag] = s
	d.mu.Unlock()
	d.noteControl(nil)
	d.hv.traceLifecycle("snapshot take", d.Name)
	return nil
}

// Revert rewinds the guest to the tagged snapshot — the paper's
// recommended remediation once ModChecker flags a discrepancy.
func (d *Domain) Revert(tag string) error {
	if err := d.hv.control(d.Name, faults.OpRevert); err != nil {
		d.noteControl(err)
		return err
	}
	if d.Destroyed() {
		err := fmt.Errorf("hypervisor %s: revert: %w", d.Name, ErrDomainGone)
		d.noteControl(err)
		return err
	}
	d.mu.Lock()
	s, ok := d.snapshots[tag]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("hypervisor: domain %q has no snapshot %q", d.Name, tag)
	}
	d.noteControl(nil)
	d.guest.Restore(s)
	d.mmEpoch.Add(1)
	d.hv.traceLifecycle("snapshot revert", d.Name)
	return nil
}

// MappingEpoch returns the domain's memory-mapping epoch. It changes every
// time guest physical memory may have been rewritten behind the back of an
// open introspection handle, so handles can cheaply detect staleness.
func (d *Domain) MappingEpoch() uint64 { return d.mmEpoch.Load() }

// InvalidateMappings bumps the mapping epoch, forcing every VMI handle on
// this domain to drop cached translations before its next access. Called on
// fault-plan lifecycle events (pause/resume/destroy) where the simulated
// guest may have been perturbed.
func (d *Domain) InvalidateMappings() { d.mmEpoch.Add(1) }

// Snapshots lists the domain's snapshot tags, sorted.
func (d *Domain) Snapshots() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	tags := make([]string, 0, len(d.snapshots))
	for t := range d.snapshots {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}
