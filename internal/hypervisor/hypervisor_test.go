package hypervisor

import (
	"errors"
	"testing"
	"time"

	"modchecker/internal/faults"
	"modchecker/internal/guest"
)

func testDisk(t testing.TB) map[string][]byte {
	t.Helper()
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "alpha.sys", TextSize: 8 << 10, DataSize: 2 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000, Marker: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{"alpha.sys": img}
}

func newHV(t testing.TB, n int) (*Hypervisor, []*Domain) {
	t.Helper()
	hv := New(8)
	doms, err := hv.CloneDomains("Dom", n, testDisk(t), 16<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	return hv, doms
}

func TestDefaultCores(t *testing.T) {
	if New(0).Cores() != DefaultCores {
		t.Error("default cores not applied")
	}
	if New(4).Cores() != 4 {
		t.Error("explicit cores not applied")
	}
}

func TestCloneDomains(t *testing.T) {
	hv, doms := newHV(t, 5)
	if len(doms) != 5 {
		t.Fatalf("%d domains", len(doms))
	}
	for i, d := range doms {
		if d.Name != "Dom"+string(rune('1'+i)) {
			t.Errorf("domain %d named %q", i, d.Name)
		}
		if d.ID != i {
			t.Errorf("domain %s ID = %d", d.Name, d.ID)
		}
	}
	if got := hv.Domains(); len(got) != 5 || got[0].Name != "Dom1" {
		t.Errorf("Domains() = %v", got)
	}
}

func TestClonesAreDistinctGuests(t *testing.T) {
	_, doms := newHV(t, 2)
	b1 := doms[0].Guest().Module("alpha.sys").Base
	b2 := doms[1].Guest().Module("alpha.sys").Base
	if b1 == b2 {
		t.Error("clones loaded the module at the same base")
	}
}

func TestCreateDomainDuplicate(t *testing.T) {
	hv := New(8)
	cfg := guest.Config{Name: "A", MemBytes: 16 << 20, BootSeed: 1, Disk: testDisk(t)}
	if _, err := hv.CreateDomain(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := hv.CreateDomain(cfg); err == nil {
		t.Error("duplicate domain accepted")
	}
}

func TestDomainLookupAndDestroy(t *testing.T) {
	hv, _ := newHV(t, 3)
	if hv.Domain("Dom2") == nil {
		t.Fatal("Dom2 missing")
	}
	if hv.Domain("DomX") != nil {
		t.Error("bogus domain found")
	}
	if err := hv.DestroyDomain("Dom2"); err != nil {
		t.Fatal(err)
	}
	if hv.Domain("Dom2") != nil {
		t.Error("destroyed domain still present")
	}
	if err := hv.DestroyDomain("Dom2"); err == nil {
		t.Error("double destroy succeeded")
	}
}

func TestSlowdownIdle(t *testing.T) {
	hv, _ := newHV(t, 15)
	if s := hv.Slowdown(); s != 1 {
		t.Errorf("idle slowdown = %.2f, want 1", s)
	}
}

func TestSlowdownBelowCoreCount(t *testing.T) {
	hv, doms := newHV(t, 15)
	// 6 loaded VMs + 1 Dom0 vCPU = 7 <= 8 cores.
	for i := 0; i < 6; i++ {
		doms[i].Guest().SetLoad(1, 0, 0, 0)
	}
	if s := hv.Slowdown(); s != 1 {
		t.Errorf("slowdown with 6 loaded VMs = %.2f, want 1", s)
	}
}

func TestSlowdownKnee(t *testing.T) {
	hv, doms := newHV(t, 15)
	var prev float64 = 1
	for i := 0; i < 15; i++ {
		doms[i].Guest().SetLoad(1, 0, 0, 0)
		s := hv.Slowdown()
		if s < prev {
			t.Errorf("slowdown decreased at %d loaded VMs: %.3f < %.3f", i+1, s, prev)
		}
		prev = s
	}
	if prev <= 1.5 {
		t.Errorf("slowdown with 15 loaded VMs on 8 cores = %.2f, expected heavy contention", prev)
	}
	// Superlinearity: the jump from 14->15 exceeds the jump 8->9.
	for i := range doms {
		doms[i].Guest().SetLoad(0, 0, 0, 0)
	}
	at := func(n int) float64 {
		for i := 0; i < n; i++ {
			doms[i].Guest().SetLoad(1, 0, 0, 0)
		}
		s := hv.Slowdown()
		for i := 0; i < n; i++ {
			doms[i].Guest().SetLoad(0, 0, 0, 0)
		}
		return s
	}
	if at(15)-at(14) <= at(9)-at(8) {
		t.Error("slowdown growth not super-linear past the knee")
	}
}

func TestPausedDomainsAddNoLoad(t *testing.T) {
	hv, doms := newHV(t, 15)
	for _, d := range doms {
		d.Guest().SetLoad(1, 0, 0, 0)
		if err := d.Pause(); err != nil {
			t.Fatal(err)
		}
	}
	if s := hv.Slowdown(); s != 1 {
		t.Errorf("slowdown with all domains paused = %.2f", s)
	}
	if err := doms[0].Unpause(); err != nil {
		t.Fatal(err)
	}
	if doms[0].Paused() {
		t.Error("unpause ineffective")
	}
}

func TestChargeDom0(t *testing.T) {
	hv, doms := newHV(t, 15)
	got := hv.ChargeDom0(10 * time.Millisecond)
	if got != 10*time.Millisecond {
		t.Errorf("idle charge stretched: %v", got)
	}
	if hv.Clock().Now() != 10*time.Millisecond {
		t.Errorf("clock = %v", hv.Clock().Now())
	}
	for _, d := range doms {
		d.Guest().SetLoad(1, 0, 0, 0)
	}
	stretched := hv.ChargeDom0(10 * time.Millisecond)
	if stretched <= 10*time.Millisecond {
		t.Errorf("loaded charge not stretched: %v", stretched)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	c.Advance(-time.Second) // ignored
	c.Advance(5 * time.Millisecond)
	if c.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset ineffective")
	}
}

func TestSnapshotRevert(t *testing.T) {
	_, doms := newHV(t, 2)
	d := doms[0]
	g := d.Guest()
	mod := g.Module("alpha.sys")
	if err := d.TakeSnapshot("clean"); err != nil {
		t.Fatal(err)
	}

	g.AddressSpace().Write(mod.Base+0x1000, []byte{0xCC})
	if err := d.Revert("clean"); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	d.Guest().AddressSpace().Read(mod.Base+0x1000, b[:])
	if b[0] == 0xCC {
		t.Error("revert did not restore memory")
	}
	if tags := d.Snapshots(); len(tags) != 1 || tags[0] != "clean" {
		t.Errorf("Snapshots = %v", tags)
	}
}

func TestRevertUnknownTag(t *testing.T) {
	_, doms := newHV(t, 1)
	if err := doms[0].Revert("nope"); err == nil {
		t.Error("revert to unknown tag succeeded")
	}
}

// TestGuardedReaderSurvivesDestroy pins the mid-check destruction contract:
// a reader obtained before DestroyDomain works until the teardown, then every
// read fails with ErrDomainGone classified permanent — the pipeline must
// never retry a destroyed VM.
func TestGuardedReaderSurvivesDestroy(t *testing.T) {
	hv, doms := newHV(t, 2)
	d := doms[0]
	r := d.PhysReader()
	b := make([]byte, 8)
	if err := r.ReadPhys(0x1000, b); err != nil {
		t.Fatalf("read before destroy: %v", err)
	}
	if d.Destroyed() {
		t.Fatal("live domain reports destroyed")
	}
	if err := hv.DestroyDomain(d.Name); err != nil {
		t.Fatal(err)
	}
	if !d.Destroyed() {
		t.Error("destroyed flag not set on held handle")
	}
	err := r.ReadPhys(0x1000, b)
	if !errors.Is(err, ErrDomainGone) {
		t.Fatalf("read after destroy: %v, want ErrDomainGone", err)
	}
	if faults.Classify(err) != faults.ClassPermanent {
		t.Error("ErrDomainGone not classified permanent")
	}
	// The sibling domain is unaffected.
	if err := doms[1].PhysReader().ReadPhys(0x1000, b); err != nil {
		t.Errorf("sibling read failed: %v", err)
	}
}

// TestCloneDomainsNaming verifies double-digit domain names (Dom10+).
func TestCloneDomainsNaming(t *testing.T) {
	hv := New(8)
	doms, err := hv.CloneDomains("Dom", 12, testDisk(t), 16<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if doms[9].Name != "Dom10" || doms[11].Name != "Dom12" {
		t.Errorf("names: %s, %s", doms[9].Name, doms[11].Name)
	}
}

func TestLifecycleOpsFailOnDestroyedDomain(t *testing.T) {
	hv, doms := newHV(t, 2)
	d := doms[0]
	if err := hv.DestroyDomain(d.Name); err != nil {
		t.Fatal(err)
	}
	if err := d.Pause(); !errors.Is(err, ErrDomainGone) {
		t.Errorf("pause on destroyed domain: %v", err)
	}
	if err := d.Unpause(); !errors.Is(err, ErrDomainGone) {
		t.Errorf("unpause on destroyed domain: %v", err)
	}
	if err := d.TakeSnapshot("x"); !errors.Is(err, ErrDomainGone) {
		t.Errorf("snapshot on destroyed domain: %v", err)
	}
	if err := d.Revert("x"); !errors.Is(err, ErrDomainGone) {
		t.Errorf("revert on destroyed domain: %v", err)
	}
	if d.ControlFailures() < 4 {
		t.Errorf("ControlFailures = %d, want >= 4", d.ControlFailures())
	}
}

func TestControlGateInjectsLifecycleFaults(t *testing.T) {
	hv, doms := newHV(t, 2)
	d := doms[0]
	plan := faults.NewPlan(1)
	plan.FailOps(d.Name, faults.OpSnapshot, 0, 1)
	plan.FailOps(d.Name, faults.OpPause, 0, 1)
	hv.SetControlGate(plan.ControlOp)

	if err := d.TakeSnapshot("clean"); !errors.Is(err, faults.ErrControlFault) {
		t.Errorf("gated snapshot: %v", err)
	}
	if got := d.Snapshots(); len(got) != 0 {
		t.Errorf("failed snapshot still recorded: %v", got)
	}
	if err := d.Pause(); !errors.Is(err, faults.ErrControlFault) {
		t.Errorf("gated pause: %v", err)
	}
	if d.Paused() {
		t.Error("failed pause still descheduled the domain")
	}
	if d.ControlFailures() != 2 {
		t.Errorf("ControlFailures = %d, want 2", d.ControlFailures())
	}

	// Past the windows the operations succeed and the breaker counter
	// resets; the domain-pause obligation is released below.
	if err := d.TakeSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	if err := d.Pause(); err != nil {
		t.Fatal(err)
	}
	if d.ControlFailures() != 0 {
		t.Errorf("ControlFailures after success = %d", d.ControlFailures())
	}
	if err := d.Unpause(); err != nil {
		t.Fatal(err)
	}

	hv.SetControlGate(nil)
	if err := d.TakeSnapshot("again"); err != nil {
		t.Errorf("snapshot after gate uninstall: %v", err)
	}
}

func TestControlGateChargesLatencyToSimClock(t *testing.T) {
	hv, doms := newHV(t, 2)
	d := doms[0]
	plan := faults.NewPlan(1)
	plan.SlowOps(d.Name, faults.OpSnapshot, 3*time.Millisecond)
	plan.HangOps(d.Name, faults.OpRevert, 0, 1)
	hv.SetControlGate(plan.ControlOp)

	if err := d.TakeSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	if got := hv.Clock().Now(); got != 3*time.Millisecond {
		t.Errorf("slow snapshot charged %v, want 3ms", got)
	}
	// A hung revert burns the management timeout and then fails; the
	// latency lands on the clock even though the operation failed.
	err := d.Revert("clean")
	if !errors.Is(err, faults.ErrControlHang) {
		t.Errorf("hung revert: %v", err)
	}
	if got := hv.Clock().Now(); got != 3*time.Millisecond+faults.DefaultHangLatency {
		t.Errorf("hang charged %v total", got)
	}
}

func TestControlGateBlocksCreateAndClone(t *testing.T) {
	hv := New(8)
	plan := faults.NewPlan(1)
	plan.FailOpsForever("Dom1", faults.OpClone, 0)
	hv.SetControlGate(plan.ControlOp)
	if _, err := hv.CloneDomains("Dom", 3, testDisk(t), 16<<20, 1); !errors.Is(err, faults.ErrControlPermanent) {
		t.Errorf("clone under permanent control fault: %v", err)
	}
	plan2 := faults.NewPlan(1)
	plan2.FailOps("Solo", faults.OpCreate, 0, 1)
	hv.SetControlGate(plan2.ControlOp)
	if _, err := hv.CreateDomain(guest.Config{Name: "Solo", MemBytes: 16 << 20, Disk: testDisk(t)}); !errors.Is(err, faults.ErrControlFault) {
		t.Errorf("create under control fault: %v", err)
	}
	if _, err := hv.CreateDomain(guest.Config{Name: "Solo", MemBytes: 16 << 20, Disk: testDisk(t)}); err != nil {
		t.Errorf("create past fault window: %v", err)
	}
}

func TestDestroyGatedByControlPlane(t *testing.T) {
	hv, doms := newHV(t, 2)
	d := doms[0]
	plan := faults.NewPlan(1)
	plan.FailOps(d.Name, faults.OpDestroy, 0, 1)
	hv.SetControlGate(plan.ControlOp)
	if err := hv.DestroyDomain(d.Name); !errors.Is(err, faults.ErrControlFault) {
		t.Errorf("gated destroy: %v", err)
	}
	if d.Destroyed() {
		t.Error("failed destroy still tore the domain down")
	}
	if d.ControlFailures() != 1 {
		t.Errorf("ControlFailures = %d, want 1", d.ControlFailures())
	}
	if err := hv.DestroyDomain(d.Name); err != nil {
		t.Errorf("destroy past fault window: %v", err)
	}
	if !d.Destroyed() {
		t.Error("destroy past window ineffective")
	}
}
