package lint

import (
	"fmt"
	"go/ast"
)

// clockDiscipline flags wall-clock reads (time.Now, time.Since) and
// host-clock waits (time.Sleep, time.After, timers) in internal packages.
// The simulation's notion of time is the hypervisor's Clock: introspection
// and hashing work is charged to it through Hypervisor.ChargeDom0, which is
// what makes experiment runtimes deterministic and host-independent. A
// stray time.Now() silently couples simulated results to host speed, and a
// time.Sleep() in a retry path stalls the real test run while charging
// nothing to the simulation — backoff must instead be folded into the
// nominal durations the pipeline charges to the hypervisor clock. Host-time
// measurements that are *about* the harness itself (e.g. the ablation
// driver reporting its own wall cost) carry an ignore directive explaining
// that.
type clockDiscipline struct{}

func (clockDiscipline) Name() string { return "clockdiscipline" }

func (clockDiscipline) Doc() string {
	return "internal packages must use the hypervisor's simulated clock, not time.Now/time.Since/time.Sleep"
}

// wallClockFuncs are the time-package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// hostWaitFuncs are the time-package functions that block on (or schedule
// against) the host clock. Retry backoff built on these would spend real
// seconds instead of simulated ones.
var hostWaitFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// strictScopes are packages whose whole purpose is determinism — the
// trace/metrics observability layer, where exports must be byte-identical
// across runs. There the rule runs in strict mode: any *mention* of a
// host-clock function (a bare method-value reference like `f := time.Now`
// included) is flagged, not just direct calls, since a reference smuggled
// into a struct field or callback defeats the call-site scan.
var strictScopes = map[string]bool{
	"internal/trace":   true,
	"internal/metrics": true,
}

// strictAllowFiles is the one sanctioned escape hatch in strict scopes: a
// file named hosttime.go may read the host clock, the designated site for
// an export that genuinely wants a host wall timestamp (and nothing in the
// deterministic event path may live there).
var strictAllowFiles = map[string]bool{
	"hosttime.go": true,
}

func (clockDiscipline) Check(p *Package) []Finding {
	if !inScope(p.RelDir, "internal/") || p.RelDir == "internal/lint" {
		return nil
	}
	strict := strictScopes[p.RelDir]
	var out []Finding
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		if strict && strictAllowFiles[baseName(sf.Path)] {
			continue
		}
		timeName := importName(sf.AST, "time")
		if timeName == "" {
			continue
		}
		if strict {
			// Strict mode: flag every selector mention of a banned function,
			// calls and bare references alike.
			ast.Inspect(sf.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != timeName {
					return true
				}
				fn := sel.Sel.Name
				if wallClockFuncs[fn] || hostWaitFuncs[fn] {
					out = append(out, Finding{
						Pos:  p.Fset.Position(sel.Pos()),
						Rule: "clockdiscipline",
						Msg: fmt.Sprintf("time.%s referenced in %s: this package's exports must be deterministic and host-time-free; stamp events with the simulated timeline (allowlisted escape hatch: hosttime.go)",
							fn, p.RelDir),
					})
				}
				return true
			})
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := pkgCall(call, timeName); {
			case wallClockFuncs[fn]:
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "clockdiscipline",
					Msg:  fmt.Sprintf("time.%s reads the host clock; charge work to the hypervisor's simulated clock (hypervisor.Clock) instead", fn),
				})
			case hostWaitFuncs[fn]:
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "clockdiscipline",
					Msg:  fmt.Sprintf("time.%s waits on the host clock; backoff and delays must be charged to the hypervisor's simulated clock (hypervisor.ChargeDom0) instead", fn),
				})
			}
			return true
		})
	}
	return out
}

// baseName is filepath.Base without the import (the lint package keeps its
// AST helpers dependency-light).
func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}

// inScope reports whether relDir is the prefix itself or nested under it.
func inScope(relDir, prefix string) bool {
	if len(relDir) < len(prefix) {
		return relDir+"/" == prefix
	}
	return relDir[:len(prefix)] == prefix
}
