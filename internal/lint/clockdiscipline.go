package lint

import (
	"fmt"
	"go/ast"
)

// clockDiscipline flags wall-clock reads (time.Now, time.Since) in
// internal packages. The simulation's notion of time is the hypervisor's
// Clock: introspection and hashing work is charged to it through
// Hypervisor.ChargeDom0, which is what makes experiment runtimes
// deterministic and host-independent. A stray time.Now() silently couples
// simulated results to host speed, the exact failure mode the clock
// exists to prevent. Host-time measurements that are *about* the harness
// itself (e.g. the ablation driver reporting its own wall cost) carry an
// ignore directive explaining that.
type clockDiscipline struct{}

func (clockDiscipline) Name() string { return "clockdiscipline" }

func (clockDiscipline) Doc() string {
	return "internal packages must use the hypervisor's simulated clock, not time.Now/time.Since"
}

// wallClockFuncs are the time-package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func (clockDiscipline) Check(p *Package) []Finding {
	if !inScope(p.RelDir, "internal/") || p.RelDir == "internal/lint" {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		timeName := importName(sf.AST, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := pkgCall(call, timeName); wallClockFuncs[fn] {
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "clockdiscipline",
					Msg:  fmt.Sprintf("time.%s reads the host clock; charge work to the hypervisor's simulated clock (hypervisor.Clock) instead", fn),
				})
			}
			return true
		})
	}
	return out
}

// inScope reports whether relDir is the prefix itself or nested under it.
func inScope(relDir, prefix string) bool {
	if len(relDir) < len(prefix) {
		return relDir+"/" == prefix
	}
	return relDir[:len(prefix)] == prefix
}
