package lint

import (
	"fmt"
	"go/ast"
)

// clockDiscipline flags wall-clock reads (time.Now, time.Since) and
// host-clock waits (time.Sleep, time.After, timers) in internal packages.
// The simulation's notion of time is the hypervisor's Clock: introspection
// and hashing work is charged to it through Hypervisor.ChargeDom0, which is
// what makes experiment runtimes deterministic and host-independent. A
// stray time.Now() silently couples simulated results to host speed, and a
// time.Sleep() in a retry path stalls the real test run while charging
// nothing to the simulation — backoff must instead be folded into the
// nominal durations the pipeline charges to the hypervisor clock. Host-time
// measurements that are *about* the harness itself (e.g. the ablation
// driver reporting its own wall cost) carry an ignore directive explaining
// that.
type clockDiscipline struct{}

func (clockDiscipline) Name() string { return "clockdiscipline" }

func (clockDiscipline) Doc() string {
	return "internal packages must use the hypervisor's simulated clock, not time.Now/time.Since/time.Sleep"
}

// wallClockFuncs are the time-package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// hostWaitFuncs are the time-package functions that block on (or schedule
// against) the host clock. Retry backoff built on these would spend real
// seconds instead of simulated ones.
var hostWaitFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (clockDiscipline) Check(p *Package) []Finding {
	if !inScope(p.RelDir, "internal/") || p.RelDir == "internal/lint" {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		timeName := importName(sf.AST, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := pkgCall(call, timeName); {
			case wallClockFuncs[fn]:
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "clockdiscipline",
					Msg:  fmt.Sprintf("time.%s reads the host clock; charge work to the hypervisor's simulated clock (hypervisor.Clock) instead", fn),
				})
			case hostWaitFuncs[fn]:
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "clockdiscipline",
					Msg:  fmt.Sprintf("time.%s waits on the host clock; backoff and delays must be charged to the hypervisor's simulated clock (hypervisor.ChargeDom0) instead", fn),
				})
			}
			return true
		})
	}
	return out
}

// inScope reports whether relDir is the prefix itself or nested under it.
func inScope(relDir, prefix string) bool {
	if len(relDir) < len(prefix) {
		return relDir+"/" == prefix
	}
	return relDir[:len(prefix)] == prefix
}
