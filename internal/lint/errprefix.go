package lint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// errPrefix enforces the repo's error-message convention: every
// fmt.Errorf/errors.New literal in a library package starts with the
// package name, either "pkg: ..." or "pkg <subject>: ..." (e.g.
// `guest %q: no disk`). The prefix is what makes a five-layer error chain
// (modchecker → core → vmi → mm) readable without stack traces; an
// unprefixed message is unattributable once wrapped. Messages that begin
// with a verb ("%w: detail") are wrap-style and exempt, as are commands
// and examples, whose output goes to end users.
type errPrefix struct{}

func (errPrefix) Name() string { return "errprefix" }

func (errPrefix) Doc() string {
	return `error messages in library packages must start with the "pkg: " prefix`
}

func (errPrefix) Check(p *Package) []Finding {
	if p.IsMain() || strings.HasPrefix(p.RelDir, "examples/") {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		fmtName := importName(sf.AST, "fmt")
		errorsName := importName(sf.AST, "errors")
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			isErrCtor := (fmtName != "" && pkgCall(call, fmtName) == "Errorf") ||
				(errorsName != "" && pkgCall(call, errorsName) == "New")
			if !isErrCtor {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			msg, err := strconv.Unquote(lit.Value)
			if err != nil || msg == "" {
				return true
			}
			if !prefixOK(msg, p.Name) {
				out = append(out, Finding{
					Pos:  p.Fset.Position(lit.Pos()),
					Rule: "errprefix",
					Msg:  fmt.Sprintf("error message %q does not start with %q (the package prefix convention)", truncate(msg, 40), p.Name+": "),
				})
			}
			return true
		})
	}
	return out
}

// prefixOK accepts "pkg: ...", "pkg <subject>: ..." and wrap-style
// messages that begin with a format verb.
func prefixOK(msg, pkg string) bool {
	if strings.HasPrefix(msg, "%") {
		return true
	}
	if !strings.HasPrefix(msg, pkg) {
		return false
	}
	rest := msg[len(pkg):]
	return strings.HasPrefix(rest, ": ") || strings.HasPrefix(rest, " ")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
