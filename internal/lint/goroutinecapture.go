package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// goroutineCapture enforces the project's goroutine-launch hygiene,
// applied to test files too (the test suite is where most ad-hoc
// goroutines live):
//
//  1. goroutines spawned inside a loop must receive the loop variables as
//     arguments rather than capturing them — Go 1.22 made the capture
//     safe, but the explicit-argument form (used by CheckPool's parallel
//     driver) keeps the dataflow visible and survives toolchain
//     downgrades in vendored copies;
//  2. wg.Add must be called before the go statement, not inside the
//     spawned goroutine, where it races with wg.Wait — a WaitGroup whose
//     Add happens on the new goroutine can let Wait return before the
//     work is counted.
type goroutineCapture struct{}

func (goroutineCapture) Name() string { return "goroutinecapture" }

func (goroutineCapture) Doc() string {
	return "goroutines take loop variables as arguments; wg.Add precedes the go statement"
}

func (goroutineCapture) Check(p *Package) []Finding {
	var out []Finding
	for _, sf := range p.Files {
		for _, fd := range funcsOf(sf.AST) {
			if fd.Body == nil {
				continue
			}
			waitGroups := waitGroupNames(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.RangeStmt:
					out = append(out, checkLoopCaptures(p, loopVars(st), st.Body)...)
				case *ast.ForStmt:
					out = append(out, checkLoopCaptures(p, forVars(st), st.Body)...)
				case *ast.GoStmt:
					out = append(out, checkAddInGoroutine(p, st, waitGroups)...)
				}
				return true
			})
		}
	}
	return out
}

// loopVars returns the identifiers bound per iteration by a range loop.
func loopVars(st *ast.RangeStmt) map[string]bool {
	out := make(map[string]bool)
	if st.Tok != token.DEFINE {
		return out
	}
	for _, e := range []ast.Expr{st.Key, st.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

// forVars returns the identifiers declared in a for statement's init.
func forVars(st *ast.ForStmt) map[string]bool {
	out := make(map[string]bool)
	as, ok := st.Init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return out
	}
	for _, e := range as.Lhs {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

// checkLoopCaptures flags `go func(){...}()` literals in the loop body
// that reference a loop variable without receiving it as an argument.
func checkLoopCaptures(p *Package, vars map[string]bool, body *ast.BlockStmt) []Finding {
	if len(vars) == 0 {
		return nil
	}
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		shadowed := paramNames(fl.Type)
		names := make([]string, 0, len(vars))
		for name := range captured(fl.Body, vars, shadowed) {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, Finding{
				Pos:  p.Fset.Position(gs.Pos()),
				Rule: "goroutinecapture",
				Msg:  fmt.Sprintf("goroutine captures loop variable %q; pass it as an argument (go func(%s ...) {...}(%s))", name, name, name),
			})
		}
		return true
	})
	return out
}

func paramNames(ft *ast.FuncType) map[string]bool {
	out := make(map[string]bool)
	if ft.Params == nil {
		return out
	}
	for _, f := range ft.Params.List {
		for _, id := range f.Names {
			out[id.Name] = true
		}
	}
	return out
}

// captured returns the loop variables referenced as values inside body.
func captured(body *ast.BlockStmt, vars, shadowed map[string]bool) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		// A selector's .Sel is a field name, not a variable reference.
		if sel, ok := n.(*ast.SelectorExpr); ok {
			ast.Inspect(sel.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && vars[id.Name] && !shadowed[id.Name] {
					out[id.Name] = true
				}
				return true
			})
			return false
		}
		// Redeclaration inside the goroutine shadows the loop variable.
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			for _, e := range as.Lhs {
				if id, ok := e.(*ast.Ident); ok {
					shadowed[id.Name] = true
				}
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && vars[id.Name] && !shadowed[id.Name] {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// waitGroupNames collects expressions used as sync.WaitGroup receivers in
// the function: anything that receives a .Wait() or .Done() call.
func waitGroupNames(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Wait" || sel.Sel.Name == "Done" {
			if s := exprString(sel.X); s != "" {
				out[s] = true
			}
		}
		return true
	})
	return out
}

// checkAddInGoroutine flags wg.Add calls made inside the spawned goroutine
// for WaitGroups used in the enclosing function.
func checkAddInGoroutine(p *Package, gs *ast.GoStmt, waitGroups map[string]bool) []Finding {
	fl, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var out []Finding
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if s := exprString(sel.X); s != "" && waitGroups[s] {
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "goroutinecapture",
				Msg:  fmt.Sprintf("%s.Add inside the spawned goroutine races with %s.Wait; call Add before the go statement", s, s),
			})
		}
		return true
	})
	return out
}
