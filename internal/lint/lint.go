// Package lint is modlint's engine: a stdlib-only static-analysis
// framework that loads every package in the module and runs a set of
// project-specific analyzers over their syntax trees.
//
// The rules encode invariants of the ModChecker simulation that the Go
// compiler cannot check — the simulated-clock discipline, the "mutex
// guards the fields below it" convention, the no-aliasing rule for guest
// memory, the error-prefix convention, and goroutine hygiene. Each rule
// is documented in docs/static-analysis.md.
//
// Findings can be suppressed with a trailing or preceding comment of the
// form
//
//	//modlint:ignore <rule> <reason>
//
// which silences <rule> (or every rule, with "all") on that line. The
// reason is mandatory: an unexplained suppression is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the driver's file:line: [rule] message
// format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// SourceFile is one parsed .go file.
type SourceFile struct {
	Path   string
	AST    *ast.File
	IsTest bool
}

// Package is one directory's worth of parsed Go source. Files of the
// in-package test variant (package foo, file foo_test.go) and the external
// test package (package foo_test) are carried alongside the primary files,
// marked IsTest; analyzers decide whether test code is in scope.
type Package struct {
	// Name is the primary (non-test) package name.
	Name string
	// Dir is the absolute directory; RelDir is the module-root-relative
	// path ("" for the root package, "internal/mm", "cmd/modlint", ...),
	// always slash-separated.
	Dir    string
	RelDir string
	Fset   *token.FileSet
	Files  []*SourceFile
}

// IsMain reports whether the package is a command.
func (p *Package) IsMain() bool { return p.Name == "main" }

// Analyzer is one modlint rule.
type Analyzer interface {
	// Name is the rule identifier used in reports and ignore directives.
	Name() string
	// Doc is a one-line description for -help output.
	Doc() string
	// Check inspects one package and returns raw findings; suppression is
	// applied by Run.
	Check(p *Package) []Finding
}

// ModuleAnalyzer is a whole-program rule: it sees every package of the
// module at once, so it can reason across call boundaries (the moddet
// determinism auditor). Module analyzers receive the run's suppression set
// up front — interprocedural passes need to know a site is suppressed
// *before* propagating facts from it, not merely filter the final report.
type ModuleAnalyzer interface {
	// Name identifies the analyzer in -list output.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Rules lists every rule identifier the analyzer can report (one module
	// analyzer may own several rules); ignore directives naming any of them
	// are valid.
	Rules() []string
	// CheckModule inspects the whole package set and returns raw findings;
	// RunAll applies suppression to whatever is returned, but the analyzer
	// should consult sup for sites whose facts must not propagate.
	CheckModule(pkgs []*Package, sup SuppressionSet) []Finding
}

// ModuleAnalyzerErrs is the optional error-aware face of a ModuleAnalyzer:
// CheckModuleErrs returns findings together with the substrate's soft
// load/type-check errors, so a broken package in one module cannot
// silently shrink the findings of another. RunAllErrs uses it when the
// analyzer implements it and falls back to CheckModule otherwise.
type ModuleAnalyzerErrs interface {
	ModuleAnalyzer
	CheckModuleErrs(pkgs []*Package, sup SuppressionSet) ([]Finding, []error)
}

// Analyzers returns the full rule set in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		clockDiscipline{},
		lockDiscipline{},
		sliceEscape{},
		errPrefix{},
		goroutineCapture{},
	}
}

// LoadPackage parses every .go file directly inside dir. relDir is the
// module-root-relative path recorded on the package. Directories with no
// Go files return (nil, nil).
func LoadPackage(fset *token.FileSet, dir, relDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	p := &Package{Dir: dir, RelDir: filepath.ToSlash(relDir), Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s: %w", path, err)
		}
		if !buildTagOK(src) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		sf := &SourceFile{Path: path, AST: f, IsTest: strings.HasSuffix(e.Name(), "_test.go")}
		p.Files = append(p.Files, sf)
		if !sf.IsTest && p.Name == "" {
			p.Name = f.Name.Name
		}
	}
	if len(p.Files) == 0 {
		return nil, nil
	}
	if p.Name == "" { // test-only directory
		p.Name = strings.TrimSuffix(p.Files[0].AST.Name.Name, "_test")
	}
	return p, nil
}

// buildTagOK reports whether the file's build constraint (if any) is
// satisfied by the default build: host OS/arch, the gc toolchain, release
// tags. Files gated behind opt-in tags like modpoison are compiled out of
// the default build; analyzing them next to their !tag twins would see
// every symbol declared twice.
func buildTagOK(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(defaultBuildTag)
			}
			continue
		}
		break // reached the package clause without a constraint line
	}
	return true
}

func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, runtime.Compiler, "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1")
}

// LoadModule loads every package under root (the directory holding go.mod),
// skipping testdata, vendor and hidden directories.
func LoadModule(fset *token.FileSet, root string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		p, err := LoadPackage(fset, path, rel)
		if err != nil {
			return err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// Run executes the per-package analyzers over the packages, drops
// suppressed findings, and returns the rest sorted by position. Ignore
// directives that lack a reason are reported as findings themselves.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return RunAll(pkgs, analyzers, nil)
}

// RunAll executes the per-package analyzers and then the whole-program
// analyzers over the package set, applies //modlint:ignore suppression to
// everything, and returns the surviving findings sorted by position.
// Substrate load errors are dropped; drivers that must distinguish "clean"
// from "could not analyze" use RunAllErrs.
func RunAll(pkgs []*Package, analyzers []Analyzer, modAnalyzers []ModuleAnalyzer) []Finding {
	out, _ := RunAllErrs(pkgs, analyzers, modAnalyzers)
	return out
}

// RunAllErrs is RunAll plus the substrate errors the module analyzers hit
// on the way: soft type-check failures that made a package drop out of
// whole-program analysis. Findings and errors are distinct results — a
// broken package in one corner of the module reduces coverage there but
// must not mask findings elsewhere, and a non-empty error list means the
// finding list is a lower bound, not a verdict. Errors are deduplicated
// by message (several analyzers type-check the same substrate) and sorted.
func RunAllErrs(pkgs []*Package, analyzers []Analyzer, modAnalyzers []ModuleAnalyzer) ([]Finding, []error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	for _, m := range modAnalyzers {
		for _, r := range m.Rules() {
			known[r] = true
		}
	}
	sup, out := CollectSuppressions(pkgs, known)
	for _, p := range pkgs {
		for _, a := range analyzers {
			for _, f := range a.Check(p) {
				if !sup.Suppressed(f.Pos.Filename, f.Pos.Line, f.Rule) {
					out = append(out, f)
				}
			}
		}
	}
	seenErr := make(map[string]bool)
	var errs []error
	for _, m := range modAnalyzers {
		var fs []Finding
		if me, ok := m.(ModuleAnalyzerErrs); ok {
			var es []error
			fs, es = me.CheckModuleErrs(pkgs, sup)
			for _, e := range es {
				if e != nil && !seenErr[e.Error()] {
					seenErr[e.Error()] = true
					errs = append(errs, e)
				}
			}
		} else {
			fs = m.CheckModule(pkgs, sup)
		}
		for _, f := range fs {
			if !sup.Suppressed(f.Pos.Filename, f.Pos.Line, f.Rule) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	// The merged stream is byte-stable: ordered by (file, line, column,
	// rule, message) and deduplicated, so per-package and whole-module
	// analyzers reporting the same defect at the same site collapse to one
	// diagnostic and reruns produce identical bytes.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f.Pos == out[i-1].Pos && f.Rule == out[i-1].Rule && f.Msg == out[i-1].Msg {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup, errs
}

// ignoreKey identifies one suppressed (file, line, rule) site; rule "all"
// matches every rule.
type ignoreKey struct {
	file string
	line int
	rule string
}

// SuppressionSet is the set of (file, line, rule) sites silenced by
// //modlint:ignore directives. Module analyzers consult it to avoid
// propagating facts from suppressed sites.
type SuppressionSet struct {
	m map[ignoreKey]bool
}

// Suppressed reports whether the given rule is silenced at file:line.
func (s SuppressionSet) Suppressed(file string, line int, rule string) bool {
	return s.m[ignoreKey{file, line, rule}] || s.m[ignoreKey{file, line, "all"}]
}

const ignorePrefix = "modlint:ignore"

// CollectSuppressions gathers every //modlint:ignore directive across the
// packages into one set. A directive on line L suppresses the named rule on
// L and L+1, so it works both as a trailing comment and on its own line
// above the flagged code. Malformed or unknown-rule directives suppress
// nothing and come back as findings.
func CollectSuppressions(pkgs []*Package, known map[string]bool) (SuppressionSet, []Finding) {
	set := SuppressionSet{m: make(map[ignoreKey]bool)}
	var bad []Finding
	for _, p := range pkgs {
		b := collectPackage(p, known, set)
		bad = append(bad, b...)
	}
	return set, bad
}

// collectPackage scans one package's comments into set.
func collectPackage(p *Package, known map[string]bool, set SuppressionSet) []Finding {
	var bad []Finding
	for _, sf := range p.Files {
		for _, cg := range sf.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: "ignore-directive",
						Msg:  "malformed ignore directive: want //modlint:ignore <rule> <reason>",
					})
					continue
				}
				rule := fields[0]
				if rule != "all" && !known[rule] {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: "ignore-directive",
						Msg:  fmt.Sprintf("ignore directive names unknown rule %q", rule),
					})
					continue
				}
				set.m[ignoreKey{pos.Filename, pos.Line, rule}] = true
				set.m[ignoreKey{pos.Filename, pos.Line + 1, rule}] = true
			}
		}
	}
	return bad
}

// --- shared AST helpers -------------------------------------------------

// importName returns the identifier a file refers to the given import path
// by ("" when not imported; the base name when not renamed).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return p[strings.LastIndex(p, "/")+1:]
	}
	return ""
}

// pkgCall matches a call of the form <pkgIdent>.<fn>(...) and returns fn
// ("" when the call does not match).
func pkgCall(call *ast.CallExpr, pkgIdent string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgIdent {
		return ""
	}
	return sel.Sel.Name
}

// exprString renders a restricted expression (idents, selectors, parens,
// unary &/*) to a canonical string for structural comparison. Returns ""
// for expressions outside that subset.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := exprString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprString(e.X)
		}
	}
	return ""
}

// isSyncSelector reports whether t is the type sync.<name> as written in
// source (the sync package imported under its default name or an alias).
func isSyncSelector(t ast.Expr, syncName, typeName string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == syncName && sel.Sel.Name == typeName
}

// funcsOf yields every function and method declaration in the file.
func funcsOf(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}

// recvTypeName returns the receiver's named type ("" for functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// recvName returns the receiver variable name ("" when anonymous).
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
