package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses one testdata package, assigning it the RelDir the
// scope rules should see.
func loadFixture(t *testing.T, dir, relDir string) *Package {
	t.Helper()
	p, err := LoadPackage(token.NewFileSet(), filepath.Join("testdata", dir), relDir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if p == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	return p
}

// wantRE matches expectation comments in fixtures:
//
//	// want <rule> "message substring"
//	// want <rule> 'message substring'
//
// Several wants may share a line; the payload is optional.
var wantRE = regexp.MustCompile(`want ([a-z-]+)(?:\s+(?:"([^"]*)"|'([^']*)'))?`)

type expectation struct {
	rule   string
	substr string
	met    bool
}

// parseWants scans the fixture sources for expectation comments, keyed by
// file:line.
func parseWants(t *testing.T, p *Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, sf := range p.Files {
		src, err := os.ReadFile(sf.Path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if !strings.Contains(line, "// want ") {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", sf.Path, i+1)
				out[key] = append(out[key], &expectation{rule: m[1], substr: m[2] + m[3]})
			}
		}
	}
	return out
}

// TestAnalyzerFixtures runs the full rule set over each fixture package
// and matches findings against the // want comments: every want must be
// hit, and no finding may be unexplained. Known-good files carry no wants,
// so any finding in them fails the test.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name   string
		dir    string
		relDir string
	}{
		{"clockdiscipline", "clockdiscipline", "internal/clockfix"},
		{"clockdiscipline", "clockstrict", "internal/trace"},
		{"lockdiscipline", "lockdiscipline", "internal/lockfix"},
		{"sliceescape", "sliceescape", "internal/mm"},
		{"errprefix", "errprefix", "internal/errfix"},
		{"goroutinecapture", "goroutinecapture", "internal/gofix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := loadFixture(t, tc.dir, tc.relDir)
			wants := parseWants(t, p)
			findings := Run([]*Package{p}, Analyzers())

			sawRule := false
			for _, f := range findings {
				if f.Rule == tc.name {
					sawRule = true
				}
				key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
				matched := false
				for _, w := range wants[key] {
					if !w.met && w.rule == f.Rule && strings.Contains(f.Msg, w.substr) {
						w.met = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for key, ws := range wants {
				for _, w := range ws {
					if !w.met {
						t.Errorf("%s: expected [%s] %q, not reported", key, w.rule, w.substr)
					}
				}
			}
			if !sawRule {
				t.Errorf("fixture produced no %s finding; the known-bad corpus must demonstrate its rule", tc.name)
			}
		})
	}
}

// TestIgnoreDirectives exercises the //modlint:ignore escape hatch: valid
// directives (trailing or on the preceding line) suppress exactly their
// rule; malformed or unknown-rule directives suppress nothing and are
// findings themselves.
func TestIgnoreDirectives(t *testing.T) {
	p := loadFixture(t, "ignore", "internal/ignorefix")
	findings := Run([]*Package{p}, Analyzers())

	type key struct {
		file string
		line int
		rule string
	}
	got := make(map[key]bool)
	for _, f := range findings {
		got[key{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule}] = true
	}
	want := []key{
		{"ignored.go", 18, "clockdiscipline"},    // no directive
		{"ignored.go", 23, "clockdiscipline"},    // directive names the wrong rule
		{"malformed.go", 8, "ignore-directive"},  // reason missing
		{"malformed.go", 9, "clockdiscipline"},   // malformed directive suppresses nothing
		{"malformed.go", 13, "ignore-directive"}, // unknown rule
		{"malformed.go", 14, "clockdiscipline"},
	}
	for _, k := range want {
		if !got[k] {
			t.Errorf("missing expected finding %s:%d [%s]", k.file, k.line, k.rule)
		}
		delete(got, k)
	}
	for k := range got {
		t.Errorf("unexpected finding %s:%d [%s] (should be suppressed?)", k.file, k.line, k.rule)
	}
}

// TestKnownBadCorpusFails is the driver-level guarantee: running the suite
// over the known-bad corpus yields a non-empty finding list (the condition
// under which cmd/modlint exits non-zero).
func TestKnownBadCorpusFails(t *testing.T) {
	dirs := []struct{ dir, relDir string }{
		{"clockdiscipline", "internal/clockfix"},
		{"clockstrict", "internal/trace"},
		{"lockdiscipline", "internal/lockfix"},
		{"sliceescape", "internal/mm"},
		{"errprefix", "internal/errfix"},
		{"goroutinecapture", "internal/gofix"},
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkgs = append(pkgs, loadFixture(t, d.dir, d.relDir))
	}
	findings := Run(pkgs, Analyzers())
	perRule := make(map[string]int)
	for _, f := range findings {
		perRule[f.Rule]++
	}
	for _, a := range Analyzers() {
		if perRule[a.Name()] == 0 {
			t.Errorf("corpus has no %s finding", a.Name())
		}
	}
	if len(findings) == 0 {
		t.Fatal("known-bad corpus produced no findings; modlint would exit 0")
	}
}

// TestFindingFormat pins the driver's output contract.
func TestFindingFormat(t *testing.T) {
	f := Finding{
		Pos:  token.Position{Filename: "x/y.go", Line: 7},
		Rule: "errprefix",
		Msg:  "boom",
	}
	if got, want := f.String(), "x/y.go:7: [errprefix] boom"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestRepoIsClean runs the full suite over the real module: the tree must
// stay lint-clean so the CI gate stays green. A legitimate exception needs
// a //modlint:ignore directive with a reason, not a skipped test.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	pkgs, err := LoadModule(token.NewFileSet(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, f := range RunAll(pkgs, Analyzers(), []ModuleAnalyzer{downstreamRules{}}) {
		t.Errorf("%s", f)
	}
}

// emitStub is a ModuleAnalyzer that reports a fixed finding list, for
// exercising RunAll's merge behavior without real packages.
type emitStub struct{ fs []Finding }

func (e emitStub) Name() string    { return "emit" }
func (e emitStub) Doc() string     { return "test emitter" }
func (e emitStub) Rules() []string { return []string{"emit"} }
func (e emitStub) CheckModule([]*Package, SuppressionSet) []Finding {
	return e.fs
}

// TestRunAllOrdersAndDedupes pins the merged stream's contract: findings are
// sorted by (file, line, column, rule, message) — column before rule, so
// diagnostics read in source order even when analyzers disagree
// alphabetically — and byte-identical findings collapse to one.
func TestRunAllOrdersAndDedupes(t *testing.T) {
	at := func(file string, line, col int, rule, msg string) Finding {
		return Finding{Pos: token.Position{Filename: file, Line: line, Column: col}, Rule: rule, Msg: msg}
	}
	in := []Finding{
		at("b.go", 1, 1, "aaa", "second file sorts last"),
		at("a.go", 9, 4, "aaa", "later column loses to earlier column despite rule order"),
		at("a.go", 9, 2, "zzz", "earlier column wins"),
		at("a.go", 9, 2, "emit", "duplicated"),
		at("a.go", 9, 2, "emit", "duplicated"),
		at("a.go", 3, 7, "emit", "earlier line"),
	}
	want := []Finding{
		at("a.go", 3, 7, "emit", "earlier line"),
		at("a.go", 9, 2, "emit", "duplicated"),
		at("a.go", 9, 2, "zzz", "earlier column wins"),
		at("a.go", 9, 4, "aaa", "later column loses to earlier column despite rule order"),
		at("b.go", 1, 1, "aaa", "second file sorts last"),
	}
	got := RunAll(nil, nil, []ModuleAnalyzer{emitStub{fs: in}})
	if len(got) != len(want) {
		t.Fatalf("RunAll returned %d findings, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// downstreamRules registers the rule names of the module analyzers the
// cmd/modlint driver adds (moddet, modsafe) without importing them — they
// depend on this package, so the real constructors cannot ride along here.
// Registering the names keeps ignore directives targeting those rules from
// tripping the ignore-directive hygiene check under this reduced run.
type downstreamRules struct{}

func (downstreamRules) Name() string { return "downstream" }
func (downstreamRules) Doc() string {
	return "rule names owned by the moddet and modsafe module analyzers"
}
func (downstreamRules) Rules() []string {
	return []string{"moddet", "maporder", "lockflow", "lockorder", "releasetrack", "chargeflow", "modsafe"}
}
func (downstreamRules) CheckModule([]*Package, SuppressionSet) []Finding { return nil }
