package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// lockDiscipline enforces the project's mutex conventions, which exist
// because the simulation is exercised concurrently (CheckPool's parallel
// fetch goroutines, the monitor's collector, the race-enabled test run):
//
//  1. no lock-holding type is copied by value (value receivers, value
//     parameters) — a copied mutex silently stops excluding anybody;
//  2. every Lock()/RLock() is released on every return path of the same
//     function, preferably via defer;
//  3. a sync.Mutex/RWMutex struct field guards exactly the fields declared
//     after it ("mu protects the fields below"), and every exported method
//     that touches a guarded field must acquire the mutex. State that is
//     immutable after construction or independently synchronized belongs
//     above the mutex field.
type lockDiscipline struct{}

func (lockDiscipline) Name() string { return "lockdiscipline" }

func (lockDiscipline) Doc() string {
	return "no mutex copies; Lock paired with Unlock on all paths; exported methods lock before touching guarded fields"
}

// lockedType describes one struct with a sync.Mutex/RWMutex field.
type lockedType struct {
	name     string
	mutex    string // field name of the mutex
	rw       bool
	guarded  map[string]bool // fields declared after the mutex
	embedded bool            // mutex is embedded rather than named
}

func (lockDiscipline) Check(p *Package) []Finding {
	types := lockedTypes(p)
	var out []Finding
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		for _, fd := range funcsOf(sf.AST) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkValueCopies(p, fd, types)...)
			for _, scope := range funcScopes(fd) {
				out = append(out, checkLockPairing(p, scope)...)
			}
			out = append(out, checkGuardedAccess(p, fd, types)...)
		}
	}
	return out
}

// lockedTypes collects the package's lock-holding struct types.
func lockedTypes(p *Package) map[string]*lockedType {
	out := make(map[string]*lockedType)
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		syncName := importName(sf.AST, "sync")
		if syncName == "" {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			lt := &lockedType{name: ts.Name.Name, guarded: make(map[string]bool)}
			seenMutex := false
			for _, field := range st.Fields.List {
				isMu := isSyncSelector(field.Type, syncName, "Mutex")
				isRW := isSyncSelector(field.Type, syncName, "RWMutex")
				if !seenMutex && (isMu || isRW) {
					seenMutex = true
					lt.rw = isRW
					if len(field.Names) > 0 {
						lt.mutex = field.Names[0].Name
					} else {
						lt.embedded = true
					}
					continue
				}
				if seenMutex {
					for _, name := range field.Names {
						lt.guarded[name.Name] = true
					}
				}
			}
			if seenMutex {
				out[lt.name] = lt
			}
			return true
		})
	}
	return out
}

// checkValueCopies flags value receivers and value parameters of
// lock-holding types.
func checkValueCopies(p *Package, fd *ast.FuncDecl, types map[string]*lockedType) []Finding {
	var out []Finding
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if id, ok := fd.Recv.List[0].Type.(*ast.Ident); ok {
			if lt, hit := types[id.Name]; hit {
				out = append(out, Finding{
					Pos:  p.Fset.Position(fd.Recv.List[0].Type.Pos()),
					Rule: "lockdiscipline",
					Msg:  fmt.Sprintf("method %s has a value receiver of lock-holding type %s; the %s is copied — use *%s", fd.Name.Name, lt.name, mutexKind(lt), lt.name),
				})
			}
		}
	}
	for _, field := range fd.Type.Params.List {
		if id, ok := field.Type.(*ast.Ident); ok {
			if lt, hit := types[id.Name]; hit {
				out = append(out, Finding{
					Pos:  p.Fset.Position(field.Type.Pos()),
					Rule: "lockdiscipline",
					Msg:  fmt.Sprintf("parameter of lock-holding type %s passed by value; the %s is copied — use *%s", lt.name, mutexKind(lt), lt.name),
				})
			}
		}
	}
	return out
}

func mutexKind(lt *lockedType) string {
	if lt.rw {
		return "sync.RWMutex"
	}
	return "sync.Mutex"
}

// funcScope is one function body to analyze for lock pairing: a FuncDecl's
// body or a FuncLit's body, with nested function literals excluded (each is
// its own scope — a lock taken in a goroutine must be released there).
type funcScope struct {
	body *ast.BlockStmt
}

func funcScopes(fd *ast.FuncDecl) []funcScope {
	scopes := []funcScope{{body: fd.Body}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, funcScope{body: fl.Body})
		}
		return true
	})
	return scopes
}

// inspectScope walks n in source order, skipping nested function literals.
func inspectScope(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}

// lockCall matches E.<method>() and returns (exprString(E), method).
func lockCall(n ast.Node) (string, string) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return exprString(sel.X), sel.Sel.Name
	}
	return "", ""
}

// checkLockPairing verifies that each Lock/RLock in the scope is released
// on every return path: either a matching defer Unlock exists, or the
// statements that follow reach an Unlock before any return.
func checkLockPairing(p *Package, scope funcScope) []Finding {
	unlockOf := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

	// Deferred unlocks anywhere in the scope satisfy all matching locks.
	deferred := make(map[string]bool) // "recv\x00method"
	inspectScope(scope.body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if recv, method := lockCall(ds.Call); method == "Unlock" || method == "RUnlock" {
			deferred[recv+"\x00"+method] = true
		}
		return true
	})

	var out []Finding
	var walkBlock func(stmts []ast.Stmt)
	walkBlock = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			// Recurse into nested blocks to find locks taken there.
			switch st := s.(type) {
			case *ast.BlockStmt:
				walkBlock(st.List)
			case *ast.IfStmt:
				walkBlock(st.Body.List)
				if el, ok := st.Else.(*ast.BlockStmt); ok {
					walkBlock(el.List)
				}
			case *ast.ForStmt:
				walkBlock(st.Body.List)
			case *ast.RangeStmt:
				walkBlock(st.Body.List)
			case *ast.SwitchStmt:
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body)
					}
				}
			case *ast.ExprStmt:
				recv, method := lockCall(st.X)
				want, isLock := unlockOf[method]
				if !isLock || recv == "" {
					continue
				}
				if deferred[recv+"\x00"+want] {
					continue
				}
				out = append(out, checkInlineRelease(p, st, recv, method, want, stmts[i+1:])...)
			}
		}
	}
	walkBlock(scope.body.List)
	return out
}

// checkInlineRelease scans the statements after a non-deferred Lock for the
// matching Unlock, flagging return paths that exit with the lock held.
func checkInlineRelease(p *Package, lockStmt *ast.ExprStmt, recv, method, want string, rest []ast.Stmt) []Finding {
	pos := p.Fset.Position(lockStmt.Pos())
	for _, s := range rest {
		released, escaped := false, false
		inspectScope(s, func(n ast.Node) bool {
			if released || escaped {
				return false
			}
			if r, m := lockCall(n); m == want && r == recv {
				released = true
				return false
			}
			if _, ok := n.(*ast.ReturnStmt); ok {
				escaped = true
				return false
			}
			return true
		})
		if released {
			return nil
		}
		if escaped {
			return []Finding{{
				Pos:  pos,
				Rule: "lockdiscipline",
				Msg:  fmt.Sprintf("%s.%s() can reach a return before %s.%s(); use defer %s.%s()", recv, method, recv, want, recv, want),
			}}
		}
	}
	return []Finding{{
		Pos:  pos,
		Rule: "lockdiscipline",
		Msg:  fmt.Sprintf("%s.%s() has no matching %s.%s() in this function", recv, method, recv, want),
	}}
}

// checkGuardedAccess flags exported methods on lock-holding types that read
// or write guarded fields without acquiring the mutex.
func checkGuardedAccess(p *Package, fd *ast.FuncDecl, types map[string]*lockedType) []Finding {
	lt := types[recvTypeName(fd)]
	if lt == nil || lt.embedded || !ast.IsExported(fd.Name.Name) {
		return nil
	}
	recv := recvName(fd)
	if recv == "" || recv == "_" {
		return nil
	}

	// Does the method acquire the mutex (directly or via defer)?
	locked := false
	inspectScope(fd.Body, func(n ast.Node) bool {
		if r, m := lockCall(n); (m == "Lock" || m == "RLock") && r == recv+"."+lt.mutex {
			locked = true
			return false
		}
		return true
	})
	if locked {
		return nil
	}

	// Collect guarded fields the method touches.
	touched := make(map[string]bool)
	inspectScope(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && lt.guarded[sel.Sel.Name] {
			touched[sel.Sel.Name] = true
		}
		return true
	})
	if len(touched) == 0 {
		return nil
	}
	var names []string
	for f := range touched {
		names = append(names, f)
	}
	sort.Strings(names)
	return []Finding{{
		Pos:  p.Fset.Position(fd.Pos()),
		Rule: "lockdiscipline",
		Msg: fmt.Sprintf("exported method %s.%s touches field(s) %s guarded by %s without locking; fields declared after the mutex are guarded by it — lock, or move unguarded state above the mutex field",
			lt.name, fd.Name.Name, strings.Join(names, ", "), lt.mutex),
	}}
}
