package moddet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// sinkDirective is the annotation that declares a determinism-critical
// function: anything transitively reachable from its body must be free of
// nondeterminism roots. It goes in the function's doc comment:
//
//	//moddet:sink trace export must stay byte-identical across runs
//	func (t *Tracer) WriteChromeJSON(w io.Writer) error { ... }
const sinkDirective = "moddet:sink"

// sink is one annotated determinism-critical function.
type sink struct {
	obj    *types.Func
	decl   *ast.FuncDecl
	pkg    *lint.Package
	reason string
}

// collectSinks scans every function doc comment for //moddet:sink
// directives. Directives attached to declarations the type-checker could
// not resolve are reported rather than silently dropped.
func collectSinks(m *modgraph.Module) ([]*sink, []lint.Finding) {
	var sinks []*sink
	var bad []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				reason, found := sinkReason(fd.Doc)
				if !found {
					continue
				}
				obj, ok := m.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					bad = append(bad, lint.Finding{
						Pos:  p.Fset.Position(fd.Pos()),
						Rule: "moddet",
						Msg:  "//moddet:sink directive on a declaration the type-checker could not resolve",
					})
					continue
				}
				if fd.Body == nil {
					bad = append(bad, lint.Finding{
						Pos:  p.Fset.Position(fd.Pos()),
						Rule: "moddet",
						Msg:  "//moddet:sink directive on a bodyless declaration has nothing to audit",
					})
					continue
				}
				sinks = append(sinks, &sink{obj: obj, decl: fd, pkg: p, reason: reason})
			}
		}
	}
	return sinks, bad
}

// sinkReason extracts the trailing free-text reason from a doc comment's
// //moddet:sink line.
func sinkReason(doc *ast.CommentGroup) (string, bool) {
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, sinkDirective); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// guardRE matches the field annotation "// guarded by <mutexField>" in a
// struct field's trailing or doc comment.
var guardRE = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)\b`)

// guardedField is one struct field annotated "// guarded by <mu>": every
// access anywhere in the module must happen with <mu> held, either locally
// or in every caller (checked interprocedurally by lockflow).
type guardedField struct {
	structName string // the declaring struct type's name
	pkg        *lint.Package
	field      *types.Var // the guarded field's object
	mutexName  string
	mutex      *types.Var // the guarding mutex field's object
}

// collectGuards scans struct declarations for guarded-by annotations and
// resolves both sides to their field objects. An annotation naming a field
// that does not exist in the same struct is itself a finding.
func collectGuards(m *modgraph.Module) ([]*guardedField, []lint.Finding) {
	var guards []*guardedField
	var bad []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			ast.Inspect(sf.AST, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				// Index the struct's named fields for mutex resolution.
				fieldVar := make(map[string]*types.Var)
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if v, ok := m.Info.Defs[name].(*types.Var); ok {
							fieldVar[name.Name] = v
						}
					}
				}
				for _, f := range st.Fields.List {
					mu, ok := guardAnnotation(f)
					if !ok {
						continue
					}
					mutex := fieldVar[mu]
					if mutex == nil {
						bad = append(bad, lint.Finding{
							Pos:  p.Fset.Position(f.Pos()),
							Rule: "lockflow",
							Msg:  "// guarded by " + mu + " names no field of struct " + ts.Name.Name,
						})
						continue
					}
					for _, name := range f.Names {
						v, ok := m.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						guards = append(guards, &guardedField{
							structName: ts.Name.Name,
							pkg:        p,
							field:      v,
							mutexName:  mu,
							mutex:      mutex,
						})
					}
				}
				return true
			})
		}
	}
	return guards, bad
}

// guardAnnotation extracts the mutex name from a field's comments.
func guardAnnotation(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardRE.FindStringSubmatch(c.Text); m != nil {
				return m[1], true
			}
		}
	}
	return "", false
}
