package moddet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint"
)

// funcNode is one module function (or method) in the conservative
// whole-program call graph. Function literals are not separate nodes: their
// bodies are attributed to the enclosing declaration, which soundly covers
// the dominant patterns (closures handed to worker pools, deferred funcs,
// goroutine bodies) without tracking function values through the heap.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *lint.Package
	// callees are the functions this node may invoke, in source order.
	callees []edge
	// roots are the nondeterminism sources this node touches directly.
	roots []root
}

// edge is one call-graph edge at one call site.
type edge struct {
	callee *types.Func
	pos    token.Pos
}

// root is one direct source of nondeterminism inside a function body.
type root struct {
	pos  token.Pos
	desc string // e.g. `host clock read time.Now()`
}

// graph is the whole-program call graph plus the reverse adjacency the
// lock-flow pass walks upward.
type graph struct {
	mod *module
	// nodes in deterministic construction order (package, file, decl).
	funcs []*funcNode
	node  map[*types.Func]*funcNode
	// callers is the reverse adjacency: for each module function, the nodes
	// that may call it.
	callers map[*types.Func][]*funcNode
}

// hostTimeFuncs are the time-package functions whose results (or firing
// order) depend on the host clock.
var hostTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package process-environment reads.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// deterministicRandFuncs are the math/rand constructors that are fine when
// fed an explicit seed; every *other* package-level math/rand function uses
// the shared global source and is impure.
var deterministicRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// hostTimeAllowFile is the one sanctioned host-clock location (mirrors
// clockdiscipline's strict-mode escape hatch).
const hostTimeAllowFile = "hosttime.go"

// buildGraph walks every function declaration in the module, resolving call
// sites through go/types and recording direct nondeterminism roots.
func buildGraph(m *module) *graph {
	g := &graph{
		mod:     m,
		node:    make(map[*types.Func]*funcNode),
		callers: make(map[*types.Func][]*funcNode),
	}
	// Pass 1: declare nodes, so edge resolution can distinguish module
	// functions from externals.
	for _, p := range m.pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := m.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type-checking failed for this decl
				}
				n := &funcNode{obj: obj, decl: fd, pkg: p}
				g.funcs = append(g.funcs, n)
				g.node[obj] = n
			}
		}
	}

	impls := newImplIndex(m)

	// Pass 2: edges and roots.
	for _, n := range g.funcs {
		g.scanBody(n, impls)
	}

	// Reverse adjacency.
	for _, n := range g.funcs {
		seen := make(map[*types.Func]bool)
		for _, e := range n.callees {
			if seen[e.callee] {
				continue
			}
			seen[e.callee] = true
			if _, ok := g.node[e.callee]; ok {
				g.callers[e.callee] = append(g.callers[e.callee], n)
			}
		}
	}
	return g
}

// scanBody collects n's call edges and nondeterminism roots. Function
// literal bodies are scanned inline (attributed to n).
func (g *graph) scanBody(n *funcNode, impls *implIndex) {
	m := g.mod
	allowHostTime := baseName(g.mod.position(n.decl.Pos()).Filename) == hostTimeAllowFile
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			fn := m.calleeOf(node)
			if fn == nil {
				return true
			}
			if r, ok := classifyRoot(fn, allowHostTime); ok {
				n.roots = append(n.roots, root{pos: node.Pos(), desc: r})
				return true
			}
			if isInterfaceMethod(fn) {
				// Dynamic dispatch: add one edge per module implementation,
				// but only for module-declared interfaces — expanding stdlib
				// interfaces (io.Writer et al.) would wire every sink to
				// every module Write method and drown the report.
				if fn.Pkg() != nil && g.isModulePkg(fn.Pkg()) {
					for _, impl := range impls.implementations(fn) {
						n.callees = append(n.callees, edge{callee: impl, pos: node.Pos()})
					}
				}
				return true
			}
			n.callees = append(n.callees, edge{callee: fn, pos: node.Pos()})
		case *ast.SelectStmt:
			if commCases(node) >= 2 {
				n.roots = append(n.roots, root{
					pos:  node.Pos(),
					desc: "select over multiple ready channels (goroutine completion order)",
				})
			}
		}
		return true
	})
}

// isModulePkg reports whether tp is one of the module's own packages.
func (g *graph) isModulePkg(tp *types.Package) bool {
	if g.mod.path == "" {
		return false
	}
	return tp.Path() == g.mod.path ||
		len(tp.Path()) > len(g.mod.path) && tp.Path()[:len(g.mod.path)+1] == g.mod.path+"/"
}

// classifyRoot reports whether calling fn is itself a nondeterminism root.
func classifyRoot(fn *types.Func, allowHostTime bool) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // methods (e.g. (*rand.Rand).Intn on a seeded source) are fine
	}
	switch pkg.Path() {
	case "time":
		if hostTimeFuncs[fn.Name()] && !allowHostTime {
			return fmt.Sprintf("host clock via time.%s", fn.Name()), true
		}
	case "os":
		if envFuncs[fn.Name()] {
			return fmt.Sprintf("process environment via os.%s", fn.Name()), true
		}
	case "math/rand", "math/rand/v2":
		if !deterministicRandFuncs[fn.Name()] {
			return fmt.Sprintf("global random source via %s.%s", pkg.Path(), fn.Name()), true
		}
	}
	return "", false
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// commCases counts a select statement's communication clauses; a default
// clause counts too, since taking it is a race against the comm cases.
func commCases(s *ast.SelectStmt) int {
	return len(s.Body.List)
}

// implIndex maps interface methods to the module's concrete implementations.
type implIndex struct {
	named []*types.Named
	cache map[*types.Func][]*types.Func
}

// newImplIndex collects every package-level named (non-interface) type
// declared in the module, in deterministic package/scope order.
func newImplIndex(m *module) *implIndex {
	idx := &implIndex{cache: make(map[*types.Func][]*types.Func)}
	for _, p := range m.pkgs {
		tp, ok := m.typesOf[p]
		if !ok {
			continue
		}
		scope := tp.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// implementations returns the concrete module methods an interface-method
// call may dispatch to.
func (idx *implIndex) implementations(ifaceMethod *types.Func) []*types.Func {
	if out, ok := idx.cache[ifaceMethod]; ok {
		return out
	}
	var out []*types.Func
	sig, _ := ifaceMethod.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		idx.cache[ifaceMethod] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		idx.cache[ifaceMethod] = nil
		return nil
	}
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	idx.cache[ifaceMethod] = out
	return out
}

// baseName is filepath.Base for slash- or backslash-separated paths.
func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
