package moddet

import (
	"fmt"
	"go/ast"
	"go/token"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// The lockflow pass checks "// guarded by <mu>" field annotations across
// function boundaries. The per-package lockdiscipline rule can only insist
// that *exported* methods lock before touching guarded state; real code
// factors the locked region into unexported helpers that rely on the caller
// holding the mutex, and whether that contract holds is a whole-program
// question. Here a function that touches an annotated field without
// acquiring the mutex itself is acceptable only when every call chain that
// can reach it (over the conservative call graph) passes through a function
// that does acquire it; exported lock-free accessors are always findings,
// since external callers are invisible.
//
// Accesses through values created inside the same function (a constructor
// filling in a struct before it escapes) are exempt: state is caller-private
// until it is shared.

// lockFlow checks every guarded field against every module function.
func lockFlow(g *modgraph.Graph, guards []*guardedField) []lint.Finding {
	var out []lint.Finding
	for _, gf := range guards {
		out = append(out, checkGuard(g, gf)...)
	}
	return out
}

// accessInfo is one function's relationship to one guarded field.
type accessInfo struct {
	node     *modgraph.FuncNode
	firstUse token.Pos // first unlocked access site
	acquires bool
}

func checkGuard(g *modgraph.Graph, gf *guardedField) []lint.Finding {
	m := g.Mod

	// Classify every function: does it touch the field, does it acquire the
	// mutex? Acquisition anywhere in the body counts (the intraprocedural
	// Lock/Unlock pairing rule already polices release paths).
	acquires := make(map[*modgraph.FuncNode]bool)
	var accessors []*accessInfo
	for _, n := range g.Funcs {
		info := scanGuardUse(m, n, gf)
		acquires[n] = info.acquires
		if info.firstUse.IsValid() && !info.acquires {
			accessors = append(accessors, info)
		}
	}
	if len(accessors) == 0 {
		return nil
	}

	// protected(n): every call chain reaching n goes through an acquirer.
	const (
		unknown = iota
		computing
		yes
		no
	)
	state := make(map[*modgraph.FuncNode]int)
	var protected func(n *modgraph.FuncNode) bool
	protected = func(n *modgraph.FuncNode) bool {
		switch state[n] {
		case yes:
			return true
		case no, computing: // cycles resolve conservatively to "not protected"
			return false
		}
		state[n] = computing
		ok := false
		switch {
		case acquires[n]:
			ok = true
		case ast.IsExported(n.Obj.Name()):
			ok = false // externally callable without the lock
		default:
			callers := g.Callers[n.Obj]
			ok = len(callers) > 0
			for _, c := range callers {
				if !protected(c) {
					ok = false
					break
				}
			}
		}
		if ok {
			state[n] = yes
		} else {
			state[n] = no
		}
		return ok
	}

	var out []lint.Finding
	for _, a := range accessors {
		n := a.node
		if protectedCallers(g, n, acquires, protected) {
			continue
		}
		field := gf.structName + "." + gf.field.Name()
		var why string
		switch {
		case ast.IsExported(n.Obj.Name()):
			why = "exported functions must acquire it themselves"
		case len(g.Callers[n.Obj]) == 0:
			why = "and no module caller acquires it on its behalf"
		default:
			why = fmt.Sprintf("and caller %s can reach it without the lock",
				modgraph.ShortFuncName(m.Path, witnessUnprotected(g, n, protected).Obj))
		}
		out = append(out, lint.Finding{
			Pos:  n.Pkg.Fset.Position(a.firstUse),
			Rule: "lockflow",
			Msg: fmt.Sprintf("%s touches %s (// guarded by %s) without holding %s; %s",
				modgraph.ShortFuncName(m.Path, n.Obj), field, gf.mutexName, gf.mutexName, why),
		})
	}
	return out
}

// protectedCallers reports whether every caller chain into n holds the lock.
func protectedCallers(g *modgraph.Graph, n *modgraph.FuncNode, acquires map[*modgraph.FuncNode]bool, protected func(*modgraph.FuncNode) bool) bool {
	if ast.IsExported(n.Obj.Name()) {
		return false
	}
	callers := g.Callers[n.Obj]
	if len(callers) == 0 {
		return false
	}
	for _, c := range callers {
		if !protected(c) {
			return false
		}
	}
	return true
}

// witnessUnprotected picks the first caller that fails the protected check,
// for the diagnostic.
func witnessUnprotected(g *modgraph.Graph, n *modgraph.FuncNode, protected func(*modgraph.FuncNode) bool) *modgraph.FuncNode {
	for _, c := range g.Callers[n.Obj] {
		if !protected(c) {
			return c
		}
	}
	return n
}

// scanGuardUse inspects one function body for accesses to the guarded field
// and acquisitions of its mutex.
func scanGuardUse(m *modgraph.Module, n *modgraph.FuncNode, gf *guardedField) *accessInfo {
	info := &accessInfo{node: n}
	fd := n.Decl
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			// <expr>.<mu>.Lock() / RLock(): the selector under the method
			// must resolve to the annotated mutex field.
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if ok && m.SelectsField(inner, gf.mutex) {
				info.acquires = true
			}
		case *ast.SelectorExpr:
			if !m.SelectsField(node, gf.field) {
				return true
			}
			if modgraph.LocalTo(m, node.X, fd) {
				return true // caller-private value under construction
			}
			if !info.firstUse.IsValid() {
				info.firstUse = node.Pos()
			}
		}
		return true
	})
	return info
}
