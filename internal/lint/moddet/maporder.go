package moddet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// The maporder pass flags map-range loops whose iteration order escapes
// into an order-sensitive destination: a slice that is never sorted
// afterwards in the same function, an io.Writer / string builder / hash, a
// formatted print, or a channel. Go randomizes map iteration order per run,
// so any such escape breaks the byte-identical-exports guarantee the
// moment it reaches a report, trace, digest, or metric.
//
// Recognized-benign shapes produce no finding:
//
//   - folding into another map (m2[k] = v), deleting, counting, summing —
//     commutative accumulation is order-independent;
//   - appending to a slice that a sort.* / slices.Sort* call canonicalizes
//     later in the same function (the collect-then-sort idiom);
//   - ranges that bind neither key nor value (every iteration identical);
//   - appends/writes whose destination is itself declared inside the loop
//     body (fresh per iteration, so order cannot leak through it).
//
// What it cannot see: a slice returned unsorted and sorted by the caller,
// or order smuggled through a helper call. Those sites need either the
// sort moved in, or a //modlint:ignore maporder directive with a reason.

// mapSite is one flagged map-range escape. Sites double as taint roots for
// the sink analysis: a sink that can reach one transitively is reported too.
type mapSite struct {
	pos token.Pos
	pkg *lint.Package
	fn  *types.Func // enclosing declaration, nil if unresolved
	msg string
}

// mapOrder scans every function body in the module.
func mapOrder(m *modgraph.Module) []*mapSite {
	var sites []*mapSite
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := m.Info.Defs[fd.Name].(*types.Func)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					sites = append(sites, checkMapRange(m, p, fn, fd, rs)...)
					return true
				})
			}
		}
	}
	return sites
}

// checkMapRange analyzes one range statement (no-op for non-map ranges).
func checkMapRange(m *modgraph.Module, p *lint.Package, fn *types.Func, fd *ast.FuncDecl, rs *ast.RangeStmt) []*mapSite {
	t := m.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	if !bindsLoopVar(rs) {
		return nil // every iteration is identical; order cannot show
	}

	var sites []*mapSite
	flag := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, &mapSite{
			pos: pos, pkg: p, fn: fn,
			msg: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(m, call) {
					continue
				}
				target := n.Lhs[i]
				if n.Tok == token.DEFINE || declaredWithin(m, target, rs) {
					continue // fresh per iteration
				}
				key := exprKey(target)
				if key == "" {
					continue
				}
				if sortedAfter(m, fd, rs, key) {
					continue
				}
				flag(rs.Pos(), "map iteration order escapes into slice %q with no subsequent sort in %s; sort the keys first or sort %q before it escapes", key, fd.Name.Name, key)
			}
		case *ast.CallExpr:
			if what, pos, ok := writerEscape(m, n, rs); ok {
				flag(pos, "map iteration order escapes into %s in %s; iterate over sorted keys instead", what, fd.Name.Name)
				return false
			}
		case *ast.SendStmt:
			flag(n.Pos(), "map iteration order escapes into a channel send in %s; iterate over sorted keys instead", fd.Name.Name)
		}
		return true
	})
	return sites
}

// bindsLoopVar reports whether the range binds its key or value to a
// usable name.
func bindsLoopVar(rs *ast.RangeStmt) bool {
	used := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		id, ok := e.(*ast.Ident)
		return !ok || id.Name != "_"
	}
	return used(rs.Key) || used(rs.Value)
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(m *modgraph.Module, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj := m.ObjOf(id); obj != nil {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true // unresolved: assume the builtin
}

// declaredWithin reports whether e's base identifier is declared inside the
// range statement (a per-iteration local).
func declaredWithin(m *modgraph.Module, e ast.Expr, rs *ast.RangeStmt) bool {
	id := modgraph.BaseIdent(e)
	if id == nil {
		return false
	}
	obj := m.ObjOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// fmtPrintFuncs are the fmt functions that render straight to a stream.
var fmtPrintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// writeMethods are the stream-writer method names that make an escape.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// writerEscape reports whether call pushes loop-dependent data into a
// stream: an fmt print, io.WriteString, or a Write* method on anything not
// freshly created inside the loop.
func writerEscape(m *modgraph.Module, call *ast.CallExpr, rs *ast.RangeStmt) (string, token.Pos, bool) {
	fn := m.CalleeOf(call)
	if fn == nil {
		return "", 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if pkg := fn.Pkg(); pkg != nil && (sig == nil || sig.Recv() == nil) {
		switch {
		case pkg.Path() == "fmt" && fmtPrintFuncs[fn.Name()]:
			return "a stream via fmt." + fn.Name(), call.Pos(), true
		case pkg.Path() == "io" && fn.Name() == "WriteString":
			return "a writer via io.WriteString", call.Pos(), true
		}
		return "", 0, false
	}
	if !writeMethods[fn.Name()] {
		return "", 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	if declaredWithin(m, sel.X, rs) {
		return "", 0, false // per-iteration buffer; order cannot leak
	}
	return fmt.Sprintf("a writer/digest via %s.%s", exprKey(sel.X), fn.Name()), call.Pos(), true
}

// sortFuncs maps package path to the canonicalizing functions whose first
// argument is (or wraps) the slice being sorted.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether the function sorts the named slice at some
// point after the range statement.
func sortedAfter(m *modgraph.Module, fd *ast.FuncDecl, rs *ast.RangeStmt, key string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		fn := m.CalleeOf(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		names, ok := sortFuncs[fn.Pkg().Path()]
		if !ok || !names[fn.Name()] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// Unwrap one conversion/wrapper layer: sort.Sort(byName(s)).
		if c, ok := arg.(*ast.CallExpr); ok && len(c.Args) == 1 {
			arg = ast.Unparen(c.Args[0])
		}
		if exprKey(arg) == key {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprKey renders a restricted expression (idents, selectors, parens,
// unary &/*, constant indexes) to a canonical string for structural
// comparison; "" outside that subset.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := exprKey(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	case *ast.IndexExpr:
		x := exprKey(e.X)
		if x == "" {
			return ""
		}
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			return x + "[" + lit.Value + "]"
		}
	}
	return ""
}
