// Package moddet is modlint's whole-program determinism auditor. The
// reproduction's headline guarantee — byte-identical sweeps, traces and
// reports from one seed — is a *global* property: a time.Now three calls
// below a report writer breaks it just as surely as one inside. The
// per-package rules in internal/lint cannot see across call boundaries, so
// moddet runs on the shared whole-program substrate (internal/lint/modgraph:
// a conservative call graph over every package in the module, go/ast +
// go/types only, no x/tools) and checks three things:
//
//   - moddet: impurity taint seeded at nondeterminism roots — host-clock
//     reads outside hosttime.go, package-level math/rand, os.Getenv and
//     friends, multi-way selects, and unsorted map-order escapes — must not
//     be reachable from any function annotated //moddet:sink (the trace and
//     metrics exporters, the report writers, the pipeline digest/cluster
//     stages, the scanner sweep loop).
//   - maporder: map-range iteration order must not escape into slices,
//     writers, digests or channels without an intervening sort (reported at
//     the site whether or not a sink reaches it).
//   - lockflow: "// guarded by <mu>" field annotations hold across function
//     boundaries — a lock-free accessor is fine only while every call chain
//     into it acquires the mutex first.
//
// Findings are suppressed like every modlint rule, with
// //modlint:ignore <rule> <reason>; suppressing a maporder site also stops
// it from seeding taint, so an annotated site never resurfaces through the
// sink report. See docs/static-analysis.md for the full model.
package moddet

import (
	"go/types"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// Analyzer is the moddet module analyzer; create it with New.
type Analyzer struct {
	modulePath string
}

// New returns an analyzer for a module with the given module path (the
// `module` line of its go.mod — see ReadModulePath). Import paths under it
// resolve to the loaded package set; everything else is treated as external.
func New(modulePath string) *Analyzer {
	return &Analyzer{modulePath: modulePath}
}

// ReadModulePath extracts the module path from root/go.mod ("" when absent
// or unparsable); it forwards to the shared substrate.
func ReadModulePath(root string) string { return modgraph.ReadModulePath(root) }

// Name identifies the analyzer in driver listings.
func (a *Analyzer) Name() string { return "moddet" }

// Doc is the one-line description for -list output.
func (a *Analyzer) Doc() string {
	return "whole-program determinism audit: nondeterminism roots must not reach //moddet:sink functions; map order must not escape unsorted; // guarded by holds across calls"
}

// Rules lists the rule identifiers this analyzer reports under.
func (a *Analyzer) Rules() []string { return []string{"moddet", "maporder", "lockflow"} }

// CheckModule type-checks the package set and runs the three passes. It
// degrades gracefully on partial type information (fuzzed or broken input):
// whatever could not be resolved is simply not analyzed.
func (a *Analyzer) CheckModule(pkgs []*lint.Package, sup lint.SuppressionSet) []lint.Finding {
	out, _ := a.CheckModuleErrs(pkgs, sup)
	return out
}

// CheckModuleErrs is CheckModule plus the substrate's soft type-check
// errors, so drivers can report partial analysis instead of silently
// under-reporting (lint.RunAllErrs).
func (a *Analyzer) CheckModuleErrs(pkgs []*lint.Package, sup lint.SuppressionSet) ([]lint.Finding, []error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	m := modgraph.TypeCheck(a.modulePath, pkgs)

	var out []lint.Finding
	sinks, bad := collectSinks(m)
	out = append(out, bad...)
	guards, bad := collectGuards(m)
	out = append(out, bad...)

	g := modgraph.Build(m)
	roots := collectRoots(g)

	// maporder: report every site, and seed taint from the unsuppressed
	// ones (a deliberately annotated site must not resurface via a sink).
	mapRoots := make(map[*types.Func][]root)
	for _, s := range mapOrder(m) {
		pos := s.pkg.Fset.Position(s.pos)
		out = append(out, lint.Finding{Pos: pos, Rule: "maporder", Msg: s.msg})
		if sup.Suppressed(pos.Filename, pos.Line, "maporder") || s.fn == nil {
			continue
		}
		mapRoots[s.fn] = append(mapRoots[s.fn], root{pos: s.pos, desc: "map iteration order escape"})
	}

	out = append(out, taintFindings(g, sinks, roots, mapRoots)...)
	out = append(out, lockFlow(g, guards)...)
	return out, m.Errs
}
