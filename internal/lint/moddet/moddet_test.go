package moddet_test

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"modchecker/internal/lint"
	"modchecker/internal/lint/moddet"
	"modchecker/internal/lint/modsafe"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// fixtureModule is the module path of the testdata fixture tree; moddet
// resolves detmod/... imports against the loaded package set.
const fixtureModule = "detmod"

func loadFixture(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.LoadModule(token.NewFileSet(), filepath.Join("testdata", fixtureModule))
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) < 4 {
		t.Fatalf("fixture module loaded only %d packages", len(pkgs))
	}
	return pkgs
}

func runFixture(t *testing.T) []lint.Finding {
	t.Helper()
	pkgs := loadFixture(t)
	return lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{moddet.New(fixtureModule)})
}

// wantRE mirrors the per-package fixture convention:
//
//	// want <rule> "message substring"
//	// want <rule> 'message substring'
var wantRE = regexp.MustCompile(`want ([a-z-]+)(?:\s+(?:"([^"]*)"|'([^']*)'))?`)

type expectation struct {
	rule   string
	substr string
	met    bool
}

func parseWants(t *testing.T, pkgs []*lint.Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, p := range pkgs {
		for _, sf := range p.Files {
			src, err := os.ReadFile(sf.Path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				if !strings.Contains(line, "want ") {
					continue
				}
				for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", sf.Path, i+1)
					out[key] = append(out[key], &expectation{rule: m[1], substr: m[2] + m[3]})
				}
			}
		}
	}
	return out
}

// TestModdetFixtures runs the whole-program analyzer over the fixture
// module and matches findings against the // want comments: every want must
// be hit, no finding may be unexplained, and each of the three rules must
// fire at least once — the corpus is the proof that an injected time.Now in
// a pipeline stage or an unsorted map range in a report writer is caught.
func TestModdetFixtures(t *testing.T) {
	pkgs := loadFixture(t)
	wants := parseWants(t, pkgs)
	findings := lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{moddet.New(fixtureModule)})

	perRule := make(map[string]int)
	for _, f := range findings {
		perRule[f.Rule]++
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.rule == f.Rule && strings.Contains(f.Msg, w.substr) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.met {
				t.Errorf("%s: expected [%s] %q, not reported", key, w.rule, w.substr)
			}
		}
	}
	for _, rule := range moddet.New(fixtureModule).Rules() {
		if perRule[rule] == 0 {
			t.Errorf("fixture corpus produced no %s finding", rule)
		}
	}
}

// TestModdetGolden pins the full diagnostic output over the fixture corpus
// byte for byte: message wording, ordering, call-path rendering. Regenerate
// deliberately with `go test ./internal/lint/moddet -run Golden -update`.
func TestModdetGolden(t *testing.T) {
	var sb strings.Builder
	for _, f := range runFixture(t) {
		fmt.Fprintf(&sb, "%s\n", f)
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", fixtureModule+".golden")
	if dir := os.Getenv("MODLINT_GOLDEN_DIR"); dir != "" {
		goldenPath = filepath.Join(dir, fixtureModule+".golden")
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostic output diverged from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestTaintPathRendering checks the one property the want-substring harness
// cannot: the shortest sink->root call chain appears in the message.
func TestTaintPathRendering(t *testing.T) {
	for _, f := range runFixture(t) {
		if f.Rule != "moddet" || !strings.Contains(f.Msg, "host clock via time.Now") {
			continue
		}
		want := "call path: pipeline.RunStage -> clockutil.Stamp"
		if !strings.Contains(f.Msg, want) {
			t.Errorf("taint message %q lacks %q", f.Msg, want)
		}
		return
	}
	t.Fatal("no host-clock taint finding in fixture output")
}

// TestRepoIsCleanModdet runs the whole-program audit over the real module:
// the annotated sinks and guarded fields must stay clean. A legitimate
// exception needs a //modlint:ignore directive with a reason.
func TestRepoIsCleanModdet(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	pkgs, err := lint.LoadModule(token.NewFileSet(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	// The full analyzer set rides along so ignore directives naming
	// per-package rules resolve, exactly as the cmd/modlint driver runs.
	md := moddet.New(moddet.ReadModulePath(root))
	ms := modsafe.New(moddet.ReadModulePath(root))
	for _, f := range lint.RunAll(pkgs, lint.Analyzers(), []lint.ModuleAnalyzer{md, ms}) {
		t.Errorf("%s", f)
	}
}

// FuzzModdetTaint feeds arbitrary parseable Go through the whole analyzer:
// partial type information, unresolvable imports, directive soup — none of
// it may panic. Seeds are the fixture corpus plus shapes that stress each
// pass.
func FuzzModdetTaint(f *testing.F) {
	_ = filepath.Walk("testdata", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if src, err := os.ReadFile(path); err == nil {
			f.Add(string(src))
		}
		return nil
	})
	f.Add("package p\nfunc f() {}\n")
	f.Add("package p\nimport \"nosuch/pkg\"\nfunc f() { pkg.Do() }\n")
	f.Add("package p\n//moddet:sink x\nfunc S()\n")
	f.Add("package p\ntype T struct{ n int /* guarded by mu */ }\n")
	f.Add("package p\nfunc f(m map[int]int) { for k := range m { _ = k } }\n")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		af, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		p := &lint.Package{
			Name:  "fuzz",
			Dir:   "fuzz",
			Fset:  fset,
			Files: []*lint.SourceFile{{Path: "fuzz.go", AST: af}},
		}
		lint.RunAll([]*lint.Package{p}, nil, []lint.ModuleAnalyzer{moddet.New("fuzzmod")})
	})
}
