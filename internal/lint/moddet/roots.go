package moddet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint/modgraph"
)

// root is one direct source of nondeterminism inside a function body.
type root struct {
	pos  token.Pos
	desc string // e.g. `host clock read time.Now()`
}

// hostTimeFuncs are the time-package functions whose results (or firing
// order) depend on the host clock.
var hostTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package process-environment reads.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// deterministicRandFuncs are the math/rand constructors that are fine when
// fed an explicit seed; every *other* package-level math/rand function uses
// the shared global source and is impure.
var deterministicRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// hostTimeAllowFile is the one sanctioned host-clock location (mirrors
// clockdiscipline's strict-mode escape hatch).
const hostTimeAllowFile = "hosttime.go"

// collectRoots scans every call-graph node's body for direct nondeterminism
// roots: sanctioned-package calls that read the host clock, the process
// environment, or the global random source, plus multi-way selects.
func collectRoots(g *modgraph.Graph) map[*modgraph.FuncNode][]root {
	m := g.Mod
	out := make(map[*modgraph.FuncNode][]root)
	for _, n := range g.Funcs {
		allowHostTime := modgraph.BaseName(m.Position(n.Decl.Pos()).Filename) == hostTimeAllowFile
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				fn := m.CalleeOf(node)
				if fn == nil {
					return true
				}
				if r, ok := classifyRoot(fn, allowHostTime); ok {
					out[n] = append(out[n], root{pos: node.Pos(), desc: r})
				}
			case *ast.SelectStmt:
				if commCases(node) >= 2 {
					out[n] = append(out[n], root{
						pos:  node.Pos(),
						desc: "select over multiple ready channels (goroutine completion order)",
					})
				}
			}
			return true
		})
	}
	return out
}

// classifyRoot reports whether calling fn is itself a nondeterminism root.
func classifyRoot(fn *types.Func, allowHostTime bool) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // methods (e.g. (*rand.Rand).Intn on a seeded source) are fine
	}
	switch pkg.Path() {
	case "time":
		if hostTimeFuncs[fn.Name()] && !allowHostTime {
			return fmt.Sprintf("host clock via time.%s", fn.Name()), true
		}
	case "os":
		if envFuncs[fn.Name()] {
			return fmt.Sprintf("process environment via os.%s", fn.Name()), true
		}
	case "math/rand", "math/rand/v2":
		if !deterministicRandFuncs[fn.Name()] {
			return fmt.Sprintf("global random source via %s.%s", pkg.Path(), fn.Name()), true
		}
	}
	return "", false
}

// commCases counts a select statement's communication clauses; a default
// clause counts too, since taking it is a race against the comm cases.
func commCases(s *ast.SelectStmt) int {
	return len(s.Body.List)
}
