package moddet

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// The taint pass is the interprocedural heart of moddet: impurity seeded at
// nondeterminism roots (host clock reads, the global random source, the
// process environment, multi-way selects, unsorted map-order escapes) is
// propagated backwards along the conservative call graph, and any
// //moddet:sink function that can transitively reach a root is reported.
// Findings anchor at the *root* site — that is where the fix (or the
// //modlint:ignore moddet directive) belongs — and name every poisoned
// sink plus one shortest call path, so the report reads as "this call
// breaks byte-identical exports, reached from these entry points".

// taintFinding aggregates, for one root site, every sink that reaches it.
type taintFinding struct {
	pos   token.Position
	desc  string
	sinks []string // sorted sink names
	path  []string // one shortest sink→root call chain, rendered names
}

// taintFindings runs one BFS per sink over the call graph and merges the
// results per root site.
func taintFindings(g *modgraph.Graph, sinks []*sink, roots map[*modgraph.FuncNode][]root, mapRoots map[*types.Func][]root) []lint.Finding {
	byPos := make(map[token.Position]*taintFinding)
	var order []token.Position

	rootsOf := func(n *modgraph.FuncNode) []root {
		if extra, ok := mapRoots[n.Obj]; ok {
			return append(append([]root(nil), roots[n]...), extra...)
		}
		return roots[n]
	}

	for _, s := range sinks {
		start, ok := g.Node[s.obj]
		if !ok {
			continue
		}
		// BFS from the sink along callee edges; parent pointers give the
		// shortest call chain to every reached function.
		parent := map[*modgraph.FuncNode]*modgraph.FuncNode{start: nil}
		queue := []*modgraph.FuncNode{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, r := range rootsOf(n) {
				pos := n.Pkg.Fset.Position(r.pos)
				tf, seen := byPos[pos]
				if !seen {
					tf = &taintFinding{pos: pos, desc: r.desc, path: renderPath(g, parent, n)}
					byPos[pos] = tf
					order = append(order, pos)
				}
				name := modgraph.ShortFuncName(g.Mod.Path, s.obj)
				if !containsString(tf.sinks, name) {
					tf.sinks = append(tf.sinks, name)
				}
			}
			for _, e := range n.Callees {
				cn, ok := g.Node[e.Callee]
				if !ok {
					continue
				}
				if _, visited := parent[cn]; visited {
					continue
				}
				parent[cn] = n
				queue = append(queue, cn)
			}
		}
	}

	var out []lint.Finding
	for _, pos := range order {
		tf := byPos[pos]
		sort.Strings(tf.sinks)
		msg := fmt.Sprintf("%s poisons determinism sink %s", tf.desc, strings.Join(tf.sinks, ", "))
		if len(tf.path) > 1 {
			msg += fmt.Sprintf(" (call path: %s)", strings.Join(tf.path, " -> "))
		}
		out = append(out, lint.Finding{Pos: pos, Rule: "moddet", Msg: msg})
	}
	return out
}

// renderPath walks the BFS parent chain from n back to the sink and renders
// the sink→n call chain.
func renderPath(g *modgraph.Graph, parent map[*modgraph.FuncNode]*modgraph.FuncNode, n *modgraph.FuncNode) []string {
	var rev []string
	for cur := n; cur != nil; cur = parent[cur] {
		rev = append(rev, modgraph.ShortFuncName(g.Mod.Path, cur.Obj))
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
