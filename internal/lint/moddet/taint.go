package moddet

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"modchecker/internal/lint"
)

// The taint pass is the interprocedural heart of moddet: impurity seeded at
// nondeterminism roots (host clock reads, the global random source, the
// process environment, multi-way selects, unsorted map-order escapes) is
// propagated backwards along the conservative call graph, and any
// //moddet:sink function that can transitively reach a root is reported.
// Findings anchor at the *root* site — that is where the fix (or the
// //modlint:ignore moddet directive) belongs — and name every poisoned
// sink plus one shortest call path, so the report reads as "this call
// breaks byte-identical exports, reached from these entry points".

// taintFinding aggregates, for one root site, every sink that reaches it.
type taintFinding struct {
	pos   token.Position
	desc  string
	sinks []string // sorted sink names
	path  []string // one shortest sink→root call chain, rendered names
}

// taintFindings runs one BFS per sink over the call graph and merges the
// results per root site.
func taintFindings(g *graph, sinks []*sink, mapRoots map[*types.Func][]root) []lint.Finding {
	byPos := make(map[token.Position]*taintFinding)
	var order []token.Position

	rootsOf := func(n *funcNode) []root {
		if extra, ok := mapRoots[n.obj]; ok {
			return append(append([]root(nil), n.roots...), extra...)
		}
		return n.roots
	}

	for _, s := range sinks {
		start, ok := g.node[s.obj]
		if !ok {
			continue
		}
		// BFS from the sink along callee edges; parent pointers give the
		// shortest call chain to every reached function.
		parent := map[*funcNode]*funcNode{start: nil}
		queue := []*funcNode{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, r := range rootsOf(n) {
				pos := n.pkg.Fset.Position(r.pos)
				tf, seen := byPos[pos]
				if !seen {
					tf = &taintFinding{pos: pos, desc: r.desc, path: renderPath(g, parent, n)}
					byPos[pos] = tf
					order = append(order, pos)
				}
				name := shortFuncName(g.mod.path, s.obj)
				if !containsString(tf.sinks, name) {
					tf.sinks = append(tf.sinks, name)
				}
			}
			for _, e := range n.callees {
				cn, ok := g.node[e.callee]
				if !ok {
					continue
				}
				if _, visited := parent[cn]; visited {
					continue
				}
				parent[cn] = n
				queue = append(queue, cn)
			}
		}
	}

	var out []lint.Finding
	for _, pos := range order {
		tf := byPos[pos]
		sort.Strings(tf.sinks)
		msg := fmt.Sprintf("%s poisons determinism sink %s", tf.desc, strings.Join(tf.sinks, ", "))
		if len(tf.path) > 1 {
			msg += fmt.Sprintf(" (call path: %s)", strings.Join(tf.path, " -> "))
		}
		out = append(out, lint.Finding{Pos: pos, Rule: "moddet", Msg: msg})
	}
	return out
}

// renderPath walks the BFS parent chain from n back to the sink and renders
// the sink→n call chain.
func renderPath(g *graph, parent map[*funcNode]*funcNode, n *funcNode) []string {
	var rev []string
	for cur := n; cur != nil; cur = parent[cur] {
		rev = append(rev, shortFuncName(g.mod.path, cur.obj))
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// shortFuncName renders a function's full name without the module-path
// noise: "internal/core.(*Checker).compare", "report.WritePoolJSON".
func shortFuncName(modPath string, fn *types.Func) string {
	name := fn.FullName()
	if modPath == "" {
		return name
	}
	name = strings.ReplaceAll(name, modPath+"/", "")
	name = strings.ReplaceAll(name, modPath+".", baseImportName(modPath)+".")
	return name
}

// baseImportName is the default package identifier of an import path.
func baseImportName(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
