// Package clockutil is a cross-package helper: the host-clock read here is
// reported because a //moddet:sink function in another package reaches it
// through the whole-program call graph.
package clockutil

import "time"

// Stamp reads the host clock outside hosttime.go.
func Stamp() int64 {
	return time.Now().UnixNano() // want moddet "host clock via time.Now"
}
