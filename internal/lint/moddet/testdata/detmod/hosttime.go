// Package detmod is the fixture module root. This file is named
// hosttime.go, the one sanctioned host-clock location, so the read below is
// not a nondeterminism root even though sinks can reach it.
package detmod

import "time"

// HostNow is the sanctioned host-clock accessor.
func HostNow() int64 {
	return time.Now().UnixNano()
}
