// Package locks exercises the interprocedural lockflow pass: "// guarded
// by" annotations hold only while every call chain into a lock-free
// accessor acquires the mutex first.
package locks

import "sync"

// Counter is a mutex-protected counter with an annotated field.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// NewCounter fills in guarded state before the value escapes (exempt:
// caller-private until shared).
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// Incr acquires the mutex and delegates to bump.
func (c *Counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// bump relies on every caller holding mu — true here, so no finding.
func (c *Counter) bump() { c.n++ }

// Peek reads n without the lock from an exported method.
func (c *Counter) Peek() int {
	return c.n // want lockflow "exported functions must acquire it themselves"
}

// Racy reaches leak without acquiring mu.
func (c *Counter) Racy() int { return c.leak() }

// leak is protected only if every caller locks; Racy does not.
func (c *Counter) leak() int {
	return c.n // want lockflow "can reach it without the lock"
}

// Bad carries an annotation naming a nonexistent mutex field.
type Bad struct {
	x int // guarded by missing — want lockflow "names no field of struct Bad"
}

// touch keeps x referenced so the fixture stays vet-plausible.
func (b *Bad) touch() int { return b.x }
