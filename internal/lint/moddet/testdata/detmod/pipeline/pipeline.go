// Package pipeline mimics a deterministic stage driver; the helpers below
// are the fixture's nondeterminism roots, each reached from the sink via a
// different call shape.
package pipeline

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"detmod"
	"detmod/clockutil"
)

// RunStage drives one stage end to end.
//
//moddet:sink stage output must be deterministic
func RunStage(w io.Writer, a, b <-chan int) {
	fmt.Fprintf(w, "boot %d\n", detmod.HostNow()) // sanctioned hosttime.go read: clean
	fmt.Fprintf(w, "stamp %d\n", clockutil.Stamp())
	fmt.Fprintf(w, "tuned %s\n", tuning())
	fmt.Fprintf(w, "pick %d\n", pick())
	awaitEither(a, b)
}

// tuning consults the process environment.
func tuning() string {
	return os.Getenv("DETMOD_TUNING") // want moddet "process environment via os.Getenv"
}

// pick mixes a seeded source (fine) with the global one (a root).
func pick() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10) + rand.Intn(10) // want moddet "global random source via math/rand.Intn"
}

// awaitEither returns on whichever channel fires first.
func awaitEither(a, b <-chan int) {
	select { // want moddet "select over multiple ready channels"
	case <-a:
	case <-b:
	}
}
