// Package report exercises the maporder pass and its interplay with taint:
// unsorted escapes are flagged at the site, sites inside a sink poison it,
// and a suppressed site seeds no taint.
package report

import (
	"fmt"
	"io"
	"sort"
)

// WriteReport renders counts in map order — the classic determinism bug.
//
//moddet:sink report bytes must be identical across runs
func WriteReport(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s %d\n", k, v) // want maporder "escapes into a stream via fmt.Fprintf" want moddet "map iteration order escape poisons determinism sink report.WriteReport"
	}
}

// WriteSorted is the collect-then-sort idiom; no findings.
func WriteSorted(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, counts[k])
	}
}

// Keys returns map keys unsorted — flagged even though no sink reaches it.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want maporder 'escapes into slice "out"'
		out = append(out, k)
	}
	return out
}

// Stream sends keys in map order (an escape even without a writer).
func Stream(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want maporder "escapes into a channel send"
	}
}

// Debug dumps counts in map order; the site is deliberately suppressed, so
// neither the maporder finding nor any taint through it may surface.
//
//moddet:sink suppression must stop taint too
func Debug(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		//modlint:ignore maporder debug output is unordered by design
		fmt.Fprintf(w, "%s=%d ", k, v)
	}
}
