package moddet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"modchecker/internal/lint"
)

// module is the type-checked view of the package set: every non-test file
// of every package run through go/types in dependency order, with one
// merged types.Info so later passes can resolve any identifier they meet.
type module struct {
	path string // module path ("modchecker"); import paths under it are internal
	fset *token.FileSet
	pkgs []*lint.Package // in deterministic (load) order
	// typesOf maps each lint package to its checked types.Package (absent
	// when type-checking failed outright for that package).
	typesOf map[*lint.Package]*types.Package
	info    *types.Info
	errs    []error // soft type errors; analysis proceeds on partial info
}

// ReadModulePath extracts the module path from root/go.mod ("" when absent
// or unparsable) so callers don't need to hardcode it.
func ReadModulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// importPathOf returns the package's import path under the module path.
func importPathOf(modPath string, p *lint.Package) string {
	if p.RelDir == "" {
		return modPath
	}
	if modPath == "" {
		return p.RelDir
	}
	return modPath + "/" + p.RelDir
}

// stdImporter resolves non-module imports: compiled export data first (fast,
// and always present for the standard library under a release toolchain),
// falling back to type-checking from source.
type stdImporter struct {
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		gc:    importer.ForCompiler(fset, "gc", nil),
		src:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("moddet: import %q failed", path)
		}
		return pkg, nil
	}
	pkg, err := si.gc.Import(path)
	if err != nil {
		pkg, err = si.src.Import(path)
	}
	if err != nil {
		si.cache[path] = nil
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// moduleImporter serves a types.Config: module-internal paths resolve to
// already-checked packages (the topological order below guarantees they
// exist), everything else goes to the standard importer.
type moduleImporter struct {
	modPath string
	byPath  map[string]*types.Package
	std     *stdImporter
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if mi.modPath != "" && (path == mi.modPath || strings.HasPrefix(path, mi.modPath+"/")) {
		if pkg, ok := mi.byPath[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("moddet: internal package %q not loaded", path)
	}
	return mi.std.Import(path)
}

// nonTestFiles returns the package's primary (non-test) ASTs.
func nonTestFiles(p *lint.Package) []*ast.File {
	var out []*ast.File
	for _, sf := range p.Files {
		if !sf.IsTest {
			out = append(out, sf.AST)
		}
	}
	return out
}

// internalImports lists the RelDirs of module-internal packages imported by
// p's non-test files.
func internalImports(modPath string, p *lint.Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range nonTestFiles(p) {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if modPath == "" || (path != modPath && !strings.HasPrefix(path, modPath+"/")) {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
			if !seen[rel] {
				seen[rel] = true
				out = append(out, rel)
			}
		}
	}
	return out
}

// typeCheck runs go/types over the packages in dependency order. It never
// fails hard: packages that cannot be checked contribute soft errors and
// partial (or no) type info, and every analysis pass treats missing info
// conservatively — the fuzz target feeds this arbitrary parseable Go.
func typeCheck(modPath string, pkgs []*lint.Package) *module {
	m := &module{
		path:    modPath,
		pkgs:    pkgs,
		typesOf: make(map[*lint.Package]*types.Package),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	if len(pkgs) == 0 {
		return m
	}
	m.fset = pkgs[0].Fset

	byRel := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byRel[p.RelDir] = p
	}

	// Topological order over module-internal imports (Go forbids cycles, but
	// fuzzed input may contain them — they fall out as import errors).
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[*lint.Package]int, len(pkgs))
	var order []*lint.Package
	var visit func(p *lint.Package)
	visit = func(p *lint.Package) {
		switch state[p] {
		case visiting:
			m.errs = append(m.errs, fmt.Errorf("moddet: import cycle through %s", importPathOf(modPath, p)))
			return
		case done:
			return
		}
		state[p] = visiting
		for _, rel := range internalImports(modPath, p) {
			if dep, ok := byRel[rel]; ok && dep != p {
				visit(dep)
			}
		}
		state[p] = done
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	imp := &moduleImporter{
		modPath: modPath,
		byPath:  make(map[string]*types.Package, len(pkgs)),
		std:     newStdImporter(m.fset),
	}
	for _, p := range order {
		files := nonTestFiles(p)
		if len(files) == 0 {
			continue
		}
		cfg := types.Config{
			Importer: imp,
			Error: func(err error) {
				m.errs = append(m.errs, err)
			},
		}
		path := importPathOf(modPath, p)
		// Check returns a usable (if incomplete) package even on errors.
		tp, _ := cfg.Check(path, p.Fset, files, m.info)
		if tp != nil {
			m.typesOf[p] = tp
			imp.byPath[path] = tp
		}
	}
	return m
}

// typeOf returns the type of e, nil when type-checking didn't resolve it.
func (m *module) typeOf(e ast.Expr) types.Type {
	if tv, ok := m.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objOf resolves an identifier to its object (use or def), nil if unknown.
func (m *module) objOf(id *ast.Ident) types.Object {
	if o := m.info.Uses[id]; o != nil {
		return o
	}
	return m.info.Defs[id]
}

// calleeOf resolves a call expression to the *types.Func it invokes: a
// package function, a method (concrete or interface), or nil for builtins,
// conversions, and dynamic calls through function values.
func (m *module) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := m.objOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := m.info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Fn.
		if fn, ok := m.objOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// position resolves a token.Pos against the module's file set.
func (m *module) position(pos token.Pos) token.Position {
	if m.fset == nil {
		return token.Position{}
	}
	return m.fset.Position(pos)
}
