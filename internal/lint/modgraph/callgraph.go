package modgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint"
)

// FuncNode is one module function (or method) in the conservative
// whole-program call graph. Function literals are not separate nodes: their
// bodies are attributed to the enclosing declaration, which soundly covers
// the dominant patterns (closures handed to worker pools, deferred funcs,
// goroutine bodies) without tracking function values through the heap.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *lint.Package
	// Callees are the functions this node may invoke, in source order.
	// External (non-module) callees are included; clients filter by whether
	// Graph.Node resolves them.
	Callees []Edge
}

// Edge is one call-graph edge at one call site.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
}

// Graph is the whole-program call graph plus the reverse adjacency
// caller-directed passes walk upward.
type Graph struct {
	Mod *Module
	// Funcs lists nodes in deterministic construction order (package, file,
	// decl).
	Funcs []*FuncNode
	Node  map[*types.Func]*FuncNode
	// Callers is the reverse adjacency: for each module function, the nodes
	// that may call it.
	Callers map[*types.Func][]*FuncNode
}

// Build walks every function declaration in the module, resolving call
// sites through go/types. Dynamic dispatch through module-declared
// interfaces is expanded to every module implementation; stdlib interfaces
// (io.Writer et al.) are not expanded — wiring every client to every module
// Write method would drown the analyses in false paths.
func Build(m *Module) *Graph {
	g := &Graph{
		Mod:     m,
		Node:    make(map[*types.Func]*FuncNode),
		Callers: make(map[*types.Func][]*FuncNode),
	}
	// Pass 1: declare nodes, so edge resolution can distinguish module
	// functions from externals.
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := m.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type-checking failed for this decl
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: p}
				g.Funcs = append(g.Funcs, n)
				g.Node[obj] = n
			}
		}
	}

	impls := newImplIndex(m)

	// Pass 2: edges.
	for _, n := range g.Funcs {
		g.scanBody(n, impls)
	}

	// Reverse adjacency.
	for _, n := range g.Funcs {
		seen := make(map[*types.Func]bool)
		for _, e := range n.Callees {
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			if _, ok := g.Node[e.Callee]; ok {
				g.Callers[e.Callee] = append(g.Callers[e.Callee], n)
			}
		}
	}
	return g
}

// scanBody collects n's call edges. Function literal bodies are scanned
// inline (attributed to n).
func (g *Graph) scanBody(n *FuncNode, impls *implIndex) {
	m := g.Mod
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := m.CalleeOf(call)
		if fn == nil {
			return true
		}
		if IsInterfaceMethod(fn) {
			// Dynamic dispatch: add one edge per module implementation, but
			// only for module-declared interfaces.
			if fn.Pkg() != nil && m.IsModulePkg(fn.Pkg()) {
				for _, impl := range impls.implementations(fn) {
					n.Callees = append(n.Callees, Edge{Callee: impl, Pos: call.Pos()})
				}
			}
			return true
		}
		n.Callees = append(n.Callees, Edge{Callee: fn, Pos: call.Pos()})
		return true
	})
}

// IsInterfaceMethod reports whether fn is declared on an interface type.
func IsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implIndex maps interface methods to the module's concrete implementations.
type implIndex struct {
	named []*types.Named
	cache map[*types.Func][]*types.Func
}

// newImplIndex collects every package-level named (non-interface) type
// declared in the module, in deterministic package/scope order.
func newImplIndex(m *Module) *implIndex {
	idx := &implIndex{cache: make(map[*types.Func][]*types.Func)}
	for _, p := range m.Pkgs {
		tp, ok := m.TypesOf[p]
		if !ok {
			continue
		}
		scope := tp.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// implementations returns the concrete module methods an interface-method
// call may dispatch to.
func (idx *implIndex) implementations(ifaceMethod *types.Func) []*types.Func {
	if out, ok := idx.cache[ifaceMethod]; ok {
		return out
	}
	var out []*types.Func
	sig, _ := ifaceMethod.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		idx.cache[ifaceMethod] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		idx.cache[ifaceMethod] = nil
		return nil
	}
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	idx.cache[ifaceMethod] = out
	return out
}
