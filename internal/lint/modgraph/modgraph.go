// Package modgraph is the whole-program analysis substrate shared by
// modlint's module analyzers (moddet, modsafe): a go/types type-check of
// every non-test file in the module plus a conservative call graph over the
// result — stdlib go/ast + go/types only, no x/tools.
//
// The substrate never fails hard. Packages that cannot be type-checked
// contribute soft errors and partial (or no) type information, and every
// client pass treats missing info conservatively — the fuzz targets feed
// this arbitrary parseable Go.
package modgraph

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"modchecker/internal/lint"
)

// Module is the type-checked view of the package set: every non-test file
// of every package run through go/types in dependency order, with one
// merged types.Info so analysis passes can resolve any identifier they meet.
type Module struct {
	// Path is the module path ("modchecker"); import paths under it are
	// treated as module-internal.
	Path string
	Fset *token.FileSet
	// Pkgs is the loaded package set in deterministic (load) order.
	Pkgs []*lint.Package
	// TypesOf maps each lint package to its checked types.Package (absent
	// when type-checking failed outright for that package).
	TypesOf map[*lint.Package]*types.Package
	Info    *types.Info
	// Errs collects soft type errors; analysis proceeds on partial info.
	Errs []error
}

// ReadModulePath extracts the module path from root/go.mod ("" when absent
// or unparsable) so callers don't need to hardcode it.
func ReadModulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// ImportPathOf returns the package's import path under the module path.
func ImportPathOf(modPath string, p *lint.Package) string {
	if p.RelDir == "" {
		return modPath
	}
	if modPath == "" {
		return p.RelDir
	}
	return modPath + "/" + p.RelDir
}

// stdImporter resolves non-module imports: compiled export data first (fast,
// and always present for the standard library under a release toolchain),
// falling back to type-checking from source.
type stdImporter struct {
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		gc:    importer.ForCompiler(fset, "gc", nil),
		src:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("modgraph: import %q failed", path)
		}
		return pkg, nil
	}
	pkg, err := si.gc.Import(path)
	if err != nil {
		pkg, err = si.src.Import(path)
	}
	if err != nil {
		si.cache[path] = nil
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// moduleImporter serves a types.Config: module-internal paths resolve to
// already-checked packages (the topological order below guarantees they
// exist), everything else goes to the standard importer.
type moduleImporter struct {
	modPath string
	byPath  map[string]*types.Package
	std     *stdImporter
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if mi.modPath != "" && (path == mi.modPath || strings.HasPrefix(path, mi.modPath+"/")) {
		if pkg, ok := mi.byPath[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("modgraph: internal package %q not loaded", path)
	}
	return mi.std.Import(path)
}

// NonTestFiles returns the package's primary (non-test) ASTs.
func NonTestFiles(p *lint.Package) []*ast.File {
	var out []*ast.File
	for _, sf := range p.Files {
		if !sf.IsTest {
			out = append(out, sf.AST)
		}
	}
	return out
}

// internalImports lists the RelDirs of module-internal packages imported by
// p's non-test files.
func internalImports(modPath string, p *lint.Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range NonTestFiles(p) {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if modPath == "" || (path != modPath && !strings.HasPrefix(path, modPath+"/")) {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
			if !seen[rel] {
				seen[rel] = true
				out = append(out, rel)
			}
		}
	}
	return out
}

// TypeCheck runs go/types over the packages in dependency order. It never
// fails hard: packages that cannot be checked contribute soft errors and
// partial (or no) type info.
func TypeCheck(modPath string, pkgs []*lint.Package) *Module {
	m := &Module{
		Path:    modPath,
		Pkgs:    pkgs,
		TypesOf: make(map[*lint.Package]*types.Package),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	if len(pkgs) == 0 {
		return m
	}
	m.Fset = pkgs[0].Fset

	byRel := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byRel[p.RelDir] = p
	}

	// Topological order over module-internal imports (Go forbids cycles, but
	// fuzzed input may contain them — they fall out as import errors).
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[*lint.Package]int, len(pkgs))
	var order []*lint.Package
	var visit func(p *lint.Package)
	visit = func(p *lint.Package) {
		switch state[p] {
		case visiting:
			m.Errs = append(m.Errs, fmt.Errorf("modgraph: import cycle through %s", ImportPathOf(modPath, p)))
			return
		case done:
			return
		}
		state[p] = visiting
		for _, rel := range internalImports(modPath, p) {
			if dep, ok := byRel[rel]; ok && dep != p {
				visit(dep)
			}
		}
		state[p] = done
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	imp := &moduleImporter{
		modPath: modPath,
		byPath:  make(map[string]*types.Package, len(pkgs)),
		std:     newStdImporter(m.Fset),
	}
	for _, p := range order {
		files := NonTestFiles(p)
		if len(files) == 0 {
			continue
		}
		cfg := types.Config{
			Importer: imp,
			Error: func(err error) {
				m.Errs = append(m.Errs, err)
			},
		}
		path := ImportPathOf(modPath, p)
		// Check returns a usable (if incomplete) package even on errors.
		tp, _ := cfg.Check(path, p.Fset, files, m.Info)
		if tp != nil {
			m.TypesOf[p] = tp
			imp.byPath[path] = tp
		}
	}
	return m
}

// TypeOf returns the type of e, nil when type-checking didn't resolve it.
func (m *Module) TypeOf(e ast.Expr) types.Type {
	if tv, ok := m.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ObjOf resolves an identifier to its object (use or def), nil if unknown.
func (m *Module) ObjOf(id *ast.Ident) types.Object {
	if o := m.Info.Uses[id]; o != nil {
		return o
	}
	return m.Info.Defs[id]
}

// CalleeOf resolves a call expression to the *types.Func it invokes: a
// package function, a method (concrete or interface), or nil for builtins,
// conversions, and dynamic calls through function values.
func (m *Module) CalleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := m.ObjOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := m.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Fn.
		if fn, ok := m.ObjOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Position resolves a token.Pos against the module's file set.
func (m *Module) Position(pos token.Pos) token.Position {
	if m.Fset == nil {
		return token.Position{}
	}
	return m.Fset.Position(pos)
}

// SelectsField reports whether sel resolves to exactly the given field.
func (m *Module) SelectsField(sel *ast.SelectorExpr, field *types.Var) bool {
	if s, ok := m.Info.Selections[sel]; ok {
		return s.Obj() == field
	}
	return false
}

// IsModulePkg reports whether tp is one of the module's own packages.
func (m *Module) IsModulePkg(tp *types.Package) bool {
	if m.Path == "" {
		return false
	}
	return tp.Path() == m.Path ||
		len(tp.Path()) > len(m.Path) && tp.Path()[:len(m.Path)+1] == m.Path+"/"
}

// ShortFuncName renders a function's full name without the module-path
// noise: "internal/core.(*Checker).compare", "report.WritePoolJSON".
func ShortFuncName(modPath string, fn *types.Func) string {
	name := fn.FullName()
	if modPath == "" {
		return name
	}
	name = strings.ReplaceAll(name, modPath+"/", "")
	name = strings.ReplaceAll(name, modPath+".", baseImportName(modPath)+".")
	return name
}

// baseImportName is the default package identifier of an import path.
func baseImportName(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// BaseName is filepath.Base for slash- or backslash-separated paths.
func BaseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}

// BaseIdent returns the leftmost identifier of a selector/index chain.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// LocalTo reports whether e's base identifier is a variable declared inside
// fd's body (not a parameter or receiver) — a value the function created
// itself and has not shared yet.
func LocalTo(m *Module, e ast.Expr, fd *ast.FuncDecl) bool {
	id := BaseIdent(e)
	if id == nil {
		return false
	}
	obj := m.ObjOf(id)
	if obj == nil || fd.Body == nil {
		return false
	}
	return obj.Pos() >= fd.Body.Pos() && obj.Pos() < fd.Body.End()
}
