package modown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// aliasfree enforces the zero-copy aliasing rule: a buffer returned by a
// //modown:borrowed producer (a CopyMapped window, a CoW frame layer) is
// a live view of memory owned elsewhere. Callers may read it, slice it,
// and hand it on — but must not
//
//   - write an element (b[i] = x) or copy into it,
//   - append to it (append may write into the shared backing array),
//   - recycle it through a pool put accessor or sync.Pool.Put,
//   - return it from a function not itself annotated //modown:borrowed,
//     which would launder the no-mutate contract away from callers.
//
// The pass is local with alias propagation (b2 := b, views := b[4:]),
// the same shape as poolflow but without path sensitivity — borrowedness
// never goes away.

// borrow records where a borrowed value entered the function. dual marks
// producers annotated both //modown:pool ... get and //modown:borrowed
// (strategy-dependent ownership, like CopyModule): their results must not
// be mutated, but recycling is the pool contract's business — poolflow
// tracks it — so the recycle checks skip them.
type borrow struct {
	src  string
	line int
	dual bool
}

func aliasFree(m *modgraph.Module, ann *annotations, sup lint.SuppressionSet) []lint.Finding {
	if len(ann.borrowed) == 0 {
		return nil
	}
	var out []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkBorrows(m, ann, sup, p, fd)...)
			}
		}
	}
	return out
}

type afWalker struct {
	m        *modgraph.Module
	ann      *annotations
	sup      lint.SuppressionSet
	pkg      *lint.Package
	fd       *ast.FuncDecl
	borrowed map[types.Object]borrow
	fnIsBor  bool // the enclosing function is itself a borrowed producer
	findings []lint.Finding
	litDepth int
}

func checkBorrows(m *modgraph.Module, ann *annotations, sup lint.SuppressionSet, p *lint.Package, fd *ast.FuncDecl) []lint.Finding {
	w := &afWalker{m: m, ann: ann, sup: sup, pkg: p, fd: fd, borrowed: make(map[types.Object]borrow)}
	if fn, _ := m.Info.Defs[fd.Name].(*types.Func); fn != nil {
		w.fnIsBor = ann.borrowed[fn] != nil
	}
	w.walk(fd.Body)
	return w.findings
}

func (w *afWalker) report(pos token.Pos, msg string) {
	w.findings = append(w.findings, lint.Finding{Pos: w.pkg.Fset.Position(pos), Rule: "aliasfree", Msg: msg})
}

// walk visits the body in syntactic order — sufficient without path
// sensitivity, since borrows only accumulate.
func (w *afWalker) walk(n ast.Node) {
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			w.assign(nd)
		case *ast.CallExpr:
			w.call(nd)
		case *ast.ReturnStmt:
			w.ret(nd)
		case *ast.FuncLit:
			w.litDepth++
			w.walk(nd.Body)
			w.litDepth--
			return false
		}
		return true
	})
}

// borrowOf resolves an expression to a tracked borrow: an ident, a slice
// or deref of one, or a fresh call of a borrowed producer.
func (w *afWalker) borrowOf(e ast.Expr) (borrow, bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.m.ObjOf(t); obj != nil {
			b, ok := w.borrowed[obj]
			return b, ok
		}
	case *ast.SliceExpr:
		return w.borrowOf(t.X)
	case *ast.StarExpr:
		return w.borrowOf(t.X)
	case *ast.CallExpr:
		if d := calleeDirective(w.m, w.ann.borrowed, t); d != nil {
			pos := w.pkg.Fset.Position(t.Pos())
			if w.sup.Suppressed(pos.Filename, pos.Line, "aliasfree") {
				return borrow{}, false // a suppressed producer site propagates no facts
			}
			_, dual := w.ann.poolGet[d.fn]
			return borrow{src: d.fn.Name(), line: pos.Line, dual: dual}, true
		}
	}
	return borrow{}, false
}

func (w *afWalker) assign(s *ast.AssignStmt) {
	n := len(s.Rhs)
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if n == len(s.Lhs) {
			rhs = s.Rhs[i] // tuple assignments are bound below, by type
		}
		// Mutation through an element write.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if b, bor := w.borrowOf(idx.X); bor {
				w.report(lhs.Pos(), fmt.Sprintf("borrowed buffer from %s (line %d) mutated by element write; zero-copy views are shared with their owner", b.src, b.line))
			}
		}
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if !isIdent || id.Name == "_" || rhs == nil {
			continue
		}
		obj := w.m.ObjOf(id)
		if obj == nil {
			continue
		}
		if b, bor := w.borrowOf(rhs); bor {
			w.borrowed[obj] = b
		} else if _, tracked := w.borrowed[obj]; tracked && !isBorrowPreserving(rhs) {
			delete(w.borrowed, obj)
		}
	}
	// Tuple form: buf, err := mapRange(...) — bind the value results.
	if n == 1 && len(s.Lhs) > 1 {
		if b, bor := w.borrowOf(s.Rhs[0]); bor {
			for _, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := w.m.ObjOf(id); obj != nil && isViewType(obj.Type()) {
					w.borrowed[obj] = b
				}
			}
		}
	}
}

// isViewType limits tuple binding to types that can alias guest memory.
func isViewType(t types.Type) bool {
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

// isBorrowPreserving reports whether overwriting with rhs keeps the
// variable borrowed (self-append and reslices stay aliased).
func isBorrowPreserving(rhs ast.Expr) bool {
	switch t := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		id, ok := t.Fun.(*ast.Ident)
		return ok && id.Name == "append"
	}
	return false
}

func (w *afWalker) call(call *ast.CallExpr) {
	// copy(dst, ...) into a borrowed buffer.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
		switch id.Name {
		case "copy":
			if b, bor := w.borrowOf(call.Args[0]); bor {
				w.report(call.Args[0].Pos(), fmt.Sprintf("borrowed buffer from %s (line %d) used as copy destination; zero-copy views are shared with their owner", b.src, b.line))
			}
			return
		case "append":
			if b, bor := w.borrowOf(call.Args[0]); bor {
				w.report(call.Args[0].Pos(), fmt.Sprintf("append on borrowed buffer from %s (line %d) may write into the shared backing array; copy it first", b.src, b.line))
			}
			return
		}
	}
	// Recycling a borrowed buffer into a pool. Dual-annotated producers
	// (pool get + borrowed) are exempt: recycling their results is the
	// pool contract poolflow enforces.
	if d := calleeDirective(w.m, w.ann.poolPut, call); d != nil {
		for _, a := range call.Args {
			if b, bor := w.borrowOf(a); bor && !b.dual {
				w.report(a.Pos(), fmt.Sprintf("borrowed buffer from %s (line %d) recycled into the %s pool; the pool would hand guest-owned memory to the next caller", b.src, b.line, d.kind))
			}
		}
		return
	}
	if fn := w.m.CalleeOf(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Put" {
		for _, a := range call.Args {
			if b, bor := w.borrowOf(a); bor && !b.dual {
				w.report(a.Pos(), fmt.Sprintf("borrowed buffer from %s (line %d) recycled into a sync.Pool", b.src, b.line))
			}
		}
	}
}

func (w *afWalker) ret(s *ast.ReturnStmt) {
	if w.litDepth > 0 || w.fnIsBor {
		return
	}
	for _, r := range s.Results {
		if b, bor := w.borrowOf(r); bor {
			w.report(r.Pos(), fmt.Sprintf("borrowed buffer from %s (line %d) returned by %s, which is not annotated //modown:borrowed — callers lose the no-mutate contract", b.src, b.line, w.fd.Name.Name))
		}
	}
}
