package modown

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// modown annotations live in function doc comments and declare the
// ownership contracts the analyzers check:
//
//	//modown:pool <kind> get [reason]
//	//modown:pool <kind> put [reason]
//	    poolflow: a get accessor hands out a pooled value of <kind>; the
//	    caller owns it until a matching put accessor recycles it, a
//	    //modown:transfer callee takes it over, or it is returned from a
//	    function that is itself annotated get for the kind. Inside an
//	    annotated accessor the raw sync.Pool traffic is the implementation
//	    of the contract and is not tracked.
//
//	//modown:transfer <kind> [reason]
//	    poolflow: calling this function moves ownership of any pooled
//	    <kind> argument into the callee (it stores the value in a struct it
//	    owns and recycles it later); the caller's obligation is discharged.
//
//	//modown:borrowed [reason]
//	    aliasfree: this function returns a zero-copy view of memory owned
//	    elsewhere (a CopyMapped window, a CoW frame layer). Callers must
//	    not mutate, append to, or recycle the result, and may only return
//	    it from functions that carry the same annotation.
//
// Malformed directives — unknown verbs, a missing kind or role, or a
// directive on a declaration the type-checker could not resolve — are
// findings under the "modown" rule, as is a pool kind with a get accessor
// but no put (or the reverse): a one-sided pool is a contract nothing can
// satisfy.

const directivePrefix = "modown:"

// kindRE constrains pool kinds to lowercase kebab-case so typos don't
// silently create a new resource class.
var kindRE = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// directive is one parsed //modown: annotation bound to its function.
type directive struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *lint.Package
	verb string // "pool", "transfer", "borrowed"
	kind string // pool/transfer resource kind; "" for borrowed
	role string // "get" or "put" for pool directives
	pos  token.Pos
}

// annotations indexes every directive in the module. The iface maps extend
// each contract to module-declared interface methods whose implementations
// carry it, so calls through an interface (s.h.MapRange) resolve the same
// as direct calls.
type annotations struct {
	poolGet  map[*types.Func]*directive
	poolPut  map[*types.Func]*directive
	transfer map[*types.Func]*directive
	borrowed map[*types.Func]*directive
	// annotated marks declarations carrying any pool directive; their
	// bodies implement the contract and are exempt from intrinsic
	// sync.Pool tracking.
	annotated map[*ast.FuncDecl]bool
	order     []*directive // deterministic (load) order
}

// collectDirectives parses every //modown: line in function doc comments
// and runs the pairing hygiene check.
func collectDirectives(m *modgraph.Module) (*annotations, []lint.Finding) {
	ann := &annotations{
		poolGet:   make(map[*types.Func]*directive),
		poolPut:   make(map[*types.Func]*directive),
		transfer:  make(map[*types.Func]*directive),
		borrowed:  make(map[*types.Func]*directive),
		annotated: make(map[*ast.FuncDecl]bool),
	}
	var bad []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, directivePrefix)
					if !ok {
						continue
					}
					dir, msg := parseDirective(rest)
					if msg != "" {
						bad = append(bad, lint.Finding{
							Pos:  p.Fset.Position(c.Pos()),
							Rule: "modown",
							Msg:  msg,
						})
						continue
					}
					fn, _ := m.Info.Defs[fd.Name].(*types.Func)
					if fn == nil {
						bad = append(bad, lint.Finding{
							Pos:  p.Fset.Position(c.Pos()),
							Rule: "modown",
							Msg:  "//modown:" + dir.verb + " directive on a declaration the type-checker could not resolve",
						})
						continue
					}
					dir.fn, dir.decl, dir.pkg, dir.pos = fn, fd, p, c.Pos()
					ann.add(dir)
				}
			}
		}
	}
	bad = append(bad, ann.pairingCheck(m)...)
	extendToInterfaces(m, ann)
	return ann, bad
}

// parseDirective splits the text after "modown:" into a directive, or an
// error message for the finding.
func parseDirective(rest string) (*directive, string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "empty //modown: directive"
	}
	verb := fields[0]
	switch verb {
	case "pool":
		if len(fields) < 3 {
			return nil, "//modown:pool needs a kind and a role (e.g. //modown:pool fetch-buf get)"
		}
		kind, role := fields[1], fields[2]
		if !kindRE.MatchString(kind) {
			return nil, "//modown:pool kind " + quote(kind) + " must be lowercase kebab-case"
		}
		if role != "get" && role != "put" {
			return nil, "//modown:pool role " + quote(role) + ` must be "get" or "put"`
		}
		return &directive{verb: verb, kind: kind, role: role}, ""
	case "transfer":
		if len(fields) < 2 {
			return nil, "//modown:transfer needs a pool kind (e.g. //modown:transfer fetch-buf)"
		}
		kind := fields[1]
		if !kindRE.MatchString(kind) {
			return nil, "//modown:transfer kind " + quote(kind) + " must be lowercase kebab-case"
		}
		return &directive{verb: verb, kind: kind}, ""
	case "borrowed":
		return &directive{verb: verb}, ""
	default:
		return nil, "unknown //modown: directive " + quote(verb)
	}
}

// quote wraps a token for an error message.
func quote(s string) string { return `"` + s + `"` }

func (a *annotations) add(d *directive) {
	switch d.verb {
	case "pool":
		if d.role == "get" {
			a.poolGet[d.fn] = d
		} else {
			a.poolPut[d.fn] = d
		}
		a.annotated[d.decl] = true
	case "transfer":
		a.transfer[d.fn] = d
	case "borrowed":
		a.borrowed[d.fn] = d
	}
	a.order = append(a.order, d)
}

// pairingCheck flags pool kinds declared with only one side of the
// get/put pair, and transfer kinds that name no declared pool.
func (a *annotations) pairingCheck(m *modgraph.Module) []lint.Finding {
	gets := make(map[string]bool)
	puts := make(map[string]bool)
	for _, d := range a.poolGet {
		gets[d.kind] = true
	}
	for _, d := range a.poolPut {
		puts[d.kind] = true
	}
	var bad []lint.Finding
	for _, d := range a.order {
		switch {
		case d.verb == "pool" && d.role == "get" && !puts[d.kind]:
			bad = append(bad, lint.Finding{
				Pos:  d.pkg.Fset.Position(d.pos),
				Rule: "modown",
				Msg:  "pool kind " + quote(d.kind) + " has a get accessor but no //modown:pool " + d.kind + " put",
			})
		case d.verb == "pool" && d.role == "put" && !gets[d.kind]:
			bad = append(bad, lint.Finding{
				Pos:  d.pkg.Fset.Position(d.pos),
				Rule: "modown",
				Msg:  "pool kind " + quote(d.kind) + " has a put accessor but no //modown:pool " + d.kind + " get",
			})
		case d.verb == "transfer" && !gets[d.kind]:
			bad = append(bad, lint.Finding{
				Pos:  d.pkg.Fset.Position(d.pos),
				Rule: "modown",
				Msg:  "//modown:transfer names pool kind " + quote(d.kind) + ", which has no get accessor",
			})
		}
	}
	return bad
}

// extendToInterfaces maps each annotated concrete method's contract onto
// module-declared interface methods it implements, so dynamic dispatch
// sites resolve annotations the same way direct calls do.
func extendToInterfaces(m *modgraph.Module, ann *annotations) {
	type ifaceMethod struct {
		iface *types.Interface
		fn    *types.Func
	}
	var methods []ifaceMethod
	for _, p := range m.Pkgs {
		tp, ok := m.TypesOf[p]
		if !ok {
			continue
		}
		scope := tp.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				methods = append(methods, ifaceMethod{iface, iface.Method(i)})
			}
		}
	}
	extend := func(dst map[*types.Func]*directive) {
		var fns []*types.Func
		for fn := range dst {
			fns = append(fns, fn)
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
		for _, fn := range fns {
			d := dst[fn]
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				continue
			}
			recv := sig.Recv().Type()
			for _, im := range methods {
				if im.fn.Name() != fn.Name() {
					continue
				}
				if !types.Implements(recv, im.iface) && !types.Implements(types.NewPointer(recv), im.iface) {
					continue
				}
				if _, taken := dst[im.fn]; !taken {
					dst[im.fn] = d
				}
			}
		}
	}
	extend(ann.poolGet)
	extend(ann.poolPut)
	extend(ann.transfer)
	extend(ann.borrowed)
}
