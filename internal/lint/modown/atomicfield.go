package modown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// atomicfield enforces the all-or-nothing rule of sync/atomic: a struct
// field or package-level variable accessed through the function-style
// atomic API (atomic.AddInt64(&x.n, 1)) anywhere in the module must be
// accessed that way everywhere — one plain read racing one atomic write
// is still a data race, and on 32-bit targets a torn one. Both sites are
// reported: the plain access carries the position of an atomic access to
// the same location.
//
// Fields holding the typed atomics (atomic.Int64, atomic.Pointer[T]) are
// safe by construction and out of scope. Plain accesses on values the
// function itself just created (construction before publication) are
// exempt, mirroring the lockflow construction rule.
//
// The pass also checks alignment: a 64-bit function-style atomic field
// must sit at an 8-byte offset under 32-bit layout (GOARCH=386), or the
// first atomic op on it panics there. atomic.Int64 carries this guarantee
// itself; the finding suggests it.

// atomicUse is one sync/atomic call touching a tracked location.
type atomicUse struct {
	pos     token.Position
	fn      string
	width64 bool
}

// atomicField runs the module-wide consistency and alignment checks.
func atomicField(m *modgraph.Module, sup lint.SuppressionSet) []lint.Finding {
	uses := make(map[types.Object][]atomicUse)
	strukt := make(map[types.Object]*types.Struct) // owning struct for fields
	skip := make(map[ast.Node]bool)                // operands inside atomic calls
	var order []types.Object

	eachFunc(m, func(p *lint.Package, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := m.CalleeOf(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on the typed atomics are safe by construction
			}
			obj, owner, opnd := atomicTarget(m, call)
			if obj == nil {
				return true
			}
			skip[opnd] = true
			if _, seen := uses[obj]; !seen {
				order = append(order, obj)
			}
			uses[obj] = append(uses[obj], atomicUse{
				pos:     p.Fset.Position(call.Pos()),
				fn:      fn.Name(),
				width64: strings.Contains(fn.Name(), "64"),
			})
			if owner != nil {
				strukt[obj] = owner
			}
			return true
		})
	})
	if len(uses) == 0 {
		return nil
	}
	for _, sites := range uses {
		sort.Slice(sites, func(i, j int) bool {
			a, b := sites[i].pos, sites[j].pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			return a.Offset < b.Offset
		})
	}

	var out []lint.Finding

	// Pass 2: plain accesses to tracked locations.
	eachFunc(m, func(p *lint.Package, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if skip[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := m.Info.Selections[n]
				if !ok {
					return true
				}
				obj := sel.Obj()
				sites, tracked := uses[obj]
				if !tracked {
					return true
				}
				if modgraph.LocalTo(m, n.X, fd) {
					return true // construction before publication
				}
				out = append(out, plainAccessFinding(p, n.Pos(), obj, sites))
				return true
			case *ast.Ident:
				obj := m.Info.Uses[n]
				sites, tracked := uses[obj]
				if !tracked {
					return true
				}
				if v, ok := obj.(*types.Var); !ok || v.IsField() {
					return true // field idents are covered via their selector
				}
				out = append(out, plainAccessFinding(p, n.Pos(), obj, sites))
			}
			return true
		})
	})

	// Alignment: 64-bit function-style atomic fields under 32-bit layout.
	sizes32 := types.SizesFor("gc", "386")
	for _, obj := range order {
		st := strukt[obj]
		if st == nil || sizes32 == nil {
			continue
		}
		any64 := false
		for _, u := range uses[obj] {
			any64 = any64 || u.width64
		}
		if !any64 {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		idx := -1
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
			if fields[i] == obj {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		off := sizes32.Offsetsof(fields)[idx]
		if off%8 == 0 {
			continue
		}
		out = append(out, lint.Finding{
			Pos:  m.Position(obj.Pos()),
			Rule: "atomicfield",
			Msg: fmt.Sprintf("64-bit atomic field %s sits at offset %d under 32-bit layout and is not 8-byte aligned; move it to the front of the struct or use atomic.Int64, which guarantees alignment",
				obj.Name(), off),
		})
	}
	_ = sup
	return out
}

// atomicTarget resolves the address argument of a function-style atomic
// call to the field or package-level variable it touches. It returns the
// object, the owning struct for fields, and the operand node to exempt
// from the plain-access pass.
func atomicTarget(m *modgraph.Module, call *ast.CallExpr) (types.Object, *types.Struct, ast.Node) {
	if len(call.Args) == 0 {
		return nil, nil, nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil, nil
	}
	switch opnd := ast.Unparen(un.X).(type) {
	case *ast.SelectorExpr:
		sel, ok := m.Info.Selections[opnd]
		if !ok {
			return nil, nil, nil
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return nil, nil, nil
		}
		recv := sel.Recv()
		if ptr, ok := recv.Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		owner, _ := recv.Underlying().(*types.Struct)
		return v, owner, opnd
	case *ast.Ident:
		v, ok := m.Info.Uses[opnd].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent().Parent() != types.Universe {
			return nil, nil, nil
		}
		return v, nil, opnd
	}
	return nil, nil, nil
}

func plainAccessFinding(p *lint.Package, pos token.Pos, obj types.Object, sites []atomicUse) lint.Finding {
	first := sites[0]
	return lint.Finding{
		Pos:  p.Fset.Position(pos),
		Rule: "atomicfield",
		Msg: fmt.Sprintf("%s is accessed plainly here but atomically at %s:%d (atomic.%s); every access to an atomic location must go through sync/atomic",
			obj.Name(), modgraph.BaseName(first.pos.Filename), first.pos.Line, first.fn),
	}
}

// eachFunc applies f to every function declaration with a body in the
// module's non-test files.
func eachFunc(m *modgraph.Module, f func(*lint.Package, *ast.FuncDecl)) {
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					f(p, fd)
				}
			}
		}
	}
}
