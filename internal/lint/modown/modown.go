// Package modown is modlint's whole-program ownership auditor — the third
// sibling on the internal/lint/modgraph substrate, after moddet
// (determinism) and modsafe (soundness). The PR 8/9 hot path leans on
// recycled buffer pools, lock-free atomic state, and zero-copy CoW
// windows; each buys performance by sharing memory, and each turns a
// missed hand-off into a silent integrity misverdict rather than a crash.
// modown checks the three disciplines statically:
//
//   - poolflow: values handed out by //modown:pool <kind> get accessors
//     (or raw sync.Pool.Get) are owned until recycled exactly once —
//     use-after-put, double-put, put-of-reslice, escapes into retained
//     structures, and never-recycled leaks are findings; ownership moves
//     only through //modown:transfer or a get-annotated return.
//   - atomicfield: a location accessed through function-style sync/atomic
//     anywhere must be accessed that way everywhere, and 64-bit atomic
//     fields must be 8-byte aligned under 32-bit layout.
//   - aliasfree: buffers from //modown:borrowed zero-copy producers must
//     not be mutated, appended to, recycled, or returned by functions
//     that hide the annotation.
//
// Findings are suppressed like every modlint rule with
// //modlint:ignore <rule> <reason>; suppression of a producer site stops
// its facts from propagating, but never discharges an obligation created
// elsewhere. Malformed //modown: annotations and one-sided pool kinds are
// findings under the "modown" rule. See docs/static-analysis.md.
package modown

import (
	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// Analyzer is the modown module analyzer; create it with New.
type Analyzer struct {
	modulePath string
}

// New returns an analyzer for a module with the given module path (the
// `module` line of its go.mod — see modgraph.ReadModulePath).
func New(modulePath string) *Analyzer {
	return &Analyzer{modulePath: modulePath}
}

// Name identifies the analyzer in driver listings.
func (a *Analyzer) Name() string { return "modown" }

// Doc is the one-line description for -list output.
func (a *Analyzer) Doc() string {
	return "whole-program ownership audit: //modown:pool values recycled exactly once; sync/atomic locations accessed atomically everywhere; //modown:borrowed zero-copy buffers never mutated or recycled"
}

// Rules lists the rule identifiers this analyzer reports under.
func (a *Analyzer) Rules() []string {
	return []string{"poolflow", "atomicfield", "aliasfree", "modown"}
}

// CheckModule type-checks the package set and runs the three passes,
// degrading gracefully on partial type information.
func (a *Analyzer) CheckModule(pkgs []*lint.Package, sup lint.SuppressionSet) []lint.Finding {
	out, _ := a.CheckModuleErrs(pkgs, sup)
	return out
}

// CheckModuleErrs is CheckModule plus the substrate's soft type-check
// errors, so drivers can report partial analysis instead of silently
// under-reporting (lint.RunAllErrs).
func (a *Analyzer) CheckModuleErrs(pkgs []*lint.Package, sup lint.SuppressionSet) ([]lint.Finding, []error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	m := modgraph.TypeCheck(a.modulePath, pkgs)

	ann, out := collectDirectives(m)
	out = append(out, poolFlow(m, ann, sup)...)
	out = append(out, atomicField(m, sup)...)
	out = append(out, aliasFree(m, ann, sup)...)
	return out, m.Errs
}
