package modown_test

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"modchecker/internal/lint"
	"modchecker/internal/lint/moddet"
	"modchecker/internal/lint/modown"
	"modchecker/internal/lint/modsafe"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// fixtureModule is the module path of the testdata fixture tree; modown
// resolves ownmod/... imports against the loaded package set.
const fixtureModule = "ownmod"

func loadFixture(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.LoadModule(token.NewFileSet(), filepath.Join("testdata", fixtureModule))
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) < 4 {
		t.Fatalf("fixture module loaded only %d packages", len(pkgs))
	}
	return pkgs
}

func runFixture(t *testing.T) []lint.Finding {
	t.Helper()
	pkgs := loadFixture(t)
	return lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{modown.New(fixtureModule)})
}

// wantRE mirrors the moddet/modsafe fixture convention:
//
//	// want <rule> "message substring"
//	// want <rule> 'message substring'
var wantRE = regexp.MustCompile(`want ([a-z-]+)(?:\s+(?:"([^"]*)"|'([^']*)'))?`)

type expectation struct {
	rule   string
	substr string
	met    bool
}

func parseWants(t *testing.T, pkgs []*lint.Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, p := range pkgs {
		for _, sf := range p.Files {
			src, err := os.ReadFile(sf.Path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				if !strings.Contains(line, "want ") {
					continue
				}
				for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", sf.Path, i+1)
					out[key] = append(out[key], &expectation{rule: m[1], substr: m[2] + m[3]})
				}
			}
		}
	}
	return out
}

// TestModownFixtures runs the analyzer over the fixture module and matches
// findings against the // want comments: every want must be hit, no
// finding may be unexplained, and each of the four rules must fire at
// least once — the corpus is the proof that a use-after-put, a plain read
// of an atomic counter, or a mutated zero-copy window is caught.
func TestModownFixtures(t *testing.T) {
	pkgs := loadFixture(t)
	wants := parseWants(t, pkgs)
	findings := lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{modown.New(fixtureModule)})

	perRule := make(map[string]int)
	for _, f := range findings {
		perRule[f.Rule]++
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.rule == f.Rule && strings.Contains(f.Msg, w.substr) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.met {
				t.Errorf("%s: expected [%s] %q, not reported", key, w.rule, w.substr)
			}
		}
	}
	for _, rule := range modown.New(fixtureModule).Rules() {
		if perRule[rule] == 0 {
			t.Errorf("fixture corpus produced no %s finding", rule)
		}
	}
}

// TestModownGolden pins the full diagnostic output over the fixture corpus
// byte for byte: message wording, ordering, path rendering. Regenerate
// deliberately with `go test ./internal/lint/modown -run Golden -update`;
// the CI staleness guard regenerates into MODLINT_GOLDEN_DIR and diffs
// against the committed file.
func TestModownGolden(t *testing.T) {
	var sb strings.Builder
	for _, f := range runFixture(t) {
		fmt.Fprintf(&sb, "%s\n", f)
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", fixtureModule+".golden")
	if dir := os.Getenv("MODLINT_GOLDEN_DIR"); dir != "" {
		goldenPath = filepath.Join(dir, fixtureModule+".golden")
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostic output diverged from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// putInterplaySrc seeds the cross-function suppression hazard: the helper
// suppresses poolflow at its own put line, but the caller's obligation was
// never handed over (helper is not //modown:transfer), so the caller's
// leak must still fire — a //modlint:ignore is a positional filter, never
// a semantic fact that flows to other functions.
const putInterplaySrc = `package interplay

import "sync"

var p = sync.Pool{New: func() any { b := make([]byte, 8); return &b }}

//modown:pool buf get
func getBuf() []byte { bp := p.Get().(*[]byte); return *bp }

//modown:pool buf put
func putBuf(b []byte) { p.Put(&b) }

func helper(b []byte) {
	//modlint:ignore poolflow callee-local waiver for harness buffers
	putBuf(b)
}

func caller() {
	b := getBuf()
	helper(b)
}
`

// TestPutSuppressionDoesNotDischargeCaller runs the satellite scenario:
// exactly one poolflow leak at the caller's get line survives, and the
// suppressed helper contributes nothing.
func TestPutSuppressionDoesNotDischargeCaller(t *testing.T) {
	findings := runInline(t, "interplay", putInterplaySrc)
	var leaks []lint.Finding
	for _, f := range findings {
		if f.Rule != "poolflow" {
			t.Errorf("unexpected non-poolflow finding: %s", f)
			continue
		}
		leaks = append(leaks, f)
	}
	if len(leaks) != 1 || !strings.Contains(leaks[0].Msg, "pool leak") {
		t.Fatalf("expected exactly one pool-leak finding at the caller, got %v", leaks)
	}
	if leaks[0].Pos.Line != 19 {
		t.Errorf("leak reported at line %d, want the caller's get line 19", leaks[0].Pos.Line)
	}
}

// TestSuppressedGetPropagatesNoFacts is the other direction: ignoring
// poolflow at the get site silences every downstream fact from that
// obligation (no use-after-put, no leak), while an aliasfree violation in
// the same function still fires.
func TestSuppressedGetPropagatesNoFacts(t *testing.T) {
	src := `package interplay2

import "sync"

var p = sync.Pool{New: func() any { b := make([]byte, 8); return &b }}

var window = make([]byte, 64)

//modown:pool buf get
func getBuf() []byte { bp := p.Get().(*[]byte); return *bp }

//modown:pool buf put
func putBuf(b []byte) { p.Put(&b) }

//modown:borrowed
func view() []byte { return window }

func f() {
	//modlint:ignore poolflow harness-owned buffer
	b := getBuf()
	putBuf(b)
	putBuf(b)
	w := view()
	w[0] = 1
}
`
	findings := runInline(t, "interplay2", src)
	sawMutation := false
	for _, f := range findings {
		switch f.Rule {
		case "poolflow":
			t.Errorf("suppressed get site still propagated a fact: %s", f)
		case "aliasfree":
			sawMutation = true
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !sawMutation {
		t.Error("aliasfree mutation was swallowed by a poolflow suppression")
	}
}

// runInline type-checks a single synthetic source file through the full
// RunAll pipeline, as the interplay tests in moddet and modsafe do.
func runInline(t *testing.T, name, src string) []lint.Finding {
	t.Helper()
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, name+".go", src,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	p := &lint.Package{
		Name:  name,
		Dir:   name,
		Fset:  fset,
		Files: []*lint.SourceFile{{Path: name + ".go", AST: af}},
	}
	return lint.RunAll([]*lint.Package{p}, nil,
		[]lint.ModuleAnalyzer{modown.New(name)})
}

// TestRunAllErrsSeparatesFindingsFromErrors loads the deliberately broken
// fixture module: the good package carries a real atomicfield defect, the
// bad package does not type-check. Findings and substrate errors must both
// surface — before RunAllErrs, the type-check failure could silently mask
// every finding from the healthy packages.
func TestRunAllErrsSeparatesFindingsFromErrors(t *testing.T) {
	pkgs, err := lint.LoadModule(token.NewFileSet(), filepath.Join("testdata", "brokenmod"))
	if err != nil {
		t.Fatalf("loading broken fixture module: %v", err)
	}
	findings, errs := lint.RunAllErrs(pkgs, nil,
		[]lint.ModuleAnalyzer{modown.New("brokenmod")})

	sawAtomic := false
	for _, f := range findings {
		if f.Rule == "atomicfield" && strings.Contains(f.Msg, "accessed plainly here") {
			sawAtomic = true
		}
	}
	if !sawAtomic {
		t.Errorf("healthy package's atomicfield finding was masked; findings: %v", findings)
	}
	if len(errs) == 0 {
		t.Error("type-check failure in the broken package surfaced no substrate error")
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), "bad") && !strings.Contains(e.Error(), "undefined") {
			t.Errorf("unexpected substrate error: %v", e)
		}
	}

	// The error-dropping wrapper still reports the findings.
	if got := lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{modown.New("brokenmod")}); len(got) != len(findings) {
		t.Errorf("RunAll returned %d findings, RunAllErrs %d", len(got), len(findings))
	}
}

// TestRepoIsCleanModown runs the whole-program ownership audit over the
// real module: the annotated pool accessors, transfer sinks, and borrowed
// producers must stay clean. A legitimate exception needs a
// //modlint:ignore directive with a reason.
func TestRepoIsCleanModown(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	pkgs, err := lint.LoadModule(token.NewFileSet(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	// The full analyzer set rides along so ignore directives naming
	// per-package, moddet, or modsafe rules resolve, exactly as cmd/modlint
	// runs.
	modulePath := moddet.ReadModulePath(root)
	mods := []lint.ModuleAnalyzer{moddet.New(modulePath), modsafe.New(modulePath), modown.New(modulePath)}
	for _, f := range lint.RunAll(pkgs, lint.Analyzers(), mods) {
		switch f.Rule {
		case "poolflow", "atomicfield", "aliasfree", "modown":
			t.Errorf("%s", f)
		}
	}
}

// FuzzModown feeds arbitrary parseable Go through the whole analyzer:
// partial type information, directive soup, pathological pool flows —
// none of it may panic. Seeds are the fixture corpus plus shapes that
// stress each pass.
func FuzzModown(f *testing.F) {
	_ = filepath.Walk("testdata", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if src, err := os.ReadFile(path); err == nil {
			f.Add(string(src))
		}
		return nil
	})
	f.Add("package p\nfunc f() {}\n")
	f.Add("package p\nimport \"sync\"\nvar p sync.Pool\nfunc f() { b := p.Get(); p.Put(b); p.Put(b) }\n")
	f.Add("package p\n//modown:pool buf get\nfunc G() []byte { return nil }\n")
	f.Add("package p\n//modown:borrowed\nfunc V() []byte { return nil }\nfunc f() { V()[0] = 1 }\n")
	f.Add("package p\nimport \"sync/atomic\"\nvar n int64\nfunc f() { atomic.AddInt64(&n, 1); n = 2 }\n")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		af, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		p := &lint.Package{
			Name:  "fuzz",
			Dir:   "fuzz",
			Fset:  fset,
			Files: []*lint.SourceFile{{Path: "fuzz.go", AST: af}},
		}
		lint.RunAll([]*lint.Package{p}, nil, []lint.ModuleAnalyzer{modown.New("fuzzmod")})
	})
}
