package modown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// poolflow is the ownership pass: calling a //modown:pool <kind> get
// accessor (or sync.Pool.Get directly, outside an annotated accessor)
// creates an obligation on the result. The pass walks each function body
// forward, branch by branch, tracking which local variables alias the
// pooled value, and reports
//
//   - use-after-put: any use of an alias after the value was recycled,
//   - double-put: recycling the same variable twice on one path (a defer
//     of the put counts — the defer still runs),
//   - put-of-reslice: handing the pool a reslice of the original
//     allocation, so the pool's length/capacity bookkeeping is silently
//     wrong,
//   - pooled-escape: storing the value in a field, a package-level
//     variable, a returned closure or composite, or returning it from a
//     function that is not itself annotated get for the kind,
//   - leak: an obligation that no path ever recycles, transfers, or
//     returns under a get annotation.
//
// The analysis is deliberately local-plus-annotations: passing a pooled
// value as a plain argument is borrowing and creates no obligation in the
// callee; ownership moves only through //modown:transfer. Double-put and
// use-after-put are tracked per variable, not per allocation, so a put
// through a second alias of the same value is not flagged — the fixture
// corpus documents the limitation.

// poolKind identifies a pool: an annotated kind name, or the identity of a
// raw sync.Pool variable.
type poolKind struct {
	name string       // display name ("fetch-buf", or the pool variable name)
	obj  types.Object // non-nil for raw sync.Pool tracking
}

// obligation is one pooled value handed out at one call site.
type obligation struct {
	kind       poolKind
	pos        token.Pos // the get call site
	src        string    // rendering of the producing call for messages
	aliases    map[types.Object]bool
	discharged bool // some path put, transferred, or returned it
	reported   bool // an escape finding already covers it
}

// binding is one variable's view of an obligation on one path.
type binding struct {
	ob          *obligation
	released    bool // recycled earlier on this path
	deferred    bool // recycling registered via defer (runs at exit)
	transferred bool // ownership moved to a //modown:transfer callee
	relLine     int
}

// pathState maps in-scope variables to their bindings; branches walk
// clones and re-merge.
type pathState map[types.Object]binding

func clonePath(st pathState) pathState {
	out := make(pathState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergePaths joins the fall-through states of two branches in place into a:
// released/deferred/transferred are may-facts (union).
func mergePaths(a, b pathState) pathState {
	for obj, bb := range b {
		ab, ok := a[obj]
		if !ok {
			a[obj] = bb
			continue
		}
		if bb.released && !ab.released {
			ab.released, ab.relLine = true, bb.relLine
		}
		ab.deferred = ab.deferred || bb.deferred
		ab.transferred = ab.transferred || bb.transferred
		a[obj] = ab
	}
	return a
}

// poolFlow runs the ownership pass over every function in the module.
func poolFlow(m *modgraph.Module, ann *annotations, sup lint.SuppressionSet) []lint.Finding {
	var out []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkFunc(m, ann, sup, p, fd)...)
			}
		}
	}
	return out
}

type pfWalker struct {
	m   *modgraph.Module
	ann *annotations
	sup lint.SuppressionSet
	pkg *lint.Package
	fd  *ast.FuncDecl
	// accessor marks the body of an annotated pool accessor: its raw
	// sync.Pool traffic is the contract's implementation, not tracked.
	accessor bool
	// getKinds / transferKinds are the kinds the enclosing function is
	// annotated get / transfer for (discharge-by-return, store-as-owner).
	getKinds      map[string]bool
	transferKinds map[string]bool
	obs           map[token.Pos]*obligation
	order         []*obligation
	deferredLits  []*ast.FuncLit
	findings      []lint.Finding
	seen          map[string]bool // (pos|rule) dedup across loop re-walks
	litDepth      int             // >0 while walking a function literal body
}

func checkFunc(m *modgraph.Module, ann *annotations, sup lint.SuppressionSet, p *lint.Package, fd *ast.FuncDecl) []lint.Finding {
	w := &pfWalker{
		m: m, ann: ann, sup: sup, pkg: p, fd: fd,
		accessor:      ann.annotated[fd],
		getKinds:      make(map[string]bool),
		transferKinds: make(map[string]bool),
		obs:           make(map[token.Pos]*obligation),
		seen:          make(map[string]bool),
	}
	if fn, _ := m.Info.Defs[fd.Name].(*types.Func); fn != nil {
		if d := ann.poolGet[fn]; d != nil {
			w.getKinds[d.kind] = true
		}
		if d := ann.transfer[fn]; d != nil {
			w.transferKinds[d.kind] = true
		}
	}
	st := make(pathState)
	w.stmts(fd.Body.List, st)
	for _, lit := range w.deferredLits {
		w.postDischarge(lit)
	}
	// Leak check: weak by design (modsafe releasetrack owns path-sensitive
	// must-release) — flag only obligations no path discharges at all.
	for _, ob := range w.order {
		if ob.discharged || ob.reported {
			continue
		}
		w.report(ob.pos, fmt.Sprintf("pooled %s value from %s is never recycled, transferred, or returned under a get annotation (pool leak)", ob.kind.name, ob.src))
	}
	return w.findings
}

func (w *pfWalker) report(pos token.Pos, msg string) {
	position := w.pkg.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%d", position.Filename, position.Line, position.Column)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.findings = append(w.findings, lint.Finding{Pos: position, Rule: "poolflow", Msg: msg})
}

func (w *pfWalker) line(pos token.Pos) int { return w.pkg.Fset.Position(pos).Line }

// --- call classification -------------------------------------------------

// calleeDirective resolves call's callee through the annotation maps
// (direct or via a module interface method).
func calleeDirective(m *modgraph.Module, dm map[*types.Func]*directive, call *ast.CallExpr) *directive {
	fn := m.CalleeOf(call)
	if fn == nil {
		return nil
	}
	return dm[fn]
}

// rawPool matches a direct (*sync.Pool).Get/Put method call and returns
// the pool variable's identity.
func (w *pfWalker) rawPool(call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := w.m.CalleeOf(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Get" && fn.Name() != "Put" {
		return nil, ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return nil, ""
	}
	base := modgraph.BaseIdent(sel.X)
	if base == nil {
		return nil, ""
	}
	obj := w.m.ObjOf(base)
	if obj == nil {
		return nil, ""
	}
	return obj, fn.Name()
}

// getCall classifies a call as a pooled-value producer.
func (w *pfWalker) getCall(call *ast.CallExpr) (poolKind, string, bool) {
	if d := calleeDirective(w.m, w.ann.poolGet, call); d != nil {
		return poolKind{name: d.kind}, d.fn.Name(), true
	}
	if w.accessor {
		return poolKind{}, "", false
	}
	if obj, role := w.rawPool(call); obj != nil && role == "Get" {
		return poolKind{name: obj.Name(), obj: obj}, obj.Name() + ".Get", true
	}
	return poolKind{}, "", false
}

// putCall classifies a call as a pooled-value recycler.
func (w *pfWalker) putCall(call *ast.CallExpr) (poolKind, bool) {
	if d := calleeDirective(w.m, w.ann.poolPut, call); d != nil {
		return poolKind{name: d.kind}, true
	}
	if w.accessor {
		return poolKind{}, false
	}
	if obj, role := w.rawPool(call); obj != nil && role == "Put" {
		return poolKind{name: obj.Name(), obj: obj}, true
	}
	return poolKind{}, false
}

// --- statement walk ------------------------------------------------------

// stmts walks a statement list, returning the fall-through state and
// whether every path terminated (return/panic/branch).
func (w *pfWalker) stmts(list []ast.Stmt, st pathState) (pathState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *pfWalker) stmt(s ast.Stmt, st pathState) (pathState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, st)
	case *ast.DeclStmt:
		w.declStmt(s, st)
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.DeferStmt:
		w.deferCall(s.Call, st)
	case *ast.GoStmt:
		w.asyncCall(s.Call, st)
	case *ast.ReturnStmt:
		w.returnStmt(s, st)
		return st, true
	case *ast.BranchStmt:
		return st, s.Tok != token.GOTO // goto falls through conservatively
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		return w.loopBody(s.Body, postStmt(s), st, nil), false
	case *ast.RangeStmt:
		w.expr(s.X, st)
		// The range variable rebinds fresh from the container on every
		// iteration, so the rebind runs per body pass — a put on the
		// previous iteration's value is not a double-put on this one's.
		return w.loopBody(s.Body, nil, st, func(ps pathState) { w.bindRange(s, ps) }), false
	case *ast.SwitchStmt:
		return w.switchStmt(s.Init, s.Tag, s.Body, st)
	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		if as, ok := s.Assign.(*ast.ExprStmt); ok {
			tag = as.X
		}
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			tag = as.Rhs[0]
		}
		return w.switchStmt(s.Init, tag, s.Body, st)
	case *ast.SelectStmt:
		return w.selectStmt(s, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	}
	return st, false
}

func postStmt(s *ast.ForStmt) []ast.Stmt {
	if s.Post == nil {
		return nil
	}
	return []ast.Stmt{s.Post}
}

// loopBody walks a loop body twice — once from the entry state and once
// from the merged entry/exit state — so loop-carried use-after-put and
// double-put surface; findings deduplicate by position. The pre hook runs
// before each pass for per-iteration rebinding (range variables).
func (w *pfWalker) loopBody(body *ast.BlockStmt, post []ast.Stmt, st pathState, pre func(pathState)) pathState {
	list := append(append([]ast.Stmt(nil), body.List...), post...)
	entry := clonePath(st)
	if pre != nil {
		pre(entry)
	}
	first, term := w.stmts(list, entry)
	if !term {
		mergePaths(st, first)
	}
	again := clonePath(st)
	if pre != nil {
		pre(again)
	}
	second, term2 := w.stmts(list, again)
	if !term2 {
		mergePaths(st, second)
	}
	return st
}

// bindRange aliases the range value variable when ranging over a
// container that aliases an obligation (for _, f := range fetches).
func (w *pfWalker) bindRange(s *ast.RangeStmt, st pathState) {
	base := modgraph.BaseIdent(s.X)
	if base == nil {
		return
	}
	obj := w.m.ObjOf(base)
	b, ok := st[obj]
	if !ok {
		return
	}
	if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
		if vo := w.m.ObjOf(id); vo != nil {
			st[vo] = binding{ob: b.ob, released: b.released, relLine: b.relLine}
		}
	}
}

func (w *pfWalker) ifStmt(s *ast.IfStmt, st pathState) (pathState, bool) {
	if s.Init != nil {
		st, _ = w.stmt(s.Init, st)
	}
	w.expr(s.Cond, st)
	thenSt, thenTerm := w.stmts(s.Body.List, clonePath(st))
	elseSt, elseTerm := clonePath(st), false
	if s.Else != nil {
		elseSt, elseTerm = w.stmt(s.Else, elseSt)
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return mergePaths(thenSt, elseSt), false
	}
}

func (w *pfWalker) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, st pathState) (pathState, bool) {
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	if tag != nil {
		w.expr(tag, st)
	}
	var merged pathState
	allTerm, sawDefault, any := true, false, false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		any = true
		if cc.List == nil {
			sawDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, st)
		}
		bs, term := w.stmts(cc.Body, clonePath(st))
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = bs
		} else {
			mergePaths(merged, bs)
		}
	}
	if !any {
		return st, false
	}
	if !sawDefault { // no default: the zero-case falls through unchanged
		if merged == nil {
			merged = st
		} else {
			mergePaths(merged, st)
		}
		return merged, false
	}
	if allTerm {
		return st, true
	}
	return merged, false
}

func (w *pfWalker) selectStmt(s *ast.SelectStmt, st pathState) (pathState, bool) {
	var merged pathState
	allTerm := true
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		branch := clonePath(st)
		if cc.Comm != nil {
			branch, _ = w.stmt(cc.Comm, branch)
		}
		bs, term := w.stmts(cc.Body, branch)
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = bs
		} else {
			mergePaths(merged, bs)
		}
	}
	if merged == nil {
		return st, allTerm && len(s.Body.List) > 0
	}
	return merged, false
}

// --- assignments ---------------------------------------------------------

func (w *pfWalker) declStmt(s *ast.DeclStmt, st pathState) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				w.assignPair(name, vs.Values[i], st, true)
			}
		}
	}
}

func (w *pfWalker) assign(s *ast.AssignStmt, st pathState) {
	define := s.Tok == token.DEFINE
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			w.assignPair(s.Lhs[i], s.Rhs[i], st, define)
		}
		return
	}
	// Tuple assignment: one call, many results.
	if len(s.Rhs) == 1 {
		w.assignTuple(s.Lhs, s.Rhs[0], st, define)
	}
}

// assignTuple handles x, err := produce(): only pointer/slice-typed LHS
// results bind to the obligation — error and counter results are not
// pooled values and must not alias it.
func (w *pfWalker) assignTuple(lhs []ast.Expr, rhs ast.Expr, st pathState, define bool) {
	if kind, src, ok := w.creation(rhs, st); ok {
		ob := w.obtain(rhs, kind, src)
		for _, l := range lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				if obj := w.m.ObjOf(id); obj != nil && !isViewType(obj.Type()) {
					continue
				}
			}
			w.bindLHS(l, ob, binding{ob: ob}, st)
		}
		return
	}
	w.expr(rhs, st)
	for _, l := range lhs {
		w.clearLHS(l, st)
	}
	_ = define
}

func (w *pfWalker) assignPair(lhs, rhs ast.Expr, st pathState, define bool) {
	// Creation: rhs is a get call (possibly behind a type assertion).
	if kind, src, ok := w.creation(rhs, st); ok {
		ob := w.obtain(rhs, kind, src)
		w.bindLHS(lhs, ob, binding{ob: ob}, st)
		return
	}
	// Alias: rhs reaches an obligated variable.
	if b, ok := w.aliasOf(rhs, st); ok {
		if b.released {
			w.report(rhs.Pos(), fmt.Sprintf("pooled %s value used after being recycled (recycled at line %d)", b.ob.kind.name, b.relLine))
		}
		w.bindLHS(lhs, b.ob, b, st)
		return
	}
	w.expr(rhs, st)
	w.clearLHS(lhs, st)
	_ = define
}

// creation reports whether rhs produces a fresh pooled value.
func (w *pfWalker) creation(rhs ast.Expr, st pathState) (poolKind, string, bool) {
	call, ok := unwrapCall(rhs)
	if !ok {
		return poolKind{}, "", false
	}
	kind, src, ok := w.getCall(call)
	if !ok {
		return poolKind{}, "", false
	}
	// A suppressed get site propagates no facts.
	pos := w.pkg.Fset.Position(call.Pos())
	if w.sup.Suppressed(pos.Filename, pos.Line, "poolflow") {
		w.argUses(call, st)
		return poolKind{}, "", false
	}
	w.argUses(call, st)
	return kind, src, true
}

func unwrapCall(e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			call, ok := e.(*ast.CallExpr)
			return call, ok
		}
	}
}

func (w *pfWalker) obtain(rhs ast.Expr, kind poolKind, src string) *obligation {
	call, _ := unwrapCall(rhs)
	if ob, ok := w.obs[call.Pos()]; ok {
		return ob // loop re-walk: same call site, same obligation
	}
	ob := &obligation{kind: kind, pos: call.Pos(), src: src, aliases: make(map[types.Object]bool)}
	w.obs[call.Pos()] = ob
	w.order = append(w.order, ob)
	return ob
}

// bindLHS records lhs as an alias of ob, or reports an escape when the
// target outlives the function (field, package-level variable).
func (w *pfWalker) bindLHS(lhs ast.Expr, ob *obligation, b binding, st pathState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return // discarded: the leak check will flag it if never recycled
		}
		obj := w.m.ObjOf(l)
		if obj == nil {
			return
		}
		if w.isPackageLevel(obj) {
			w.escape(lhs.Pos(), ob, fmt.Sprintf("pooled %s value stored in package-level variable %s; a recycled buffer must not outlive the sweep", ob.kind.name, l.Name))
			return
		}
		st[obj] = b
		ob.aliases[obj] = true
	case *ast.IndexExpr:
		base := modgraph.BaseIdent(l.X)
		if base == nil {
			return
		}
		obj := w.m.ObjOf(base)
		if obj == nil {
			return
		}
		if w.isPackageLevel(obj) || isSelectorBased(l.X) {
			w.escape(lhs.Pos(), ob, fmt.Sprintf("pooled %s value stored in retained container %s; move ownership with //modown:transfer", ob.kind.name, render(l.X)))
			return
		}
		// Element of a local container: the container aliases the value.
		if _, tracked := st[obj]; !tracked {
			st[obj] = binding{ob: ob}
		}
		ob.aliases[obj] = true
	case *ast.SelectorExpr:
		if len(w.transferKinds) > 0 && w.transferKinds[ob.kind.name] {
			ob.discharged = true // the annotated owner storing it is the transfer's other half
			return
		}
		w.escape(lhs.Pos(), ob, fmt.Sprintf("pooled %s value stored in field %s; a recycled buffer must not outlive its owner (move ownership with //modown:transfer)", ob.kind.name, render(l)))
	case *ast.StarExpr:
		w.expr(l.X, st)
	}
}

func (w *pfWalker) escape(pos token.Pos, ob *obligation, msg string) {
	ob.reported = true
	w.report(pos, msg)
}

// clearLHS drops bindings overwritten by untracked values; writes through
// an index or deref are uses of the base (b[0] = x after a put is a
// use-after-put).
func (w *pfWalker) clearLHS(lhs ast.Expr, st pathState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := w.m.ObjOf(l); obj != nil {
			delete(st, obj)
		}
	case *ast.IndexExpr:
		w.expr(l.X, st)
		w.expr(l.Index, st)
	case *ast.StarExpr:
		w.expr(l.X, st)
	case *ast.SelectorExpr:
		w.expr(l.X, st)
	}
}

// aliasOf resolves an expression to an existing binding: an ident, a
// reslice/deref of one, or a composite/closure capturing one.
func (w *pfWalker) aliasOf(e ast.Expr, st pathState) (binding, bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.m.ObjOf(t); obj != nil {
			b, ok := st[obj]
			return b, ok
		}
	case *ast.SliceExpr:
		return w.aliasOf(t.X, st)
	case *ast.StarExpr:
		return w.aliasOf(t.X, st)
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			return w.aliasOf(t.X, st)
		}
	case *ast.CallExpr:
		// append(local, pooled...) propagates the obligation to the result.
		if id, ok := t.Fun.(*ast.Ident); ok && id.Name == "append" && len(t.Args) > 0 {
			for _, a := range t.Args[1:] {
				if b, ok := w.aliasOf(a, st); ok {
					return b, true
				}
			}
			return w.aliasOf(t.Args[0], st)
		}
	case *ast.CompositeLit:
		if b, ok := w.capturedBinding(t, st); ok {
			return b, true
		}
	case *ast.FuncLit:
		// Walk the closure body inline (synchronous-call assumption), then
		// treat the closure value as an alias of anything it captures.
		w.stmtsInLit(t.Body.List, st)
		if b, ok := w.capturedBinding(t, st); ok {
			return b, true
		}
	}
	return binding{}, false
}

// capturedBinding finds a tracked variable referenced anywhere inside a
// composite literal or closure. Composite literals capture only bare
// identifiers: Result{Name: pf.target.Name} copies a scalar part out of
// the tracked record and does not alias it, while Result{buf: pf} retains
// the record itself. Closures capture through any reference — a field
// read inside the closure body keeps the variable alive.
func (w *pfWalker) capturedBinding(n ast.Node, st pathState) (binding, bool) {
	skip := make(map[*ast.Ident]bool)
	if _, isComposite := n.(*ast.CompositeLit); isComposite {
		ast.Inspect(n, func(nd ast.Node) bool {
			if sel, is := nd.(*ast.SelectorExpr); is {
				if id, is := ast.Unparen(sel.X).(*ast.Ident); is {
					skip[id] = true
				}
			}
			return true
		})
	}
	var found binding
	ok := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if ok {
			return false
		}
		id, isID := nd.(*ast.Ident)
		if !isID || skip[id] {
			return true
		}
		if obj := w.m.ObjOf(id); obj != nil {
			if b, tracked := st[obj]; tracked {
				found, ok = b, true
				return false
			}
		}
		return true
	})
	return found, ok
}

func (w *pfWalker) isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return true // fields and non-vars never hold a local binding
	}
	if w.fd.Body == nil {
		return false
	}
	return obj.Pos() < w.fd.Pos() || obj.Pos() >= w.fd.End()
}

func isSelectorBased(e ast.Expr) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return true
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return false
		}
	}
}

func render(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return render(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return render(t.X) + "[...]"
	case *ast.StarExpr:
		return "*" + render(t.X)
	case *ast.CallExpr:
		return render(t.Fun) + "(...)"
	}
	return "expression"
}

// --- returns -------------------------------------------------------------

func (w *pfWalker) returnStmt(s *ast.ReturnStmt, st pathState) {
	if w.litDepth > 0 {
		// A return inside a function literal leaves the literal, not the
		// declaration under analysis; only check uses.
		for _, r := range s.Results {
			w.expr(r, st)
		}
		return
	}
	fnName := w.fd.Name.Name
	for _, r := range s.Results {
		// return getBuf(n) directly: the obligation lives exactly as long
		// as the return expression.
		if kind, src, ok := w.creation(r, st); ok {
			ob := w.obtain(r, kind, src)
			if kind.obj == nil && w.getKinds[kind.name] {
				ob.discharged = true
				continue
			}
			w.escape(r.Pos(), ob, fmt.Sprintf("pooled %s value returned by %s, which is not annotated //modown:pool %s get — the caller cannot see the recycling obligation", kind.name, fnName, kind.name))
			continue
		}
		b, ok := w.aliasOf(r, st)
		if !ok {
			w.expr(r, st)
			continue
		}
		ob := b.ob
		if b.released {
			w.report(r.Pos(), fmt.Sprintf("pooled %s value returned after being recycled at line %d", ob.kind.name, b.relLine))
			continue
		}
		if ob.kind.obj == nil && w.getKinds[ob.kind.name] {
			ob.discharged = true // ownership transfers to the caller
			continue
		}
		w.escape(r.Pos(), ob, fmt.Sprintf("pooled %s value returned by %s, which is not annotated //modown:pool %s get — the caller cannot see the recycling obligation", ob.kind.name, fnName, ob.kind.name))
	}
}

// --- calls and uses ------------------------------------------------------

// expr processes an expression for uses, puts, transfers, and inline
// closures.
func (w *pfWalker) expr(e ast.Expr, st pathState) {
	if e == nil {
		return
	}
	switch t := e.(type) {
	case *ast.CallExpr:
		if kind, ok := w.putCall(t); ok {
			w.put(t, kind, st, false)
			return
		}
		if d := calleeDirective(w.m, w.ann.transfer, t); d != nil {
			w.transferCall(t, d.kind, st)
			return
		}
		if kind, src, ok := w.getCall(t); ok {
			// A get whose result is dropped is an immediate leak candidate.
			pos := w.pkg.Fset.Position(t.Pos())
			if !w.sup.Suppressed(pos.Filename, pos.Line, "poolflow") {
				w.obtain(t, kind, src)
			}
			w.argUses(t, st)
			return
		}
		w.expr(t.Fun, st)
		w.argUses(t, st)
	case *ast.FuncLit:
		w.stmtsInLit(t.Body.List, st)
	case *ast.Ident:
		if obj := w.m.ObjOf(t); obj != nil {
			if b, ok := st[obj]; ok && b.released {
				w.report(t.Pos(), fmt.Sprintf("pooled %s value used after being recycled (recycled at line %d)", b.ob.kind.name, b.relLine))
			}
		}
	case *ast.ParenExpr:
		w.expr(t.X, st)
	case *ast.SelectorExpr:
		w.expr(t.X, st)
	case *ast.IndexExpr:
		w.expr(t.X, st)
		w.expr(t.Index, st)
	case *ast.IndexListExpr:
		w.expr(t.X, st)
	case *ast.SliceExpr:
		w.expr(t.X, st)
		w.expr(t.Low, st)
		w.expr(t.High, st)
		w.expr(t.Max, st)
	case *ast.StarExpr:
		w.expr(t.X, st)
	case *ast.UnaryExpr:
		w.expr(t.X, st)
	case *ast.BinaryExpr:
		w.expr(t.X, st)
		w.expr(t.Y, st)
	case *ast.TypeAssertExpr:
		w.expr(t.X, st)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			w.expr(el, st)
		}
	case *ast.KeyValueExpr:
		w.expr(t.Key, st)
		w.expr(t.Value, st)
	}
}

func (w *pfWalker) argUses(call *ast.CallExpr, st pathState) {
	for _, a := range call.Args {
		w.expr(a, st)
	}
}

func (w *pfWalker) stmtsInLit(list []ast.Stmt, st pathState) {
	w.litDepth++
	w.stmts(list, st)
	w.litDepth--
}

// put processes one recycling call.
func (w *pfWalker) put(call *ast.CallExpr, kind poolKind, st pathState, isDefer bool) {
	for _, arg := range call.Args {
		a := ast.Unparen(arg)
		if sl, ok := a.(*ast.SliceExpr); ok {
			if b, tracked := w.aliasOf(sl.X, st); tracked && b.ob.kind == kind {
				w.report(arg.Pos(), fmt.Sprintf("recycling a reslice of a pooled %s value; the pool must get back the original allocation, not a sub-slice view", kind.name))
				w.markReleased(sl.X, b, st, isDefer, call.Pos())
				b.ob.discharged = true
				continue
			}
			w.expr(sl, st)
			continue
		}
		if id := baseAssignable(a); id != nil {
			obj := w.m.ObjOf(id)
			if obj == nil {
				continue
			}
			b, tracked := st[obj]
			if !tracked {
				continue
			}
			if b.ob.kind != kind {
				w.report(arg.Pos(), fmt.Sprintf("pooled %s value recycled into the %s pool; buffers must go back to the pool that issued them", b.ob.kind.name, kind.name))
				b.ob.discharged = true
				continue
			}
			switch {
			case b.transferred:
				w.report(arg.Pos(), fmt.Sprintf("pooled %s value recycled after its ownership was transferred; the new owner recycles it", kind.name))
			case b.released || b.deferred:
				w.report(arg.Pos(), fmt.Sprintf("pooled %s value recycled again (already recycled at line %d)", kind.name, b.relLine))
			}
			if isDefer {
				b.deferred = true
			} else {
				b.released = true
			}
			b.relLine = w.line(call.Pos())
			st[obj] = b
			b.ob.discharged = true
			continue
		}
		// Element or field of a tracked container: discharges the
		// obligation without per-variable state (elements are untracked).
		if b, tracked := w.aliasOf(a, st); tracked && b.ob.kind == kind {
			b.ob.discharged = true
			continue
		}
		w.expr(a, st)
	}
}

// baseAssignable returns the ident a put argument resolves to when it is
// the pooled variable itself (through deref/address-of).
func baseAssignable(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return nil
			}
			e = t.X
		default:
			return nil
		}
	}
}

func (w *pfWalker) markReleased(e ast.Expr, b binding, st pathState, isDefer bool, at token.Pos) {
	id := baseAssignable(e)
	if id == nil {
		return
	}
	obj := w.m.ObjOf(id)
	if obj == nil {
		return
	}
	if isDefer {
		b.deferred = true
	} else {
		b.released = true
	}
	b.relLine = w.line(at)
	st[obj] = b
}

func (w *pfWalker) transferCall(call *ast.CallExpr, kind string, st pathState) {
	for _, arg := range call.Args {
		if b, ok := w.aliasOf(arg, st); ok && b.ob.kind.obj == nil && b.ob.kind.name == kind {
			b.ob.discharged = true
			if id := baseAssignable(ast.Unparen(arg)); id != nil {
				if obj := w.m.ObjOf(id); obj != nil {
					b.transferred = true
					st[obj] = b
				}
			}
			continue
		}
		w.expr(arg, st)
	}
}

// deferCall handles defer put(x) (a discharge that runs at exit: later
// uses are fine, a second put is not) and defers of closures, whose
// recycling is resolved after the walk against the final alias sets.
func (w *pfWalker) deferCall(call *ast.CallExpr, st pathState) {
	if kind, ok := w.putCall(call); ok {
		w.put(call, kind, st, true)
		return
	}
	if d := calleeDirective(w.m, w.ann.transfer, call); d != nil {
		w.transferCall(call, d.kind, st)
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.deferredLits = append(w.deferredLits, lit)
		return
	}
	w.expr(call.Fun, st)
	w.argUses(call, st)
}

// asyncCall handles go statements: the goroutine body is walked on a
// cloned state (its timing is unknown), so discharges count globally but
// path flags stay untouched.
func (w *pfWalker) asyncCall(call *ast.CallExpr, st pathState) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.stmtsInLit(lit.Body.List, clonePath(st))
		return
	}
	if kind, ok := w.putCall(call); ok {
		w.put(call, kind, clonePath(st), false)
		return
	}
	w.expr(call.Fun, st)
	w.argUses(call, st)
}

// postDischarge resolves puts inside deferred closures against the final
// alias sets — a cleanup closure registered before the values it recycles
// exist (defer func() { for _, f := range fetches { release(f) } }())
// still discharges them.
func (w *pfWalker) postDischarge(lit *ast.FuncLit) {
	aliasOb := make(map[types.Object]*obligation)
	for _, ob := range w.order {
		for obj := range ob.aliases {
			aliasOb[obj] = ob
		}
	}
	resolve := func(e ast.Expr) *obligation {
		base := modgraph.BaseIdent(e)
		if base == nil {
			return nil
		}
		if obj := w.m.ObjOf(base); obj != nil {
			return aliasOb[obj]
		}
		return nil
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if ob := resolve(n.X); ob != nil {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if vo := w.m.ObjOf(id); vo != nil {
						aliasOb[vo] = ob
					}
				}
			}
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if ob := resolve(n.Rhs[i]); ob != nil {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if lo := w.m.ObjOf(id); lo != nil {
							aliasOb[lo] = ob
						}
					}
				}
			}
		case *ast.CallExpr:
			kind, isPut := w.putCall(n)
			var transferKind string
			if d := calleeDirective(w.m, w.ann.transfer, n); d != nil {
				transferKind = d.kind
			}
			if !isPut && transferKind == "" {
				return true
			}
			for _, a := range n.Args {
				ob := resolve(a)
				if ob == nil {
					continue
				}
				if isPut && ob.kind == kind || transferKind != "" && ob.kind.obj == nil && ob.kind.name == transferKind {
					ob.discharged = true
				}
			}
		}
		return true
	})
}
