// Package bad deliberately fails the type-checker: the substrate must
// surface the failure as an error without masking findings elsewhere.
package bad

// Broken calls a function that does not exist anywhere.
func Broken() {
	undefinedSymbol(42)
}
