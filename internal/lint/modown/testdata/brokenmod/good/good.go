// Package good type-checks cleanly and carries one real atomicfield
// defect; its finding must survive the broken sibling package.
package good

import "sync/atomic"

var hits uint64

// Hit bumps the counter atomically.
func Hit() {
	atomic.AddUint64(&hits, 1)
}

// Flush resets it plainly: the seeded defect.
func Flush() {
	hits = 0
}
