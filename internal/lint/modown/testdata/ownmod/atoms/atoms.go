// Package atoms seeds the atomicfield defect classes: locations touched
// by function-style sync/atomic that are also read or written plainly,
// and 64-bit atomic fields misaligned under 32-bit layout.
package atoms

import "sync/atomic"

// Counter mixes plain and atomic access to n; the leading bool also
// pushes n to a 4-byte offset under GOARCH=386.
type Counter struct {
	flag bool
	n    int64 // want atomicfield "not 8-byte aligned"
}

// Bump increments the counter atomically.
func Bump(c *Counter) {
	atomic.AddInt64(&c.n, 1)
}

// Read reads the same field plainly: a data race against Bump.
func Read(c *Counter) int64 {
	return c.n // want atomicfield "accessed plainly here"
}

// NewCounter writes plainly before publication: exempt by construction.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 0
	return c
}

// Aligned keeps its 64-bit field at offset zero and is only accessed
// atomically: clean.
type Aligned struct {
	n    int64
	flag bool
}

// BumpAligned is the only access to Aligned.n.
func BumpAligned(a *Aligned) {
	atomic.AddInt64(&a.n, 1)
}

var hits uint64

// Hit bumps the package-level counter atomically.
func Hit() {
	atomic.AddUint64(&hits, 1)
}

// Flush resets the counter plainly: racy against Hit.
func Flush() {
	hits = 0 // want atomicfield "accessed plainly here"
}

// Typed uses the typed atomics, which are out of scope by design.
type Typed struct {
	n atomic.Int64
}

// BumpTyped and ReadTyped never fire: atomic.Int64 is safe by
// construction.
func BumpTyped(t *Typed) { t.n.Add(1) }

// ReadTyped loads through the typed API.
func ReadTyped(t *Typed) int64 { return t.n.Load() }
