// Package badann exercises //modown: directive hygiene: every malformed
// shape is a finding under the "modown" rule, at the directive line.
package badann

// BadKind uses an uppercase pool kind.
//
//modown:pool Fetch-Buf get // want modown "must be lowercase kebab-case"
func BadKind() {}

// BadRole misspells the accessor role.
//
//modown:pool buf puts // want modown 'must be "get" or "put"'
func BadRole() {}

// BadVerb names a directive that does not exist.
//
//modown:recycle buf // want modown 'unknown //modown: directive'
func BadVerb() {}

// BadTransfer names a kind that fails the kebab-case rule.
//
//modown:transfer Buf // want modown "must be lowercase kebab-case"
func BadTransfer() {}

// LoneTransfer names a pool kind that has no get accessor anywhere.
//
//modown:transfer phantom // want modown "no get accessor"
func LoneTransfer() {}
