// Package flows seeds the poolflow defect classes: every way a pooled
// buffer's single-recycle contract can break, next to the clean shapes
// that must stay silent.
package flows

import "ownmod/pool"

// UseAfterPut reads the buffer after recycling it.
func UseAfterPut() byte {
	b := pool.GetBuf(8)
	pool.PutBuf(b)
	return b[0] // want poolflow "used after being recycled"
}

// DoublePut recycles the same buffer twice.
func DoublePut() {
	b := pool.GetBuf(8)
	pool.PutBuf(b)
	pool.PutBuf(b) // want poolflow "recycled again"
}

// PutReslice hands the pool a sub-slice view instead of the original
// allocation.
func PutReslice() {
	b := pool.GetBuf(8)
	pool.PutBuf(b[2:]) // want poolflow "reslice"
}

type report struct{ data []byte }

var last report

// EscapeField parks a pooled buffer in a retained struct field.
func EscapeField() {
	b := pool.GetBuf(8)
	last.data = b // want poolflow "stored in field"
}

var sticky []byte

// EscapeGlobal stores a pooled buffer in a package-level variable.
func EscapeGlobal() {
	sticky = pool.GetBuf(8) // want poolflow "package-level variable"
}

var byName = map[string][]byte{}

// EscapeContainer stores a pooled buffer in a retained map.
func EscapeContainer(name string) {
	b := pool.GetBuf(8)
	byName[name] = b // want poolflow "retained container"
}

// EscapeReturn returns a pooled value from a function without a get
// annotation, hiding the obligation from callers.
func EscapeReturn() []byte {
	return pool.GetBuf(8) // want poolflow "not annotated"
}

// EscapeClosure returns a closure that keeps the pooled buffer alive.
func EscapeClosure() func() byte {
	b := pool.GetBuf(8)
	return func() byte { return b[0] } // want poolflow "not annotated"
}

// ReturnAfterPut recycles and then returns the dead buffer.
func ReturnAfterPut() []byte {
	b := pool.GetBuf(8)
	pool.PutBuf(b)
	return b // want poolflow "returned after being recycled"
}

// Leak never recycles, transfers, or returns the buffer.
func Leak() byte {
	b := pool.GetBuf(8) // want poolflow "pool leak"
	return b[0]
}

// LoopCarried recycles at the bottom of the loop but reuses the dead
// buffer at the top of the next iteration.
func LoopCarried(n int) {
	b := pool.GetBuf(8)
	for i := 0; i < n; i++ {
		b[0] = byte(i) // want poolflow "used after being recycled"
		pool.PutBuf(b) // want poolflow "recycled again"
	}
}

// --- clean shapes: none of these may fire ---

// CleanPair is the canonical get/use/put sequence.
func CleanPair() byte {
	b := pool.GetBuf(8)
	v := b[0]
	pool.PutBuf(b)
	return v
}

// CleanDefer recycles via defer; later uses are fine.
func CleanDefer() byte {
	b := pool.GetBuf(8)
	defer pool.PutBuf(b)
	return b[0]
}

// CleanBranch recycles on the failure path and transfers on success.
func CleanBranch(fail bool) *pool.Held {
	b := pool.GetBuf(8)
	if fail {
		pool.PutBuf(b)
		return nil
	}
	h := &pool.Held{}
	pool.Keep(h, b)
	return h
}

// CleanLoop gets and puts a fresh buffer per iteration.
func CleanLoop(n int) {
	for i := 0; i < n; i++ {
		b := pool.GetBuf(8)
		b[0] = byte(i)
		pool.PutBuf(b)
	}
}

// CleanTuple returns early on error and recycles otherwise; the error
// result must not be mistaken for an alias of the buffer.
func CleanTuple() error {
	b, err := pool.GetPair(8)
	if err != nil {
		return err
	}
	pool.PutBuf(b)
	return nil
}

// Wrapped is itself a get accessor: returning the pooled value hands the
// obligation to its caller.
//
//modown:pool buf get
func Wrapped() []byte {
	return pool.GetBuf(16)
}

// CleanAlias recycles through an alias; the original must not double-fire.
func CleanAlias() {
	b := pool.GetBuf(8)
	c := b
	pool.PutBuf(c)
}
