// Package ownmod is the modown fixture corpus: each subpackage seeds the
// defect classes one analyzer must catch, plus the clean shapes it must
// not flag.
//
//   - pool:   the annotated get/put accessor pairs and transfer sinks
//   - flows:  poolflow positives (use-after-put, double-put, reslice put,
//     escapes, leaks) and clean recycling patterns
//   - atoms:  atomicfield positives (mixed plain/atomic access, 32-bit
//     misalignment) and the construction exemption
//   - views:  aliasfree positives (mutation, copy, append, recycling,
//     laundering) over //modown:borrowed windows
//   - badann: directive hygiene under the "modown" rule
package ownmod
