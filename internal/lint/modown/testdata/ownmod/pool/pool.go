// Package pool hosts the annotated accessor pairs the other fixture
// packages draw pooled values from.
package pool

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// GetBuf hands out a pooled byte buffer of length n.
//
//modown:pool buf get
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// PutBuf recycles a buffer obtained from GetBuf.
//
//modown:pool buf put
func PutBuf(b []byte) {
	b = b[:0]
	bufPool.Put(&b)
}

// GetPair returns a pooled buffer plus a validity error, exercising the
// tuple-binding path.
//
//modown:pool buf get
func GetPair(n int) ([]byte, error) {
	return GetBuf(n), nil
}

// Held owns a transferred buffer until its own recycling logic runs.
type Held struct{ buf []byte }

// Keep takes ownership of a pooled buf argument; the caller's recycling
// obligation moves here.
//
//modown:transfer buf
func Keep(h *Held, b []byte) {
	h.buf = b
}

var window = make([]byte, 64)

// Window returns a zero-copy view of the shared backing window.
//
//modown:borrowed
func Window() []byte {
	return window
}

// GetDual hands out either a pooled buffer or a zero-copy view depending
// on mode, like a copy-strategy switch: dual-annotated, so callers may
// recycle (poolflow's business) but never mutate.
//
//modown:pool buf get
//modown:borrowed mapped mode returns a view
func GetDual(mapped bool, n int) []byte {
	if mapped {
		return Window()
	}
	return GetBuf(n)
}

// GetOrphan declares a pool kind with no put accessor anywhere.
//
//modown:pool orphan get // want modown "has a get accessor but no"
func GetOrphan() []byte {
	return nil
}
