// Package views seeds the aliasfree defect classes: every way a
// //modown:borrowed zero-copy window can be mutated, recycled, or
// laundered, next to the read-only shapes that must stay silent.
package views

import "ownmod/pool"

// Mutate writes an element of a borrowed window.
func Mutate() {
	w := pool.Window()
	w[0] = 1 // want aliasfree "mutated by element write"
}

// CopyInto uses a borrowed window as a copy destination.
func CopyInto(src []byte) {
	w := pool.Window()
	copy(w, src) // want aliasfree "copy destination"
}

// Grow appends to a borrowed window, possibly writing into the shared
// backing array.
func Grow() []byte {
	w := pool.Window()
	return append(w, 1) // want aliasfree "append on borrowed buffer"
}

// Recycle hands a borrowed window to the buf pool.
func Recycle() {
	w := pool.Window()
	pool.PutBuf(w) // want aliasfree "recycled into the buf pool"
}

// Launder returns a borrowed window from a function that hides the
// annotation.
func Launder() []byte {
	w := pool.Window()
	return w // want aliasfree "not annotated //modown:borrowed"
}

// Reslice keeps the borrow through slicing; the mutation still fires.
func Reslice() {
	w := pool.Window()
	v := w[2:4]
	v[0] = 9 // want aliasfree "mutated by element write"
}

// MutateDual still fires: mutation is never allowed on a maybe-view.
func MutateDual() {
	b := pool.GetDual(true, 8)
	b[0] = 1 // want aliasfree "mutated by element write"
	pool.PutBuf(b)
}

// --- clean shapes ---

// RecycleDual is clean: the producer is dual-annotated, so ownership is
// the pool contract's business and poolflow tracks the recycle.
func RecycleDual() {
	b := pool.GetDual(false, 8)
	pool.PutBuf(b)
}

// ReadOnly only reads: fine.
func ReadOnly() byte {
	w := pool.Window()
	return w[3]
}

// Rewindow is itself a borrowed producer, so passing the view on is the
// contract, not a leak.
//
//modown:borrowed
func Rewindow() []byte {
	return pool.Window()
}

// CopyOut detaches from the window before returning: fine.
func CopyOut() []byte {
	w := pool.Window()
	out := make([]byte, len(w))
	copy(out, w)
	return out
}
