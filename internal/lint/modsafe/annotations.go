package modsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// modsafe annotations live in function doc comments and declare the three
// contracts the analyzers check:
//
//	//modsafe:acquires <kind> [reason]
//	//modsafe:releases <kind> [reason]
//	    releasetrack: calling an acquires function creates an obligation of
//	    <kind> on the result (or the receiver for resultless methods) that
//	    every path must discharge via a matching releases call.
//
//	//modsafe:charged <reason>
//	    chargeflow: this function is an entry point whose transitive work
//	    must be charged to the simulated clock.
//
//	//modsafe:charges <reason>
//	    chargeflow: calling this function charges the clock; a caller that
//	    invokes it is considered paid for, subtree included.
//
//	//modsafe:spends <reason>
//	    chargeflow: this function performs physical work (guest reads, page
//	    walks, TLB fills) without charging; reaching it from a charged root
//	    through uncharging functions is a finding.
//
// Malformed directives — unknown verbs, a missing kind, or a directive on a
// declaration the type-checker could not resolve — are findings under the
// "modsafe" rule rather than silently ignored annotations.

const directivePrefix = "modsafe:"

// kindRE constrains resource kinds to lowercase kebab-case so typos like a
// stray colon or capitalized kind don't silently create a new resource class.
var kindRE = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// directive is one parsed //modsafe: annotation bound to its function.
type directive struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *lint.Package
	verb string // "acquires", "releases", "charged", "charges", "spends"
	kind string // resource kind; "" for the chargeflow verbs
	pos  token.Pos
}

// annotations indexes every directive in the module by verb.
type annotations struct {
	// acquires/releases map each annotated function to its resource kind.
	acquires map[*types.Func]*directive
	releases map[*types.Func]*directive
	charged  []*directive // deterministic (load) order
	charges  map[*types.Func]bool
	spends   map[*types.Func]bool
}

func (a *annotations) empty() bool {
	return len(a.acquires) == 0 && len(a.releases) == 0 &&
		len(a.charged) == 0 && len(a.charges) == 0 && len(a.spends) == 0
}

// collectDirectives parses every //modsafe: line in function doc comments.
func collectDirectives(m *modgraph.Module) (*annotations, []lint.Finding) {
	ann := &annotations{
		acquires: make(map[*types.Func]*directive),
		releases: make(map[*types.Func]*directive),
		charges:  make(map[*types.Func]bool),
		spends:   make(map[*types.Func]bool),
	}
	var bad []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, directivePrefix)
					if !ok {
						continue
					}
					dir, msg := parseDirective(rest)
					if msg != "" {
						bad = append(bad, lint.Finding{
							Pos:  p.Fset.Position(c.Pos()),
							Rule: "modsafe",
							Msg:  msg,
						})
						continue
					}
					fn, _ := m.Info.Defs[fd.Name].(*types.Func)
					if fn == nil {
						bad = append(bad, lint.Finding{
							Pos:  p.Fset.Position(c.Pos()),
							Rule: "modsafe",
							Msg:  "//modsafe:" + dir.verb + " directive on a declaration the type-checker could not resolve",
						})
						continue
					}
					dir.fn, dir.decl, dir.pkg, dir.pos = fn, fd, p, c.Pos()
					ann.add(dir)
				}
			}
		}
	}
	return ann, bad
}

// parseDirective splits the text after "modsafe:" into a directive, or an
// error message for the finding.
func parseDirective(rest string) (*directive, string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "empty //modsafe: directive"
	}
	verb := fields[0]
	switch verb {
	case "acquires", "releases":
		if len(fields) < 2 {
			return nil, "//modsafe:" + verb + " needs a resource kind (e.g. //modsafe:" + verb + " sweep-session)"
		}
		kind := fields[1]
		if !kindRE.MatchString(kind) {
			return nil, "//modsafe:" + verb + " kind " + quote(kind) + " must be lowercase kebab-case"
		}
		return &directive{verb: verb, kind: kind}, ""
	case "charged", "charges", "spends":
		return &directive{verb: verb}, ""
	default:
		return nil, "unknown //modsafe: directive " + quote(verb)
	}
}

// quote wraps a token for an error message.
func quote(s string) string { return `"` + s + `"` }

func (a *annotations) add(d *directive) {
	switch d.verb {
	case "acquires":
		a.acquires[d.fn] = d
	case "releases":
		a.releases[d.fn] = d
	case "charged":
		a.charged = append(a.charged, d)
	case "charges":
		a.charges[d.fn] = true
	case "spends":
		a.spends[d.fn] = true
	}
}
