package modsafe

import (
	"fmt"
	"go/token"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// The chargeflow pass checks the simulated-cost accounting contract: every
// function transitively reachable from a //modsafe:charged entry point that
// performs physical work (a //modsafe:spends primitive — guest reads, page
// walks, TLB fills) must charge the simulated clock (//modsafe:charges) on
// the way. Unpaid work silently skews the slowdown model the cloudsim
// trajectory and every benchmark number are built on, and nothing crashes:
// the sweep still returns correct verdicts, just with a clock that lies.
//
// The model is deliberately coarse so it stays decidable and quiet:
//
//   - a function that directly calls a charges hook anywhere in its body
//     (function literals included — the call graph attributes those to the
//     enclosing declaration) is *charging*, and its entire subtree is
//     considered paid for: the hook sits next to the work by construction in
//     this codebase (fetchAndParse, ClusterPool, ChargeDom0 wrappers);
//   - spends primitives are the work boundary and are not descended into —
//     the point is that cost must be accounted at or above them;
//   - the pass BFSes from each charged root through uncharging module
//     functions; reaching a direct call to a spends primitive is a finding,
//     anchored at that call site with the root and one shortest call path.
//
// A //modlint:ignore chargeflow directive on the //modsafe:charged line
// disables that root; on the spends call site it suppresses the finding.

// chargeFlow runs one BFS per charged root.
func chargeFlow(g *modgraph.Graph, ann *annotations, sup lint.SuppressionSet) []lint.Finding {
	if len(ann.charged) == 0 || len(ann.spends) == 0 {
		return nil
	}
	m := g.Mod

	// isCharging: the function directly invokes a charges hook.
	isCharging := func(n *modgraph.FuncNode) bool {
		for _, e := range n.Callees {
			if ann.charges[e.Callee] {
				return true
			}
		}
		return false
	}

	var out []lint.Finding
	seen := make(map[token.Pos]bool) // one finding per spends call site
	for _, rootDir := range ann.charged {
		rootPos := rootDir.pkg.Fset.Position(rootDir.pos)
		if sup.Suppressed(rootPos.Filename, rootPos.Line, "chargeflow") {
			continue
		}
		start, ok := g.Node[rootDir.fn]
		if !ok {
			continue
		}
		rootName := modgraph.ShortFuncName(m.Path, rootDir.fn)

		parent := map[*modgraph.FuncNode]*modgraph.FuncNode{start: nil}
		queue := []*modgraph.FuncNode{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if isCharging(n) {
				continue // the subtree below a charging function is paid for
			}
			for _, e := range n.Callees {
				if ann.spends[e.Callee] {
					if seen[e.Pos] {
						continue
					}
					seen[e.Pos] = true
					out = append(out, lint.Finding{
						Pos:  n.Pkg.Fset.Position(e.Pos),
						Rule: "chargeflow",
						Msg: fmt.Sprintf("%s performs physical work via %s without charging the simulated clock, reached from //modsafe:charged root %s (call path: %s)",
							modgraph.ShortFuncName(m.Path, n.Obj),
							modgraph.ShortFuncName(m.Path, e.Callee),
							rootName,
							strings.Join(renderChain(g, parent, n), " -> ")),
					})
					continue
				}
				cn, ok := g.Node[e.Callee]
				if !ok {
					continue
				}
				if _, visited := parent[cn]; visited {
					continue
				}
				parent[cn] = n
				queue = append(queue, cn)
			}
		}
	}
	return out
}

// renderChain walks the BFS parent chain back to the root and renders the
// root→n call path.
func renderChain(g *modgraph.Graph, parent map[*modgraph.FuncNode]*modgraph.FuncNode, n *modgraph.FuncNode) []string {
	var rev []string
	for cur := n; cur != nil; cur = parent[cur] {
		rev = append(rev, modgraph.ShortFuncName(g.Mod.Path, cur.Obj))
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
