package modsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// The lockorder pass builds a global lock-acquisition-order graph and
// reports cycles — the classic ABBA deadlock shape, which no amount of
// testing reliably reproduces because it needs two goroutines to interleave
// just so.
//
// Lock identity is the *types.Var of a sync.Mutex / sync.RWMutex struct
// field or package-level variable, so every instance of Hypervisor.mu is one
// node: ordering is a property of the code, not of particular values. Each
// function body is scanned in source order maintaining the set of locks
// held — Lock/RLock adds, Unlock/RUnlock removes, a deferred unlock keeps
// the lock held to the end — and every acquisition performed while another
// lock is held adds an ordering edge held→acquired. Calls made under a lock
// pull in the callee's transitively-acquired locks (a fixpoint over the
// modgraph call graph), so an edge exists even when the two acquisitions are
// three calls apart.
//
// Findings:
//
//   - a self-edge is a recursive acquisition (sync.Mutex self-deadlocks);
//   - a two-node cycle reports both acquisition paths, so the diagnostic
//     reads as "this path takes A then B, that path takes B then A";
//   - a larger strongly-connected component reports one deterministic cycle
//     through it.
//
// A //modlint:ignore lockorder directive on an acquisition or call site
// stops that site from contributing edges (the lock still counts as held, so
// suppression never invents a bogus unlock).

// lockInfo names one lock node in the ordering graph.
type lockInfo struct {
	v     *types.Var
	label string // "Hypervisor.mu" for fields, "pkg.mu" for package vars
}

// acqEdge is one ordering edge held→acquired with its first witness.
type acqEdge struct {
	from, to *types.Var
	pos      token.Pos // the site that created the edge
	pkg      *lint.Package
	path     []string // call chain from the holding function to the acquisition
}

// lockOrder runs the pass over the whole module.
func lockOrder(g *modgraph.Graph, sup lint.SuppressionSet) []lint.Finding {
	m := g.Mod
	locks := collectLocks(m)
	if len(locks) == 0 {
		return nil
	}

	// Per-function summaries: direct acquisitions with the held set at that
	// point, and call sites with the held set at that point.
	sums := make(map[*modgraph.FuncNode]*lockSummary)
	for _, n := range g.Funcs {
		sums[n] = summarize(m, n, locks)
	}

	trans := transitiveAcquires(g, sums)

	// Edge construction. The first witness for a (from, to) pair wins;
	// g.Funcs order is deterministic, so the output is too.
	edges := make(map[[2]*types.Var]*acqEdge)
	addEdge := func(from, to *types.Var, pos token.Pos, pkg *lint.Package, path []string) {
		key := [2]*types.Var{from, to}
		if _, ok := edges[key]; ok {
			return
		}
		edges[key] = &acqEdge{from: from, to: to, pos: pos, pkg: pkg, path: path}
	}
	var order [][2]*types.Var // insertion order for deterministic iteration
	for _, n := range g.Funcs {
		s := sums[n]
		fname := modgraph.ShortFuncName(m.Path, n.Obj)
		for _, a := range s.acqs {
			pos := n.Pkg.Fset.Position(a.pos)
			if sup.Suppressed(pos.Filename, pos.Line, "lockorder") {
				continue
			}
			for _, h := range a.held {
				key := [2]*types.Var{h, a.lock}
				if _, ok := edges[key]; !ok {
					order = append(order, key)
				}
				addEdge(h, a.lock, a.pos, n.Pkg, []string{fname})
			}
		}
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			cn, ok := g.Node[c.callee]
			if !ok {
				continue
			}
			pos := n.Pkg.Fset.Position(c.pos)
			if sup.Suppressed(pos.Filename, pos.Line, "lockorder") {
				continue
			}
			for _, t := range trans.locksOf(cn) {
				path := append([]string{fname}, trans.witness(g, cn, t)...)
				for _, h := range c.held {
					key := [2]*types.Var{h, t}
					if _, ok := edges[key]; !ok {
						order = append(order, key)
					}
					addEdge(h, t, c.pos, n.Pkg, path)
				}
			}
		}
	}

	return reportCycles(m, locks, edges, order)
}

// lockSummary is one function's direct lock behavior.
type lockSummary struct {
	acqs  []lockAcq
	calls []lockCall
}

type lockAcq struct {
	lock *types.Var
	pos  token.Pos
	held []*types.Var // snapshot, in acquisition order
}

type lockCall struct {
	callee *types.Func
	pos    token.Pos
	held   []*types.Var
}

// collectLocks finds every sync.Mutex / sync.RWMutex struct field and
// package-level variable in the module and labels it.
func collectLocks(m *modgraph.Module) map[*types.Var]*lockInfo {
	locks := make(map[*types.Var]*lockInfo)
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			ast.Inspect(sf.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeSpec:
					st, ok := n.Type.(*ast.StructType)
					if !ok {
						return true
					}
					for _, f := range st.Fields.List {
						for _, name := range f.Names {
							v, ok := m.Info.Defs[name].(*types.Var)
							if ok && isMutexType(v.Type()) {
								locks[v] = &lockInfo{v: v, label: n.Name.Name + "." + name.Name}
							}
						}
					}
					return false
				case *ast.ValueSpec:
					for _, name := range n.Names {
						v, ok := m.Info.Defs[name].(*types.Var)
						if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && isMutexType(v.Type()) {
							locks[v] = &lockInfo{v: v, label: v.Pkg().Name() + "." + name.Name}
						}
					}
				}
				return true
			})
		}
	}
	return locks
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind one pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// summarize scans one function body in source order, maintaining the held
// set. Function literals are scanned with a fresh held set (their bodies run
// at some other time) but contribute to the same summary, mirroring how the
// call graph attributes their calls to the enclosing declaration.
func summarize(m *modgraph.Module, n *modgraph.FuncNode, locks map[*types.Var]*lockInfo) *lockSummary {
	s := &lockSummary{}
	scanLockBody(m, n.Decl.Body, locks, s)
	return s
}

func scanLockBody(m *modgraph.Module, body *ast.BlockStmt, locks map[*types.Var]*lockInfo, s *lockSummary) {
	var held []*types.Var
	remove := func(v *types.Var) {
		for i, h := range held {
			if h == v {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	snapshot := func() []*types.Var {
		return append([]*types.Var(nil), held...)
	}

	var inDefer int
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			scanLockBody(m, node.Body, locks, s)
			return false
		case *ast.DeferStmt:
			// A deferred unlock releases at return, which is after every
			// acquisition in the body: the lock stays in the held set. A
			// deferred lock (pathological) is ignored the same way.
			inDefer++
			ast.Inspect(node.Call, walk)
			inDefer--
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if ok {
				if v := lockOperand(m, sel, locks); v != nil {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						if inDefer == 0 {
							s.acqs = append(s.acqs, lockAcq{lock: v, pos: node.Pos(), held: snapshot()})
							held = append(held, v)
						}
						return false
					case "Unlock", "RUnlock":
						if inDefer == 0 {
							remove(v)
						}
						return false
					case "TryLock", "TryRLock":
						// Conditional acquisition: record the edge but don't
						// track the held state (the scan is path-insensitive
						// and TryLock failure is the common branch).
						s.acqs = append(s.acqs, lockAcq{lock: v, pos: node.Pos(), held: snapshot()})
						return false
					}
				}
			}
			if callee := m.CalleeOf(node); callee != nil {
				s.calls = append(s.calls, lockCall{callee: callee, pos: node.Pos(), held: snapshot()})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// lockOperand resolves the receiver of a Lock-family selector to a known
// lock variable: x.mu.Lock() (field) or mu.Lock() (package var).
func lockOperand(m *modgraph.Module, sel *ast.SelectorExpr, locks map[*types.Var]*lockInfo) *types.Var {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := m.Info.Selections[x]; ok {
			if v, ok := s.Obj().(*types.Var); ok && locks[v] != nil {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := m.ObjOf(x).(*types.Var); ok && locks[v] != nil {
			return v
		}
	}
	return nil
}

// transAcq tracks, per function, the set of locks it may transitively
// acquire and a witness call step for each.
type transAcq struct {
	locks map[*modgraph.FuncNode]map[*types.Var]transStep
}

// transStep is one step of a witness chain: either a direct acquisition
// (via == nil) or "calls via, which acquires it".
type transStep struct {
	via *types.Func
	pos token.Pos
}

// transitiveAcquires runs a worklist fixpoint: a function acquires what it
// locks directly plus whatever its callees transitively acquire. Cycles in
// the call graph converge because the sets only grow.
func transitiveAcquires(g *modgraph.Graph, sums map[*modgraph.FuncNode]*lockSummary) *transAcq {
	t := &transAcq{locks: make(map[*modgraph.FuncNode]map[*types.Var]transStep)}
	add := func(n *modgraph.FuncNode, v *types.Var, step transStep) bool {
		set := t.locks[n]
		if set == nil {
			set = make(map[*types.Var]transStep)
			t.locks[n] = set
		}
		if _, ok := set[v]; ok {
			return false
		}
		set[v] = step
		return true
	}
	for _, n := range g.Funcs {
		for _, a := range sums[n].acqs {
			add(n, a.lock, transStep{pos: a.pos})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Funcs {
			for _, c := range sums[n].calls {
				cn, ok := g.Node[c.callee]
				if !ok {
					continue
				}
				for v := range t.locks[cn] {
					if add(n, v, transStep{via: c.callee, pos: c.pos}) {
						changed = true
					}
				}
			}
		}
	}
	return t
}

// locksOf returns n's transitively-acquired locks in deterministic
// (position) order.
func (t *transAcq) locksOf(n *modgraph.FuncNode) []*types.Var {
	set := t.locks[n]
	if len(set) == 0 {
		return nil
	}
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// witness renders the call chain from n to its acquisition of v.
func (t *transAcq) witness(g *modgraph.Graph, n *modgraph.FuncNode, v *types.Var) []string {
	var out []string
	for range g.Funcs { // bounded: each step moves to a new function
		step, ok := t.locks[n][v]
		if !ok || step.via == nil {
			out = append(out, modgraph.ShortFuncName(g.Mod.Path, n.Obj))
			return out
		}
		out = append(out, modgraph.ShortFuncName(g.Mod.Path, n.Obj))
		next, ok := g.Node[step.via]
		if !ok {
			return out
		}
		n = next
	}
	return out
}

// reportCycles finds self-edges, two-cycles, and larger strongly-connected
// components in the ordering graph.
func reportCycles(m *modgraph.Module, locks map[*types.Var]*lockInfo, edges map[[2]*types.Var]*acqEdge, order [][2]*types.Var) []lint.Finding {
	label := func(v *types.Var) string { return locks[v].label }
	var out []lint.Finding

	// Self-edges: recursive acquisition of a non-reentrant lock.
	for _, key := range order {
		if key[0] != key[1] {
			continue
		}
		e := edges[key]
		out = append(out, lint.Finding{
			Pos:  e.pkg.Fset.Position(e.pos),
			Rule: "lockorder",
			Msg: fmt.Sprintf("%s acquired while already held (path: %s); sync mutexes are not reentrant, this self-deadlocks",
				label(key[0]), strings.Join(e.path, " -> ")),
		})
	}

	// Two-cycles: both orderings observed. Report once per unordered pair,
	// anchored at the edge seen first, with both witness paths.
	reportedPair := make(map[[2]*types.Var]bool)
	inTwoCycle := make(map[*types.Var]bool)
	for _, key := range order {
		a, b := key[0], key[1]
		if a == b {
			continue
		}
		back, ok := edges[[2]*types.Var{b, a}]
		if !ok {
			continue
		}
		pairKey := [2]*types.Var{a, b}
		if label(b) < label(a) {
			pairKey = [2]*types.Var{b, a}
		}
		if reportedPair[pairKey] {
			continue
		}
		reportedPair[pairKey] = true
		inTwoCycle[a], inTwoCycle[b] = true, true
		e := edges[key]
		out = append(out, lint.Finding{
			Pos:  e.pkg.Fset.Position(e.pos),
			Rule: "lockorder",
			Msg: fmt.Sprintf("lock order cycle: %s -> %s (path: %s) but %s -> %s at %s (path: %s); one order must be picked",
				label(a), label(b), strings.Join(e.path, " -> "),
				label(b), label(a), shortPos(back.pkg, back.pos), strings.Join(back.path, " -> ")),
		})
	}

	// Larger cycles: SCCs of size >= 3 whose members aren't already covered
	// by a two-cycle report get one deterministic cycle walk.
	for _, scc := range sccs(edges, order) {
		if len(scc) < 3 {
			continue
		}
		covered := true
		for _, v := range scc {
			if !inTwoCycle[v] {
				covered = false
				break
			}
		}
		if covered {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return label(scc[i]) < label(scc[j]) })
		names := make([]string, len(scc))
		for i, v := range scc {
			names[i] = label(v)
		}
		// Anchor at the first recorded edge inside the component.
		var anchor *acqEdge
		inSCC := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		for _, key := range order {
			if inSCC[key[0]] && inSCC[key[1]] && key[0] != key[1] {
				anchor = edges[key]
				break
			}
		}
		if anchor == nil {
			continue
		}
		out = append(out, lint.Finding{
			Pos:  anchor.pkg.Fset.Position(anchor.pos),
			Rule: "lockorder",
			Msg: fmt.Sprintf("lock order cycle through %s; impose a total acquisition order",
				strings.Join(names, ", ")),
		})
	}
	return out
}

// shortPos renders a position as "file.go:line" — basename only, so
// messages (and the golden files pinning them) stay machine-independent.
func shortPos(pkg *lint.Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", modgraph.BaseName(p.Filename), p.Line)
}

// sccs computes strongly-connected components of the lock graph (Tarjan)
// in deterministic order.
func sccs(edges map[[2]*types.Var]*acqEdge, order [][2]*types.Var) [][]*types.Var {
	adj := make(map[*types.Var][]*types.Var)
	var nodes []*types.Var
	seen := make(map[*types.Var]bool)
	addNode := func(v *types.Var) {
		if !seen[v] {
			seen[v] = true
			nodes = append(nodes, v)
		}
	}
	for _, key := range order {
		addNode(key[0])
		addNode(key[1])
		adj[key[0]] = append(adj[key[0]], key[1])
	}

	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	var comps [][]*types.Var
	next := 1

	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strong(v)
		}
	}
	return comps
}
