// Package modsafe is modlint's whole-program soundness auditor — the
// sibling of moddet on the shared internal/lint/modgraph substrate. Where
// moddet protects the determinism guarantee, modsafe protects three
// liveness/accounting contracts that only hold (or break) across function
// boundaries:
//
//   - lockorder: the global lock-acquisition graph, built from explicit
//     Lock/RLock sites with held-lock sets propagated through calls, must be
//     acyclic — a cycle is an ABBA deadlock waiting for the right
//     interleaving, and a self-edge is a guaranteed self-deadlock.
//   - releasetrack: resources declared with //modsafe:acquires <kind> /
//     //modsafe:releases <kind> annotation pairs (sweep sessions, mapped
//     guest windows, paused domains, tracer spans) must be released on every
//     path out of the acquiring function, error returns and panics included.
//   - chargeflow: every function reachable from a //modsafe:charged entry
//     point that performs physical work (//modsafe:spends) must charge the
//     simulated clock (//modsafe:charges) on the way — unpaid guest reads
//     silently corrupt the slowdown model.
//
// Findings are suppressed like every modlint rule with
// //modlint:ignore <rule> <reason>; a directive on an acquisition site, an
// acquire call, or a charged root disables just that fact without leaking
// into the other analyzers. Malformed //modsafe: annotations are findings
// under the "modsafe" rule. See docs/static-analysis.md for the full model.
package modsafe

import (
	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// Analyzer is the modsafe module analyzer; create it with New.
type Analyzer struct {
	modulePath string
}

// New returns an analyzer for a module with the given module path (the
// `module` line of its go.mod — see modgraph.ReadModulePath).
func New(modulePath string) *Analyzer {
	return &Analyzer{modulePath: modulePath}
}

// Name identifies the analyzer in driver listings.
func (a *Analyzer) Name() string { return "modsafe" }

// Doc is the one-line description for -list output.
func (a *Analyzer) Doc() string {
	return "whole-program soundness audit: lock acquisition order must be acyclic; //modsafe:acquires resources must be released on every path; //modsafe:charged work must charge the simulated clock"
}

// Rules lists the rule identifiers this analyzer reports under.
func (a *Analyzer) Rules() []string {
	return []string{"lockorder", "releasetrack", "chargeflow", "modsafe"}
}

// CheckModule type-checks the package set and runs the three passes. Like
// moddet it degrades gracefully on partial type information: whatever could
// not be resolved is simply not analyzed.
func (a *Analyzer) CheckModule(pkgs []*lint.Package, sup lint.SuppressionSet) []lint.Finding {
	out, _ := a.CheckModuleErrs(pkgs, sup)
	return out
}

// CheckModuleErrs is CheckModule plus the substrate's soft type-check
// errors, so drivers can report partial analysis instead of silently
// under-reporting (lint.RunAllErrs).
func (a *Analyzer) CheckModuleErrs(pkgs []*lint.Package, sup lint.SuppressionSet) ([]lint.Finding, []error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	m := modgraph.TypeCheck(a.modulePath, pkgs)

	ann, out := collectDirectives(m)
	g := modgraph.Build(m)
	out = append(out, lockOrder(g, sup)...)
	out = append(out, releaseTrack(m, ann, sup)...)
	out = append(out, chargeFlow(g, ann, sup)...)
	return out, m.Errs
}
