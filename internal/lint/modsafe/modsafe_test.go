package modsafe_test

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"modchecker/internal/lint"
	"modchecker/internal/lint/moddet"
	"modchecker/internal/lint/modsafe"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// fixtureModule is the module path of the testdata fixture tree; modsafe
// resolves safemod/... imports against the loaded package set.
const fixtureModule = "safemod"

func loadFixture(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.LoadModule(token.NewFileSet(), filepath.Join("testdata", fixtureModule))
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) < 4 {
		t.Fatalf("fixture module loaded only %d packages", len(pkgs))
	}
	return pkgs
}

func runFixture(t *testing.T) []lint.Finding {
	t.Helper()
	pkgs := loadFixture(t)
	return lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{modsafe.New(fixtureModule)})
}

// wantRE mirrors the moddet fixture convention:
//
//	// want <rule> "message substring"
//	// want <rule> 'message substring'
var wantRE = regexp.MustCompile(`want ([a-z-]+)(?:\s+(?:"([^"]*)"|'([^']*)'))?`)

type expectation struct {
	rule   string
	substr string
	met    bool
}

func parseWants(t *testing.T, pkgs []*lint.Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, p := range pkgs {
		for _, sf := range p.Files {
			src, err := os.ReadFile(sf.Path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				if !strings.Contains(line, "want ") {
					continue
				}
				for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", sf.Path, i+1)
					out[key] = append(out[key], &expectation{rule: m[1], substr: m[2] + m[3]})
				}
			}
		}
	}
	return out
}

// TestModsafeFixtures runs the analyzer over the fixture module and matches
// findings against the // want comments: every want must be hit, no finding
// may be unexplained, and each of the four rules must fire at least once —
// the corpus is the proof that an ABBA nesting, a leaked session on an
// error path, or an unpaid guest read is caught.
func TestModsafeFixtures(t *testing.T) {
	pkgs := loadFixture(t)
	wants := parseWants(t, pkgs)
	findings := lint.RunAll(pkgs, nil, []lint.ModuleAnalyzer{modsafe.New(fixtureModule)})

	perRule := make(map[string]int)
	for _, f := range findings {
		perRule[f.Rule]++
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.rule == f.Rule && strings.Contains(f.Msg, w.substr) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.met {
				t.Errorf("%s: expected [%s] %q, not reported", key, w.rule, w.substr)
			}
		}
	}
	for _, rule := range modsafe.New(fixtureModule).Rules() {
		if perRule[rule] == 0 {
			t.Errorf("fixture corpus produced no %s finding", rule)
		}
	}
}

// TestModsafeGolden pins the full diagnostic output over the fixture corpus
// byte for byte: message wording, ordering, path rendering. Regenerate
// deliberately with `go test ./internal/lint/modsafe -run Golden -update`.
func TestModsafeGolden(t *testing.T) {
	var sb strings.Builder
	for _, f := range runFixture(t) {
		fmt.Fprintf(&sb, "%s\n", f)
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", fixtureModule+".golden")
	if dir := os.Getenv("MODLINT_GOLDEN_DIR"); dir != "" {
		goldenPath = filepath.Join(dir, fixtureModule+".golden")
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostic output diverged from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestLockorderPathRendering checks the property the want-substring harness
// cannot: both acquisition paths of the ABBA cycle appear in the message.
func TestLockorderPathRendering(t *testing.T) {
	for _, f := range runFixture(t) {
		if f.Rule != "lockorder" || !strings.Contains(f.Msg, "lock order cycle: A.mu -> B.mu") {
			continue
		}
		for _, want := range []string{
			"path: locks.TakeAB -> locks.bumpB",
			"path: locks.TakeBA",
		} {
			if !strings.Contains(f.Msg, want) {
				t.Errorf("cycle message %q lacks %q", f.Msg, want)
			}
		}
		return
	}
	t.Fatal("no ABBA cycle finding in fixture output")
}

// suppressionInterplaySrc holds a lockorder suppression, a live releasetrack
// leak on the very next line, and a suppressed chargeflow root. Exactly one
// finding — the leak — must survive: suppressing one analyzer's fact must
// not leak into the others.
const suppressionInterplaySrc = `package interplay

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

//modsafe:acquires thing test resource
func open() int { return 1 }

//modsafe:releases thing test resource
func closeThing(int) {}

//modsafe:charges test hook
func charge() {}

//modsafe:spends test work
func readPhys() {}

func f(fail bool) {
	a.mu.Lock()
	t := open()
	//modlint:ignore lockorder test: this nesting is documented as safe
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
	if fail {
		return
	}
	closeThing(t)
}

func g() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

//modlint:ignore chargeflow test: cost accounted by the caller
//modsafe:charged test root
func h() { readPhys() }
`

// TestSuppressionInterplay checks that //modlint:ignore directives on a
// lockorder edge and a chargeflow root silence exactly those facts: the
// releasetrack obligation created one line above the lockorder directive
// still leaks, and nothing else fires.
func TestSuppressionInterplay(t *testing.T) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "interplay.go", suppressionInterplaySrc,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	p := &lint.Package{
		Name:  "interplay",
		Dir:   "interplay",
		Fset:  fset,
		Files: []*lint.SourceFile{{Path: "interplay.go", AST: af}},
	}
	findings := lint.RunAll([]*lint.Package{p}, nil,
		[]lint.ModuleAnalyzer{modsafe.New("interplay")})

	var leaks, others []lint.Finding
	for _, f := range findings {
		if f.Rule == "releasetrack" {
			leaks = append(leaks, f)
		} else {
			others = append(others, f)
		}
	}
	if len(leaks) != 1 || !strings.Contains(leaks[0].Msg, "escapes unreleased") {
		t.Errorf("expected exactly one releasetrack leak, got %v", leaks)
	}
	for _, f := range others {
		t.Errorf("suppressed analyzer leaked a finding: %s", f)
	}
}

// TestSuppressedAcquireKeepsOtherRules is the reverse direction: ignoring
// releasetrack at an acquire site must not silence a lockorder cycle formed
// on the same lines.
func TestSuppressedAcquireKeepsOtherRules(t *testing.T) {
	src := `package interplay2

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

//modsafe:acquires thing test resource
func open() int { return 1 }

//modsafe:releases thing test resource
func closeThing(int) {}

func f() {
	a.mu.Lock()
	//modlint:ignore releasetrack test: harness releases it
	_ = open()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func g() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "interplay2.go", src,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	p := &lint.Package{
		Name:  "interplay2",
		Dir:   "interplay2",
		Fset:  fset,
		Files: []*lint.SourceFile{{Path: "interplay2.go", AST: af}},
	}
	findings := lint.RunAll([]*lint.Package{p}, nil,
		[]lint.ModuleAnalyzer{modsafe.New("interplay2")})

	sawCycle := false
	for _, f := range findings {
		switch f.Rule {
		case "lockorder":
			sawCycle = true
		case "releasetrack":
			t.Errorf("suppressed releasetrack finding resurfaced: %s", f)
		}
	}
	if !sawCycle {
		t.Error("lockorder cycle was swallowed by a releasetrack suppression")
	}
}

// TestRepoIsCleanModsafe runs the whole-program audit over the real module:
// the annotated acquire/release pairs, charged roots, and the lock graph
// must stay clean. A legitimate exception needs a //modlint:ignore
// directive with a reason.
func TestRepoIsCleanModsafe(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	pkgs, err := lint.LoadModule(token.NewFileSet(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	// The full analyzer set rides along so ignore directives naming
	// per-package or moddet rules resolve, exactly as cmd/modlint runs.
	modulePath := moddet.ReadModulePath(root)
	mods := []lint.ModuleAnalyzer{moddet.New(modulePath), modsafe.New(modulePath)}
	for _, f := range lint.RunAll(pkgs, lint.Analyzers(), mods) {
		if f.Rule == "lockorder" || f.Rule == "releasetrack" || f.Rule == "chargeflow" || f.Rule == "modsafe" {
			t.Errorf("%s", f)
		}
	}
}

// FuzzModsafeLockorder feeds arbitrary parseable Go through the whole
// analyzer: partial type information, directive soup, pathological lock
// nests — none of it may panic. Seeds are the fixture corpus plus shapes
// that stress each pass.
func FuzzModsafeLockorder(f *testing.F) {
	_ = filepath.Walk("testdata", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if src, err := os.ReadFile(path); err == nil {
			f.Add(string(src))
		}
		return nil
	})
	f.Add("package p\nfunc f() {}\n")
	f.Add("package p\nimport \"sync\"\nvar mu sync.Mutex\nfunc f() { mu.Lock(); mu.Lock() }\n")
	f.Add("package p\n//modsafe:acquires\nfunc A() {}\n")
	f.Add("package p\n//modsafe:charged\nfunc R() { R() }\n")
	f.Add("package p\nimport \"sync\"\ntype T struct{ mu sync.Mutex }\nfunc (t *T) f() { t.mu.Lock(); defer t.mu.Unlock(); t.f() }\n")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		af, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		p := &lint.Package{
			Name:  "fuzz",
			Dir:   "fuzz",
			Fset:  fset,
			Files: []*lint.SourceFile{{Path: "fuzz.go", AST: af}},
		}
		lint.RunAll([]*lint.Package{p}, nil, []lint.ModuleAnalyzer{modsafe.New("fuzzmod")})
	})
}
