package modsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"modchecker/internal/lint"
	"modchecker/internal/lint/modgraph"
)

// The releasetrack pass is a path-sensitive must-release check over the
// //modsafe:acquires / //modsafe:releases annotation pairs. Calling an
// acquires function creates an *obligation* on the value it returns (or on
// the receiver, for resultless methods like Domain.Pause): some release of
// the same kind on the same value must happen on every path out of the
// function, or the resource — a sweep session, a mapped guest window, a
// paused domain, a tracer span — leaks.
//
// The walker interprets the function body statement by statement:
//
//   - an assignment from an acquires call creates an obligation keyed by the
//     destination expression; an error result assigned alongside it makes
//     the obligation conditional — the `if err != nil` branch drops it,
//     because a failed constructor returns nothing to release;
//   - a matching releases call (receiver or first argument structurally
//     equal to the key) discharges; `defer key.Close()` discharges every
//     later path including panics, and deferred closures are scanned for
//     release calls too;
//   - ownership transfers discharge conservatively: returning the value,
//     storing it into a field or element, sending it on a channel, or
//     capturing it in a `go` closure all hand the release duty to someone
//     this pass cannot see;
//   - passing the value as a plain call argument is a *borrow* and does NOT
//     discharge — helpers use the resource, they don't own it;
//   - branches merge by union (an obligation live on either arm is still
//     live), loops run their body once, and each return / panic / end of
//     body checks every live undischarged obligation.
//
// A function annotated //modsafe:acquires <kind> is exempt from obligations
// of that same kind: it is the constructor (or a transfer wrapper), and its
// contract is exactly that the *caller* releases. A //modlint:ignore
// releasetrack directive on the acquire site stops the obligation from
// being created at all.

// obligation is one live acquire awaiting its release.
type obligation struct {
	kind     string
	key      string // canonical expression holding the resource
	pos      token.Pos
	by       string // acquiring function, for the message
	errKey   string // error variable bound at the acquire site, "" if none
	viaDefer bool   // a defer discharges it on every later exit
}

// releaseTrack runs the pass over every function body in the module.
func releaseTrack(m *modgraph.Module, ann *annotations, sup lint.SuppressionSet) []lint.Finding {
	if len(ann.acquires) == 0 {
		return nil
	}
	var out []lint.Finding
	for _, p := range m.Pkgs {
		for _, sf := range p.Files {
			if sf.IsTest {
				continue
			}
			for _, d := range sf.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				rt := &releaseTracker{m: m, ann: ann, sup: sup, pkg: p, fd: fd,
					flagged: make(map[token.Pos]bool)}
				fn, _ := m.Info.Defs[fd.Name].(*types.Func)
				if fn != nil {
					if d := ann.acquires[fn]; d != nil {
						rt.exemptKind = d.kind
					}
				}
				rt.run()
				out = append(out, rt.out...)
			}
		}
	}
	return out
}

// releaseTracker walks one function body.
type releaseTracker struct {
	m          *modgraph.Module
	ann        *annotations
	sup        lint.SuppressionSet
	pkg        *lint.Package
	fd         *ast.FuncDecl
	exemptKind string
	flagged    map[token.Pos]bool // one finding per acquire site
	out        []lint.Finding
}

func (rt *releaseTracker) run() {
	final := rt.walkStmts(rt.fd.Body.List, nil)
	rt.checkExit(final.obls, rt.fd.Body.End(), nil)
}

// flowState is the walker state along one path prefix.
type flowState struct {
	obls         []obligation
	fallsThrough bool
}

func cloneObls(obls []obligation) []obligation {
	return append([]obligation(nil), obls...)
}

// walkStmts interprets a statement list starting from the given obligations
// and returns the state at its end.
func (rt *releaseTracker) walkStmts(stmts []ast.Stmt, obls []obligation) flowState {
	obls = cloneObls(obls)
	for _, st := range stmts {
		state := rt.walkStmt(st, obls)
		if !state.fallsThrough {
			return flowState{obls: state.obls, fallsThrough: false}
		}
		obls = state.obls
	}
	return flowState{obls: obls, fallsThrough: true}
}

func (rt *releaseTracker) walkStmt(st ast.Stmt, obls []obligation) flowState {
	through := func(o []obligation) flowState { return flowState{obls: o, fallsThrough: true} }
	switch st := st.(type) {
	case *ast.AssignStmt:
		return through(rt.handleAssign(st, obls))
	case *ast.DeclStmt:
		return through(rt.handleDecl(st, obls))
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if rt.isPanicCall(call) {
				rt.checkExit(obls, st.Pos(), nil)
				return flowState{obls: nil, fallsThrough: false}
			}
			return through(rt.handleCallStmt(call, obls))
		}
		rt.walkLits(st.X, obls)
		return through(obls)
	case *ast.DeferStmt:
		return through(rt.handleDefer(st, obls))
	case *ast.GoStmt:
		return through(rt.handleGo(st, obls))
	case *ast.ReturnStmt:
		rt.checkExit(obls, st.Pos(), st.Results)
		return flowState{obls: nil, fallsThrough: false}
	case *ast.SendStmt:
		// Sending the resource transfers ownership to the receiver side.
		return through(rt.dischargeMentioned(obls, st.Value))
	case *ast.IfStmt:
		return rt.walkIf(st, obls)
	case *ast.ForStmt:
		body := rt.walkStmts(st.Body.List, obls)
		return through(unionObls(obls, body.obls))
	case *ast.RangeStmt:
		body := rt.walkStmts(st.Body.List, obls)
		return through(unionObls(obls, body.obls))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return rt.walkSwitch(st, obls)
	case *ast.BlockStmt:
		return rt.walkStmts(st.List, obls)
	case *ast.LabeledStmt:
		return rt.walkStmt(st.Stmt, obls)
	}
	return through(obls)
}

// walkIf handles the if/else ladder, including the err-check idiom that
// voids conditional obligations on the failure arm.
func (rt *releaseTracker) walkIf(st *ast.IfStmt, obls []obligation) flowState {
	if st.Init != nil {
		init := rt.walkStmt(st.Init, obls)
		obls = init.obls
	}
	thenObls, elseObls := cloneObls(obls), cloneObls(obls)
	if errKey, isNil, ok := errCheck(st.Cond); ok {
		if isNil { // if err == nil { ...obligation holds... } else { ...void... }
			elseObls = dropErrObls(elseObls, errKey)
			thenObls = clearErrKey(thenObls, errKey)
		} else { // if err != nil { ...nothing was acquired... }
			thenObls = dropErrObls(thenObls, errKey)
			elseObls = clearErrKey(elseObls, errKey)
		}
	}
	thenState := rt.walkStmts(st.Body.List, thenObls)
	elseState := flowState{obls: elseObls, fallsThrough: true}
	if st.Else != nil {
		elseState = rt.walkStmt(st.Else, elseObls)
	}
	switch {
	case thenState.fallsThrough && elseState.fallsThrough:
		return flowState{obls: unionObls(thenState.obls, elseState.obls), fallsThrough: true}
	case thenState.fallsThrough:
		return flowState{obls: thenState.obls, fallsThrough: true}
	case elseState.fallsThrough:
		return flowState{obls: elseState.obls, fallsThrough: true}
	default:
		return flowState{obls: nil, fallsThrough: false}
	}
}

// walkSwitch merges the arms of switch / type switch / select by union.
func (rt *releaseTracker) walkSwitch(st ast.Stmt, obls []obligation) flowState {
	var body *ast.BlockStmt
	hasDefault := false
	switch st := st.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			obls = rt.walkStmt(st.Init, obls).obls
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			obls = rt.walkStmt(st.Init, obls).obls
		}
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	}
	var surviving []obligation
	anyFallsThrough := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		s := rt.walkStmts(stmts, obls)
		if s.fallsThrough {
			anyFallsThrough = true
			surviving = unionObls(surviving, s.obls)
		}
	}
	if !hasDefault || len(body.List) == 0 {
		// The zero-matching-case path skips every arm.
		surviving = unionObls(surviving, obls)
		anyFallsThrough = true
	}
	return flowState{obls: surviving, fallsThrough: anyFallsThrough}
}

// handleAssign creates obligations from acquires calls on the RHS and
// discharges on release calls and ownership-transferring stores.
func (rt *releaseTracker) handleAssign(st *ast.AssignStmt, obls []obligation) []obligation {
	// Single call RHS: the interesting shape (s, err := Acquire(...)).
	if len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			obls = rt.handleReleaseCall(call, obls)
			if d := rt.acquireDirective(call); d != nil {
				obls = rt.createObligation(d, call, st, obls)
			}
		} else {
			rt.walkLits(st.Rhs[0], obls)
		}
	} else {
		for _, rhs := range st.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				obls = rt.handleReleaseCall(call, obls)
				if d := rt.acquireDirective(call); d != nil {
					obls = rt.createObligation(d, call, nil, obls)
				}
			} else {
				rt.walkLits(rhs, obls)
			}
		}
	}
	// Storing the resource into a field or element transfers ownership.
	for i, lhs := range st.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			if i < len(st.Rhs) {
				obls = rt.dischargeMentioned(obls, st.Rhs[i])
			} else if len(st.Rhs) == 1 {
				obls = rt.dischargeMentioned(obls, st.Rhs[0])
			}
		}
	}
	return obls
}

// handleDecl treats `var s = Acquire(...)` like the assignment form.
func (rt *releaseTracker) handleDecl(st *ast.DeclStmt, obls []obligation) []obligation {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return obls
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, val := range vs.Values {
			call, ok := ast.Unparen(val).(*ast.CallExpr)
			if !ok {
				rt.walkLits(val, obls)
				continue
			}
			obls = rt.handleReleaseCall(call, obls)
			d := rt.acquireDirective(call)
			if d == nil {
				continue
			}
			if len(vs.Names) > 0 {
				obls = rt.addObligation(obls, d, call, vs.Names[0].Name, "")
			}
		}
	}
	return obls
}

// handleCallStmt processes a bare call statement: releases discharge, a
// receiver-resource acquires method creates a receiver obligation, and a
// discarded-result acquire is an immediate leak.
func (rt *releaseTracker) handleCallStmt(call *ast.CallExpr, obls []obligation) []obligation {
	obls = rt.handleReleaseCall(call, obls)
	d := rt.acquireDirective(call)
	if d == nil {
		rt.walkLits(call, obls)
		return obls
	}
	if key, ok := receiverResourceKey(d, call); ok {
		// Receiver-resource acquire (d.Pause()): the obligation lands on the
		// receiver whether or not the caller looks at the error result.
		if key != "" {
			return rt.addObligation(obls, d, call, key, "")
		}
		return obls
	}
	// The result is dropped on the floor: nothing can ever release it.
	pos := rt.pkg.Fset.Position(call.Pos())
	if !rt.sup.Suppressed(pos.Filename, pos.Line, "releasetrack") && d.kind != rt.exemptKind {
		rt.out = append(rt.out, lint.Finding{
			Pos:  pos,
			Rule: "releasetrack",
			Msg: fmt.Sprintf("%s from %s is discarded; the %s it acquires can never be released",
				d.kind, modgraph.ShortFuncName(rt.m.Path, d.fn), d.kind),
		})
	}
	return obls
}

// handleDefer discharges obligations whose release is deferred — directly
// (defer s.Close()) or inside a deferred closure.
func (rt *releaseTracker) handleDefer(st *ast.DeferStmt, obls []obligation) []obligation {
	markDeferred := func(call *ast.CallExpr) {
		if rd, key := rt.releaseTarget(call); rd != nil {
			for i := range obls {
				if !obls[i].viaDefer && obls[i].kind == rd.kind && (obls[i].key == key || key == "") {
					obls[i].viaDefer = true
				}
			}
		}
	}
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				markDeferred(call)
			}
			return true
		})
		return obls
	}
	markDeferred(st.Call)
	return obls
}

// handleGo conservatively hands any captured obligation to the goroutine.
func (rt *releaseTracker) handleGo(st *ast.GoStmt, obls []obligation) []obligation {
	return rt.dischargeMentioned(obls, st.Call)
}

// handleReleaseCall discharges obligations matched by a releases call.
func (rt *releaseTracker) handleReleaseCall(call *ast.CallExpr, obls []obligation) []obligation {
	rd, key := rt.releaseTarget(call)
	if rd == nil {
		return obls
	}
	var kept []obligation
	for _, o := range obls {
		if o.kind == rd.kind && (o.key == key || key == "") {
			continue
		}
		kept = append(kept, o)
	}
	return kept
}

// releaseTarget resolves a call to a releases directive and the canonical
// key of the value being released ("" when the expression is too complex to
// key, which matches any obligation of the kind — conservative).
func (rt *releaseTracker) releaseTarget(call *ast.CallExpr) (*directive, string) {
	fn := rt.m.CalleeOf(call)
	if fn == nil {
		return nil, ""
	}
	rd := rt.ann.releases[fn]
	if rd == nil {
		return nil, ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return rd, exprKey(sel.X)
		}
		return rd, ""
	}
	if len(call.Args) > 0 {
		return rd, exprKey(call.Args[0])
	}
	return rd, ""
}

// receiverResourceKey reports whether the acquiring callee's shape makes
// the receiver itself the resource — a method with no results, or whose
// results are all `error` (the fallible Pause() error shape): nothing the
// call returns can hold the resource, so the receiver does. The returned
// key canonicalizes the receiver expression ("" when it is too complex).
func receiverResourceKey(d *directive, call *ast.CallExpr) (string, bool) {
	if d == nil {
		return "", false
	}
	sig, _ := d.fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i).Type().String() != "error" {
			return "", false
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return exprKey(sel.X), true
}

// acquireDirective resolves a call to its acquires directive, nil if the
// callee is not annotated or the kind is exempt in this function.
func (rt *releaseTracker) acquireDirective(call *ast.CallExpr) *directive {
	fn := rt.m.CalleeOf(call)
	if fn == nil {
		return nil
	}
	d := rt.ann.acquires[fn]
	if d == nil || d.kind == rt.exemptKind {
		return nil
	}
	return d
}

// createObligation keys a new obligation off the assignment destinations.
func (rt *releaseTracker) createObligation(d *directive, call *ast.CallExpr, st *ast.AssignStmt, obls []obligation) []obligation {
	key, errKey := "", ""
	if st != nil {
		for _, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if ok && id.Name != "_" && isErrorIdent(rt.m, id) {
				errKey = id.Name
				continue
			}
			if key == "" {
				key = exprKey(lhs)
			}
		}
	}
	if key == "" {
		// Every destination was an error variable (or blank): when the
		// callee's receiver is the resource — err := d.Pause() — key the
		// obligation off the receiver, conditional on that error.
		if rkey, ok := receiverResourceKey(d, call); ok {
			if rkey != "" {
				return rt.addObligation(obls, d, call, rkey, errKey)
			}
			return obls
		}
	}
	if key == "" && st != nil {
		// Resource assigned to _ (or an unkeyable destination): leak now.
		pos := rt.pkg.Fset.Position(call.Pos())
		if !rt.sup.Suppressed(pos.Filename, pos.Line, "releasetrack") {
			rt.out = append(rt.out, lint.Finding{
				Pos:  pos,
				Rule: "releasetrack",
				Msg: fmt.Sprintf("%s from %s is discarded; the %s it acquires can never be released",
					d.kind, modgraph.ShortFuncName(rt.m.Path, d.fn), d.kind),
			})
		}
		return obls
	}
	if key == "" {
		return obls
	}
	return rt.addObligation(obls, d, call, key, errKey)
}

func (rt *releaseTracker) addObligation(obls []obligation, d *directive, call *ast.CallExpr, key, errKey string) []obligation {
	pos := rt.pkg.Fset.Position(call.Pos())
	if rt.sup.Suppressed(pos.Filename, pos.Line, "releasetrack") {
		return obls
	}
	return append(obls, obligation{
		kind:   d.kind,
		key:    key,
		pos:    call.Pos(),
		by:     modgraph.ShortFuncName(rt.m.Path, d.fn),
		errKey: errKey,
	})
}

// checkExit flags every live, undischarged obligation at an exit point,
// unless the exit transfers ownership by returning the resource.
func (rt *releaseTracker) checkExit(obls []obligation, exit token.Pos, results []ast.Expr) {
	for _, o := range obls {
		if o.viaDefer || rt.flagged[o.pos] {
			continue
		}
		escaped := false
		for _, r := range results {
			if mentions(r, baseOf(o.key)) {
				escaped = true
				break
			}
		}
		if escaped {
			continue
		}
		rt.flagged[o.pos] = true
		pos := rt.pkg.Fset.Position(o.pos)
		exitPos := rt.pkg.Fset.Position(exit)
		rt.out = append(rt.out, lint.Finding{
			Pos:  pos,
			Rule: "releasetrack",
			Msg: fmt.Sprintf("%s %q acquired from %s escapes unreleased on the path exiting at line %d; release it or defer the release",
				o.kind, o.key, o.by, exitPos.Line),
		})
	}
}

// dischargeMentioned drops obligations whose base identifier appears in e —
// ownership has been handed somewhere this pass cannot follow.
func (rt *releaseTracker) dischargeMentioned(obls []obligation, e ast.Expr) []obligation {
	var kept []obligation
	for _, o := range obls {
		if mentions(e, baseOf(o.key)) {
			continue
		}
		kept = append(kept, o)
	}
	return kept
}

// walkLits analyzes function literals in an expression as independent
// functions: their bodies run with their own obligation state.
func (rt *releaseTracker) walkLits(e ast.Expr, obls []obligation) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sub := &releaseTracker{m: rt.m, ann: rt.ann, sup: rt.sup, pkg: rt.pkg, fd: rt.fd,
			exemptKind: rt.exemptKind, flagged: rt.flagged}
		final := sub.walkStmts(lit.Body.List, nil)
		sub.checkExit(final.obls, lit.Body.End(), nil)
		rt.out = append(rt.out, sub.out...)
		return false
	})
}

// isPanicCall matches the panic builtin.
func (rt *releaseTracker) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := rt.m.ObjOf(id)
	if obj == nil {
		return true
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// errCheck matches `x != nil` / `x == nil` over a plain identifier and
// returns the identifier name and which comparison it is.
func errCheck(cond ast.Expr) (errKey string, isNil bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.NEQ && be.Op != token.EQL) {
		return "", false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if id := identNilPair(x, y); id != "" {
		return id, be.Op == token.EQL, true
	}
	return "", false, false
}

// identNilPair returns the identifier compared against nil, "" otherwise.
func identNilPair(x, y ast.Expr) string {
	xid, xok := x.(*ast.Ident)
	yid, yok := y.(*ast.Ident)
	switch {
	case xok && yok && yid.Name == "nil":
		return xid.Name
	case xok && yok && xid.Name == "nil":
		return yid.Name
	}
	return ""
}

// dropErrObls removes obligations conditional on the named error variable.
func dropErrObls(obls []obligation, errKey string) []obligation {
	var kept []obligation
	for _, o := range obls {
		if o.errKey == errKey {
			continue
		}
		kept = append(kept, o)
	}
	return kept
}

// clearErrKey makes matching obligations unconditional: the success branch
// has established that the acquire happened.
func clearErrKey(obls []obligation, errKey string) []obligation {
	out := cloneObls(obls)
	for i := range out {
		if out[i].errKey == errKey {
			out[i].errKey = ""
		}
	}
	return out
}

// unionObls merges obligations from two paths: live on either means live,
// and a defer on both arms is needed for the defer to count.
func unionObls(a, b []obligation) []obligation {
	out := cloneObls(a)
	index := make(map[token.Pos]int, len(out))
	for i, o := range out {
		index[o.pos] = i
	}
	for _, o := range b {
		if i, ok := index[o.pos]; ok {
			if !o.viaDefer {
				out[i].viaDefer = false
			}
			continue
		}
		out = append(out, o)
	}
	return out
}

// isErrorIdent reports whether the identifier's type is the error interface.
func isErrorIdent(m *modgraph.Module, id *ast.Ident) bool {
	obj := m.ObjOf(id)
	if obj == nil || obj.Type() == nil {
		return id.Name == "err" // unresolved: fall back to the idiom
	}
	return obj.Type().String() == "error"
}

// mentions reports whether the expression tree contains an identifier with
// the given name ("" never matches).
func mentions(e ast.Expr, name string) bool {
	if e == nil || name == "" {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// baseOf extracts the leading identifier of an expression key.
func baseOf(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' || key[i] == '[' {
			return key[:i]
		}
	}
	return key
}

// exprKey renders a restricted expression to a canonical comparison string;
// "" outside the supported subset (idents, selectors, parens, & and *,
// constant indexes).
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := exprKey(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	case *ast.IndexExpr:
		x := exprKey(e.X)
		if x == "" {
			return ""
		}
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			return x + "[" + lit.Value + "]"
		}
	}
	return ""
}
