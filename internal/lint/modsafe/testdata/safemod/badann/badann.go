// Package badann exercises modsafe directive hygiene: malformed
// annotations are findings under the "modsafe" rule, never silently
// dropped annotations.
package badann

// A carries a typo'd verb.
//
//modsafe:grabs mu, typo for a verb that does not exist // want modsafe "unknown //modsafe: directive"
func A() {}

// B names its kind in the wrong case.
//
//modsafe:acquires Window guest window // want modsafe "must be lowercase kebab-case"
func B() {}
