// Package charge exercises the chargeflow pass: a charged root reaching a
// spends primitive through an uncharging helper (finding), a root whose
// helper charges (clean), and a suppressed root.
package charge

// Clock is the simulated-clock stand-in.
type Clock struct{ now uint64 }

// Charge advances the simulated clock.
//
//modsafe:charges fixture clock hook
func (c *Clock) Charge(n uint64) {
	c.now += n
}

// ReadPhys models a physical frame read: work that must be paid for.
//
//modsafe:spends fixture physical read
func ReadPhys(addr uint64) byte {
	return byte(addr)
}

// Sweep is a charged entry point whose helper forgets to pay.
//
//modsafe:charged fixture root
func Sweep(c *Clock) byte {
	return scan(c)
}

// scan does the physical work but never touches the clock.
func scan(c *Clock) byte {
	_ = c
	return ReadPhys(4096) // want chargeflow "without charging the simulated clock"
}

// PaidSweep is the clean twin: its helper charges before reading.
//
//modsafe:charged fixture root, paid variant
func PaidSweep(c *Clock) byte {
	return paidScan(c)
}

// paidScan charges for the read it performs.
func paidScan(c *Clock) byte {
	c.Charge(1)
	return ReadPhys(4096)
}

// FreeSweep documents that its cost is accounted by the caller; the
// suppression disables the root without touching the others.
//
//modlint:ignore chargeflow fixture: cost accounted by the caller
//modsafe:charged fixture root, suppressed
func FreeSweep(c *Clock) byte {
	_ = c
	return freeScan()
}

// freeScan would be a finding if FreeSweep's root were live.
func freeScan() byte {
	return ReadPhys(8192)
}
