// Package locks exercises the lockorder pass: an ABBA cycle spanning a
// call boundary, a recursive acquisition, a consistently-ordered pair that
// must stay clean, and a suppressed edge that breaks a would-be cycle.
package locks

import "sync"

// A and B form the ABBA cycle.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var ga A
var gb B

// TakeAB holds A.mu and reaches B.mu through a helper: the interprocedural
// half of the cycle.
func TakeAB() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	ga.n++
	bumpB() // want lockorder "lock order cycle: A.mu -> B.mu"
}

// bumpB acquires B.mu on its own; harmless in isolation.
func bumpB() {
	gb.mu.Lock()
	defer gb.mu.Unlock()
	gb.n++
}

// TakeBA takes the same two locks in the opposite order, directly.
func TakeBA() {
	gb.mu.Lock()
	defer gb.mu.Unlock()
	ga.mu.Lock()
	ga.n++
	gb.n++
	ga.mu.Unlock()
}

// R exercises the self-edge: Outer holds R.mu and calls a helper that
// locks it again.
type R struct {
	mu sync.Mutex
	n  int
}

// Outer self-deadlocks through inner.
func (r *R) Outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner() // want lockorder "R.mu acquired while already held"
}

func (r *R) inner() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// C and D are always taken C-then-D: a clean ordering, no findings.
type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

var gc C
var gd D

// OrderedEager releases in LIFO order explicitly.
func OrderedEager() {
	gc.mu.Lock()
	gd.mu.Lock()
	gd.n++
	gd.mu.Unlock()
	gc.n++
	gc.mu.Unlock()
}

// OrderedDeferred holds both to the end via defers: same C-then-D edge.
func OrderedDeferred() {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gd.mu.Lock()
	defer gd.mu.Unlock()
	gc.n++
	gd.n++
}

// E and F would form a cycle, but the E->F edge is deliberately suppressed:
// the F->E edge alone is acyclic and the fixture must stay quiet here.
type E struct {
	mu sync.Mutex
	n  int
}

type F struct {
	mu sync.Mutex
	n  int
}

var ge E
var gf F

// SuppressedEF documents its nonstandard order instead of reporting it.
func SuppressedEF() {
	ge.mu.Lock()
	//modlint:ignore lockorder fixture: this nesting is documented as safe
	gf.mu.Lock()
	gf.n++
	gf.mu.Unlock()
	ge.n++
	ge.mu.Unlock()
}

// TakeFE is the canonical order for the E/F pair.
func TakeFE() {
	gf.mu.Lock()
	defer gf.mu.Unlock()
	ge.mu.Lock()
	ge.n++
	ge.mu.Unlock()
	gf.n++
}
