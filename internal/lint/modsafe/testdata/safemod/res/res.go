// Package res exercises the releasetrack pass: leaks on error returns and
// panic paths, a discarded acquire, and the clean shapes — deferred
// release, explicit release, the err-check idiom, ownership transfers, and
// a suppressed acquire site.
package res

import "errors"

var errFail = errors.New("res: fail")

// Session is the paired resource under test.
type Session struct{ open bool }

// Open hands a live session to the caller, who must Close it.
//
//modsafe:acquires session fixture resource
func Open() (*Session, error) {
	return &Session{open: true}, nil
}

// Close releases the session.
//
//modsafe:releases session fixture resource
func (s *Session) Close() {
	s.open = false
}

// use borrows the session without taking ownership.
func use(s *Session) error {
	if !s.open {
		return errFail
	}
	return nil
}

// LeakOnError forgets the session on the early-return path.
func LeakOnError(fail bool) error {
	s, err := Open() // want releasetrack "escapes unreleased"
	if err != nil {
		return err
	}
	if fail {
		return errFail
	}
	s.Close()
	return nil
}

// LeakOnPanic loses the session when the precondition check fires: only a
// defer survives a panic.
func LeakOnPanic(n int) {
	s, _ := Open() // want releasetrack "escapes unreleased"
	if n < 0 {
		panic("res: negative")
	}
	s.Close()
}

// Discard drops the result on the floor; nothing can ever release it.
func Discard() {
	Open() // want releasetrack "is discarded"
}

// CleanDefer is the canonical shape: defer right after the err check.
func CleanDefer() error {
	s, err := Open()
	if err != nil {
		return err
	}
	defer s.Close()
	return use(s)
}

// CleanExplicit releases without defer on the single exit path.
func CleanExplicit() error {
	s, err := Open()
	if err != nil {
		return err
	}
	err = use(s)
	s.Close()
	return err
}

// CleanNilCheck uses the inverted err idiom.
func CleanNilCheck() {
	s, err := Open()
	if err == nil {
		defer s.Close()
		_ = use(s)
	}
}

// Transfer hands ownership to the caller: returning the resource
// discharges the obligation.
func Transfer() (*Session, error) {
	s, err := Open()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Holder parks a session for later release by someone else.
type Holder struct{ s *Session }

// Stash transfers ownership into the holder.
func Stash(h *Holder) error {
	s, err := Open()
	if err != nil {
		return err
	}
	h.s = s
	return nil
}

// Suppressed documents an acquire whose release the analyzer cannot see.
func Suppressed() {
	//modlint:ignore releasetrack fixture: released by the harness teardown
	s, _ := Open()
	_ = use(s)
}

// Domain exercises the resultless receiver-method shape (Pause/Resume).
type Domain struct{ paused bool }

// Pause suspends the domain until Resume.
//
//modsafe:acquires domain-pause fixture pause
func (d *Domain) Pause() {
	d.paused = true
}

// Resume lifts the pause.
//
//modsafe:releases domain-pause fixture pause
func (d *Domain) Resume() {
	d.paused = false
}

// PauseLeak leaves the domain paused on the failure path.
func PauseLeak(d *Domain, fail bool) error {
	d.Pause() // want releasetrack "escapes unreleased"
	if fail {
		return errFail
	}
	d.Resume()
	return nil
}

// PauseClean defers the resume immediately.
func PauseClean(d *Domain) error {
	d.Pause()
	defer d.Resume()
	if !d.paused {
		return errFail
	}
	return nil
}

// Gate exercises the error-returning receiver-method shape (the fallible
// Pause/Unpause of the hypervisor): every result is an error, so the
// receiver itself is the resource.
type Gate struct{ held bool }

// Engage takes the gate until Disengage.
//
//modsafe:acquires gate-hold fixture gate
func (g *Gate) Engage() error {
	g.held = true
	return nil
}

// Disengage releases the gate.
//
//modsafe:releases gate-hold fixture gate
func (g *Gate) Disengage() error {
	g.held = false
	return nil
}

// GateLeakOnError checks the error but forgets the gate on a later
// failure path.
func GateLeakOnError(g *Gate, fail bool) error {
	if err := g.Engage(); err != nil { // want releasetrack "escapes unreleased"
		return err
	}
	if fail {
		return errFail
	}
	return g.Disengage()
}

// GateLeakBareCall drops the error result and leaks on early return: the
// obligation still lands on the receiver.
func GateLeakBareCall(g *Gate, fail bool) error {
	g.Engage() // want releasetrack "escapes unreleased"
	if fail {
		return errFail
	}
	return g.Disengage()
}

// GateCleanErrCheck is the canonical fallible shape: the failure arm voids
// the obligation (nothing was engaged), the success path defers.
func GateCleanErrCheck(g *Gate) error {
	if err := g.Engage(); err != nil {
		return err
	}
	defer g.Disengage()
	return nil
}

// GateCleanExplicit releases on the single exit path.
func GateCleanExplicit(g *Gate) error {
	err := g.Engage()
	if err != nil {
		return err
	}
	return g.Disengage()
}
