// Package safemod is the modsafe fixture corpus: small packages that each
// exercise one analyzer — locks (lockorder cycles), res (releasetrack
// obligations), charge (chargeflow accounting), badann (directive hygiene).
// Expectation comments in each file drive the harness in modsafe_test.go
// and the full diagnostic stream is byte-pinned by safemod.golden.
package safemod
