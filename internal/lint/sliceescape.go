package lint

import (
	"fmt"
	"go/ast"
)

// sliceEscape flags exported functions in the guest-memory packages
// (internal/mm, internal/vmi, internal/guest) that return byte slices
// aliasing internal state — sub-slices of physical frames, disk images
// pulled straight out of a shared map, or slice-typed fields. A caller
// mutating such a slice would corrupt the guest (or, worse, the golden
// disk shared by every cloned VM) behind the simulation's back, breaking
// the cross-VM comparison that is ModChecker's entire premise. Returned
// buffers must be freshly allocated (make/append/copy) inside the
// function.
type sliceEscape struct{}

func (sliceEscape) Name() string { return "sliceescape" }

func (sliceEscape) Doc() string {
	return "guest-memory packages must not return sub-slices of internal state without a copy"
}

// sliceEscapeScope names the packages holding guest memory.
var sliceEscapeScope = map[string]bool{
	"mm":    true,
	"vmi":   true,
	"guest": true,
}

func (sliceEscape) Check(p *Package) []Finding {
	if !sliceEscapeScope[p.Name] || !inScope(p.RelDir, "internal/") {
		return nil
	}
	var out []Finding
	for _, sf := range p.Files {
		if sf.IsTest {
			continue
		}
		for _, fd := range funcsOf(sf.AST) {
			if fd.Body == nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			slots := byteSliceResults(fd.Type)
			if len(slots) == 0 {
				continue
			}
			out = append(out, checkEscapes(p, fd, slots)...)
		}
	}
	return out
}

// byteSliceResults returns the indices of []byte results in the signature.
func byteSliceResults(ft *ast.FuncType) map[int]bool {
	out := make(map[int]bool)
	if ft.Results == nil {
		return out
	}
	i := 0
	for _, field := range ft.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			if at, ok := field.Type.(*ast.ArrayType); ok && at.Len == nil {
				if id, ok := at.Elt.(*ast.Ident); ok && id.Name == "byte" {
					out[i] = true
				}
			}
			i++
		}
	}
	return out
}

// checkEscapes inspects every return in fd whose []byte positions hand out
// non-local memory.
func checkEscapes(p *Package, fd *ast.FuncDecl, slots map[int]bool) []Finding {
	local := localBuffers(fd)
	recv := recvName(fd)
	var out []Finding
	inspectScope(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		for i, res := range ret.Results {
			if !slots[i] || len(ret.Results) != countResults(fd.Type) {
				continue
			}
			if reason := escapes(res, local, recv); reason != "" {
				out = append(out, Finding{
					Pos:  p.Fset.Position(res.Pos()),
					Rule: "sliceescape",
					Msg:  fmt.Sprintf("%s returns %s; copy it first (append([]byte(nil), ...)) so callers cannot mutate guest state", fd.Name.Name, reason),
				})
			}
		}
		return true
	})
	return out
}

func countResults(ft *ast.FuncType) int {
	if ft.Results == nil {
		return 0
	}
	n := 0
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// localBuffers collects names bound to freshly allocated slices inside fd
// (x := make(...), x := append(...), x := []byte(...), x, err := f(...)).
func localBuffers(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs != nil && allocates(rhs) {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// allocates reports whether e evaluates to freshly allocated memory: a
// make/append/[]byte conversion, or any plain function call (the callee
// then owns the aliasing decision).
func allocates(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return true // make, append, or an ordinary call
	case *ast.ArrayType:
		return true // []byte(...) conversion
	case *ast.SelectorExpr:
		_ = fn
		return true // pkg.Func(...) or method call
	}
	return false
}

// escapes classifies a returned expression; non-empty means it aliases
// non-local memory, described by the returned string.
func escapes(e ast.Expr, local map[string]bool, recv string) string {
	switch e := e.(type) {
	case *ast.SliceExpr:
		if id, ok := e.X.(*ast.Ident); ok && local[id.Name] {
			return ""
		}
		if s := exprString(e.X); s != "" && !localRoot(e.X, local) {
			return fmt.Sprintf("a sub-slice of %s", s)
		}
		return ""
	case *ast.IndexExpr:
		if s := exprString(e.X); s != "" && !localRoot(e.X, local) {
			return fmt.Sprintf("an element of %s directly", s)
		}
		return ""
	case *ast.SelectorExpr:
		if recv != "" {
			if id, ok := e.X.(*ast.Ident); ok && id.Name == recv {
				return fmt.Sprintf("the field %s.%s directly", recv, e.Sel.Name)
			}
		}
		return ""
	}
	return ""
}

// localRoot reports whether the base expression bottoms out in a
// locally-allocated buffer.
func localRoot(e ast.Expr, local map[string]bool) bool {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return local[t.Name]
		case *ast.SliceExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return false
		}
	}
}
