// Known-bad fixture: the rule sees through a renamed time import.
package clockfix

import wall "time"

func sneaky() wall.Time {
	return wall.Now() // want clockdiscipline "time.Now reads the host clock"
}
