// Known-bad fixture: wall-clock reads in an internal package.
package clockfix

import "time"

func elapsed() time.Duration {
	start := time.Now() // want clockdiscipline "time.Now reads the host clock"
	work()
	return time.Since(start) // want clockdiscipline "time.Since reads the host clock"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want clockdiscipline "time.Until reads the host clock"
}

func work() {}
