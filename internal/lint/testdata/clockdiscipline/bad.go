// Known-bad fixture: wall-clock reads in an internal package.
package clockfix

import "time"

func elapsed() time.Duration {
	start := time.Now() // want clockdiscipline "time.Now reads the host clock"
	work()
	return time.Since(start) // want clockdiscipline "time.Since reads the host clock"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want clockdiscipline "time.Until reads the host clock"
}

func retryWithHostBackoff() {
	for i := 0; i < 3; i++ {
		work()
		time.Sleep(10 * time.Millisecond) // want clockdiscipline "time.Sleep waits on the host clock"
	}
}

func hostTimers() {
	<-time.After(time.Second)            // want clockdiscipline "time.After waits on the host clock"
	_ = time.NewTimer(time.Second)       // want clockdiscipline "time.NewTimer waits on the host clock"
	_ = time.NewTicker(time.Millisecond) // want clockdiscipline "time.NewTicker waits on the host clock"
	<-time.Tick(time.Second)             // want clockdiscipline "time.Tick waits on the host clock"
}

func work() {}
