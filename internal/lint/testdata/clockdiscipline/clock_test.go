// Known-good fixture: test files may use the host clock (polling
// deadlines around real network I/O need it).
package clockfix

import "time"

func testOnlyDeadline() time.Time {
	return time.Now().Add(2 * time.Second)
}
