// Known-good fixture: duration arithmetic and explicit instants are fine;
// only host-clock reads are banned.
package clockfix

import "time"

const tick = 25 * time.Microsecond

func charge(d time.Duration) time.Duration {
	return d * 2
}

func epoch() time.Time {
	return time.Unix(0, 0)
}
