// Known-bad fixture for clockdiscipline strict mode (loaded as
// internal/trace): in the observability packages even a bare reference to a
// host-clock function is banned, not just a call.
package tracefix

import "time"

// A method-value reference smuggles host time past a call-site scan.
var nowFn = time.Now // want clockdiscipline "time.Now referenced"

type stamper struct {
	clock func() time.Time
}

func newStamper() stamper {
	return stamper{clock: time.Now} // want clockdiscipline "time.Now referenced"
}

func directCall() time.Duration {
	start := time.Now()      // want clockdiscipline "time.Now referenced"
	return time.Since(start) // want clockdiscipline "time.Since referenced"
}

func hostWaitReference(f func(time.Duration)) {
	f(0)
	sleep := time.Sleep // want clockdiscipline "time.Sleep referenced"
	sleep(0)
}
