// Known-good fixture for clockdiscipline strict mode: duration arithmetic,
// explicit instants, and caller-supplied timestamps are exactly how the
// observability layer is supposed to handle time.
package tracefix

import "time"

type event struct {
	ts  time.Duration // simulated, caller-stamped
	dur time.Duration
}

func advance(cursor, d time.Duration) time.Duration {
	if d > 0 {
		cursor += d
	}
	return cursor
}

func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}
