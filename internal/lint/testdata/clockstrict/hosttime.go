// Allowlisted escape hatch: a file named hosttime.go is the one sanctioned
// place in a strict-scope package for host wall time (e.g. stamping an
// export's generated-at header). Nothing here may feed the event path.
package tracefix

import "time"

func exportedAt() time.Time {
	return time.Now()
}
