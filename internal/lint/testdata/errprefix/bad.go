// Known-bad fixture: error messages missing the package prefix.
package fake

import (
	"errors"
	"fmt"
)

var errState = errors.New("bad state") // want errprefix "does not start with"

func open(name string) error {
	return fmt.Errorf("opening %s failed", name) // want errprefix "does not start with"
}

func parse(line string) error {
	return fmt.Errorf("Fake: wrong case for %q", line) // want errprefix "does not start with"
}
