// Known-good fixture: the sanctioned error-message shapes.
package fake

import (
	"errors"
	"fmt"
)

var errGone = errors.New("fake: resource gone")

func load(name string) error {
	return fmt.Errorf("fake: loading %s: %w", name, errGone)
}

func attach(vm string) error {
	// "pkg <subject>: ..." is the convention for per-object context.
	return fmt.Errorf("fake %q: attach refused", vm)
}

func wrap(err error) error {
	// Wrap-style messages start with a verb placeholder.
	return fmt.Errorf("%w: while finalizing", err)
}
