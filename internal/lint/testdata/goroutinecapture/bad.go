// Known-bad fixture: goroutine launch mistakes.
package gofix

import "sync"

func fanOut(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		go func() { // want goroutinecapture 'captures loop variable "i"' // want goroutinecapture 'captures loop variable "v"'
			wg.Add(1) // want goroutinecapture "wg.Add inside the spawned goroutine"
			defer wg.Done()
			use(i + v)
		}()
	}
	wg.Wait()
}

func indexLoop(n int) {
	results := make([]int, n)
	for i := 0; i < n; i++ {
		go func() { // want goroutinecapture 'captures loop variable "i"'
			results[i] = i * i
		}()
	}
}

func use(int) {}
