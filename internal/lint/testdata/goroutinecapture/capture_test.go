// Known-bad fixture in a _test.go file: goroutine hygiene applies to test
// code too (unlike the other rules, which exempt tests).
package gofix

func spawnInTest(vms []string) {
	for _, vm := range vms {
		go func() { // want goroutinecapture 'captures loop variable "vm"'
			use(len(vm))
		}()
	}
}
