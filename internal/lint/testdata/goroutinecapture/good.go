// Known-good fixture: the project's goroutine-launch idiom (the one
// CheckPool's parallel driver uses).
package gofix

import "sync"

func fanOutGood(items []int) {
	var wg sync.WaitGroup
	results := make([]int, len(items))
	for i, v := range items {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			results[i] = v * v
		}(i, v)
	}
	wg.Wait()
}

func nonLoop(job func()) {
	done := make(chan struct{})
	go func() { // not in a loop: nothing to capture
		defer close(done)
		job()
	}()
	<-done
}
