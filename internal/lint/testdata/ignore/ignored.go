// Fixture for the //modlint:ignore escape hatch. Expectations for this
// package are asserted directly in lint_test.go (want comments cannot
// share a line with a directive: Go merges trailing comments).
package ignorefix

import "time"

func suppressedTrailing() time.Time {
	return time.Now() //modlint:ignore clockdiscipline this package fakes the host boundary
}

func suppressedAbove() time.Time {
	//modlint:ignore clockdiscipline reason on the preceding line also counts
	return time.Now()
}

func notSuppressed() time.Time {
	return time.Now() // line 18: expected finding
}

func wrongRule() time.Time {
	//modlint:ignore errprefix suppressing the wrong rule does not help
	return time.Now() // line 23: expected finding
}
