// Fixture for malformed ignore directives: each is itself a finding, and
// suppresses nothing.
package ignorefix

import "time"

func missingReason() time.Time {
	//modlint:ignore clockdiscipline
	return time.Now() // line 9: finding survives; line 8: ignore-directive finding
}

func unknownRule() time.Time {
	//modlint:ignore nosuchrule because I said so
	return time.Now() // line 14: finding survives; line 13: ignore-directive finding
}
