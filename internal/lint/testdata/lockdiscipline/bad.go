// Known-bad fixture: every way the mutex conventions can be broken.
package lockfix

import "sync"

// Counter's mu guards the fields declared after it (n, history).
type Counter struct {
	limit int // above the mutex: unguarded by convention

	mu      sync.Mutex
	n       int
	history []int
}

// Value copies the receiver — and the mutex inside it.
func (c Counter) Value() int { // want lockdiscipline "value receiver of lock-holding type Counter"
	return 0
}

// Merge takes a lock-holding type by value.
func Merge(dst *Counter, src Counter) { // want lockdiscipline "parameter of lock-holding type Counter passed by value"
	_ = src
}

// Peek reads a guarded field with no lock.
func (c *Counter) Peek() int { // want lockdiscipline "touches field(s) n guarded by mu without locking"
	return c.n
}

// Drain reads two guarded fields with no lock.
func (c *Counter) Drain() []int { // want lockdiscipline "touches field(s) history, n guarded by mu"
	out := c.history
	c.n = 0
	return out
}

// LeakOnPanic locks but never unlocks.
func (c *Counter) LeakOnPanic() {
	c.mu.Lock() // want lockdiscipline "no matching c.mu.Unlock"
	c.n++
}

// EarlyReturn can leave with the lock held.
func (c *Counter) EarlyReturn(stop bool) {
	c.mu.Lock() // want lockdiscipline "can reach a return before c.mu.Unlock"
	if stop {
		return
	}
	c.n++
	c.mu.Unlock()
}

// Registry mixes a reader lock with the same mistakes.
type Registry struct {
	mu    sync.RWMutex
	items map[string]int
}

func (r *Registry) Leaky(key string) int {
	r.mu.RLock() // want lockdiscipline "can reach a return before r.mu.RUnlock"
	v, ok := r.items[key]
	if !ok {
		return -1
	}
	r.mu.RUnlock()
	return v
}
