// Known-good fixture: the sanctioned locking patterns.
package lockfix

import "sync"

type Gauge struct {
	name string // immutable after construction: above the mutex

	mu  sync.RWMutex
	val float64
}

// Name touches only unguarded state.
func (g *Gauge) Name() string { return g.name }

// Set uses the canonical defer pairing.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val = v
}

// Get reads under the reader lock.
func (g *Gauge) Get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// Swap releases inline before every return.
func (g *Gauge) Swap(v float64) float64 {
	g.mu.Lock()
	old := g.val
	g.val = v
	g.mu.Unlock()
	return old
}

// Bump releases inline on a branch before the shared return.
func (g *Gauge) Bump(by float64) {
	if by == 0 {
		return
	}
	g.mu.Lock()
	g.val += by
	g.mu.Unlock()
}

// reset is unexported: internal helpers may rely on the caller's lock.
func (g *Gauge) reset() { g.val = 0 }

// CopyName passes a pointer, never the struct.
func CopyName(g *Gauge) string { return g.Name() }
