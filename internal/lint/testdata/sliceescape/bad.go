// Known-bad fixture: exported functions handing out aliases of guest
// memory. The package is named mm so the rule's scope check applies.
package mm

type Memory struct {
	frames map[uint32][]byte
	raw    []byte
}

// Frame returns a frame's backing array straight out of the map.
func (m *Memory) Frame(pfn uint32) []byte {
	return m.frames[pfn] // want sliceescape "an element of m.frames directly"
}

// Raw returns the whole backing slice field.
func (m *Memory) Raw() []byte {
	return m.raw // want sliceescape "the field m.raw directly"
}

// Window returns a sub-slice of the backing array.
func (m *Memory) Window(off, n int) []byte {
	return m.raw[off : off+n] // want sliceescape "a sub-slice of m.raw"
}

// PageOf returns a sub-slice of a parameter the caller still owns.
func PageOf(image []byte, page int) []byte {
	return image[page*4096 : (page+1)*4096] // want sliceescape "a sub-slice of image"
}
