// Known-good fixture: returning freshly allocated memory is fine.
package mm

// FrameCopy copies before returning.
func (m *Memory) FrameCopy(pfn uint32) []byte {
	out := make([]byte, 4096)
	copy(out, m.frames[pfn])
	return out
}

// Dup uses the append-copy idiom directly in the return.
func (m *Memory) Dup() []byte {
	return append([]byte(nil), m.raw...)
}

// Tail sub-slices a locally allocated buffer.
func (m *Memory) Tail(n int) []byte {
	buf := make([]byte, 4096)
	copy(buf, m.raw)
	return buf[len(buf)-n:]
}

// Render delegates to another function, which owns the aliasing decision.
func (m *Memory) Render() []byte {
	b := encode(m.raw)
	return b
}

// header is unexported: package-internal aliasing is allowed.
func (m *Memory) header() []byte {
	return m.raw[:64]
}

func encode(b []byte) []byte {
	return append([]byte(nil), b...)
}
