// Package metrics is the reproduction's counter/gauge/histogram registry:
// the uniform observability surface that absorbs what used to be ad-hoc
// per-subsystem stat structs (vmi.Stats, SharedStats) and gives every layer
// — hypervisor clock charges, introspection primitives, pipeline stages,
// scanner sweeps — one deterministic place to account its work.
//
// Determinism rules (shared with internal/trace):
//
//   - No host time. Every value is a count or a simulated duration fed in by
//     the caller; nothing in this package reads the host clock.
//   - Export order is the sorted metric name, never map iteration order, so
//     two runs from one seed render byte-identical snapshots.
//   - Counters are commutative sums over atomics: the total is independent
//     of goroutine interleaving, which is what lets the parallel pipeline
//     increment them from bounded workers without perturbing results.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use, and all methods are nil-receiver-safe so instrumentation sites can
// hold optional counters without guards.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins signed level (pool size, quarantine count).
// The zero value is ready to use; methods are nil-receiver-safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets observations (simulated durations, expressed in
// seconds) into fixed upper-bound buckets plus a +Inf overflow bucket. The
// bounds are fixed at registration, so exports are deterministic however the
// observations interleave.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; immutable after registration
	counts []uint64  // guarded by mu; len(bounds)+1, last is +Inf
	count  uint64    // guarded by mu
	sum    float64   // guarded by mu
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// ObserveDuration records a simulated duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// DefBuckets spans the sweep timescales this simulation produces: tens of
// microseconds (one TLB-warm page read) up to tens of simulated seconds
// (a contended full-pool sweep).
func DefBuckets() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 50}
}

// Registry is a named collection of metrics. The zero value is ready to
// use; get-or-create lookups are concurrency-safe. Hot paths should cache
// the returned pointers rather than re-resolving names per operation.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter      // guarded by mu
	gauges map[string]*Gauge        // guarded by mu
	hists  map[string]*Histogram    // guarded by mu
	funcs  map[string]func() uint64 // guarded by mu
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counts == nil {
		r.counts = make(map[string]*Counter)
	}
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (DefBuckets when bounds is nil). Bounds of an existing
// histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefBuckets()
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a read-on-snapshot counter source: subsystems that
// already keep their own atomic counters (the VMI layer's per-pool stats)
// publish them through the registry without double-counting.
func (r *Registry) RegisterFunc(name string, f func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = make(map[string]func() uint64)
	}
	r.funcs[name] = f
}

// CounterSample is one counter's exported value.
type CounterSample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSample is one gauge's exported value.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSample is one histogram's exported state: cumulative bucket
// counts up to each bound, plus count and sum.
type HistogramSample struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time, deterministically ordered export of a
// registry.
type Snapshot struct {
	Counters   []CounterSample   `json:"counters,omitempty"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
}

// Snapshot captures every metric, sorted by name. Function-backed counters
// are folded into Counters alongside registry-owned ones.
//
//moddet:sink metric snapshots feed deterministic exports
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for n, c := range r.counts {
		counts[n] = c
	}
	funcs := make(map[string]func() uint64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	var s Snapshot
	for n, c := range counts {
		s.Counters = append(s.Counters, CounterSample{Name: n, Value: c.Load()})
	}
	for n, f := range funcs {
		s.Counters = append(s.Counters, CounterSample{Name: n, Value: f()})
	}
	for n, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: n, Value: g.Load()})
	}
	for n, h := range hists {
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramSample{
			Name:    n,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]uint64(nil), h.counts...),
			Count:   h.count,
			Sum:     h.sum,
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteText renders the snapshot as aligned "name value" lines.
//
//moddet:sink metrics text export must be byte-identical across runs
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%-40s count=%d sum=%.6f\n", h.Name, h.Count, h.Sum); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
//
//moddet:sink metrics JSON export must be byte-identical across runs
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
