package metrics

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatalf("nil counter Load = %d", c.Load())
	}
	var g *Gauge
	g.Set(7)
	if g.Load() != 0 {
		t.Fatalf("nil gauge Load = %d", g.Load())
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
}

func TestCounterGauge(t *testing.T) {
	var r Registry
	c := r.Counter("a")
	c.Add(2)
	c.Inc()
	if got := r.Counter("a").Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("b")
	g.Set(-4)
	if got := r.Gauge("b").Load(); got != -4 {
		t.Fatalf("gauge = %d, want -4", got)
	}
	// Get-or-create must return the same instance.
	if r.Counter("a") != c {
		t.Fatal("Counter did not return the registered instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var r Registry
	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// SearchFloat64s: v <= bound lands in that bucket (1 goes to bucket 0).
	want := []uint64{2, 1, 1}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %v", hs.Buckets)
	}
	for i := range want {
		if hs.Buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", hs.Buckets, want)
		}
	}
	if hs.Count != 4 || hs.Sum != 106.5 {
		t.Fatalf("count=%d sum=%v", hs.Count, hs.Sum)
	}
}

func TestSnapshotSortedAndFuncs(t *testing.T) {
	var r Registry
	r.Counter("zz").Add(1)
	r.Counter("aa").Add(2)
	r.RegisterFunc("mm", func() uint64 { return 9 })
	s := r.Snapshot()
	if len(s.Counters) != 3 {
		t.Fatalf("counters = %d", len(s.Counters))
	}
	names := []string{s.Counters[0].Name, s.Counters[1].Name, s.Counters[2].Name}
	if names[0] != "aa" || names[1] != "mm" || names[2] != "zz" {
		t.Fatalf("order = %v", names)
	}
	if s.Counters[1].Value != 9 {
		t.Fatalf("func-backed counter = %d", s.Counters[1].Value)
	}
}

func TestSnapshotRenderDeterministic(t *testing.T) {
	build := func() *Registry {
		var r Registry
		r.Counter("vmi/reads").Add(10)
		r.Counter("clock/charges").Add(4)
		r.Gauge("pool/size").Set(15)
		r.Histogram("sweep/elapsed", nil).ObserveDuration(3 * time.Millisecond)
		return &r
	}
	var a, b, aj, bj bytes.Buffer
	if err := build().Snapshot().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("text export differs:\n%s\n---\n%s", a.String(), b.String())
	}
	if err := build().Snapshot().WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Fatalf("json export differs:\n%s\n---\n%s", aj.String(), bj.String())
	}
}

func TestConcurrentAccess(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
