package mm

import "testing"

// buildImage writes a small deterministic image into fresh memory.
func buildImage(t *testing.T, payload []byte) (*PhysMemory, uint32) {
	t.Helper()
	m := NewPhysMemory(64*PageSize, 7)
	pfn := mustAlloc(t, m)
	if err := m.WritePhys(pfn*PageSize, payload); err != nil {
		t.Fatal(err)
	}
	return m, pfn
}

func TestContentIDStableAcrossRebuilds(t *testing.T) {
	a, _ := buildImage(t, []byte{0xAA, 0xBB, 0xCC})
	b, _ := buildImage(t, []byte{0xAA, 0xBB, 0xCC})

	if _, ok := a.ContentID(); ok {
		t.Fatal("unfrozen memory reported a ContentID")
	}
	a.Seal()
	b.Seal()

	ida, oka := a.ContentID()
	idb, okb := b.ContentID()
	if !oka || !okb {
		t.Fatalf("sealed memories report no ContentID: %v %v", oka, okb)
	}
	if ida != idb {
		t.Fatalf("identical images fingerprint differently: %#x vs %#x", ida, idb)
	}

	// SnapshotID, by contrast, is an allocation counter: the two rebuilds
	// must NOT collide on it — that asymmetry is why ContentID exists.
	sa, _ := a.SnapshotID()
	sb, _ := b.SnapshotID()
	if sa == sb {
		t.Fatalf("distinct base layers share SnapshotID %#x", sa)
	}
}

func TestContentIDTracksContent(t *testing.T) {
	a, _ := buildImage(t, []byte{0xAA, 0xBB, 0xCC})
	b, pfn := buildImage(t, []byte{0xAA, 0xBB, 0xCC})
	a.Seal()
	b.Seal()
	ida, _ := a.ContentID()

	// A write invalidates the identity until the next Seal, which mints a
	// fresh fingerprint for the changed bytes.
	if err := b.WritePhys(pfn*PageSize, []byte{0xDD}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.ContentID(); ok {
		t.Fatal("dirtied memory still reported a ContentID")
	}
	b.Seal()
	idb, ok := b.ContentID()
	if !ok {
		t.Fatal("resealed memory reports no ContentID")
	}
	if idb == ida {
		t.Fatalf("changed image kept fingerprint %#x", ida)
	}
}

func TestContentIDSharedByForks(t *testing.T) {
	m, _ := buildImage(t, []byte{0x11, 0x22})
	f := m.Fork()
	idm, okm := m.ContentID()
	idf, okf := f.ContentID()
	if !okm || !okf || idm != idf {
		t.Fatalf("parent/fork ContentID: %#x(%v) vs %#x(%v)", idm, okm, idf, okf)
	}

	// Sealing an unmodified fork is a no-op: same layer, same identity.
	f.Seal()
	if id, ok := f.ContentID(); !ok || id != idm {
		t.Fatalf("reseal of clean fork changed identity: %#x(%v)", id, ok)
	}
}
