package mm

import (
	"bytes"
	"testing"
)

// mustAlloc allocates a frame or fails the test.
func mustAlloc(t *testing.T, m *PhysMemory) uint32 {
	t.Helper()
	pfn, err := m.AllocFrame()
	if err != nil {
		t.Fatalf("AllocFrame: %v", err)
	}
	return pfn
}

func TestForkSharesFramesUntilWrite(t *testing.T) {
	m := NewPhysMemory(64*PageSize, 7)
	pfn := mustAlloc(t, m)
	pa := pfn * PageSize
	if err := m.WritePhys(pa, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}

	f := m.Fork()
	if got := f.PrivateFrames(); got != 0 {
		t.Fatalf("fork has %d private frames, want 0", got)
	}
	if m.SharedFrames() != f.SharedFrames() || m.SharedFrames() == 0 {
		t.Fatalf("shared frames: parent %d fork %d", m.SharedFrames(), f.SharedFrames())
	}

	// Both read the shared image.
	pb, fb := make([]byte, 2), make([]byte, 2)
	if err := m.ReadPhys(pa, pb); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPhys(pa, fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, fb) || pb[0] != 0xAA {
		t.Fatalf("parent %x fork %x, want aabb", pb, fb)
	}

	// A write on one side copies the frame; the other side is untouched.
	if err := f.WritePhys(pa, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if got := f.CowFaults(); got != 1 {
		t.Fatalf("fork CowFaults = %d, want 1", got)
	}
	if err := m.ReadPhys(pa, pb); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPhys(pa, fb); err != nil {
		t.Fatal(err)
	}
	if pb[0] != 0xAA || fb[0] != 0xCC {
		t.Fatalf("after CoW write: parent %x fork %x", pb, fb)
	}
	if got := f.PrivateFrames(); got != 1 {
		t.Fatalf("fork has %d private frames after one CoW fault, want 1", got)
	}
}

func TestSnapshotIDTracksContentIdentity(t *testing.T) {
	m := NewPhysMemory(64*PageSize, 7)
	if _, ok := m.SnapshotID(); ok {
		t.Fatal("never-forked memory has a SnapshotID")
	}
	pfn := mustAlloc(t, m)
	if err := m.WritePhys(pfn*PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}

	f1 := m.Fork()
	f2 := m.Fork()
	id0, ok := m.SnapshotID()
	if !ok {
		t.Fatal("parent has no SnapshotID right after Fork")
	}
	id1, ok1 := f1.SnapshotID()
	id2, ok2 := f2.SnapshotID()
	if !ok1 || !ok2 || id1 != id0 || id2 != id0 {
		t.Fatalf("fork ids %v/%v (ok %v/%v), want both %v", id1, id2, ok1, ok2, id0)
	}
	if refs := m.BaseRefs(); refs != 3 {
		t.Fatalf("BaseRefs = %d, want 3", refs)
	}

	// Dirtying one fork drops only that fork's identity.
	if err := f1.WritePhys(pfn*PageSize, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f1.SnapshotID(); ok {
		t.Fatal("dirtied fork still reports a SnapshotID")
	}
	if id, ok := f2.SnapshotID(); !ok || id != id0 {
		t.Fatalf("clean sibling lost its SnapshotID (%v, %v)", id, ok)
	}

	// Forking the dirtied memory freezes a new, distinct image.
	f3 := f1.Fork()
	id3, ok := f3.SnapshotID()
	if !ok || id3 == id0 {
		t.Fatalf("re-fork id %v (ok %v), want a fresh id != %v", id3, ok, id0)
	}
}

func TestForkAllocatorsStayAligned(t *testing.T) {
	// Parent and fork share the free order: as long as neither frees
	// frames, their allocation streams stay identical — the property that
	// keeps forked guests' physical layouts deterministic.
	m := NewPhysMemory(256*PageSize, 99)
	for i := 0; i < 10; i++ {
		mustAlloc(t, m)
	}
	f := m.Fork()
	for i := 0; i < 20; i++ {
		a, b := mustAlloc(t, m), mustAlloc(t, f)
		if a != b {
			t.Fatalf("alloc %d diverged: parent %#x fork %#x", i, a, b)
		}
	}
}

func TestForkFreeAndReuseIsPrivate(t *testing.T) {
	m := NewPhysMemory(64*PageSize, 3)
	pfn := mustAlloc(t, m)
	if err := m.WritePhys(pfn*PageSize, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	f := m.Fork()

	// Free the shared frame on the fork: reads there must see zeros while
	// the parent still sees the image.
	if err := f.FreeFrame(pfn); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := f.ReadPhys(pfn*PageSize, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatalf("freed fork frame reads %#x, want 0", b[0])
	}
	if err := m.ReadPhys(pfn*PageSize, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x77 {
		t.Fatalf("parent frame reads %#x after fork freed its copy, want 0x77", b[0])
	}
	if err := f.FreeFrame(pfn); err == nil {
		t.Fatal("double free of a tombstoned frame succeeded")
	}

	// The freed frame is recycled LIFO and comes back zeroed.
	got := mustAlloc(t, f)
	if got != pfn {
		t.Fatalf("fork recycled %#x, want %#x", got, pfn)
	}
	if err := f.ReadPhys(pfn*PageSize, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatalf("recycled frame reads %#x, want 0", b[0])
	}
}

func TestForkImplicitWriteStealsFromSharedOrder(t *testing.T) {
	m := NewPhysMemory(4*PageSize, 5)
	f := m.Fork()
	// Claim PFN 2 on the fork by raw write; the fork's allocator must skip
	// it while the parent's still hands it out.
	if err := f.WritePhys(2*PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}
	sawOnParent := false
	for i := 0; i < 3; i++ {
		if pfn, err := m.AllocFrame(); err == nil && pfn == 2 {
			sawOnParent = true
		}
	}
	if !sawOnParent {
		t.Fatal("parent allocator never produced PFN 2")
	}
	for i := 0; i < 2; i++ {
		if pfn := mustAlloc(t, f); pfn == 2 {
			t.Fatal("fork allocator handed out stolen PFN 2")
		}
	}
	if _, err := f.AllocFrame(); err != ErrOutOfMemory {
		t.Fatalf("fork alloc after exhaustion: %v, want ErrOutOfMemory", err)
	}
}

func TestFramesInUseAcrossForkAndFree(t *testing.T) {
	m := NewPhysMemory(64*PageSize, 11)
	p1 := mustAlloc(t, m)
	mustAlloc(t, m)
	if got := m.FramesInUse(); got != 2 {
		t.Fatalf("FramesInUse = %d, want 2", got)
	}
	f := m.Fork()
	if got := f.FramesInUse(); got != 2 {
		t.Fatalf("fork FramesInUse = %d, want 2", got)
	}
	if err := f.FreeFrame(p1); err != nil {
		t.Fatal(err)
	}
	if got, want := f.FramesInUse(), 1; got != want {
		t.Fatalf("fork FramesInUse after free = %d, want %d", got, want)
	}
	if got := m.FramesInUse(); got != 2 {
		t.Fatalf("parent FramesInUse changed to %d after fork freed a frame", got)
	}
	// CoW copy does not change the count.
	if err := f.WritePhys(0, []byte{0}); err != nil { // PFN 0: implicit alloc
		t.Fatal(err)
	}
	if got := f.FramesInUse(); got != 2 {
		t.Fatalf("fork FramesInUse after implicit alloc = %d, want 2", got)
	}
}
