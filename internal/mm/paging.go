package mm

import (
	"encoding/binary"
	"fmt"
)

// Page table entry flag bits (x86, 32-bit non-PAE paging).
const (
	PtePresent  = 1 << 0
	PteWritable = 1 << 1
	PteUser     = 1 << 2
)

// entriesPerTable is the number of 4-byte entries in a page directory or
// page table (1024 each, covering 4 MiB and 4 KiB respectively).
const entriesPerTable = 1024

// AddressSpace is one virtual address space backed by real two-level x86
// page tables stored *inside* guest-physical memory. The guest kernel owns
// and mutates it; VMI never touches it and instead re-walks the same
// physical structures itself via WalkPageTables.
type AddressSpace struct {
	mem *PhysMemory
	cr3 uint32 // physical address of the page directory
}

// NewAddressSpace allocates a page directory and returns the empty address
// space.
func NewAddressSpace(mem *PhysMemory) (*AddressSpace, error) {
	pfn, err := mem.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("mm: allocating page directory: %w", err)
	}
	return &AddressSpace{mem: mem, cr3: pfn << PageShift}, nil
}

// CR3 returns the physical address of the page directory, as the guest's
// CR3 register would hold it. The hypervisor exposes this to VMI.
func (as *AddressSpace) CR3() uint32 { return as.cr3 }

// Phys returns the physical memory backing this address space.
func (as *AddressSpace) Phys() *PhysMemory { return as.mem }

func readEntry(mem PhysReader, pa uint32) (uint32, error) {
	var b [4]byte
	if err := mem.ReadPhys(pa, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (as *AddressSpace) writeEntry(pa, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.mem.WritePhys(pa, b[:])
}

// Map installs a translation va -> pfn with the given flag bits, allocating
// the intermediate page table if needed. va must be page-aligned.
func (as *AddressSpace) Map(va, pfn, flags uint32) error {
	if va&(PageSize-1) != 0 {
		return fmt.Errorf("mm: map of unaligned address %#x", va)
	}
	pdIndex := va >> 22
	ptIndex := (va >> PageShift) & (entriesPerTable - 1)

	pdeAddr := as.cr3 + pdIndex*4
	pde, err := readEntry(as.mem, pdeAddr)
	if err != nil {
		return err
	}
	if pde&PtePresent == 0 {
		ptPFN, err := as.mem.AllocFrame()
		if err != nil {
			return fmt.Errorf("mm: allocating page table: %w", err)
		}
		pde = ptPFN<<PageShift | PtePresent | PteWritable
		if err := as.writeEntry(pdeAddr, pde); err != nil {
			return err
		}
	}
	pteAddr := (pde &^ (PageSize - 1)) + ptIndex*4
	return as.writeEntry(pteAddr, pfn<<PageShift|flags|PtePresent)
}

// Unmap removes the translation for the page containing va. The backing
// frame is not freed; callers own frame lifecycle.
func (as *AddressSpace) Unmap(va uint32) error {
	pdIndex := va >> 22
	ptIndex := (va >> PageShift) & (entriesPerTable - 1)
	pde, err := readEntry(as.mem, as.cr3+pdIndex*4)
	if err != nil {
		return err
	}
	if pde&PtePresent == 0 {
		return fmt.Errorf("%w: unmap %#x", ErrUnmapped, va)
	}
	pteAddr := (pde &^ (PageSize - 1)) + ptIndex*4
	return as.writeEntry(pteAddr, 0)
}

// AllocAndMap allocates frames for and maps the size-byte region starting
// at the page-aligned va. It returns the PFNs backing the region in order.
func (as *AddressSpace) AllocAndMap(va, size, flags uint32) ([]uint32, error) {
	if va&(PageSize-1) != 0 {
		return nil, fmt.Errorf("mm: AllocAndMap of unaligned address %#x", va)
	}
	pages := (size + PageSize - 1) / PageSize
	pfns := make([]uint32, 0, pages)
	for i := uint32(0); i < pages; i++ {
		pfn, err := as.mem.AllocFrame()
		if err != nil {
			return nil, err
		}
		if err := as.Map(va+i*PageSize, pfn, flags); err != nil {
			return nil, err
		}
		pfns = append(pfns, pfn)
	}
	return pfns, nil
}

// UnmapAndFree tears down the mapping for [va, va+size) and frees the
// backing frames. Used when a kernel module is unloaded.
func (as *AddressSpace) UnmapAndFree(va, size uint32) error {
	pages := (size + PageSize - 1) / PageSize
	for i := uint32(0); i < pages; i++ {
		pa, err := as.Translate(va + i*PageSize)
		if err != nil {
			return err
		}
		if err := as.Unmap(va + i*PageSize); err != nil {
			return err
		}
		if err := as.mem.FreeFrame(pa >> PageShift); err != nil {
			return err
		}
	}
	return nil
}

// Translate walks this address space's page tables for va.
func (as *AddressSpace) Translate(va uint32) (uint32, error) {
	return WalkPageTables(as.mem, as.cr3, va)
}

// Read copies len(b) bytes from virtual address va, walking the page tables
// for each page touched.
func (as *AddressSpace) Read(va uint32, b []byte) error {
	return readVirtual(as.mem, as.cr3, va, b)
}

// Write copies b to virtual address va page by page.
func (as *AddressSpace) Write(va uint32, b []byte) error {
	for len(b) > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return err
		}
		off := va & (PageSize - 1)
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if err := as.mem.WritePhys(pa, b[:n]); err != nil {
			return err
		}
		b = b[n:]
		va += n
	}
	return nil
}

// WalkPageTables translates va by reading the page directory and page table
// out of raw physical memory, the way libVMI translates guest virtual
// addresses from outside the guest. cr3 is the physical address of the page
// directory.
//
//modsafe:spends two-level page-table walk
func WalkPageTables(mem PhysReader, cr3, va uint32) (uint32, error) {
	pdIndex := va >> 22
	ptIndex := (va >> PageShift) & (entriesPerTable - 1)

	pde, err := readEntry(mem, cr3+pdIndex*4)
	if err != nil {
		return 0, err
	}
	if pde&PtePresent == 0 {
		return 0, fmt.Errorf("%w: va %#x (PDE %d not present)", ErrUnmapped, va, pdIndex)
	}
	pte, err := readEntry(mem, (pde&^(PageSize-1))+ptIndex*4)
	if err != nil {
		return 0, err
	}
	if pte&PtePresent == 0 {
		return 0, fmt.Errorf("%w: va %#x (PTE %d not present)", ErrUnmapped, va, ptIndex)
	}
	return (pte &^ (PageSize - 1)) | (va & (PageSize - 1)), nil
}

// readVirtual reads len(b) bytes from va using an external page-table walk,
// shared by AddressSpace.Read and the VMI layer.
func readVirtual(mem PhysReader, cr3, va uint32, b []byte) error {
	for len(b) > 0 {
		pa, err := WalkPageTables(mem, cr3, va)
		if err != nil {
			return err
		}
		off := va & (PageSize - 1)
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if err := mem.ReadPhys(pa, b[:n]); err != nil {
			return err
		}
		b = b[n:]
		va += n
	}
	return nil
}

// ReadVirtual is the exported form of readVirtual for introspection
// clients: it translates and reads entirely through the PhysReader, never
// through guest-side state.
func ReadVirtual(mem PhysReader, cr3, va uint32, b []byte) error {
	return readVirtual(mem, cr3, va, b)
}
