package mm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newAS(t testing.TB) (*PhysMemory, *AddressSpace) {
	t.Helper()
	m := NewPhysMemory(16<<20, 1)
	as, err := NewAddressSpace(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, as
}

func TestMapTranslate(t *testing.T) {
	m, as := newAS(t)
	pfn, _ := m.AllocFrame()
	const va = 0x80001000
	if err := as.Map(va, pfn, PteWritable); err != nil {
		t.Fatal(err)
	}
	pa, err := as.Translate(va + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pfn<<PageShift|0x123 {
		t.Errorf("pa = %#x, want %#x", pa, pfn<<PageShift|0x123)
	}
}

func TestMapUnaligned(t *testing.T) {
	_, as := newAS(t)
	if err := as.Map(0x80001004, 3, 0); err == nil {
		t.Error("unaligned map accepted")
	}
}

func TestTranslateUnmapped(t *testing.T) {
	_, as := newAS(t)
	if _, err := as.Translate(0xDEAD0000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("err = %v, want ErrUnmapped", err)
	}
}

func TestTranslateUnmappedPTE(t *testing.T) {
	m, as := newAS(t)
	pfn, _ := m.AllocFrame()
	// Map one page; its neighbor shares the page table but has no PTE.
	if err := as.Map(0x80001000, pfn, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(0x80002000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("err = %v, want ErrUnmapped (PTE absent)", err)
	}
}

func TestUnmap(t *testing.T) {
	m, as := newAS(t)
	pfn, _ := m.AllocFrame()
	as.Map(0x80001000, pfn, 0)
	if err := as.Unmap(0x80001000); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(0x80001000); !errors.Is(err, ErrUnmapped) {
		t.Error("translation survives unmap")
	}
}

func TestUnmapUnmapped(t *testing.T) {
	_, as := newAS(t)
	if err := as.Unmap(0xDEAD0000); !errors.Is(err, ErrUnmapped) {
		t.Errorf("err = %v", err)
	}
}

func TestAllocAndMap(t *testing.T) {
	_, as := newAS(t)
	pfns, err := as.AllocAndMap(0x80010000, 3*PageSize+100, PteWritable)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfns) != 4 {
		t.Fatalf("%d frames for 3 pages + 100 bytes, want 4", len(pfns))
	}
	for i := uint32(0); i < 4; i++ {
		if _, err := as.Translate(0x80010000 + i*PageSize); err != nil {
			t.Errorf("page %d unmapped: %v", i, err)
		}
	}
}

func TestAllocAndMapScatteredPhysically(t *testing.T) {
	_, as := newAS(t)
	pfns, err := as.AllocAndMap(0x80010000, 16*PageSize, PteWritable)
	if err != nil {
		t.Fatal(err)
	}
	adjacent := 0
	for i := 1; i < len(pfns); i++ {
		if pfns[i] == pfns[i-1]+1 {
			adjacent++
		}
	}
	if adjacent > len(pfns)/2 {
		t.Errorf("backing frames mostly contiguous (%d/%d) — expected scatter", adjacent, len(pfns))
	}
}

func TestUnmapAndFree(t *testing.T) {
	m, as := newAS(t)
	before := m.FramesInUse()
	if _, err := as.AllocAndMap(0x80010000, 4*PageSize, PteWritable); err != nil {
		t.Fatal(err)
	}
	if err := as.UnmapAndFree(0x80010000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	// The page-table frame remains; the 4 data frames are gone.
	if got := m.FramesInUse(); got != before+1 {
		t.Errorf("FramesInUse = %d, want %d (+1 page table)", got, before+1)
	}
	if _, err := as.Translate(0x80010000); !errors.Is(err, ErrUnmapped) {
		t.Error("mapping survives UnmapAndFree")
	}
}

func TestReadWriteVirtualCrossPage(t *testing.T) {
	_, as := newAS(t)
	const va = 0x80010000
	if _, err := as.AllocAndMap(va, 4*PageSize, PteWritable); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*PageSize)
	rand.New(rand.NewSource(2)).Read(data)
	if err := as.Write(va+500, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(va+500, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page virtual IO mismatch")
	}
}

func TestWriteVirtualUnmappedFails(t *testing.T) {
	_, as := newAS(t)
	if err := as.Write(0x90000000, []byte{1}); !errors.Is(err, ErrUnmapped) {
		t.Errorf("err = %v", err)
	}
}

func TestExternalWalkMatchesInternal(t *testing.T) {
	m, as := newAS(t)
	if _, err := as.AllocAndMap(0x80010000, 8*PageSize, PteWritable); err != nil {
		t.Fatal(err)
	}
	for off := uint32(0); off < 8*PageSize; off += 1021 {
		va := 0x80010000 + off
		want, err := as.Translate(va)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WalkPageTables(m, as.CR3(), va)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("external walk %#x != internal %#x at va %#x", got, want, va)
		}
	}
}

func TestReadVirtualExternal(t *testing.T) {
	m, as := newAS(t)
	const va = 0x80010000
	as.AllocAndMap(va, 2*PageSize, PteWritable)
	data := []byte("introspected across the VM boundary")
	as.Write(va+PageSize-10, data)

	got := make([]byte, len(data))
	if err := ReadVirtual(m, as.CR3(), va+PageSize-10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
}

func TestAttachAddressSpace(t *testing.T) {
	m, as := newAS(t)
	const va = 0x80010000
	as.AllocAndMap(va, PageSize, PteWritable)
	as.Write(va, []byte{0x42})

	attached := AttachAddressSpace(m, as.CR3())
	got := make([]byte, 1)
	if err := attached.Read(va, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42 {
		t.Errorf("attached space reads %#02x", got[0])
	}
}

func TestPteFlags(t *testing.T) {
	m, as := newAS(t)
	pfn, _ := m.AllocFrame()
	if err := as.Map(0x80001000, pfn, PteWritable|PteUser); err != nil {
		t.Fatal(err)
	}
	// Inspect the raw PTE through physical memory.
	pde, err := readEntry(m, as.CR3()+(0x80001000>>22)*4)
	if err != nil {
		t.Fatal(err)
	}
	pte, err := readEntry(m, (pde&^(PageSize-1))+((0x80001000>>PageShift)&1023)*4)
	if err != nil {
		t.Fatal(err)
	}
	if pte&PtePresent == 0 || pte&PteWritable == 0 || pte&PteUser == 0 {
		t.Errorf("PTE = %#x missing flags", pte)
	}
	if pte>>PageShift != pfn {
		t.Errorf("PTE frame %#x, want %#x", pte>>PageShift, pfn)
	}
}

// TestPagingQuick property-tests map/translate over random VAs.
func TestPagingQuick(t *testing.T) {
	m, as := newAS(t)
	f := func(page uint16, off uint16) bool {
		va := 0x40000000 + uint32(page)*PageSize
		pfn, err := m.AllocFrame()
		if err != nil {
			// Pool exhaustion is fine for the property.
			return true
		}
		if err := as.Map(va, pfn, PteWritable); err != nil {
			return false
		}
		pa, err := as.Translate(va | uint32(off)&(PageSize-1))
		if err != nil {
			return false
		}
		return pa == pfn<<PageShift|uint32(off)&(PageSize-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
