// Package mm implements the memory substrate of a simulated 32-bit guest:
// sparse guest-physical memory and x86 two-level page tables
// (directory + table, 4 KiB pages).
//
// Both the guest kernel (internal/guest) and the introspection library
// (internal/vmi) operate on this substrate. The guest maps and writes
// through an AddressSpace; VMI performs its own independent page-table walk
// over raw physical reads (WalkPageTables), exactly as libVMI walks a real
// guest's tables from Dom0.
package mm

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the x86 4 KiB page size; PageShift its log2.
const (
	PageSize  = 4096
	PageShift = 12
)

// Errors returned by the memory substrate.
var (
	// ErrOutOfMemory indicates the physical frame pool is exhausted.
	ErrOutOfMemory = errors.New("mm: out of physical memory")
	// ErrUnmapped indicates a virtual address with no valid translation.
	ErrUnmapped = errors.New("mm: address not mapped")
	// ErrBadAddress indicates a physical access beyond the memory size.
	ErrBadAddress = errors.New("mm: physical address out of range")
)

// PhysReader is the read-only view of guest-physical memory that the
// introspection layer uses. Implemented by *PhysMemory.
type PhysReader interface {
	// ReadPhys copies len(b) bytes starting at physical address pa. Reads
	// may cross page boundaries; unallocated frames read as zeros.
	ReadPhys(pa uint32, b []byte) error
}

// baseLayer is a frozen, immutable memory image shared by every fork taken
// from it. Frames in a base layer are never written after the freeze — any
// write to a shared frame copies it into the writer's private overlay first
// — so one layer can back an arbitrary number of clones. The id is unique
// per frozen image and doubles as a content-identity token: two memories
// reporting the same SnapshotID are bit-for-bit identical.
type baseLayer struct {
	id     uint64
	frames map[uint32][]byte // PFN -> 4 KiB frame; immutable after freeze
	refs   atomic.Int64      // memories referencing this layer (informational)
	fpOnce sync.Once
	fp     uint64 // memoized content fingerprint; see fingerprint()
}

// fingerprint digests the layer's frame table — PFN, presence, and contents
// in PFN order — into a process-stable 64-bit content identity. Unlike id,
// which is a process-local counter, equal fingerprints name bit-identical
// images across runs: the simulation is seed-deterministic, so the same
// cloud built in another process freezes byte-identical layers and derives
// the same fingerprints. Memoized; layers are immutable after the freeze.
func (b *baseLayer) fingerprint() uint64 {
	b.fpOnce.Do(func() {
		pfns := make([]uint32, 0, len(b.frames))
		for pfn := range b.frames {
			pfns = append(pfns, pfn)
		}
		sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
		h := sha256.New()
		var word [8]byte
		for _, pfn := range pfns {
			frame := b.frames[pfn]
			binary.BigEndian.PutUint32(word[:4], pfn)
			binary.BigEndian.PutUint32(word[4:], uint32(len(frame))) // 0: tombstone
			h.Write(word[:])
			h.Write(frame)
		}
		b.fp = binary.BigEndian.Uint64(h.Sum(nil))
	})
	return b.fp
}

// baseIDs issues process-unique identities for frozen memory images.
var baseIDs atomic.Uint64

// PhysMemory is sparse guest-physical memory: frames are allocated on
// demand from a fixed-size pool. The frame allocator hands out page frame
// numbers in a deterministic pseudo-random permutation so that contiguous
// virtual mappings land on scattered physical frames — the reason the
// paper's Module-Searcher must copy modules page by page rather than with
// one large read.
//
// A memory is a private overlay over an optional shared base layer. A
// freshly booted guest has no base: every frame lives in the overlay. Fork
// freezes the current image into an immutable base shared by parent and
// child, after which each side's memory cost is O(frames it dirties) — the
// copy-on-write sharing that makes fleet-scale clone pools affordable.
type PhysMemory struct {
	numFrames uint32        // immutable after construction
	cowFaults atomic.Uint64 // shared frames copied on first write

	mu sync.RWMutex
	// base is the shared frozen image this memory forked from (nil for a
	// never-forked memory). Swapped only under mu; the layer itself is
	// immutable.
	base *baseLayer
	// dirty is the private overlay: frames allocated or copied-on-write
	// since the last freeze. A nil value is a tombstone hiding a freed
	// base frame.
	dirty map[uint32][]byte
	// Free-frame bookkeeping. baseFree is the permuted allocation order;
	// its contents are immutable and shared across forks, with freeTop
	// marking this memory's private position in it (frames are popped
	// from the top downwards). returned holds frames freed since the last
	// freeze (re-allocated LIFO, before baseFree). stolen marks frames
	// below freeTop claimed out of order by implicit WritePhys allocation,
	// which the allocator must skip.
	baseFree []uint32
	freeTop  int
	returned []uint32
	stolen   map[uint32]struct{}
	// inUse counts allocated frames (base plus overlay, minus tombstones).
	inUse int
}

// NewPhysMemory creates a guest-physical memory of size bytes (rounded down
// to whole pages). The allocation order is derived from seed; clones built
// with the same seed allocate identically, while different seeds model the
// independently-evolved physical layouts of separate VMs.
func NewPhysMemory(size uint64, seed int64) *PhysMemory {
	n := uint32(size / PageSize)
	if n == 0 {
		n = 1
	}
	m := &PhysMemory{
		dirty:     make(map[uint32][]byte),
		numFrames: n,
	}
	// PFN 0 is reserved (null-page guard), like real kernels leave the
	// first physical page alone.
	order := make([]uint32, 0, n-1)
	for pfn := uint32(1); pfn < n; pfn++ {
		order = append(order, pfn)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	m.baseFree = order
	m.freeTop = len(order)
	return m
}

// Size returns the physical memory size in bytes.
func (m *PhysMemory) Size() uint64 { return uint64(m.numFrames) * PageSize }

// FramesInUse returns how many frames are currently allocated.
func (m *PhysMemory) FramesInUse() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.inUse
}

// popFreeLocked pops the next free PFN: most recently freed frames first
// (LIFO), then the shared permuted order from the top down, skipping frames
// stolen by implicit WritePhys allocation.
func (m *PhysMemory) popFreeLocked() (uint32, bool) {
	if n := len(m.returned); n > 0 {
		pfn := m.returned[n-1]
		m.returned = m.returned[:n-1]
		return pfn, true
	}
	for m.freeTop > 0 {
		pfn := m.baseFree[m.freeTop-1]
		m.freeTop--
		if _, ok := m.stolen[pfn]; ok {
			delete(m.stolen, pfn)
			continue
		}
		return pfn, true
	}
	return 0, false
}

// unfreeLocked removes a PFN from the free set after it was claimed out of
// order (implicit WritePhys allocation). Frames in the shared permuted
// order cannot be removed in place — forks share that slice — so they are
// marked stolen and skipped when the allocator reaches them.
func (m *PhysMemory) unfreeLocked(pfn uint32) {
	for i := len(m.returned) - 1; i >= 0; i-- {
		if m.returned[i] == pfn {
			m.returned = append(m.returned[:i], m.returned[i+1:]...)
			return
		}
	}
	if m.stolen == nil {
		m.stolen = make(map[uint32]struct{})
	}
	m.stolen[pfn] = struct{}{}
}

// AllocFrame reserves a physical frame and returns its PFN. The frame
// contents start zeroed.
func (m *PhysMemory) AllocFrame() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pfn, ok := m.popFreeLocked()
	if !ok {
		return 0, ErrOutOfMemory
	}
	m.dirty[pfn] = make([]byte, PageSize)
	m.inUse++
	return pfn, nil
}

// FreeFrame returns a frame to the pool. Freeing an unallocated frame is an
// error.
func (m *PhysMemory) FreeFrame(pfn uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, inDirty := m.dirty[pfn]
	switch {
	case inDirty && f != nil:
		if m.base != nil {
			if _, shared := m.base.frames[pfn]; shared {
				// The base still holds an old image of this frame; leave a
				// tombstone so reads see a free (zero) frame, not stale data.
				m.dirty[pfn] = nil
				break
			}
		}
		delete(m.dirty, pfn)
	case inDirty:
		// Tombstone: already freed.
		return fmt.Errorf("mm: free of unallocated frame %#x", pfn)
	default:
		if m.base != nil {
			if _, shared := m.base.frames[pfn]; shared {
				m.dirty[pfn] = nil
				break
			}
		}
		return fmt.Errorf("mm: free of unallocated frame %#x", pfn)
	}
	m.inUse--
	m.returned = append(m.returned, pfn)
	return nil
}

// frameLocked returns the current contents of a frame, consulting the
// private overlay before the shared base. A nil result reads as zeros
// (never-allocated, or tombstoned after a post-fork free).
func (m *PhysMemory) frameLocked(pfn uint32) []byte {
	if f, ok := m.dirty[pfn]; ok {
		return f
	}
	if m.base != nil {
		return m.base.frames[pfn]
	}
	return nil
}

// ReadPhys implements PhysReader. Unallocated frames within range read as
// zeros (matching how a hypervisor exposes never-touched RAM).
//
//modsafe:spends raw physical read
func (m *PhysMemory) ReadPhys(pa uint32, b []byte) error {
	if uint64(pa)+uint64(len(b)) > m.Size() {
		return fmt.Errorf("%w: read [%#x,%#x)", ErrBadAddress, pa, uint64(pa)+uint64(len(b)))
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for len(b) > 0 {
		pfn := pa >> PageShift
		off := pa & (PageSize - 1)
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if frame := m.frameLocked(pfn); frame != nil {
			copy(b[:n], frame[off:off+n])
		} else {
			for i := uint32(0); i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		pa += n
	}
	return nil
}

// writableFrameLocked returns a frame this memory may mutate, materializing
// it in the private overlay first if necessary: a copy-on-write duplicate
// of a shared base frame, a fresh zero frame for a tombstone, or an
// implicit allocation for a never-touched frame.
func (m *PhysMemory) writableFrameLocked(pfn uint32) []byte {
	if f, ok := m.dirty[pfn]; ok {
		if f != nil {
			return f
		}
		// Tombstone: the frame was freed after the last fork; writing
		// re-allocates it (zeroed) out of the free set.
		nf := make([]byte, PageSize)
		m.dirty[pfn] = nf
		m.unfreeLocked(pfn)
		m.inUse++
		return nf
	}
	if m.base != nil {
		if bf, ok := m.base.frames[pfn]; ok {
			// CoW fault: first write to a frame shared with the base image.
			nf := append(make([]byte, 0, PageSize), bf...)
			m.dirty[pfn] = nf
			m.cowFaults.Add(1)
			return nf
		}
	}
	nf := make([]byte, PageSize)
	m.dirty[pfn] = nf
	m.unfreeLocked(pfn)
	m.inUse++
	return nf
}

// WritePhys copies b into physical memory starting at pa. Writing to an
// unallocated frame allocates it implicitly (the frame is then owned by the
// writer — used only by the kernel through AddressSpace, never by VMI).
func (m *PhysMemory) WritePhys(pa uint32, b []byte) error {
	if uint64(pa)+uint64(len(b)) > m.Size() {
		return fmt.Errorf("%w: write [%#x,%#x)", ErrBadAddress, pa, uint64(pa)+uint64(len(b)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(b) > 0 {
		pfn := pa >> PageShift
		off := pa & (PageSize - 1)
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		frame := m.writableFrameLocked(pfn)
		copy(frame[off:off+n], b[:n])
		b = b[n:]
		pa += n
	}
	return nil
}

// freezeLocked seals the current memory image into a new immutable base
// layer: the effective frame table (base overlaid with dirty) becomes the
// shared image, the overlay empties, and the free order is re-materialized
// with the same pop sequence the live bookkeeping would have produced.
// Frame slices are shared into the new layer without copying — safe because
// every later write lands in an overlay, never in a frozen layer.
func (m *PhysMemory) freezeLocked() {
	frames := m.dirty
	if m.base != nil {
		frames = make(map[uint32][]byte, len(m.base.frames)+len(m.dirty))
		for pfn, f := range m.base.frames {
			frames[pfn] = f
		}
		for pfn, f := range m.dirty {
			if f == nil {
				delete(frames, pfn)
			} else {
				frames[pfn] = f
			}
		}
	}
	free := make([]uint32, 0, m.freeTop+len(m.returned))
	for _, pfn := range m.baseFree[:m.freeTop] {
		if _, ok := m.stolen[pfn]; !ok {
			free = append(free, pfn)
		}
	}
	free = append(free, m.returned...)
	nb := &baseLayer{id: baseIDs.Add(1), frames: frames}
	nb.refs.Store(1)
	if m.base != nil {
		m.base.refs.Add(-1)
	}
	m.base = nb
	m.dirty = make(map[uint32][]byte)
	m.baseFree = free
	m.freeTop = len(free)
	m.returned = nil
	m.stolen = nil
}

// Fork returns a copy-on-write clone of the memory. The current image is
// frozen into a base layer shared by both sides (a no-op when the memory is
// an unmodified fork already), so the clone costs O(1) frames up front and
// each side pays only for the frames it subsequently dirties. Forking and
// the clone are safe for concurrent use like any other PhysMemory.
func (m *PhysMemory) Fork() *PhysMemory {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.base == nil || len(m.dirty) > 0 {
		m.freezeLocked()
	}
	m.base.refs.Add(1)
	out := &PhysMemory{
		numFrames: m.numFrames,
		base:      m.base,
		dirty:     make(map[uint32][]byte),
		baseFree:  m.baseFree,
		freeTop:   m.freeTop,
		returned:  append([]uint32(nil), m.returned...),
		inUse:     m.inUse,
	}
	if len(m.stolen) > 0 {
		out.stolen = make(map[uint32]struct{}, len(m.stolen))
		for pfn := range m.stolen {
			out.stolen[pfn] = struct{}{}
		}
	}
	return out
}

// Seal freezes the current memory image into an immutable base layer in
// place — Fork without the clone — and returns the layer's identity. After
// Seal the memory reports a valid SnapshotID until its next write, which is
// what lets independently booted guests (no CoW fleet) advertise the
// content-identity tokens the digest cache keys on. Sealing an unmodified
// fork is a no-op returning the existing identity; sealing after writes
// mints a fresh layer (and therefore a fresh identity, since the content
// changed).
func (m *PhysMemory) Seal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.base == nil || len(m.dirty) > 0 {
		m.freezeLocked()
	}
	return m.base.id
}

// SnapshotID reports the identity of the frozen image this memory is an
// *unmodified* fork of. Two memories returning the same id are bit-for-bit
// identical, which Dom0 can establish from its frame table alone — the
// content-identity token fleet sweeps use to deduplicate introspection
// across clean clones. ok is false when the memory has never been forked
// or has dirtied frames since.
func (m *PhysMemory) SnapshotID() (id uint64, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.base != nil && len(m.dirty) == 0 {
		return m.base.id, true
	}
	return 0, false
}

// ContentID reports a process-stable identity for the frozen image this
// memory is an unmodified fork of: a fingerprint derived from the base
// layer's frame contents rather than from an allocation counter. Unlike
// SnapshotID — whose ids are only unique within one process run — equal
// ContentIDs mean equal bytes across independently built clouds, which is
// what lets a persistent digest store survive a reopen. The fingerprint is
// computed lazily on first request and memoized on the (immutable) base
// layer, so CoW siblings share one computation. ok is false when the
// memory has never been frozen or has dirtied frames since.
func (m *PhysMemory) ContentID() (id uint64, ok bool) {
	m.mu.RLock()
	base, dirty := m.base, len(m.dirty)
	m.mu.RUnlock()
	if base == nil || dirty != 0 {
		return 0, false
	}
	return base.fingerprint(), true
}

// CowFaults returns how many shared frames this memory has copied on first
// write since it was created.
func (m *PhysMemory) CowFaults() uint64 { return m.cowFaults.Load() }

// SharedFrames returns how many frames are backed by the shared base layer
// and not overridden privately (the fleet-wide deduplicated frames).
func (m *PhysMemory) SharedFrames() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.base == nil {
		return 0
	}
	n := len(m.base.frames)
	for pfn := range m.dirty {
		if _, ok := m.base.frames[pfn]; ok {
			n--
		}
	}
	return n
}

// PrivateFrames returns how many frames live in this memory's private
// overlay (allocated, implicitly written, or copied-on-write since the
// last freeze).
func (m *PhysMemory) PrivateFrames() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, f := range m.dirty {
		if f != nil {
			n++
		}
	}
	return n
}

// BaseRefs returns how many memories share this memory's base layer
// (including itself), or zero for a never-forked memory.
func (m *PhysMemory) BaseRefs() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.base == nil {
		return 0
	}
	return m.base.refs.Load()
}
