// Package mm implements the memory substrate of a simulated 32-bit guest:
// sparse guest-physical memory and x86 two-level page tables
// (directory + table, 4 KiB pages).
//
// Both the guest kernel (internal/guest) and the introspection library
// (internal/vmi) operate on this substrate. The guest maps and writes
// through an AddressSpace; VMI performs its own independent page-table walk
// over raw physical reads (WalkPageTables), exactly as libVMI walks a real
// guest's tables from Dom0.
package mm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// PageSize is the x86 4 KiB page size; PageShift its log2.
const (
	PageSize  = 4096
	PageShift = 12
)

// Errors returned by the memory substrate.
var (
	// ErrOutOfMemory indicates the physical frame pool is exhausted.
	ErrOutOfMemory = errors.New("mm: out of physical memory")
	// ErrUnmapped indicates a virtual address with no valid translation.
	ErrUnmapped = errors.New("mm: address not mapped")
	// ErrBadAddress indicates a physical access beyond the memory size.
	ErrBadAddress = errors.New("mm: physical address out of range")
)

// PhysReader is the read-only view of guest-physical memory that the
// introspection layer uses. Implemented by *PhysMemory.
type PhysReader interface {
	// ReadPhys copies len(b) bytes starting at physical address pa. Reads
	// may cross page boundaries; unallocated frames read as zeros.
	ReadPhys(pa uint32, b []byte) error
}

// PhysMemory is sparse guest-physical memory: frames are allocated on
// demand from a fixed-size pool. The frame allocator hands out page frame
// numbers in a deterministic pseudo-random permutation so that contiguous
// virtual mappings land on scattered physical frames — the reason the
// paper's Module-Searcher must copy modules page by page rather than with
// one large read.
type PhysMemory struct {
	numFrames uint32 // immutable after construction

	mu        sync.RWMutex
	frames    map[uint32][]byte // PFN -> 4 KiB frame
	freeOrder []uint32          // permuted PFNs not yet allocated (stack)
}

// NewPhysMemory creates a guest-physical memory of size bytes (rounded down
// to whole pages). The allocation order is derived from seed; clones built
// with the same seed allocate identically, while different seeds model the
// independently-evolved physical layouts of separate VMs.
func NewPhysMemory(size uint64, seed int64) *PhysMemory {
	n := uint32(size / PageSize)
	if n == 0 {
		n = 1
	}
	m := &PhysMemory{
		frames:    make(map[uint32][]byte),
		numFrames: n,
	}
	// PFN 0 is reserved (null-page guard), like real kernels leave the
	// first physical page alone.
	order := make([]uint32, 0, n-1)
	for pfn := uint32(1); pfn < n; pfn++ {
		order = append(order, pfn)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	m.freeOrder = order
	return m
}

// Size returns the physical memory size in bytes.
func (m *PhysMemory) Size() uint64 { return uint64(m.numFrames) * PageSize }

// FramesInUse returns how many frames are currently allocated.
func (m *PhysMemory) FramesInUse() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.frames)
}

// AllocFrame reserves a physical frame and returns its PFN. The frame
// contents start zeroed.
func (m *PhysMemory) AllocFrame() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.freeOrder) == 0 {
		return 0, ErrOutOfMemory
	}
	pfn := m.freeOrder[len(m.freeOrder)-1]
	m.freeOrder = m.freeOrder[:len(m.freeOrder)-1]
	m.frames[pfn] = make([]byte, PageSize)
	return pfn, nil
}

// FreeFrame returns a frame to the pool. Freeing an unallocated frame is an
// error.
func (m *PhysMemory) FreeFrame(pfn uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.frames[pfn]; !ok {
		return fmt.Errorf("mm: free of unallocated frame %#x", pfn)
	}
	delete(m.frames, pfn)
	m.freeOrder = append(m.freeOrder, pfn)
	return nil
}

// ReadPhys implements PhysReader. Unallocated frames within range read as
// zeros (matching how a hypervisor exposes never-touched RAM).
//
//modsafe:spends raw physical read
func (m *PhysMemory) ReadPhys(pa uint32, b []byte) error {
	if uint64(pa)+uint64(len(b)) > m.Size() {
		return fmt.Errorf("%w: read [%#x,%#x)", ErrBadAddress, pa, uint64(pa)+uint64(len(b)))
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for len(b) > 0 {
		pfn := pa >> PageShift
		off := pa & (PageSize - 1)
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if frame, ok := m.frames[pfn]; ok {
			copy(b[:n], frame[off:off+n])
		} else {
			for i := uint32(0); i < n; i++ {
				b[i] = 0
			}
		}
		b = b[n:]
		pa += n
	}
	return nil
}

// WritePhys copies b into physical memory starting at pa. Writing to an
// unallocated frame allocates it implicitly (the frame is then owned by the
// writer — used only by the kernel through AddressSpace, never by VMI).
func (m *PhysMemory) WritePhys(pa uint32, b []byte) error {
	if uint64(pa)+uint64(len(b)) > m.Size() {
		return fmt.Errorf("%w: write [%#x,%#x)", ErrBadAddress, pa, uint64(pa)+uint64(len(b)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(b) > 0 {
		pfn := pa >> PageShift
		off := pa & (PageSize - 1)
		n := PageSize - off
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		frame, ok := m.frames[pfn]
		if !ok {
			frame = make([]byte, PageSize)
			m.frames[pfn] = frame
			// Remove from the free list lazily: scan is fine because this
			// path is exercised only by tests writing raw physical memory.
			for i, f := range m.freeOrder {
				if f == pfn {
					m.freeOrder = append(m.freeOrder[:i], m.freeOrder[i+1:]...)
					break
				}
			}
		}
		copy(frame[off:off+n], b[:n])
		b = b[n:]
		pa += n
	}
	return nil
}
