package mm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPhysSize(t *testing.T) {
	m := NewPhysMemory(16<<20, 1)
	if m.Size() != 16<<20 {
		t.Errorf("Size = %d", m.Size())
	}
}

func TestPhysSizeRoundsDown(t *testing.T) {
	m := NewPhysMemory(PageSize+100, 1)
	if m.Size() != PageSize {
		t.Errorf("Size = %d, want one page", m.Size())
	}
}

func TestAllocFrameDistinct(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		pfn, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if pfn == 0 {
			t.Fatal("allocator handed out reserved frame 0")
		}
		if seen[pfn] {
			t.Fatalf("frame %#x allocated twice", pfn)
		}
		seen[pfn] = true
	}
	if m.FramesInUse() != 100 {
		t.Errorf("FramesInUse = %d", m.FramesInUse())
	}
}

func TestAllocOrderIsSeededPermutation(t *testing.T) {
	a := NewPhysMemory(1<<20, 5)
	b := NewPhysMemory(1<<20, 5)
	c := NewPhysMemory(1<<20, 6)
	var sa, sb, sc []uint32
	for i := 0; i < 50; i++ {
		fa, _ := a.AllocFrame()
		fb, _ := b.AllocFrame()
		fc, _ := c.AllocFrame()
		sa, sb, sc = append(sa, fa), append(sb, fb), append(sc, fc)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed, different allocation order")
		}
	}
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds, identical allocation order")
	}
	// The order must be scattered, not sequential: count adjacent pairs.
	adjacent := 0
	for i := 1; i < len(sa); i++ {
		if sa[i] == sa[i-1]+1 {
			adjacent++
		}
	}
	if adjacent > len(sa)/4 {
		t.Errorf("allocation order looks sequential (%d adjacent of %d)", adjacent, len(sa))
	}
}

func TestOutOfMemory(t *testing.T) {
	m := NewPhysMemory(4*PageSize, 1) // frames 1..3 usable
	for i := 0; i < 3; i++ {
		if _, err := m.AllocFrame(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := m.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFreeFrameRecycles(t *testing.T) {
	m := NewPhysMemory(4*PageSize, 1)
	var frames []uint32
	for i := 0; i < 3; i++ {
		f, _ := m.AllocFrame()
		frames = append(frames, f)
	}
	if err := m.FreeFrame(frames[1]); err != nil {
		t.Fatal(err)
	}
	f, err := m.AllocFrame()
	if err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if f != frames[1] {
		t.Errorf("recycled frame %#x, want %#x", f, frames[1])
	}
}

func TestFreeFrameUnallocated(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	if err := m.FreeFrame(5); err == nil {
		t.Error("freeing unallocated frame succeeded")
	}
}

func TestReadWritePhysSamePage(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	pfn, _ := m.AllocFrame()
	pa := pfn << PageShift
	data := []byte("hello, guest physical memory")
	if err := m.WritePhys(pa+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadPhys(pa+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
}

func TestReadPhysCrossesPages(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	// Write a pattern spanning three pages at a raw physical address;
	// WritePhys allocates implicitly.
	pa := uint32(2 * PageSize)
	data := make([]byte, 3*PageSize)
	rand.New(rand.NewSource(1)).Read(data)
	if err := m.WritePhys(pa-1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadPhys(pa-1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page read mismatch")
	}
}

func TestReadPhysUnallocatedIsZero(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	got := make([]byte, 64)
	for i := range got {
		got[i] = 0xFF
	}
	if err := m.ReadPhys(5*PageSize, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#02x, want 0", i, b)
		}
	}
}

func TestPhysOutOfRange(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	buf := make([]byte, 8)
	if err := m.ReadPhys(uint32(m.Size())-4, buf); !errors.Is(err, ErrBadAddress) {
		t.Errorf("read past end: %v", err)
	}
	if err := m.WritePhys(uint32(m.Size())-4, buf); !errors.Is(err, ErrBadAddress) {
		t.Errorf("write past end: %v", err)
	}
}

func TestWritePhysImplicitAllocRemovesFromFreeList(t *testing.T) {
	m := NewPhysMemory(4*PageSize, 1)
	// Implicitly allocate frame 2 by writing to it.
	if err := m.WritePhys(2*PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// The allocator must never hand frame 2 out afterwards.
	for i := 0; i < 2; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f == 2 {
			t.Fatal("implicitly allocated frame handed out again")
		}
	}
	if _, err := m.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected OOM after all frames used, got %v", err)
	}
}

func TestPhysCloneIndependent(t *testing.T) {
	m := NewPhysMemory(1<<20, 1)
	pfn, _ := m.AllocFrame()
	pa := pfn << PageShift
	m.WritePhys(pa, []byte{0xAA})
	c := m.Clone()

	m.WritePhys(pa, []byte{0xBB})
	got := make([]byte, 1)
	c.ReadPhys(pa, got)
	if got[0] != 0xAA {
		t.Errorf("clone sees %#02x after original mutated", got[0])
	}
	// Allocation streams stay aligned after clone.
	f1, _ := m.AllocFrame()
	f2, _ := c.AllocFrame()
	if f1 != f2 {
		t.Errorf("clone's next frame %#x != original's %#x", f2, f1)
	}
}

// TestPhysReadWriteQuick property-tests write-then-read identity at random
// offsets and lengths.
func TestPhysReadWriteQuick(t *testing.T) {
	m := NewPhysMemory(4<<20, 1)
	f := func(off uint16, seed int64, n uint8) bool {
		pa := uint32(off) * 16
		data := make([]byte, int(n)+1)
		rand.New(rand.NewSource(seed)).Read(data)
		if err := m.WritePhys(pa, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.ReadPhys(pa, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
