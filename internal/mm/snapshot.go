package mm

// Clone returns a copy of the physical memory with identical contents and
// allocation behavior. The hypervisor snapshot facility uses this to
// capture and restore whole-VM memory images. Since the CoW rework it is an
// alias for Fork: the image is frozen into a shared base layer and both
// sides copy frames only on write, so repeated snapshot/restore cycles of
// an idle guest share one frozen image instead of duplicating it.
func (m *PhysMemory) Clone() *PhysMemory {
	return m.Fork()
}

// AttachAddressSpace wraps an existing page-directory (at physical address
// cr3) in mem as an AddressSpace, without allocating anything. Used when
// restoring a snapshot: the cloned physical memory already contains the
// page tables.
func AttachAddressSpace(mem *PhysMemory, cr3 uint32) *AddressSpace {
	return &AddressSpace{mem: mem, cr3: cr3}
}
