package mm

// Clone returns a deep copy of the physical memory: all allocated frames
// and the remaining free-frame order. The hypervisor snapshot facility uses
// this to capture and restore whole-VM memory images.
func (m *PhysMemory) Clone() *PhysMemory {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := &PhysMemory{
		frames:    make(map[uint32][]byte, len(m.frames)),
		numFrames: m.numFrames,
		freeOrder: append([]uint32(nil), m.freeOrder...),
	}
	for pfn, frame := range m.frames {
		out.frames[pfn] = append([]byte(nil), frame...)
	}
	return out
}

// AttachAddressSpace wraps an existing page-directory (at physical address
// cr3) in mem as an AddressSpace, without allocating anything. Used when
// restoring a snapshot: the cloned physical memory already contains the
// page tables.
func AttachAddressSpace(mem *PhysMemory, cr3 uint32) *AddressSpace {
	return &AddressSpace{mem: mem, cr3: cr3}
}
